// Command installtune runs ApproxTuner's install-time phase for a
// built-in benchmark: it reruns development-time tuning to obtain the
// shipped curve and profiles, then refines on the chosen device —
// including distributed predictive tuning over the PROMISE accelerator's
// voltage knobs when the energy objective is selected.
//
// Usage:
//
//	installtune -benchmark alexnet2 -device gpu -objective energy -edges 8
//
// With -http the distributed phase runs over a loopback HTTP
// coordinator and a real edge-client fleet (the internal/distrib
// transport) instead of the in-process simulation; -lease-ttl,
// -req-timeout and -retries tune its fault-tolerance knobs.
//
// Observability: -trace out.jsonl exports a JSONL span trace of the run,
// -metrics-addr :8090 serves live /metrics (JSON or Prometheus text),
// /healthz and /debug/pprof, -prom writes a final Prometheus textfile,
// -telemetry prints an end-of-run metric summary table, and -v / -q
// adjust progress verbosity. In -http mode the coordinator itself also
// serves /metrics, /healthz and the aggregated fleet telemetry at
// GET /v1/stats, which is logged as a fleet summary at the end of the
// run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	approxtuner "repro"
	"repro/internal/distrib"
	"repro/internal/models"
	"repro/internal/obs"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "lenet", "one of: "+strings.Join(models.Names(), ", "))
		devName   = flag.String("device", "gpu", "target device: gpu or cpu")
		objective = flag.String("objective", "time", "optimize: time or energy")
		edges     = flag.Int("edges", 8, "simulated edge devices for distributed tuning")
		loss      = flag.Float64("max-qos-loss", 1.0, "acceptable accuracy loss (pp)")
		images    = flag.Int("images", 64, "dataset size")
		width     = flag.Float64("width", 0.25, "channel-width multiplier")
		iters     = flag.Int("iters", 3000, "search iteration cap")
		out       = flag.String("o", "", "write the final curve JSON to this file (default stdout)")
		seed      = flag.Int64("seed", 1, "seed")

		httpMode   = flag.Bool("http", false, "run the distributed phase over a loopback HTTP coordinator + edge fleet")
		leaseTTL   = flag.Duration("lease-ttl", 30*time.Second, "HTTP mode: edge liveness lease before work is reassigned")
		reqTimeout = flag.Duration("req-timeout", 10*time.Second, "HTTP mode: per-request timeout on the edge client")
		retries    = flag.Int("retries", 4, "HTTP mode: retries per request (exponential backoff)")
	)
	oc := obs.RegisterFlags(nil)
	flag.Parse()
	if err := oc.Activate(os.Stderr); err != nil {
		log.Fatalf("installtune: %v", err)
	}
	defer oc.Close()
	logger := oc.Log

	b := models.MustBuild(*benchmark, models.Scale{Images: *images, Width: *width, Seed: *seed})
	calib, test := b.Dataset.Split()
	app, err := approxtuner.NewCNNApp(b.Model.Graph, calib.Images, calib.Labels, test.Images, test.Labels)
	if err != nil {
		log.Fatalf("installtune: %v", err)
	}

	var dev *approxtuner.Device
	switch strings.ToLower(*devName) {
	case "gpu":
		dev = approxtuner.TX2GPU()
	case "cpu":
		dev = approxtuner.TX2CPU()
	default:
		log.Fatalf("installtune: unknown device %q", *devName)
	}

	spec := approxtuner.TuneSpec{
		MaxQoSLoss:  *loss,
		MaxIters:    *iters,
		Seed:        *seed,
		DisableFP16: !dev.SupportsKnob(1), // FP32-only curve for the CPU
	}

	logger.Infof("development-time tuning (hardware-independent knobs)...\n")
	devRes, err := app.TuneDevelopmentTime(spec)
	if err != nil {
		log.Fatalf("installtune: %v", err)
	}
	logger.Infof("shipped curve: %d points\n", devRes.Curve.Len())
	logger.Verbosef("development-time search: %d iterations, %d candidates, α=%.3f\n",
		devRes.Stats.Iterations, devRes.Stats.Candidates, devRes.Stats.Alpha)

	obj := approxtuner.MinimizeTime
	if strings.ToLower(*objective) == "energy" {
		obj = approxtuner.MinimizeEnergy
	}
	var curve *approxtuner.Curve
	if *httpMode {
		if devRes.Profiles == nil {
			log.Fatalf("installtune: -http needs development-time profiles (predictive path)")
		}
		opts := app.InstallOptionsFor(dev, spec, obj, *edges)
		opts.LeaseTTL = *leaseTTL
		opts.RequestTimeout = *reqTimeout
		opts.MaxRetries = *retries
		logger.Infof("install-time tuning on %s over loopback HTTP (%s objective, %d edges, lease %v)...\n",
			dev.Name, obj, *edges, *leaseTTL)
		curve, err = runDistributed(app, devRes, dev, opts, *seed, logger)
		if err != nil {
			log.Fatalf("installtune: %v", err)
		}
		logger.Infof("final curve: %d points\n", curve.Len())
	} else {
		logger.Infof("install-time tuning on %s (%s objective, %d edge devices)...\n",
			dev.Name, obj, *edges)
		inst, err := app.TuneInstallTime(devRes, dev, spec, obj, *edges)
		if err != nil {
			log.Fatalf("installtune: %v", err)
		}
		curve = inst.Curve
		logger.Infof(
			"final curve: %d points; edge profile phase %v, server tuning %v\n",
			inst.Curve.Len(),
			inst.Stats.EdgeProfileTime.Round(1e6), inst.Stats.ServerTuneTime.Round(1e6))
		logger.Verbosef("validation: %d configs per edge, %d survived, total %v\n",
			inst.Stats.ValidatePerEdge, inst.Stats.Validated, inst.Stats.Total.Round(1e6))
	}
	if pt, ok := curve.Best(app.BaselineQoS - *loss); ok {
		logger.Infof("best: %s → %.2fx (%s)\n",
			approxtuner.DescribeConfig(pt.Config), pt.Perf, obj)
	}

	data, err := approxtuner.SaveCurve(curve)
	if err != nil {
		log.Fatalf("installtune: %v", err)
	}
	if *out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("installtune: %v", err)
	}
	logger.Infof("curve written to %s\n", *out)
}

// runDistributed executes the install-time distributed phase over a real
// loopback HTTP transport: a coordinator served on 127.0.0.1 and one edge
// client goroutine per fleet member, all sharing the same options (and
// therefore the same lease/retry discipline the flags configured).
func runDistributed(app *approxtuner.App, devRes *approxtuner.Result, dev *approxtuner.Device, opts approxtuner.InstallOptions, seed int64, logger *obs.Logger) (*approxtuner.Curve, error) {
	coord, err := distrib.NewCoordinator(app.Program(), devRes.Profiles, opts)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: coord.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()

	ctx := context.Background()
	errs := make([]error, opts.NEdge)
	var wg sync.WaitGroup
	for i := 0; i < opts.NEdge; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := distrib.NewEdge(i, baseURL, app.Program(), dev, seed, opts)
			_, errs[i] = e.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("edge %d: %w", i, err)
		}
	}
	final, ok := coord.FinalCurve()
	if !ok {
		return nil, fmt.Errorf("coordinator did not produce a final curve")
	}
	logFleetStats(baseURL, logger)
	return final, nil
}

// logFleetStats fetches the coordinator's aggregated fleet telemetry
// (GET /v1/stats) before the loopback server shuts down and logs a
// per-edge and fleet-total summary. Telemetry display is best-effort:
// a failed fetch only logs a warning.
func logFleetStats(baseURL string, logger *obs.Logger) {
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(baseURL + "/v1/stats")
	if err != nil {
		logger.Errorf("fleet stats: %v\n", err)
		return
	}
	defer resp.Body.Close()
	var fs distrib.FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		logger.Errorf("fleet stats: %v\n", err)
		return
	}
	logger.Infof("fleet telemetry: %d edges, %d requests (%d retries, %d timeouts), latency p50=%.4gs p99=%.4gs max=%.4gs\n",
		len(fs.Edges), fs.TotalRequests, fs.TotalRetries, fs.TotalTimeouts,
		fs.EdgeLatency.P50, fs.EdgeLatency.P99, fs.EdgeLatency.Max)
	ids := make([]string, 0, len(fs.Edges))
	for id := range fs.Edges {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		e := fs.Edges[id]
		logger.Verbosef("  edge %s: %d requests, %d retries, %d timeouts, p50=%.4gs\n",
			id, e.Requests, e.Retries, e.Timeouts, e.Latency.P50)
	}
}
