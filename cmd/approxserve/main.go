// Command approxserve serves a zoo benchmark (or a model compiled from
// JSON) behind the adaptive inference API: a micro-batching HTTP server
// whose runtime tuner picks approximation configurations off a tradeoff
// curve to hold a per-request latency SLO (the paper's §5 run-time
// phase, online).
//
// Usage:
//
//	approxserve -benchmark lenet -addr :8080 -slo 50ms
//	approxserve -benchmark resnet18 -curve curve.json -policy average
//
// The tradeoff curve comes from -curve (an approxtune/installtune
// artifact); without it a built-in approximation ladder is used, with
// modeled speedups — fine for demos and smoke tests, not calibrated.
// With -exec-budget 0 the per-batch execution budget is calibrated at
// startup from measured baseline executions.
//
// The server drains gracefully on SIGINT/SIGTERM: admissions stop
// (503), queued requests finish, then the process exits. -ready-file
// writes the bound address once serving, for scripts to poll.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/serve"
	"repro/internal/tensor"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		benchmark  = flag.String("benchmark", "lenet", "zoo benchmark to serve; one of: "+strings.Join(models.Names(), ", "))
		modelJSON  = flag.String("model-json", "", "serve a model compiled from this JSON spec instead of a zoo benchmark")
		width      = flag.Float64("width", 0.25, "channel-width multiplier for zoo benchmarks")
		seed       = flag.Int64("seed", 1, "seed for weights, tuner and executor RNG")
		curvePath  = flag.String("curve", "", "tradeoff-curve JSON (approxtune output); empty builds a built-in ladder")
		policyName = flag.String("policy", "enforce", "runtime policy: enforce | average")
		slo        = flag.Duration("slo", 50*time.Millisecond, "per-request latency SLO")
		execBudget = flag.Duration("exec-budget", 0, "per-batch execution budget for the tuner (0 = calibrate from measured baseline executions)")
		window     = flag.Int("window", serve.DefaultWindow, "tuner control window, in batch executions")
		maxBatch   = flag.Int("max-batch", serve.DefaultMaxBatch, "max items coalesced into one execution")
		maxQueue   = flag.Int("max-queue", serve.DefaultMaxQueue, "admission queue bound, in requests (backpressure beyond)")
		linger     = flag.Duration("linger", serve.DefaultLinger, "batcher linger after the first request of a batch")
		drain      = flag.Duration("drain-timeout", serve.DefaultDrainTimeout, "graceful-drain bound on shutdown")
		readyFile  = flag.String("ready-file", "", "write the bound address to this file once serving")

		traceReqs  = flag.Bool("trace-requests", true, "request-scoped tracing: per-request spans, traceparent propagation, tail sampling, histogram exemplars")
		traceSeed  = flag.Int64("trace-seed", 0, "seed for trace IDs and tail-sampling floor decisions (0 = clock-derived)")
		flightPath = flag.String("flight", "", "append flight-recorder dumps (drift latch, health 503) to this file as JSONL")
		slowAfter  = flag.Int("slow-after", 0, "with -slow-factor: inject the slowdown after this many batches")
		slowFactor = flag.Float64("slow-factor", 0, "inject an artificial batch slowdown of this factor (>1) — chaos/smoke hook")
	)
	oc := obs.RegisterFlags(nil)
	flag.Parse()
	if err := oc.Activate(os.Stderr); err != nil {
		log.Fatalf("approxserve: %v", err)
	}
	defer oc.Close()
	logger := oc.Log

	policy := core.PolicyEnforce
	switch *policyName {
	case "enforce":
	case "average":
		policy = core.PolicyAverage
	default:
		log.Fatalf("approxserve: unknown policy %q (want enforce or average)", *policyName)
	}

	g, itemDims, program, baselineQoS, err := buildModel(*benchmark, *modelJSON, *width, *seed)
	if err != nil {
		log.Fatalf("approxserve: %v", err)
	}

	var curve *pareto.Curve
	if *curvePath != "" {
		data, err := os.ReadFile(*curvePath)
		if err != nil {
			log.Fatalf("approxserve: %v", err)
		}
		curve, err = pareto.UnmarshalCurve(data)
		if err != nil {
			log.Fatalf("approxserve: %s: %v", *curvePath, err)
		}
	} else {
		curve = ladderCurve(g, program, baselineQoS)
		logger.Infof("approxserve: no -curve given; using a built-in %d-point approximation ladder (modeled speedups)\n", curve.Len())
	}

	budget := *execBudget
	if budget <= 0 {
		budget = calibrateBudget(g, itemDims, *maxBatch, *seed)
		logger.Infof("approxserve: calibrated per-batch exec budget: %v (batch of %d)\n", budget, *maxBatch)
	}

	cfg := serve.Config{
		Graph:          g,
		Curve:          curve,
		ItemDims:       itemDims,
		Policy:         policy,
		SLO:            *slo,
		ExecBudget:     budget,
		Window:         *window,
		MaxBatch:       *maxBatch,
		MaxQueue:       *maxQueue,
		Linger:         *linger,
		Seed:           *seed,
		DrainTimeout:   *drain,
		SlowdownFactor: *slowFactor,
		SlowdownAfter:  *slowAfter,
	}
	var sampler *obs.TailSampler
	if *traceReqs {
		sampler = obs.NewTailSampler(obs.TailSamplerOptions{Seed: *traceSeed})
		cfg.Sampler = sampler
		cfg.Tracer = obs.NewTracer(obs.TracerOptions{
			KeepInMemory: 1024,
			IDSeed:       *traceSeed,
			Sinks:        []obs.SpanSink{sampler},
		})
	}
	if *flightPath != "" {
		f, err := os.OpenFile(*flightPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("approxserve: %v", err)
		}
		defer f.Close()
		cfg.FlightLog = f
	}
	srv, err := serve.New(cfg)
	if err != nil {
		log.Fatalf("approxserve: %v", err)
	}
	if err := srv.Start(*addr); err != nil {
		log.Fatalf("approxserve: %v", err)
	}
	logger.Infof("approxserve: serving %s on %s (SLO %v, window %d, max batch %d, %d curve points)\n",
		program, srv.Addr(), *slo, *window, *maxBatch, curve.Len())
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(srv.Addr()), 0o644); err != nil {
			log.Fatalf("approxserve: %v", err)
		}
	}

	// SIGQUIT dumps the flight recorder to stderr and keeps serving (the
	// classic "what is this process doing right now" probe); SIGINT and
	// SIGTERM drain gracefully.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM, syscall.SIGQUIT)
	var sig os.Signal
	for sig = range sigc {
		if sig != syscall.SIGQUIT {
			break
		}
		logger.Infof("approxserve: SIGQUIT received; dumping flight recorder\n")
		if err := obs.Flight().Dump(os.Stderr); err != nil {
			logger.Infof("approxserve: flight dump: %v\n", err)
		}
	}
	logger.Infof("approxserve: %v received; draining\n", sig)
	if err := srv.Close(); err != nil {
		log.Fatalf("approxserve: drain: %v", err)
	}
	st := srv.Stats()
	logger.Infof("approxserve: drained cleanly: %d served, %d rejected, %d expired, %d batches, %d switches\n",
		st.Served, st.Rejected, st.Expired, st.Batches, st.Switches)
	if sampler != nil {
		seen, keptN, evicted := sampler.Stats()
		logger.Infof("approxserve: tail sampler: %d traces seen, %d kept, %d evicted undecided\n", seen, keptN, evicted)
	}
}

// buildModel constructs the served graph from a zoo benchmark or a JSON
// model spec, returning the graph, its per-item input dims, a program
// label, and the baseline QoS for the built-in ladder curve.
func buildModel(benchmark, modelJSON string, width float64, seed int64) (*graph.Graph, []int, string, float64, error) {
	if modelJSON != "" {
		data, err := os.ReadFile(modelJSON)
		if err != nil {
			return nil, nil, "", 0, err
		}
		m, err := models.FromJSON(data)
		if err != nil {
			return nil, nil, "", 0, err
		}
		return m.Graph, []int{m.C, m.H, m.W}, "model-json", 100, nil
	}
	b, err := models.Build(benchmark, models.Scale{Width: width, Seed: seed})
	if err != nil {
		return nil, nil, "", 0, err
	}
	m := b.Model
	return m.Graph, []int{m.C, m.H, m.W}, benchmark, b.BaselineAcc, nil
}

// ladderCurve builds a small built-in tradeoff curve when no calibrated
// curve is shipped: exact execution, FP16 everywhere, and two
// progressively more aggressive sampling/perforation rungs. Speedups
// are modeled from the knobs' cost factors (1/mean rc across the
// graph's approximable ops); QoS values step down synthetically. Good
// enough for demos and smoke tests — production deployments should
// ship an approxtune curve and recalibrate on drift.
func ladderCurve(g *graph.Graph, program string, baselineQoS float64) *pareto.Curve {
	ops := g.ApproxOps()
	classes := g.OpClasses()

	// rung builds a config by picking, per op, the hardware-independent
	// knob of the op's class whose compute-reduction factor is closest
	// to wantRC (rc >= 1; rc=2.0 means half the MACs, so a modeled ~2x
	// speedup). Perf is the mean reduction factor across ops.
	rung := func(wantRC float64) (approx.Config, float64) {
		cfg := approx.Config{}
		var rcSum float64
		for i, op := range ops {
			best := approx.KnobFP16
			bestGap := gap(approx.KnobFP16, wantRC)
			for _, id := range approx.KnobsFor(classes[i], false) {
				if k := approx.MustLookup(id); k.IsBaseline() {
					continue
				}
				if d := gap(id, wantRC); d < bestGap {
					best, bestGap = id, d
				}
			}
			cfg[op] = best
			rc, _ := approx.CostFactors(best)
			rcSum += rc
		}
		if len(ops) == 0 {
			return nil, 1
		}
		return cfg, rcSum / float64(len(ops))
	}

	points := []pareto.Point{{QoS: baselineQoS, Perf: 1, Config: nil}}
	for i, want := range []float64{1.33, 1.5, 2.0} {
		cfg, perf := rung(want)
		if cfg == nil {
			break
		}
		points = append(points, pareto.Point{
			QoS:    baselineQoS - 0.5*float64(i+1),
			Perf:   perf,
			Config: cfg,
		})
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Perf < points[j].Perf })
	return pareto.NewCurve(program, baselineQoS, points)
}

func gap(id approx.KnobID, wantRC float64) float64 {
	rc, _ := approx.CostFactors(id)
	if rc > wantRC {
		return rc - wantRC
	}
	return wantRC - rc
}

// calibrateBudget measures exact baseline executions of a full batch
// and returns a per-batch budget with 20% headroom, so the shipped (or
// built-in) curve's Perf=1 point sits just inside the target and the
// drift detectors judge configurations against a measured baseline
// rather than a guessed one.
func calibrateBudget(g *graph.Graph, itemDims []int, maxBatch int, seed int64) time.Duration {
	dims := append([]int{maxBatch}, itemDims...)
	in := tensor.New(dims...)
	tensor.NewRNG(seed+2).FillNormal(in, 0, 1)
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		start := time.Now()
		g.Execute(in, nil, graph.ExecOptions{})
		d := time.Since(start)
		if best == 0 || d < best {
			best = d
		}
	}
	budget := best + best/5
	if budget <= 0 {
		budget = time.Millisecond
	}
	return budget
}
