// Command approxlint runs the project's static-analysis suite: twelve
// go/ast+go/types analyzers over the source tree — the syntactic rules
// (stdlib-only imports, seeded-RNG determinism, obs-span hygiene, float
// equality, tensor-kernel aliasing, shared-map lock discipline, HTTP
// client defaults, metric naming) and the flow-sensitive rules built on
// internal/lint/flow (scratch-pool lifecycle, module-wide lock ordering,
// context cancellation, map-iteration determinism) — plus, with -ir, the
// domain-level validators over the system's data: the approximation-knob
// registry against the modeled devices and the dataflow graphs of the
// model zoo.
//
// Usage:
//
//	approxlint [-ir] [-list] [-json] [-p N] [packages]
//
// Packages default to ./... resolved from the module root. With -p N the
// per-package analyses run on N goroutines (0 = GOMAXPROCS); output is
// byte-identical to a serial run. With -json the findings are emitted as
// a JSON array on stdout (human-readable lines move to stderr) for
// tooling; `make lint` archives them as lint.json. The exit code is 1
// when any finding is reported, making the command a CI gate (`make ci`
// runs both modes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/lint"
	"repro/internal/models"
	"repro/internal/tensor"
)

func main() {
	irMode := flag.Bool("ir", false, "validate the knob registry and model-zoo graphs instead of source code")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	only := flag.String("only", "", "comma-free single analyzer name to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout (human-readable lines go to stderr)")
	par := flag.Int("p", 1, "parallel analysis workers (0 = GOMAXPROCS); output is identical to a serial run")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: approxlint [-ir] [-list] [-only analyzer] [-json] [-p N] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.AllAnalyzers() {
			fmt.Printf("%-12s %s\n", a.Name(), a.Doc())
		}
		return
	}
	if *irMode {
		os.Exit(runIR())
	}
	os.Exit(runSource(flag.Args(), *only, *jsonOut, *par))
}

// jsonDiag is the machine-readable rendering of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// runSource loads the requested packages and applies the analyzer suite.
func runSource(patterns []string, only string, jsonOut bool, workers int) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "approxlint:", err)
		return 2
	}
	pkgs, err := lint.Load(wd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "approxlint:", err)
		return 2
	}
	failed := 0
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "approxlint: %s: type error: %v\n", p.Path, terr)
			failed = 2
		}
	}
	runner := lint.NewRunner()
	if only != "" {
		a := lint.AnalyzerByName(only)
		if a == nil {
			fmt.Fprintf(os.Stderr, "approxlint: unknown analyzer %q (try -list)\n", only)
			return 2
		}
		runner.Analyzers = []lint.Analyzer{a}
	}
	diags := runner.RunParallel(pkgs, workers)
	if jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "approxlint:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "approxlint: %d finding(s)\n", len(diags))
		return 1
	}
	return failed
}

// runIR validates the domain data: knob registry completeness against the
// TX2 device models, knob-set/curve invariants, and deep structural +
// shape validation of every model-zoo graph (built at reduced width so the
// check stays fast; shape inference touches no tensor data).
func runIR() int {
	bad := 0
	report := func(errs []error) {
		for _, e := range errs {
			fmt.Println(e)
			bad++
		}
	}

	devs := []*device.Device{device.NewTX2GPU(), device.NewTX2CPU()}
	report(core.CheckKnobRegistry(devs...))

	type zooEntry struct {
		g  *graph.Graph
		in tensor.Shape
	}
	const seed, width = 1, 0.25
	zoo := []zooEntry{
		{models.LeNet(seed, width).Graph, tensor.NewShape(1, 1, 28, 28)},
		{models.AlexNetCIFAR(seed, width).Graph, tensor.NewShape(1, 3, 32, 32)},
		{models.AlexNet2(seed, width).Graph, tensor.NewShape(1, 3, 32, 32)},
		{models.AlexNetImageNet(seed, width, 64, 100).Graph, tensor.NewShape(1, 3, 64, 64)},
		{models.VGG16("vgg16", seed, width, 32, 10).Graph, tensor.NewShape(1, 3, 32, 32)},
		{models.ResNet18(seed, width).Graph, tensor.NewShape(1, 3, 32, 32)},
		{models.ResNet50(seed, width, 32, 10).Graph, tensor.NewShape(1, 3, 32, 32)},
		{models.MobileNet(seed, width).Graph, tensor.NewShape(1, 3, 32, 32)},
	}
	for _, z := range zoo {
		report(z.g.ValidateDeep(z.in))
	}

	// The default knob policies must only emit knobs the registry resolves.
	for _, class := range []approx.OpClass{approx.OpConv, approx.OpMatMul, approx.OpReduce, approx.OpOther} {
		for _, id := range approx.KnobsFor(class, true) {
			if _, ok := approx.Lookup(id); !ok {
				fmt.Printf("knob policy for %s emits unregistered id %d\n", class, id)
				bad++
			}
		}
	}

	if bad > 0 {
		fmt.Fprintf(os.Stderr, "approxlint -ir: %d finding(s)\n", bad)
		return 1
	}
	fmt.Printf("approxlint -ir: knob registry (%d knobs, %d devices) and %d model graphs validate clean\n",
		len(approx.All()), len(devs), len(zoo))
	return 0
}
