// Command approxtune runs ApproxTuner's development-time phase on one of
// the built-in CNN benchmarks and writes the shipped tradeoff curve as
// JSON — the artifact the install-time phase consumes.
//
// Usage:
//
//	approxtune -benchmark resnet18 -max-qos-loss 2 -model pi1 -o curve.json
//
// Observability: -trace out.jsonl exports a JSONL span trace of the run,
// -metrics-addr :8090 serves live /metrics (JSON or Prometheus text),
// /healthz and /debug/pprof, -prom writes a final Prometheus textfile,
// -telemetry prints an end-of-run metric summary table, and -v / -q
// adjust progress verbosity.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	approxtuner "repro"
	"repro/internal/models"
	"repro/internal/obs"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "lenet", "one of: "+strings.Join(models.Names(), ", "))
		loss      = flag.Float64("max-qos-loss", 1.0, "acceptable accuracy loss in percentage points")
		model     = flag.String("model", "pi2", "QoS prediction model: pi1, pi2, or empirical")
		images    = flag.Int("images", 64, "dataset size (split 50/50 calibration/test)")
		width     = flag.Float64("width", 0.25, "channel-width multiplier")
		iters     = flag.Int("iters", 4000, "search iteration cap")
		out       = flag.String("o", "", "write the shipped curve JSON to this file (default stdout)")
		seed      = flag.Int64("seed", 1, "seed")
	)
	oc := obs.RegisterFlags(nil)
	flag.Parse()
	if err := oc.Activate(os.Stderr); err != nil {
		log.Fatalf("approxtune: %v", err)
	}
	defer oc.Close()
	logger := oc.Log

	b := models.MustBuild(*benchmark, models.Scale{Images: *images, Width: *width, Seed: *seed})
	calib, test := b.Dataset.Split()
	app, err := approxtuner.NewCNNApp(b.Model.Graph, calib.Images, calib.Labels, test.Images, test.Labels)
	if err != nil {
		log.Fatalf("approxtune: %v", err)
	}
	logger.Infof("benchmark %s: %d layers, baseline accuracy %.2f%%\n",
		*benchmark, b.Model.Graph.LayerCount(), app.BaselineQoS)

	spec := approxtuner.TuneSpec{
		MaxQoSLoss: *loss,
		MaxIters:   *iters,
		Seed:       *seed,
	}
	switch strings.ToLower(*model) {
	case "pi1", "π1":
		spec.Model = approxtuner.Pi1
	case "pi2", "π2", "":
		spec.Model = approxtuner.Pi2
	case "empirical":
		spec.Empirical = true
	default:
		log.Fatalf("approxtune: unknown model %q", *model)
	}

	res, err := app.TuneDevelopmentTime(spec)
	if err != nil {
		log.Fatalf("approxtune: %v", err)
	}
	st := res.Stats
	logger.Infof("tuning done: %d iterations, %d candidates, %d validated, α=%.3f, total %v\n",
		st.Iterations, st.Candidates, st.Validated, st.Alpha, st.Total.Round(1e6))
	logger.Verbosef("phase times: profile %v, calibrate %v, search %v, validate %v\n",
		st.ProfileTime.Round(1e6), st.CalibrateTime.Round(1e6),
		st.SearchTime.Round(1e6), st.ValidateTime.Round(1e6))
	logger.Infof("curve: %d points; best config at threshold: %s\n",
		res.Curve.Len(), bestDescription(app, res))

	data, err := approxtuner.SaveCurve(res.Curve)
	if err != nil {
		log.Fatalf("approxtune: %v", err)
	}
	if *out == "" {
		fmt.Println(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("approxtune: %v", err)
	}
	logger.Infof("curve written to %s\n", *out)
}

func bestDescription(app *approxtuner.App, res *approxtuner.Result) string {
	pt, ok := res.Curve.Best(res.Curve.BaselineQoS - 1e9)
	if !ok {
		return "(empty curve)"
	}
	return fmt.Sprintf("%s (predicted %.2fx, calib QoS %.2f, test QoS %.2f)",
		approxtuner.DescribeConfig(pt.Config), pt.Perf, pt.QoS, app.Evaluate(pt.Config))
}
