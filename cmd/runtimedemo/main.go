// Command runtimedemo replays the paper's runtime-adaptation experiment
// (§7.5, Fig. 6) for a built-in benchmark: the GPU steps down its DVFS
// ladder while the runtime tuner swaps configurations off the shipped
// tradeoff curve to hold the original batch time, trading accuracy.
//
// Usage:
//
//	runtimedemo -benchmark resnet18 -policy average
//
// With -inject-slowdown N the second half of the ladder additionally
// runs N× slower than the shipped curve predicts (an unmodeled fault);
// the end-of-run health report shows the drift detectors catching it.
//
// Observability: -trace out.jsonl exports a JSONL span trace of the run,
// -metrics-addr :8090 serves live /metrics (JSON or Prometheus text),
// /healthz and /debug/pprof, -prom writes a final Prometheus textfile,
// and -telemetry prints an end-of-run metric summary table.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/models"
	"repro/internal/obs"
)

func main() {
	var (
		benchmark = flag.String("benchmark", "resnet18", "one of: "+strings.Join(models.Names(), ", "))
		images    = flag.Int("images", 64, "dataset size")
		width     = flag.Float64("width", 0.25, "channel-width multiplier")
		seed      = flag.Int64("seed", 1, "seed")
		slowdown  = flag.Float64("inject-slowdown", 1, "inject an unmodeled execution-time slowdown of this factor over the second half of the DVFS ladder (1 = none)")
	)
	oc := obs.RegisterFlags(nil)
	flag.Parse()
	if err := oc.Activate(os.Stderr); err != nil {
		log.Fatalf("runtimedemo: %v", err)
	}
	defer oc.Close()

	s := bench.NewSession(bench.Config{
		Benchmarks:    []string{*benchmark},
		Images:        *images,
		Width:         *width,
		Seed:          *seed,
		FaultSlowdown: *slowdown,
	})
	known := false
	for _, n := range models.Names() {
		if n == *benchmark {
			known = true
		}
	}
	if !known {
		log.Fatalf("runtimedemo: unknown benchmark %q", *benchmark)
	}

	rows, health := bench.RunFig6Health(s, *benchmark)
	fmt.Printf("%-10s %-12s %-12s %-10s %-8s\n", "freq(MHz)", "base-time", "adapt-time", "accuracy", "switches")
	for _, r := range rows {
		fmt.Printf("%-10.0f %-12.2f %-12.2f %-10.2f %-8d\n",
			r.FreqMHz, r.BaselineNormTime, r.AdaptedNormTime, r.AdaptedAccuracy, r.ConfigSwitches)
	}
	last := rows[len(rows)-1]
	fmt.Printf("\nat %.0f MHz: baseline would slow %.2fx; adaptation holds %.2fx at %.2f pp accuracy cost\n",
		last.FreqMHz, last.BaselineNormTime, last.AdaptedNormTime,
		last.BaselineAccuracy-last.AdaptedAccuracy)

	fmt.Printf("\n%s", health)
	if health.RecalibrationNeeded {
		fmt.Printf("the shipped curve no longer matches observed behavior; re-run install-time calibration\n")
	}
}
