// Command benchtab regenerates the tables and figures of the paper's
// evaluation section (§6–7) plus the ablation studies listed in
// DESIGN.md. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured numbers.
//
// Usage:
//
//	benchtab -exp all
//	benchtab -exp table1,fig2,fig3 -benchmarks lenet,alexnet2 -images 48
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiments, or 'all': table1, fig2, fp16, cpu, table3, firstlayer, fig3, table4, curvesize, fig4, fig5, fig6, fig7, pruning, ablations")
		benchmarks = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all ten)")
		images     = flag.Int("images", 0, "dataset size per benchmark (default 64)")
		width      = flag.Float64("width", 0, "channel-width multiplier (default 0.25)")
		heavyWidth = flag.Float64("heavy-width", 0, "width for resnet50/vgg16_imagenet (default 0.125)")
		inSize     = flag.Int("imagenet-size", 0, "mini-ImageNet resolution (default 48)")
		maxIters   = flag.Int("iters", 0, "predictive search iteration cap (default 4000)")
		empIters   = flag.Int("emp-iters", 0, "empirical search iteration cap (default 300)")
		seed       = flag.Int64("seed", 0, "experiment seed (default 1)")
	)
	flag.Parse()

	cfg := bench.Config{
		Images:       *images,
		Width:        *width,
		HeavyWidth:   *heavyWidth,
		ImageNetSize: *inSize,
		MaxIters:     *maxIters,
		EmpIters:     *empIters,
		Seed:         *seed,
	}
	if *benchmarks != "" {
		cfg.Benchmarks = strings.Split(*benchmarks, ",")
	}
	s := bench.NewSession(cfg)

	type runner struct {
		name string
		run  func() *bench.Report
	}
	single := func(f func(*bench.Session) *bench.Report) func() *bench.Report {
		return func() *bench.Report { return f(s) }
	}
	smallBench := "alexnet2"
	if len(cfg.Benchmarks) > 0 {
		smallBench = cfg.Benchmarks[0]
	}
	all := []runner{
		{"table1", single(bench.Table1)},
		{"fig2", single(bench.Fig2)},
		{"fp16", single(bench.FP16Only)},
		{"cpu", single(bench.CPUSpeedup)},
		{"table3", single(bench.Table3)},
		{"firstlayer", single(bench.FirstLayerStudy)},
		{"fig3", single(bench.Fig3)},
		{"table4", single(bench.Table4)},
		{"curvesize", single(bench.CurveSize)},
		{"fig4", single(bench.Fig4)},
		{"fig5", single(bench.Fig5)},
		{"fig6", single(bench.Fig6)},
		{"fig7", single(bench.Fig7)},
		{"pruning", single(bench.Pruning)},
		{"predictor_accuracy", func() *bench.Report { return bench.PredictorAccuracy(s, smallBench, 24) }},
		{"alpha", func() *bench.Report { return bench.AlphaCalibration(s, smallBench, 24) }},
		{"epsilon", func() *bench.Report { return bench.EpsilonSweep(s, smallBench) }},
		{"technique", func() *bench.Report { return bench.TechniqueAblation(s, smallBench) }},
		{"offset", func() *bench.Report { return bench.OffsetAblation(s, smallBench) }},
		{"policies", func() *bench.Report { return bench.RuntimePolicies(s, smallBench) }},
	}
	ablations := map[string]bool{
		"predictor_accuracy": true, "alpha": true, "epsilon": true,
		"technique": true, "offset": true, "policies": true,
	}

	want := map[string]bool{}
	runAblations := false
	for _, e := range strings.Split(*exps, ",") {
		e = strings.TrimSpace(e)
		switch e {
		case "all":
			for _, r := range all {
				want[r.name] = true
			}
		case "ablations":
			runAblations = true
		case "":
		default:
			want[e] = true
		}
	}
	if runAblations {
		for name := range ablations {
			want[name] = true
		}
	}

	ran := 0
	for _, r := range all {
		if !want[r.name] {
			continue
		}
		start := time.Now()
		report := r.run()
		fmt.Println(report.String())
		fmt.Printf("  [%s completed in %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchtab: no experiment matched %q\n", *exps)
		os.Exit(2)
	}
}
