// Command loadgen drives load against an approxserve endpoint and
// reports latency quantiles and SLO attainment.
//
// Two arrival models:
//
//	loadgen -url http://127.0.0.1:8080 -n 200 -c 8            # closed loop
//	loadgen -url http://127.0.0.1:8080 -n 500 -open -rps 200  # open-loop Poisson
//
// The closed loop keeps -c workers each waiting for their previous
// response, so offered load adapts to the server. The open loop fires
// requests at seeded Poisson arrivals of rate -rps regardless of
// completions — the arrival process does not slow down when the server
// does, which is what exposes queue buildup, backpressure (429) and
// SLO erosion under overload.
//
// Runs are seeded and reproducible: the same -seed issues the same
// input tensors and the same arrival gaps. -json writes the report for
// machine consumption; -max-errors N makes the process exit non-zero
// when transport failures exceed N (backpressure rejections and
// deadline expiries are accounted separately and do not count).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		url       = flag.String("url", "http://127.0.0.1:8080", "approxserve base URL")
		open      = flag.Bool("open", false, "open-loop Poisson arrivals instead of the closed loop")
		conc      = flag.Int("c", 4, "closed-loop concurrency (workers)")
		rps       = flag.Float64("rps", 100, "open-loop arrival rate, requests/second")
		n         = flag.Int("n", 100, "total requests")
		items     = flag.Int("items", 1, "items per request (batch axis)")
		seed      = flag.Int64("seed", 1, "seed for inputs and arrival gaps")
		slo       = flag.Duration("slo", 0, "SLO threshold for the attainment report (0 = use the server's)")
		timeout   = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
		jsonOut   = flag.String("json", "", "write the report as JSON to this file (\"-\" for stdout)")
		maxErrors = flag.Int("max-errors", -1, "exit non-zero when failed requests exceed this (-1 disables the gate)")
		slowest   = flag.Int("slowest", 3, "report trace IDs of this many slowest requests (traceparent response header)")
		verify    = flag.String("verify-flight", "", "after the run, fetch /debug/flight and require this event plus a span from a reported trace (smoke-test gate)")
	)
	oc := obs.RegisterFlags(nil)
	flag.Parse()
	if err := oc.Activate(os.Stderr); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	defer oc.Close()

	rep, err := serve.RunLoad(context.Background(), serve.LoadConfig{
		URL:             *url,
		OpenLoop:        *open,
		Concurrency:     *conc,
		RPS:             *rps,
		Requests:        *n,
		ItemsPerRequest: *items,
		Seed:            *seed,
		SLO:             *slo,
		Timeout:         *timeout,
		SlowestK:        *slowest,
	})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	fmt.Println(rep)

	if *verify != "" {
		client := &http.Client{Timeout: *timeout}
		if err := serve.VerifyFlight(context.Background(), client, *url, *verify, rep.TraceIDs()); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		fmt.Printf("flight verified: event %q present and dump links a reported trace\n", *verify)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
	}
	if *maxErrors >= 0 && rep.Failed > *maxErrors {
		log.Fatalf("loadgen: %d failed requests exceed -max-errors %d", rep.Failed, *maxErrors)
	}
}
