// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a stable JSON snapshot of the kernel benchmarks, one object per
// benchmark with the fields that matter for the perf gate: op name,
// ns/op, B/op and allocs/op (plus iterations and MB/s when reported).
// `make bench` pipes the tensorops benchmarks through it to regenerate
// BENCH_PR6.json, the committed record of the kernel-engine numbers.
//
// The -diff mode compares two snapshots op by op and exits non-zero when
// any op's ns/op regressed by more than -threshold (default 20%) — the
// perf gate `make ci` smoke-tests against the committed snapshot.
//
// Usage:
//
//	go test -bench . -benchmem -run '^$' ./internal/tensorops | benchjson -o BENCH_PR6.json
//	benchjson -diff BENCH_PR6.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	diff := flag.Bool("diff", false, "compare two snapshot files (old new) instead of parsing stdin")
	threshold := flag.Float64("threshold", 0.20, "with -diff, max tolerated ns/op regression as a fraction")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two snapshot files: old.json new.json")
			os.Exit(2)
		}
		n, err := runDiff(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(2)
		}
		if n > 0 {
			os.Exit(1)
		}
		return
	}

	results, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}

func parseBench(r io.Reader) ([]benchResult, error) {
	var results []benchResult
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the terminal
		if res, ok := parseLine(line); ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}
