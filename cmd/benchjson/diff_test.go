package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnapshot(t *testing.T, dir, name string, results []benchResult) string {
	t.Helper()
	data, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffDetectsRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", []benchResult{
		{Op: "Gemm", NsPerOp: 1000},
		{Op: "Conv", NsPerOp: 2000},
		{Op: "Gone", NsPerOp: 50},
	})
	newPath := writeSnapshot(t, dir, "new.json", []benchResult{
		{Op: "Gemm", NsPerOp: 1500}, // +50%: regressed
		{Op: "Conv", NsPerOp: 2100}, // +5%: within budget
		{Op: "Added", NsPerOp: 10},  // new op: informational only
	})
	var sb strings.Builder
	n, err := runDiff(&sb, oldPath, newPath, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("got %d regressions, want 1:\n%s", n, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"Gemm", "REGRESSED", "new", "removed"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "REGRESSED") != 1 {
		t.Errorf("only Gemm should be flagged:\n%s", out)
	}
}

func TestDiffSelfComparisonIsClean(t *testing.T) {
	dir := t.TempDir()
	snap := []benchResult{{Op: "Gemm", NsPerOp: 1000}, {Op: "Conv", NsPerOp: 2000}}
	path := writeSnapshot(t, dir, "snap.json", snap)
	var sb strings.Builder
	n, err := runDiff(&sb, path, path, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("self-diff reported %d regressions:\n%s", n, sb.String())
	}
}

func TestDiffAtThresholdBoundary(t *testing.T) {
	// Exactly +20% is within budget; the gate fires strictly above it.
	dir := t.TempDir()
	oldPath := writeSnapshot(t, dir, "old.json", []benchResult{{Op: "Gemm", NsPerOp: 1000}})
	newPath := writeSnapshot(t, dir, "new.json", []benchResult{{Op: "Gemm", NsPerOp: 1200}})
	var sb strings.Builder
	n, err := runDiff(&sb, oldPath, newPath, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("+20%% exactly should pass, got %d regressions:\n%s", n, sb.String())
	}
}

// TestDiffBadBaseline pins the degenerate-snapshot guard: zero,
// negative, NaN and infinite ns/op values can never anchor a ratio, so
// they are surfaced as bad rows and never count as (or mask)
// regressions. The table drives diffSnapshots directly — non-finite
// values cannot round-trip standard JSON, but a zeroed field from a
// truncated or hand-edited snapshot decodes to exactly these structs.
func TestDiffBadBaseline(t *testing.T) {
	cases := []struct {
		name     string
		oldNs    float64
		newNs    float64
		wantRow  string
		wantRegr int
	}{
		{"zero baseline", 0, 1500, "bad baseline", 0},
		{"negative baseline", -100, 1500, "bad baseline", 0},
		{"nan baseline", math.NaN(), 1500, "bad baseline", 0},
		{"inf baseline", math.Inf(1), 1500, "bad baseline", 0},
		{"nan sample", 1000, math.NaN(), "bad sample", 0},
		{"inf sample", 1000, math.Inf(1), "bad sample", 0},
		{"healthy pair still gates", 1000, 1500, "REGRESSED", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oldRes := []benchResult{{Op: "Gemm", NsPerOp: tc.oldNs}, {Op: "Conv", NsPerOp: 2000}}
			newRes := []benchResult{{Op: "Gemm", NsPerOp: tc.newNs}, {Op: "Conv", NsPerOp: 2100}}
			var sb strings.Builder
			regressed := diffSnapshots(&sb, oldRes, newRes, 0.20)
			if len(regressed) != tc.wantRegr {
				t.Fatalf("got %d regressions %v, want %d:\n%s", len(regressed), regressed, tc.wantRegr, sb.String())
			}
			if !strings.Contains(sb.String(), tc.wantRow) {
				t.Errorf("diff output missing %q row:\n%s", tc.wantRow, sb.String())
			}
			// The healthy sibling op must still be compared either way.
			if !strings.Contains(sb.String(), "Conv") {
				t.Errorf("healthy op dropped from the table:\n%s", sb.String())
			}
		})
	}
}

// TestDiffAllocsGate drives the allocs/op regression gate through its
// table of edge cases: growth over threshold fails, growth within budget
// passes, unmeasured sides (-1 sentinel) never gate, and any growth from
// a zero-alloc baseline fails (the pooled kernels pin zero steady-state
// allocations; no ratio can express losing that).
func TestDiffAllocsGate(t *testing.T) {
	cases := []struct {
		name     string
		oldAl    int64
		newAl    int64
		wantRegr int
	}{
		{"flat", 10, 10, 0},
		{"improved", 10, 5, 0},
		{"within budget", 10, 12, 0}, // +20% exactly: gate fires strictly above
		{"over budget", 10, 13, 1},   // +30%
		{"zero baseline growth", 0, 1, 1},
		{"zero to zero", 0, 0, 0},
		{"old unmeasured", -1, 50, 0},
		{"new unmeasured", 40, -1, 0},
		{"both unmeasured", -1, -1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oldRes := []benchResult{{Op: "Gemm", NsPerOp: 1000, AllocsPerOp: tc.oldAl}}
			newRes := []benchResult{{Op: "Gemm", NsPerOp: 1000, AllocsPerOp: tc.newAl}}
			var sb strings.Builder
			regressed := diffSnapshots(&sb, oldRes, newRes, 0.20)
			if len(regressed) != tc.wantRegr {
				t.Fatalf("got %d regressions %v, want %d:\n%s",
					len(regressed), regressed, tc.wantRegr, sb.String())
			}
			if tc.wantRegr > 0 && !strings.Contains(sb.String(), "ALLOCS REGRESSED") {
				t.Errorf("alloc regression not flagged in table:\n%s", sb.String())
			}
		})
	}
}

// TestDiffAllocsAndTimeBothRegressed: an op that regresses on both axes
// is reported once (as a time regression — the stronger signal).
func TestDiffAllocsAndTimeBothRegressed(t *testing.T) {
	oldRes := []benchResult{{Op: "Gemm", NsPerOp: 1000, AllocsPerOp: 2}}
	newRes := []benchResult{{Op: "Gemm", NsPerOp: 2000, AllocsPerOp: 20}}
	var sb strings.Builder
	regressed := diffSnapshots(&sb, oldRes, newRes, 0.20)
	if len(regressed) != 1 {
		t.Fatalf("got %v, want exactly one entry", regressed)
	}
	if strings.Count(sb.String(), "REGRESSED") != 1 {
		t.Errorf("op flagged more than once:\n%s", sb.String())
	}
}

func TestDiffBadFile(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := runDiff(&sb, bad, bad, 0.20); err == nil {
		t.Fatal("malformed snapshot should error")
	}
	if _, err := runDiff(&sb, filepath.Join(dir, "missing.json"), bad, 0.20); err == nil {
		t.Fatal("missing snapshot should error")
	}
}
