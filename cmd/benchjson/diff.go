package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"text/tabwriter"
)

// loadSnapshot reads a benchjson snapshot written by the -o mode.
func loadSnapshot(path string) ([]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []benchResult
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return results, nil
}

// allocsCell formats an allocs/op value for the delta table; -1 is the
// "not measured" sentinel (the run lacked -benchmem).
func allocsCell(v int64) string {
	if v < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// allocsRegressed reports whether allocs/op grew by more than threshold.
// Unmeasured values (-1) never gate: losing -benchmem on one side is a
// harness change, not a regression. Growth from a zero baseline is always
// a regression — the pooled kernels pin "zero allocations steady-state"
// as a property, and no ratio can express its loss.
func allocsRegressed(old, new int64, threshold float64) bool {
	if old < 0 || new < 0 || new <= old {
		return false
	}
	if old == 0 {
		return true
	}
	return float64(new) > float64(old)*(1+threshold)
}

// diffSnapshots compares two snapshots op by op, writes a delta table,
// and returns the names of ops whose ns/op or allocs/op regressed by more
// than threshold (0.20 = 20%). Ops present in only one snapshot are
// listed but never count as regressions — a renamed or new benchmark is
// not a slowdown.
func diffSnapshots(w io.Writer, oldRes, newRes []benchResult, threshold float64) []string {
	oldByOp := make(map[string]benchResult, len(oldRes))
	for _, r := range oldRes {
		oldByOp[r.Op] = r
	}
	newOps := make(map[string]bool, len(newRes))

	var regressed []string
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "op\told ns/op\tnew ns/op\tdelta\told allocs\tnew allocs\t\n")
	for _, nr := range newRes {
		newOps[nr.Op] = true
		or, ok := oldByOp[nr.Op]
		if !ok {
			fmt.Fprintf(tw, "%s\t-\t%.0f\tnew\t-\t%s\t\n", nr.Op, nr.NsPerOp, allocsCell(nr.AllocsPerOp))
			continue
		}
		// A zero, negative, NaN or infinite baseline cannot anchor a
		// ratio: surface it as a bad baseline instead of silently
		// skipping the op (a corrupt snapshot would otherwise disable
		// the gate for exactly the ops it should guard).
		if !(or.NsPerOp > 0) || math.IsInf(or.NsPerOp, 0) {
			fmt.Fprintf(tw, "%s\t%g\t%.0f\tbad baseline\t\t\t\n", nr.Op, or.NsPerOp, nr.NsPerOp)
			continue
		}
		if !(nr.NsPerOp > 0) || math.IsInf(nr.NsPerOp, 0) {
			fmt.Fprintf(tw, "%s\t%.0f\t%g\tbad sample\t\t\t\n", nr.Op, or.NsPerOp, nr.NsPerOp)
			continue
		}
		delta := nr.NsPerOp/or.NsPerOp - 1
		flag := ""
		if delta > threshold {
			flag = "REGRESSED"
			regressed = append(regressed, nr.Op)
		} else if allocsRegressed(or.AllocsPerOp, nr.AllocsPerOp, threshold) {
			flag = "ALLOCS REGRESSED"
			regressed = append(regressed, nr.Op)
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%+.1f%%\t%s\t%s\t%s\n",
			nr.Op, or.NsPerOp, nr.NsPerOp, delta*100,
			allocsCell(or.AllocsPerOp), allocsCell(nr.AllocsPerOp), flag)
	}
	for _, or := range oldRes {
		if !newOps[or.Op] {
			fmt.Fprintf(tw, "%s\t%.0f\t-\tremoved\t%s\t-\t\n", or.Op, or.NsPerOp, allocsCell(or.AllocsPerOp))
		}
	}
	tw.Flush()
	return regressed
}

// runDiff implements the -diff mode: load both snapshots, print the
// table, and report whether the gate should fail.
func runDiff(w io.Writer, oldPath, newPath string, threshold float64) (int, error) {
	oldRes, err := loadSnapshot(oldPath)
	if err != nil {
		return 0, err
	}
	newRes, err := loadSnapshot(newPath)
	if err != nil {
		return 0, err
	}
	regressed := diffSnapshots(w, oldRes, newRes, threshold)
	if len(regressed) > 0 {
		fmt.Fprintf(w, "\n%d op(s) regressed more than %.0f%%: %v\n",
			len(regressed), threshold*100, regressed)
	}
	return len(regressed), nil
}
