package main

import "testing"

func TestParseLine(t *testing.T) {
	res, ok := parseLine("BenchmarkGemm-4   \t 428\t   2761529 ns/op\t 284.81 MB/s\t       0 B/op\t       0 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	want := benchResult{Op: "Gemm", Iterations: 428, NsPerOp: 2761529, MBPerS: 284.81, BPerOp: 0, AllocsPerOp: 0}
	if res != want {
		t.Fatalf("parsed %+v, want %+v", res, want)
	}
}

func TestParseLineWithoutBenchmem(t *testing.T) {
	res, ok := parseLine("BenchmarkSoftmax-1 \t 1000 \t 104301 ns/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if res.Op != "Softmax" || res.NsPerOp != 104301 {
		t.Fatalf("parsed %+v", res)
	}
	if res.BPerOp != -1 || res.AllocsPerOp != -1 {
		t.Fatalf("missing -benchmem columns should stay -1, got %+v", res)
	}
}

func TestParseLineSubBenchmarkName(t *testing.T) {
	// Sub-benchmark names keep their slash path; only the trailing
	// -GOMAXPROCS suffix is trimmed.
	res, ok := parseLine("BenchmarkConv/pad-1-8 \t 12 \t 99 ns/op")
	if !ok || res.Op != "Conv/pad-1" {
		t.Fatalf("parsed %+v ok=%v, want op Conv/pad-1", res, ok)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro/internal/tensorops\t12.3s",
		"BenchmarkBroken-4 notanumber 12 ns/op",
		"Benchmark justkidding",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q should not parse as a benchmark", line)
		}
	}
}
