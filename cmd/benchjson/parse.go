package main

import (
	"strconv"
	"strings"
)

// benchResult is one parsed benchmark line. B/op and allocs/op default to
// -1 when the run did not use -benchmem, so "measured zero allocations"
// and "not measured" stay distinguishable in the snapshot.
type benchResult struct {
	Op          string  `json:"op"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkGemm-4   428   2761529 ns/op   284.81 MB/s   0 B/op   0 allocs/op
//
// Non-benchmark lines (headers, PASS, ok ...) report ok=false.
func parseLine(line string) (benchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return benchResult{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Trim the -GOMAXPROCS suffix the harness appends to every name.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchResult{}, false
	}
	res := benchResult{Op: name, Iterations: iters, BPerOp: -1, AllocsPerOp: -1}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchResult{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = val
			seen = true
		case "MB/s":
			res.MBPerS = val
		case "B/op":
			res.BPerOp = int64(val)
		case "allocs/op":
			res.AllocsPerOp = int64(val)
		}
	}
	return res, seen
}
