# Tier-1 verification gate: everything `make ci` runs must stay green.
# CI = formatting check + vet + build + race-enabled tests.

GO ?= go

.PHONY: ci fmt-check vet build test race bench

ci: fmt-check vet build race

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The bench package replays whole tuning experiments; under the race
# detector it needs more than the default 10m per-package timeout.
race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
