# Tier-1 verification gate: everything `make ci` runs must stay green.
# CI = formatting check + vet + project lint (source + IR) + build +
# race-enabled tests.

GO ?= go

.PHONY: ci fmt-check vet lint lint-registry build test race chaos bench bench-smoke bench-diff trace

ci: fmt-check vet lint lint-registry build bench-diff race

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-specific static analysis (cmd/approxlint): twelve go/ast+go/types
# analyzers over the source tree (per-package analysis parallelized with
# -p 0, findings archived as lint.json), then the domain validators over
# the knob registry and the model-zoo graphs.
lint:
	$(GO) run ./cmd/approxlint -json -p 0 ./... > lint.json
	$(GO) run ./cmd/approxlint -ir

# Guard the analyzer inventory: the registry (approxlint -list), the
# README's analyzer table, and the documented count must all agree, so a
# new rule cannot land undocumented (or vice versa).
lint-registry:
	@want=12; \
	got=$$($(GO) run ./cmd/approxlint -list | wc -l); \
	doc=$$(grep -c '^| `[a-z]*` |' README.md); \
	if [ "$$got" -ne "$$want" ] || [ "$$doc" -ne "$$want" ]; then \
		echo "analyzer registry mismatch: -list=$$got README table=$$doc want=$$want"; \
		exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The bench package replays whole tuning experiments; under the race
# detector it needs more than the default 10m per-package timeout.
race:
	$(GO) test -race -timeout 45m ./...

# Fault-injection suite for the distributed install-time protocol: seeded
# chaos schedules (edge crashes, flaky transport, no-shows) plus the
# zero-fault bit-determinism pin. `-short` trims to one seed and drops
# the slowest scenario.
chaos:
	$(GO) test -race -v -run 'TestChaos|TestEdgeRunHonorsContext' ./internal/distrib

# Kernel benchmarks (full benchtime) plus one pass of the end-to-end
# per-figure experiment benchmarks, with allocation stats, parsed into
# the committed BENCH_PR8.json snapshot (cmd/benchjson). Regenerate
# after kernel work, then gate future changes with
# `benchjson -diff BENCH_PR8.json new.json`. BENCH_PR6.json is the
# pre-pack-cache baseline kept for the before/after comparison.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/tensorops > bench.out
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' . >> bench.out
	$(GO) run ./cmd/benchjson -o BENCH_PR8.json < bench.out
	@rm bench.out

# Perf-gate smoke: the diff mode must parse the committed snapshot and a
# self-comparison must report zero regressions (time and allocs/op).
bench-diff:
	$(GO) run ./cmd/benchjson -diff BENCH_PR8.json BENCH_PR8.json

# One-iteration smoke run of every benchmark in the module.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Regenerate the committed sample span trace (results/sample_trace.jsonl)
# that trace_test.go parses. The quickstart example is fully seeded, so
# the span tree is deterministic (timestamps aside).
trace:
	$(GO) run ./examples/quickstart -trace results/sample_trace.jsonl
