# Tier-1 verification gate: everything `make ci` runs must stay green.
# CI = formatting check + vet + project lint (source + IR) + build +
# race-enabled tests.

GO ?= go

.PHONY: ci fmt-check vet lint build test race chaos bench bench-smoke

ci: fmt-check vet lint build race

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-specific static analysis (cmd/approxlint): seven go/ast+go/types
# analyzers over the source tree, then the domain validators over the knob
# registry and the model-zoo graphs.
lint:
	$(GO) run ./cmd/approxlint ./...
	$(GO) run ./cmd/approxlint -ir

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The bench package replays whole tuning experiments; under the race
# detector it needs more than the default 10m per-package timeout.
race:
	$(GO) test -race -timeout 45m ./...

# Fault-injection suite for the distributed install-time protocol: seeded
# chaos schedules (edge crashes, flaky transport, no-shows) plus the
# zero-fault bit-determinism pin. `-short` trims to one seed and drops
# the slowest scenario.
chaos:
	$(GO) test -race -v -run 'TestChaos|TestEdgeRunHonorsContext' ./internal/distrib

# Kernel benchmarks (full benchtime) plus one pass of the end-to-end
# per-figure experiment benchmarks, with allocation stats, parsed into
# the committed BENCH_PR3.json snapshot (cmd/benchjson). Regenerate
# after kernel work.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/tensorops > bench.out
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' . >> bench.out
	$(GO) run ./cmd/benchjson -o BENCH_PR3.json < bench.out
	@rm bench.out

# One-iteration smoke run of every benchmark in the module.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
