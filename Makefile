# Tier-1 verification gate: everything `make ci` runs must stay green.
# CI = formatting check + vet + project lint (source + IR) + build +
# race-enabled tests.

GO ?= go

.PHONY: ci fmt-check vet lint lint-registry build test race chaos bench bench-smoke bench-diff serve-smoke trace-smoke trace

ci: fmt-check vet lint lint-registry build bench-diff serve-smoke trace-smoke race

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-specific static analysis (cmd/approxlint): twelve go/ast+go/types
# analyzers over the source tree (per-package analysis parallelized with
# -p 0, findings archived as lint.json), then the domain validators over
# the knob registry and the model-zoo graphs.
lint:
	$(GO) run ./cmd/approxlint -json -p 0 ./... > lint.json
	$(GO) run ./cmd/approxlint -ir

# Guard the analyzer inventory: the registry (approxlint -list), the
# README's analyzer table, and the documented count must all agree, so a
# new rule cannot land undocumented (or vice versa).
lint-registry:
	@want=12; \
	got=$$($(GO) run ./cmd/approxlint -list | wc -l); \
	doc=$$(grep -c '^| `[a-z]*` |' README.md); \
	if [ "$$got" -ne "$$want" ] || [ "$$doc" -ne "$$want" ]; then \
		echo "analyzer registry mismatch: -list=$$got README table=$$doc want=$$want"; \
		exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The bench package replays whole tuning experiments; under the race
# detector it needs more than the default 10m per-package timeout.
race:
	$(GO) test -race -timeout 45m ./...

# Fault-injection suite for the distributed install-time protocol: seeded
# chaos schedules (edge crashes, flaky transport, no-shows) plus the
# zero-fault bit-determinism pin. `-short` trims to one seed and drops
# the slowest scenario.
chaos:
	$(GO) test -race -v -run 'TestChaos|TestEdgeRunHonorsContext' ./internal/distrib

# Kernel benchmarks (full benchtime) plus one pass of the end-to-end
# per-figure experiment benchmarks and the serving-layer loadgen and
# tracing-overhead benchmarks, with allocation stats, parsed into the
# committed BENCH_PR10.json snapshot (cmd/benchjson). Regenerate after
# kernel or serving work; the perf gate diffs it against BENCH_PR9.json
# (the pre-tracing snapshot). BENCH_PR6.json is the pre-pack-cache
# baseline kept for the before/after comparison.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/tensorops > bench.out
	$(GO) test -bench . -benchmem -benchtime 3x -run '^$$' . >> bench.out
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' ./internal/serve >> bench.out
	$(GO) run ./cmd/benchjson -o BENCH_PR10.json < bench.out
	@rm bench.out

# Perf gate: the committed post-tracing snapshot must show no ns/op or
# allocs/op regression over the committed pre-tracing snapshot (ops new
# in PR10 — the tracing-overhead benchmark — are listed but never gate).
# Both snapshots must come from the same host: benchmark numbers are
# machine-specific (core count changes what batch-sharding buys).
# The 35% threshold reflects single-tenant-noise on shared 1-core CI
# hosts, where even 3-iteration end-to-end runs swing ~±15%; allocs/op
# still gates at the same fraction and is noise-free.
bench-diff:
	$(GO) run ./cmd/benchjson -diff -threshold 0.35 BENCH_PR9.json BENCH_PR10.json

# End-to-end serving smoke: boot approxserve on a loopback port, wait
# for the ready-file, fire one seeded closed-loop loadgen burst that
# tolerates zero transport failures, then SIGTERM and require a clean
# graceful drain (exit 0).
serve-smoke:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/approxserve ./cmd/approxserve || exit 1; \
	$(GO) build -o $$tmp/loadgen ./cmd/loadgen || exit 1; \
	$$tmp/approxserve -addr 127.0.0.1:0 -benchmark lenet -width 0.25 \
		-slo 250ms -ready-file $$tmp/ready & pid=$$!; \
	ok=0; for i in $$(seq 1 100); do \
		if [ -s $$tmp/ready ]; then ok=1; break; fi; sleep 0.1; \
	done; \
	if [ $$ok -ne 1 ]; then \
		echo "serve-smoke: server never became ready"; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; \
	fi; \
	url="http://$$(cat $$tmp/ready)"; \
	if ! $$tmp/loadgen -url $$url -n 32 -c 4 -items 2 -seed 7 -max-errors 0; then \
		echo "serve-smoke: loadgen burst failed"; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; \
	fi; \
	kill -TERM $$pid; \
	if ! wait $$pid; then \
		echo "serve-smoke: server exited non-zero on drain"; rm -rf $$tmp; exit 1; \
	fi; \
	rm -rf $$tmp; \
	echo "serve-smoke: OK"

# End-to-end tracing smoke: boot approxserve with the chaos slowdown
# hook (×3 after 6 batches) and a flight file, fire a seeded burst whose
# loadgen must (a) see zero failures, (b) collect slowest/failed trace
# IDs from traceparent response headers, and (c) verify over
# /debug/flight that the drift alarm fired and at least one reported
# trace's span is in the live ring. The drift latch must also have
# dumped the alarm into the flight file.
trace-smoke:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/approxserve ./cmd/approxserve || exit 1; \
	$(GO) build -o $$tmp/loadgen ./cmd/loadgen || exit 1; \
	$$tmp/approxserve -addr 127.0.0.1:0 -benchmark lenet -width 0.25 \
		-slo 250ms -window 4 -trace-seed 11 -slow-after 6 -slow-factor 3 \
		-flight $$tmp/flight.jsonl -ready-file $$tmp/ready & pid=$$!; \
	ok=0; for i in $$(seq 1 100); do \
		if [ -s $$tmp/ready ]; then ok=1; break; fi; sleep 0.1; \
	done; \
	if [ $$ok -ne 1 ]; then \
		echo "trace-smoke: server never became ready"; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; \
	fi; \
	url="http://$$(cat $$tmp/ready)"; \
	if ! $$tmp/loadgen -url $$url -n 96 -c 4 -items 2 -seed 7 -max-errors 0 \
		-slowest 5 -verify-flight runtime.drift_alarm; then \
		echo "trace-smoke: traced burst or flight verification failed"; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; \
	fi; \
	if ! grep -q 'runtime.drift_alarm' $$tmp/flight.jsonl; then \
		echo "trace-smoke: drift latch never dumped the alarm to the flight file"; kill $$pid 2>/dev/null; rm -rf $$tmp; exit 1; \
	fi; \
	kill -TERM $$pid; \
	if ! wait $$pid; then \
		echo "trace-smoke: server exited non-zero on drain"; rm -rf $$tmp; exit 1; \
	fi; \
	rm -rf $$tmp; \
	echo "trace-smoke: OK"

# One-iteration smoke run of every benchmark in the module.
bench-smoke:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Regenerate the committed sample span trace (results/sample_trace.jsonl)
# that trace_test.go parses. The quickstart example is fully seeded, so
# the span tree is deterministic (timestamps aside).
trace:
	$(GO) run ./examples/quickstart -trace results/sample_trace.jsonl
