# Tier-1 verification gate: everything `make ci` runs must stay green.
# CI = formatting check + vet + project lint (source + IR) + build +
# race-enabled tests.

GO ?= go

.PHONY: ci fmt-check vet lint build test race bench

ci: fmt-check vet lint build race

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# Project-specific static analysis (cmd/approxlint): six go/ast+go/types
# analyzers over the source tree, then the domain validators over the knob
# registry and the model-zoo graphs.
lint:
	$(GO) run ./cmd/approxlint ./...
	$(GO) run ./cmd/approxlint -ir

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The bench package replays whole tuning experiments; under the race
# detector it needs more than the default 10m per-package timeout.
race:
	$(GO) test -race -timeout 45m ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
