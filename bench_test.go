// Benchmarks that regenerate each table and figure of the paper's
// evaluation at test scale — one testing.B benchmark per artifact, all
// driven by the shared harness in internal/bench (cmd/benchtab runs the
// full-scale versions). The reported ns/op is the wall-clock of one
// complete experiment regeneration; the interesting outputs (speedups,
// energy reductions, tuning-time ratios) are reported as custom metrics.
package approxtuner_test

import (
	"testing"

	"repro/internal/bench"
)

// benchCfg is sized so each experiment completes in seconds.
func benchCfg() bench.Config {
	return bench.Config{
		Benchmarks:   []string{"lenet", "alexnet2"},
		Images:       24,
		Width:        0.125,
		ImageNetSize: 32,
		MaxIters:     300,
		StallLimit:   150,
		EmpIters:     60,
		NCalibrate:   6,
		MaxConfigs:   16,
		Seed:         1,
	}
}

func runExperiment(b *testing.B, metricKeys []string, run func(*bench.Session) *bench.Report) {
	b.Helper()
	b.ReportAllocs()
	var last *bench.Report
	for i := 0; i < b.N; i++ {
		s := bench.NewSession(benchCfg())
		last = run(s)
	}
	for _, k := range metricKeys {
		if v, ok := last.Measures[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// BenchmarkTable1 regenerates Table 1 (benchmarks, layers, accuracy,
// search-space sizes).
func BenchmarkTable1(b *testing.B) {
	runExperiment(b, nil, bench.Table1)
}

// BenchmarkFig2a regenerates Fig. 2a/2b (GPU speedups and energy
// reductions at ΔQoS 1/2/3% with hardware-independent knobs).
func BenchmarkFig2a(b *testing.B) {
	runExperiment(b, []string{"gpu_speedup_geomean_1pct", "gpu_speedup_geomean_3pct"}, bench.Fig2)
}

// BenchmarkFig2b reports the energy-reduction side of Fig. 2.
func BenchmarkFig2b(b *testing.B) {
	runExperiment(b, []string{"gpu_energy_geomean_1pct", "gpu_energy_geomean_3pct"}, bench.Fig2)
}

// BenchmarkFP16Only regenerates the §7.1 FP16-alone measurement.
func BenchmarkFP16Only(b *testing.B) {
	runExperiment(b, []string{"fp16_speedup_geomean"}, bench.FP16Only)
}

// BenchmarkCPUSpeedup regenerates the §7.1 CPU results (FP32-only curve).
func BenchmarkCPUSpeedup(b *testing.B) {
	runExperiment(b, []string{"cpu_speedup_geomean_3pct"}, bench.CPUSpeedup)
}

// BenchmarkTable3 regenerates Table 3 (knob mix of the best ΔQoS-3%
// configuration).
func BenchmarkTable3(b *testing.B) {
	runExperiment(b, nil, bench.Table3)
}

// BenchmarkFirstLayer regenerates the §7.2 first-vs-last layer
// sensitivity observation.
func BenchmarkFirstLayer(b *testing.B) {
	runExperiment(b, []string{"benchmarks_where_first_conv_hurts_more"}, bench.FirstLayerStudy)
}

// BenchmarkFig3 regenerates Fig. 3 (predictive Π1/Π2 vs empirical tuning
// speedups).
func BenchmarkFig3(b *testing.B) {
	runExperiment(b, []string{"pi1_speedup_geomean", "pi2_speedup_geomean", "empirical_speedup_geomean"}, bench.Fig3)
}

// BenchmarkTable4 regenerates Table 4 (tuning-time reductions of
// predictive over empirical tuning).
func BenchmarkTable4(b *testing.B) {
	runExperiment(b, []string{"pi1_tuning_speedup_geomean", "pi2_tuning_speedup_geomean"}, bench.Table4)
}

// BenchmarkCurveSize regenerates the §7.3 curve-size reduction numbers.
func BenchmarkCurveSize(b *testing.B) {
	runExperiment(b, []string{"curve_reduction_geomean"}, bench.CurveSize)
}

// BenchmarkFig4 regenerates Fig. 4 (install-time GPU+PROMISE energy
// reductions via distributed predictive tuning).
func BenchmarkFig4(b *testing.B) {
	runExperiment(b, []string{"install_energy_pi1_geomean", "install_energy_pi2_geomean"}, bench.Fig4)
}

// BenchmarkFig5 regenerates Fig. 5 (power rails across the DVFS ladder).
func BenchmarkFig5(b *testing.B) {
	runExperiment(b, []string{"gpu_power_ratio", "sys_power_ratio"}, bench.Fig5)
}

// BenchmarkFig6 regenerates Fig. 6 (runtime adaptation under DVFS).
func BenchmarkFig6(b *testing.B) {
	runExperiment(b, nil, func(s *bench.Session) *bench.Report {
		rows := bench.RunFig6(s, "alexnet2")
		r := &bench.Report{Name: "fig6", Title: "runtime adaptation"}
		last := rows[len(rows)-1]
		r.AddMeasure("baseline_slowdown_319MHz", last.BaselineNormTime)
		r.AddMeasure("adapted_time_319MHz", last.AdaptedNormTime)
		return r
	})
}

// BenchmarkFig7 regenerates Fig. 7 (CNN + Canny threshold grid).
func BenchmarkFig7(b *testing.B) {
	runExperiment(b, []string{"fig7_tightest_cell_speedup", "fig7_loosest_cell_speedup"}, func(s *bench.Session) *bench.Report {
		// The composite benchmark only needs alexnet2.
		return bench.Fig7(s)
	})
}

// BenchmarkPruning regenerates the §8 pruning-interaction study.
func BenchmarkPruning(b *testing.B) {
	runExperiment(b, []string{"pruned_mac_reduction_geomean"}, func(s *bench.Session) *bench.Report {
		return bench.Pruning(s)
	})
}

// --- Ablation benchmarks (DESIGN.md §4) ---

// BenchmarkPredictorAccuracy measures Π1/Π2 prediction quality.
func BenchmarkPredictorAccuracy(b *testing.B) {
	runExperiment(b, []string{"rank_Π1", "rank_Π2"}, func(s *bench.Session) *bench.Report {
		return bench.PredictorAccuracy(s, "lenet", 16)
	})
}

// BenchmarkAlphaCalibration measures the effect of the α regression.
func BenchmarkAlphaCalibration(b *testing.B) {
	runExperiment(b, []string{"rmse_alpha1", "rmse_calibrated"}, func(s *bench.Session) *bench.Report {
		return bench.AlphaCalibration(s, "lenet", 16)
	})
}

// BenchmarkEpsilonSweep measures PSε growth with ε.
func BenchmarkEpsilonSweep(b *testing.B) {
	runExperiment(b, []string{"candidates"}, func(s *bench.Session) *bench.Report {
		return bench.EpsilonSweep(s, "lenet")
	})
}

// BenchmarkTechniqueAblation compares the search ensemble vs random-only.
func BenchmarkTechniqueAblation(b *testing.B) {
	runExperiment(b, []string{"ensemble_best", "random_best"}, func(s *bench.Session) *bench.Report {
		return bench.TechniqueAblation(s, "lenet")
	})
}

// BenchmarkOffsetAblation compares the full offset knob space vs offset-0.
func BenchmarkOffsetAblation(b *testing.B) {
	runExperiment(b, []string{"speedup_all_offsets", "speedup_offset0"}, func(s *bench.Session) *bench.Report {
		return bench.OffsetAblation(s, "alexnet2")
	})
}

// BenchmarkRuntimePolicies compares runtime Policy 1 vs Policy 2.
func BenchmarkRuntimePolicies(b *testing.B) {
	runExperiment(b, []string{"misses_enforce", "misses_average"}, func(s *bench.Session) *bench.Report {
		return bench.RuntimePolicies(s, "alexnet2")
	})
}
