// Package approxtuner is the public API of this ApproxTuner
// reproduction — a compiler and runtime system for adaptive
// approximations in tensor-based applications (Sharif et al., PPoPP
// 2021).
//
// The workflow mirrors the paper's three phases:
//
//	app, _ := approxtuner.NewCNNApp(g, calibImgs, calibLabels, testImgs, testLabels)
//	dev, _ := app.TuneDevelopmentTime(approxtuner.TuneSpec{MaxQoSLoss: 1})
//	gpu := approxtuner.TX2GPU()
//	inst, _ := app.TuneInstallTime(dev, gpu, approxtuner.TuneSpec{MaxQoSLoss: 1})
//	rt, _ := app.NewRuntime(inst.Curve, approxtuner.PolicyAverage, targetTime, 1)
//
// Development-time tuning explores hardware-independent approximations
// (FP16, filter sampling, perforated convolutions, reduction sampling)
// with the predictive models Π1/Π2 and ships a relaxed tradeoff curve;
// install-time tuning refines the curve with device measurements and,
// when the PROMISE analog accelerator is present, runs distributed
// predictive tuning over its voltage knobs; the runtime picks
// configurations off the final curve to hold a performance target.
//
// The heavy lifting lives in the internal packages (tensor kernels, the
// dataflow-graph IR, knob registry, autotuner, predictors, device models);
// this package assembles them behind a stable surface.
package approxtuner

import (
	"fmt"

	"repro/internal/approx"
	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/pareto"
	"repro/internal/predictor"
	"repro/internal/qos"
	"repro/internal/tensor"
)

// Re-exported building blocks. The aliases keep user code in one import.
type (
	// Config maps tensor-operation IDs to approximation knob values.
	Config = approx.Config
	// Curve is a shipped QoS/performance tradeoff curve.
	Curve = pareto.Curve
	// TradeoffPoint is one (QoS, Perf, config) entry of a curve.
	TradeoffPoint = pareto.Point
	// Graph is the ApproxHPVM-style tensor dataflow IR.
	Graph = graph.Graph
	// Tensor is the dense float32 tensor the kernels operate on.
	Tensor = tensor.Tensor
	// Device is a modeled edge compute unit (performance/energy/DVFS).
	Device = device.Device
	// Runtime is the run-time approximation controller.
	Runtime = core.RuntimeTuner
	// Result bundles a tuning run's curve, stats and profiles.
	Result = core.Result
	// InstallResult bundles an install-time run's curve and stats.
	InstallResult = core.InstallResult
	// InstallOptions is the full install-time option set, including the
	// distributed protocol's fault-tolerance knobs (LeaseTTL,
	// RequestTimeout, MaxRetries, RetryBase). Build one with
	// App.InstallOptionsFor when driving the HTTP coordinator/edge
	// transport directly.
	InstallOptions = core.InstallOptions
	// Metric scores program outputs (higher is better).
	Metric = qos.Metric
)

// Predictor model selectors.
const (
	Pi1 = predictor.Pi1
	Pi2 = predictor.Pi2
)

// Runtime policies (§5).
const (
	PolicyEnforce = core.PolicyEnforce
	PolicyAverage = core.PolicyAverage
)

// Install-time objectives.
const (
	MinimizeTime   = core.MinimizeTime
	MinimizeEnergy = core.MinimizeEnergy
)

// TX2GPU returns the Jetson TX2 GPU device model (with on-chip PROMISE).
func TX2GPU() *Device { return device.NewTX2GPU() }

// TX2CPU returns the Jetson TX2 CPU device model (no FP16 pipeline).
func TX2CPU() *Device { return device.NewTX2CPU() }

// App is a tunable application: a tensor program plus its calibration and
// test inputs and QoS metrics.
type App struct {
	prog core.Program
	// BaselineQoS is the exact-execution QoS on the calibration inputs.
	BaselineQoS float64
}

// Program exposes the underlying core program (for advanced use).
func (a *App) Program() core.Program { return a.prog }

// NewCNNApp wraps a CNN graph with classification-accuracy QoS over a
// calibration/test split.
func NewCNNApp(g *Graph, calibImages *Tensor, calibLabels []int, testImages *Tensor, testLabels []int) (*App, error) {
	gp, err := core.NewGraphProgram(g, calibImages, testImages,
		qos.Accuracy{Labels: calibLabels}, qos.Accuracy{Labels: testLabels})
	if err != nil {
		return nil, err
	}
	gp.CalibMetricFor = func(lo, hi int) qos.Metric {
		return qos.Accuracy{Labels: calibLabels[lo:hi]}
	}
	return newApp(gp)
}

// NewImageApp wraps an image-processing graph with PSNR QoS against the
// exact pipeline's own outputs.
func NewImageApp(g *Graph, calibImages, testImages *Tensor) (*App, error) {
	goldCalib := g.Execute(calibImages, nil, graph.ExecOptions{})
	goldTest := g.Execute(testImages, nil, graph.ExecOptions{})
	gp, err := core.NewGraphProgram(g, calibImages, testImages,
		qos.PSNR{Gold: goldCalib}, qos.PSNR{Gold: goldTest})
	if err != nil {
		return nil, err
	}
	return newApp(gp)
}

// NewApp wraps an arbitrary core.Program (e.g. the composite CNN + Canny
// benchmark).
func NewApp(p core.Program) (*App, error) {
	return newApp(p)
}

func newApp(p core.Program) (*App, error) {
	out := p.Run(nil, core.Calib, nil)
	return &App{prog: p, BaselineQoS: p.Score(core.Calib, out)}, nil
}

// TuneSpec is the user-facing tuning specification: only an end-to-end
// quality requirement plus optional effort bounds, per the paper's
// "requiring only high-level end-to-end quality specifications".
type TuneSpec struct {
	// MaxQoSLoss is the acceptable end-to-end QoS degradation (e.g. 1.0
	// for one percentage point of accuracy). QoSMin = baseline − loss.
	MaxQoSLoss float64
	// Model selects Π1 or Π2 (default Π2).
	Model predictor.Model
	// MaxIters / StallLimit bound the search (defaults 30000 / 1000).
	MaxIters   int
	StallLimit int
	// MaxConfigs bounds the shipped curve (default 50).
	MaxConfigs int
	// NCalibrate is the number of α-calibration measurements (default 50).
	NCalibrate int
	// AllowFP16 includes half-precision knobs (default true; ship a
	// second FP32-only curve for devices without FP16 support).
	DisableFP16 bool
	// Empirical switches development-time tuning to conventional
	// measurement-based search (the paper's comparison baseline).
	Empirical bool
	Seed      int64
}

func (s TuneSpec) options(baseQoS float64) core.Options {
	return core.Options{
		QoSMin:     baseQoS - s.MaxQoSLoss,
		Model:      s.Model,
		NCalibrate: s.NCalibrate,
		MaxIters:   s.MaxIters,
		StallLimit: s.StallLimit,
		MaxConfigs: s.MaxConfigs,
		Policy:     core.KnobPolicy{AllowFP16: !s.DisableFP16},
		Seed:       s.Seed,
	}
}

// TuneDevelopmentTime runs the development-time phase and returns the
// relaxed tradeoff curve over hardware-independent approximations.
func (a *App) TuneDevelopmentTime(spec TuneSpec) (*Result, error) {
	o := spec.options(a.BaselineQoS)
	if spec.Empirical {
		return core.EmpiricalTune(a.prog, o)
	}
	return core.PredictiveTune(a.prog, o)
}

// TuneInstallTime refines a development-time result on a device. When the
// device hosts hardware-specific approximations (PROMISE), distributed
// predictive tuning over nEdge simulated edge devices explores them;
// otherwise the shipped curve is re-measured and filtered.
func (a *App) TuneInstallTime(dev *Result, d *Device, spec TuneSpec, objective core.Objective, nEdge int) (*InstallResult, error) {
	io := a.InstallOptionsFor(d, spec, objective, nEdge)
	if dev.Profiles == nil {
		return core.RefineCurve(a.prog, dev.Curve, io)
	}
	return core.InstallTune(a.prog, dev.Profiles, io)
}

// InstallOptionsFor materializes the install-time option set that
// TuneInstallTime would use — the configuration a distributed (HTTP)
// install-time run must share between the coordinator and every edge.
// Fault-tolerance knobs (LeaseTTL, RequestTimeout, MaxRetries, RetryBase)
// are zero on the returned value, meaning the protocol defaults; set them
// before handing the options to both sides.
func (a *App) InstallOptionsFor(d *Device, spec TuneSpec, objective core.Objective, nEdge int) InstallOptions {
	return core.InstallOptions{
		Options:   spec.options(a.BaselineQoS),
		Device:    d,
		Objective: objective,
		NEdge:     nEdge,
	}
}

// RefineOnDevice is the software-only install-time path: re-measure and
// filter a shipped curve on the device without hardware knobs.
func (a *App) RefineOnDevice(curve *Curve, d *Device, spec TuneSpec) (*InstallResult, error) {
	return core.RefineCurve(a.prog, curve, core.InstallOptions{
		Options: spec.options(a.BaselineQoS),
		Device:  d,
	})
}

// NewRuntime builds the run-time controller over a final curve.
// targetTime is the per-invocation time to hold; window is the sliding
// window in invocations.
func (a *App) NewRuntime(curve *Curve, policy core.Policy, targetTime float64, window int) (*Runtime, error) {
	return core.NewRuntimeTuner(curve, policy, targetTime, window, 1)
}

// Evaluate runs a configuration on the test inputs and returns its QoS.
func (a *App) Evaluate(cfg Config) float64 {
	out := a.prog.Run(cfg, core.Test, tensor.NewRNG(99))
	return a.prog.Score(core.Test, out)
}

// MeasureSpeedup reports the modeled speedup of cfg over the baseline on
// a device.
func (a *App) MeasureSpeedup(cfg Config, d *Device) float64 {
	costs := a.prog.Costs()
	return d.Time(costs, nil) / d.Time(costs, cfg)
}

// MeasureEnergyReduction reports the modeled energy reduction of cfg over
// the baseline on a device.
func (a *App) MeasureEnergyReduction(cfg Config, d *Device) float64 {
	costs := a.prog.Costs()
	return d.Energy(costs, nil) / d.Energy(costs, cfg)
}

// ShipBundle packages the development-time results into the artifact
// shipped with the application binary: the FP32-only curve (universal)
// plus, optionally, the FP16 curve for devices with half-precision
// hardware (§3.5: "creating two separate curves - one each for FP32 and
// FP16"). Load it back with LoadBundle and pick a device's curve with
// Bundle.Select.
func (a *App) ShipBundle(fp32, fp16 *Result) (*artifact.Bundle, error) {
	var fp16Curve *pareto.Curve
	if fp16 != nil {
		fp16Curve = fp16.Curve
	}
	return artifact.New(a.prog.Name(), fp32.Curve, fp16Curve)
}

// Bundle is the shipped dual-curve artifact.
type Bundle = artifact.Bundle

// LoadBundle parses and integrity-checks a shipped bundle.
func LoadBundle(data []byte) (*Bundle, error) { return artifact.Load(data) }

// CompileModelJSON compiles a declarative JSON network description (the
// stand-in for the paper's Keras/PyTorch frontends) into a dataflow graph
// with synthetic weights. See internal/models.ModelSpec for the schema.
func CompileModelJSON(data []byte) (*Graph, int, error) {
	m, err := models.FromJSON(data)
	if err != nil {
		return nil, 0, err
	}
	return m.Graph, m.Classes, nil
}

// DescribeConfig renders a configuration's knob families in the notation
// of the paper's Table 3 ("FP16:13 perf-50%:6 ...").
func DescribeConfig(cfg Config) string { return cfg.FormatGroupCounts() }

// SaveCurve and LoadCurve (de)serialize shipped tradeoff curves.
func SaveCurve(c *Curve) ([]byte, error) { return c.Marshal() }

// LoadCurve parses a shipped curve.
func LoadCurve(data []byte) (*Curve, error) { return pareto.UnmarshalCurve(data) }

// Validate checks a configuration against a graph's knob applicability
// rules (for configurations loaded from external curves).
func Validate(g *Graph, cfg Config) error {
	if err := g.ValidateConfig(cfg); err != nil {
		return fmt.Errorf("approxtuner: %w", err)
	}
	return nil
}
