package approxtuner_test

import (
	"math"
	"testing"

	approxtuner "repro"
	"repro/internal/models"
)

func buildApp(t testing.TB) (*approxtuner.App, *models.Benchmark) {
	t.Helper()
	b := models.MustBuild("lenet", models.Scale{Images: 24, Width: 0.125, ImageNetSize: 32, Seed: 17})
	calib, test := b.Dataset.Split()
	app, err := approxtuner.NewCNNApp(b.Model.Graph, calib.Images, calib.Labels, test.Images, test.Labels)
	if err != nil {
		t.Fatal(err)
	}
	return app, b
}

func quickSpec() approxtuner.TuneSpec {
	return approxtuner.TuneSpec{
		MaxQoSLoss: 10,
		MaxIters:   200,
		StallLimit: 100,
		MaxConfigs: 10,
		NCalibrate: 5,
		Seed:       2,
	}
}

func TestFacadeDevelopmentTime(t *testing.T) {
	app, _ := buildApp(t)
	if app.BaselineQoS <= 0 {
		t.Fatalf("baseline QoS = %v", app.BaselineQoS)
	}
	res, err := app.TuneDevelopmentTime(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.Len() == 0 {
		t.Fatal("empty curve")
	}
	for _, pt := range res.Curve.Points {
		if pt.QoS <= app.BaselineQoS-10 {
			t.Errorf("point below budget: %v", pt.QoS)
		}
	}
}

func TestFacadeEmpiricalMode(t *testing.T) {
	app, _ := buildApp(t)
	spec := quickSpec()
	spec.Empirical = true
	spec.MaxIters = 60
	spec.StallLimit = 60
	res, err := app.TuneDevelopmentTime(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.Len() == 0 {
		t.Fatal("empirical tuning found nothing")
	}
}

func TestFacadeCurveRoundTrip(t *testing.T) {
	app, b := buildApp(t)
	res, err := app.TuneDevelopmentTime(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	data, err := approxtuner.SaveCurve(res.Curve)
	if err != nil {
		t.Fatal(err)
	}
	back, err := approxtuner.LoadCurve(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != res.Curve.Len() || back.Program != res.Curve.Program {
		t.Fatal("curve round trip lost data")
	}
	// Every shipped config must validate against the graph.
	for _, pt := range back.Points {
		if err := approxtuner.Validate(b.Model.Graph, pt.Config); err != nil {
			t.Fatalf("shipped config invalid: %v", err)
		}
	}
}

func TestFacadeInstallAndRuntime(t *testing.T) {
	app, _ := buildApp(t)
	dev, err := app.TuneDevelopmentTime(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	gpu := approxtuner.TX2GPU()
	inst, err := app.RefineOnDevice(dev.Curve, gpu, quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	if inst.Curve.Len() == 0 {
		t.Fatal("refined curve empty")
	}
	target := gpu.Time(app.Program().Costs(), nil)
	rt, err := app.NewRuntime(inst.Curve, approxtuner.PolicyEnforce, target, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt.RecordInvocation(target * 1.5)
	if rt.CurrentPoint().Perf < 1 {
		t.Errorf("runtime picked Perf %v", rt.CurrentPoint().Perf)
	}
}

func TestFacadeDistributedInstall(t *testing.T) {
	app, _ := buildApp(t)
	dev, err := app.TuneDevelopmentTime(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	gpu := approxtuner.TX2GPU()
	inst, err := app.TuneInstallTime(dev, gpu, quickSpec(), approxtuner.MinimizeEnergy, 3)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Curve.Len() == 0 {
		t.Fatal("install-time curve empty")
	}
	for _, pt := range inst.Curve.Points {
		if pt.Perf < 0.99 {
			t.Errorf("energy reduction %v below 1", pt.Perf)
		}
	}
}

func TestFacadeMeasurements(t *testing.T) {
	app, _ := buildApp(t)
	gpu, cpu := approxtuner.TX2GPU(), approxtuner.TX2CPU()
	cfg := approxtuner.Config{}
	for _, op := range app.Program().Ops() {
		cfg[op] = 1 // FP16 everywhere
	}
	if sp := app.MeasureSpeedup(cfg, gpu); sp <= 1 {
		t.Errorf("FP16 GPU speedup = %v", sp)
	}
	if er := app.MeasureEnergyReduction(cfg, gpu); er <= 1 {
		t.Errorf("FP16 GPU energy reduction = %v", er)
	}
	if !cpu.SupportsKnob(0) || cpu.SupportsKnob(1) {
		t.Error("CPU should support FP32 but not FP16")
	}
	acc := app.Evaluate(nil)
	if acc < 0 || acc > 100 || math.IsNaN(acc) {
		t.Errorf("Evaluate(baseline) = %v", acc)
	}
	if got := approxtuner.DescribeConfig(cfg); got == "" {
		t.Error("empty config description")
	}
}

func TestFacadeImageApp(t *testing.T) {
	b := models.MustBuild("lenet", models.Scale{Images: 8, Width: 0.125, Seed: 3})
	calib, test := b.Dataset.Split()
	// PSNR-based QoS over the CNN graph itself (gold = its own exact run).
	app, err := approxtuner.NewImageApp(b.Model.Graph, calib.Images, test.Images)
	if err != nil {
		t.Fatal(err)
	}
	if app.BaselineQoS != 100 {
		t.Errorf("image app baseline PSNR = %v, want 100 (identical)", app.BaselineQoS)
	}
}

func TestFacadeValidateRejectsBadConfig(t *testing.T) {
	_, b := buildApp(t)
	bad := approxtuner.Config{999: 1}
	if err := approxtuner.Validate(b.Model.Graph, bad); err == nil {
		t.Fatal("out-of-range op must be rejected")
	}
}

func TestFacadeBundleWorkflow(t *testing.T) {
	app, _ := buildApp(t)
	fp32Spec := quickSpec()
	fp32Spec.DisableFP16 = true
	fp32Res, err := app.TuneDevelopmentTime(fp32Spec)
	if err != nil {
		t.Fatal(err)
	}
	fp16Res, err := app.TuneDevelopmentTime(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := app.ShipBundle(fp32Res, fp16Res)
	if err != nil {
		t.Fatal(err)
	}
	data, err := bundle.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := approxtuner.LoadBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Select(approxtuner.TX2CPU()) != loaded.FP32 {
		t.Error("CPU must select the FP32 curve")
	}
	if loaded.Select(approxtuner.TX2GPU()) != loaded.FP16 {
		t.Error("GPU must select the FP16 curve")
	}
}

func TestFacadeCompileModelJSON(t *testing.T) {
	g, classes, err := approxtuner.CompileModelJSON([]byte(`{
	  "name": "t", "classes": 10, "seed": 1,
	  "input": {"channels": 1, "height": 8, "width": 8},
	  "layers": [
	    {"type": "conv", "filters": 4, "kernel": 3, "pad": 1, "activation": "relu"},
	    {"type": "global_avg_pool"},
	    {"type": "dense", "units": 10},
	    {"type": "softmax"}
	  ]}`))
	if err != nil {
		t.Fatal(err)
	}
	if classes != 10 || g.LayerCount() != 2 {
		t.Fatalf("classes=%d layers=%d", classes, g.LayerCount())
	}
	if _, _, err := approxtuner.CompileModelJSON([]byte("junk")); err == nil {
		t.Fatal("junk must not compile")
	}
}
