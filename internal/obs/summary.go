package obs

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// WriteSummary renders the registry as an end-of-run telemetry table:
// one row per metric (vec families expand to one row per label), sorted
// by name. Counters and gauges print their value; histograms print
// count/mean; quantile histograms print count, p50/p90/p99 and max.
// reg nil means the Default registry.
func WriteSummary(w io.Writer, reg *Registry) error {
	if reg == nil {
		reg = Default
	}
	snap := reg.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "metric\tvalue\n")
	for _, name := range names {
		switch v := snap[name].(type) {
		case int64:
			fmt.Fprintf(tw, "%s\t%d\n", name, v)
		case float64:
			fmt.Fprintf(tw, "%s\t%g\n", name, v)
		case map[string]int64:
			for _, kv := range sortedLabels(v) {
				fmt.Fprintf(tw, "%s{%s}\t%d\n", name, kv.k, kv.v)
			}
		case map[string]float64:
			for _, kv := range sortedFloatLabels(v) {
				fmt.Fprintf(tw, "%s{%s}\t%g\n", name, kv.k, kv.v)
			}
		case HistogramSnapshot:
			mean := 0.0
			if v.Count > 0 {
				mean = v.Sum / float64(v.Count)
			}
			fmt.Fprintf(tw, "%s\tn=%d mean=%.4g\n", name, v.Count, mean)
		case QSummary:
			fmt.Fprintf(tw, "%s\t%s\n", name, formatQSummary(v))
		case map[string]QSummary:
			for _, kv := range sortedSummaryLabels(v) {
				fmt.Fprintf(tw, "%s{%s}\t%s\n", name, kv.k, formatQSummary(kv.v))
			}
		}
	}
	return tw.Flush()
}

func formatQSummary(s QSummary) string {
	return fmt.Sprintf("n=%d p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.Count, s.P50, s.P90, s.P99, s.Max)
}
