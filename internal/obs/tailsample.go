package obs

import (
	"encoding/binary"
	"math"
	"sort"
	"sync"
)

// Tail-based sampling: the keep/drop decision for a trace is made when
// the request *finishes*, when its latency, status, and overlap with
// tuner events are known — so the sampler retains exactly the traces
// worth debugging (slow, errored, or concurrent with a config switch /
// drift alarm) plus a deterministic probabilistic floor for baseline
// coverage. Memory is bounded on both sides: pending (undecided) traces
// are capped with FIFO eviction, and kept traces live in a ring.

// TailSamplerOptions configures a TailSampler. The zero value takes all
// defaults.
type TailSamplerOptions struct {
	// Seed fixes the probabilistic-floor decisions: the same seed and
	// trace IDs reproduce the same kept set bit-for-bit.
	Seed int64
	// Floor is the probability of keeping an otherwise-uninteresting
	// trace (default 0.01; negative disables the floor).
	Floor float64
	// MaxPending bounds undecided traces buffered in memory
	// (default 512); the oldest is evicted when full.
	MaxPending int
	// MaxSpansPerTrace bounds the spans buffered per trace (default 64);
	// excess spans are counted but not retained.
	MaxSpansPerTrace int
	// Keep bounds retained kept traces (default 256, ring semantics).
	Keep int
}

// Verdict is what the caller knows about a finished trace.
type Verdict struct {
	// Slow: total latency exceeded the running quantile threshold.
	Slow bool
	// Errored: the request ended 429/503/504/5xx or expired.
	Errored bool
	// Eventful: a tuner config switch or drift alarm fired while the
	// request was in flight.
	Eventful bool
}

// KeptTrace is one retained trace with the reason it was kept.
type KeptTrace struct {
	TraceID   TraceID      `json:"trace_id"`
	Reason    string       `json:"reason"` // "error", "slow", "event", or "floor"
	Spans     []SpanRecord `json:"spans"`
	Truncated bool         `json:"truncated,omitempty"`
}

type pendingTrace struct {
	spans     []SpanRecord
	truncated bool
}

// TailSampler buffers completed spans per trace (as a SpanSink) and
// decides retention at trace completion. All methods are goroutine-safe
// and nil-safe.
type TailSampler struct {
	seed      uint64
	floorBits uint64
	opts      TailSamplerOptions

	mu      sync.Mutex
	pending map[TraceID]*pendingTrace
	order   []TraceID // FIFO arrival order for eviction (may hold stale IDs)
	kept    []KeptTrace
	head    int
	seen    int64
	nKept   int64
	evicted int64
}

// NewTailSampler builds a sampler from o.
func NewTailSampler(o TailSamplerOptions) *TailSampler {
	if math.Float64bits(o.Floor) == 0 {
		o.Floor = 0.01
	}
	if o.MaxPending <= 0 {
		o.MaxPending = 512
	}
	if o.MaxSpansPerTrace <= 0 {
		o.MaxSpansPerTrace = 64
	}
	if o.Keep <= 0 {
		o.Keep = 256
	}
	ts := &TailSampler{
		seed:    uint64(o.Seed),
		opts:    o,
		pending: make(map[TraceID]*pendingTrace),
	}
	if o.Floor > 0 {
		if o.Floor >= 1 {
			ts.floorBits = math.MaxUint64
		} else {
			ts.floorBits = uint64(o.Floor * float64(1<<63) * 2)
		}
	}
	return ts
}

// OnSpanEnd buffers a completed span under its trace (SpanSink). A span
// carrying links (a coalesced batch span) is also delivered — together
// with the spans already buffered under its own trace, i.e. the batch's
// children — to every linked trace, so a kept member trace contains the
// shared batch/execute/tuner spans.
func (ts *TailSampler) OnSpanEnd(rec SpanRecord) {
	if ts == nil || rec.TraceID.IsZero() {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.buffer(rec.TraceID, rec)
	if len(rec.Links) == 0 {
		return
	}
	own := ts.pending[rec.TraceID]
	for _, tid := range rec.Links {
		if tid == rec.TraceID || tid.IsZero() {
			continue
		}
		if own == nil {
			ts.buffer(tid, rec)
			continue
		}
		for _, sub := range own.spans {
			ts.buffer(tid, sub)
		}
	}
}

// buffer appends rec under tid; caller holds ts.mu.
func (ts *TailSampler) buffer(tid TraceID, rec SpanRecord) {
	pt := ts.pending[tid]
	if pt == nil {
		if len(ts.pending) >= ts.opts.MaxPending {
			ts.evictOldest()
		}
		pt = &pendingTrace{}
		ts.pending[tid] = pt
		ts.order = append(ts.order, tid)
		if len(ts.order) > 4*ts.opts.MaxPending {
			ts.compactOrder()
		}
	}
	if len(pt.spans) >= ts.opts.MaxSpansPerTrace {
		pt.truncated = true
		return
	}
	pt.spans = append(pt.spans, rec)
}

// evictOldest drops the oldest still-pending trace; caller holds ts.mu.
func (ts *TailSampler) evictOldest() {
	for len(ts.order) > 0 {
		tid := ts.order[0]
		ts.order = ts.order[1:]
		if _, ok := ts.pending[tid]; ok {
			delete(ts.pending, tid)
			ts.evicted++
			return
		}
	}
}

// compactOrder drops IDs already finished or evicted; caller holds ts.mu.
func (ts *TailSampler) compactOrder() {
	live := ts.order[:0]
	for _, tid := range ts.order {
		if _, ok := ts.pending[tid]; ok {
			live = append(live, tid)
		}
	}
	ts.order = live
}

// floorKeep is the deterministic probabilistic floor: a splitmix64 hash
// of seed and trace ID against the Floor threshold. Independent of
// arrival order and scheduling, so a fixed seed reproduces decisions.
func (ts *TailSampler) floorKeep(tid TraceID) bool {
	if ts.floorBits == 0 {
		return false
	}
	h := mix64(ts.seed ^ binary.BigEndian.Uint64(tid[:8]) ^ binary.BigEndian.Uint64(tid[8:]))
	return h < ts.floorBits
}

// Finish decides retention for a completed trace. It returns whether the
// trace was kept and the first matching reason
// (error > slow > event > floor).
func (ts *TailSampler) Finish(tid TraceID, v Verdict) (kept bool, reason string) {
	if ts == nil || tid.IsZero() {
		return false, ""
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.seen++
	pt := ts.pending[tid]
	delete(ts.pending, tid)
	switch {
	case v.Errored:
		reason = "error"
	case v.Slow:
		reason = "slow"
	case v.Eventful:
		reason = "event"
	case ts.floorKeep(tid):
		reason = "floor"
	default:
		return false, ""
	}
	kt := KeptTrace{TraceID: tid, Reason: reason}
	if pt != nil {
		kt.Spans = pt.spans
		kt.Truncated = pt.truncated
		sort.SliceStable(kt.Spans, func(i, j int) bool { return kt.Spans[i].Start < kt.Spans[j].Start })
	}
	if len(ts.kept) < ts.opts.Keep {
		ts.kept = append(ts.kept, kt)
	} else {
		ts.kept[ts.head] = kt
		ts.head = (ts.head + 1) % ts.opts.Keep
	}
	ts.nKept++
	return true, reason
}

// Drop discards a pending trace without a retention decision (e.g. an
// abandoned request).
func (ts *TailSampler) Drop(tid TraceID) {
	if ts == nil || tid.IsZero() {
		return
	}
	ts.mu.Lock()
	delete(ts.pending, tid)
	ts.mu.Unlock()
}

// PendingCount returns the number of undecided traces currently
// buffered. In a healthy serve loop it tracks the requests in flight:
// batch traces are dropped after their linked fan-out, so only traces
// awaiting a Finish verdict occupy slots.
func (ts *TailSampler) PendingCount() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.pending)
}

// Kept returns a copy of the retained traces, oldest decision first.
func (ts *TailSampler) Kept() []KeptTrace {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]KeptTrace, 0, len(ts.kept))
	out = append(out, ts.kept[ts.head:]...)
	out = append(out, ts.kept[:ts.head]...)
	return out
}

// Stats returns (finished, kept, evicted-pending) counters.
func (ts *TailSampler) Stats() (seen, kept, evicted int64) {
	if ts == nil {
		return 0, 0, 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.seen, ts.nKept, ts.evicted
}
