package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
)

// Request-scoped trace identity (Dapper-style). A trace is one logical
// request; its ID is minted where the request enters the system and
// propagated across process boundaries in the W3C `traceparent` header,
// so the edge client, the coordinator middleware and the serve handler
// all stamp their spans with the same 128-bit trace ID and a cross-
// process trace can be assembled after the fact.

// TraceID identifies one logical request end to end (128 bits, rendered
// as 32 lowercase hex digits). The zero value means "no trace".
type TraceID [16]byte

// SpanID identifies one span within a trace (64 bits, 16 hex digits).
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

// MarshalText renders the ID as lowercase hex, so JSON expositions carry
// readable trace IDs rather than byte arrays.
func (t TraceID) MarshalText() ([]byte, error) {
	buf := make([]byte, 32)
	hex.Encode(buf, t[:])
	return buf, nil
}

// UnmarshalText parses 32 hex digits; an empty string is the zero ID.
func (t *TraceID) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*t = TraceID{}
		return nil
	}
	id, ok := ParseTraceID(string(b))
	if !ok {
		return fmt.Errorf("obs: invalid trace id %q", b)
	}
	*t = id
	return nil
}

// MarshalText renders the ID as lowercase hex.
func (s SpanID) MarshalText() ([]byte, error) {
	buf := make([]byte, 16)
	hex.Encode(buf, s[:])
	return buf, nil
}

// UnmarshalText parses 16 hex digits; an empty string is the zero ID.
func (s *SpanID) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*s = SpanID{}
		return nil
	}
	id, ok := ParseSpanID(string(b))
	if !ok {
		return fmt.Errorf("obs: invalid span id %q", b)
	}
	*s = id
	return nil
}

// ParseTraceID parses 32 lowercase/uppercase hex digits.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, true
}

// ParseSpanID parses 16 hex digits.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if len(s) != 16 {
		return id, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, false
	}
	return id, true
}

// SpanContext is the propagated identity of a span: which trace it
// belongs to and which span is the remote parent.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both IDs are non-zero (the W3C requirement for a
// usable parent).
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// TraceparentHeader is the W3C trace-context header name.
const TraceparentHeader = "traceparent"

// FormatTraceparent renders a W3C traceparent value
// (version 00, sampled flag set): 00-<traceid>-<spanid>-01.
func FormatTraceparent(sc SpanContext) string {
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent value. It accepts any
// version byte and ignores the flags, per the spec's forward-compat
// rules; ok is false for malformed values or all-zero IDs.
func ParseTraceparent(v string) (SpanContext, bool) {
	if len(v) != 55 || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return SpanContext{}, false
	}
	// The version field must be two lowercase hex digits, and ff is
	// reserved-invalid by the spec.
	if !isHexByte(v[0]) || !isHexByte(v[1]) || v[:2] == "ff" {
		return SpanContext{}, false
	}
	tid, ok := ParseTraceID(v[3:35])
	if !ok {
		return SpanContext{}, false
	}
	sid, ok := ParseSpanID(v[36:52])
	if !ok {
		return SpanContext{}, false
	}
	sc := SpanContext{TraceID: tid, SpanID: sid}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

// isHexByte reports whether c is a lowercase hex digit.
func isHexByte(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
}

// Inject writes s's identity into h as a traceparent header. No-op on
// nil spans or spans without identity, so disabled tracing adds nothing
// to outbound requests.
func Inject(h http.Header, s *Span) {
	if s == nil {
		return
	}
	sc := s.Context()
	if !sc.Valid() {
		return
	}
	h.Set(TraceparentHeader, FormatTraceparent(sc))
}

// Extract reads the traceparent header from h. The zero SpanContext
// (Valid() == false) means no usable identity arrived.
func Extract(h http.Header) SpanContext {
	v := h.Get(TraceparentHeader)
	if v == "" {
		return SpanContext{}
	}
	sc, _ := ParseTraceparent(v)
	return sc
}

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mix used
// for ID generation and sampling decisions. It keeps both deterministic
// under a fixed seed without touching math/rand.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e9b5
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// IDSource mints trace and span IDs: splitmix64 over an atomic counter,
// so IDs are unique per source, allocation-free, and — under a fixed
// seed — a deterministic sequence.
type IDSource struct {
	state atomic.Uint64
}

// NewIDSource builds an ID source. The same seed yields the same ID
// sequence; use a clock-derived seed for production uniqueness.
func NewIDSource(seed int64) *IDSource {
	s := &IDSource{}
	s.state.Store(uint64(seed))
	return s
}

func (g *IDSource) next() uint64 {
	// Weyl-sequence increment + finalizer: the canonical splitmix64 step.
	return mix64(g.state.Add(0x9e3779b97f4a7c15))
}

// TraceID returns a fresh non-zero trace ID.
func (g *IDSource) TraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:8], g.next())
		binary.BigEndian.PutUint64(id[8:], g.next())
	}
	return id
}

// SpanID returns a fresh non-zero span ID.
func (g *IDSource) SpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		binary.BigEndian.PutUint64(id[:], g.next())
	}
	return id
}

// spanCtxKey keys the active span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s. A nil span returns ctx
// unchanged, keeping the disabled-tracing path allocation-free.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartCtx opens a span on the installed tracer — as a child of the
// span carried by ctx, if any — and returns ctx carrying the new span.
// With tracing disabled it returns (ctx, nil) untouched.
func StartCtx(ctx context.Context, name string) (context.Context, *Span) {
	t := global.Load()
	if t == nil {
		return ctx, nil
	}
	return t.StartCtx(ctx, name)
}

// StartCtx is the per-tracer form of the package-level StartCtx.
func (t *Tracer) StartCtx(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	var sp *Span
	if parent := SpanFromContext(ctx); parent != nil && parent.tr == t {
		sp = parent.Child(name)
	} else {
		sp = t.Start(name)
	}
	return ContextWithSpan(ctx, sp), sp
}

// StartRemote opens a root span that continues the trace described by
// sc: it keeps sc's trace ID and records sc's span as the remote
// parent. An invalid sc degrades to a plain root span.
func (t *Tracer) StartRemote(sc SpanContext, name string) *Span {
	if t == nil {
		return nil
	}
	if !sc.Valid() {
		return t.Start(name)
	}
	return t.newSpan(name, 0, sc.TraceID, sc.SpanID)
}
