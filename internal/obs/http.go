package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Server is the opt-in live observability endpoint: metric exposition at
// /metrics (expvar-style JSON or Prometheus text, content-negotiated), a
// liveness probe at /healthz, a span-tree summary at /trace, and the
// standard net/http/pprof profiling handlers at /debug/pprof/ for live
// profiling of long tuning runs.
type Server struct {
	// Addr is the bound address (useful with ":0").
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// metricsFormat is the negotiated /metrics exposition.
type metricsFormat int

const (
	fmtJSON        metricsFormat = iota // expvar-style indented JSON snapshot
	fmtProm                             // classic text 0.0.4, no exemplars
	fmtOpenMetrics                      // OpenMetrics 1.0, exemplars on buckets
)

// MetricsHandler serves the registry at a /metrics-style endpoint with
// content negotiation: `?format=openmetrics` (or an Accept header
// naming application/openmetrics-text, which modern Prometheus
// scrapers prefer) selects the OpenMetrics exposition — the only
// format whose grammar has exemplars; `?format=prom` (or an Accept
// naming text/plain) selects the classic 0.0.4 text exposition, which
// never carries exemplars; `?format=json` or an Accept header naming
// application/json — and any request expressing no preference —
// selects the expvar-style indented JSON snapshot, which keeps
// existing `curl :8090/metrics` consumers byte-compatible.
func MetricsHandler(reg *Registry) http.Handler {
	if reg == nil {
		reg = Default
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch negotiateMetrics(r) {
		case fmtOpenMetrics:
			w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = reg.WriteOpenMetrics(w)
		case fmtProm:
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(w)
		default:
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(reg.Snapshot())
		}
	})
}

// negotiateMetrics applies the /metrics content negotiation: the
// explicit format query parameter wins; otherwise the Accept header
// decides (OpenMetrics outranking classic text, as a scraper offering
// both prefers it), with JSON as the no-preference default.
func negotiateMetrics(r *http.Request) metricsFormat {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return fmtProm
	case "openmetrics":
		return fmtOpenMetrics
	case "json":
		return fmtJSON
	}
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, "application/openmetrics-text"):
		return fmtOpenMetrics
	case strings.Contains(accept, "application/json"):
		return fmtJSON
	case strings.Contains(accept, "text/plain"):
		return fmtProm
	}
	return fmtJSON
}

// HealthzHandler answers liveness probes with 200 "ok". It reports the
// process-level signal only; richer health (e.g. runtime drift) lives in
// the metrics the same endpoint serves.
func HealthzHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// ServeMetrics binds addr (e.g. ":8090" or ":0") and serves the registry
// and tracer in a background goroutine. reg nil means the Default
// registry; tr nil serves the currently installed tracer at /trace.
func ServeMetrics(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	if reg == nil {
		reg = Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "approxtuner observability endpoint\n\n/metrics      metric snapshot (JSON; ?format=prom for classic text, ?format=openmetrics for OpenMetrics with exemplars; Accept negotiated)\n/healthz      liveness probe\n/trace        span tree of the active tracer\n/debug/flight flight-recorder dump (JSONL, most recent spans + events)\n/debug/pprof  live profiling\n")
	})
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/healthz", HealthzHandler())
	mux.Handle("/debug/flight", Flight().Handler())
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		t := tr
		if t == nil {
			t = Active()
		}
		if t == nil {
			http.Error(w, "no tracer installed", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, Summarize(t.Records()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
