package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in live observability endpoint: expvar-style metric
// JSON at /metrics, a span-tree summary at /trace, and the standard
// net/http/pprof profiling handlers at /debug/pprof/ for live profiling
// of long tuning runs.
type Server struct {
	// Addr is the bound address (useful with ":0").
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// ServeMetrics binds addr (e.g. ":8090" or ":0") and serves the registry
// and tracer in a background goroutine. reg nil means the Default
// registry; tr nil serves the currently installed tracer at /trace.
func ServeMetrics(addr string, reg *Registry, tr *Tracer) (*Server, error) {
	if reg == nil {
		reg = Default
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "approxtuner observability endpoint\n\n/metrics      expvar-style metric JSON\n/trace        span tree of the active tracer\n/debug/pprof  live profiling\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		t := tr
		if t == nil {
			t = Active()
		}
		if t == nil {
			http.Error(w, "no tracer installed", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, Summarize(t.Records()))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
