package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Registry holds named metrics. Metric creation is get-or-create, so
// package-level metric variables and late lookups agree on the same
// instance. All operations are goroutine-safe.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{metrics: make(map[string]any)} }

// Default is the process-wide registry the instrumented packages publish
// into and the HTTP endpoint serves.
var Default = NewRegistry()

func lookup[T any](r *Registry, name string, make func() T) T {
	r.mu.RLock()
	m, ok := r.metrics[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		m, ok = r.metrics[name]
		if !ok {
			m = make()
			r.metrics[name] = m
		}
		r.mu.Unlock()
	}
	t, ok := m.(T)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered with a different type (%T)", name, m))
	}
	return t
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	return lookup(r, name, func() *Counter { return &Counter{} })
}

// NewCounter returns the named counter in the Default registry.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// Gauge is an atomically updated float64 value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta (negative deltas decrement — e.g. in-flight
// request tracking).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	return lookup(r, name, func() *Gauge { return &Gauge{} })
}

// NewGauge returns the named gauge in the Default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// Histogram accumulates observations into fixed log-scale buckets: bucket
// i covers values ≤ start·growthⁱ, with one overflow bucket above the
// last bound. Observations are lock-free atomic adds.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, len n
	buckets []atomic.Int64
	over    atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 sum, CAS-updated
}

func newHistogram(start, growth float64, n int) *Histogram {
	if start <= 0 || growth <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: bad histogram shape start=%v growth=%v n=%d", start, growth, n))
	}
	h := &Histogram{bounds: make([]float64, n), buckets: make([]atomic.Int64, n)}
	b := start
	for i := range h.bounds {
		h.bounds[i] = b
		b *= growth
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := -1
	for i, ub := range h.bounds {
		if v <= ub {
			idx = i
			break
		}
	}
	if idx >= 0 {
		h.buckets[idx].Add(1)
	} else {
		h.over.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bucket returns the count of bucket i (values ≤ Bounds()[i] and greater
// than the previous bound).
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i].Load() }

// Overflow returns the count of observations above the last bound.
func (h *Histogram) Overflow() int64 { return h.over.Load() }

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// HistogramSnapshot is the exported form of a histogram.
type HistogramSnapshot struct {
	Count    int64         `json:"count"`
	Sum      float64       `json:"sum"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
	Overflow int64         `json:"overflow,omitempty"`
}

// BucketCount is one (upper-bound, count) pair; zero-count buckets are
// omitted from snapshots.
type BucketCount struct {
	LE float64 `json:"le"`
	N  int64   `json:"n"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Overflow: h.Overflow()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{LE: h.bounds[i], N: n})
		}
	}
	return s
}

// Histogram returns (creating if needed) the named histogram. The shape
// parameters apply only on first creation.
func (r *Registry) Histogram(name string, start, growth float64, n int) *Histogram {
	return lookup(r, name, func() *Histogram { return newHistogram(start, growth, n) })
}

// NewHistogram returns the named histogram in the Default registry.
func NewHistogram(name string, start, growth float64, n int) *Histogram {
	return Default.Histogram(name, start, growth, n)
}

// CounterVec is a family of counters keyed by a label value (e.g. kernel
// invocations by knob kind). Label lookup takes a read lock; the counters
// themselves are lock-free, so hot paths should cache the *Counter.
type CounterVec struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// With returns (creating if needed) the counter for a label value.
func (v *CounterVec) With(label string) *Counter {
	v.mu.RLock()
	c, ok := v.m[label]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.m[label]; ok {
		return c
	}
	c = &Counter{}
	v.m[label] = c
	return c
}

func (v *CounterVec) snapshot() map[string]int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.m))
	for k, c := range v.m {
		out[k] = c.Value()
	}
	return out
}

// CounterVec returns (creating if needed) the named counter family.
func (r *Registry) CounterVec(name string) *CounterVec {
	return lookup(r, name, func() *CounterVec { return &CounterVec{m: make(map[string]*Counter)} })
}

// NewCounterVec returns the named counter family in the Default registry.
func NewCounterVec(name string) *CounterVec { return Default.CounterVec(name) }

// GaugeVec is a family of gauges keyed by a label value (e.g. in-flight
// requests by endpoint). Label lookup takes a read lock; the gauges
// themselves are lock-free, so hot paths should cache the *Gauge.
type GaugeVec struct {
	mu sync.RWMutex
	m  map[string]*Gauge
}

// With returns (creating if needed) the gauge for a label value.
func (v *GaugeVec) With(label string) *Gauge {
	v.mu.RLock()
	g, ok := v.m[label]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok = v.m[label]; ok {
		return g
	}
	g = &Gauge{}
	v.m[label] = g
	return g
}

func (v *GaugeVec) snapshot() map[string]float64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]float64, len(v.m))
	for k, g := range v.m {
		out[k] = g.Value()
	}
	return out
}

// GaugeVec returns (creating if needed) the named gauge family.
func (r *Registry) GaugeVec(name string) *GaugeVec {
	return lookup(r, name, func() *GaugeVec { return &GaugeVec{m: make(map[string]*Gauge)} })
}

// NewGaugeVec returns the named gauge family in the Default registry.
func NewGaugeVec(name string) *GaugeVec { return Default.GaugeVec(name) }

// Snapshot returns the current value of every metric keyed by name:
// int64 for counters, float64 for gauges, map[string]... for the vec
// families, HistogramSnapshot for histograms and QSummary for quantile
// histograms — the expvar-style JSON the HTTP endpoint serves.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.metrics))
	for name, m := range r.metrics {
		switch m := m.(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		case *Histogram:
			out[name] = m.snapshot()
		case *CounterVec:
			out[name] = m.snapshot()
		case *GaugeVec:
			out[name] = m.snapshot()
		case *QHistogram:
			out[name] = m.Snapshot().Summary()
		case *QHistVec:
			out[name] = m.snapshot()
		}
	}
	return out
}
