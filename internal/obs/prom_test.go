package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// promTestRegistry builds a registry with one metric of every kind and
// fully deterministic contents.
func promTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("runtime.invocations").Add(42)
	reg.Gauge("runtime.required_perf").Set(1.25)
	cv := reg.CounterVec("graph.kernel_invocations_by_knob")
	cv.With("fp16").Add(7)
	cv.With("perf-33%").Add(3)
	gv := reg.GaugeVec("distrib.http_inflight")
	gv.With("/v1/register").Set(1)
	h := reg.Histogram("predictor.calibration_abs_error", 0.01, 10, 3)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(99)
	// Dyadic values (i/1024) keep every partial sum exact, so the
	// exposition is bit-identical no matter how the observations split
	// across the histogram's per-P shards.
	q := reg.QHistogram("runtime.invocation_seconds")
	exTID, _ := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	for i := 1; i <= 100; i++ {
		if i == 50 {
			// One exemplar in the p50 bucket: same counts as a plain
			// Observe. Only the OpenMetrics exposition may render it —
			// classic text 0.0.4 has no exemplar syntax.
			q.ObserveExemplar(float64(i)/1024, exTID)
			continue
		}
		q.Observe(float64(i) / 1024)
	}
	qv := reg.QHistVec("distrib.http_latency_seconds")
	lat := qv.With("/v1/curve")
	lat.Observe(0.002)
	lat.Observe(0.004)
	return reg
}

// TestWritePrometheusGolden pins the full text exposition — every metric
// kind, name mangling, label escaping order and float formatting —
// against testdata/prom.golden.
func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promTestRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/prom.golden")
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("prometheus exposition drifted from testdata/prom.golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
	checkPromFormat(t, buf.String())
	// Exemplars were recorded on the registry, but classic text 0.0.4
	// has no exemplar syntax — one would fail the whole scrape in a real
	// Prometheus. The classic exposition must never carry them.
	if strings.Contains(buf.String(), "# {") {
		t.Error("classic exposition carries an exemplar suffix; format 0.0.4 has no exemplar grammar")
	}
}

// TestWriteOpenMetricsGolden pins the OpenMetrics exposition — counter
// _total suffixes, quantile histograms as native-bucket histograms,
// exemplars on _bucket lines, # EOF — against
// testdata/openmetrics.golden.
func TestWriteOpenMetricsGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := promTestRegistry().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/openmetrics.golden")
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("openmetrics exposition drifted from testdata/openmetrics.golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
	checkOpenMetricsFormat(t, buf.String())
	if !strings.Contains(buf.String(), `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"}`) {
		t.Error("openmetrics exposition dropped the recorded exemplar")
	}
}

// promValuePat matches one exposition float the writer emits.
const promValuePat = `(-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)`

// promLineRe matches one valid classic Prometheus text-format sample or
// comment line (the subset the writer emits). No exemplar suffix: the
// classic grammar has none.
var promLineRe = regexp.MustCompile(`^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* .+` +
	`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
	promValuePat + `)$`)

// omLineRe additionally admits the OpenMetrics exemplar suffix
// (`# {trace_id="..."} value`) and the `# EOF` terminator.
var omLineRe = regexp.MustCompile(`^(# EOF` +
	`|# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* .+` +
	`|([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
	promValuePat + `( # \{trace_id="[0-9a-f]{32}"\} ` + promValuePat + `)?)$`)

// omExemplarRe captures the sample name of an exemplar-carrying line.
var omExemplarRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)\{.* # \{trace_id=`)

// checkPromFormat validates every non-empty line of a classic text
// exposition.
func checkPromFormat(t *testing.T, text string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty exposition")
	}
	for _, line := range lines {
		if !promLineRe.MatchString(line) {
			t.Errorf("invalid prometheus text line: %q", line)
		}
	}
}

// checkOpenMetricsFormat validates an OpenMetrics exposition: every
// line within the grammar, exemplars only on _bucket/_total samples
// (the only places OpenMetrics allows them), terminated by # EOF.
func checkOpenMetricsFormat(t *testing.T, text string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "# EOF" {
		t.Fatal("openmetrics exposition does not end with # EOF")
	}
	for _, line := range lines {
		if !omLineRe.MatchString(line) {
			t.Errorf("invalid openmetrics line: %q", line)
		}
		if m := omExemplarRe.FindStringSubmatch(line); m != nil {
			if name := m[1]; !strings.HasSuffix(name, "_bucket") && !strings.HasSuffix(name, "_total") {
				t.Errorf("exemplar on %q; OpenMetrics allows exemplars only on histogram buckets and counters: %q", name, line)
			}
		}
	}
}

// TestWritePrometheusValidFormat validates the exposition of the live
// Default registry (whatever the rest of the test binary populated it
// with) line by line.
func TestWritePrometheusValidFormat(t *testing.T) {
	var buf bytes.Buffer
	NewCounter("obs.prom_format_test").Inc()
	if err := Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkPromFormat(t, buf.String())
}

// TestMetricsContentNegotiation checks the /metrics format selection:
// query parameter beats Accept header beats the JSON default, and a
// scraper offering OpenMetrics gets it over classic text.
func TestMetricsContentNegotiation(t *testing.T) {
	cases := []struct {
		format, accept string
		want           metricsFormat
	}{
		{"", "", fmtJSON},
		{"", "text/html,application/xhtml+xml", fmtJSON},
		{"", "application/json", fmtJSON},
		{"", "text/plain;version=0.0.4", fmtProm},
		{"", "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5,*/*;q=0.1", fmtOpenMetrics},
		{"prom", "application/json", fmtProm},
		{"prometheus", "", fmtProm},
		{"openmetrics", "text/plain", fmtOpenMetrics},
		{"json", "text/plain", fmtJSON},
	}
	for _, c := range cases {
		req, err := http.NewRequest("GET", "/metrics?format="+c.format, nil)
		if err != nil {
			t.Fatal(err)
		}
		if c.accept != "" {
			req.Header.Set("Accept", c.accept)
		}
		if got := negotiateMetrics(req); got != c.want {
			t.Errorf("format=%q accept=%q: negotiateMetrics = %v, want %v", c.format, c.accept, got, c.want)
		}
	}
}

// TestConcurrentScrapes serves a live endpoint and hammers /metrics
// (both formats), /healthz and /trace while spans, counters and quantile
// histograms are being written — the CI race gate runs this under -race.
func TestConcurrentScrapes(t *testing.T) {
	tr := NewTracer(TracerOptions{})
	prev := Install(tr)
	defer Install(prev)

	srv, err := ServeMetrics("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	qh := NewQHistogram("obs.scrape_test_latency")
	ctr := NewCounter("obs.scrape_test_total")
	ctr.Inc() // visible before the first scrape, even if writers lag
	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			// Bounded work with frequent yields: the race gate runs
			// this while other packages saturate the machine, and the
			// scrape server must still get scheduled.
			for i := 0; i < 20000; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sp := Start(fmt.Sprintf("scrape-test-%d", w))
				qh.Observe(float64(i%100) * 1e-4)
				ctr.Inc()
				sp.End()
				if i%64 == 0 {
					time.Sleep(time.Millisecond) // let scrapers make progress
				}
			}
		}(w)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	get := func(path string) (string, int) {
		t.Helper()
		resp, err := client.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.StatusCode
	}

	var scrapers sync.WaitGroup
	for s := 0; s < 4; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			iters := 10
			if testing.Short() {
				iters = 3
			}
			for i := 0; i < iters; i++ {
				if body, code := get("/metrics?format=prom"); code != http.StatusOK {
					t.Errorf("/metrics prom status %d", code)
				} else if !strings.Contains(body, "obs_scrape_test_total") {
					t.Error("prom scrape missing obs_scrape_test_total")
				}
				if body, code := get("/metrics?format=openmetrics"); code != http.StatusOK {
					t.Errorf("/metrics openmetrics status %d", code)
				} else if !strings.HasSuffix(strings.TrimRight(body, "\n"), "# EOF") {
					t.Error("openmetrics scrape missing # EOF terminator")
				}
				if body, code := get("/metrics"); code != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(body), "{") {
					t.Errorf("/metrics json scrape broken (status %d)", code)
				}
				if _, code := get("/trace"); code != http.StatusOK {
					t.Errorf("/trace status %d", code)
				}
				if body, code := get("/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
					t.Errorf("/healthz = %q (status %d)", body, code)
				}
			}
		}()
	}
	scrapers.Wait()
	close(stop)
	writers.Wait()

	// Final scrapes in both text formats must still be format-valid.
	body, _ := get("/metrics?format=prom")
	checkPromFormat(t, body)
	body, _ = get("/metrics?format=openmetrics")
	checkOpenMetricsFormat(t, body)
}

// TestWriteSummaryTable smoke-tests the end-of-run table renderer over
// every metric kind.
func TestWriteSummaryTable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummary(&buf, promTestRegistry()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"metric", "runtime.invocations", "42",
		"graph.kernel_invocations_by_knob{fp16}",
		"runtime.invocation_seconds", "p99=",
		"distrib.http_latency_seconds{/v1/curve}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}
}
