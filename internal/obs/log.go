package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Level selects how much a Logger emits.
type Level int32

const (
	// Quiet suppresses everything except errors.
	Quiet Level = iota
	// Normal emits progress output (the default; byte-identical to the
	// historical fmt.Fprintf output of the CLI tools).
	Normal
	// Verbose additionally emits detail diagnostics.
	Verbose
)

// Logger is a minimal leveled logger for the CLI tools. It adds no
// prefixes or timestamps: at Normal level its output is byte-identical to
// the raw fmt.Fprintf calls it replaces. Safe for concurrent use.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
}

// NewLogger writes to w at the given level.
func NewLogger(w io.Writer, level Level) *Logger {
	l := &Logger{w: w}
	l.level.Store(int32(level))
	return l
}

// SetLevel changes the level at runtime.
func (l *Logger) SetLevel(level Level) { l.level.Store(int32(level)) }

// LevelNow returns the current level.
func (l *Logger) LevelNow() Level { return Level(l.level.Load()) }

func (l *Logger) emit(min Level, format string, args ...any) {
	if Level(l.level.Load()) < min {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(l.w, format, args...)
}

// Infof emits at Normal and above. The format is written verbatim —
// include the trailing newline, as with fmt.Fprintf.
func (l *Logger) Infof(format string, args ...any) { l.emit(Normal, format, args...) }

// Verbosef emits only at Verbose.
func (l *Logger) Verbosef(format string, args ...any) { l.emit(Verbose, format, args...) }

// Errorf always emits, regardless of level.
func (l *Logger) Errorf(format string, args ...any) { l.emit(Quiet, format, args...) }
