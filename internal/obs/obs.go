// Package obs is the repository's stdlib-only observability layer: a
// hierarchical span tracer, a metrics registry (counters, gauges,
// log-scale histograms), and exporters (JSONL trace files, a
// human-readable tree summary, and an opt-in HTTP endpoint serving
// expvar-style metric JSON plus net/http/pprof).
//
// The paper's entire evaluation (§6, Tables 3–4, Figs 6–9) is built from
// per-phase timings, per-iteration tuner telemetry and per-op cost/QoS
// attributions; this package is the machinery that records them. The
// three tuning phases (development-time, install-time, run-time), profile
// collection, autotuner iterations and per-node graph execution all emit
// spans and metrics through it.
//
// Design rules:
//
//   - Metrics are always-on atomic counters: an increment is a few
//     nanoseconds and never allocates, so the tensor kernels can count
//     invocations unconditionally.
//   - Tracing is opt-in. With no tracer installed every span entry point
//     returns a nil *Span, and every Span method is nil-safe, so the
//     disabled path costs one atomic pointer load and zero allocations.
//   - Both spans and the Stopwatch in internal/core read the same
//     monotonic clock (Now), so Table-4 style phase timings and trace
//     durations agree by construction.
package obs

import (
	"sync/atomic"
	"time"
)

// clockBase anchors the package's monotonic clock. time.Since uses the
// monotonic reading of clockBase, so Now is immune to wall-clock steps.
var clockBase = time.Now()

// Now returns monotonic nanoseconds since process start — the single
// clock source for spans, stopwatches and phase timings.
func Now() int64 { return int64(time.Since(clockBase)) }

// WallStart returns the wall-clock instant corresponding to Now() == 0,
// letting exporters reconstruct absolute timestamps.
func WallStart() time.Time { return clockBase }

// global holds the installed tracer; nil means tracing is disabled.
var global atomic.Pointer[Tracer]

// Install makes t the process-wide tracer returned by Active. Passing nil
// disables tracing. Install returns the previous tracer (possibly nil) so
// tests can restore it.
func Install(t *Tracer) *Tracer { return global.Swap(t) }

// Active returns the installed tracer, or nil when tracing is disabled.
func Active() *Tracer { return global.Load() }

// Enabled reports whether a tracer is installed.
func Enabled() bool { return global.Load() != nil }

// Start opens a root span on the installed tracer. It returns nil (a
// valid no-op span) when tracing is disabled.
func Start(name string) *Span {
	t := global.Load()
	if t == nil {
		return nil
	}
	return t.Start(name)
}
