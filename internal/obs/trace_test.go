package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestTracerRetentionKeepsMostRecent pins the ring semantics of the
// in-memory span store: when more spans complete than KeepInMemory, the
// retained set is the most recent N in completion order — not the first
// N — so a long-lived server's /trace always shows current activity.
func TestTracerRetentionKeepsMostRecent(t *testing.T) {
	tr := NewTracer(TracerOptions{KeepInMemory: 3})
	for i := 0; i < 10; i++ {
		tr.Start(fmt.Sprintf("span-%d", i)).End()
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("retained %d, want 3", len(recs))
	}
	for i, want := range []string{"span-7", "span-8", "span-9"} {
		if recs[i].Name != want {
			t.Errorf("records[%d] = %q, want %q (ring must keep the newest, oldest first)", i, recs[i].Name, want)
		}
	}
	if tr.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", tr.Dropped())
	}
}

// TestTraceparentRoundTrip pins the W3C traceparent wire format through
// format → parse → inject → extract.
func TestTraceparentRoundTrip(t *testing.T) {
	tid, ok := ParseTraceID("4bf92f3577b34da6a3ce929d0e0e4736")
	if !ok {
		t.Fatal("ParseTraceID rejected valid ID")
	}
	sid, ok := ParseSpanID("00f067aa0ba902b7")
	if !ok {
		t.Fatal("ParseSpanID rejected valid ID")
	}
	sc := SpanContext{TraceID: tid, SpanID: sid}
	hdr := FormatTraceparent(sc)
	if hdr != "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01" {
		t.Fatalf("FormatTraceparent = %q", hdr)
	}
	got, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatal("ParseTraceparent rejected its own format")
	}
	if got != sc {
		t.Fatalf("round trip: got %+v, want %+v", got, sc)
	}

	h := http.Header{}
	h.Set(TraceparentHeader, hdr)
	if ex := Extract(h); ex != sc {
		t.Fatalf("Extract = %+v, want %+v", ex, sc)
	}

	for _, bad := range []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"0g-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad hex
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want rejection", bad)
		}
	}
}

// TestStartCtxPropagation checks the context plumbing: StartCtx creates
// a child of the context's span (same trace) and ContextWithSpan /
// SpanFromContext round-trip.
func TestStartCtxPropagation(t *testing.T) {
	tr := NewTracer(TracerOptions{KeepInMemory: 16, IDSeed: 5})
	ctx, root := tr.StartCtx(context.Background(), "root")
	if SpanFromContext(ctx) != root {
		t.Fatal("StartCtx did not store the span in the context")
	}
	ctx2, child := tr.StartCtx(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Errorf("child trace %s != root trace %s", child.TraceID(), root.TraceID())
	}
	if SpanFromContext(ctx2) != child {
		t.Error("nested StartCtx did not replace the context span")
	}
	child.End()
	root.End()

	recs := tr.Records()
	if len(recs) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(recs))
	}
	// child completed first; its parent span ID must be root's.
	if recs[0].ParentSpanID != recs[1].SpanID {
		t.Errorf("child parent span %s != root span %s", recs[0].ParentSpanID, recs[1].SpanID)
	}

	// Disabled tracing: package helper returns a nil span and the
	// unchanged context.
	prev := Install(NewTracer(TracerOptions{}))
	Install(prev)
	ctx3, sp := StartCtx(context.Background(), "noop")
	if Active() == nil {
		if sp != nil || ctx3 != context.Background() {
			t.Error("disabled StartCtx must be a no-op")
		}
	}
	sp.End()
}

// TestIDSourceDeterministic pins the seeded identity stream: the same
// seed yields the same trace/span IDs, different seeds diverge, and no
// ID is ever zero.
func TestIDSourceDeterministic(t *testing.T) {
	a, b := NewIDSource(42), NewIDSource(42)
	for i := 0; i < 100; i++ {
		ta, tb := a.TraceID(), b.TraceID()
		if ta != tb {
			t.Fatalf("seed-42 streams diverge at %d: %s vs %s", i, ta, tb)
		}
		if ta.IsZero() {
			t.Fatal("zero trace ID minted")
		}
		sa, sb := a.SpanID(), b.SpanID()
		if sa != sb {
			t.Fatalf("span streams diverge at %d", i)
		}
		if sa.IsZero() {
			t.Fatal("zero span ID minted")
		}
	}
	c := NewIDSource(43)
	if a0, c0 := NewIDSource(42).TraceID(), c.TraceID(); a0 == c0 {
		t.Error("different seeds produced identical first trace IDs")
	}
}

// TestFlightRecorderConcurrent hammers one recorder with concurrent
// span/event writes while dumping it — the CI race gate runs this under
// -race. Every dumped line must be valid JSON and entry sequence
// numbers must be unique.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(4, 64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					fr.Event(fmt.Sprintf("event-%d", w), "detail", TraceID{})
				} else {
					fr.OnSpanEnd(SpanRecord{Name: fmt.Sprintf("span-%d", w)})
				}
			}
		}(w)
	}
	for d := 0; d < 20; d++ {
		var buf bytes.Buffer
		if err := fr.Dump(&buf); err != nil {
			t.Fatalf("dump %d: %v", d, err)
		}
		seen := make(map[uint64]bool)
		for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
			if line == "" {
				continue
			}
			var e FlightEntry
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				t.Fatalf("dump %d: bad JSONL line %q: %v", d, line, err)
			}
			if seen[e.Seq] {
				t.Fatalf("dump %d: duplicate seq %d", d, e.Seq)
			}
			seen[e.Seq] = true
		}
	}
	close(stop)
	wg.Wait()
}

// TestFlightRecorderRetainsRecent checks the per-shard rings keep the
// most recent entries once full.
func TestFlightRecorderRetainsRecent(t *testing.T) {
	fr := NewFlightRecorder(1, 8)
	for i := 0; i < 100; i++ {
		fr.Event(fmt.Sprintf("e%d", i), "", TraceID{})
	}
	entries := fr.Entries()
	if len(entries) != 8 {
		t.Fatalf("retained %d entries, want 8", len(entries))
	}
	for i, e := range entries {
		if want := fmt.Sprintf("e%d", 92+i); e.Name != want {
			t.Errorf("entries[%d] = %q, want %q", i, e.Name, want)
		}
	}
}

// TestFlightTimeBase pins the ring onto a single clock: a span finished
// through a tracer and an event stamped directly must both land with
// Start on the process clock (obs.Now), so entries from the two paths
// are chronologically comparable. Tracers keep spans epoch-relative
// internally; finish must normalize before handing off to the ring.
func TestFlightTimeBase(t *testing.T) {
	t0 := Now()
	tr := NewTracer(TracerOptions{IDSeed: 99})
	sp := tr.Start("flight-timebase-span")
	sp.End()
	Flight().Event("flight-timebase-event", "", TraceID{})
	t1 := Now()

	starts := make(map[string]int64)
	for _, e := range Flight().Entries() {
		if e.Name == "flight-timebase-span" || e.Name == "flight-timebase-event" {
			starts[e.Name] = e.Start
		}
	}
	for _, name := range []string{"flight-timebase-span", "flight-timebase-event"} {
		got, ok := starts[name]
		if !ok {
			t.Fatalf("%s not found in flight ring", name)
		}
		if got < t0 || got > t1 {
			t.Errorf("%s Start=%d outside process-clock window [%d, %d]; mixed time bases in ring", name, got, t0, t1)
		}
	}
	if starts["flight-timebase-event"] < starts["flight-timebase-span"] {
		t.Errorf("event recorded after span sorts before it: span=%d event=%d",
			starts["flight-timebase-span"], starts["flight-timebase-event"])
	}
}

// sampleTrace pushes one synthetic single-span trace through a sampler
// and finishes it with the given verdict.
func sampleTrace(ts *TailSampler, ids *IDSource, v Verdict) (TraceID, bool, string) {
	tid := ids.TraceID()
	ts.OnSpanEnd(SpanRecord{Name: "req", TraceID: tid, SpanID: ids.SpanID()})
	kept, reason := ts.Finish(tid, v)
	return tid, kept, reason
}

// TestTailSamplerReasons pins the keep-reason precedence and the floor.
func TestTailSamplerReasons(t *testing.T) {
	ts := NewTailSampler(TailSamplerOptions{Seed: 3, Floor: -1})
	ids := NewIDSource(7)
	cases := []struct {
		v      Verdict
		kept   bool
		reason string
	}{
		{Verdict{Errored: true, Slow: true, Eventful: true}, true, "error"},
		{Verdict{Slow: true, Eventful: true}, true, "slow"},
		{Verdict{Eventful: true}, true, "event"},
		{Verdict{}, false, ""},
	}
	for _, c := range cases {
		_, kept, reason := sampleTrace(ts, ids, c.v)
		if kept != c.kept || reason != c.reason {
			t.Errorf("verdict %+v: kept=%v reason=%q, want kept=%v reason=%q", c.v, kept, reason, c.kept, c.reason)
		}
	}

	// Floor=1 keeps everything uninteresting with reason "floor".
	all := NewTailSampler(TailSamplerOptions{Seed: 3, Floor: 1})
	if _, kept, reason := sampleTrace(all, ids, Verdict{}); !kept || reason != "floor" {
		t.Errorf("Floor=1: kept=%v reason=%q, want floor keep", kept, reason)
	}
}

// samplerRun drives a fixed workload through a fresh seeded sampler and
// returns the kept trace IDs in decision order.
func samplerRun(seed int64) []string {
	ts := NewTailSampler(TailSamplerOptions{Seed: seed, Floor: 0.25, Keep: 1024})
	ids := NewIDSource(99)
	var kept []string
	for i := 0; i < 400; i++ {
		tid, ok, _ := sampleTrace(ts, ids, Verdict{})
		if ok {
			kept = append(kept, tid.String())
		}
	}
	return kept
}

// TestTailSamplerDeterministicAcrossGOMAXPROCS pins floor-sampling
// reproducibility: same seed, same trace IDs → bit-identical kept set,
// independent of scheduler parallelism.
func TestTailSamplerDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	kept1 := samplerRun(11)
	runtime.GOMAXPROCS(8)
	kept8 := samplerRun(11)

	if len(kept1) == 0 {
		t.Fatal("floor=0.25 kept nothing across 400 traces; determinism check is vacuous")
	}
	if len(kept1) != len(kept8) {
		t.Fatalf("kept %d at GOMAXPROCS=1 but %d at 8", len(kept1), len(kept8))
	}
	for i := range kept1 {
		if kept1[i] != kept8[i] {
			t.Fatalf("kept[%d] differs: %s vs %s", i, kept1[i], kept8[i])
		}
	}
	// And a different seed must produce a different kept set.
	if other := samplerRun(12); len(other) == len(kept1) {
		same := true
		for i := range other {
			if other[i] != kept1[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("seeds 11 and 12 kept identical sets; floor is not seed-driven")
		}
	}
}

// TestTailSamplerLinkCopiesSubtree checks the batch-linking contract: a
// span that Links another trace donates its buffered subtree to the
// linked trace, so the member's kept trace includes the shared spans.
func TestTailSamplerLinkCopiesSubtree(t *testing.T) {
	ts := NewTailSampler(TailSamplerOptions{Seed: 1, Floor: -1})
	ids := NewIDSource(3)
	member := ids.TraceID()
	batch := ids.TraceID()

	ts.OnSpanEnd(SpanRecord{Name: "member:request", TraceID: member, SpanID: ids.SpanID()})
	ts.OnSpanEnd(SpanRecord{Name: "batch:execute", TraceID: batch, SpanID: ids.SpanID()})
	ts.OnSpanEnd(SpanRecord{Name: "batch:root", TraceID: batch, SpanID: ids.SpanID(), Links: []TraceID{member}})

	kept, reason := ts.Finish(member, Verdict{Slow: true})
	if !kept || reason != "slow" {
		t.Fatalf("Finish: kept=%v reason=%q", kept, reason)
	}
	traces := ts.Kept()
	if len(traces) != 1 {
		t.Fatalf("kept %d traces, want 1", len(traces))
	}
	names := make(map[string]bool)
	for _, sp := range traces[0].Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"member:request", "batch:execute", "batch:root"} {
		if !names[want] {
			t.Errorf("kept trace missing %q (have %v)", want, names)
		}
	}
}

// TestTailSamplerBoundedPending checks eviction: undecided traces
// beyond MaxPending are dropped oldest-first and counted.
func TestTailSamplerBoundedPending(t *testing.T) {
	ts := NewTailSampler(TailSamplerOptions{Seed: 1, Floor: -1, MaxPending: 8})
	ids := NewIDSource(5)
	tids := make([]TraceID, 20)
	for i := range tids {
		tids[i] = ids.TraceID()
		ts.OnSpanEnd(SpanRecord{Name: "s", TraceID: tids[i], SpanID: ids.SpanID()})
	}
	_, _, evicted := ts.Stats()
	if evicted != 12 {
		t.Errorf("evicted = %d, want 12", evicted)
	}
	// An evicted trace finishes with no spans: decision still works, but
	// a keep would be empty — the sampler must not keep what it no longer
	// buffers unless the verdict demands it.
	kept, _ := ts.Finish(tids[0], Verdict{})
	if kept {
		t.Error("uninteresting evicted trace kept with floor disabled")
	}
}

// TestExemplarJSONRoundTrip pins exemplar persistence through the
// QSnapshot JSON codec.
func TestExemplarJSONRoundTrip(t *testing.T) {
	h := NewQHist()
	tid, ok := ParseTraceID("0af7651916cd43dd8448eb211c80319c")
	if !ok {
		t.Fatal("ParseTraceID rejected valid ID")
	}
	for i := 1; i <= 64; i++ {
		h.Observe(float64(i) / 128)
	}
	h.ObserveExemplar(0.25, tid)
	snap := h.Snapshot()

	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back QSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	ex, found := back.ExemplarNear(0.5)
	if !found {
		t.Fatal("decoded snapshot lost the exemplar")
	}
	if ex.TraceID != tid {
		t.Errorf("exemplar trace = %s, want %s", ex.TraceID, tid)
	}
	if math.Float64bits(ex.Value) != math.Float64bits(0.25) {
		t.Errorf("exemplar value = %v, want 0.25", ex.Value)
	}
	sum := back.Summary()
	if len(sum.Exemplars) == 0 {
		t.Fatal("summary carries no exemplars")
	}
	if sum.Exemplars[0].TraceID != tid {
		t.Errorf("summary exemplar trace = %s, want %s", sum.Exemplars[0].TraceID, tid)
	}
}
