package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
	"testing"
)

// splitmix64 is a tiny deterministic generator so the tests stay seeded
// without math/rand (banned by the detrand analyzer).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 in [0,1).
func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// sortedQuantile is the nearest-rank reference the histogram estimates
// are verified against.
func sortedQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestQHistogramQuantilesVsSortedReference drives seeded log-uniform
// latencies through the histogram and checks p50/p90/p99 against the
// exact sorted-sample quantiles. The log-linear bucket layout bounds the
// relative error at half a sub-bucket (~3.2%); the test allows 5%.
func TestQHistogramQuantilesVsSortedReference(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		rng := splitmix64(seed)
		h := NewQHist()
		const n = 20000
		vals := make([]float64, n)
		for i := range vals {
			// Latencies spread over [100µs, 10s), log-uniform: the shape a
			// tail-latency histogram actually sees.
			v := 1e-4 * math.Pow(1e5, rng.float64())
			vals[i] = v
			h.Observe(v)
		}
		sort.Float64s(vals)
		snap := h.Snapshot()
		if snap.Count() != n {
			t.Fatalf("seed %d: count = %d, want %d", seed, snap.Count(), n)
		}
		for _, q := range []float64{0.5, 0.9, 0.99} {
			got := snap.Quantile(q)
			want := sortedQuantile(vals, q)
			if rel := math.Abs(got-want) / want; rel > 0.05 {
				t.Errorf("seed %d: q%.2f = %v, sorted reference %v (rel err %.3f)", seed, q, got, want, rel)
			}
		}
		if got, want := snap.Max(), vals[n-1]; got != want {
			t.Errorf("seed %d: max = %v, want exact %v", seed, got, want)
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		if math.Abs(snap.Sum()-sum) > 1e-6*sum {
			t.Errorf("seed %d: sum = %v, want %v", seed, snap.Sum(), sum)
		}
	}
}

// TestQHistogramObserveZeroAlloc pins the acceptance criterion: the
// steady-state Observe path must not allocate.
func TestQHistogramObserveZeroAlloc(t *testing.T) {
	h := NewQHist()
	h.Observe(0.001) // warm the shard pool for this P
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.00137) }); n != 0 {
		t.Errorf("Observe allocates %v per run, want 0", n)
	}
}

// TestQHistogramEdgeValues checks the underflow/overflow buckets and the
// empty snapshot.
func TestQHistogramEdgeValues(t *testing.T) {
	h := NewQHist()
	empty := h.Snapshot()
	if empty.Quantile(0.5) != 0 || empty.Max() != 0 || empty.Mean() != 0 {
		t.Errorf("empty snapshot: q50=%v max=%v mean=%v, want zeros",
			empty.Quantile(0.5), empty.Max(), empty.Mean())
	}
	for _, v := range []float64{0, -1, math.NaN(), 1e-300} {
		h.Observe(v) // all land in the underflow bucket without panicking
	}
	h.Observe(1e9) // overflow bucket
	snap := h.Snapshot()
	if snap.Count() != 5 {
		t.Fatalf("count = %d, want 5", snap.Count())
	}
	if got := snap.Quantile(1); got != 1e9 {
		t.Errorf("q100 = %v, want the exact observed max 1e9", got)
	}
}

// TestQHistogramMergeMatchesCombined checks that merging per-source
// snapshots is equivalent to observing everything in one histogram —
// the property the fleet-telemetry aggregation relies on.
func TestQHistogramMergeMatchesCombined(t *testing.T) {
	rng := splitmix64(99)
	a, b, both := NewQHist(), NewQHist(), NewQHist()
	for i := 0; i < 5000; i++ {
		v := 1e-3 * math.Pow(1e3, rng.float64())
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	merged := a.Snapshot()
	merged.Merge(b.Snapshot())
	ref := both.Snapshot()
	if merged.Count() != ref.Count() {
		t.Fatalf("merged count %d != combined %d", merged.Count(), ref.Count())
	}
	if math.Abs(merged.Sum()-ref.Sum()) > 1e-9*ref.Sum() {
		t.Errorf("merged sum %v != combined %v", merged.Sum(), ref.Sum())
	}
	if merged.Max() != ref.Max() {
		t.Errorf("merged max %v != combined %v", merged.Max(), ref.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if merged.Quantile(q) != ref.Quantile(q) {
			t.Errorf("q%.2f: merged %v != combined %v", q, merged.Quantile(q), ref.Quantile(q))
		}
	}
}

// TestQSnapshotJSONRoundTrip checks the wire encoding the fleet
// telemetry uses: a snapshot survives marshal/unmarshal with identical
// count, sum, max and quantiles, and the decoded copy still merges.
func TestQSnapshotJSONRoundTrip(t *testing.T) {
	rng := splitmix64(123)
	h := NewQHist()
	for i := 0; i < 3000; i++ {
		h.Observe(1e-3 * math.Pow(1e3, rng.float64()))
	}
	orig := h.Snapshot()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back QSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count() != orig.Count() || back.Max() != orig.Max() {
		t.Fatalf("round trip: count %d/%d max %v/%v", back.Count(), orig.Count(), back.Max(), orig.Max())
	}
	if math.Abs(back.Sum()-orig.Sum()) > 1e-9*orig.Sum() {
		t.Errorf("round trip sum %v != %v", back.Sum(), orig.Sum())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if back.Quantile(q) != orig.Quantile(q) {
			t.Errorf("round trip q%.2f %v != %v", q, back.Quantile(q), orig.Quantile(q))
		}
	}
	// A decoded empty snapshot must keep the merge identity.
	var empty QSnapshot
	if err := json.Unmarshal([]byte(`{"count":0,"sum":0,"max":0}`), &empty); err != nil {
		t.Fatal(err)
	}
	empty.Merge(&back)
	if empty.Max() != orig.Max() || empty.Count() != orig.Count() {
		t.Errorf("merge into decoded empty snapshot lost data: count %d max %v", empty.Count(), empty.Max())
	}
}

// TestQHistogramConcurrent hammers one histogram from many goroutines
// (run under -race) and checks nothing is lost.
func TestQHistogramConcurrent(t *testing.T) {
	h := NewQHist()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := splitmix64(w + 1)
			for i := 0; i < perWorker; i++ {
				h.Observe(1e-3 + rng.float64())
				if i%1000 == 0 {
					_ = h.Snapshot() // concurrent readers must be safe
				}
			}
		}(w)
	}
	wg.Wait()
	if got := h.Snapshot().Count(); got != workers*perWorker {
		t.Errorf("count = %d, want %d", got, workers*perWorker)
	}
}

// TestQHistogramBucketLayout sanity-checks the index/bound mapping: a
// value always falls in (lower, upper] of its bucket.
func TestQHistogramBucketLayout(t *testing.T) {
	rng := splitmix64(5)
	for i := 0; i < 10000; i++ {
		v := math.Pow(10, rng.float64()*18-9) // [1e-9, 1e9)
		idx := qhistIndex(v)
		lo, hi := qhistLower(idx), qhistUpper(idx)
		if !(v > lo || idx == 0) || v > hi {
			t.Fatalf("value %v mapped to bucket %d (%v, %v]", v, idx, lo, hi)
		}
	}
	if qhistIndex(0) != 0 || qhistIndex(-5) != 0 {
		t.Error("non-positive values must land in the underflow bucket")
	}
	if qhistIndex(1e30) != qhistNBuckets-1 {
		t.Error("huge values must land in the overflow bucket")
	}
}
