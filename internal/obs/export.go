package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// FileTracer couples a tracer with the JSONL trace file it writes.
type FileTracer struct {
	*Tracer
	f *os.File
	w *bufio.Writer
}

// TraceToFile creates (truncating) a JSONL trace file and a tracer
// writing to it. Call Close when the traced run is over.
func TraceToFile(path string, opts TracerOptions) (*FileTracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriter(f)
	opts.Writer = w
	return &FileTracer{Tracer: NewTracer(opts), f: f, w: w}, nil
}

// Close flushes and closes the trace file, reporting any write error
// encountered while exporting spans.
func (ft *FileTracer) Close() error {
	ferr := ft.w.Flush()
	if cerr := ft.f.Close(); ferr == nil {
		ferr = cerr
	}
	if ferr == nil {
		ferr = ft.Err()
	}
	return ferr
}

// ReadTrace parses a JSONL trace stream back into span records.
func ReadTrace(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// TreeNode is one span with its children, as reconstructed from records.
type TreeNode struct {
	SpanRecord
	Children []*TreeNode
}

// BuildTree links span records into forests by parent ID. Roots (and each
// node's children) are ordered by start time. Spans referencing a missing
// parent become roots, so partial traces still render.
func BuildTree(records []SpanRecord) []*TreeNode {
	nodes := make(map[int64]*TreeNode, len(records))
	for _, r := range records {
		nodes[r.ID] = &TreeNode{SpanRecord: r}
	}
	var roots []*TreeNode
	for _, r := range records {
		n := nodes[r.ID]
		if p, ok := nodes[r.Parent]; ok && r.Parent != r.ID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortNodes func(ns []*TreeNode)
	sortNodes = func(ns []*TreeNode) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Start < ns[j].Start })
		for _, n := range ns {
			sortNodes(n.Children)
		}
	}
	sortNodes(roots)
	return roots
}

// Walk visits the node and its descendants depth-first.
func (n *TreeNode) Walk(visit func(*TreeNode, int)) { n.walk(visit, 0) }

func (n *TreeNode) walk(visit func(*TreeNode, int), depth int) {
	visit(n, depth)
	for _, c := range n.Children {
		c.walk(visit, depth+1)
	}
}

// Summarize renders span records as an indented human-readable tree with
// durations and attributes — the CLI-facing view of a trace.
func Summarize(records []SpanRecord) string {
	var b strings.Builder
	for _, root := range BuildTree(records) {
		root.Walk(func(n *TreeNode, depth int) {
			fmt.Fprintf(&b, "%s%s  %.3fms", strings.Repeat("  ", depth), n.Name, float64(n.Dur)/1e6)
			if len(n.Attrs) > 0 {
				keys := make([]string, 0, len(n.Attrs))
				for k := range n.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(&b, " %s=%v", k, n.Attrs[k])
				}
			}
			b.WriteString("\n")
		})
	}
	return b.String()
}
