package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLIConfig wires the standard observability command-line surface shared
// by the repository's binaries: -trace (JSONL trace export),
// -metrics-addr (live /metrics + /debug/pprof endpoint), and -v / -q
// verbosity control for the leveled Logger.
type CLIConfig struct {
	TracePath   string
	MetricsAddr string
	Verbose     bool
	Quiet       bool

	// Log is ready after Activate; before that it is a Normal-level
	// stderr logger, so commands may use it unconditionally.
	Log *Logger

	ft  *FileTracer
	srv *Server
}

// RegisterFlags installs the shared observability flags on fs (the
// default flag.CommandLine when nil) and returns the config they fill.
func RegisterFlags(fs *flag.FlagSet) *CLIConfig {
	if fs == nil {
		fs = flag.CommandLine
	}
	c := &CLIConfig{Log: NewLogger(os.Stderr, Normal)}
	fs.StringVar(&c.TracePath, "trace", "", "write a JSONL span trace to this file")
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "", "serve /metrics, /trace and /debug/pprof on this address (e.g. :8090)")
	fs.BoolVar(&c.Verbose, "v", false, "verbose progress output")
	fs.BoolVar(&c.Quiet, "q", false, "suppress progress output")
	return c
}

// Activate applies the parsed flags: sets the logger level, installs a
// file tracer when -trace was given, and starts the metrics endpoint
// when -metrics-addr was given (announcing the bound address on errw).
// Call Close before exiting to flush the trace.
func (c *CLIConfig) Activate(errw io.Writer) error {
	switch {
	case c.Quiet:
		c.Log.SetLevel(Quiet)
	case c.Verbose:
		c.Log.SetLevel(Verbose)
	}
	if c.TracePath != "" {
		ft, err := TraceToFile(c.TracePath, TracerOptions{})
		if err != nil {
			return err
		}
		c.ft = ft
		Install(ft.Tracer)
	}
	if c.MetricsAddr != "" {
		srv, err := ServeMetrics(c.MetricsAddr, nil, nil)
		if err != nil {
			c.closeTrace()
			return err
		}
		c.srv = srv
		if errw != nil {
			fmt.Fprintf(errw, "metrics endpoint listening on %s\n", srv.Addr)
		}
	}
	return nil
}

func (c *CLIConfig) closeTrace() {
	if c.ft != nil {
		Install(nil)
		if err := c.ft.Close(); err != nil {
			c.Log.Errorf("trace export: %v\n", err)
		}
		c.ft = nil
	}
}

// Close flushes the trace file and stops the metrics endpoint.
func (c *CLIConfig) Close() {
	c.closeTrace()
	if c.srv != nil {
		_ = c.srv.Close()
		c.srv = nil
	}
}
