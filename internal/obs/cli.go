package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLIConfig wires the standard observability command-line surface shared
// by the repository's binaries: -trace (JSONL trace export),
// -metrics-addr (live /metrics + /healthz + /debug/pprof endpoint),
// -prom (end-of-run Prometheus textfile export), -telemetry (end-of-run
// summary table), and -v / -q verbosity control for the leveled Logger.
type CLIConfig struct {
	TracePath   string
	MetricsAddr string
	PromPath    string
	Telemetry   bool
	Verbose     bool
	Quiet       bool

	// Log is ready after Activate; before that it is a Normal-level
	// stderr logger, so commands may use it unconditionally.
	Log *Logger

	ft   *FileTracer
	srv  *Server
	errw io.Writer
}

// RegisterFlags installs the shared observability flags on fs (the
// default flag.CommandLine when nil) and returns the config they fill.
func RegisterFlags(fs *flag.FlagSet) *CLIConfig {
	if fs == nil {
		fs = flag.CommandLine
	}
	c := &CLIConfig{Log: NewLogger(os.Stderr, Normal)}
	fs.StringVar(&c.TracePath, "trace", "", "write a JSONL span trace to this file")
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "", "serve /metrics, /healthz, /trace and /debug/pprof on this address (e.g. :8090)")
	fs.StringVar(&c.PromPath, "prom", "", "write the final metrics in Prometheus text format to this file at exit (\"-\" for stderr; node-exporter textfile collector compatible)")
	fs.BoolVar(&c.Telemetry, "telemetry", false, "print an end-of-run telemetry summary table to stderr")
	fs.BoolVar(&c.Verbose, "v", false, "verbose progress output")
	fs.BoolVar(&c.Quiet, "q", false, "suppress progress output")
	return c
}

// Activate applies the parsed flags: sets the logger level, installs a
// file tracer when -trace was given, and starts the metrics endpoint
// when -metrics-addr was given (announcing the bound address on errw).
// Call Close before exiting to flush the trace.
func (c *CLIConfig) Activate(errw io.Writer) error {
	c.errw = errw
	switch {
	case c.Quiet:
		c.Log.SetLevel(Quiet)
	case c.Verbose:
		c.Log.SetLevel(Verbose)
	}
	if c.TracePath != "" {
		ft, err := TraceToFile(c.TracePath, TracerOptions{})
		if err != nil {
			return err
		}
		c.ft = ft
		Install(ft.Tracer)
	}
	if c.MetricsAddr != "" {
		srv, err := ServeMetrics(c.MetricsAddr, nil, nil)
		if err != nil {
			c.closeTrace()
			return err
		}
		c.srv = srv
		if errw != nil {
			fmt.Fprintf(errw, "metrics endpoint listening on %s\n", srv.Addr)
		}
	}
	return nil
}

func (c *CLIConfig) closeTrace() {
	if c.ft != nil {
		Install(nil)
		if err := c.ft.Close(); err != nil {
			c.Log.Errorf("trace export: %v\n", err)
		}
		c.ft = nil
	}
}

// Close flushes the trace file, writes the end-of-run telemetry outputs
// (-prom textfile, -telemetry summary table) and stops the metrics
// endpoint.
func (c *CLIConfig) Close() {
	c.closeTrace()
	if c.Telemetry {
		errw := c.errw
		if errw == nil {
			errw = os.Stderr
		}
		fmt.Fprintf(errw, "\n--- telemetry summary ---\n")
		if err := WriteSummary(errw, nil); err != nil {
			c.Log.Errorf("telemetry summary: %v\n", err)
		}
	}
	if c.PromPath != "" {
		if err := c.writeProm(); err != nil {
			c.Log.Errorf("prometheus export: %v\n", err)
		}
	}
	if c.srv != nil {
		_ = c.srv.Close()
		c.srv = nil
	}
}

// writeProm dumps the Default registry in Prometheus text format to the
// -prom target, making one-shot CLI runs scrapeable through the
// node-exporter textfile collector.
func (c *CLIConfig) writeProm() error {
	if c.PromPath == "-" {
		w := c.errw
		if w == nil {
			w = os.Stderr
		}
		return Default.WritePrometheus(w)
	}
	f, err := os.Create(c.PromPath)
	if err != nil {
		return err
	}
	if err := Default.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
