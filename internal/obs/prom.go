package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every metric of the registry in the classic
// Prometheus text exposition format (version 0.0.4), ordered by metric
// name so the output is deterministic for a given registry state:
//
//   - Counter      → counter
//   - Gauge        → gauge
//   - CounterVec   → counter with a `key` label per family member
//   - GaugeVec     → gauge with a `key` label per family member
//   - Histogram    → histogram (cumulative `_bucket{le=...}` series)
//   - QHistogram   → summary (p50/p90/p99 quantile series) plus a
//     `<name>_max` gauge for the tail
//   - QHistVec     → summary with a `key` label per family member
//
// The classic format has no exemplar syntax, so exemplars are never
// emitted here — a scraper speaking text/plain;version=0.0.4 would
// fail the whole scrape on one. Exemplar-carrying exposition is
// WriteOpenMetrics; the JSON snapshot carries them too.
//
// Metric names are mangled dots-to-underscores ("runtime.drift_alarms"
// → "runtime_drift_alarms"), which maps the project's snake_case dotted
// naming convention onto Prometheus' [a-zA-Z_:] charset exactly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeText(w, false)
}

// WriteOpenMetrics writes the registry in the OpenMetrics 1.0 text
// format (terminated by the mandatory `# EOF`). Differences from the
// classic exposition, per the OpenMetrics grammar:
//
//   - counter samples carry the canonical `_total` suffix;
//   - QHistogram / QHistVec families are exposed as histograms —
//     cumulative `_bucket{le=...}` series over the log-linear buckets
//     actually touched — because OpenMetrics allows exemplars only on
//     histogram buckets and counters, never on summary quantiles. Each
//     bucket line carries its recorded exemplar
//     (`# {trace_id="…"} value`); quantiles come from
//     histogram_quantile() over the buckets.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeText(w, true)
}

func (r *Registry) writeText(w io.Writer, om bool) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	byName := make(map[string]any, len(r.metrics))
	for name, m := range r.metrics {
		names = append(names, name)
		byName[name] = m
	}
	r.mu.RUnlock()
	sort.Strings(names)

	pw := &promWriter{w: w}
	ctrSample := func(pn string) string {
		if om {
			return pn + "_total"
		}
		return pn
	}
	for _, name := range names {
		pn := promName(name)
		switch m := byName[name].(type) {
		case *Counter:
			pw.typ(pn, "counter")
			pw.line(ctrSample(pn), "", float64(m.Value()))
		case *Gauge:
			pw.typ(pn, "gauge")
			pw.line(pn, "", m.Value())
		case *CounterVec:
			pw.typ(pn, "counter")
			for _, kv := range sortedLabels(m.snapshot()) {
				pw.line(ctrSample(pn), promLabel("key", kv.k), float64(kv.v))
			}
		case *GaugeVec:
			pw.typ(pn, "gauge")
			for _, kv := range sortedFloatLabels(m.snapshot()) {
				pw.line(pn, promLabel("key", kv.k), kv.v)
			}
		case *Histogram:
			pw.typ(pn, "histogram")
			var cum int64
			for i, ub := range m.bounds {
				cum += m.Bucket(i)
				pw.line(pn+"_bucket", promLabel("le", promFloat(ub)), float64(cum))
			}
			pw.line(pn+"_bucket", promLabel("le", "+Inf"), float64(m.Count()))
			pw.line(pn+"_sum", "", m.Sum())
			pw.line(pn+"_count", "", float64(m.Count()))
		case *QHistogram:
			if om {
				s := m.Snapshot()
				pw.typ(pn, "histogram")
				pw.qhistOM(pn, s, "")
				// The tail maximum is its own gauge family: _max is not a
				// histogram sample suffix the OpenMetrics grammar knows.
				pw.typ(pn+"_max", "gauge")
				pw.line(pn+"_max", "", s.Max())
			} else {
				pw.typ(pn, "summary")
				pw.summary(pn, m.Snapshot(), "")
			}
		case *QHistVec:
			if om {
				snaps := sortedSnapshotLabels(m.snapshots())
				pw.typ(pn, "histogram")
				for _, kv := range snaps {
					pw.qhistOM(pn, kv.v, promLabel("key", kv.k))
				}
				pw.typ(pn+"_max", "gauge")
				for _, kv := range snaps {
					pw.line(pn+"_max", promLabel("key", kv.k), kv.v.Max())
				}
			} else {
				pw.typ(pn, "summary")
				for _, kv := range sortedSnapshotLabels(m.snapshots()) {
					pw.summary(pn, kv.v, promLabel("key", kv.k))
				}
			}
		}
	}
	if om {
		pw.printf("# EOF\n")
	}
	return pw.err
}

// promWriter accumulates the first write error so callers check once.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) typ(name, kind string) { p.printf("# TYPE %s %s\n", name, kind) }

func (p *promWriter) line(name, labels string, v float64) {
	if labels == "" {
		p.printf("%s %s\n", name, promFloat(v))
		return
	}
	p.printf("%s{%s} %s\n", name, labels, promFloat(v))
}

// summary emits one quantile histogram as a classic Prometheus summary
// (the quantile series plus _sum/_count) and a _max gauge for the tail.
// No exemplars: the classic format has no syntax for them, and
// OpenMetrics forbids them on summaries anyway. extra, when non-empty,
// is prepended to each series' label set.
func (p *promWriter) summary(name string, s *QSnapshot, extra string) {
	join := joinLabels(extra)
	sum := s.Summary()
	p.line(name, join(promLabel("quantile", "0.5")), sum.P50)
	p.line(name, join(promLabel("quantile", "0.9")), sum.P90)
	p.line(name, join(promLabel("quantile", "0.99")), sum.P99)
	p.line(name+"_sum", extra, sum.Sum)
	p.line(name+"_count", extra, float64(sum.Count))
	p.line(name+"_max", extra, sum.Max)
}

// qhistOM emits one quantile histogram as an OpenMetrics histogram:
// cumulative _bucket series at the upper bounds of the non-empty
// log-linear buckets (plus the mandatory +Inf bucket), each carrying
// its bucket's exemplar when one was recorded — the only sample kind
// OpenMetrics allows exemplars on. extra, when non-empty, is prepended
// to each series' label set.
func (p *promWriter) qhistOM(name string, s *QSnapshot, extra string) {
	join := joinLabels(extra)
	var cum int64
	for i := 0; i < qhistNBuckets-1; i++ {
		n := s.counts[i]
		ex, hasEx := s.exemplars[i]
		if n == 0 && !hasEx {
			continue
		}
		cum += n
		p.bucketLine(name+"_bucket", join(promLabel("le", promFloat(qhistUpper(i)))), float64(cum), ex, hasEx)
	}
	ex, hasEx := s.exemplars[qhistNBuckets-1]
	p.bucketLine(name+"_bucket", join(promLabel("le", "+Inf")), float64(s.count), ex, hasEx)
	p.line(name+"_sum", extra, s.sum)
	p.line(name+"_count", extra, float64(s.count))
}

// bucketLine is line plus an OpenMetrics exemplar
// (`# {trace_id="..."} value`) when the bucket has one.
func (p *promWriter) bucketLine(name, labels string, v float64, ex Exemplar, hasEx bool) {
	if !hasEx {
		p.line(name, labels, v)
		return
	}
	p.printf("%s{%s} %s # {trace_id=\"%s\"} %s\n",
		name, labels, promFloat(v), ex.TraceID.String(), promFloat(ex.Value))
}

// joinLabels returns a label joiner that prepends extra when non-empty.
func joinLabels(extra string) func(string) string {
	return func(q string) string {
		if extra == "" {
			return q
		}
		return extra + "," + q
	}
}

// promName maps a registry name onto the Prometheus metric charset.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r == '.' || r == '-' || r == '/' || r == ' ':
			b.WriteByte('_')
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel renders one escaped label pair.
func promLabel(key, val string) string {
	val = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(val)
	return key + `="` + val + `"`
}

// promFloat renders a value the way Prometheus expects (shortest
// round-trip form; infinities as +Inf/-Inf).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

type labelCount struct {
	k string
	v int64
}

func sortedLabels(m map[string]int64) []labelCount {
	out := make([]labelCount, 0, len(m))
	for k, v := range m {
		out = append(out, labelCount{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

type labelFloat struct {
	k string
	v float64
}

func sortedFloatLabels(m map[string]float64) []labelFloat {
	out := make([]labelFloat, 0, len(m))
	for k, v := range m {
		out = append(out, labelFloat{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

type labelSummary struct {
	k string
	v QSummary
}

func sortedSummaryLabels(m map[string]QSummary) []labelSummary {
	out := make([]labelSummary, 0, len(m))
	for k, v := range m {
		out = append(out, labelSummary{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

type labelSnapshot struct {
	k string
	v *QSnapshot
}

func sortedSnapshotLabels(m map[string]*QSnapshot) []labelSnapshot {
	out := make([]labelSnapshot, 0, len(m))
	for k, v := range m {
		out = append(out, labelSnapshot{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}
