package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// The flight recorder is the always-on black box: a bounded, sharded
// ring of the most recently completed spans plus discrete events
// (config switches, drift alarms, admission rejects). Recording copies
// a fixed-size entry into a preallocated slot under a per-shard mutex —
// ~zero steady-state allocation — so it stays on even when tracing is
// otherwise disabled. The ring is dumped as JSONL on drift-latch,
// /healthz 503 transition, SIGQUIT, and on demand via /debug/flight.

// FlightEntry is one ring slot: a completed span or a discrete event.
type FlightEntry struct {
	Seq     uint64  `json:"seq"`
	Kind    string  `json:"kind"` // "span" or "event"
	Name    string  `json:"name"`
	TraceID TraceID `json:"trace_id"`
	SpanID  SpanID  `json:"span_id"`
	Start   int64   `json:"start_ns"`
	Dur     int64   `json:"dur_ns"`
	Detail  string  `json:"detail,omitempty"`
}

// flightShard is one ring segment. The trailing pad keeps hot shards on
// separate cache lines.
type flightShard struct {
	mu  sync.Mutex
	buf []FlightEntry
	n   uint64 // total writes; buf[(n-1)%len(buf)] is the newest entry
	_   [64]byte
}

// FlightRecorder is a sharded ring buffer of recent spans and events.
// All methods are goroutine-safe and nil-safe.
type FlightRecorder struct {
	shards []flightShard
	seq    atomic.Uint64
}

// NewFlightRecorder builds a recorder with the given shard count and
// per-shard capacity (defaults: 8 shards x 128 entries). Memory is
// fully preallocated: shards*perShard fixed-size entries.
func NewFlightRecorder(shards, perShard int) *FlightRecorder {
	if shards <= 0 {
		shards = 8
	}
	if perShard <= 0 {
		perShard = 128
	}
	f := &FlightRecorder{shards: make([]flightShard, shards)}
	for i := range f.shards {
		f.shards[i].buf = make([]FlightEntry, perShard)
	}
	return f
}

// defaultFlight is the process-wide always-on recorder: every completed
// span of every tracer and every runtime event lands here.
var defaultFlight = NewFlightRecorder(0, 0)

// Flight returns the process-wide flight recorder.
func Flight() *FlightRecorder { return defaultFlight }

func (f *FlightRecorder) record(e FlightEntry) {
	if f == nil {
		return
	}
	e.Seq = f.seq.Add(1)
	sh := &f.shards[e.Seq%uint64(len(f.shards))]
	sh.mu.Lock()
	sh.buf[sh.n%uint64(len(sh.buf))] = e
	sh.n++
	sh.mu.Unlock()
}

// OnSpanEnd records a completed span (SpanSink; the default recorder is
// wired into every tracer's finish path). rec.Start must be on the
// process clock (obs.Now) so span and event entries in one ring are
// chronologically comparable — Tracer.finish normalizes its
// tracer-relative starts before calling this.
func (f *FlightRecorder) OnSpanEnd(rec SpanRecord) {
	f.record(FlightEntry{
		Kind:    "span",
		Name:    rec.Name,
		TraceID: rec.TraceID,
		SpanID:  rec.SpanID,
		Start:   rec.Start,
		Dur:     rec.Dur,
	})
}

// Event records a discrete event (switch, alarm, reject). tid may be
// zero when the event is not tied to one request.
func (f *FlightRecorder) Event(name, detail string, tid TraceID) {
	f.record(FlightEntry{
		Kind:    "event",
		Name:    name,
		Detail:  detail,
		TraceID: tid,
		Start:   Now(),
	})
}

// Entries returns a copy of the retained entries in record order
// (ascending Seq).
func (f *FlightRecorder) Entries() []FlightEntry {
	if f == nil {
		return nil
	}
	var out []FlightEntry
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		n := sh.n
		if limit := uint64(len(sh.buf)); n > limit {
			n = limit
		}
		for j := uint64(0); j < n; j++ {
			out = append(out, sh.buf[j])
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump writes the retained entries as JSONL, oldest first.
func (f *FlightRecorder) Dump(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range f.Entries() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the ring as an on-demand JSONL dump (/debug/flight).
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = f.Dump(w)
	})
}
