package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// QHistogram is a mergeable quantile histogram for hot-path latency
// accounting. Observations land in shard-per-P bucket arrays (a
// sync.Pool hands each P its own shard), so concurrent Observe calls
// almost never touch the same cache lines; each shard's buckets are
// plain atomic adds. The steady-state Observe path performs zero
// allocations and takes no locks.
//
// Buckets are log-linear (HdrHistogram style): one octave per power of
// two, each octave split into 16 linear sub-buckets, covering
// [2^-40, 2^24) — roughly a picosecond to months when values are
// seconds. The layout bounds the relative quantile-estimation error at
// 1/32 of the bucket width (midpoint reporting): ≤ ~3.2%.
//
// Snapshot produces an immutable QSnapshot that can be merged with
// snapshots of other histograms (e.g. per-edge telemetry folded into a
// fleet view) and queried for arbitrary quantiles.
type QHistogram struct {
	mu     sync.Mutex // guards shard-list growth only
	shards atomic.Pointer[[]*qshard]
	pool   sync.Pool
	// ex holds one exemplar per bucket (lazily allocated on the first
	// ObserveExemplar, so plain histograms pay nothing for the feature).
	ex atomic.Pointer[exemplarSlots]
}

// Exemplar ties one observed value to the trace that produced it
// (OpenMetrics exemplars), so a latency quantile links directly to a
// kept trace in the flight recorder or tail sampler.
type Exemplar struct {
	Value   float64 `json:"value"`
	TraceID TraceID `json:"trace_id"`
}

// exemplarSlots stores the latest exemplar per bucket.
type exemplarSlots [qhistNBuckets]atomic.Pointer[Exemplar]

const (
	qhistSubBits = 4 // 16 linear sub-buckets per octave
	qhistSub     = 1 << qhistSubBits
	qhistMinExp  = -40 // smallest octave: [2^-40, 2^-39)
	qhistMaxExp  = 24  // values ≥ 2^24 overflow
	qhistOctaves = qhistMaxExp - qhistMinExp
	// Index 0 is the underflow bucket (v < 2^minExp, including zero and
	// negatives); the last index is the overflow bucket.
	qhistNBuckets = qhistOctaves*qhistSub + 2
)

// qshard is one P's private slice of the histogram. The trailing pad
// keeps two shards from sharing a cache line.
type qshard struct {
	buckets [qhistNBuckets]atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	maxBits atomic.Uint64 // float64 bits of the largest observation
	_       [64]byte
}

// NewQHist returns an unregistered quantile histogram, for callers that
// manage their own lifecycle (e.g. one histogram per runtime
// configuration). Registered, named histograms come from
// Registry.QHistogram / NewQHistogram.
func NewQHist() *QHistogram {
	h := &QHistogram{}
	empty := make([]*qshard, 0, 8)
	h.shards.Store(&empty)
	h.pool.New = func() any { return h.newShard() }
	return h
}

func (h *QHistogram) newShard() *qshard {
	s := &qshard{}
	s.maxBits.Store(math.Float64bits(math.Inf(-1)))
	h.mu.Lock()
	old := *h.shards.Load()
	next := make([]*qshard, len(old)+1)
	copy(next, old)
	next[len(old)] = s
	h.shards.Store(&next)
	h.mu.Unlock()
	return s
}

// qhistIndex maps a value to its bucket index.
func qhistIndex(v float64) int {
	if !(v >= math.Ldexp(1, qhistMinExp)) { // catches NaN, ≤0 and tiny
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac·2^exp, frac ∈ [0.5, 1)
	e := exp - 1               // v = (2·frac)·2^e, 2·frac ∈ [1, 2)
	if e >= qhistMaxExp {
		return qhistNBuckets - 1
	}
	sub := int((frac*2 - 1) * qhistSub)
	return 1 + (e-qhistMinExp)*qhistSub + sub
}

// qhistUpper returns the upper bound of bucket i (the lower bound of
// bucket 0 is -inf; the upper bound of the overflow bucket is +inf).
func qhistUpper(i int) float64 {
	switch {
	case i <= 0:
		return math.Ldexp(1, qhistMinExp)
	case i >= qhistNBuckets-1:
		return math.Inf(1)
	}
	i--
	e := qhistMinExp + i/qhistSub
	sub := i % qhistSub
	return math.Ldexp(1+float64(sub+1)/qhistSub, e)
}

// qhistLower returns the lower bound of bucket i.
func qhistLower(i int) float64 {
	switch {
	case i <= 0:
		return 0
	case i >= qhistNBuckets-1:
		return math.Ldexp(1, qhistMaxExp)
	}
	i--
	e := qhistMinExp + i/qhistSub
	sub := i % qhistSub
	return math.Ldexp(1+float64(sub)/qhistSub, e)
}

// Observe records one value. Safe for concurrent use; zero allocations
// and no locks on the steady-state path.
func (h *QHistogram) Observe(v float64) {
	s := h.pool.Get().(*qshard)
	s.buckets[qhistIndex(v)].Add(1)
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := s.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if s.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	h.pool.Put(s)
}

// ObserveExemplar records one value and stores it as the exemplar of
// its bucket, tagged with the trace that produced it. A zero trace ID
// degrades to a plain Observe.
func (h *QHistogram) ObserveExemplar(v float64, tid TraceID) {
	h.Observe(v)
	if tid.IsZero() {
		return
	}
	slots := h.ex.Load()
	if slots == nil {
		slots = &exemplarSlots{}
		if !h.ex.CompareAndSwap(nil, slots) {
			slots = h.ex.Load()
		}
	}
	slots[qhistIndex(v)].Store(&Exemplar{Value: v, TraceID: tid})
}

// Count returns the total number of observations.
func (h *QHistogram) Count() int64 {
	var n int64
	for _, s := range *h.shards.Load() {
		n += s.count.Load()
	}
	return n
}

// Snapshot merges all shards into an immutable point-in-time view.
func (h *QHistogram) Snapshot() *QSnapshot {
	snap := &QSnapshot{max: math.Inf(-1)}
	for _, s := range *h.shards.Load() {
		snap.count += s.count.Load()
		snap.sum += math.Float64frombits(s.sumBits.Load())
		if m := math.Float64frombits(s.maxBits.Load()); m > snap.max {
			snap.max = m
		}
		for i := range s.buckets {
			snap.counts[i] += s.buckets[i].Load()
		}
	}
	if slots := h.ex.Load(); slots != nil {
		for i := range slots {
			if e := slots[i].Load(); e != nil {
				if snap.exemplars == nil {
					snap.exemplars = make(map[int]Exemplar)
				}
				snap.exemplars[i] = *e
			}
		}
	}
	return snap
}

// QSnapshot is a merged, immutable view of one or more QHistograms.
type QSnapshot struct {
	counts    [qhistNBuckets]int64
	count     int64
	sum       float64
	max       float64
	exemplars map[int]Exemplar // bucket index → latest exemplar
}

// Merge folds another snapshot into this one (fleet aggregation).
// Exemplars are adopted for buckets that have none yet.
func (s *QSnapshot) Merge(o *QSnapshot) {
	if o == nil {
		return
	}
	s.count += o.count
	s.sum += o.sum
	if o.max > s.max {
		s.max = o.max
	}
	for i := range s.counts {
		s.counts[i] += o.counts[i]
	}
	for i, e := range o.exemplars {
		if _, ok := s.exemplars[i]; !ok {
			if s.exemplars == nil {
				s.exemplars = make(map[int]Exemplar)
			}
			s.exemplars[i] = e
		}
	}
}

// ExemplarNear returns an exemplar representative of the q-quantile: the
// exemplar of the bucket holding the quantile's rank, or the nearest
// bucket (within one octave) that has one. ok is false when no exemplar
// is close enough.
func (s *QSnapshot) ExemplarNear(q float64) (Exemplar, bool) {
	if len(s.exemplars) == 0 || s.count == 0 {
		return Exemplar{}, false
	}
	target := qhistIndex(s.Quantile(q))
	for d := 0; d <= qhistSub; d++ {
		if e, ok := s.exemplars[target+d]; ok {
			return e, true
		}
		if d > 0 {
			if e, ok := s.exemplars[target-d]; ok {
				return e, true
			}
		}
	}
	return Exemplar{}, false
}

// qsnapshotJSON is the wire form of a QSnapshot: the bucket array is
// sparse-encoded (index → count) since latency distributions touch only
// a handful of the 1026 buckets.
type qsnapshotJSON struct {
	Counts    map[string]int64    `json:"counts,omitempty"`
	Count     int64               `json:"count"`
	Sum       float64             `json:"sum"`
	Max       float64             `json:"max"`
	Exemplars map[string]Exemplar `json:"exemplars,omitempty"`
}

// MarshalJSON encodes the snapshot for shipping (e.g. per-edge telemetry
// uploads); the result round-trips through UnmarshalJSON with identical
// counts, sum, max and quantiles.
func (s *QSnapshot) MarshalJSON() ([]byte, error) {
	j := qsnapshotJSON{Count: s.count, Sum: s.sum, Max: s.Max()}
	for i, n := range s.counts {
		if n != 0 {
			if j.Counts == nil {
				j.Counts = make(map[string]int64)
			}
			j.Counts[strconv.Itoa(i)] = n
		}
	}
	for i, e := range s.exemplars {
		if j.Exemplars == nil {
			j.Exemplars = make(map[string]Exemplar)
		}
		j.Exemplars[strconv.Itoa(i)] = e
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a snapshot produced by MarshalJSON. Bucket
// indices outside the compiled-in layout are folded into the overflow
// bucket rather than dropped.
func (s *QSnapshot) UnmarshalJSON(data []byte) error {
	var j qsnapshotJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = QSnapshot{count: j.Count, sum: j.Sum, max: j.Max}
	if j.Count == 0 {
		s.max = math.Inf(-1) // the empty-snapshot sentinel Merge relies on
	}
	for k, n := range j.Counts {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 {
			return fmt.Errorf("obs: bad qsnapshot bucket index %q", k)
		}
		if i >= qhistNBuckets {
			i = qhistNBuckets - 1
		}
		s.counts[i] += n
	}
	for k, e := range j.Exemplars {
		i, err := strconv.Atoi(k)
		if err != nil || i < 0 {
			return fmt.Errorf("obs: bad qsnapshot exemplar index %q", k)
		}
		if i >= qhistNBuckets {
			i = qhistNBuckets - 1
		}
		if s.exemplars == nil {
			s.exemplars = make(map[int]Exemplar)
		}
		s.exemplars[i] = e
	}
	return nil
}

// Count returns the number of observations in the snapshot.
func (s *QSnapshot) Count() int64 { return s.count }

// Sum returns the sum of all observations.
func (s *QSnapshot) Sum() float64 { return s.sum }

// Max returns the largest observation (0 when empty).
func (s *QSnapshot) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Mean returns the arithmetic mean (0 when empty).
func (s *QSnapshot) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Quantile estimates the q-quantile (q in [0,1]) as the midpoint of the
// bucket containing the nearest rank, clamped to the observed maximum.
// Returns 0 when the snapshot is empty.
func (s *QSnapshot) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank on the merged counts: rank r in [1, count].
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < qhistNBuckets; i++ {
		cum += s.counts[i]
		if cum >= rank {
			var est float64
			switch {
			case i == 0:
				est = qhistUpper(0)
			case i == qhistNBuckets-1:
				est = s.max
			default:
				est = (qhistLower(i) + qhistUpper(i)) / 2
			}
			if est > s.max {
				est = s.max
			}
			return est
		}
	}
	return s.max
}

// P50, P90 and P99 are the conventional latency quantiles.
func (s *QSnapshot) P50() float64 { return s.Quantile(0.50) }
func (s *QSnapshot) P90() float64 { return s.Quantile(0.90) }
func (s *QSnapshot) P99() float64 { return s.Quantile(0.99) }

// QSummary is the exported (JSON) form of a quantile histogram, used by
// the expvar-style snapshot and the end-of-run summary table.
type QSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	// Exemplars are the per-bucket trace-linked observations, ordered by
	// bucket upper bound (omitted when none were recorded).
	Exemplars []BucketExemplar `json:"exemplars,omitempty"`
}

// BucketExemplar is one exported exemplar with its bucket upper bound.
type BucketExemplar struct {
	LE      float64 `json:"le"`
	Value   float64 `json:"value"`
	TraceID TraceID `json:"trace_id"`
}

// Summary condenses the snapshot into its exported form.
func (s *QSnapshot) Summary() QSummary {
	sum := QSummary{
		Count: s.count,
		Sum:   s.sum,
		Max:   s.Max(),
		P50:   s.P50(),
		P90:   s.P90(),
		P99:   s.P99(),
	}
	if len(s.exemplars) > 0 {
		idx := make([]int, 0, len(s.exemplars))
		for i := range s.exemplars {
			idx = append(idx, i)
		}
		sort.Ints(idx)
		for _, i := range idx {
			e := s.exemplars[i]
			sum.Exemplars = append(sum.Exemplars, BucketExemplar{
				LE:      qhistUpper(i),
				Value:   e.Value,
				TraceID: e.TraceID,
			})
		}
	}
	return sum
}

// QHistogram returns (creating if needed) the named quantile histogram.
func (r *Registry) QHistogram(name string) *QHistogram {
	return lookup(r, name, NewQHist)
}

// NewQHistogram returns the named quantile histogram in the Default
// registry.
func NewQHistogram(name string) *QHistogram { return Default.QHistogram(name) }

// QHistVec is a family of quantile histograms keyed by a label value
// (e.g. HTTP endpoint). Label lookup takes a read lock; hot paths should
// cache the *QHistogram.
type QHistVec struct {
	mu sync.RWMutex
	m  map[string]*QHistogram
}

// With returns (creating if needed) the histogram for a label value.
func (v *QHistVec) With(label string) *QHistogram {
	v.mu.RLock()
	h, ok := v.m[label]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.m[label]; ok {
		return h
	}
	h = NewQHist()
	v.m[label] = h
	return h
}

func (v *QHistVec) snapshot() map[string]QSummary {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]QSummary, len(v.m))
	for k, h := range v.m {
		out[k] = h.Snapshot().Summary()
	}
	return out
}

// snapshots is the exemplar-preserving form of snapshot, for the
// Prometheus exposition.
func (v *QHistVec) snapshots() map[string]*QSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]*QSnapshot, len(v.m))
	for k, h := range v.m {
		out[k] = h.Snapshot()
	}
	return out
}

// QHistVec returns (creating if needed) the named histogram family.
func (r *Registry) QHistVec(name string) *QHistVec {
	return lookup(r, name, func() *QHistVec { return &QHistVec{m: make(map[string]*QHistogram)} })
}

// NewQHistVec returns the named histogram family in the Default registry.
func NewQHistVec(name string) *QHistVec { return Default.QHistVec(name) }
