package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// install swaps in a tracer for the test and restores the previous one.
func install(t *testing.T, tr *Tracer) {
	t.Helper()
	prev := Install(tr)
	t.Cleanup(func() { Install(prev) })
}

func TestSpanTreeRoundTripsThroughJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(TracerOptions{Writer: &buf})
	install(t, tr)

	root := Start("phase:devtime").With("benchmark", "lenet")
	profile := root.Child("profile")
	op := profile.Child("profile-op").With("op", 3)
	op.End()
	profile.End()
	search := root.Child("search").With("iters", 400)
	search.End()
	root.End()

	records, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(records) != 4 {
		t.Fatalf("got %d records, want 4", len(records))
	}
	roots := BuildTree(records)
	if len(roots) != 1 || roots[0].Name != "phase:devtime" {
		t.Fatalf("bad roots: %+v", roots)
	}
	if got := roots[0].Attrs["benchmark"]; got != "lenet" {
		t.Fatalf("root attr = %v", got)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Name != "profile" || kids[1].Name != "search" {
		t.Fatalf("children out of order: %+v", kids)
	}
	if len(kids[0].Children) != 1 || kids[0].Children[0].Name != "profile-op" {
		t.Fatalf("nested child missing: %+v", kids[0].Children)
	}
	// JSON numbers decode as float64; attributes survive with their value.
	if got := kids[0].Children[0].Attrs["op"].(float64); got != 3 {
		t.Fatalf("op attr = %v", got)
	}
	for _, r := range records {
		if r.Dur < 0 || r.End < r.Start {
			t.Fatalf("negative duration: %+v", r)
		}
	}
	if !strings.Contains(Summarize(records), "  profile") {
		t.Fatalf("summary missing indented child:\n%s", Summarize(records))
	}
}

func TestNoopPathAllocatesZero(t *testing.T) {
	Install(nil)
	c := NewCounter("test.noop_counter")
	allocs := testing.AllocsPerRun(1000, func() {
		sp := Start("root")
		child := sp.Child("child")
		child.End()
		sp.End()
		c.Inc()
		_ = sp.Duration()
		_ = sp.AcquireDetail()
	})
	if allocs != 0 {
		t.Fatalf("no-op path allocates %v per op, want 0", allocs)
	}
}

func TestConcurrentSpansAndMetrics(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(TracerOptions{Writer: &buf, KeepInMemory: 100000})
	install(t, tr)
	reg := NewRegistry()
	ctr := reg.Counter("c")
	g := reg.Gauge("g")
	h := reg.Histogram("h", 1, 2, 10)
	vec := reg.CounterVec("v")

	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sp := Start("worker").With("w", w)
				c := sp.Child("step")
				ctr.Inc()
				g.Set(float64(i))
				h.Observe(float64(i % 100))
				vec.With(fmt.Sprintf("w%d", w%2)).Inc()
				c.End()
				sp.End()
				_ = reg.Snapshot()
			}
		}(w)
	}
	wg.Wait()

	if got := ctr.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	records, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(records) != 2*workers*iters {
		t.Fatalf("got %d spans, want %d", len(records), 2*workers*iters)
	}
	snap := reg.Snapshot()
	if snap["c"].(int64) != workers*iters {
		t.Fatalf("snapshot counter = %v", snap["c"])
	}
	byLabel := snap["v"].(map[string]int64)
	if byLabel["w0"]+byLabel["w1"] != workers*iters {
		t.Fatalf("vec snapshot = %v", byLabel)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram(1, 10, 4) // bounds 1, 10, 100, 1000
	cases := []struct {
		v    float64
		want int // bucket index, -1 = overflow
	}{
		{0, 0}, {-5, 0}, {1, 0}, // ≤ first bound
		{1.0001, 1}, {10, 1}, // boundary is inclusive
		{10.5, 2}, {100, 2},
		{1000, 3},
		{1000.1, -1}, {1e9, -1},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	counts := map[int]int64{}
	for i := 0; i < 4; i++ {
		counts[i] = h.Bucket(i)
	}
	counts[-1] = h.Overflow()
	want := map[int]int64{0: 3, 1: 2, 2: 2, 3: 1, -1: 2}
	for k, n := range want {
		if counts[k] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", k, counts[k], n, counts)
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(cases))
	}
	wantBounds := []float64{1, 10, 100, 1000}
	for i, b := range h.Bounds() {
		if b != wantBounds[i] {
			t.Fatalf("bounds = %v, want %v", h.Bounds(), wantBounds)
		}
	}
}

func TestGraphDetailBudget(t *testing.T) {
	tr := NewTracer(TracerOptions{GraphExecDetail: 2})
	sp := tr.Start("root")
	if !sp.AcquireDetail() || !sp.AcquireDetail() {
		t.Fatal("first two acquisitions should succeed")
	}
	if sp.AcquireDetail() {
		t.Fatal("budget should be exhausted")
	}
	sp.End()
}

func TestTracerRetentionBound(t *testing.T) {
	tr := NewTracer(TracerOptions{KeepInMemory: 3})
	for i := 0; i < 10; i++ {
		tr.Start("s").End()
	}
	if got := len(tr.Records()); got != 3 {
		t.Fatalf("retained %d, want 3", got)
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
}

func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, Normal)
	l.Infof("info %d\n", 1)
	l.Verbosef("verbose\n")
	l.Errorf("err\n")
	if got := buf.String(); got != "info 1\nerr\n" {
		t.Fatalf("normal output = %q", got)
	}
	buf.Reset()
	l.SetLevel(Quiet)
	l.Infof("info\n")
	l.Errorf("err\n")
	if got := buf.String(); got != "err\n" {
		t.Fatalf("quiet output = %q", got)
	}
	buf.Reset()
	l.SetLevel(Verbose)
	l.Verbosef("verbose\n")
	if got := buf.String(); got != "verbose\n" {
		t.Fatalf("verbose output = %q", got)
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("kernels").Add(42)
	tr := NewTracer(TracerOptions{})
	tr.Start("phase:devtime").End()
	srv, err := ServeMetrics("127.0.0.1:0", reg, tr)
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(get("/metrics")), &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if snap["kernels"].(float64) != 42 {
		t.Fatalf("metrics = %v", snap)
	}
	if !strings.Contains(get("/trace"), "phase:devtime") {
		t.Fatal("trace endpoint missing span")
	}
	if !strings.Contains(get("/debug/pprof/"), "profile") {
		t.Fatal("pprof index not served")
	}
}
