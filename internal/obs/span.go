package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// SpanSink receives every completed span record. Sinks run outside the
// tracer's lock, after the record is retained/exported; they must be
// goroutine-safe. The tail sampler is a sink.
type SpanSink interface {
	OnSpanEnd(SpanRecord)
}

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Writer, when non-nil, receives one JSON line per completed span
	// (the JSONL trace export). The tracer serializes writes.
	Writer io.Writer
	// KeepInMemory bounds the number of completed spans retained for
	// Records/Summarize (default 4096; 0 takes the default, negative
	// disables retention). Retention is a ring: when full, the oldest
	// record is overwritten, so a long run keeps the most recent spans.
	KeepInMemory int
	// GraphExecDetail is how many graph executions record per-node child
	// spans before the tracer degrades to one span per execution
	// (default 16). Tuning runs execute the graph thousands of times;
	// the budget keeps traces readable and bounded.
	GraphExecDetail int
	// IDSeed seeds trace/span ID generation (splitmix64 sequence). Zero
	// derives a seed from the process start time; fix it for
	// reproducible IDs in tests and smoke runs.
	IDSeed int64
	// Sinks receive every completed span record (e.g. a TailSampler).
	Sinks []SpanSink
}

// Tracer records hierarchical spans. All methods are goroutine-safe.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	records []SpanRecord
	head    int // ring start: records[head] is the oldest retained span
	keep    int
	ids     *IDSource
	sinks   []SpanSink

	nextID       atomic.Int64
	detailBudget atomic.Int64
	started      atomic.Int64
	dropped      atomic.Int64
	epoch        int64
	writeErr     error
}

// NewTracer builds a tracer. A zero TracerOptions gives an in-memory-only
// tracer suitable for tests and CLI tree summaries.
func NewTracer(o TracerOptions) *Tracer {
	if o.KeepInMemory == 0 {
		o.KeepInMemory = 4096
	}
	if o.GraphExecDetail == 0 {
		o.GraphExecDetail = 16
	}
	if o.IDSeed == 0 {
		o.IDSeed = clockBase.UnixNano()
	}
	t := &Tracer{
		w:     o.Writer,
		keep:  o.KeepInMemory,
		ids:   NewIDSource(o.IDSeed),
		sinks: o.Sinks,
		epoch: Now(),
	}
	t.detailBudget.Store(int64(o.GraphExecDetail))
	return t
}

// Start opens a root span (fresh trace ID) on this tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(name, 0, TraceID{}, SpanID{})
}

// newSpan is the single span constructor: a zero trace ID mints a fresh
// trace (root span); a non-zero one continues it with parentSID as the
// parent span (local child or remote continuation).
func (t *Tracer) newSpan(name string, parent int64, trace TraceID, parentSID SpanID) *Span {
	t.started.Add(1)
	if trace.IsZero() {
		trace = t.ids.TraceID()
	}
	return &Span{
		tr:     t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  Now() - t.epoch,
		trace:  trace,
		sid:    t.ids.SpanID(),
		psid:   parentSID,
	}
}

// AcquireDetail consumes one unit of the per-tracer graph-detail budget,
// reporting whether fine-grained (per-node) children should be recorded.
func (t *Tracer) AcquireDetail() bool {
	if t == nil {
		return false
	}
	return t.detailBudget.Add(-1) >= 0
}

// Records returns a copy of the retained completed spans, oldest first.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.records))
	n := copy(out, t.records[t.head:])
	copy(out[n:], t.records[:t.head])
	return out
}

// Dropped returns how many completed spans have been overwritten because
// the in-memory retention ring was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Err returns the first JSONL write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.writeErr
}

func (t *Tracer) finish(rec SpanRecord) {
	t.mu.Lock()
	if t.keep > 0 {
		if len(t.records) < t.keep {
			t.records = append(t.records, rec)
		} else {
			// Ring: overwrite the oldest so a long-lived server retains
			// the most recent spans, not the first few thousand from boot.
			t.records[t.head] = rec
			t.head = (t.head + 1) % t.keep
			t.dropped.Add(1)
		}
	}
	if t.w != nil {
		line, err := json.Marshal(rec)
		if err == nil {
			line = append(line, '\n')
			_, err = t.w.Write(line)
		}
		if err != nil && t.writeErr == nil {
			t.writeErr = err
		}
	}
	t.mu.Unlock()
	// Sinks and the always-on flight recorder run outside the tracer
	// lock: a sink may take its own locks or call back into obs.
	// The flight ring is one process-wide timeline whose events are
	// stamped with Now(), so the span's tracer-relative clock is
	// normalized onto the process clock before recording; sinks keep
	// the raw record (self-consistent within one tracer).
	frec := rec
	frec.Start += t.epoch
	frec.End += t.epoch
	defaultFlight.OnSpanEnd(frec)
	for _, s := range t.sinks {
		s.OnSpanEnd(rec)
	}
}

// Span is one timed, attributed, nestable region of work. A nil *Span is
// the valid no-op span; every method tolerates it.
type Span struct {
	tr     *Tracer
	id     int64
	parent int64
	name   string
	start  int64
	trace  TraceID
	sid    SpanID
	psid   SpanID
	attrs  map[string]any
	links  []TraceID
	mu     sync.Mutex
	ended  bool
	dur    int64
}

// Child opens a sub-span sharing s's trace ID. On a nil span it returns
// nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id, s.trace, s.sid)
}

// With attaches an attribute and returns the span for chaining. No-op on
// nil spans.
func (s *Span) With(key string, val any) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = val
	s.mu.Unlock()
	return s
}

// Link attaches another trace's ID to this span (OTel-style span link).
// A coalesced batch span links every member request's trace, tying the
// shared execution back to each caller. No-op on nil spans or zero IDs.
func (s *Span) Link(tid TraceID) *Span {
	if s == nil || tid.IsZero() {
		return s
	}
	s.mu.Lock()
	s.links = append(s.links, tid)
	s.mu.Unlock()
	return s
}

// Context returns the span's propagable identity (zero on nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.trace, SpanID: s.sid}
}

// TraceID returns the span's trace ID (zero on nil spans).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// AcquireDetail consumes one unit of the tracer's graph-detail budget
// (false on nil spans, so callers can gate per-node children on it).
func (s *Span) AcquireDetail() bool {
	if s == nil {
		return false
	}
	return s.tr.AcquireDetail()
}

// End closes the span, exporting it to the tracer's sinks. Ending twice
// is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	end := Now() - s.tr.epoch
	s.dur = end - s.start
	var attrs map[string]any
	if len(s.attrs) > 0 {
		attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			attrs[k] = v
		}
	}
	var links []TraceID
	if len(s.links) > 0 {
		links = make([]TraceID, len(s.links))
		copy(links, s.links)
	}
	s.mu.Unlock()
	s.tr.finish(SpanRecord{
		ID:           s.id,
		Parent:       s.parent,
		Name:         s.name,
		Start:        s.start,
		End:          end,
		Dur:          s.dur,
		TraceID:      s.trace,
		SpanID:       s.sid,
		ParentSpanID: s.psid,
		Links:        links,
		Attrs:        attrs,
	})
}

// Duration returns the span's elapsed nanoseconds: the final duration
// after End, or the live elapsed time before it. Zero on nil spans.
func (s *Span) Duration() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return Now() - s.tr.epoch - s.start
}

// Name returns the span name ("" on nil spans).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SpanRecord is the exported form of a completed span. Start/End/Dur are
// nanoseconds relative to the tracer's creation. ID/Parent are the
// process-local int64 tree used by BuildTree; TraceID/SpanID/
// ParentSpanID are the propagable identity (hex in JSON) used to stitch
// cross-process traces.
type SpanRecord struct {
	ID           int64          `json:"id"`
	Parent       int64          `json:"parent,omitempty"`
	Name         string         `json:"name"`
	Start        int64          `json:"start_ns"`
	End          int64          `json:"end_ns"`
	Dur          int64          `json:"dur_ns"`
	TraceID      TraceID        `json:"trace_id"`
	SpanID       SpanID         `json:"span_id"`
	ParentSpanID SpanID         `json:"parent_span_id"`
	Links        []TraceID      `json:"links,omitempty"`
	Attrs        map[string]any `json:"attrs,omitempty"`
}

func (r SpanRecord) String() string {
	return fmt.Sprintf("%s (%.3fms)", r.Name, float64(r.Dur)/1e6)
}
