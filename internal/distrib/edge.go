package distrib

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/tensor"
)

// Edge is one device of the fleet: it owns the full program binary and
// its local calibration inputs (a shard of the global set), plus a device
// model for performance/energy measurement. An Edge drives one protocol
// run from a single goroutine.
type Edge struct {
	ID      int
	BaseURL string
	Program core.Program // shardable program (same binary as the server's)
	Device  *device.Device
	// Client overrides the built-in HTTP client; it should carry its own
	// timeout. When nil a client with a per-request deadline is built.
	Client *http.Client
	// Transport, when Client is nil, is installed in the built-in client —
	// the hook the fault-injection harness uses.
	Transport http.RoundTripper
	// PollInterval paces the assignment/curve polling loops (default 20ms).
	PollInterval time.Duration
	Seed         int64
	// RequestTimeout bounds every HTTP request (default 10s).
	RequestTimeout time.Duration
	// MaxRetries is how many times a failed request is retried with
	// exponential backoff before the run aborts (default 4).
	MaxRetries int
	// RetryBase is the first backoff delay; it doubles per retry with
	// seeded jitter, capped at 2s (default 50ms).
	RetryBase time.Duration
	// Failpoints injects protocol-step crashes for chaos testing.
	Failpoints Failpoints
	// Tracer, when set, wraps the run in an edge:run span with one child
	// per HTTP request, injects W3C traceparent headers so the
	// coordinator can record its side of each call, and uploads the
	// run's completed spans with the end-of-run telemetry. Nil disables
	// tracing at zero cost.
	Tracer *obs.Tracer

	httpc   *http.Client
	rng     *tensor.RNG // backoff jitter stream (never touches tuning RNGs)
	attempt int         // logical-operation idempotency token counter
	span    *obs.Span   // run-level root span (nil when Tracer is nil)

	// Client-side telemetry, reported best-effort to POST /v1/telemetry
	// at the end of Run. An Edge runs from a single goroutine, so the
	// counters are plain fields; the latency histogram is mergeable so
	// the coordinator can fold the fleet into one distribution.
	telRequests int64
	telRetries  int64
	telTimeouts int64
	telLat      *obs.QHistogram
}

// NewEdge builds an edge whose robustness knobs come from the install
// options (the same knobs the coordinator was built with).
func NewEdge(id int, baseURL string, p core.Program, dev *device.Device, seed int64, opts core.InstallOptions) *Edge {
	return &Edge{
		ID:             id,
		BaseURL:        baseURL,
		Program:        p,
		Device:         dev,
		Seed:           seed,
		RequestTimeout: opts.RequestTimeout,
		MaxRetries:     opts.MaxRetries,
		RetryBase:      opts.RetryBase,
	}
}

func (e *Edge) client() *http.Client {
	if e.Client != nil {
		return e.Client
	}
	if e.httpc == nil {
		// Client-level timeout is a backstop; the per-request context
		// deadline in doOnce is the operative bound.
		e.httpc = &http.Client{
			Timeout:   e.requestTimeout() + time.Second,
			Transport: e.Transport,
		}
	}
	return e.httpc
}

func (e *Edge) poll() time.Duration {
	if e.PollInterval > 0 {
		return e.PollInterval
	}
	return 20 * time.Millisecond
}

func (e *Edge) requestTimeout() time.Duration {
	if e.RequestTimeout > 0 {
		return e.RequestTimeout
	}
	return 10 * time.Second
}

func (e *Edge) maxRetries() int {
	if e.MaxRetries > 0 {
		return e.MaxRetries
	}
	return 4
}

func (e *Edge) retryBase() time.Duration {
	if e.RetryBase > 0 {
		return e.RetryBase
	}
	return 50 * time.Millisecond
}

func (e *Edge) nextAttempt() int {
	e.attempt++
	return e.attempt
}

// Run executes the full edge-side protocol and returns the final curve.
// The context bounds the whole run, including both poll loops; cancel it
// or set a deadline to guarantee termination when the fleet cannot
// converge.
func (e *Edge) Run(ctx context.Context) (*pareto.Curve, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Jitter stream for backoff only: a separate seed space keeps retry
	// timing from perturbing the deterministic tuning streams.
	e.rng = tensor.NewRNG(e.Seed + 9001 + int64(e.ID)*7919)
	if e.telLat == nil {
		e.telLat = obs.NewQHist()
	}
	if e.Tracer != nil {
		e.span = e.Tracer.Start("edge:run").With("edge", e.ID)
		defer e.span.End()
	}

	// Step 1: register, get shard assignment.
	var reg registerResp
	if err := e.post(ctx, "/v1/register", registerReq{EdgeID: e.ID, Attempt: e.nextAttempt()}, &reg); err != nil {
		return nil, err
	}
	local := e.Program
	if sh, ok := e.Program.(core.Sharder); ok && reg.Hi > reg.Lo {
		sp, err := sh.Shard(reg.Lo, reg.Hi)
		if err != nil {
			return nil, fmt.Errorf("distrib: edge %d shard: %w", e.ID, err)
		}
		local = sp
	}

	// Step 2: collect hardware-knob profiles on the shard and upload.
	if e.Failpoints.CrashBeforeProfiles {
		return nil, fmt.Errorf("edge %d: %w before profile upload", e.ID, ErrInjectedCrash)
	}
	if err := e.collectAndUpload(ctx, e.ID, local, reg.AllowFP16); err != nil {
		return nil, err
	}

	// Step 3: poll for the validation assignment — picking up orphaned
	// profile shards of dead edges on the way — then validate and upload
	// the local Pareto set.
	var asn assignmentsResp
	for {
		// Reset before decoding: omitted JSON fields (like a reprofile
		// offer from a previous poll) must not survive into this iteration.
		asn = assignmentsResp{}
		if err := e.get(ctx, fmt.Sprintf("/v1/assignments?edge=%d", e.ID), &asn); err != nil {
			return nil, err
		}
		if asn.Reprofile != nil {
			shardProg, err := e.shardProgram(asn.Reprofile.Lo, asn.Reprofile.Hi)
			if err != nil {
				return nil, err
			}
			if err := e.collectAndUpload(ctx, asn.Reprofile.Shard, shardProg, reg.AllowFP16); err != nil {
				return nil, err
			}
			continue
		}
		if asn.Ready {
			break
		}
		if err := sleepCtx(ctx, e.poll()); err != nil {
			return nil, err
		}
	}
	pts := e.validateConfigs(e.ID, asn.Configs, asn.QoSMin, asn.Obj, local)
	if e.Failpoints.CrashBeforeValidated {
		return nil, fmt.Errorf("edge %d: %w before validated upload", e.ID, ErrInjectedCrash)
	}
	slice := e.ID
	if err := e.post(ctx, "/v1/validated", validatedReq{EdgeID: e.ID, Slice: &slice, Attempt: e.nextAttempt(), Points: pts}, nil); err != nil {
		return nil, err
	}

	// Step 4: poll for the final curve, revalidating orphaned slices of
	// dead edges on the way.
	for {
		var cr curveResp
		if err := e.get(ctx, fmt.Sprintf("/v1/curve?edge=%d", e.ID), &cr); err != nil {
			return nil, err
		}
		if cr.Revalidate != nil {
			o := cr.Revalidate
			pts := e.validateConfigs(o.Slice, o.Configs, o.QoSMin, o.Obj, local)
			s := o.Slice
			if err := e.post(ctx, "/v1/validated", validatedReq{EdgeID: e.ID, Slice: &s, Attempt: e.nextAttempt(), Points: pts}, nil); err != nil {
				return nil, err
			}
			continue
		}
		if cr.Ready {
			// End the run's root span before the telemetry upload: Records()
			// only holds completed spans, and shipping children whose
			// ParentSpanID references a never-uploaded root would leave the
			// coordinator's assembled trace headless. End is idempotent, so
			// the deferred End (which covers every error path) is a no-op.
			e.span.End()
			e.reportTelemetry(ctx)
			return pareto.UnmarshalCurve(cr.Curve)
		}
		if err := sleepCtx(ctx, e.poll()); err != nil {
			return nil, err
		}
	}
}

// reportTelemetry uploads the edge's client-side telemetry — request,
// retry and timeout counts plus the full latency snapshot — to the
// coordinator. Best-effort: the payload is snapshotted before the
// request (so the upload does not count itself), and a failed upload is
// ignored — telemetry loss must never fail a run that already has its
// curve.
func (e *Edge) reportTelemetry(ctx context.Context) {
	req := edgeTelemetryReq{
		EdgeID:   e.ID,
		Requests: e.telRequests,
		Retries:  e.telRetries,
		Timeouts: e.telTimeouts,
		Latency:  e.telLat.Snapshot(),
	}
	if e.span != nil {
		// Ship the run's completed request spans so GET /v1/stats can
		// assemble the cross-process trace (bounded: telemetry must stay a
		// small best-effort payload).
		tid := e.span.TraceID()
		for _, rec := range e.Tracer.Records() {
			if rec.TraceID != tid {
				continue
			}
			req.Spans = append(req.Spans, rec)
			if len(req.Spans) >= maxUploadSpans {
				break
			}
		}
	}
	_ = e.post(ctx, "/v1/telemetry", req, nil)
}

// maxUploadSpans bounds the span records attached to one telemetry
// upload.
const maxUploadSpans = 256

// shardProgram shards the edge's full program for an arbitrary
// calibration range (used when taking over a dead edge's shard).
func (e *Edge) shardProgram(lo, hi int) (core.Program, error) {
	if sh, ok := e.Program.(core.Sharder); ok && hi > lo {
		sp, err := sh.Shard(lo, hi)
		if err != nil {
			return nil, fmt.Errorf("distrib: edge %d shard [%d,%d): %w", e.ID, lo, hi, err)
		}
		return sp, nil
	}
	return e.Program, nil
}

// collectAndUpload collects hardware-knob profiles for one shard and
// uploads them. The RNG is seeded by the shard number — not the edge's
// own ID — so a survivor reproduces exactly the profiles the shard's
// original owner would have collected (fleets share the base seed).
func (e *Edge) collectAndUpload(ctx context.Context, shard int, local core.Program, allowFP16 bool) error {
	profs := core.CollectProfiles(local, nil, func(op int) []approx.KnobID {
		return core.HardwareKnobsFor(local, op, allowFP16)
	}, tensor.NewRNG(e.Seed+int64(shard)))
	payload, err := profs.Marshal()
	if err != nil {
		return err
	}
	s := shard
	return e.post(ctx, "/v1/profiles", profilesReq{EdgeID: e.ID, Shard: &s, Attempt: e.nextAttempt(), Profiles: payload}, nil)
}

// validateConfigs measures real QoS (on the edge's local calibration
// shard) and device perf/energy for one shortlist slice. The RNG is
// seeded by the slice number so the zero-fault draw sequence matches the
// fault-oblivious protocol exactly; skipped (device-unsupported) configs
// do not advance the stream.
func (e *Edge) validateConfigs(slice int, configs []pareto.Point, qosMin float64, obj core.Objective, local core.Program) []pareto.Point {
	rng := tensor.NewRNG(e.Seed + 1000 + int64(slice))
	var pts []pareto.Point
	for i, pt := range configs {
		if e.Device != nil && !core.DeviceSupports(e.Device, pt.Config) {
			continue
		}
		out := local.Run(pt.Config, core.Calib, rng.Split(int64(i)))
		realQoS := local.Score(core.Calib, out)
		if realQoS <= qosMin {
			continue
		}
		perf := pt.Perf
		if e.Device != nil {
			perf = core.MeasurePerf(e.Program, e.Device, obj, pt.Config)
		}
		pts = append(pts, pareto.Point{QoS: realQoS, Perf: perf, Config: pt.Config})
	}
	return pareto.Set(pts)
}

// retryableError marks transport-level failures and 5xx responses, which
// the idempotent wire protocol makes safe to retry.
type retryableError struct{ err error }

func (r *retryableError) Error() string { return r.err.Error() }
func (r *retryableError) Unwrap() error { return r.err }

func (e *Edge) post(ctx context.Context, path string, req any, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return e.do(ctx, http.MethodPost, path, body, resp)
}

func (e *Edge) get(ctx context.Context, path string, resp any) error {
	return e.do(ctx, http.MethodGet, path, nil, resp)
}

// do issues one request with bounded retries: transport errors and 5xx
// responses back off exponentially (seeded jitter) and retry; 4xx and
// decode errors are permanent.
func (e *Edge) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for try := 0; ; try++ {
		if try > 0 {
			mClientRetries.Inc()
			e.telRetries++
			if err := sleepCtx(ctx, e.backoff(try)); err != nil {
				return fmt.Errorf("distrib: %s %s: %w (last error: %v)", method, path, err, lastErr)
			}
		}
		err := e.doOnce(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		var re *retryableError
		if !errors.As(err, &re) {
			return err
		}
		lastErr = err
		if ctx.Err() != nil {
			return fmt.Errorf("distrib: %s %s: %w (last error: %v)", method, path, ctx.Err(), lastErr)
		}
		if try >= e.maxRetries() {
			return fmt.Errorf("distrib: %s %s: %d retries exhausted: %w", method, path, e.maxRetries(), lastErr)
		}
	}
}

func (e *Edge) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	rctx, cancel := context.WithTimeout(ctx, e.requestTimeout())
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, e.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	var dsp *obs.Span
	if e.span != nil {
		// One child span per HTTP attempt (retries get their own), with
		// the identity injected so the coordinator's middleware can record
		// the server side of the same trace.
		dsp = e.span.Child("edge:request").With("method", method).With("path", path)
		obs.Inject(req.Header, dsp)
	}
	e.telRequests++
	start := time.Now()
	r, err := e.client().Do(req)
	if e.telLat != nil {
		e.telLat.Observe(time.Since(start).Seconds())
	}
	if err != nil {
		dsp.With("error", true)
	}
	dsp.End()
	if err != nil {
		if isTimeout(err) {
			mClientTimeouts.Inc()
			e.telTimeouts++
		}
		return &retryableError{fmt.Errorf("distrib: %s %s: %w", method, path, err)}
	}
	defer r.Body.Close()
	if r.StatusCode >= 500 {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 1024))
		return &retryableError{fmt.Errorf("distrib: %s %s: %s: %s", method, path, r.Status, msg)}
	}
	if r.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 1024))
		return fmt.Errorf("distrib: %s %s: %s: %s", method, path, r.Status, msg)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, r.Body)
		return nil
	}
	return json.NewDecoder(r.Body).Decode(out)
}

// backoff returns the delay before retry number try (1-based): the base
// doubles per retry with multiplicative jitter in [1,2), capped at 2s.
func (e *Edge) backoff(try int) time.Duration {
	d := e.retryBase() << (try - 1)
	if max := 2 * time.Second; d > max {
		d = max
	}
	return d + time.Duration(e.rng.Float64()*float64(d))
}

// isTimeout reports whether a transport error is a deadline/timeout.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// sleepCtx sleeps for d or until the context is done, returning the
// context's error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
