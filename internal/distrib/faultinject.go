package distrib

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/tensor"
)

// ErrInjectedCrash marks an edge abort injected through Failpoints. Chaos
// tests match it with errors.Is to tell simulated crashes from real
// protocol failures.
var ErrInjectedCrash = errors.New("distrib: injected crash")

// Failpoints injects deterministic edge crashes at protocol steps —
// the process-death half of the chaos harness (the network half is
// FaultyTransport). A crashed edge's Run returns ErrInjectedCrash and
// never uploads, so its lease expires and the coordinator reassigns its
// work to the survivors.
type Failpoints struct {
	// CrashBeforeProfiles aborts the run after registration, before the
	// profile upload.
	CrashBeforeProfiles bool
	// CrashBeforeValidated aborts the run after validation compute,
	// before the validated upload.
	CrashBeforeValidated bool
}

// FaultPlan is a seeded schedule of network faults. All probabilities are
// per-request in [0,1]; zero values inject nothing.
type FaultPlan struct {
	// Seed drives the fault schedule; the same plan replays bit-identically.
	Seed int64
	// DropProb: the request never reaches the server and the client sees
	// a transport error.
	DropProb float64
	// Err500Prob: the server processes the request, but the response is
	// replaced with a synthetic 500 — the client must retry an operation
	// whose side effect already applied (exercises idempotency).
	Err500Prob float64
	// DupProb: the request is delivered twice back-to-back (exercises
	// duplicate suppression).
	DupProb float64
	// MaxDelay: each delivery is delayed uniformly in [0, MaxDelay).
	MaxDelay time.Duration
}

// FaultyTransport is an http.RoundTripper that injects drops, delays,
// duplicates, and synthetic 500s per a seeded FaultPlan. It is safe for
// concurrent use; the fault schedule is drawn under a lock so a given
// (plan, request order) replays deterministically per goroutine
// interleaving.
type FaultyTransport struct {
	plan FaultPlan
	base http.RoundTripper

	mu  sync.Mutex
	rng *tensor.RNG
}

// NewFaultyTransport wraps base (nil means http.DefaultTransport) with a
// seeded fault schedule.
func NewFaultyTransport(plan FaultPlan, base http.RoundTripper) *FaultyTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &FaultyTransport{plan: plan, base: base, rng: tensor.NewRNG(plan.Seed)}
}

// faultDecision is one request's drawn schedule.
type faultDecision struct {
	drop   bool
	err500 bool
	dup    bool
	delay  time.Duration
}

func (t *FaultyTransport) decide() faultDecision {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d faultDecision
	if t.plan.DropProb > 0 && t.rng.Float64() < t.plan.DropProb {
		d.drop = true
	}
	if t.plan.Err500Prob > 0 && t.rng.Float64() < t.plan.Err500Prob {
		d.err500 = true
	}
	if t.plan.DupProb > 0 && t.rng.Float64() < t.plan.DupProb {
		d.dup = true
	}
	if t.plan.MaxDelay > 0 {
		d.delay = time.Duration(t.rng.Float64() * float64(t.plan.MaxDelay))
	}
	return d
}

// RoundTrip implements http.RoundTripper.
func (t *FaultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.decide()
	var body []byte
	if req.Body != nil {
		b, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		body = b
	}
	if d.delay > 0 {
		timer := time.NewTimer(d.delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if d.drop {
		mFaultsInjected.Inc()
		return nil, fmt.Errorf("faultinject: dropped %s %s", req.Method, req.URL.Path)
	}
	if d.dup {
		mFaultsInjected.Inc()
		// First delivery: the server applies it, the response is discarded.
		if resp, err := t.base.RoundTrip(t.replay(req, body)); err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	resp, err := t.base.RoundTrip(t.replay(req, body))
	if err != nil {
		return resp, err
	}
	if d.err500 {
		mFaultsInjected.Inc()
		// The server processed the request; the client only sees a 500.
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return &http.Response{
			Status:     "500 Internal Server Error (injected)",
			StatusCode: http.StatusInternalServerError,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader("faultinject: response replaced with 500")),
			Request:    req,
		}, nil
	}
	return resp, nil
}

// replay clones the request with a fresh body reader so it can be
// delivered more than once.
func (t *FaultyTransport) replay(req *http.Request, body []byte) *http.Request {
	clone := req.Clone(req.Context())
	if body != nil {
		clone.Body = io.NopCloser(bytes.NewReader(body))
		clone.ContentLength = int64(len(body))
		clone.GetBody = func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(body)), nil
		}
	}
	return clone
}
