package distrib

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
)

// TestCrossProcessTracing runs a small fleet over loopback HTTP with
// tracing enabled on every edge and asserts the cross-process contract:
// the trace an edge started is assemblable from GET /v1/stats, with both
// the edge's client-side spans (uploaded with telemetry) and the
// coordinator's server-side coord:<path> records under the same trace
// ID, parented by traceparent propagation.
func TestCrossProcessTracing(t *testing.T) {
	gp, base := buildProgram(t)
	profs := devProfiles(t, gp)
	const nEdge = 2
	opts := core.InstallOptions{
		Options: core.Options{
			QoSMin: base - 10, NCalibrate: 5, MaxIters: 150, StallLimit: 80,
			MaxConfigs: 12, Policy: core.KnobPolicy{AllowFP16: true}, Seed: 3,
		},
		Device:    device.NewTX2GPU(),
		Objective: core.MinimizeEnergy,
		NEdge:     nEdge,
	}
	coord, err := NewCoordinator(gp, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	tracers := make([]*obs.Tracer, nEdge)
	var wg sync.WaitGroup
	errs := make([]error, nEdge)
	for i := 0; i < nEdge; i++ {
		tracers[i] = obs.NewTracer(obs.TracerOptions{KeepInMemory: 1024, IDSeed: int64(100 + i)})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := &Edge{
				ID: i, BaseURL: srv.URL, Program: gp,
				Device: device.NewTX2GPU(), Seed: 11,
				Tracer: tracers[i],
			}
			_, errs[i] = e.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("edge %d: %v", i, err)
		}
	}

	// Every edge's run produced one edge:run root; its trace ID is the
	// key the fleet stats must carry.
	runTID := make([]string, nEdge)
	for i, tr := range tracers {
		for _, rec := range tr.Records() {
			if rec.Name == "edge:run" {
				runTID[i] = rec.TraceID.String()
			}
		}
		if runTID[i] == "" {
			t.Fatalf("edge %d recorded no edge:run span", i)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fs FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	if len(fs.Traces) == 0 {
		t.Fatal("fleet stats carry no traces")
	}
	for i := 0; i < nEdge; i++ {
		spans, ok := fs.Traces[runTID[i]]
		if !ok {
			t.Errorf("edge %d trace %s missing from fleet stats", i, runTID[i])
			continue
		}
		var edgeSide, coordSide int
		parented, hasRoot := false, false
		bySpanID := make(map[obs.SpanID]obs.SpanRecord, len(spans))
		for _, rec := range spans {
			if strings.HasPrefix(rec.Name, "edge:") {
				edgeSide++
				bySpanID[rec.SpanID] = rec
			}
			if rec.Name == "edge:run" {
				hasRoot = true
			}
		}
		for _, rec := range spans {
			if strings.HasPrefix(rec.Name, "coord:") {
				coordSide++
				// The coordinator's parent must be the edge's injected
				// request span — that is what makes the trace one tree
				// rather than two flat lists.
				if parent, ok := bySpanID[rec.ParentSpanID]; ok && parent.Name == "edge:request" {
					parented = true
				}
			}
		}
		if edgeSide == 0 || coordSide == 0 {
			t.Errorf("edge %d trace %s: %d edge-side and %d coord-side spans, want both > 0",
				i, runTID[i], edgeSide, coordSide)
		}
		if !parented {
			t.Errorf("edge %d trace %s: no coord span parented by an edge:request span", i, runTID[i])
		}
		// The edge:run root itself must reach the coordinator: the edge
		// ends it before the final telemetry upload, so the assembled
		// trace has a head, not just children of a phantom parent.
		if !hasRoot {
			t.Errorf("edge %d trace %s: assembled trace is missing the edge:run root span", i, runTID[i])
		}
	}
}

// TestEdgeTracingDisabledNoHeaders pins the opt-in contract: with no
// tracer configured, edges send no traceparent header and the
// coordinator records no traces.
func TestEdgeTracingDisabledNoHeaders(t *testing.T) {
	gp, base := buildProgram(t)
	profs := devProfiles(t, gp)
	opts := core.InstallOptions{
		Options: core.Options{
			QoSMin: base - 10, NCalibrate: 5, MaxIters: 150, StallLimit: 80,
			MaxConfigs: 12, Policy: core.KnobPolicy{AllowFP16: true}, Seed: 3,
		},
		Device:    device.NewTX2GPU(),
		Objective: core.MinimizeEnergy,
		NEdge:     1,
	}
	coord, err := NewCoordinator(gp, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	e := &Edge{ID: 0, BaseURL: srv.URL, Program: gp, Device: device.NewTX2GPU(), Seed: 11}
	if _, err := e.Run(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fs FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		t.Fatal(err)
	}
	if len(fs.Traces) != 0 {
		t.Errorf("untraced run produced %d traces in fleet stats", len(fs.Traces))
	}
}
