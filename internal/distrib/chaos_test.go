package distrib

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pareto"
	"repro/internal/predictor"
)

// fleetSpec configures one chaos fleet run.
type fleetSpec struct {
	nEdge    int
	leaseTTL time.Duration
	deadline time.Duration
	// plan, when non-nil, wraps every edge's transport in a seeded
	// FaultyTransport (each edge offset by its ID for an independent but
	// reproducible schedule).
	plan *FaultPlan
	// failpoints maps edge ID → injected crash points.
	failpoints map[int]Failpoints
	// absent marks edges that never start at all (no-show: not even a
	// registration).
	absent map[int]bool
}

// fleetResult is the outcome of one run: per-edge curve bytes (nil for
// edges that did not finish), per-edge errors, and the coordinator's own
// marshaled final curve.
type fleetResult struct {
	curves     [][]byte
	errs       []error
	coordCurve []byte
	coord      *Coordinator
}

// chaosOptions is the shared protocol configuration of every chaos run —
// identical to TestFullProtocolOverHTTP so the zero-fault run reproduces
// the fault-oblivious protocol's exact output.
func chaosOptions(base float64, spec fleetSpec) core.InstallOptions {
	return core.InstallOptions{
		Options: core.Options{
			QoSMin: base - 10, NCalibrate: 5, MaxIters: 150, StallLimit: 80,
			MaxConfigs: 12, Policy: core.KnobPolicy{AllowFP16: true}, Seed: 3,
			Model: predictor.Pi2,
		},
		Device:         device.NewTX2GPU(),
		Objective:      core.MinimizeEnergy,
		NEdge:          spec.nEdge,
		LeaseTTL:       spec.leaseTTL,
		RequestTimeout: 5 * time.Second,
		MaxRetries:     8,
		RetryBase:      2 * time.Millisecond,
	}
}

// runFleet executes one full protocol run under the given fault schedule.
func runFleet(t *testing.T, gp *core.GraphProgram, profs *predictor.Profiles, base float64, spec fleetSpec) fleetResult {
	t.Helper()
	opts := chaosOptions(base, spec)
	coord, err := NewCoordinator(gp, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	deadline := spec.deadline
	if deadline == 0 {
		deadline = 90 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	res := fleetResult{
		curves: make([][]byte, spec.nEdge),
		errs:   make([]error, spec.nEdge),
		coord:  coord,
	}
	var wg sync.WaitGroup
	for i := 0; i < spec.nEdge; i++ {
		if spec.absent[i] {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := NewEdge(i, srv.URL, gp, device.NewTX2GPU(), 11, opts)
			e.PollInterval = 5 * time.Millisecond
			e.Failpoints = spec.failpoints[i]
			if spec.plan != nil {
				p := *spec.plan
				p.Seed += int64(i)
				e.Transport = NewFaultyTransport(p, nil)
			}
			curve, err := e.Run(ctx)
			res.errs[i] = err
			if err == nil {
				res.curves[i], err = curve.Marshal()
				if err != nil {
					res.errs[i] = err
				}
			}
		}(i)
	}
	wg.Wait()
	if final, ok := coord.FinalCurve(); ok {
		data, err := final.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		res.coordCurve = data
	}
	return res
}

// checkConvergence asserts the surviving fleet produced a valid final
// curve: the coordinator finalized, every survivor fetched the identical
// bytes, and every shipped point satisfies the QoS threshold.
func checkConvergence(t *testing.T, res fleetResult, base float64, crashed map[int]bool) {
	t.Helper()
	if res.coordCurve == nil {
		t.Fatal("coordinator never produced a final curve")
	}
	for i, err := range res.errs {
		if crashed[i] {
			if err == nil {
				t.Errorf("edge %d was scheduled to crash but finished cleanly", i)
			} else if !errors.Is(err, ErrInjectedCrash) {
				t.Errorf("edge %d failed with a non-injected error: %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("surviving edge %d: %v", i, err)
		}
		if !bytes.Equal(res.curves[i], res.coordCurve) {
			t.Errorf("edge %d fetched a curve different from the coordinator's", i)
		}
	}
	curve, err := pareto.UnmarshalCurve(res.coordCurve)
	if err != nil {
		t.Fatalf("final curve does not parse: %v", err)
	}
	if curve.Len() == 0 {
		t.Fatal("final curve is empty")
	}
	for _, pt := range curve.Points {
		if pt.QoS <= base-10 {
			t.Errorf("shipped point below QoS threshold: %v", pt.QoS)
		}
		if pt.Perf <= 0 {
			t.Errorf("bad Perf %v", pt.Perf)
		}
	}
}

// TestChaosMatrix drives the protocol through seeded fault schedules ×
// failure modes and asserts the surviving fleet always converges to a
// valid final Pareto curve within the test deadline.
func TestChaosMatrix(t *testing.T) {
	gp, base := buildProgram(t)
	profs := devProfiles(t, gp)
	const nEdge = 3

	// The reassignment scenarios use a short lease so survivors take over
	// quickly; the flaky-transport scenario keeps the default long lease
	// (no reassignment noise) because it asserts bit-identical output.
	shortLease := 300 * time.Millisecond

	type scenario struct {
		name       string
		spec       fleetSpec
		crashed    map[int]bool
		identical  bool // final curve must equal the zero-fault golden bytes
		reassigned bool // at least one work unit must have moved
	}
	scenarios := []scenario{
		{
			name: "crash_before_profiles",
			spec: fleetSpec{
				nEdge: nEdge, leaseTTL: shortLease,
				failpoints: map[int]Failpoints{2: {CrashBeforeProfiles: true}},
			},
			crashed:    map[int]bool{2: true},
			reassigned: true,
		},
		{
			name: "crash_before_validated",
			spec: fleetSpec{
				nEdge: nEdge, leaseTTL: shortLease,
				failpoints: map[int]Failpoints{1: {CrashBeforeValidated: true}},
			},
			crashed:    map[int]bool{1: true},
			reassigned: true,
		},
		{
			name: "flaky_transport",
			spec: fleetSpec{
				nEdge: nEdge,
				plan:  &FaultPlan{DropProb: 0.15, Err500Prob: 0.10, DupProb: 0.10, MaxDelay: 2 * time.Millisecond},
			},
			identical: true,
		},
		{
			name: "edge_never_appears",
			spec: fleetSpec{
				nEdge: nEdge, leaseTTL: shortLease,
				absent: map[int]bool{2: true},
			},
			crashed:    map[int]bool{2: true},
			reassigned: true,
		},
	}

	seeds := []int64{101, 202}
	if testing.Short() {
		seeds = seeds[:1]
		scenarios = scenarios[:3]
	}

	golden := runFleet(t, gp, profs, base, fleetSpec{nEdge: nEdge})
	checkConvergence(t, golden, base, nil)

	for _, sc := range scenarios {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed=%d", sc.name, seed), func(t *testing.T) {
				spec := sc.spec
				if spec.plan != nil {
					p := *spec.plan
					p.Seed = seed
					spec.plan = &p
				}
				before := res2counters()
				res := runFleet(t, gp, profs, base, spec)
				crashed := sc.crashed
				if spec.absent != nil {
					// Absent edges never ran, so they report no error;
					// exclude them from the survivor checks.
					crashed = map[int]bool{}
					for i := range spec.absent {
						res.errs[i] = ErrInjectedCrash
						crashed[i] = true
					}
				}
				checkConvergence(t, res, base, crashed)
				after := res2counters()
				if sc.identical && !bytes.Equal(res.coordCurve, golden.coordCurve) {
					t.Error("flaky transport changed the final curve; idempotency layer leaked")
				}
				if sc.reassigned && after.reassigned <= before.reassigned {
					t.Error("expected at least one shard/slice reassignment")
				}
			})
		}
	}
}

// counterSnapshot isolates chaos assertions from the process-global
// metric registry (other tests in the package also move the counters).
type counterSnapshot struct{ reassigned int64 }

func res2counters() counterSnapshot {
	return counterSnapshot{reassigned: mReassignedShards.Value() + mReassignedSlices.Value()}
}

// TestChaosZeroFaultDeterminism pins the bit-identical guarantee: with
// zero injected faults the protocol's final curve is byte-identical
// across GOMAXPROCS settings and across plain vs zero-fault-injected
// transports. (The fault-oblivious pre-lease protocol produced the same
// bytes for this configuration — sha256 3261fc4227fa7c07…, verified when
// the fault-tolerance layer was introduced — so this also guards the
// wire-compatibility of the hardened protocol.)
func TestChaosZeroFaultDeterminism(t *testing.T) {
	gp, base := buildProgram(t)
	profs := devProfiles(t, gp)
	const nEdge = 3

	var curves [][]byte
	run := func(procs int, withTransport bool) {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		spec := fleetSpec{nEdge: nEdge}
		if withTransport {
			spec.plan = &FaultPlan{Seed: 7} // all probabilities zero
		}
		res := runFleet(t, gp, profs, base, spec)
		checkConvergence(t, res, base, nil)
		curves = append(curves, res.coordCurve)
	}
	run(runtime.GOMAXPROCS(0), false)
	run(1, false)
	run(runtime.GOMAXPROCS(0), true)
	for i := 1; i < len(curves); i++ {
		if !bytes.Equal(curves[0], curves[i]) {
			t.Fatalf("run %d produced different final-curve bytes than run 0", i)
		}
	}
}

// TestEdgeRunHonorsContext pins the no-unbounded-polling guarantee: when
// the fleet cannot converge (a peer never arrives), a cancelled deadline
// aborts the poll loop instead of spinning forever.
func TestEdgeRunHonorsContext(t *testing.T) {
	gp, base := buildProgram(t)
	profs := devProfiles(t, gp)
	coord, err := NewCoordinator(gp, profs, chaosOptions(base, fleetSpec{nEdge: 2, leaseTTL: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// Edge 1 never shows up and the lease is an hour, so edge 0 can only
	// give up when its context expires.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	e := NewEdge(0, srv.URL, gp, device.NewTX2GPU(), 11, chaosOptions(base, fleetSpec{nEdge: 2}))
	e.PollInterval = 5 * time.Millisecond
	done := make(chan error, 1)
	go func() {
		_, err := e.Run(ctx)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("expected deadline error, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("edge kept polling long after its context deadline")
	}
}
