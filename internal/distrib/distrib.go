// Package distrib is a real network transport for ApproxTuner's
// distributed install-time tuning protocol (§4). The paper distributes
// the phase across a server and a fleet of edge devices to amortize
// profile collection and validation; internal/core simulates the fleet
// in-process with goroutines, while this package runs the identical
// four-step protocol over HTTP + JSON:
//
//  1. each edge registers and receives its calibration-shard assignment
//     (POST /v1/register);
//  2. each edge collects hardware-knob QoS profiles on its shard and
//     uploads them (POST /v1/profiles); once all shards arrive, the
//     coordinator merges them with the shipped software profiles and runs
//     the predictive search (Algorithm 1 lines 18–30 + the ε1 shortlist);
//  3. each edge polls for its validation assignment (GET /v1/assignments),
//     measures real QoS and device performance/energy for its slice of
//     the shortlist, and uploads its local Pareto set (POST /v1/validated);
//  4. the coordinator unions the per-edge Pareto sets into the final
//     curve, which edges fetch with GET /v1/curve.
package distrib

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pareto"
	"repro/internal/predictor"
	"repro/internal/tensor"
)

// Coordinator is the central server of the protocol. It owns the full
// program (for the server-side search), the shipped development-time
// profiles, and the install options.
type Coordinator struct {
	prog     core.Program
	devProfs *predictor.Profiles
	opts     core.InstallOptions

	mu         sync.Mutex
	registered int
	shards     map[int]*predictor.Profiles // edgeID → uploaded profiles
	shortlist  []pareto.Point
	searchErr  error
	searched   bool
	validated  map[int][]pareto.Point // edgeID → local Pareto set
	final      *pareto.Curve
}

// NewCoordinator builds a coordinator for nEdge devices (set in
// opts.NEdge; defaults to 4).
func NewCoordinator(p core.Program, devProfiles *predictor.Profiles, opts core.InstallOptions) (*Coordinator, error) {
	if opts.NEdge <= 0 {
		opts.NEdge = 4
	}
	if _, ok := p.(core.Sharder); !ok && opts.NEdge > 1 {
		return nil, fmt.Errorf("distrib: program %q cannot shard for %d edges", p.Name(), opts.NEdge)
	}
	return &Coordinator{
		prog:      p,
		devProfs:  devProfiles,
		opts:      opts,
		shards:    make(map[int]*predictor.Profiles),
		validated: make(map[int][]pareto.Point),
	}, nil
}

// Wire types.

type registerReq struct {
	EdgeID int `json:"edge_id"`
}

type registerResp struct {
	Lo        int  `json:"lo"`
	Hi        int  `json:"hi"`
	NEdge     int  `json:"n_edge"`
	AllowFP16 bool `json:"allow_fp16"`
}

type profilesReq struct {
	EdgeID   int             `json:"edge_id"`
	Profiles json.RawMessage `json:"profiles"`
}

type assignmentsResp struct {
	Ready   bool           `json:"ready"`
	Configs []pareto.Point `json:"configs"` // QoS/Perf are server predictions
	QoSMin  float64        `json:"qos_min"`
	Obj     core.Objective `json:"objective"`
}

type validatedReq struct {
	EdgeID int            `json:"edge_id"`
	Points []pareto.Point `json:"points"`
}

type curveResp struct {
	Ready bool            `json:"ready"`
	Curve json.RawMessage `json:"curve,omitempty"`
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", c.handleRegister)
	mux.HandleFunc("POST /v1/profiles", c.handleProfiles)
	mux.HandleFunc("GET /v1/assignments", c.handleAssignments)
	mux.HandleFunc("POST /v1/validated", c.handleValidated)
	mux.HandleFunc("GET /v1/curve", c.handleCurve)
	return mux
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerReq
	if !decode(w, r, &req) {
		return
	}
	if req.EdgeID < 0 || req.EdgeID >= c.opts.NEdge {
		http.Error(w, fmt.Sprintf("edge id %d out of range [0,%d)", req.EdgeID, c.opts.NEdge), http.StatusBadRequest)
		return
	}
	n := 0
	if sh, ok := c.prog.(core.Sharder); ok {
		n = sh.NumCalib()
	}
	c.mu.Lock()
	c.registered++
	c.mu.Unlock()
	writeJSON(w, registerResp{
		Lo:        req.EdgeID * n / c.opts.NEdge,
		Hi:        (req.EdgeID + 1) * n / c.opts.NEdge,
		NEdge:     c.opts.NEdge,
		AllowFP16: c.opts.Policy.AllowFP16,
	})
}

func (c *Coordinator) handleProfiles(w http.ResponseWriter, r *http.Request) {
	var req profilesReq
	if !decode(w, r, &req) {
		return
	}
	profs, err := predictor.UnmarshalProfiles(req.Profiles)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shards[req.EdgeID] = profs
	if len(c.shards) == c.opts.NEdge && !c.searched {
		// All shards arrived: merge (mean ΔQ, concatenated ΔT) and run the
		// server-side predictive search.
		ordered := make([]*predictor.Profiles, 0, c.opts.NEdge)
		for e := 0; e < c.opts.NEdge; e++ {
			ordered = append(ordered, c.shards[e])
		}
		hw := predictor.Merge(ordered)
		combined := core.CombineProfiles(c.devProfs, hw)
		c.shortlist, _, c.searchErr = core.SearchShortlist(c.prog, combined, c.opts)
		c.searched = true
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleAssignments(w http.ResponseWriter, r *http.Request) {
	var edgeID int
	if _, err := fmt.Sscan(r.URL.Query().Get("edge"), &edgeID); err != nil {
		http.Error(w, "missing edge query parameter", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.searchErr != nil {
		http.Error(w, c.searchErr.Error(), http.StatusInternalServerError)
		return
	}
	if !c.searched {
		writeJSON(w, assignmentsResp{Ready: false})
		return
	}
	// Equal-fraction scatter: edge e validates shortlist[e::nEdge].
	var mine []pareto.Point
	for i := edgeID; i < len(c.shortlist); i += c.opts.NEdge {
		mine = append(mine, c.shortlist[i])
	}
	writeJSON(w, assignmentsResp{Ready: true, Configs: mine, QoSMin: c.opts.QoSMin, Obj: c.opts.Objective})
}

func (c *Coordinator) handleValidated(w http.ResponseWriter, r *http.Request) {
	var req validatedReq
	if !decode(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.validated[req.EdgeID] = req.Points
	if len(c.validated) == c.opts.NEdge && c.final == nil {
		var union []pareto.Point
		for e := 0; e < c.opts.NEdge; e++ {
			union = append(union, c.validated[e]...)
		}
		c.final = pareto.NewCurve(c.prog.Name(), c.devProfs.BaseQoS, union)
		if c.opts.Device != nil {
			c.final.BaselineTime = c.opts.Device.Time(c.prog.Costs(), nil)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleCurve(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	final := c.final
	c.mu.Unlock()
	if final == nil {
		writeJSON(w, curveResp{Ready: false})
		return
	}
	data, err := final.Marshal()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, curveResp{Ready: true, Curve: data})
}

// FinalCurve returns the final tradeoff curve once all edges reported, or
// (nil, false) while the protocol is still in flight.
func (c *Coordinator) FinalCurve() (*pareto.Curve, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.final, c.final != nil
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Edge is one device of the fleet: it owns the full program binary and
// its local calibration inputs (a shard of the global set), plus a device
// model for performance/energy measurement.
type Edge struct {
	ID      int
	BaseURL string
	Program core.Program // shardable program (same binary as the server's)
	Device  *device.Device
	Client  *http.Client
	// PollInterval paces the assignment/curve polling loops (default 20ms).
	PollInterval time.Duration
	Seed         int64
}

func (e *Edge) client() *http.Client {
	if e.Client != nil {
		return e.Client
	}
	return http.DefaultClient
}

func (e *Edge) poll() time.Duration {
	if e.PollInterval > 0 {
		return e.PollInterval
	}
	return 20 * time.Millisecond
}

// Run executes the full edge-side protocol and returns the final curve.
func (e *Edge) Run() (*pareto.Curve, error) {
	// Step 1: register, get shard assignment.
	var reg registerResp
	if err := e.post("/v1/register", registerReq{EdgeID: e.ID}, &reg); err != nil {
		return nil, err
	}
	local := e.Program
	if sh, ok := e.Program.(core.Sharder); ok && reg.Hi > reg.Lo {
		sp, err := sh.Shard(reg.Lo, reg.Hi)
		if err != nil {
			return nil, fmt.Errorf("distrib: edge %d shard: %w", e.ID, err)
		}
		local = sp
	}

	// Step 2: collect hardware-knob profiles on the shard and upload.
	profs := core.CollectProfiles(local, nil, func(op int) []approx.KnobID {
		return core.HardwareKnobsFor(local, op, reg.AllowFP16)
	}, tensor.NewRNG(e.Seed+int64(e.ID)))
	payload, err := profs.Marshal()
	if err != nil {
		return nil, err
	}
	if err := e.post("/v1/profiles", profilesReq{EdgeID: e.ID, Profiles: payload}, nil); err != nil {
		return nil, err
	}

	// Step 3: poll for the validation assignment, validate, upload the
	// local Pareto set.
	var asn assignmentsResp
	for {
		if err := e.get(fmt.Sprintf("/v1/assignments?edge=%d", e.ID), &asn); err != nil {
			return nil, err
		}
		if asn.Ready {
			break
		}
		time.Sleep(e.poll())
	}
	rng := tensor.NewRNG(e.Seed + 1000 + int64(e.ID))
	var pts []pareto.Point
	for i, pt := range asn.Configs {
		if e.Device != nil && !core.DeviceSupports(e.Device, pt.Config) {
			continue
		}
		out := local.Run(pt.Config, core.Calib, rng.Split(int64(i)))
		realQoS := local.Score(core.Calib, out)
		if realQoS <= asn.QoSMin {
			continue
		}
		perf := pt.Perf
		if e.Device != nil {
			perf = core.MeasurePerf(e.Program, e.Device, asn.Obj, pt.Config)
		}
		pts = append(pts, pareto.Point{QoS: realQoS, Perf: perf, Config: pt.Config})
	}
	if err := e.post("/v1/validated", validatedReq{EdgeID: e.ID, Points: pareto.Set(pts)}, nil); err != nil {
		return nil, err
	}

	// Step 4: fetch the final curve.
	for {
		var cr curveResp
		if err := e.get("/v1/curve", &cr); err != nil {
			return nil, err
		}
		if cr.Ready {
			return pareto.UnmarshalCurve(cr.Curve)
		}
		time.Sleep(e.poll())
	}
}

func (e *Edge) post(path string, req any, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := e.client().Post(e.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("distrib: POST %s: %w", path, err)
	}
	defer r.Body.Close()
	if r.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 1024))
		return fmt.Errorf("distrib: POST %s: %s: %s", path, r.Status, msg)
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

func (e *Edge) get(path string, resp any) error {
	r, err := e.client().Get(e.BaseURL + path)
	if err != nil {
		return fmt.Errorf("distrib: GET %s: %w", path, err)
	}
	defer r.Body.Close()
	if r.StatusCode >= 300 {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 1024))
		return fmt.Errorf("distrib: GET %s: %s: %s", path, r.Status, msg)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}
