// Package distrib is a real network transport for ApproxTuner's
// distributed install-time tuning protocol (§4). The paper distributes
// the phase across a server and a fleet of edge devices to amortize
// profile collection and validation; internal/core simulates the fleet
// in-process with goroutines, while this package runs the identical
// four-step protocol over HTTP + JSON:
//
//  1. each edge registers and receives its calibration-shard assignment
//     (POST /v1/register);
//  2. each edge collects hardware-knob QoS profiles on its shard and
//     uploads them (POST /v1/profiles); once all shards arrive, the
//     coordinator merges them with the shipped software profiles and runs
//     the predictive search (Algorithm 1 lines 18–30 + the ε1 shortlist);
//  3. each edge polls for its validation assignment (GET /v1/assignments),
//     measures real QoS and device performance/energy for its slice of
//     the shortlist, and uploads its local Pareto set (POST /v1/validated);
//  4. the coordinator unions the per-edge Pareto sets into the final
//     curve, which edges fetch with GET /v1/curve.
//
// Fault model: edges crash, restart, and sit behind lossy links. Every
// registration carries a liveness lease that is renewed by any request
// from that edge; when a lease expires before the edge's profile or
// validation upload, the coordinator re-offers the orphaned work unit to
// the next live edge that polls, so the fleet converges with any subset
// of survivors. Uploads carry attempt tokens and are applied
// first-write-wins, making retried and duplicated POSTs idempotent. The
// edge client (edge.go) retries with seeded exponential backoff, bounds
// every request with a timeout, and threads a context through both poll
// loops so nothing can spin forever. With zero faults the protocol's
// final curve is bit-identical to the fault-oblivious one: the same
// shard seeds, merge order, and slice-union order are preserved.
package distrib

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/predictor"
)

// Coordinator is the central server of the protocol. It owns the full
// program (for the server-side search), the shipped development-time
// profiles, and the install options.
type Coordinator struct {
	prog     core.Program
	devProfs *predictor.Profiles
	opts     core.InstallOptions

	// Now is the coordinator's clock; tests may inject a fake. Nil means
	// time.Now. Set before serving, not after.
	Now func() time.Time

	mu        sync.Mutex
	started   time.Time                   // first registration; anchors no-show expiry
	edges     map[int]*edgeLease          // edgeID → liveness lease
	seen      map[string]bool             // applied idempotency tokens
	profWork  map[int]*workItem           // shardID → profile-collection work
	valWork   map[int]*workItem           // sliceID → validation work (exists once searched)
	shards    map[int]*predictor.Profiles // shardID → uploaded profiles
	shortlist []pareto.Point
	searchErr error
	searched  bool
	validated map[int][]pareto.Point // sliceID → local Pareto set
	final     *pareto.Curve
	edgeTel   map[int]edgeTelemetryReq // edgeID → end-of-run client telemetry

	// stats mirrors the HTTP middleware telemetry for this coordinator
	// instance (httpmw.go); it has its own lock.
	stats httpStats

	// Server-side trace capture: when a request arrives with a W3C
	// traceparent header, the middleware records a coord:<path> span under
	// the caller's trace so GET /v1/stats can assemble the cross-process
	// trace. traceMu has its own lock (the middleware must not contend
	// with protocol state).
	traceMu    sync.Mutex
	coordSpans []obs.SpanRecord
	spanHead   int           // ring cursor once coordSpans is full
	spanIDs    *obs.IDSource // server-side span identity
	traceBase  time.Time     // anchors coord span start offsets
}

// edgeLease tracks one edge's liveness.
type edgeLease struct {
	expires time.Time
	epoch   int  // incremented when the edge re-registers after expiry
	expired bool // lease expiry already observed (metric fires once)
}

// workItem is one reassignable unit of edge work: a profile shard or a
// validation slice. owner is the edge currently responsible for it.
type workItem struct {
	owner int
	done  bool
}

// NewCoordinator builds a coordinator for nEdge devices (set in
// opts.NEdge; defaults to 4).
func NewCoordinator(p core.Program, devProfiles *predictor.Profiles, opts core.InstallOptions) (*Coordinator, error) {
	if opts.NEdge <= 0 {
		opts.NEdge = 4
	}
	// Unset search/robustness knobs take their documented defaults here,
	// so the handlers never feed zero values (e.g. MaxConfigs) into the
	// server-side search.
	opts = opts.Norm()
	if _, ok := p.(core.Sharder); !ok && opts.NEdge > 1 {
		return nil, fmt.Errorf("distrib: program %q cannot shard for %d edges", p.Name(), opts.NEdge)
	}
	return &Coordinator{
		prog:      p,
		devProfs:  devProfiles,
		opts:      opts,
		edges:     make(map[int]*edgeLease),
		seen:      make(map[string]bool),
		profWork:  make(map[int]*workItem),
		valWork:   make(map[int]*workItem),
		shards:    make(map[int]*predictor.Profiles),
		validated: make(map[int][]pareto.Point),
		edgeTel:   make(map[int]edgeTelemetryReq),
		spanIDs:   obs.NewIDSource(opts.Seed),
		traceBase: time.Now(),
	}, nil
}

func (c *Coordinator) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

func (c *Coordinator) leaseTTL() time.Duration {
	if c.opts.LeaseTTL > 0 {
		return c.opts.LeaseTTL
	}
	return 30 * time.Second
}

// Wire types.

type registerReq struct {
	EdgeID int `json:"edge_id"`
	// Attempt is the edge's logical-operation token: retries of the same
	// registration reuse it, so the coordinator can tell a retransmit from
	// a fresh registration.
	Attempt int `json:"attempt,omitempty"`
}

type registerResp struct {
	Lo        int  `json:"lo"`
	Hi        int  `json:"hi"`
	NEdge     int  `json:"n_edge"`
	AllowFP16 bool `json:"allow_fp16"`
	// Epoch counts the edge's registrations after lease expiry (0 for the
	// first incarnation).
	Epoch int `json:"epoch,omitempty"`
	// LeaseMillis tells the edge how long it may stay silent before the
	// coordinator declares it dead and reassigns its work.
	LeaseMillis int64 `json:"lease_ms,omitempty"`
}

type profilesReq struct {
	EdgeID int `json:"edge_id"`
	// Shard is the profile shard the payload covers; nil means the edge's
	// own shard (wire compatibility with fault-oblivious clients).
	Shard    *int            `json:"shard,omitempty"`
	Attempt  int             `json:"attempt,omitempty"`
	Profiles json.RawMessage `json:"profiles"`
}

// shardOffer re-offers an orphaned profile shard to a live edge.
type shardOffer struct {
	Shard int `json:"shard"`
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
}

type assignmentsResp struct {
	Ready   bool           `json:"ready"`
	Configs []pareto.Point `json:"configs"` // QoS/Perf are server predictions
	QoSMin  float64        `json:"qos_min"`
	Obj     core.Objective `json:"objective"`
	// Reprofile, when set on a not-ready response, asks the polling edge
	// to collect profiles for a dead edge's shard.
	Reprofile *shardOffer `json:"reprofile,omitempty"`
}

type validatedReq struct {
	EdgeID int `json:"edge_id"`
	// Slice is the shortlist slice the points validate; nil means the
	// edge's own slice.
	Slice   *int           `json:"slice,omitempty"`
	Attempt int            `json:"attempt,omitempty"`
	Points  []pareto.Point `json:"points"`
}

// sliceOffer re-offers an orphaned validation slice to a live edge.
type sliceOffer struct {
	Slice   int            `json:"slice"`
	Configs []pareto.Point `json:"configs"`
	QoSMin  float64        `json:"qos_min"`
	Obj     core.Objective `json:"objective"`
}

type curveResp struct {
	Ready bool            `json:"ready"`
	Curve json.RawMessage `json:"curve,omitempty"`
	// Revalidate, when set on a not-ready response, asks the polling edge
	// to validate a dead edge's shortlist slice.
	Revalidate *sliceOffer `json:"revalidate,omitempty"`
}

// Handler returns the coordinator's HTTP API. Every protocol endpoint
// runs behind the telemetry middleware (httpmw.go); the handler also
// serves the fleet stats at GET /v1/stats, the process metric registry
// at /metrics (JSON or Prometheus text, content-negotiated) and a
// liveness probe at /healthz, so a coordinator is scrapeable without a
// separate -metrics-addr endpoint.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", c.instrument("/v1/register", c.handleRegister))
	mux.HandleFunc("POST /v1/profiles", c.instrument("/v1/profiles", c.handleProfiles))
	mux.HandleFunc("GET /v1/assignments", c.instrument("/v1/assignments", c.handleAssignments))
	mux.HandleFunc("POST /v1/validated", c.instrument("/v1/validated", c.handleValidated))
	mux.HandleFunc("GET /v1/curve", c.instrument("/v1/curve", c.handleCurve))
	mux.HandleFunc("POST /v1/telemetry", c.instrument("/v1/telemetry", c.handleTelemetry))
	mux.HandleFunc("GET /v1/stats", c.handleStats)
	mux.Handle("GET /metrics", obs.MetricsHandler(nil))
	mux.Handle("GET /healthz", obs.HealthzHandler())
	return mux
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerReq
	if !decode(w, r, &req) {
		return
	}
	if req.EdgeID < 0 || req.EdgeID >= c.opts.NEdge {
		http.Error(w, fmt.Sprintf("edge id %d out of range [0,%d)", req.EdgeID, c.opts.NEdge), http.StatusBadRequest)
		return
	}
	n := 0
	if sh, ok := c.prog.(core.Sharder); ok {
		n = sh.NumCalib()
	}
	c.mu.Lock()
	now := c.now()
	if c.started.IsZero() {
		c.started = now
	}
	key := tokenKey("register", req.EdgeID, req.EdgeID, req.Attempt)
	dup := c.seen[key]
	c.seen[key] = true
	st := c.edges[req.EdgeID]
	switch {
	case st == nil:
		st = &edgeLease{}
		c.edges[req.EdgeID] = st
	case dup:
		// Retransmitted registration: renew the lease, same epoch.
		mDupRequests.Inc()
	case now.After(st.expires):
		// A fresh registration after expiry: the edge restarted.
		st.epoch++
		st.expired = false
		mReRegistrations.Inc()
	}
	st.expires = now.Add(c.leaseTTL())
	if c.profWork[req.EdgeID] == nil {
		c.profWork[req.EdgeID] = &workItem{owner: req.EdgeID}
	}
	epoch := st.epoch
	c.mu.Unlock()
	writeJSON(w, registerResp{
		Lo:          req.EdgeID * n / c.opts.NEdge,
		Hi:          (req.EdgeID + 1) * n / c.opts.NEdge,
		NEdge:       c.opts.NEdge,
		AllowFP16:   c.opts.Policy.AllowFP16,
		Epoch:       epoch,
		LeaseMillis: c.leaseTTL().Milliseconds(),
	})
}

func (c *Coordinator) handleProfiles(w http.ResponseWriter, r *http.Request) {
	var req profilesReq
	if !decode(w, r, &req) {
		return
	}
	if req.EdgeID < 0 || req.EdgeID >= c.opts.NEdge {
		http.Error(w, fmt.Sprintf("edge id %d out of range [0,%d)", req.EdgeID, c.opts.NEdge), http.StatusBadRequest)
		return
	}
	shard := req.EdgeID
	if req.Shard != nil {
		shard = *req.Shard
	}
	if shard < 0 || shard >= c.opts.NEdge {
		http.Error(w, fmt.Sprintf("shard %d out of range [0,%d)", shard, c.opts.NEdge), http.StatusBadRequest)
		return
	}
	profs, err := predictor.UnmarshalProfiles(req.Profiles)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(req.EdgeID)
	key := tokenKey("profiles", req.EdgeID, shard, req.Attempt)
	if c.seen[key] {
		// Duplicate delivery of an already-applied upload (retry after a
		// lost response, or a duplicated request on the wire).
		mDupRequests.Inc()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	c.seen[key] = true
	if _, ok := c.shards[shard]; ok {
		// The shard was already filled — by this edge's earlier attempt or
		// by a reassignment race. First write wins.
		mRedundantUploads.Inc()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	c.shards[shard] = profs
	if wi := c.profWork[shard]; wi != nil {
		wi.done = true
	} else {
		c.profWork[shard] = &workItem{owner: req.EdgeID, done: true}
	}
	if !c.searched && c.allShardsLocked() {
		// All shards arrived: merge (mean ΔQ, concatenated ΔT) and run the
		// server-side predictive search. A panicking search must become a
		// recorded error, not a wedged fleet: the upload's attempt token is
		// already marked applied, so retries would be absorbed as
		// duplicates and the edges would poll a never-ready coordinator
		// forever.
		ordered := make([]*predictor.Profiles, 0, c.opts.NEdge)
		for e := 0; e < c.opts.NEdge; e++ {
			ordered = append(ordered, c.shards[e])
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					c.searchErr = fmt.Errorf("distrib: server-side search panicked: %v", r)
				}
				c.searched = true
			}()
			hw := predictor.Merge(ordered)
			combined := core.CombineProfiles(c.devProfs, hw)
			c.shortlist, _, c.searchErr = core.SearchShortlist(c.prog, combined, c.opts)
		}()
		if c.searchErr == nil {
			for s := 0; s < c.opts.NEdge; s++ {
				c.valWork[s] = &workItem{owner: s}
			}
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleAssignments(w http.ResponseWriter, r *http.Request) {
	edgeID, ok := edgeParam(w, r, c.opts.NEdge)
	if !ok {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(edgeID)
	if c.searchErr != nil {
		http.Error(w, c.searchErr.Error(), http.StatusInternalServerError)
		return
	}
	if !c.searched {
		resp := assignmentsResp{Ready: false}
		if shard, ok := c.orphanShardLocked(edgeID); ok {
			wi := c.profWork[shard]
			if wi == nil {
				wi = &workItem{}
				c.profWork[shard] = wi
			}
			wi.owner = edgeID
			n := 0
			if sh, isSh := c.prog.(core.Sharder); isSh {
				n = sh.NumCalib()
			}
			resp.Reprofile = &shardOffer{
				Shard: shard,
				Lo:    shard * n / c.opts.NEdge,
				Hi:    (shard + 1) * n / c.opts.NEdge,
			}
			mReassignedShards.Inc()
		}
		writeJSON(w, resp)
		return
	}
	writeJSON(w, assignmentsResp{
		Ready:   true,
		Configs: c.sliceLocked(edgeID),
		QoSMin:  c.opts.QoSMin,
		Obj:     c.opts.Objective,
	})
}

func (c *Coordinator) handleValidated(w http.ResponseWriter, r *http.Request) {
	var req validatedReq
	if !decode(w, r, &req) {
		return
	}
	if req.EdgeID < 0 || req.EdgeID >= c.opts.NEdge {
		http.Error(w, fmt.Sprintf("edge id %d out of range [0,%d)", req.EdgeID, c.opts.NEdge), http.StatusBadRequest)
		return
	}
	slice := req.EdgeID
	if req.Slice != nil {
		slice = *req.Slice
	}
	if slice < 0 || slice >= c.opts.NEdge {
		http.Error(w, fmt.Sprintf("slice %d out of range [0,%d)", slice, c.opts.NEdge), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchLocked(req.EdgeID)
	key := tokenKey("validated", req.EdgeID, slice, req.Attempt)
	if c.seen[key] {
		mDupRequests.Inc()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	c.seen[key] = true
	if _, ok := c.validated[slice]; ok {
		mRedundantUploads.Inc()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	c.validated[slice] = req.Points
	if wi := c.valWork[slice]; wi != nil {
		wi.done = true
	}
	if c.final == nil && c.allSlicesLocked() {
		var union []pareto.Point
		for s := 0; s < c.opts.NEdge; s++ {
			union = append(union, c.validated[s]...)
		}
		c.final = pareto.NewCurve(c.prog.Name(), c.devProfs.BaseQoS, union)
		if c.opts.Device != nil {
			c.final.BaselineTime = c.opts.Device.Time(c.prog.Costs(), nil)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleCurve(w http.ResponseWriter, r *http.Request) {
	// The edge parameter is optional (wire compatibility): without it the
	// response still reports curve readiness, but the caller's lease is
	// not renewed and no orphaned work can be offered to it.
	var resp curveResp
	c.mu.Lock()
	if s := r.URL.Query().Get("edge"); s != "" {
		edgeID, err := strconv.Atoi(s)
		if err != nil || edgeID < 0 || edgeID >= c.opts.NEdge {
			c.mu.Unlock()
			http.Error(w, fmt.Sprintf("bad edge query parameter %q", s), http.StatusBadRequest)
			return
		}
		c.touchLocked(edgeID)
		if c.final == nil && c.searched && c.searchErr == nil {
			if slice, ok := c.orphanSliceLocked(edgeID); ok {
				c.valWork[slice].owner = edgeID
				resp.Revalidate = &sliceOffer{
					Slice:   slice,
					Configs: c.sliceLocked(slice),
					QoSMin:  c.opts.QoSMin,
					Obj:     c.opts.Objective,
				}
				mReassignedSlices.Inc()
			}
		}
	}
	final := c.final
	c.mu.Unlock()
	if final == nil {
		writeJSON(w, resp)
		return
	}
	data, err := final.Marshal()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp.Ready = true
	resp.Curve = data
	writeJSON(w, resp)
}

// FinalCurve returns the final tradeoff curve once all slices reported, or
// (nil, false) while the protocol is still in flight.
func (c *Coordinator) FinalCurve() (*pareto.Curve, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.final, c.final != nil
}

// Registered returns how many distinct edges have registered.
func (c *Coordinator) Registered() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.edges)
}

// --- locked helpers -------------------------------------------------------

// touchLocked renews the lease of a registered edge. Callers hold c.mu.
func (c *Coordinator) touchLocked(edgeID int) {
	if st := c.edges[edgeID]; st != nil {
		st.expires = c.now().Add(c.leaseTTL())
	}
}

// deadLocked reports whether the owner of a work unit can be declared
// dead: its lease expired, or it never registered and the fleet has been
// running for longer than one lease. Callers hold c.mu.
func (c *Coordinator) deadLocked(owner int, now time.Time) bool {
	st := c.edges[owner]
	if st == nil {
		return !c.started.IsZero() && now.After(c.started.Add(c.leaseTTL()))
	}
	if now.After(st.expires) {
		if !st.expired {
			st.expired = true
			mLeaseExpirations.Inc()
		}
		return true
	}
	return false
}

// orphanShardLocked finds the lowest-numbered profile shard whose owner
// is dead and whose profiles have not arrived, to reassign to the polling
// edge. Callers hold c.mu.
func (c *Coordinator) orphanShardLocked(pollingEdge int) (int, bool) {
	now := c.now()
	for s := 0; s < c.opts.NEdge; s++ {
		if _, ok := c.shards[s]; ok {
			continue
		}
		wi := c.profWork[s]
		owner := s
		if wi != nil {
			owner = wi.owner
		}
		// The polling edge owning the unit means a previous offer to it
		// went unanswered (it only polls between work); offer it again.
		if owner == pollingEdge || c.deadLocked(owner, now) {
			return s, true
		}
	}
	return 0, false
}

// orphanSliceLocked finds the lowest-numbered validation slice whose
// owner is dead and whose points have not arrived. Callers hold c.mu.
func (c *Coordinator) orphanSliceLocked(pollingEdge int) (int, bool) {
	now := c.now()
	for s := 0; s < c.opts.NEdge; s++ {
		if _, ok := c.validated[s]; ok {
			continue
		}
		wi := c.valWork[s]
		if wi == nil {
			continue
		}
		if wi.owner == pollingEdge || c.deadLocked(wi.owner, now) {
			return s, true
		}
	}
	return 0, false
}

// allShardsLocked reports whether every profile shard 0..NEdge-1 has a
// non-nil upload. Callers hold c.mu.
func (c *Coordinator) allShardsLocked() bool {
	for s := 0; s < c.opts.NEdge; s++ {
		if c.shards[s] == nil {
			return false
		}
	}
	return true
}

// allSlicesLocked reports whether every validation slice 0..NEdge-1 has
// reported (possibly with an empty point set). Callers hold c.mu.
func (c *Coordinator) allSlicesLocked() bool {
	for s := 0; s < c.opts.NEdge; s++ {
		if _, ok := c.validated[s]; !ok {
			return false
		}
	}
	return true
}

// sliceLocked returns the equal-fraction scatter of the shortlist for one
// slice: shortlist[slice::NEdge]. Callers hold c.mu.
func (c *Coordinator) sliceLocked(slice int) []pareto.Point {
	var mine []pareto.Point
	for i := slice; i < len(c.shortlist); i += c.opts.NEdge {
		mine = append(mine, c.shortlist[i])
	}
	return mine
}

// tokenKey builds the idempotency-token key for one applied operation.
func tokenKey(endpoint string, edge, unit, attempt int) string {
	return fmt.Sprintf("%s/%d/%d/%d", endpoint, edge, unit, attempt)
}

// edgeParam parses and range-checks the "edge" query parameter, writing a
// 400 response on malformed, negative, or out-of-range values.
func edgeParam(w http.ResponseWriter, r *http.Request, nEdge int) (int, bool) {
	s := r.URL.Query().Get("edge")
	id, err := strconv.Atoi(s)
	if err != nil || id < 0 || id >= nEdge {
		http.Error(w, fmt.Sprintf("bad edge query parameter %q", s), http.StatusBadRequest)
		return 0, false
	}
	return id, true
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
