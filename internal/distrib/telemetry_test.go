package distrib

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/predictor"
)

// telemetryLineRe matches one valid Prometheus text-format line (the
// subset the obs writer emits).
var telemetryLineRe = regexp.MustCompile(`^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* .+` +
	`|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN))$`)

// TestFleetTelemetryAggregation pins the fleet-telemetry acceptance
// criterion: a loopback fleet behind a lossy transport converges, every
// edge's end-of-run client telemetry (requests, retries, latency) lands
// in GET /v1/stats with correct totals, and the coordinator's own
// /metrics endpoint serves valid Prometheus text that includes the
// middleware's per-endpoint series.
func TestFleetTelemetryAggregation(t *testing.T) {
	gp, base := buildProgram(t)
	profs := devProfiles(t, gp)
	const nEdge = 3
	opts := core.InstallOptions{
		Options: core.Options{
			QoSMin: base - 10, NCalibrate: 5, MaxIters: 150, StallLimit: 80,
			MaxConfigs: 12, Policy: core.KnobPolicy{AllowFP16: true}, Seed: 3,
			Model: predictor.Pi2,
		},
		Device:    device.NewTX2GPU(),
		Objective: core.MinimizeEnergy,
		NEdge:     nEdge,
	}
	coord, err := NewCoordinator(gp, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, nEdge)
	for i := 0; i < nEdge; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := &Edge{
				ID: i, BaseURL: srv.URL, Program: gp,
				Device: device.NewTX2GPU(), Seed: 11,
				RetryBase: time.Millisecond,
				// A lossy link forces client retries so the retry fields in
				// /v1/stats are exercised, not just present. Per-edge seeds
				// decorrelate the three fault schedules.
				Transport: NewFaultyTransport(FaultPlan{Seed: int64(100 + i), DropProb: 0.3}, nil),
			}
			_, errs[i] = e.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("edge %d: %v", i, err)
		}
	}

	cl := srv.Client()
	get := func(path string) []byte {
		t.Helper()
		resp, err := cl.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	var fs FleetStats
	if err := json.Unmarshal(get("/v1/stats"), &fs); err != nil {
		t.Fatalf("/v1/stats: %v", err)
	}
	if len(fs.Edges) != nEdge {
		t.Fatalf("/v1/stats has %d edges, want %d: %+v", len(fs.Edges), nEdge, fs.Edges)
	}
	var wantReq, wantRetry, wantTimeout, wantLat int64
	for id, e := range fs.Edges {
		if e.Requests <= 0 {
			t.Errorf("edge %s reported %d requests", id, e.Requests)
		}
		if e.Latency.Count != e.Requests {
			t.Errorf("edge %s latency count %d != requests %d", id, e.Latency.Count, e.Requests)
		}
		if e.Latency.P50 <= 0 || e.Latency.Max < e.Latency.P99 {
			t.Errorf("edge %s implausible latency summary: %+v", id, e.Latency)
		}
		wantReq += e.Requests
		wantRetry += e.Retries
		wantTimeout += e.Timeouts
		wantLat += e.Latency.Count
	}
	if fs.TotalRequests != wantReq || fs.TotalRetries != wantRetry || fs.TotalTimeouts != wantTimeout {
		t.Errorf("totals %d/%d/%d do not match per-edge sums %d/%d/%d",
			fs.TotalRequests, fs.TotalRetries, fs.TotalTimeouts, wantReq, wantRetry, wantTimeout)
	}
	if fs.TotalRetries < 1 {
		t.Error("lossy transport produced no retries; fault injection is not reaching the client")
	}
	if fs.EdgeLatency.Count != wantLat {
		t.Errorf("merged fleet latency count %d != per-edge sum %d", fs.EdgeLatency.Count, wantLat)
	}
	for _, path := range []string{"/v1/register", "/v1/profiles", "/v1/curve", "/v1/telemetry"} {
		ep, ok := fs.Endpoints[path]
		if !ok {
			t.Errorf("/v1/stats missing endpoint %s", path)
			continue
		}
		if ep.Requests <= 0 || ep.Latency.Count != ep.Requests {
			t.Errorf("endpoint %s: requests=%d latency.count=%d", path, ep.Requests, ep.Latency.Count)
		}
		if ep.ByClass["2xx"] <= 0 {
			t.Errorf("endpoint %s has no 2xx responses: %v", path, ep.ByClass)
		}
	}

	// The coordinator serves the process registry at /metrics with
	// Prometheus content negotiation, and a liveness probe at /healthz.
	prom := string(get("/metrics?format=prom"))
	for _, line := range strings.Split(strings.TrimRight(prom, "\n"), "\n") {
		if !telemetryLineRe.MatchString(line) {
			t.Errorf("invalid prometheus line from coordinator /metrics: %q", line)
		}
	}
	for _, want := range []string{
		"distrib_http_latency_seconds", "distrib_http_responses", "distrib_client_retries",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("coordinator /metrics missing %s", want)
		}
	}
	if body := strings.TrimSpace(string(get("/healthz"))); body != "ok" {
		t.Errorf("/healthz = %q, want ok", body)
	}
}

// TestTelemetryRejectsBadEdgeID pins validation on the telemetry upload.
func TestTelemetryRejectsBadEdgeID(t *testing.T) {
	gp, base := buildProgram(t)
	coord, err := NewCoordinator(gp, devProfiles(t, gp), core.InstallOptions{
		Options: core.Options{QoSMin: base - 10, Seed: 1},
		Device:  device.NewTX2GPU(),
		NEdge:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/telemetry", "application/json",
		strings.NewReader(`{"edge_id":7,"requests":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range telemetry edge id: status %d, want 400", resp.StatusCode)
	}
}
