package distrib

import (
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/predictor"
	"repro/internal/qos"
	"repro/internal/tensor"
)

func buildProgram(t testing.TB) (*core.GraphProgram, float64) {
	t.Helper()
	b := models.MustBuild("lenet", models.Scale{Images: 24, Width: 0.125, ImageNetSize: 32, Seed: 31})
	calib, test := b.Dataset.Split()
	gp, err := core.NewGraphProgram(b.Model.Graph, calib.Images, test.Images,
		qos.Accuracy{Labels: calib.Labels}, qos.Accuracy{Labels: test.Labels})
	if err != nil {
		t.Fatal(err)
	}
	gp.CalibMetricFor = func(lo, hi int) qos.Metric {
		return qos.Accuracy{Labels: calib.Labels[lo:hi]}
	}
	base := gp.Score(core.Calib, gp.BaselineOut(core.Calib))
	return gp, base
}

func devProfiles(t testing.TB, gp *core.GraphProgram) *predictor.Profiles {
	t.Helper()
	pol := core.KnobPolicy{AllowFP16: true}
	return core.CollectProfiles(gp, nil, func(op int) []approx.KnobID {
		return core.KnobsFor(gp, op, pol)
	}, tensor.NewRNG(7))
}

func TestFullProtocolOverHTTP(t *testing.T) {
	gp, base := buildProgram(t)
	profs := devProfiles(t, gp)
	const nEdge = 3
	opts := core.InstallOptions{
		Options: core.Options{
			QoSMin: base - 10, NCalibrate: 5, MaxIters: 150, StallLimit: 80,
			MaxConfigs: 12, Policy: core.KnobPolicy{AllowFP16: true}, Seed: 3,
			Model: predictor.Pi2,
		},
		Device:    device.NewTX2GPU(),
		Objective: core.MinimizeEnergy,
		NEdge:     nEdge,
	}
	coord, err := NewCoordinator(gp, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	curves := make([]*interface{}, 0)
	_ = curves
	results := make([]*errCurve, nEdge)
	for i := 0; i < nEdge; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := &Edge{
				ID: i, BaseURL: srv.URL, Program: gp,
				Device: device.NewTX2GPU(), Seed: 11,
			}
			c, err := e.Run()
			results[i] = &errCurve{c, err}
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("edge %d: %v", i, r.err)
		}
		if r.curve.Len() == 0 {
			t.Fatalf("edge %d received empty final curve", i)
		}
	}
	// Coordinator agrees with what edges fetched.
	final, ok := coord.FinalCurve()
	if !ok {
		t.Fatal("coordinator has no final curve")
	}
	if final.Len() != results[0].curve.Len() {
		t.Fatalf("curve length mismatch: %d vs %d", final.Len(), results[0].curve.Len())
	}
	// Every shipped point meets the QoS threshold (validated on shards).
	for _, pt := range final.Points {
		if pt.QoS <= opts.QoSMin {
			t.Errorf("shipped point below threshold: %v", pt.QoS)
		}
		if pt.Perf <= 0 {
			t.Errorf("bad Perf %v", pt.Perf)
		}
	}
}

type errCurve struct {
	curve interface{ Len() int }
	err   error
}

func TestHTTPMatchesInProcessInstallTune(t *testing.T) {
	// The HTTP transport and the goroutine-simulated fleet implement the
	// same protocol; with one edge (no sharding noise), both should find
	// feasible curves of the same character.
	gp, base := buildProgram(t)
	profs := devProfiles(t, gp)
	opts := core.InstallOptions{
		Options: core.Options{
			QoSMin: base - 10, NCalibrate: 5, MaxIters: 150, StallLimit: 80,
			MaxConfigs: 12, Policy: core.KnobPolicy{AllowFP16: true}, Seed: 3,
			Model: predictor.Pi2,
		},
		Device:    device.NewTX2GPU(),
		Objective: core.MinimizeEnergy,
		NEdge:     1,
	}
	inproc, err := core.InstallTune(gp, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(gp, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	e := &Edge{ID: 0, BaseURL: srv.URL, Program: gp, Device: device.NewTX2GPU(), Seed: 11}
	viaHTTP, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if inproc.Curve.Len() == 0 || viaHTTP.Len() == 0 {
		t.Fatalf("empty curves: in-process %d, http %d", inproc.Curve.Len(), viaHTTP.Len())
	}
}

func TestRegisterRejectsBadEdgeID(t *testing.T) {
	gp, base := buildProgram(t)
	coord, err := NewCoordinator(gp, devProfiles(t, gp), core.InstallOptions{
		Options: core.Options{QoSMin: base - 10, Seed: 1},
		Device:  device.NewTX2GPU(),
		NEdge:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	e := &Edge{ID: 99, BaseURL: srv.URL, Program: gp, Seed: 1}
	if _, err := e.Run(); err == nil {
		t.Fatal("out-of-range edge id must be rejected")
	}
}

func TestProfilesSerializationRoundTrip(t *testing.T) {
	gp, _ := buildProgram(t)
	profs := devProfiles(t, gp)
	data, err := profs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := predictor.UnmarshalProfiles(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.BaseQoS != profs.BaseQoS {
		t.Errorf("BaseQoS %v != %v", back.BaseQoS, profs.BaseQoS)
	}
	if len(back.DeltaQ) != len(profs.DeltaQ) || len(back.DeltaT) != len(profs.DeltaT) {
		t.Fatalf("table sizes changed: %d/%d vs %d/%d",
			len(back.DeltaQ), len(back.DeltaT), len(profs.DeltaQ), len(profs.DeltaT))
	}
	for k, v := range profs.DeltaQ {
		if back.DeltaQ[k] != v {
			t.Fatalf("ΔQ[%v] changed: %v vs %v", k, back.DeltaQ[k], v)
		}
	}
	for k, v := range profs.DeltaT {
		bt := back.DeltaT[k]
		if bt == nil || !tensor.Equal(bt, v, 0) {
			t.Fatalf("ΔT[%v] changed", k)
		}
	}
	if !tensor.Equal(back.BaseOut, profs.BaseOut, 0) {
		t.Fatal("BaseOut changed")
	}
}

func TestProfilesUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := predictor.UnmarshalProfiles([]byte("nope")); err == nil {
		t.Fatal("garbage must not parse")
	}
	if _, err := predictor.UnmarshalProfiles([]byte(`{"delta_q":[{"op":0,"knob":9999,"dq":-1}]}`)); err == nil {
		t.Fatal("unknown knob must be rejected")
	}
	if _, err := predictor.UnmarshalProfiles([]byte(`{"base_out":{"dims":[2,2],"data":"AAAA"}}`)); err == nil {
		t.Fatal("mismatched tensor payload must be rejected")
	}
}
