package distrib

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/predictor"
	"repro/internal/qos"
	"repro/internal/tensor"
)

func buildProgram(t testing.TB) (*core.GraphProgram, float64) {
	t.Helper()
	b := models.MustBuild("lenet", models.Scale{Images: 24, Width: 0.125, ImageNetSize: 32, Seed: 31})
	calib, test := b.Dataset.Split()
	gp, err := core.NewGraphProgram(b.Model.Graph, calib.Images, test.Images,
		qos.Accuracy{Labels: calib.Labels}, qos.Accuracy{Labels: test.Labels})
	if err != nil {
		t.Fatal(err)
	}
	gp.CalibMetricFor = func(lo, hi int) qos.Metric {
		return qos.Accuracy{Labels: calib.Labels[lo:hi]}
	}
	base := gp.Score(core.Calib, gp.BaselineOut(core.Calib))
	return gp, base
}

func devProfiles(t testing.TB, gp *core.GraphProgram) *predictor.Profiles {
	t.Helper()
	pol := core.KnobPolicy{AllowFP16: true}
	return core.CollectProfiles(gp, nil, func(op int) []approx.KnobID {
		return core.KnobsFor(gp, op, pol)
	}, tensor.NewRNG(7))
}

func TestFullProtocolOverHTTP(t *testing.T) {
	gp, base := buildProgram(t)
	profs := devProfiles(t, gp)
	const nEdge = 3
	opts := core.InstallOptions{
		Options: core.Options{
			QoSMin: base - 10, NCalibrate: 5, MaxIters: 150, StallLimit: 80,
			MaxConfigs: 12, Policy: core.KnobPolicy{AllowFP16: true}, Seed: 3,
			Model: predictor.Pi2,
		},
		Device:    device.NewTX2GPU(),
		Objective: core.MinimizeEnergy,
		NEdge:     nEdge,
	}
	coord, err := NewCoordinator(gp, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	results := make([]*errCurve, nEdge)
	for i := 0; i < nEdge; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e := &Edge{
				ID: i, BaseURL: srv.URL, Program: gp,
				Device: device.NewTX2GPU(), Seed: 11,
			}
			c, err := e.Run(ctx)
			results[i] = &errCurve{c, err}
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("edge %d: %v", i, r.err)
		}
		if r.curve.Len() == 0 {
			t.Fatalf("edge %d received empty final curve", i)
		}
	}
	// Coordinator agrees with what edges fetched.
	final, ok := coord.FinalCurve()
	if !ok {
		t.Fatal("coordinator has no final curve")
	}
	if final.Len() != results[0].curve.Len() {
		t.Fatalf("curve length mismatch: %d vs %d", final.Len(), results[0].curve.Len())
	}
	// Every shipped point meets the QoS threshold (validated on shards).
	for _, pt := range final.Points {
		if pt.QoS <= opts.QoSMin {
			t.Errorf("shipped point below threshold: %v", pt.QoS)
		}
		if pt.Perf <= 0 {
			t.Errorf("bad Perf %v", pt.Perf)
		}
	}
}

type errCurve struct {
	curve interface{ Len() int }
	err   error
}

func TestHTTPMatchesInProcessInstallTune(t *testing.T) {
	// The HTTP transport and the goroutine-simulated fleet implement the
	// same protocol; with one edge (no sharding noise), both should find
	// feasible curves of the same character.
	gp, base := buildProgram(t)
	profs := devProfiles(t, gp)
	opts := core.InstallOptions{
		Options: core.Options{
			QoSMin: base - 10, NCalibrate: 5, MaxIters: 150, StallLimit: 80,
			MaxConfigs: 12, Policy: core.KnobPolicy{AllowFP16: true}, Seed: 3,
			Model: predictor.Pi2,
		},
		Device:    device.NewTX2GPU(),
		Objective: core.MinimizeEnergy,
		NEdge:     1,
	}
	inproc, err := core.InstallTune(gp, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewCoordinator(gp, profs, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	e := &Edge{ID: 0, BaseURL: srv.URL, Program: gp, Device: device.NewTX2GPU(), Seed: 11}
	viaHTTP, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if inproc.Curve.Len() == 0 || viaHTTP.Len() == 0 {
		t.Fatalf("empty curves: in-process %d, http %d", inproc.Curve.Len(), viaHTTP.Len())
	}
}

func TestRegisterRejectsBadEdgeID(t *testing.T) {
	gp, base := buildProgram(t)
	coord, err := NewCoordinator(gp, devProfiles(t, gp), core.InstallOptions{
		Options: core.Options{QoSMin: base - 10, Seed: 1},
		Device:  device.NewTX2GPU(),
		NEdge:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	e := &Edge{ID: 99, BaseURL: srv.URL, Program: gp, Seed: 1}
	if _, err := e.Run(context.Background()); err == nil {
		t.Fatal("out-of-range edge id must be rejected")
	}
}

// TestHandlersRejectBogusIdentifiers pins the protocol-validation fixes:
// out-of-range edge/shard/slice IDs on the upload endpoints and
// malformed or negative edge query parameters on the poll endpoints must
// be rejected, never silently counted toward convergence.
func TestHandlersRejectBogusIdentifiers(t *testing.T) {
	gp, base := buildProgram(t)
	coord, err := NewCoordinator(gp, devProfiles(t, gp), core.InstallOptions{
		Options: core.Options{QoSMin: base - 10, Seed: 1},
		Device:  device.NewTX2GPU(),
		NEdge:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	cl := srv.Client()

	post := func(path, body string) int {
		t.Helper()
		resp, err := cl.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	get := func(path string) int {
		t.Helper()
		resp, err := cl.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	profs, err := devProfiles(t, gp).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		code int
	}{
		{"profiles edge out of range", post("/v1/profiles", `{"edge_id":7,"profiles":`+string(profs)+`}`)},
		{"profiles negative edge", post("/v1/profiles", `{"edge_id":-1,"profiles":`+string(profs)+`}`)},
		{"profiles shard out of range", post("/v1/profiles", `{"edge_id":0,"shard":5,"profiles":`+string(profs)+`}`)},
		{"validated edge out of range", post("/v1/validated", `{"edge_id":9,"points":[]}`)},
		{"validated slice out of range", post("/v1/validated", `{"edge_id":0,"slice":-2,"points":[]}`)},
		{"assignments missing edge", get("/v1/assignments")},
		{"assignments malformed edge", get("/v1/assignments?edge=12abc")},
		{"assignments negative edge", get("/v1/assignments?edge=-1")},
		{"assignments out-of-range edge", get("/v1/assignments?edge=2")},
		{"curve malformed edge", get("/v1/curve?edge=x")},
	}
	for _, tc := range cases {
		if tc.code != 400 {
			t.Errorf("%s: got status %d, want 400", tc.name, tc.code)
		}
	}
	// A bogus upload must not have created shard or slice state.
	if got, _ := coord.FinalCurve(); got != nil {
		t.Fatal("bogus uploads produced a final curve")
	}
	coord.mu.Lock()
	if len(coord.shards) != 0 || len(coord.validated) != 0 {
		t.Errorf("bogus uploads leaked state: %d shards, %d validated", len(coord.shards), len(coord.validated))
	}
	coord.mu.Unlock()
}

// TestRegisterIsIdempotent pins the registered-set fix: re-registering
// the same edge (a legitimate retry) must not double-count.
func TestRegisterIsIdempotent(t *testing.T) {
	gp, base := buildProgram(t)
	coord, err := NewCoordinator(gp, devProfiles(t, gp), core.InstallOptions{
		Options: core.Options{QoSMin: base - 10, Seed: 1},
		Device:  device.NewTX2GPU(),
		NEdge:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	cl := srv.Client()
	for i := 0; i < 3; i++ {
		resp, err := cl.Post(srv.URL+"/v1/register", "application/json", strings.NewReader(`{"edge_id":0,"attempt":1}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("register retry %d: status %d", i, resp.StatusCode)
		}
	}
	if got := coord.Registered(); got != 1 {
		t.Fatalf("3 retried registrations counted as %d edges, want 1", got)
	}
}

func TestProfilesSerializationRoundTrip(t *testing.T) {
	gp, _ := buildProgram(t)
	profs := devProfiles(t, gp)
	data, err := profs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := predictor.UnmarshalProfiles(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.BaseQoS != profs.BaseQoS {
		t.Errorf("BaseQoS %v != %v", back.BaseQoS, profs.BaseQoS)
	}
	if len(back.DeltaQ) != len(profs.DeltaQ) || len(back.DeltaT) != len(profs.DeltaT) {
		t.Fatalf("table sizes changed: %d/%d vs %d/%d",
			len(back.DeltaQ), len(back.DeltaT), len(profs.DeltaQ), len(profs.DeltaT))
	}
	for k, v := range profs.DeltaQ {
		if back.DeltaQ[k] != v {
			t.Fatalf("ΔQ[%v] changed: %v vs %v", k, back.DeltaQ[k], v)
		}
	}
	for k, v := range profs.DeltaT {
		bt := back.DeltaT[k]
		if bt == nil || !tensor.Equal(bt, v, 0) {
			t.Fatalf("ΔT[%v] changed", k)
		}
	}
	if !tensor.Equal(back.BaseOut, profs.BaseOut, 0) {
		t.Fatal("BaseOut changed")
	}
}

func TestProfilesUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := predictor.UnmarshalProfiles([]byte("nope")); err == nil {
		t.Fatal("garbage must not parse")
	}
	if _, err := predictor.UnmarshalProfiles([]byte(`{"delta_q":[{"op":0,"knob":9999,"dq":-1}]}`)); err == nil {
		t.Fatal("unknown knob must be rejected")
	}
	if _, err := predictor.UnmarshalProfiles([]byte(`{"base_out":{"dims":[2,2],"data":"AAAA"}}`)); err == nil {
		t.Fatal("mismatched tensor payload must be rejected")
	}
}
