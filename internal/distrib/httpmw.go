package distrib

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// statusRecorder captures the status code a handler writes so the
// middleware can account responses by status class. Handlers that never
// call WriteHeader implicitly answer 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// statusClass renders a status code as its Prometheus-style class label
// ("2xx", "4xx", ...).
func statusClass(code int) string { return fmt.Sprintf("%dxx", code/100) }

// httpStats is the coordinator-local mirror of the HTTP middleware
// telemetry. The global obs metrics aggregate across every coordinator
// in the process (useful for scraping); this mirror is scoped to one
// coordinator instance so GET /v1/stats describes exactly one fleet run.
type httpStats struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
}

type endpointStats struct {
	requests int64
	byClass  map[string]int64
	lat      *obs.QHistogram
}

func (s *httpStats) endpoint(path string) *endpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.endpoints == nil {
		s.endpoints = make(map[string]*endpointStats)
	}
	ep := s.endpoints[path]
	if ep == nil {
		ep = &endpointStats{byClass: make(map[string]int64), lat: obs.NewQHist()}
		s.endpoints[path] = ep
	}
	return ep
}

func (s *httpStats) record(ep *endpointStats, seconds float64, status int) {
	ep.lat.Observe(seconds)
	s.mu.Lock()
	ep.requests++
	ep.byClass[statusClass(status)]++
	s.mu.Unlock()
}

// snapshot renders the per-endpoint stats in wire form, with paths
// sorted for deterministic iteration by callers that range in order.
func (s *httpStats) snapshot() map[string]EndpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]EndpointStats, len(s.endpoints))
	paths := make([]string, 0, len(s.endpoints))
	for p := range s.endpoints {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		ep := s.endpoints[p]
		classes := make(map[string]int64, len(ep.byClass))
		for k, v := range ep.byClass {
			classes[k] = v
		}
		out[p] = EndpointStats{
			Requests: ep.requests,
			ByClass:  classes,
			Latency:  ep.lat.Snapshot().Summary(),
		}
	}
	return out
}

// instrument wraps one coordinator endpoint with the telemetry
// middleware: a per-endpoint latency quantile histogram, an in-flight
// gauge, and status-class response counters — each mirrored into both
// the process-wide obs registry (for /metrics scrapes) and the
// coordinator-local stats (for /v1/stats).
func (c *Coordinator) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	lat := mHTTPLatency.With(path)
	inflight := gHTTPInflight.With(path)
	local := c.stats.endpoint(path)
	return func(w http.ResponseWriter, r *http.Request) {
		inflight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		seconds := time.Since(start).Seconds()
		inflight.Add(-1)
		lat.Observe(seconds)
		mHTTPResponses.With(path + " " + statusClass(rec.status)).Inc()
		c.stats.record(local, seconds, rec.status)
	}
}

// Fleet-telemetry wire types.

// edgeTelemetryReq is the best-effort end-of-run upload each edge sends
// to POST /v1/telemetry: client-side request/retry/timeout counts and
// the full (mergeable) latency snapshot.
type edgeTelemetryReq struct {
	EdgeID   int            `json:"edge_id"`
	Requests int64          `json:"requests"`
	Retries  int64          `json:"retries"`
	Timeouts int64          `json:"timeouts"`
	Latency  *obs.QSnapshot `json:"latency,omitempty"`
}

// EdgeStats is one edge's client-side view in the fleet stats.
type EdgeStats struct {
	Requests int64        `json:"requests"`
	Retries  int64        `json:"retries"`
	Timeouts int64        `json:"timeouts"`
	Latency  obs.QSummary `json:"latency"`
}

// EndpointStats is the coordinator-side view of one protocol endpoint.
type EndpointStats struct {
	Requests int64            `json:"requests"`
	ByClass  map[string]int64 `json:"by_class"`
	Latency  obs.QSummary     `json:"latency"`
}

// FleetStats is the GET /v1/stats response: per-edge client telemetry
// with fleet-wide totals (edge latency snapshots merged exactly, not
// approximated from summaries), plus per-endpoint server-side stats.
type FleetStats struct {
	Edges         map[string]EdgeStats     `json:"edges"`
	TotalRequests int64                    `json:"total_requests"`
	TotalRetries  int64                    `json:"total_retries"`
	TotalTimeouts int64                    `json:"total_timeouts"`
	EdgeLatency   obs.QSummary             `json:"edge_latency"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
}

// handleTelemetry stores one edge's end-of-run client telemetry (last
// write per edge wins, so a restarted edge reports its final state).
func (c *Coordinator) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	var req edgeTelemetryReq
	if !decode(w, r, &req) {
		return
	}
	if req.EdgeID < 0 || req.EdgeID >= c.opts.NEdge {
		http.Error(w, fmt.Sprintf("edge id %d out of range [0,%d)", req.EdgeID, c.opts.NEdge), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.touchLocked(req.EdgeID)
	c.edgeTel[req.EdgeID] = req
	c.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleStats serves the aggregated fleet telemetry.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	tel := make([]edgeTelemetryReq, 0, len(c.edgeTel))
	for _, t := range c.edgeTel {
		tel = append(tel, t)
	}
	c.mu.Unlock()
	sort.Slice(tel, func(i, j int) bool { return tel[i].EdgeID < tel[j].EdgeID })

	fs := FleetStats{
		Edges:     make(map[string]EdgeStats, len(tel)),
		Endpoints: c.stats.snapshot(),
	}
	merged := obs.NewQHist().Snapshot()
	for _, t := range tel {
		es := EdgeStats{Requests: t.Requests, Retries: t.Retries, Timeouts: t.Timeouts}
		if t.Latency != nil {
			es.Latency = t.Latency.Summary()
			merged.Merge(t.Latency)
		}
		fs.Edges[fmt.Sprintf("%d", t.EdgeID)] = es
		fs.TotalRequests += t.Requests
		fs.TotalRetries += t.Retries
		fs.TotalTimeouts += t.Timeouts
	}
	fs.EdgeLatency = merged.Summary()
	writeJSON(w, fs)
}
