package distrib

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// statusRecorder captures the status code a handler writes so the
// middleware can account responses by status class. Handlers that never
// call WriteHeader implicitly answer 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// statusClass renders a status code as its Prometheus-style class label
// ("2xx", "4xx", ...).
func statusClass(code int) string { return fmt.Sprintf("%dxx", code/100) }

// httpStats is the coordinator-local mirror of the HTTP middleware
// telemetry. The global obs metrics aggregate across every coordinator
// in the process (useful for scraping); this mirror is scoped to one
// coordinator instance so GET /v1/stats describes exactly one fleet run.
type httpStats struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
}

type endpointStats struct {
	requests int64
	byClass  map[string]int64
	lat      *obs.QHistogram
}

func (s *httpStats) endpoint(path string) *endpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.endpoints == nil {
		s.endpoints = make(map[string]*endpointStats)
	}
	ep := s.endpoints[path]
	if ep == nil {
		ep = &endpointStats{byClass: make(map[string]int64), lat: obs.NewQHist()}
		s.endpoints[path] = ep
	}
	return ep
}

func (s *httpStats) record(ep *endpointStats, seconds float64, status int) {
	ep.lat.Observe(seconds)
	s.mu.Lock()
	ep.requests++
	ep.byClass[statusClass(status)]++
	s.mu.Unlock()
}

// snapshot renders the per-endpoint stats in wire form, with paths
// sorted for deterministic iteration by callers that range in order.
func (s *httpStats) snapshot() map[string]EndpointStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]EndpointStats, len(s.endpoints))
	paths := make([]string, 0, len(s.endpoints))
	for p := range s.endpoints {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		ep := s.endpoints[p]
		classes := make(map[string]int64, len(ep.byClass))
		for k, v := range ep.byClass {
			classes[k] = v
		}
		out[p] = EndpointStats{
			Requests: ep.requests,
			ByClass:  classes,
			Latency:  ep.lat.Snapshot().Summary(),
		}
	}
	return out
}

// instrument wraps one coordinator endpoint with the telemetry
// middleware: a per-endpoint latency quantile histogram, an in-flight
// gauge, and status-class response counters — each mirrored into both
// the process-wide obs registry (for /metrics scrapes) and the
// coordinator-local stats (for /v1/stats).
func (c *Coordinator) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	lat := mHTTPLatency.With(path)
	inflight := gHTTPInflight.With(path)
	local := c.stats.endpoint(path)
	return func(w http.ResponseWriter, r *http.Request) {
		inflight.Add(1)
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		seconds := time.Since(start).Seconds()
		inflight.Add(-1)
		lat.Observe(seconds)
		mHTTPResponses.With(path + " " + statusClass(rec.status)).Inc()
		c.stats.record(local, seconds, rec.status)
		if sc := obs.Extract(r.Header); sc.Valid() {
			c.recordSpan(sc, path, start, seconds, rec.status)
		}
	}
}

// maxCoordSpans bounds the coordinator-side trace ring; once full the
// oldest record is overwritten, so a long-lived coordinator keeps the
// most recent fleet activity.
const maxCoordSpans = 512

// recordSpan stores the server-side span of one traced request: the
// caller's trace ID, the caller's span as parent, and a span ID minted
// here — no tracer required on the coordinator.
func (c *Coordinator) recordSpan(sc obs.SpanContext, path string, start time.Time, seconds float64, status int) {
	rec := obs.SpanRecord{
		Name:         "coord:" + path,
		Start:        start.Sub(c.traceBase).Nanoseconds(),
		Dur:          int64(seconds * 1e9),
		TraceID:      sc.TraceID,
		SpanID:       c.spanIDs.SpanID(),
		ParentSpanID: sc.SpanID,
		Attrs:        map[string]any{"status": status},
	}
	rec.End = rec.Start + rec.Dur
	c.traceMu.Lock()
	if len(c.coordSpans) < maxCoordSpans {
		c.coordSpans = append(c.coordSpans, rec)
	} else {
		c.coordSpans[c.spanHead] = rec
		c.spanHead = (c.spanHead + 1) % maxCoordSpans
	}
	c.traceMu.Unlock()
}

// Fleet-telemetry wire types.

// edgeTelemetryReq is the best-effort end-of-run upload each edge sends
// to POST /v1/telemetry: client-side request/retry/timeout counts and
// the full (mergeable) latency snapshot.
type edgeTelemetryReq struct {
	EdgeID   int            `json:"edge_id"`
	Requests int64          `json:"requests"`
	Retries  int64          `json:"retries"`
	Timeouts int64          `json:"timeouts"`
	Latency  *obs.QSnapshot `json:"latency,omitempty"`
	// Spans are the run's completed client-side span records (bounded at
	// the edge), keyed into FleetStats.Traces by trace ID.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// EdgeStats is one edge's client-side view in the fleet stats.
type EdgeStats struct {
	Requests int64        `json:"requests"`
	Retries  int64        `json:"retries"`
	Timeouts int64        `json:"timeouts"`
	Latency  obs.QSummary `json:"latency"`
}

// EndpointStats is the coordinator-side view of one protocol endpoint.
type EndpointStats struct {
	Requests int64            `json:"requests"`
	ByClass  map[string]int64 `json:"by_class"`
	Latency  obs.QSummary     `json:"latency"`
}

// FleetStats is the GET /v1/stats response: per-edge client telemetry
// with fleet-wide totals (edge latency snapshots merged exactly, not
// approximated from summaries), plus per-endpoint server-side stats.
type FleetStats struct {
	Edges         map[string]EdgeStats     `json:"edges"`
	TotalRequests int64                    `json:"total_requests"`
	TotalRetries  int64                    `json:"total_retries"`
	TotalTimeouts int64                    `json:"total_timeouts"`
	EdgeLatency   obs.QSummary             `json:"edge_latency"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
	// Traces assembles the cross-process traces the coordinator knows
	// about — client-side spans uploaded with edge telemetry merged with
	// the coordinator's own server-side records — keyed by trace ID and
	// sorted by start offset within each trace.
	Traces map[string][]obs.SpanRecord `json:"traces,omitempty"`
}

// handleTelemetry stores one edge's end-of-run client telemetry (last
// write per edge wins, so a restarted edge reports its final state).
func (c *Coordinator) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	var req edgeTelemetryReq
	if !decode(w, r, &req) {
		return
	}
	if req.EdgeID < 0 || req.EdgeID >= c.opts.NEdge {
		http.Error(w, fmt.Sprintf("edge id %d out of range [0,%d)", req.EdgeID, c.opts.NEdge), http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	c.touchLocked(req.EdgeID)
	c.edgeTel[req.EdgeID] = req
	c.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleStats serves the aggregated fleet telemetry.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	tel := make([]edgeTelemetryReq, 0, len(c.edgeTel))
	for _, t := range c.edgeTel {
		tel = append(tel, t)
	}
	c.mu.Unlock()
	sort.Slice(tel, func(i, j int) bool { return tel[i].EdgeID < tel[j].EdgeID })

	fs := FleetStats{
		Edges:     make(map[string]EdgeStats, len(tel)),
		Endpoints: c.stats.snapshot(),
	}
	merged := obs.NewQHist().Snapshot()
	for _, t := range tel {
		es := EdgeStats{Requests: t.Requests, Retries: t.Retries, Timeouts: t.Timeouts}
		if t.Latency != nil {
			es.Latency = t.Latency.Summary()
			merged.Merge(t.Latency)
		}
		fs.Edges[fmt.Sprintf("%d", t.EdgeID)] = es
		fs.TotalRequests += t.Requests
		fs.TotalRetries += t.Retries
		fs.TotalTimeouts += t.Timeouts
	}
	fs.EdgeLatency = merged.Summary()
	fs.Traces = c.assembleTraces(tel)
	writeJSON(w, fs)
}

// assembleTraces merges the coordinator's server-side span records with
// the client-side spans each edge uploaded, grouped by trace ID. Spans
// within a trace are sorted by start offset (client and server clocks
// have different bases, so ordering is per-process best-effort; span
// parentage carries the authoritative structure).
func (c *Coordinator) assembleTraces(tel []edgeTelemetryReq) map[string][]obs.SpanRecord {
	c.traceMu.Lock()
	coord := make([]obs.SpanRecord, len(c.coordSpans))
	copy(coord, c.coordSpans)
	c.traceMu.Unlock()

	traces := make(map[string][]obs.SpanRecord)
	for _, rec := range coord {
		tid := rec.TraceID.String()
		traces[tid] = append(traces[tid], rec)
	}
	for _, t := range tel {
		for _, rec := range t.Spans {
			if rec.TraceID.IsZero() {
				continue
			}
			tid := rec.TraceID.String()
			traces[tid] = append(traces[tid], rec)
		}
	}
	for _, spans := range traces {
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	}
	if len(traces) == 0 {
		return nil
	}
	return traces
}
