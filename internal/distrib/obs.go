package distrib

import "repro/internal/obs"

// Fault-tolerance telemetry for the distributed install-time protocol:
// client-side retries and timeouts, coordinator-side lease expirations,
// work reassignments, and idempotency-layer duplicate handling.
var (
	mClientRetries    = obs.NewCounter("distrib.client_retries")
	mClientTimeouts   = obs.NewCounter("distrib.client_timeouts")
	mLeaseExpirations = obs.NewCounter("distrib.lease_expirations")
	mReRegistrations  = obs.NewCounter("distrib.reregistrations")
	mReassignedShards = obs.NewCounter("distrib.reassigned_shards")
	mReassignedSlices = obs.NewCounter("distrib.reassigned_slices")
	mDupRequests      = obs.NewCounter("distrib.duplicate_requests")
	mRedundantUploads = obs.NewCounter("distrib.redundant_uploads")
	mFaultsInjected   = obs.NewCounter("distrib.faults_injected")
)

// HTTP middleware telemetry (httpmw.go): per-endpoint response counts by
// status class, in-flight request gauges, and latency quantile
// histograms, each keyed by endpoint path.
var (
	mHTTPResponses = obs.NewCounterVec("distrib.http_responses")
	gHTTPInflight  = obs.NewGaugeVec("distrib.http_inflight")
	mHTTPLatency   = obs.NewQHistVec("distrib.http_latency_seconds")
)
