package distrib

import "repro/internal/obs"

// Fault-tolerance telemetry for the distributed install-time protocol:
// client-side retries and timeouts, coordinator-side lease expirations,
// work reassignments, and idempotency-layer duplicate handling.
var (
	mClientRetries    = obs.NewCounter("distrib.client_retries")
	mClientTimeouts   = obs.NewCounter("distrib.client_timeouts")
	mLeaseExpirations = obs.NewCounter("distrib.lease_expirations")
	mReRegistrations  = obs.NewCounter("distrib.reregistrations")
	mReassignedShards = obs.NewCounter("distrib.reassigned_shards")
	mReassignedSlices = obs.NewCounter("distrib.reassigned_slices")
	mDupRequests      = obs.NewCounter("distrib.duplicate_requests")
	mRedundantUploads = obs.NewCounter("distrib.redundant_uploads")
	mFaultsInjected   = obs.NewCounter("distrib.faults_injected")
)
