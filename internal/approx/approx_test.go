package approx

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensorops"
)

func TestKnobCountsMatchPaper(t *testing.T) {
	// §2.3: 63 knobs per convolution (with PROMISE), 8 per reduction,
	// 2 for other ops. Development-time (hardware-independent) conv space
	// is 56 = 9*2 + 18*2 + 2.
	if got := len(KnobsFor(OpConv, true)); got != 63 {
		t.Errorf("conv knobs with hardware = %d, want 63", got)
	}
	if got := len(KnobsFor(OpConv, false)); got != 56 {
		t.Errorf("conv knobs hardware-independent = %d, want 56", got)
	}
	if got := len(KnobsFor(OpReduce, false)); got != 8 {
		t.Errorf("reduce knobs = %d, want 8", got)
	}
	if got := len(KnobsFor(OpOther, false)); got != 2 {
		t.Errorf("other knobs = %d, want 2", got)
	}
	if got := len(KnobsFor(OpMatMul, true)); got != 9 {
		t.Errorf("matmul knobs with hardware = %d, want 9 (2 + 7 PROMISE)", got)
	}
}

func TestKnobIDsUniqueAndResolvable(t *testing.T) {
	seen := make(map[KnobID]bool)
	for _, class := range []OpClass{OpConv, OpMatMul, OpReduce, OpOther} {
		for _, id := range KnobsFor(class, true) {
			k, ok := Lookup(id)
			if !ok {
				t.Fatalf("knob %d in set but not in registry", id)
			}
			if k.ID != id {
				t.Fatalf("knob %d has mismatched ID field %d", id, k.ID)
			}
			seen[id] = true
		}
	}
	if !seen[KnobFP32] || !seen[KnobFP16] {
		t.Error("baseline knobs missing from sets")
	}
}

func TestBaselineKnobIsZero(t *testing.T) {
	// §2.1: "A zero value denotes no approximation."
	k := MustLookup(0)
	if !k.IsBaseline() || k.Kind != KindBaseline {
		t.Fatalf("knob 0 = %+v, want FP32 baseline", k)
	}
}

func TestKnobConstructors(t *testing.T) {
	k := MustLookup(SamplingKnob(3, 2, tensorops.FP16))
	if k.Kind != KindSampling || k.Stride != 3 || k.Offset != 2 || k.Prec != tensorops.FP16 {
		t.Fatalf("SamplingKnob resolved to %+v", k)
	}
	p := MustLookup(PerforationKnob(tensorops.PerfCols, 4, 1, tensorops.FP32))
	if p.Kind != KindPerforation || p.Dir != tensorops.PerfCols || p.Stride != 4 || p.Offset != 1 {
		t.Fatalf("PerforationKnob resolved to %+v", p)
	}
	r := MustLookup(ReduceSamplingKnob(1, tensorops.FP32))
	if r.Kind != KindReduceSampling || r.RatioNum != 2 || r.RatioDen != 5 {
		t.Fatalf("ReduceSamplingKnob(1) resolved to %+v (want 40%% = 2/5)", r)
	}
	pr := MustLookup(PromiseKnob(5))
	if pr.Kind != KindPromise || pr.Level != 5 {
		t.Fatalf("PromiseKnob(5) resolved to %+v", pr)
	}
}

func TestPromiseKnobRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PromiseKnob(8) should panic")
		}
	}()
	PromiseKnob(8)
}

func TestHardwareIndependence(t *testing.T) {
	for _, id := range KnobsFor(OpConv, true) {
		k := MustLookup(id)
		wantHWIndep := k.Kind != KindPromise
		if k.HardwareIndependent() != wantHWIndep {
			t.Errorf("knob %s: HardwareIndependent = %v", k.Name(), k.HardwareIndependent())
		}
	}
}

func TestCostFactorsPaperExample(t *testing.T) {
	// §3.4: FP16 50% filter sampling has Rm = 4 and Rc = 2.
	rc, rm := CostFactors(SamplingKnob(2, 0, tensorops.FP16))
	if rc != 2 || rm != 4 {
		t.Fatalf("FP16 samp-50%%: Rc=%v Rm=%v, want 2 and 4", rc, rm)
	}
	rc, rm = CostFactors(KnobFP32)
	if rc != 1 || rm != 1 {
		t.Fatalf("baseline: Rc=%v Rm=%v, want 1 and 1", rc, rm)
	}
	rc, rm = CostFactors(KnobFP16)
	if rc != 1 || rm != 2 {
		t.Fatalf("fp16: Rc=%v Rm=%v, want 1 and 2", rc, rm)
	}
}

// Property: all cost factors are >= 1 (approximations never add work) and
// more aggressive strides never reduce the factor within a family.
func TestCostFactorsMonotone(t *testing.T) {
	for _, id := range KnobsFor(OpConv, true) {
		rc, rm := CostFactors(id)
		if rc < 1 || rm < 1 {
			t.Errorf("knob %d: factors below 1: Rc=%v Rm=%v", id, rc, rm)
		}
	}
	// stride 2 (skip 1/2) must save more than stride 4 (skip 1/4)
	rc2, _ := CostFactors(SamplingKnob(2, 0, tensorops.FP32))
	rc4, _ := CostFactors(SamplingKnob(4, 0, tensorops.FP32))
	if rc2 <= rc4 {
		t.Errorf("samp-50%% Rc (%v) should exceed samp-25%% Rc (%v)", rc2, rc4)
	}
}

func TestSearchSpaceSize(t *testing.T) {
	// 5 convs + 1 matmul ≈ AlexNet: 56^5 * 2 ≈ 1.1e9 (paper reports 5e8
	// for its op mix; order of magnitude is what matters).
	classes := []OpClass{OpConv, OpConv, OpConv, OpConv, OpConv, OpMatMul}
	size := SearchSpaceSize(classes, false)
	if size < 1e8 || size > 1e10 {
		t.Errorf("search space = %g, want ~1e9", size)
	}
	if s2 := SearchSpaceSize(classes, true); s2 <= size {
		t.Error("hardware knobs must enlarge the space")
	}
}

func TestConfigBasics(t *testing.T) {
	c := NewBaseline(3)
	if c.Knob(0) != KnobFP32 || c.Knob(99) != KnobFP32 {
		t.Fatal("baseline/default knob should be FP32")
	}
	c[1] = KnobFP16
	d := c.Clone()
	d[1] = KnobFP32
	if c.Knob(1) != KnobFP16 {
		t.Fatal("Clone not deep")
	}
	if c.Equal(d, 3) {
		t.Fatal("configs should differ")
	}
	if !c.Equal(c.Clone(), 3) {
		t.Fatal("config should equal its clone")
	}
}

func TestConfigKeyDistinguishes(t *testing.T) {
	a := Config{0: KnobFP16, 1: KnobFP32}
	b := Config{0: KnobFP32, 1: KnobFP16}
	if a.Key(2) == b.Key(2) {
		t.Fatal("distinct configs share a key")
	}
	if a.Key(2) != a.Clone().Key(2) {
		t.Fatal("key not canonical")
	}
}

func TestConfigGroupCounts(t *testing.T) {
	c := Config{
		0: KnobFP16,
		1: KnobFP16,
		2: SamplingKnob(2, 0, tensorops.FP32),
		3: SamplingKnob(2, 1, tensorops.FP16), // same group, different offset/prec
		4: PerforationKnob(tensorops.PerfRows, 3, 0, tensorops.FP32),
		5: KnobFP32, // baseline not counted
	}
	got := c.GroupCounts()
	if got["FP16"] != 2 || got["samp-50%"] != 2 || got["perf-33%"] != 1 {
		t.Fatalf("GroupCounts = %v", got)
	}
	s := c.FormatGroupCounts()
	if s == "" || s == "baseline" {
		t.Fatalf("FormatGroupCounts = %q", s)
	}
}

// Property: JSON round-trip preserves any configuration over valid knobs.
func TestConfigJSONRoundTrip(t *testing.T) {
	knobs := KnobsFor(OpConv, true)
	f := func(picks []uint8) bool {
		c := make(Config, len(picks))
		for i, p := range picks {
			c[i] = knobs[int(p)%len(knobs)]
		}
		data, err := json.Marshal(c)
		if err != nil {
			return false
		}
		var back Config
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return back.Equal(c, len(picks))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConfigJSONRejectsUnknownKnob(t *testing.T) {
	var c Config
	if err := json.Unmarshal([]byte(`{"0": 999}`), &c); err == nil {
		t.Fatal("unknown knob id must fail to deserialize")
	}
}

func TestKnobNames(t *testing.T) {
	cases := []struct {
		id   KnobID
		want string
	}{
		{KnobFP32, "fp32"},
		{KnobFP16, "fp16"},
		{SamplingKnob(2, 0, tensorops.FP32), "samp-50%(o0)"},
		{PromiseKnob(3), "promise-P3"},
	}
	for _, c := range cases {
		if got := MustLookup(c.id).Name(); got != c.want {
			t.Errorf("Name(%d) = %q, want %q", c.id, got, c.want)
		}
	}
}

func TestSearchSpaceNoOverflowForDeepNets(t *testing.T) {
	classes := make([]OpClass, 60)
	for i := range classes {
		classes[i] = OpConv
	}
	size := SearchSpaceSize(classes, false)
	if !(size > 1e90) && !math.IsInf(size, 1) {
		t.Errorf("ResNet-50-scale space = %g, want ≥1e90 (paper: 7e91)", size)
	}
}
