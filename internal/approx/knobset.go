package approx

import (
	"math"
	"sort"

	"repro/internal/tensorops"
)

// OpClass groups tensor operations by the knob sets that apply to them.
type OpClass int

const (
	OpOther  OpClass = iota // activations, bias, softmax, batchnorm, ...
	OpConv                  // 2-D convolution
	OpMatMul                // dense / fully-connected
	OpReduce                // reductions and pooling
)

func (c OpClass) String() string {
	switch c {
	case OpConv:
		return "conv"
	case OpMatMul:
		return "matmul"
	case OpReduce:
		return "reduce"
	default:
		return "other"
	}
}

// KnobsFor returns the knob ids applicable to an operation class, sorted by
// id. includeHardware adds hardware-specific knobs (PROMISE) — at
// development time the paper tunes hardware-independent knobs only; PROMISE
// joins at install time, for convolutions and matrix multiplications.
func KnobsFor(class OpClass, includeHardware bool) []KnobID {
	var ids []KnobID
	switch class {
	case OpConv:
		ids = append(ids, KnobFP32, KnobFP16)
		for i := 0; i < 9; i++ {
			ids = append(ids, sampFP32Base+KnobID(i), sampFP16Base+KnobID(i))
		}
		for i := 0; i < 18; i++ {
			ids = append(ids, perfFP32Base+KnobID(i), perfFP16Base+KnobID(i))
		}
		if includeHardware {
			for l := 1; l <= 7; l++ {
				ids = append(ids, PromiseKnob(l))
			}
		}
	case OpMatMul:
		ids = append(ids, KnobFP32, KnobFP16)
		if includeHardware {
			for l := 1; l <= 7; l++ {
				ids = append(ids, PromiseKnob(l))
			}
		}
	case OpReduce:
		ids = append(ids, KnobFP32, KnobFP16)
		for i := 0; i < 3; i++ {
			ids = append(ids, redFP32Base+KnobID(i), redFP16Base+KnobID(i))
		}
	default:
		ids = append(ids, KnobFP32, KnobFP16)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CostFactors returns the hardware-agnostic reduction factors (Rc, Rm) of
// Eq. 3 in the paper: the factors by which a knob divides the operator's
// compute and memory operation counts. The paper's worked example — FP16
// 50% filter sampling has Rm = 4 (2× from FP16, 2× fewer loads) and
// Rc = 2 — anchors the table.
func CostFactors(id KnobID) (rc, rm float64) {
	return MustLookup(id).Factors()
}

// Factors returns the knob's (Rc, Rm) reduction factors; the value-based
// form of CostFactors, usable on knobs that are not (or not yet) in the
// registry — e.g. candidates under validation by core.CheckKnobs.
func (k Knob) Factors() (rc, rm float64) {
	rc, rm = 1, 1
	switch k.Kind {
	case KindBaseline:
	case KindFP16:
		rm = 2 // half the bytes
	case KindSampling:
		f := float64(k.Stride) / float64(k.Stride-1) // skip 1-of-k
		rc, rm = f, f
		if k.Prec == tensorops.FP16 {
			rm *= 2
		}
	case KindPerforation:
		f := float64(k.Stride) / float64(k.Stride-1)
		rc, rm = f, f
		if k.Prec == tensorops.FP16 {
			rm *= 2
		}
	case KindReduceSampling:
		f := float64(k.RatioDen) / float64(k.RatioNum) // use num/den of inputs
		rc, rm = f, f
		if k.Prec == tensorops.FP16 {
			rm *= 2
		}
	case KindPromise:
		// PROMISE computes in analog; Srivastava et al. report 1.4–3.4×
		// throughput vs digital accelerators. Model a mid-range constant:
		// voltage level changes energy, not throughput, to first order.
		rc, rm = 2.4, 2.4
	case KindInt8:
		rm = 4 // one byte per element instead of four
	}
	return rc, rm
}

// SearchSpaceSize returns the size of the configuration space for a program
// whose operations have the given classes (the per-benchmark "Search
// Space" column of Table 1). Hardware-independent knobs only when
// includeHardware is false, matching the development-time space.
func SearchSpaceSize(classes []OpClass, includeHardware bool) float64 {
	size := 1.0
	for _, c := range classes {
		size *= float64(len(KnobsFor(c, includeHardware)))
		if math.IsInf(size, 1) {
			return size
		}
	}
	return size
}
