package approx

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Config maps each tensor operation (by its index in the program's
// dataflow graph) to an approximation knob (§2.1: Config : op → Int).
// Operations absent from the map run exactly (knob 0).
type Config map[int]KnobID

// NewBaseline returns a configuration mapping all n ops to FP32.
func NewBaseline(n int) Config {
	c := make(Config, n)
	for i := 0; i < n; i++ {
		c[i] = KnobFP32
	}
	return c
}

// Knob returns the knob for op i (FP32 when unset).
func (c Config) Knob(i int) KnobID {
	if k, ok := c[i]; ok {
		return k
	}
	return KnobFP32
}

// Clone returns a deep copy.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Equal reports whether two configurations assign the same knob to every
// op of programs with n operations.
func (c Config) Equal(o Config, n int) bool {
	for i := 0; i < n; i++ {
		if c.Knob(i) != o.Knob(i) {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for map/dedup use over n ops.
func (c Config) Key(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d,", c.Knob(i))
	}
	return b.String()
}

// GroupCounts tallies, per Table 3 of the paper, how many operations use
// each knob family (FP16, samp-50%, perf-33%, P4, ...). Baseline FP32
// entries are omitted.
func (c Config) GroupCounts() map[string]int {
	out := make(map[string]int)
	for _, id := range c {
		k := MustLookup(id)
		if k.IsBaseline() {
			continue
		}
		out[k.Group()]++
	}
	return out
}

// FormatGroupCounts renders GroupCounts in Table 3 style:
// "FP16:13 perf-50%:6 perf-33%:2 samp-25%:1".
func (c Config) FormatGroupCounts() string {
	counts := c.GroupCounts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s:%d", k, counts[k]))
	}
	if len(parts) == 0 {
		return "baseline"
	}
	return strings.Join(parts, " ")
}

// configJSON is the serialized form: op indices as strings for JSON maps.
type configJSON map[string]KnobID

// MarshalJSON serializes the configuration for shipping inside a tradeoff
// curve.
func (c Config) MarshalJSON() ([]byte, error) {
	m := make(configJSON, len(c))
	for op, k := range c {
		m[fmt.Sprint(op)] = k
	}
	return json.Marshal(m)
}

// UnmarshalJSON restores a shipped configuration, validating knob ids.
func (c *Config) UnmarshalJSON(data []byte) error {
	var m configJSON
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	out := make(Config, len(m))
	for opStr, k := range m {
		var op int
		if _, err := fmt.Sscanf(opStr, "%d", &op); err != nil {
			return fmt.Errorf("approx: bad op index %q: %w", opStr, err)
		}
		if _, ok := Lookup(k); !ok {
			return fmt.Errorf("approx: unknown knob id %d for op %d", k, op)
		}
		out[op] = k
	}
	*c = out
	return nil
}
