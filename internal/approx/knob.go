// Package approx defines the approximation knobs of §2.3 of the paper, the
// configuration type that maps tensor operations to knob values, and the
// hardware-agnostic cost factors (Eq. 3) that the performance predictor and
// the device models share.
//
// The knob inventory reproduces the paper exactly:
//
//   - filter sampling: skip rates 50%/33%/25% (skip 1-of-k, k=2,3,4) with
//     k offsets each — 9 knobs, each in FP32 and FP16 (18);
//   - perforated convolutions: rows or columns, the same three rates and
//     offsets — 18 knobs, each in FP32 and FP16 (36);
//   - plain FP32 (the baseline, knob id 0) and plain FP16 — 2;
//   - PROMISE voltage levels P1–P7 — 7 (hardware-specific);
//
// totalling 63 knobs per convolution. Reductions get 3 sampling ratios
// (50%, 40%, 25% of inputs used) × 2 precisions + 2 exact = 8 knobs; other
// tensor operations get the 2 precision choices.
package approx

import (
	"fmt"
	"sort"

	"repro/internal/tensorops"
)

// Kind classifies a knob by approximation technique.
type Kind int

const (
	KindBaseline Kind = iota // exact FP32
	KindFP16                 // exact computation, half-precision storage
	KindSampling             // convolution filter sampling
	KindPerforation
	KindReduceSampling
	KindPromise
	// KindInt8 is an extension beyond the paper's five techniques
	// (§2.3 notes the system "is extensible to a wide range of software
	// and hardware approximations"): symmetric per-tensor 8-bit integer
	// quantization of convolution/matmul operands. Hardware-independent
	// semantics, like FP16.
	KindInt8
)

func (k Kind) String() string {
	switch k {
	case KindBaseline:
		return "fp32"
	case KindFP16:
		return "fp16"
	case KindSampling:
		return "samp"
	case KindPerforation:
		return "perf"
	case KindReduceSampling:
		return "red_samp"
	case KindPromise:
		return "promise"
	case KindInt8:
		return "int8"
	default:
		return "unknown"
	}
}

// KnobID is the discrete integer parameter the tuner manipulates
// (§2.1: "an approximation knob is a discrete-valued parameter ...
// represented using integers"). Zero denotes no approximation.
type KnobID int

// Knob describes one approximation setting for one class of tensor op.
type Knob struct {
	ID   KnobID
	Kind Kind
	Prec tensorops.Precision

	// Sampling / perforation parameters: skip 1 of every Stride elements
	// starting at Offset.
	Stride, Offset int
	// Perforation direction.
	Dir tensorops.PerfDirection
	// Reduction sampling: use RatioNum/RatioDen of the inputs.
	RatioNum, RatioDen int
	// PROMISE voltage level 1..7 (P1 lowest voltage, highest error).
	Level int
}

// Fixed knob IDs. IDs are stable across runs and serialize into shipped
// tradeoff curves.
const (
	KnobFP32 KnobID = 0
	KnobFP16 KnobID = 1

	sampFP32Base KnobID = 10 // 9 knobs: 10..18
	sampFP16Base KnobID = 20 // 9 knobs: 20..28
	perfFP32Base KnobID = 30 // 18 knobs: 30..47
	perfFP16Base KnobID = 50 // 18 knobs: 50..67
	redFP32Base  KnobID = 70 // 3 knobs: 70..72
	redFP16Base  KnobID = 80 // 3 knobs: 80..82
	promiseBase  KnobID = 90 // 7 knobs: 90..96 (P1..P7)

	// KnobInt8 is the INT8-quantization extension knob (not part of the
	// paper's default knob sets; opt in via core.KnobPolicy.IncludeInt8).
	KnobInt8 KnobID = 110
)

var registry = buildRegistry()

func buildRegistry() map[KnobID]Knob {
	r := make(map[KnobID]Knob)
	add := func(k Knob) {
		if _, dup := r[k.ID]; dup {
			panic(fmt.Sprintf("approx: duplicate knob id %d", k.ID))
		}
		r[k.ID] = k
	}
	add(Knob{ID: KnobFP32, Kind: KindBaseline, Prec: tensorops.FP32})
	add(Knob{ID: KnobFP16, Kind: KindFP16, Prec: tensorops.FP16})

	// Filter sampling: strides 2,3,4 with offsets 0..stride-1 → 9 knobs.
	i := 0
	for stride := 2; stride <= 4; stride++ {
		for off := 0; off < stride; off++ {
			add(Knob{ID: sampFP32Base + KnobID(i), Kind: KindSampling, Prec: tensorops.FP32, Stride: stride, Offset: off})
			add(Knob{ID: sampFP16Base + KnobID(i), Kind: KindSampling, Prec: tensorops.FP16, Stride: stride, Offset: off})
			i++
		}
	}

	// Perforation: rows/cols × strides 2,3,4 × offsets → 18 knobs.
	i = 0
	for _, dir := range []tensorops.PerfDirection{tensorops.PerfRows, tensorops.PerfCols} {
		for stride := 2; stride <= 4; stride++ {
			for off := 0; off < stride; off++ {
				add(Knob{ID: perfFP32Base + KnobID(i), Kind: KindPerforation, Prec: tensorops.FP32, Dir: dir, Stride: stride, Offset: off})
				add(Knob{ID: perfFP16Base + KnobID(i), Kind: KindPerforation, Prec: tensorops.FP16, Dir: dir, Stride: stride, Offset: off})
				i++
			}
		}
	}

	// Reduction sampling: 50%, 40%, 25% of inputs used.
	ratios := []struct{ num, den int }{{1, 2}, {2, 5}, {1, 4}}
	for j, rt := range ratios {
		add(Knob{ID: redFP32Base + KnobID(j), Kind: KindReduceSampling, Prec: tensorops.FP32, RatioNum: rt.num, RatioDen: rt.den})
		add(Knob{ID: redFP16Base + KnobID(j), Kind: KindReduceSampling, Prec: tensorops.FP16, RatioNum: rt.num, RatioDen: rt.den})
	}

	// PROMISE P1..P7.
	for lvl := 1; lvl <= 7; lvl++ {
		add(Knob{ID: promiseBase + KnobID(lvl-1), Kind: KindPromise, Prec: tensorops.FP32, Level: lvl})
	}

	// INT8 quantization extension.
	add(Knob{ID: KnobInt8, Kind: KindInt8, Prec: tensorops.FP32})
	return r
}

// Lookup returns the knob with the given id.
func Lookup(id KnobID) (Knob, bool) {
	k, ok := registry[id]
	return k, ok
}

// All returns every registered knob sorted by id — the domain the static
// registry checker (core.CheckKnobRegistry) validates.
func All() []Knob {
	out := make([]Knob, 0, len(registry))
	for _, k := range registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MustLookup returns the knob with the given id, panicking if unknown.
func MustLookup(id KnobID) Knob {
	k, ok := registry[id]
	if !ok {
		panic(fmt.Sprintf("approx: unknown knob id %d", id))
	}
	return k
}

// PromiseKnob returns the knob id for PROMISE voltage level lvl (1..7).
func PromiseKnob(lvl int) KnobID {
	if lvl < 1 || lvl > 7 {
		panic(fmt.Sprintf("approx: PROMISE level %d not in 1..7", lvl))
	}
	return promiseBase + KnobID(lvl-1)
}

// SamplingKnob returns the filter-sampling knob for (stride, offset, prec).
func SamplingKnob(stride, offset int, prec tensorops.Precision) KnobID {
	idx := sampIndex(stride, offset)
	if prec == tensorops.FP16 {
		return sampFP16Base + KnobID(idx)
	}
	return sampFP32Base + KnobID(idx)
}

// PerforationKnob returns the perforation knob for (dir, stride, offset, prec).
func PerforationKnob(dir tensorops.PerfDirection, stride, offset int, prec tensorops.Precision) KnobID {
	idx := sampIndex(stride, offset)
	if dir == tensorops.PerfCols {
		idx += 9
	}
	if prec == tensorops.FP16 {
		return perfFP16Base + KnobID(idx)
	}
	return perfFP32Base + KnobID(idx)
}

// ReduceSamplingKnob returns the reduction-sampling knob for the i-th ratio
// (0: 50%, 1: 40%, 2: 25%).
func ReduceSamplingKnob(i int, prec tensorops.Precision) KnobID {
	if i < 0 || i > 2 {
		panic(fmt.Sprintf("approx: reduce-sampling ratio index %d not in 0..2", i))
	}
	if prec == tensorops.FP16 {
		return redFP16Base + KnobID(i)
	}
	return redFP32Base + KnobID(i)
}

func sampIndex(stride, offset int) int {
	if stride < 2 || stride > 4 || offset < 0 || offset >= stride {
		panic(fmt.Sprintf("approx: invalid stride/offset %d/%d", stride, offset))
	}
	base := 0
	for s := 2; s < stride; s++ {
		base += s
	}
	return base + offset
}

// Name renders the knob in the notation of the paper's Table 3:
// "fp32", "fp16", "samp-50%", "perf-33%", "red-25%", "promise-P3",
// suffixed with the precision for approximations run in half precision.
func (k Knob) Name() string {
	pct := func(stride int) string {
		switch stride {
		case 2:
			return "50%"
		case 3:
			return "33%"
		case 4:
			return "25%"
		}
		return "?"
	}
	suffix := ""
	if k.Prec == tensorops.FP16 && k.Kind != KindFP16 && k.Kind != KindBaseline {
		suffix = "/fp16"
	}
	switch k.Kind {
	case KindBaseline:
		return "fp32"
	case KindFP16:
		return "fp16"
	case KindSampling:
		return fmt.Sprintf("samp-%s(o%d)%s", pct(k.Stride), k.Offset, suffix)
	case KindPerforation:
		return fmt.Sprintf("perf-%s-%s(o%d)%s", pct(k.Stride), k.Dir, k.Offset, suffix)
	case KindReduceSampling:
		return fmt.Sprintf("red-%d/%d%s", k.RatioNum, k.RatioDen, suffix)
	case KindPromise:
		return fmt.Sprintf("promise-P%d", k.Level)
	case KindInt8:
		return "int8"
	default:
		return "unknown"
	}
}

// Group renders the knob's family in Table 3 notation, ignoring offsets,
// direction and precision suffix (e.g. all of perf-50% row/col offsets
// count as "perf-50%"); FP16-only knobs report "FP16".
func (k Knob) Group() string {
	pct := func(stride int) string {
		switch stride {
		case 2:
			return "50%"
		case 3:
			return "33%"
		case 4:
			return "25%"
		}
		return "?"
	}
	switch k.Kind {
	case KindBaseline:
		return "FP32"
	case KindFP16:
		return "FP16"
	case KindSampling:
		return "samp-" + pct(k.Stride)
	case KindPerforation:
		return "perf-" + pct(k.Stride)
	case KindReduceSampling:
		switch k.RatioDen {
		case 2:
			return "red-50%"
		case 5:
			return "red-40%"
		default:
			return "red-25%"
		}
	case KindPromise:
		return fmt.Sprintf("P%d", k.Level)
	case KindInt8:
		return "INT8"
	default:
		return "unknown"
	}
}

// HardwareIndependent reports whether the knob's effect on program outputs
// is fixed regardless of hardware (§2.1). Only PROMISE knobs are
// hardware-specific among the five techniques evaluated.
func (k Knob) HardwareIndependent() bool { return k.Kind != KindPromise }

// IsBaseline reports whether the knob performs no approximation.
func (k Knob) IsBaseline() bool { return k.ID == KnobFP32 }
