// Package datasets generates the deterministic synthetic image sets that
// stand in for MNIST, CIFAR-10 and ImageNet (ILSVRC 2012) in this
// reproduction. The paper draws 10K images per dataset and splits them
// into a 5K calibration set (for autotuning) and a 5K test set (§6); the
// same split protocol is implemented here at a configurable scale.
//
// Images are smooth random textures (sums of random 2-D Gaussian bumps
// plus pixel noise), which give convolutional networks spatially
// structured inputs with varied activations. Gold labels are not sampled
// here: they are planted from each network's own baseline output by
// internal/models, which pins the FP32 baseline accuracy to the paper's
// Table 1 values by construction (see DESIGN.md §1).
package datasets

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Dataset is a labeled image set.
type Dataset struct {
	Name    string
	Images  *tensor.Tensor // (N, C, H, W), values in [0, 1]
	Labels  []int          // len N; planted by internal/models
	Classes int
}

// N returns the number of images.
func (d *Dataset) N() int { return d.Images.Dim(0) }

// Slice returns a view dataset of images [lo, hi).
func (d *Dataset) Slice(lo, hi int) *Dataset {
	if lo < 0 || hi > d.N() || lo > hi {
		panic(fmt.Sprintf("datasets: bad slice [%d,%d) of %d", lo, hi, d.N()))
	}
	c, h, w := d.Images.Dim(1), d.Images.Dim(2), d.Images.Dim(3)
	per := c * h * w
	img := tensor.FromSlice(d.Images.Data()[lo*per:hi*per], hi-lo, c, h, w)
	var labels []int
	if d.Labels != nil {
		labels = d.Labels[lo:hi]
	}
	return &Dataset{Name: d.Name, Images: img, Labels: labels, Classes: d.Classes}
}

// Split divides the dataset into calibration and test halves, following
// the paper's 50/50 protocol.
func (d *Dataset) Split() (calib, test *Dataset) {
	half := d.N() / 2
	return d.Slice(0, half), d.Slice(half, d.N())
}

// Batches cuts the dataset into batches of the given size (the final
// short batch is dropped, matching fixed-batch inference).
func (d *Dataset) Batches(size int) []*Dataset {
	var out []*Dataset
	for lo := 0; lo+size <= d.N(); lo += size {
		out = append(out, d.Slice(lo, lo+size))
	}
	return out
}

// Spec describes a synthetic dataset to generate.
type Spec struct {
	Name       string
	N, C, H, W int
	Classes    int
	Bumps      int     // Gaussian bumps per image
	NoiseStd   float64 // pixel noise
	Seed       int64
}

// Generate builds a dataset per the spec.
func Generate(s Spec) *Dataset {
	if s.Bumps == 0 {
		s.Bumps = 4
	}
	//lint:ignore floateq exact zero is the unset-field sentinel
	if s.NoiseStd == 0 {
		s.NoiseStd = 0.05
	}
	rng := tensor.NewRNG(s.Seed)
	img := tensor.New(s.N, s.C, s.H, s.W)
	d := img.Data()
	per := s.C * s.H * s.W
	for n := 0; n < s.N; n++ {
		base := n * per
		// Shared bump field across channels with per-channel gain, so
		// channels correlate like natural images.
		type bump struct{ cx, cy, sx, sy, amp float64 }
		bumps := make([]bump, s.Bumps)
		for b := range bumps {
			bumps[b] = bump{
				cx:  rng.Float64() * float64(s.W),
				cy:  rng.Float64() * float64(s.H),
				sx:  1.5 + rng.Float64()*float64(s.W)/3,
				sy:  1.5 + rng.Float64()*float64(s.H)/3,
				amp: 0.4 + rng.Float64()*0.6,
			}
		}
		for c := 0; c < s.C; c++ {
			gain := 0.6 + rng.Float64()*0.8
			cbase := base + c*s.H*s.W
			for y := 0; y < s.H; y++ {
				for x := 0; x < s.W; x++ {
					v := 0.0
					for _, b := range bumps {
						dx := (float64(x) - b.cx) / b.sx
						dy := (float64(y) - b.cy) / b.sy
						v += b.amp * math.Exp(-(dx*dx+dy*dy)/2)
					}
					v = v*gain + rng.NormFloat64()*s.NoiseStd
					if v < 0 {
						v = 0
					} else if v > 1 {
						v = 1
					}
					d[cbase+y*s.W+x] = float32(v)
				}
			}
		}
	}
	return &Dataset{Name: s.Name, Images: img, Classes: s.Classes}
}

// MNISTLike generates n 28×28 grayscale images with 10 classes.
func MNISTLike(n int, seed int64) *Dataset {
	return Generate(Spec{Name: "mnist", N: n, C: 1, H: 28, W: 28, Classes: 10, Bumps: 3, Seed: seed})
}

// CIFARLike generates n 32×32 RGB images with the given class count
// (10 for CIFAR-10, 100 for CIFAR-100).
func CIFARLike(n, classes int, seed int64) *Dataset {
	name := "cifar10"
	if classes != 10 {
		name = fmt.Sprintf("cifar%d", classes)
	}
	return Generate(Spec{Name: name, N: n, C: 3, H: 32, W: 32, Classes: classes, Seed: seed})
}

// MiniImageNet generates n RGB images at the given spatial size with the
// given class count — the stand-in for the paper's 200-class ILSVRC
// sample, scaled down for a single-core host (DESIGN.md §1).
func MiniImageNet(n, size, classes int, seed int64) *Dataset {
	return Generate(Spec{Name: "imagenet", N: n, C: 3, H: size, W: size, Classes: classes, Bumps: 6, Seed: seed})
}
