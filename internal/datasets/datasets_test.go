package datasets

import (
	"testing"

	"repro/internal/tensor"
)

func TestGenerateShapeAndRange(t *testing.T) {
	d := CIFARLike(8, 10, 1)
	if d.N() != 8 || d.Images.Dim(1) != 3 || d.Images.Dim(2) != 32 || d.Images.Dim(3) != 32 {
		t.Fatalf("shape = %v", d.Images.Shape())
	}
	for _, v := range d.Images.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of [0,1]", v)
		}
	}
	if d.Classes != 10 {
		t.Errorf("classes = %d", d.Classes)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MNISTLike(4, 42)
	b := MNISTLike(4, 42)
	if !tensor.Equal(a.Images, b.Images, 0) {
		t.Fatal("same seed must generate identical images")
	}
	c := MNISTLike(4, 43)
	if tensor.Equal(a.Images, c.Images, 0) {
		t.Fatal("different seeds should differ")
	}
}

func TestImagesAreNotConstant(t *testing.T) {
	d := CIFARLike(2, 10, 7)
	img := d.Slice(0, 1).Images
	var mn, mx float32 = 2, -1
	for _, v := range img.Data() {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mx-mn < 0.2 {
		t.Errorf("image dynamic range too small: [%v, %v]", mn, mx)
	}
}

func TestSliceViews(t *testing.T) {
	d := CIFARLike(10, 10, 3)
	d.Labels = make([]int, 10)
	for i := range d.Labels {
		d.Labels[i] = i
	}
	s := d.Slice(2, 5)
	if s.N() != 3 || s.Labels[0] != 2 {
		t.Fatalf("slice wrong: n=%d labels=%v", s.N(), s.Labels)
	}
	// view shares storage
	s.Images.Data()[0] = 0.123
	if d.Slice(2, 3).Images.Data()[0] != 0.123 {
		t.Error("Slice should be a view")
	}
}

func TestSliceBoundsPanics(t *testing.T) {
	d := MNISTLike(4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Slice(2, 9)
}

func TestSplitHalves(t *testing.T) {
	d := MNISTLike(10, 2)
	calib, test := d.Split()
	if calib.N() != 5 || test.N() != 5 {
		t.Fatalf("split = %d/%d", calib.N(), test.N())
	}
	if tensor.Equal(calib.Images, test.Images, 0) {
		t.Error("halves should differ")
	}
}

func TestBatches(t *testing.T) {
	d := MNISTLike(10, 3)
	bs := d.Batches(3)
	if len(bs) != 3 {
		t.Fatalf("got %d batches, want 3 (last partial dropped)", len(bs))
	}
	for _, b := range bs {
		if b.N() != 3 {
			t.Fatalf("batch size %d", b.N())
		}
	}
}

func TestMiniImageNetSize(t *testing.T) {
	d := MiniImageNet(2, 48, 100, 5)
	if d.Images.Dim(2) != 48 || d.Classes != 100 {
		t.Fatalf("miniImageNet shape %v classes %d", d.Images.Shape(), d.Classes)
	}
}
