package core

import (
	"fmt"
	"time"

	"repro/internal/approx"
	"repro/internal/autotuner"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pareto"
	"repro/internal/predictor"
	"repro/internal/tensor"
)

// Options configures a development-time tuning run.
type Options struct {
	// QoSMin is the minimal acceptable QoS (absolute, same units as the
	// program's metric) — Algorithm 1's QoS_min.
	QoSMin float64
	// Model selects the error-composition model (Π1 or Π2) for predictive
	// tuning; ignored by EmpiricalTune.
	Model predictor.Model
	// NCalibrate is the number of measured configurations used to fit α
	// (paper: "50 are sufficient").
	NCalibrate int
	// MaxIters / StallLimit bound the search (paper: 30K / 1K).
	MaxIters   int
	StallLimit int
	// MaxConfigs bounds both the validated set and the shipped curve
	// (§6.4: at most 50 configurations are retained; ε1, ε2 are derived).
	MaxConfigs int
	// Policy selects the knob space (hardware knobs, FP16 availability).
	Policy KnobPolicy
	// Profiles, when non-nil, skips profile collection and reuses the
	// given tables (distributed install-time tuning supplies merged
	// profiles this way).
	Profiles *predictor.Profiles
	// PerfModel, when set, replaces the hardware-agnostic Eq. 3 predictor
	// as the Perf objective — §3.1: "tuning other goals such as energy
	// savings by providing a corresponding prediction model".
	PerfModel func(approx.Config) float64
	// EvalBatch is how many candidate configurations EmpiricalTune draws
	// per search step (Tuner.NextBatch) and evaluates concurrently. A batch
	// is proposed before any of its feedback exists, so the search
	// trajectory depends on the batch size but never on worker count or
	// evaluation order. The default is a fixed machine-independent 8 —
	// deliberately not GOMAXPROCS, so the same seed gives the same curve on
	// every host; 1 recovers the classic fully-sequential loop.
	EvalBatch int
	Seed      int64
}

// defaultEvalBatch is EmpiricalTune's machine-independent batch width.
const defaultEvalBatch = 8

func (o Options) norm() Options {
	if o.Model == 0 {
		o.Model = predictor.Pi2
	}
	if o.NCalibrate == 0 {
		o.NCalibrate = 50
	}
	if o.MaxIters == 0 {
		o.MaxIters = 30000
	}
	if o.StallLimit == 0 {
		o.StallLimit = 1000
	}
	if o.MaxConfigs == 0 {
		o.MaxConfigs = 50
	}
	if o.EvalBatch == 0 {
		o.EvalBatch = defaultEvalBatch
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Stats reports how a tuning run went — the raw material of Table 4 and
// the curve-size discussion in §7.3.
type Stats struct {
	Iterations    int
	Candidates    int           // configurations passing the predicted-QoS gate
	RawConfigs    int           // all configurations the search generated
	Validated     int           // configurations surviving QoS validation
	Alpha         float64       // fitted predictor coefficient
	ProfileTime   time.Duration // step 1
	CalibrateTime time.Duration // step 2
	SearchTime    time.Duration // step 3
	ValidateTime  time.Duration // steps 4–5
	Total         time.Duration
}

// Result is a completed tuning run: the tradeoff curve plus stats and the
// profiles (reusable at install time).
type Result struct {
	Curve    *pareto.Curve
	Stats    Stats
	Profiles *predictor.Profiles
}

// PredictiveTune is Algorithm 1: profile collection, predictor
// calibration, model-driven search, tradeoff-curve construction, and QoS
// validation.
func PredictiveTune(p Program, o Options) (*Result, error) {
	o = o.norm()
	if o.Model == predictor.Pi1 && !p.FixedOutputShape() {
		return nil, fmt.Errorf("core: program %q has variable output shapes; Π1 requires fixed shapes (§8)", p.Name())
	}
	root := obs.Start("phase:devtime").
		With("program", p.Name()).With("model", o.Model.String()).With("qos_min", o.QoSMin)
	defer root.End()
	if pp, ok := p.(Prepacker); ok {
		pp.Prepack(root)
	}
	watch := NewStopwatch()
	rng := tensor.NewRNG(o.Seed)
	var st Stats

	// Step 1: collect QoS profiles (lines 12–15).
	profiles := o.Profiles
	if profiles == nil {
		psp := root.Child("profile")
		profiles = CollectProfilesSpan(p, nil, func(op int) []approx.KnobID {
			return KnobsFor(p, op, o.Policy)
		}, rng.Split(1), psp)
		psp.End()
	}
	st.ProfileTime = watch.Lap()

	// Step 2: initialize and calibrate the QoS predictor (lines 18–20).
	csp := root.Child("calibrate").With("samples", o.NCalibrate)
	scoreFn := func(out *tensor.Tensor) float64 { return p.Score(Calib, out) }
	var qp *predictor.QoSPredictor
	if o.Model == predictor.Pi1 {
		qp = predictor.NewQoSPredictor(predictor.Pi1, profiles, scoreFn)
	} else {
		qp = predictor.NewQoSPredictor(predictor.Pi2, profiles, nil)
	}
	prob := problemFor(p, o.Policy)
	calibRng := rng.Split(2)
	calCfgs := make([]approx.Config, o.NCalibrate)
	calRngs := make([]*tensor.RNG, o.NCalibrate)
	for i := range calCfgs {
		// Draw the config and the per-run RNG sequentially (Split advances
		// the parent), in the exact interleaving of the sequential loop.
		calCfgs[i] = randomConfig(prob, calibRng)
		calRngs[i] = calibRng.Split(int64(i))
	}
	calQoS := evalScores(p, calCfgs, calRngs, nil)
	samples := make([]predictor.Sample, 0, o.NCalibrate)
	for i, cfg := range calCfgs {
		samples = append(samples, predictor.Sample{Cfg: cfg, QoS: calQoS[i]})
	}
	st.Alpha = qp.Calibrate(samples)
	csp.With("alpha", st.Alpha).End()
	st.CalibrateTime = watch.Lap()

	// Step 3: autotune with the QoS and performance prediction models
	// (lines 23–30).
	ssp := root.Child("search")
	perfOf := perfModel(p, o)
	tuner := autotuner.New(prob, autotuner.Options{
		MaxIters:   o.MaxIters,
		StallLimit: o.StallLimit,
		QoSMin:     o.QoSMin,
		Seed:       o.Seed + 7,
	})
	seen := make(map[string]bool)
	nOps := maxOp(p) + 1
	// The exact baseline is always feasible; prime the search with it and
	// keep it as a candidate so the curve is never empty.
	baseCfg := baselineConfig(p)
	tuner.Prime(baseCfg, autotuner.Feedback{QoS: profiles.BaseQoS, Perf: 1})
	candidates := []pareto.Point{{QoS: profiles.BaseQoS, Perf: 1, Config: baseCfg}}
	seen[baseCfg.Key(nOps)] = true
	for !tuner.Done() {
		cfg := tuner.Next()
		predQoS := qp.Predict(cfg)
		predPerf := perfOf(cfg)
		tuner.Report(cfg, autotuner.Feedback{QoS: predQoS, Perf: predPerf})
		st.RawConfigs++
		if predQoS > o.QoSMin {
			key := cfg.Key(nOps)
			if !seen[key] {
				seen[key] = true
				candidates = append(candidates, pareto.Point{QoS: predQoS, Perf: predPerf, Config: cfg.Clone()})
			}
		}
	}
	st.Iterations = tuner.Iterations()
	st.Candidates = len(candidates)
	ssp.With("iterations", st.Iterations).With("candidates", st.Candidates).End()
	st.SearchTime = watch.Lap()

	// Step 4: keep configurations within ε1 of the Pareto frontier
	// (line 33), bounding the validation workload.
	eps1 := pareto.EpsilonForLimit(candidates, o.MaxConfigs)
	shortlist := pareto.Trim(pareto.RelaxedSet(candidates, eps1), o.MaxConfigs)

	// Step 5: validate the predicted QoS empirically and filter
	// (lines 36–41). The exact baseline is re-attached first: it is
	// trivially valid and guarantees the shipped curve is never empty even
	// when an optimistic predictor Pareto-dominates it out of the
	// shortlist and every other candidate fails validation.
	vsp := root.Child("validate").With("shortlist", len(shortlist))
	shortlist = ensureBaseline(shortlist, baseCfg, profiles.BaseQoS, nOps)
	valRng := rng.Split(3)
	valCfgs := make([]approx.Config, len(shortlist))
	valRngs := make([]*tensor.RNG, len(shortlist))
	for i, pt := range shortlist {
		valCfgs[i] = pt.Config
		valRngs[i] = valRng.Split(int64(i))
	}
	valQoS := evalScores(p, valCfgs, valRngs, vsp)
	var validated []pareto.Point
	for i, pt := range shortlist {
		if valQoS[i] > o.QoSMin {
			validated = append(validated, pareto.Point{QoS: valQoS[i], Perf: pt.Perf, Config: pt.Config})
		}
	}
	st.Validated = len(validated)
	eps2 := pareto.EpsilonForLimit(validated, o.MaxConfigs)
	final := pareto.Trim(pareto.RelaxedSet(validated, eps2), o.MaxConfigs)
	vsp.With("validated", st.Validated).End()
	st.ValidateTime = watch.Lap()
	st.Total = watch.Total()

	curve := pareto.NewRelaxedCurve(p.Name(), profiles.BaseQoS, final)
	return &Result{Curve: curve, Stats: st, Profiles: profiles}, nil
}

// EmpiricalTune is the conventional autotuning baseline the paper compares
// against (§3, §7.3): every candidate configuration is evaluated by
// actually running the program on the calibration inputs. Performance
// still comes from the hardware-agnostic cost model, exactly as at
// development time in the paper (real hardware is absent until install
// time).
//
// Candidates are drawn EvalBatch at a time (Tuner.NextBatch) and evaluated
// concurrently. Each evaluation's RNG is split off the run RNG
// sequentially before the batch runs, so an evaluation depends only on its
// (config, rng) pair; feedback is reported in index order
// (Tuner.ReportBatch). The resulting curve is a deterministic function of
// (seed, EvalBatch) — worker count and evaluation interleaving cannot
// change it — and EvalBatch=1 reproduces the sequential loop exactly.
func EmpiricalTune(p Program, o Options) (*Result, error) {
	o = o.norm()
	root := obs.Start("phase:devtime").
		With("program", p.Name()).With("model", "empirical").With("qos_min", o.QoSMin)
	defer root.End()
	if pp, ok := p.(Prepacker); ok {
		pp.Prepack(root)
	}
	watch := NewStopwatch()
	rng := tensor.NewRNG(o.Seed)
	var st Stats

	perfOf := perfModel(p, o)
	baseOut := baselineOutput(p, Calib)
	baseQoS := p.Score(Calib, baseOut)

	ssp := root.Child("search")
	prob := problemFor(p, o.Policy)
	tuner := autotuner.New(prob, autotuner.Options{
		MaxIters:   o.MaxIters,
		StallLimit: o.StallLimit,
		QoSMin:     o.QoSMin,
		Seed:       o.Seed + 7,
	})
	seen := make(map[string]bool)
	nOps := maxOp(p) + 1
	baseCfg := baselineConfig(p)
	tuner.Prime(baseCfg, autotuner.Feedback{QoS: baseQoS, Perf: 1})
	candidates := []pareto.Point{{QoS: baseQoS, Perf: 1, Config: baseCfg}}
	seen[baseCfg.Key(nOps)] = true
	i := 0
	for !tuner.Done() {
		cfgs := tuner.NextBatch(o.EvalBatch)
		rngs := make([]*tensor.RNG, len(cfgs))
		for j := range cfgs {
			rngs[j] = rng.Split(int64(i + j))
		}
		qos := evalScores(p, cfgs, rngs, nil)
		fbs := make([]autotuner.Feedback, len(cfgs))
		perfs := make([]float64, len(cfgs))
		for j, cfg := range cfgs {
			perfs[j] = perfOf(cfg)
			fbs[j] = autotuner.Feedback{QoS: qos[j], Perf: perfs[j]}
		}
		tuner.ReportBatch(cfgs, fbs)
		for j, cfg := range cfgs {
			st.RawConfigs++
			if qos[j] > o.QoSMin {
				key := cfg.Key(nOps)
				if !seen[key] {
					seen[key] = true
					candidates = append(candidates, pareto.Point{QoS: qos[j], Perf: perfs[j], Config: cfg.Clone()})
				}
			}
		}
		i += len(cfgs)
	}
	st.Iterations = tuner.Iterations()
	st.Candidates = len(candidates)
	ssp.With("iterations", st.Iterations).With("candidates", st.Candidates).End()
	st.SearchTime = watch.Lap()

	eps2 := pareto.EpsilonForLimit(candidates, o.MaxConfigs)
	final := pareto.Trim(pareto.RelaxedSet(candidates, eps2), o.MaxConfigs)
	final = ensureBaseline(final, baseCfg, baseQoS, nOps)
	st.Validated = len(final)
	st.Total = watch.Total()

	curve := pareto.NewRelaxedCurve(p.Name(), baseQoS, final)
	return &Result{Curve: curve, Stats: st}, nil
}

// evalScores runs p once per (config, rng) pair — concurrently when the
// host allows — and returns the Calib QoS of each run in index order. The
// rngs must be split off their parent sequentially before the call: each
// evaluation then depends only on its own pair, so the scores are
// independent of worker count and evaluation interleaving.
func evalScores(p Program, cfgs []approx.Config, rngs []*tensor.RNG, sp *obs.Span) []float64 {
	qos := make([]float64, len(cfgs))
	parallel.For(len(cfgs), func(i int) {
		out := runTraced(p, cfgs[i], Calib, rngs[i], sp)
		qos[i] = p.Score(Calib, out)
	})
	return qos
}

// newSearchTuner builds the search engine with the options' bounds.
func newSearchTuner(prob autotuner.Problem, o Options) *autotuner.Tuner {
	return autotuner.New(prob, autotuner.Options{
		MaxIters:   o.MaxIters,
		StallLimit: o.StallLimit,
		QoSMin:     o.QoSMin,
		Seed:       o.Seed + 7,
	})
}

func feedback(qos, perf float64) autotuner.Feedback {
	return autotuner.Feedback{QoS: qos, Perf: perf}
}

// problemFor builds the autotuner search space for a program under a knob
// policy.
func problemFor(p Program, pol KnobPolicy) autotuner.Problem {
	ops := p.Ops()
	knobs := make(map[int][]approx.KnobID, len(ops))
	for _, op := range ops {
		knobs[op] = KnobsFor(p, op, pol)
	}
	return autotuner.Problem{Ops: ops, Knobs: knobs}
}

func randomConfig(prob autotuner.Problem, rng *tensor.RNG) approx.Config {
	cfg := make(approx.Config, len(prob.Ops))
	for _, op := range prob.Ops {
		ks := prob.Knobs[op]
		cfg[op] = ks[rng.Intn(len(ks))]
	}
	return cfg
}

// perfModel returns the configured Perf objective: the caller-supplied
// model when present, otherwise the hardware-agnostic Eq. 3 predictor.
func perfModel(p Program, o Options) func(approx.Config) float64 {
	if o.PerfModel != nil {
		return o.PerfModel
	}
	pp := predictor.NewPerfPredictor(p.Costs())
	return pp.Predict
}

// ensureBaseline prepends the baseline tradeoff point when absent.
func ensureBaseline(points []pareto.Point, baseCfg approx.Config, baseQoS float64, nOps int) []pareto.Point {
	key := baseCfg.Key(nOps)
	for _, pt := range points {
		if pt.Config.Key(nOps) == key {
			return points
		}
	}
	return append([]pareto.Point{{QoS: baseQoS, Perf: 1, Config: baseCfg}}, points...)
}

// baselineConfig maps every op of the program to FP32.
func baselineConfig(p Program) approx.Config {
	cfg := make(approx.Config)
	for _, op := range p.Ops() {
		cfg[op] = approx.KnobFP32
	}
	return cfg
}

func maxOp(p Program) int {
	m := 0
	for _, op := range p.Ops() {
		if op > m {
			m = op
		}
	}
	return m
}
