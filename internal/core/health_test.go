package core

import (
	"math"
	"testing"

	"repro/internal/approx"
	"repro/internal/obs"
	"repro/internal/pareto"
)

func healthTestCurve() *pareto.Curve {
	return pareto.NewCurve("health-test", 90, []pareto.Point{
		{QoS: 90, Perf: 1.0, Config: approx.Config{}},
		{QoS: 88.5, Perf: 1.4, Config: approx.Config{0: 1}},
		{QoS: 87, Perf: 1.9, Config: approx.Config{0: 10}},
	})
}

// TestRuntimeHealthNoFaultNoAlarms pins the acceptance criterion's
// negative half: when every invocation takes exactly the time the curve
// predicts for the active configuration, no drift alarm fires and the
// recalibration signal stays clear.
func TestRuntimeHealthNoFaultNoAlarms(t *testing.T) {
	before := obs.NewCounter("runtime.drift_alarms").Value()
	rt, err := NewRuntimeTuner(healthTestCurve(), PolicyEnforce, 0.1, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for i := 0; i < 60; i++ {
		pt := rt.CurrentPoint()
		rt.RecordInvocation(0.1 / pt.Perf) // exactly as predicted
	}
	h := rt.Health()
	if h.DriftAlarms != 0 {
		t.Errorf("no-fault run raised %d drift alarms, want 0:\n%s", h.DriftAlarms, h)
	}
	if h.RecalibrationNeeded || rt.RecalibrationNeeded() {
		t.Error("no-fault run must not request recalibration")
	}
	if len(h.Drifting()) != 0 {
		t.Errorf("no-fault run flags configs as drifting: %v", h.Drifting())
	}
	if got := obs.NewCounter("runtime.drift_alarms").Value() - before; got != 0 {
		t.Errorf("runtime.drift_alarms advanced by %d during a no-fault run", got)
	}
	if h.Invocations != 60 || h.Latency.Count != 60 {
		t.Errorf("health invocations=%d latency.count=%d, want 60/60", h.Invocations, h.Latency.Count)
	}
	var per int64
	for _, c := range h.Configs {
		per += c.Invocations
		if math.Abs(c.TimeRatio-1) > 0.05 {
			t.Errorf("config[%d] time ratio %v, want ~1.0", c.Index, c.TimeRatio)
		}
	}
	if per != 60 {
		t.Errorf("per-config invocations sum to %d, want 60", per)
	}
}

// TestRuntimeHealthDetectsSlowdownDrift pins the acceptance criterion's
// positive half: doubling execution times mid-run (relative to what the
// curve predicts for whatever configuration is active) must raise at
// least one drift alarm, flag the drifting configuration in Health(),
// latch the recalibration signal and advance runtime.drift_alarms.
func TestRuntimeHealthDetectsSlowdownDrift(t *testing.T) {
	before := obs.NewCounter("runtime.drift_alarms").Value()
	rt, err := NewRuntimeTuner(healthTestCurve(), PolicyEnforce, 0.1, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for i := 0; i < 20; i++ {
		rt.RecordInvocation(0.1 / rt.CurrentPoint().Perf)
	}
	if rt.Health().DriftAlarms != 0 {
		t.Fatalf("alarms before the fault: %d", rt.Health().DriftAlarms)
	}
	// Fault injection: the machine is now 2x slower than calibration
	// assumed, whichever configuration runs.
	for i := 0; i < 40; i++ {
		rt.RecordInvocation(2 * 0.1 / rt.CurrentPoint().Perf)
	}
	h := rt.Health()
	if h.DriftAlarms < 1 {
		t.Fatalf("2x slowdown raised no drift alarm:\n%s", h)
	}
	if !h.RecalibrationNeeded || !rt.RecalibrationNeeded() {
		t.Error("2x slowdown must latch the recalibration signal")
	}
	drifting := h.Drifting()
	if len(drifting) == 0 {
		t.Fatalf("Health() reports no drifting config after 2x slowdown:\n%s", h)
	}
	for _, c := range drifting {
		if !c.TimeDrifting {
			t.Errorf("config[%d] drifting without TimeDrifting set", c.Index)
		}
		if c.TimeRatio < driftBand {
			t.Errorf("config[%d] flagged with ratio %v < band %v", c.Index, c.TimeRatio, driftBand)
		}
	}
	if got := obs.NewCounter("runtime.drift_alarms").Value() - before; got < 1 {
		t.Errorf("runtime.drift_alarms advanced by %d, want >= 1", got)
	}
}

// TestRuntimeHealthQoSDrift checks the calibration-QoS detector: a
// smoothed observed QoS more than qosDriftTolerance below the curve's
// promise alarms; one within tolerance does not.
func TestRuntimeHealthQoSDrift(t *testing.T) {
	rt, err := NewRuntimeTuner(healthTestCurve(), PolicyEnforce, 0.1, 1, 13)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// Healthy: 0.2 points under the promised 90 is inside tolerance.
	for i := 0; i < 10; i++ {
		rt.RecordQoS(89.8)
	}
	if h := rt.Health(); h.DriftAlarms != 0 || h.RecalibrationNeeded {
		t.Fatalf("in-tolerance QoS raised alarms:\n%s", h)
	}
	// Quality regression: 3 points under the promise.
	for i := 0; i < 10; i++ {
		rt.RecordQoS(87)
	}
	h := rt.Health()
	if h.DriftAlarms < 1 || !h.RecalibrationNeeded {
		t.Fatalf("3-point QoS regression raised no alarm:\n%s", h)
	}
	var flagged bool
	for _, c := range h.Configs {
		if c.QoSDrifting {
			flagged = true
			if c.ObservedQoS >= c.PredictedQoS-qosDriftTolerance {
				t.Errorf("config[%d] flagged with observed %v vs predicted %v", c.Index, c.ObservedQoS, c.PredictedQoS)
			}
		}
	}
	if !flagged {
		t.Errorf("no config has QoSDrifting set:\n%s", h)
	}
}

// TestRuntimeTunerCloseIdempotent pins the double-Close guard: the
// phase:runtime span ends exactly once however many times Close runs,
// and the tuner stays queryable afterwards.
func TestRuntimeTunerCloseIdempotent(t *testing.T) {
	tr := obs.NewTracer(obs.TracerOptions{})
	prev := obs.Install(tr)
	defer obs.Install(prev)

	rt, err := NewRuntimeTuner(healthTestCurve(), PolicyAverage, 0.1, 1, 14)
	if err != nil {
		t.Fatal(err)
	}
	rt.RecordInvocation(0.1)
	rt.Close()
	rt.Close()
	rt.Close()
	var ended int
	for _, rec := range tr.Records() {
		if rec.Name == "phase:runtime" {
			ended++
		}
	}
	if ended != 1 {
		t.Errorf("phase:runtime span recorded %d times after 3 Close calls, want 1", ended)
	}
	if h := rt.Health(); h.Invocations != 1 {
		t.Errorf("Health() after Close lost state: %d invocations", h.Invocations)
	}
}
