package core

import (
	"math"
	"testing"

	"repro/internal/approx"
	"repro/internal/pareto"
)

func runtimeTestCurve() *pareto.Curve {
	return pareto.NewCurve("rt-test", 90, []pareto.Point{
		{QoS: 90, Perf: 1.0, Config: approx.Config{}},
		{QoS: 88.5, Perf: 1.4, Config: approx.Config{0: 1}},
		{QoS: 87, Perf: 1.9, Config: approx.Config{0: 10}},
	})
}

// TestRuntimeTunerOneSwitchPerWindow pins the satellite bugfix's core
// guarantee: a step change in system speed produces at most one
// configuration switch per full window, and switches only ever land on
// window boundaries — never once per invocation, however long the
// overload lasts.
func TestRuntimeTunerOneSwitchPerWindow(t *testing.T) {
	const window = 4
	rt, err := NewRuntimeTuner(runtimeTestCurve(), PolicyEnforce, 0.1, window, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// Warm steady state, then a persistent 1.5x step change.
	for i := 0; i < 2*window; i++ {
		rt.RecordInvocation(0.1 / rt.CurrentPoint().Perf)
	}
	for i := 0; i < 6*window; i++ {
		rt.RecordInvocation(1.5 * 0.1 / rt.CurrentPoint().Perf)
	}
	trace := rt.SwitchTrace()
	if len(trace) == 0 {
		t.Fatal("step change produced no switch at all")
	}
	perWindow := map[int]int{}
	for _, ev := range trace {
		if ev.Invocation%window != 0 {
			t.Errorf("switch at invocation %d is not on a window boundary (window %d)", ev.Invocation, window)
		}
		perWindow[ev.Invocation/window]++
	}
	for w, n := range perWindow {
		if n > 1 {
			t.Errorf("window %d saw %d switches, want <= 1", w, n)
		}
	}
	// The whole run is 8 windows; the switch count must be bounded by
	// that, not by the 32 overloaded invocations.
	if got := rt.Switches(); got > 8 {
		t.Errorf("switches = %d across 8 windows; per-invocation thrash is back", got)
	}
}

// TestRuntimeTunerWindowClearedOnSwitch pins that a configuration switch
// restarts the control window empty: no sample measured under the
// previous configuration may survive into the window that evaluates the
// next one, because systemSlowdown = avg·current.Perf/target is only
// meaningful when every averaged sample ran under current.
func TestRuntimeTunerWindowClearedOnSwitch(t *testing.T) {
	const window = 3
	rt, err := NewRuntimeTuner(runtimeTestCurve(), PolicyEnforce, 0.1, window, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	for i := 0; i < window; i++ {
		rt.RecordInvocation(0.2) // 2x overload under the baseline config
	}
	if rt.Switches() != 1 {
		t.Fatalf("full overloaded window produced %d switches, want 1", rt.Switches())
	}
	rt.mu.Lock()
	left := len(rt.times)
	rt.mu.Unlock()
	if left != 0 {
		t.Fatalf("window retains %d samples from the previous configuration after a switch", left)
	}
	// One fresh sample under the new config: the window must hold exactly
	// that sample, not a mix.
	rt.RecordInvocation(0.05)
	rt.mu.Lock()
	times := append([]float64(nil), rt.times...)
	rt.mu.Unlock()
	if len(times) != 1 || times[0] != 0.05 {
		t.Fatalf("window after one post-switch sample = %v, want [0.05]", times)
	}
}

// TestRuntimeTunerStaleAttribution pins the Acquire/RecordInvocationAt
// contract: a sample reported for a configuration the controller already
// left feeds that configuration's health history but never the control
// window of the configuration now active.
func TestRuntimeTunerStaleAttribution(t *testing.T) {
	rt, err := NewRuntimeTuner(runtimeTestCurve(), PolicyEnforce, 0.1, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	_, startIdx := rt.Acquire()
	// Fill a window with overload so the controller switches away.
	rt.RecordInvocation(0.2)
	rt.RecordInvocation(0.2)
	_, nowIdx := rt.Acquire()
	if nowIdx == startIdx {
		t.Fatal("overload did not switch configurations; test needs a switch")
	}
	// A straggler that executed under the old configuration reports late.
	rt.RecordInvocationAt(startIdx, 0.33)
	rt.mu.Lock()
	windowLen := len(rt.times)
	rt.mu.Unlock()
	if windowLen != 0 {
		t.Errorf("stale sample entered the active control window (%d samples)", windowLen)
	}
	h := rt.Health()
	var staleInv, activeInv int64
	for _, c := range h.Configs {
		if c.Index == startIdx {
			staleInv = c.Invocations
		}
		if c.Index == nowIdx {
			activeInv = c.Invocations
		}
	}
	if staleInv != 3 { // two window samples + the straggler
		t.Errorf("old config credited %d invocations, want 3", staleInv)
	}
	if activeInv != 0 {
		t.Errorf("active config credited %d invocations before running anything", activeInv)
	}
}

// TestRuntimeTunerHysteresisHoldsNeighbors pins the deadband: when the
// required speedup stays within the hysteresis band of what the active
// configuration delivers, the controller holds its choice instead of
// ping-ponging between equal-cost neighbors.
func TestRuntimeTunerHysteresisHoldsNeighbors(t *testing.T) {
	rt, err := NewRuntimeTuner(runtimeTestCurve(), PolicyAverage, 0.1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// Drive to the 1.4 point, then oscillate required within ±3% of it.
	rt.RecordInvocation(0.14) // required 1.4 exactly → switch to the 1.4 point
	if rt.CurrentPoint().Perf != 1.4 {
		t.Fatalf("setup: expected the 1.4 point, got %v", rt.CurrentPoint().Perf)
	}
	base := rt.Switches()
	for i := 0; i < 50; i++ {
		jitter := 1.0 + 0.03*float64(1-2*(i%2)) // ±3%, inside the 5% band
		// required = exec·Perf/target = 1.4·jitter: within the deadband
		// around the active point's own 1.4.
		rt.RecordInvocation(0.1 * jitter)
	}
	if got := rt.Switches() - base; got != 0 {
		t.Errorf("in-band noise produced %d switches, want 0 (hysteresis)", got)
	}
	// Out-of-band pressure still moves the controller.
	rt.RecordInvocation(0.2)
	if got := rt.Switches() - base; got == 0 {
		t.Error("out-of-band overload must still switch")
	}
}

// TestMixProbabilitiesClamped pins the Policy-2 boundary behavior: a
// required speedup outside the curve's Perf range yields deterministic
// endpoint selection with weights clamped into [0,1].
func TestMixProbabilitiesClamped(t *testing.T) {
	rt, err := NewRuntimeTuner(runtimeTestCurve(), PolicyAverage, 0.1, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	cases := []struct {
		required float64
		wantPerf float64 // the deterministic endpoint
	}{
		{0.25, 1.0}, // far below min Perf
		{1.0, 1.0},  // exactly min Perf
		{1.9, 1.9},  // exactly max Perf
		{7.5, 1.9},  // above max Perf
	}
	for _, tc := range cases {
		below, above, p1, p2 := rt.MixProbabilities(tc.required)
		if p1 < 0 || p1 > 1 || p2 < 0 || p2 > 1 {
			t.Errorf("required %v: probabilities (%v,%v) leave [0,1]", tc.required, p1, p2)
		}
		if math.Abs(p1+p2-1) > 1e-12 {
			t.Errorf("required %v: p1+p2 = %v", tc.required, p1+p2)
		}
		got := below.Perf
		if p1 < 0.5 {
			got = above.Perf
		}
		if got != tc.wantPerf {
			t.Errorf("required %v: deterministic endpoint Perf %v, want %v", tc.required, got, tc.wantPerf)
		}
		// pick must agree and not consume randomness on endpoints.
		for i := 0; i < 8; i++ {
			if pt := rt.pick(tc.required); pt.Perf != tc.wantPerf {
				t.Errorf("required %v: pick draw %d landed on %v, want deterministic %v", tc.required, i, pt.Perf, tc.wantPerf)
			}
		}
	}
	// A mid-bracket target still mixes to the paper's weights.
	if _, _, p1, _ := rt.MixProbabilities(1.65); math.Abs(p1-0.5) > 1e-9 {
		t.Errorf("mid-bracket 1.65 between 1.4/1.9: p1 = %v, want 0.5", p1)
	}
	// mixWeight clamps even with a degenerate (unsorted-style) bracket.
	if w := mixWeight(1.4, 1.9, math.NaN()); w != 1 {
		t.Errorf("NaN target mixWeight = %v, want conservative 1", w)
	}
}

// TestSwapCurveResetsHealth pins the hot-swap path: installing a fresh
// curve resets the per-config health state (keyed by curve index),
// clears the control window and the latched recalibration signal, and
// re-selects from the new curve, while lifetime counters survive.
func TestSwapCurveResetsHealth(t *testing.T) {
	rt, err := NewRuntimeTuner(runtimeTestCurve(), PolicyEnforce, 0.1, 2, 12)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	// Drift hard so the recalibration signal latches.
	for i := 0; i < 20; i++ {
		rt.RecordInvocation(3 * 0.1 / rt.CurrentPoint().Perf)
	}
	if !rt.RecalibrationNeeded() {
		t.Fatal("setup: 3x slowdown did not latch recalibration")
	}
	invBefore := rt.Health().Invocations

	fresh := pareto.NewCurve("rt-test-v2", 90, []pareto.Point{
		{QoS: 89.5, Perf: 1.0, Config: approx.Config{}},
		{QoS: 87.5, Perf: 2.2, Config: approx.Config{0: 11}},
		{QoS: 86, Perf: 3.1, Config: approx.Config{0: 12}},
	})
	if err := rt.SwapCurve(fresh); err != nil {
		t.Fatal(err)
	}
	if rt.RecalibrationNeeded() {
		t.Error("swap must release the latched recalibration signal")
	}
	if rt.CurveSwaps() != 1 {
		t.Errorf("curve swaps = %d, want 1", rt.CurveSwaps())
	}
	h := rt.Health()
	if len(h.Configs) != 0 {
		t.Errorf("per-config health survived the swap: %d configs", len(h.Configs))
	}
	if h.Invocations != invBefore {
		t.Errorf("lifetime invocation count changed across swap: %d vs %d", h.Invocations, invBefore)
	}
	// The active point must come off the new curve.
	pt := rt.CurrentPoint()
	found := false
	for _, p := range fresh.Points {
		if sameConfig(p.Config, pt.Config) {
			found = true
		}
	}
	if !found {
		t.Errorf("active point %v is not on the swapped curve", pt.Perf)
	}
	// And the tuner keeps controlling on the new curve.
	for i := 0; i < 4; i++ {
		rt.RecordInvocation(0.1 / rt.CurrentPoint().Perf)
	}
	if got := rt.Health().Invocations; got != invBefore+4 {
		t.Errorf("post-swap invocations = %d, want %d", got, invBefore+4)
	}
	if err := rt.SwapCurve(nil); err == nil {
		t.Error("nil curve swap must error")
	}
	if err := rt.SwapCurve(&pareto.Curve{}); err == nil {
		t.Error("empty curve swap must error")
	}
}
