package core

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/pareto"
)

// PowerGovernor extends the runtime phase to power-capped operation —
// §5's system monitor tracks "load, power, and frequency variations";
// this controller closes the loop on a power budget: it clocks the device
// down to the highest DVFS step whose busy-state system power fits the
// cap, and lets the approximation runtime tuner win back the lost
// performance by moving along the shipped tradeoff curve.
type PowerGovernor struct {
	dev    *device.Device
	rt     *RuntimeTuner
	costs  []graph.NodeCost
	capW   float64
	ladder []float64
}

// NewPowerGovernor builds a governor over a device, a runtime tuner and
// the program's cost table. capW is the system power budget in watts;
// ladder is the DVFS frequency list (device.Freqs for the TX2 GPU).
func NewPowerGovernor(dev *device.Device, rt *RuntimeTuner, costs []graph.NodeCost, capW float64, ladder []float64) (*PowerGovernor, error) {
	if dev == nil || rt == nil {
		return nil, fmt.Errorf("core: power governor needs a device and a runtime tuner")
	}
	if capW <= 0 {
		return nil, fmt.Errorf("core: bad power cap %v W", capW)
	}
	if len(ladder) == 0 {
		return nil, fmt.Errorf("core: power governor needs a DVFS ladder")
	}
	return &PowerGovernor{dev: dev, rt: rt, costs: costs, capW: capW, ladder: ladder}, nil
}

// SetCap retargets the power budget (e.g. battery-saver engaged).
func (g *PowerGovernor) SetCap(capW float64) {
	if capW > 0 {
		g.capW = capW
	}
}

// Step performs one control iteration: clamp frequency under the cap,
// simulate one invocation under the runtime tuner's current
// configuration, feed the measurement back, and report what happened.
func (g *PowerGovernor) Step() StepReport {
	// Highest frequency whose busy system power fits the cap.
	chosen := g.ladder[len(g.ladder)-1]
	for _, f := range g.ladder {
		g.dev.SetFrequencyMHz(f)
		_, _, sys := g.dev.Rails()
		if sys <= g.capW {
			chosen = f
			break
		}
	}
	g.dev.SetFrequencyMHz(chosen)
	pt := g.rt.CurrentPoint()
	t := g.dev.Time(g.costs, pt.Config)
	_, _, sys := g.dev.Rails()
	g.rt.RecordInvocation(t)
	return StepReport{
		FreqMHz: chosen,
		SysW:    sys,
		Time:    t,
		Point:   pt,
		OverCap: sys > g.capW,
		EnergyJ: g.dev.Energy(g.costs, pt.Config),
	}
}

// StepReport summarizes one governor iteration.
type StepReport struct {
	FreqMHz float64
	SysW    float64
	Time    float64
	EnergyJ float64
	Point   pareto.Point
	// OverCap is true when even the lowest DVFS step exceeds the budget.
	OverCap bool
}
