package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/approx"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/tensor"
)

// Runtime-adaptation telemetry: invocation counts, configuration
// switches, invocations that missed the performance target, and the
// speedup the controller currently demands.
var (
	mRtInvocations = obs.NewCounter("runtime.invocations")
	mRtSwitches    = obs.NewCounter("runtime.config_switches")
	mRtMisses      = obs.NewCounter("runtime.target_misses")
	gRtRequired    = obs.NewGauge("runtime.required_perf")
)

// Policy selects the run-time configuration-selection strategy (§5).
type Policy int

const (
	// PolicyEnforce picks a configuration with performance no smaller
	// than the target in every invocation — an O(log |PS|) binary search,
	// suited to (soft) real-time deadlines.
	PolicyEnforce Policy = iota
	// PolicyAverage probabilistically mixes the two configurations
	// bracketing the target so that p1·Perf1 + p2·Perf2 = PerfT, matching
	// the target throughput on average.
	PolicyAverage
)

func (p Policy) String() string {
	if p == PolicyAverage {
		return "average"
	}
	return "enforce"
}

// DefaultHysteresis is the relative deadband around the active
// configuration's speedup inside which the controller holds its choice.
// Without it, measurement noise around a curve point's exact Perf (or a
// required speedup landing between two equal-cost neighbors) makes the
// per-window re-selection ping-pong between adjacent configurations even
// though either satisfies the target equally well.
const DefaultHysteresis = 0.05

// maxSwitchTrace bounds the retained switch history; older events are
// dropped first. 4096 windows of history is far more than any SLO
// post-mortem needs while keeping the tuner's footprint fixed.
const maxSwitchTrace = 4096

// SwitchEvent records one configuration change: the invocation count at
// which it happened and the curve indices switched between. A negative
// From marks the switch installed by a curve hot-swap (SwapCurve).
type SwitchEvent struct {
	Invocation int `json:"invocation"`
	From       int `json:"from"`
	To         int `json:"to"`
}

// RuntimeTuner adapts approximation settings at run time to hold a
// performance target under changing system conditions. It consumes the
// final tradeoff curve shipped with the binary; switching configurations
// is just switching numerical parameters of the tensor ops, so the
// overhead is negligible (§5). A tuner is safe for concurrent use: the
// monitor thread may feed RecordInvocation while worker threads read
// Current/CurrentPoint.
type RuntimeTuner struct {
	curve      *pareto.Curve
	policy     Policy
	targetTime float64 // desired per-invocation time (seconds)
	window     int     // sliding window length (invocations)
	rng        *tensor.RNG

	mu      sync.Mutex
	times   []float64 // current window's invocation times (tumbling)
	current pareto.Point
	curIdx  int // index of current on the curve
	// requiredPerf is the speedup (relative to the exact baseline) the
	// tuner currently believes is needed to hold the target.
	requiredPerf float64
	// hysteresis is the relative deadband around current.Perf inside
	// which a window evaluation keeps the active configuration.
	hysteresis  float64
	switches    int
	invocations int
	curveSwaps  int
	trace       []SwitchEvent
	span        *obs.Span
	closed      bool

	// Health-monitor state (health.go): per-configuration latency
	// histograms and drift detectors, plus the latched recalibration
	// signal.
	health      map[int]*configHealth
	driftAlarms int
	recalibrate bool
}

// NewRuntimeTuner builds a runtime controller. targetTime is the
// per-invocation time to maintain (typically the baseline configuration's
// time at the highest frequency); window is the sliding-window size in
// invocations (§6.4 uses one batch).
func NewRuntimeTuner(curve *pareto.Curve, policy Policy, targetTime float64, window int, seed int64) (*RuntimeTuner, error) {
	if curve == nil || curve.Len() == 0 {
		return nil, fmt.Errorf("core: runtime tuner needs a non-empty tradeoff curve")
	}
	if targetTime <= 0 || window <= 0 {
		return nil, fmt.Errorf("core: bad runtime target %v / window %d", targetTime, window)
	}
	rt := &RuntimeTuner{
		curve:        curve,
		policy:       policy,
		targetTime:   targetTime,
		window:       window,
		rng:          tensor.NewRNG(seed),
		requiredPerf: 1,
		hysteresis:   DefaultHysteresis,
		span: obs.Start("phase:runtime").
			With("program", curve.Program).With("policy", policy.String()).
			With("target_time", targetTime).With("window", window),
	}
	rt.current = rt.pick(1)
	rt.curIdx = rt.indexOf(rt.current)
	return rt, nil
}

// Close ends the tuner's phase:runtime trace span, attaching the final
// invocation, switch and drift-alarm counts. Close is idempotent: only
// the first call ends the span, so a deferred Close alongside an
// explicit one cannot double-end it. Safe on tuners created while
// tracing was disabled.
func (rt *RuntimeTuner) Close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return
	}
	rt.closed = true
	rt.span.With("invocations", rt.invocations).With("switches", rt.switches).
		With("drift_alarms", rt.driftAlarms).End()
}

// Current returns the configuration to use for the next invocation. Under
// PolicyAverage this may alternate probabilistically between the two
// bracketing points.
func (rt *RuntimeTuner) Current() approx.Config {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.current.Config
}

// CurrentPoint returns the active tradeoff point.
func (rt *RuntimeTuner) CurrentPoint() pareto.Point {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.current
}

// Switches counts configuration changes so far.
func (rt *RuntimeTuner) Switches() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.switches
}

// CurveSwaps counts hot-swaps of the tradeoff curve (SwapCurve calls).
func (rt *RuntimeTuner) CurveSwaps() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.curveSwaps
}

// Acquire returns the configuration to execute next together with its
// curve index. Executors that may report measurements after the
// controller has moved on (concurrent workers, queued batches) must
// remember the index and feed it back through RecordInvocationAt so the
// sample is attributed to the configuration that actually ran it.
func (rt *RuntimeTuner) Acquire() (pareto.Point, int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.current, rt.curIdx
}

// SwitchTrace returns the retained configuration-switch history (oldest
// first, bounded to the most recent maxSwitchTrace events).
func (rt *RuntimeTuner) SwitchTrace() []SwitchEvent {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]SwitchEvent(nil), rt.trace...)
}

// SetHysteresis adjusts the relative deadband around the active
// configuration's speedup inside which window evaluations hold the
// current choice (default DefaultHysteresis). Non-finite or negative
// values are ignored.
func (rt *RuntimeTuner) SetHysteresis(h float64) {
	if math.IsNaN(h) || math.IsInf(h, 0) || h < 0 {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.hysteresis = h
}

// RecordInvocation feeds one invocation's measured execution time to the
// system monitor, attributed to the currently active configuration. Use
// RecordInvocationAt when the executing goroutine acquired its
// configuration earlier (and the controller may have switched since).
func (rt *RuntimeTuner) RecordInvocation(execTime float64) {
	rt.RecordInvocationAt(-1, execTime)
}

// RecordInvocationAt feeds one invocation's measured execution time to
// the system monitor, attributed to the configuration at curve index idx
// (as returned by Acquire when the invocation started; idx < 0 means the
// currently active configuration).
//
// The control window is a tumbling window over the *active*
// configuration only: samples accumulate until the window fills, the
// controller evaluates once, and the window restarts empty. Re-selection
// therefore happens at most once per full window (§5's batch-granularity
// monitor), never on every invocation, and a window never mixes samples
// measured under different configurations — mixing them would corrupt
// systemSlowdown = avg·Perf/target, which is only meaningful when every
// sample in the average ran under the configuration whose Perf scales
// it. Samples attributed to a configuration other than the active one
// (stale executors reporting after a switch) still feed the per-config
// health monitor but stay out of the control window for the same reason.
func (rt *RuntimeTuner) RecordInvocationAt(idx int, execTime float64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.invocations++
	mRtInvocations.Inc()
	if execTime > rt.targetTime {
		mRtMisses.Inc()
	}
	if idx < 0 || idx >= rt.curve.Len() {
		idx = rt.curIdx
	}
	rt.observeHealth(idx, execTime)
	if idx != rt.curIdx {
		// Stale attribution: the sample ran under a configuration the
		// controller has already left. It must not enter the window —
		// its magnitude reflects a different Perf scale.
		return
	}
	rt.times = append(rt.times, execTime)
	if len(rt.times) < rt.window {
		return
	}
	var avg float64
	for _, t := range rt.times {
		avg += t
	}
	avg /= float64(len(rt.times))
	rt.times = rt.times[:0] // tumbling window: evaluate once, restart empty

	// The observed average ran under the current configuration, whose
	// speedup is current.Perf; the slowdown attributable to the system is
	// therefore avg·Perf relative to the baseline target.
	systemSlowdown := avg * rt.current.Perf / rt.targetTime
	rt.requiredPerf = systemSlowdown
	gRtRequired.Set(rt.requiredPerf)
	// Hysteresis deadband: when the required speedup is within the band
	// around what the active configuration already delivers, hold it —
	// re-picking here only ping-pongs between equal-cost neighbors.
	if math.Abs(systemSlowdown-rt.current.Perf) <= rt.hysteresis*rt.current.Perf {
		return
	}
	next := rt.pick(rt.requiredPerf)
	//lint:ignore floateq curve points are discrete entries; a switch is a change of identity, not of magnitude
	if next.Perf != rt.current.Perf || !sameConfig(next.Config, rt.current.Config) {
		rt.switchTo(next)
	}
}

// switchTo installs a new active configuration, recording the switch in
// the counters and the bounded trace. Caller holds rt.mu.
func (rt *RuntimeTuner) switchTo(next pareto.Point) {
	from := rt.curIdx
	rt.switches++
	mRtSwitches.Inc()
	rt.current = next
	rt.curIdx = rt.indexOf(next)
	rt.trace = append(rt.trace, SwitchEvent{Invocation: rt.invocations, From: from, To: rt.curIdx})
	if len(rt.trace) > maxSwitchTrace {
		rt.trace = rt.trace[len(rt.trace)-maxSwitchTrace:]
	}
	obs.Flight().Event("runtime.config_switch",
		fmt.Sprintf("from=%d to=%d invocation=%d", from, rt.curIdx, rt.invocations), obs.TraceID{})
}

// SwapCurve hot-swaps the tradeoff curve the controller selects from —
// the recalibration path: when drift detection reports the shipped curve
// no longer matches the machine, install-time tuning re-runs and the
// fresh curve is installed here without restarting the serving process.
// The per-configuration health state is reset (it is keyed by curve
// index, which is meaningless across curves), the control window is
// cleared, the latched recalibration signal is released, and selection
// restarts from the last required speedup on the new curve. Lifetime
// counters (invocations, switches, drift alarms) are preserved.
func (rt *RuntimeTuner) SwapCurve(curve *pareto.Curve) error {
	if curve == nil || curve.Len() == 0 {
		return fmt.Errorf("core: curve swap needs a non-empty tradeoff curve")
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.curve = curve
	rt.health = nil
	rt.times = rt.times[:0]
	rt.recalibrate = false
	rt.curveSwaps++
	from := rt.curIdx
	rt.current = rt.pick(rt.requiredPerf)
	rt.curIdx = rt.indexOf(rt.current)
	rt.trace = append(rt.trace, SwitchEvent{Invocation: rt.invocations, From: -1 - from, To: rt.curIdx})
	if len(rt.trace) > maxSwitchTrace {
		rt.trace = rt.trace[len(rt.trace)-maxSwitchTrace:]
	}
	obs.Flight().Event("runtime.curve_swap",
		fmt.Sprintf("swap=%d to=%d invocation=%d", rt.curveSwaps, rt.curIdx, rt.invocations), obs.TraceID{})
	return nil
}

func sameConfig(a, b approx.Config) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b.Knob(k) != v {
			return false
		}
	}
	return true
}

// pick selects a tradeoff point achieving the required speedup under the
// active policy.
func (rt *RuntimeTuner) pick(required float64) pareto.Point {
	switch rt.policy {
	case PolicyEnforce:
		if pt, ok := rt.curve.AtLeastPerf(required); ok {
			return pt
		}
		// Nothing reaches the target; degrade as gracefully as possible.
		return rt.curve.Points[rt.curve.Len()-1]
	default: // PolicyAverage
		below, above, _ := rt.curve.Bracket(required)
		//lint:ignore floateq bracket endpoints coincide only when they are the same stored curve entry
		if below.Perf == above.Perf {
			return below
		}
		// p1·Perf1 + p2·Perf2 = PerfT with p1 + p2 = 1. When the target
		// falls outside [below.Perf, above.Perf] (endpoint extrapolation,
		// or a hand-built curve whose points defeat the bracket search)
		// the raw p1 leaves [0,1]: return the endpoint deterministically
		// instead of drawing a nonsense probability.
		p1 := mixWeight(below.Perf, above.Perf, required)
		if p1 >= 1 {
			return below
		}
		if p1 <= 0 {
			return above
		}
		if rt.rng.Float64() < p1 {
			return below
		}
		return above
	}
}

// mixWeight computes the Policy-2 probability of the slower bracket
// point, clamped into [0,1]: required at or below the slow endpoint
// returns 1 (always the slow point), at or above the fast endpoint 0
// (always the fast point). NaN inputs clamp to 1, the conservative
// (least-approximate) endpoint.
func mixWeight(belowPerf, abovePerf, required float64) float64 {
	p1 := (abovePerf - required) / (abovePerf - belowPerf)
	if !(p1 < 1) { // also catches NaN
		return 1
	}
	if p1 < 0 {
		return 0
	}
	return p1
}

// MixProbabilities exposes the Policy-2 mixing weights for a target
// speedup — (p1 for the slower point, p2 for the faster point) — mainly
// for testing and for the worked example in §5 (PerfT = 1.3 with points
// 1.2 and 1.5 gives 2/3 and 1/3). The weights are always valid
// probabilities: a target outside the curve's Perf range clamps to the
// nearest endpoint ((1,0) at or below the slowest point, (0,1) at or
// above the fastest).
func (rt *RuntimeTuner) MixProbabilities(required float64) (below, above pareto.Point, p1, p2 float64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	below, above, _ = rt.curve.Bracket(required)
	//lint:ignore floateq bracket endpoints coincide only when they are the same stored curve entry
	if below.Perf == above.Perf {
		return below, above, 1, 0
	}
	p1 = mixWeight(below.Perf, above.Perf, required)
	return below, above, p1, 1 - p1
}
