package core

import (
	"fmt"
	"sync"

	"repro/internal/approx"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/tensor"
)

// Runtime-adaptation telemetry: invocation counts, configuration
// switches, invocations that missed the performance target, and the
// speedup the controller currently demands.
var (
	mRtInvocations = obs.NewCounter("runtime.invocations")
	mRtSwitches    = obs.NewCounter("runtime.config_switches")
	mRtMisses      = obs.NewCounter("runtime.target_misses")
	gRtRequired    = obs.NewGauge("runtime.required_perf")
)

// Policy selects the run-time configuration-selection strategy (§5).
type Policy int

const (
	// PolicyEnforce picks a configuration with performance no smaller
	// than the target in every invocation — an O(log |PS|) binary search,
	// suited to (soft) real-time deadlines.
	PolicyEnforce Policy = iota
	// PolicyAverage probabilistically mixes the two configurations
	// bracketing the target so that p1·Perf1 + p2·Perf2 = PerfT, matching
	// the target throughput on average.
	PolicyAverage
)

func (p Policy) String() string {
	if p == PolicyAverage {
		return "average"
	}
	return "enforce"
}

// RuntimeTuner adapts approximation settings at run time to hold a
// performance target under changing system conditions. It consumes the
// final tradeoff curve shipped with the binary; switching configurations
// is just switching numerical parameters of the tensor ops, so the
// overhead is negligible (§5). A tuner is safe for concurrent use: the
// monitor thread may feed RecordInvocation while worker threads read
// Current/CurrentPoint.
type RuntimeTuner struct {
	curve      *pareto.Curve
	policy     Policy
	targetTime float64 // desired per-invocation time (seconds)
	window     int     // sliding window length (invocations)
	rng        *tensor.RNG

	mu      sync.Mutex
	times   []float64 // recent invocation times
	current pareto.Point
	curIdx  int // index of current on the curve
	// requiredPerf is the speedup (relative to the exact baseline) the
	// tuner currently believes is needed to hold the target.
	requiredPerf float64
	switches     int
	invocations  int
	span         *obs.Span
	closed       bool

	// Health-monitor state (health.go): per-configuration latency
	// histograms and drift detectors, plus the latched recalibration
	// signal.
	health      map[int]*configHealth
	driftAlarms int
	recalibrate bool
}

// NewRuntimeTuner builds a runtime controller. targetTime is the
// per-invocation time to maintain (typically the baseline configuration's
// time at the highest frequency); window is the sliding-window size in
// invocations (§6.4 uses one batch).
func NewRuntimeTuner(curve *pareto.Curve, policy Policy, targetTime float64, window int, seed int64) (*RuntimeTuner, error) {
	if curve == nil || curve.Len() == 0 {
		return nil, fmt.Errorf("core: runtime tuner needs a non-empty tradeoff curve")
	}
	if targetTime <= 0 || window <= 0 {
		return nil, fmt.Errorf("core: bad runtime target %v / window %d", targetTime, window)
	}
	rt := &RuntimeTuner{
		curve:        curve,
		policy:       policy,
		targetTime:   targetTime,
		window:       window,
		rng:          tensor.NewRNG(seed),
		requiredPerf: 1,
		span: obs.Start("phase:runtime").
			With("program", curve.Program).With("policy", policy.String()).
			With("target_time", targetTime).With("window", window),
	}
	rt.current = rt.pick(1)
	rt.curIdx = rt.indexOf(rt.current)
	return rt, nil
}

// Close ends the tuner's phase:runtime trace span, attaching the final
// invocation, switch and drift-alarm counts. Close is idempotent: only
// the first call ends the span, so a deferred Close alongside an
// explicit one cannot double-end it. Safe on tuners created while
// tracing was disabled.
func (rt *RuntimeTuner) Close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return
	}
	rt.closed = true
	rt.span.With("invocations", rt.invocations).With("switches", rt.switches).
		With("drift_alarms", rt.driftAlarms).End()
}

// Current returns the configuration to use for the next invocation. Under
// PolicyAverage this may alternate probabilistically between the two
// bracketing points.
func (rt *RuntimeTuner) Current() approx.Config {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.current.Config
}

// CurrentPoint returns the active tradeoff point.
func (rt *RuntimeTuner) CurrentPoint() pareto.Point {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.current
}

// Switches counts configuration changes so far.
func (rt *RuntimeTuner) Switches() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.switches
}

// RecordInvocation feeds one invocation's measured execution time to the
// system monitor. When the sliding-window average falls below the target,
// the tuner computes the required speedup and re-selects from the curve
// (§5); it also relaxes back toward less-approximate configurations when
// the system speeds up again.
func (rt *RuntimeTuner) RecordInvocation(execTime float64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.invocations++
	mRtInvocations.Inc()
	if execTime > rt.targetTime {
		mRtMisses.Inc()
	}
	// Attribute the measurement to the configuration that actually ran
	// it — the one active on entry — before any switch below.
	rt.observeHealth(rt.curIdx, execTime)
	rt.times = append(rt.times, execTime)
	if len(rt.times) > rt.window {
		rt.times = rt.times[len(rt.times)-rt.window:]
	}
	if len(rt.times) < rt.window {
		return
	}
	var avg float64
	for _, t := range rt.times {
		avg += t
	}
	avg /= float64(len(rt.times))

	// The observed average ran under the current configuration, whose
	// speedup is current.Perf; the slowdown attributable to the system is
	// therefore avg·Perf relative to the baseline target.
	systemSlowdown := avg * rt.current.Perf / rt.targetTime
	rt.requiredPerf = systemSlowdown
	gRtRequired.Set(rt.requiredPerf)
	next := rt.pick(rt.requiredPerf)
	//lint:ignore floateq curve points are discrete entries; a switch is a change of identity, not of magnitude
	if next.Perf != rt.current.Perf || !sameConfig(next.Config, rt.current.Config) {
		rt.switches++
		mRtSwitches.Inc()
		rt.current = next
		rt.curIdx = rt.indexOf(next)
	}
}

func sameConfig(a, b approx.Config) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b.Knob(k) != v {
			return false
		}
	}
	return true
}

// pick selects a tradeoff point achieving the required speedup under the
// active policy.
func (rt *RuntimeTuner) pick(required float64) pareto.Point {
	switch rt.policy {
	case PolicyEnforce:
		if pt, ok := rt.curve.AtLeastPerf(required); ok {
			return pt
		}
		// Nothing reaches the target; degrade as gracefully as possible.
		return rt.curve.Points[rt.curve.Len()-1]
	default: // PolicyAverage
		below, above, _ := rt.curve.Bracket(required)
		//lint:ignore floateq bracket endpoints coincide only when they are the same stored curve entry
		if below.Perf == above.Perf {
			return below
		}
		// p1·Perf1 + p2·Perf2 = PerfT with p1 + p2 = 1.
		p1 := (above.Perf - required) / (above.Perf - below.Perf)
		if rt.rng.Float64() < p1 {
			return below
		}
		return above
	}
}

// MixProbabilities exposes the Policy-2 mixing weights for a target
// speedup — (p1 for the slower point, p2 for the faster point) — mainly
// for testing and for the worked example in §5 (PerfT = 1.3 with points
// 1.2 and 1.5 gives 2/3 and 1/3).
func (rt *RuntimeTuner) MixProbabilities(required float64) (below, above pareto.Point, p1, p2 float64) {
	below, above, _ = rt.curve.Bracket(required)
	//lint:ignore floateq bracket endpoints coincide only when they are the same stored curve entry
	if below.Perf == above.Perf {
		return below, above, 1, 0
	}
	p1 = (above.Perf - required) / (above.Perf - below.Perf)
	return below, above, p1, 1 - p1
}
