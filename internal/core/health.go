package core

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/pareto"
)

// Drift-detection parameters for the runtime health monitor. The
// detectors smooth per-invocation observations with an exponentially
// weighted moving average and compare against what the shipped tradeoff
// curve predicted for the active configuration; detection is per
// configuration, so a legitimate policy switch never looks like drift.
const (
	// driftAlpha is the EWMA smoothing factor for both detectors.
	driftAlpha = 0.3
	// driftWarmup is the number of samples a configuration must
	// accumulate before its detectors may alarm, so a single cold-cache
	// invocation cannot trip a recalibration.
	driftWarmup = 5
	// driftBand bounds the acceptable observed/predicted execution-time
	// ratio: a configuration is speedup-drifting when its smoothed ratio
	// leaves [1/driftBand, driftBand].
	driftBand = 1.5
	// qosDriftTolerance is the acceptable gap, in QoS points, between
	// the calibrated QoS the curve promises for a configuration and the
	// smoothed QoS observed in production.
	qosDriftTolerance = 1.0
)

// Health telemetry: per-invocation latency quantiles and the count of
// drift alarms raised by the predicted-vs-observed detectors.
var (
	qRtInvocation  = obs.NewQHistogram("runtime.invocation_seconds")
	mRtDriftAlarms = obs.NewCounter("runtime.drift_alarms")
)

// configHealth is the per-configuration monitor state, keyed by the
// configuration's index on the tradeoff curve.
type configHealth struct {
	hist        *obs.QHistogram // latency distribution for this config only
	invocations int64

	timeSamples  int
	timeEwma     float64 // EWMA of observed/predicted execution-time ratio
	timeDrifting bool

	qosSamples  int
	qosEwma     float64 // EWMA of observed QoS
	qosDrifting bool

	alarms int
}

// ConfigHealth is the exported health snapshot of one curve
// configuration.
type ConfigHealth struct {
	// Index is the configuration's position on the tradeoff curve.
	Index int `json:"index"`
	// Config renders the configuration in Table-3 style (knob-family
	// counts), the same form the reports use.
	Config string `json:"config"`
	// Perf and PredictedQoS are the curve's promises; PredictedTime is
	// targetTime/Perf, the per-invocation time the curve implies.
	Perf          float64 `json:"perf"`
	PredictedQoS  float64 `json:"predicted_qos"`
	PredictedTime float64 `json:"predicted_time"`

	Invocations int64        `json:"invocations"`
	Latency     obs.QSummary `json:"latency"`

	// TimeRatio is the smoothed observed/predicted execution-time ratio
	// (1.0 means the curve's speedup still holds).
	TimeRatio    float64 `json:"time_ratio"`
	TimeDrifting bool    `json:"time_drifting"`
	ObservedQoS  float64 `json:"observed_qos,omitempty"`
	QoSDrifting  bool    `json:"qos_drifting"`
	Alarms       int     `json:"alarms"`
}

// Drifting reports whether either detector currently flags this
// configuration.
func (c ConfigHealth) Drifting() bool { return c.TimeDrifting || c.QoSDrifting }

// RuntimeHealth is a point-in-time health snapshot of a RuntimeTuner.
type RuntimeHealth struct {
	Program    string  `json:"program"`
	Policy     string  `json:"policy"`
	TargetTime float64 `json:"target_time"`

	Invocations int `json:"invocations"`
	Switches    int `json:"switches"`
	// DriftAlarms counts detector transitions into the drifting state
	// over the tuner's lifetime (it never decreases).
	DriftAlarms int `json:"drift_alarms"`
	// RecalibrationNeeded latches true once any configuration has
	// alarmed: the shipped curve no longer matches this machine and the
	// install-time calibration should be re-run.
	RecalibrationNeeded bool `json:"recalibration_needed"`

	// Latency aggregates every invocation regardless of configuration.
	Latency obs.QSummary `json:"latency"`
	// Configs lists only configurations that have run at least once,
	// in curve order.
	Configs []ConfigHealth `json:"configs"`
}

// Drifting returns the subset of configurations currently flagged by a
// detector, in curve order.
func (h RuntimeHealth) Drifting() []ConfigHealth {
	var out []ConfigHealth
	for _, c := range h.Configs {
		if c.Drifting() {
			out = append(out, c)
		}
	}
	return out
}

// String renders a one-line-per-config health summary for CLI output.
func (h RuntimeHealth) String() string {
	s := fmt.Sprintf("runtime health: %d invocations, %d switches, %d drift alarms, recalibration_needed=%v\n",
		h.Invocations, h.Switches, h.DriftAlarms, h.RecalibrationNeeded)
	s += fmt.Sprintf("  latency: n=%d p50=%.4gs p99=%.4gs max=%.4gs\n", h.Latency.Count, h.Latency.P50, h.Latency.P99, h.Latency.Max)
	for _, c := range h.Configs {
		flag := ""
		if c.Drifting() {
			flag = "  << DRIFTING"
		}
		s += fmt.Sprintf("  config[%d] %s: perf=%.2f n=%d p50=%.4gs ratio=%.2f alarms=%d%s\n",
			c.Index, c.Config, c.Perf, c.Invocations, c.Latency.P50, c.TimeRatio, c.Alarms, flag)
	}
	return s
}

// healthFor returns (creating on first use) the monitor state for the
// curve configuration at index idx. Caller holds rt.mu.
func (rt *RuntimeTuner) healthFor(idx int) *configHealth {
	if rt.health == nil {
		rt.health = make(map[int]*configHealth)
	}
	ch := rt.health[idx]
	if ch == nil {
		ch = &configHealth{hist: obs.NewQHist()}
		rt.health[idx] = ch
	}
	return ch
}

// indexOf locates pt on the curve by configuration identity. Caller
// holds rt.mu.
func (rt *RuntimeTuner) indexOf(pt pareto.Point) int {
	for i, p := range rt.curve.Points {
		if sameConfig(p.Config, pt.Config) {
			return i
		}
	}
	return 0
}

// observeHealth feeds one invocation's execution time into the health
// monitor, attributed to the configuration at curve index idx (the one
// active when the invocation ran). Caller holds rt.mu.
func (rt *RuntimeTuner) observeHealth(idx int, execTime float64) {
	qRtInvocation.Observe(execTime)
	ch := rt.healthFor(idx)
	ch.hist.Observe(execTime)
	ch.invocations++

	pt := rt.curve.Points[idx]
	predicted := rt.targetTime / pt.Perf
	if !(predicted > 0) {
		return
	}
	ratio := execTime / predicted
	if ch.timeSamples == 0 {
		ch.timeEwma = ratio
	} else {
		ch.timeEwma = driftAlpha*ratio + (1-driftAlpha)*ch.timeEwma
	}
	ch.timeSamples++
	drifting := ch.timeSamples >= driftWarmup &&
		(ch.timeEwma > driftBand || ch.timeEwma < 1/driftBand)
	if drifting && !ch.timeDrifting {
		rt.raiseAlarm(ch)
	}
	ch.timeDrifting = drifting
}

// RecordQoS feeds one invocation's measured QoS (e.g. an end-to-end
// accuracy check on a golden input slice) to the health monitor,
// attributed to the currently active configuration. When the smoothed
// observed QoS falls more than qosDriftTolerance points below the
// calibrated QoS the curve promises, the configuration is flagged as
// QoS-drifting and a drift alarm is raised.
func (rt *RuntimeTuner) RecordQoS(qos float64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ch := rt.healthFor(rt.curIdx)
	if ch.qosSamples == 0 {
		ch.qosEwma = qos
	} else {
		ch.qosEwma = driftAlpha*qos + (1-driftAlpha)*ch.qosEwma
	}
	ch.qosSamples++
	predicted := rt.curve.Points[rt.curIdx].QoS
	drifting := ch.qosSamples >= driftWarmup && predicted-ch.qosEwma > qosDriftTolerance
	if drifting && !ch.qosDrifting {
		rt.raiseAlarm(ch)
	}
	ch.qosDrifting = drifting
}

// raiseAlarm records one detector transition into the drifting state.
// Caller holds rt.mu.
func (rt *RuntimeTuner) raiseAlarm(ch *configHealth) {
	ch.alarms++
	rt.driftAlarms++
	rt.recalibrate = true
	mRtDriftAlarms.Inc()
	obs.Flight().Event("runtime.drift_alarm",
		fmt.Sprintf("config=%d alarms=%d invocation=%d", rt.curIdx, rt.driftAlarms, rt.invocations), obs.TraceID{})
}

// DriftAlarms counts detector transitions into the drifting state over
// the tuner's lifetime (preserved across curve swaps).
func (rt *RuntimeTuner) DriftAlarms() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.driftAlarms
}

// RecalibrationNeeded reports whether any configuration has raised a
// drift alarm since the tuner started: the shipped tradeoff curve no
// longer describes this machine and install-time calibration should be
// re-run. The signal latches; it is cleared only by a new tuner built
// from a fresh curve.
func (rt *RuntimeTuner) RecalibrationNeeded() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.recalibrate
}

// Health returns a point-in-time health snapshot: lifetime counters,
// the overall latency distribution, and per-configuration latency and
// drift-detector state for every configuration that has run.
func (rt *RuntimeTuner) Health() RuntimeHealth {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	h := RuntimeHealth{
		Program:             rt.curve.Program,
		Policy:              rt.policy.String(),
		TargetTime:          rt.targetTime,
		Invocations:         rt.invocations,
		Switches:            rt.switches,
		DriftAlarms:         rt.driftAlarms,
		RecalibrationNeeded: rt.recalibrate,
	}
	overall := obs.NewQHist().Snapshot()
	idxs := make([]int, 0, len(rt.health))
	for idx := range rt.health {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		ch := rt.health[idx]
		if ch.invocations == 0 && ch.qosSamples == 0 {
			continue
		}
		pt := rt.curve.Points[idx]
		snap := ch.hist.Snapshot()
		overall.Merge(snap)
		cfg := ConfigHealth{
			Index:         idx,
			Config:        pt.Config.FormatGroupCounts(),
			Perf:          pt.Perf,
			PredictedQoS:  pt.QoS,
			PredictedTime: rt.targetTime / pt.Perf,
			Invocations:   ch.invocations,
			Latency:       snap.Summary(),
			TimeRatio:     ch.timeEwma,
			TimeDrifting:  ch.timeDrifting,
			QoSDrifting:   ch.qosDrifting,
			Alarms:        ch.alarms,
		}
		if ch.qosSamples > 0 {
			cfg.ObservedQoS = ch.qosEwma
		}
		h.Configs = append(h.Configs, cfg)
	}
	h.Latency = overall.Summary()
	return h
}
