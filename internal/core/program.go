// Package core implements ApproxTuner's primary contribution: the
// three-phase accuracy-aware tuning pipeline of §2.2 —
//
//   - development-time predictive tuning (Algorithm 1) building a relaxed
//     tradeoff curve PSε over hardware-independent approximations,
//   - install-time refinement with real device measurements plus
//     distributed predictive tuning over hardware-specific knobs
//     (the PROMISE accelerator), and
//   - run-time adaptation that picks configurations off the shipped curve
//     to hold a performance target under DVFS-induced slowdowns.
//
// Programs are abstracted behind the Program interface so both plain CNN
// graphs and composite pipelines (CNN + Canny with a multi-metric QoS) are
// tunable.
package core

import (
	"errors"
	"fmt"

	"repro/internal/approx"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/tensor"
	"repro/internal/tensorops"
)

// InputSet selects which inputs a program runs on: the calibration set
// drives profiling/tuning/validation, the test set drives reported
// results (§6: 5K/5K split).
type InputSet int

const (
	Calib InputSet = iota
	Test
)

// Program is a tunable tensor program.
type Program interface {
	Name() string
	// Ops lists the approximable operations (the domain of a Config).
	Ops() []int
	// OpClass gives the knob class of an op.
	OpClass(op int) approx.OpClass
	// Run executes the program under cfg on the chosen input set and
	// returns the raw output tensor. rng feeds PROMISE noise injection
	// and may be nil for configurations without hardware knobs.
	Run(cfg approx.Config, set InputSet, rng *tensor.RNG) *tensor.Tensor
	// Score computes the program's QoS for an output of the given set.
	Score(set InputSet, out *tensor.Tensor) float64
	// Costs returns the baseline per-node operation counts for the
	// calibration batch (performance prediction and device timing).
	Costs() []graph.NodeCost
	// FixedOutputShape reports whether raw outputs always have the same
	// shape (required by Π1, §8).
	FixedOutputShape() bool
}

// Prepacker is an optional Program capability: pre-populate the pack-once
// operand caches (packed weight panels, FP16 copies) before tuning starts,
// recording the work under the caller's observability span so the
// pack_cache prepass is visible in traces.
type Prepacker interface {
	Prepack(parent *obs.Span)
}

// SuffixRunner is an optional fast path for profile collection: running
// the program with a single op approximated by re-executing only the
// graph suffix below that op.
type SuffixRunner interface {
	RunSuffix(op int, knob approx.KnobID, set InputSet, rng *tensor.RNG) *tensor.Tensor
}

// TracedRunner is an optional Program capability: execute under a parent
// observability span so the execution (and, budget permitting, its
// per-node kernels) appears in the trace nested under the caller's phase.
type TracedRunner interface {
	RunTraced(cfg approx.Config, set InputSet, rng *tensor.RNG, parent *obs.Span) *tensor.Tensor
}

// TracedSuffixRunner is the traced variant of SuffixRunner.
type TracedSuffixRunner interface {
	RunSuffixTraced(op int, knob approx.KnobID, set InputSet, rng *tensor.RNG, parent *obs.Span) *tensor.Tensor
}

// GraphProgram adapts a dataflow graph plus calibration/test inputs and
// QoS metrics to the Program interface. It caches baseline node values per
// input set to accelerate profile collection.
type GraphProgram struct {
	Graph       *graph.Graph
	CalibIn     *tensor.Tensor
	TestIn      *tensor.Tensor
	CalibMetric qos.Metric
	TestMetric  qos.Metric

	// CalibMetricFor, when set, builds the QoS metric for a calibration
	// shard [lo, hi) and enables distributed install-time tuning (the
	// Sharder interface).
	CalibMetricFor func(lo, hi int) qos.Metric

	costs     []graph.NodeCost
	baseCalib []*tensor.Tensor
	baseTest  []*tensor.Tensor
}

// NewGraphProgram builds the adapter and precomputes baseline caches and
// cost tables. The graph is statically validated (structure and shape
// consistency) before any tensor work happens, so a malformed graph fails
// at program load with the full list of problems rather than mid-tuning.
func NewGraphProgram(g *graph.Graph, calibIn, testIn *tensor.Tensor, calibMetric, testMetric qos.Metric) (*GraphProgram, error) {
	if verrs := g.ValidateDeep(calibIn.Shape()); len(verrs) > 0 {
		return nil, fmt.Errorf("core: graph %q failed static validation: %w", g.Name, errors.Join(verrs...))
	}
	costs, err := g.Costs(calibIn.Shape())
	if err != nil {
		return nil, err
	}
	// Register the long-lived tensors with the pack cache: constant
	// weights (packed panels, FP16 copies) and the calibration/test
	// batches (quantized copies, packed im2col columns) are reused across
	// thousands of tuning executions, so their derived operands memoize.
	g.PrepackWeights()
	calibIn.MarkCacheable()
	testIn.MarkCacheable()
	return &GraphProgram{
		Graph:       g,
		CalibIn:     calibIn,
		TestIn:      testIn,
		CalibMetric: calibMetric,
		TestMetric:  testMetric,
		costs:       costs,
	}, nil
}

// Name implements Program.
func (p *GraphProgram) Name() string { return p.Graph.Name }

// Ops implements Program.
func (p *GraphProgram) Ops() []int { return p.Graph.ApproxOps() }

// OpClass implements Program.
func (p *GraphProgram) OpClass(op int) approx.OpClass { return p.Graph.Nodes[op].Kind.Class() }

// Costs implements Program.
func (p *GraphProgram) Costs() []graph.NodeCost { return p.costs }

// FixedOutputShape implements Program: plain graphs always produce
// fixed-shape outputs.
func (p *GraphProgram) FixedOutputShape() bool { return true }

func (p *GraphProgram) input(set InputSet) *tensor.Tensor {
	if set == Test {
		return p.TestIn
	}
	return p.CalibIn
}

// Run implements Program.
func (p *GraphProgram) Run(cfg approx.Config, set InputSet, rng *tensor.RNG) *tensor.Tensor {
	return p.Graph.Execute(p.input(set), cfg, graph.ExecOptions{RNG: rng})
}

// RunTraced implements TracedRunner.
func (p *GraphProgram) RunTraced(cfg approx.Config, set InputSet, rng *tensor.RNG, parent *obs.Span) *tensor.Tensor {
	return p.Graph.Execute(p.input(set), cfg, graph.ExecOptions{RNG: rng, Trace: parent})
}

// Score implements Program.
func (p *GraphProgram) Score(set InputSet, out *tensor.Tensor) float64 {
	if set == Test {
		return p.TestMetric.Score(out)
	}
	return p.CalibMetric.Score(out)
}

// baseVals returns (computing once) the cached baseline node values.
// The values are marked cacheable: suffix re-execution feeds the same
// baseline activations into approximated nodes over and over, so their
// quantized/packed derivations are worth memoizing too.
func (p *GraphProgram) baseVals(set InputSet) []*tensor.Tensor {
	if set == Test {
		if p.baseTest == nil {
			p.baseTest = markAll(p.Graph.ExecuteAll(p.TestIn, nil, graph.ExecOptions{}))
		}
		return p.baseTest
	}
	if p.baseCalib == nil {
		p.baseCalib = markAll(p.Graph.ExecuteAll(p.CalibIn, nil, graph.ExecOptions{}))
	}
	return p.baseCalib
}

func markAll(vals []*tensor.Tensor) []*tensor.Tensor {
	for _, v := range vals {
		if v != nil {
			v.MarkCacheable()
		}
	}
	return vals
}

// Prepack implements Prepacker: it registers every constant weight with
// the tensorops pack cache and eagerly builds the packed panels both
// precisions will reuse, so the first tuning executions start warm. The
// work is recorded as a pack_cache:prepack span under the caller's phase.
func (p *GraphProgram) Prepack(parent *obs.Span) {
	sp := parent.Child("pack_cache:prepack")
	n := p.Graph.PrepackWeights()
	sp.With("entries", n).End()
}

// RunSuffix implements SuffixRunner: only the graph below op re-executes.
func (p *GraphProgram) RunSuffix(op int, knob approx.KnobID, set InputSet, rng *tensor.RNG) *tensor.Tensor {
	base := p.baseVals(set)
	cfg := approx.Config{op: knob}
	return p.Graph.ExecuteFrom(base, op, cfg, graph.ExecOptions{RNG: rng})
}

// RunSuffixTraced implements TracedSuffixRunner.
func (p *GraphProgram) RunSuffixTraced(op int, knob approx.KnobID, set InputSet, rng *tensor.RNG, parent *obs.Span) *tensor.Tensor {
	base := p.baseVals(set)
	cfg := approx.Config{op: knob}
	return p.Graph.ExecuteFrom(base, op, cfg, graph.ExecOptions{RNG: rng, Trace: parent})
}

// BaselineOut returns the cached exact output tensor for a set.
func (p *GraphProgram) BaselineOut(set InputSet) *tensor.Tensor {
	vals := p.baseVals(set)
	return vals[p.Graph.Output]
}

// NumCalib implements Sharder: the number of calibration inputs.
func (p *GraphProgram) NumCalib() int { return p.CalibIn.Dim(0) }

// Shard implements Sharder: a program over calibration inputs [lo, hi).
// It requires CalibMetricFor to rebuild the QoS metric for the shard.
func (p *GraphProgram) Shard(lo, hi int) (Program, error) {
	if p.CalibMetricFor == nil {
		return nil, fmt.Errorf("core: program %q has no shard metric factory", p.Name())
	}
	n := p.NumCalib()
	if lo < 0 || hi > n || lo >= hi {
		return nil, fmt.Errorf("core: bad shard [%d,%d) of %d", lo, hi, n)
	}
	per := p.CalibIn.Elems() / n
	sub := tensor.FromSlice(p.CalibIn.Data()[lo*per:hi*per],
		append([]int{hi - lo}, p.CalibIn.Shape().Dims()[1:]...)...)
	return NewGraphProgram(p.Graph, sub, p.TestIn, p.CalibMetricFor(lo, hi), p.TestMetric)
}

// KnobPolicy filters the knob candidates offered to the tuner.
type KnobPolicy struct {
	// IncludeHardware adds hardware-specific knobs (PROMISE) — install
	// time only.
	IncludeHardware bool
	// AllowFP16 includes half-precision knob variants; §3.5 ships separate
	// FP32 and FP16 curves since FP16 hardware availability is unknown at
	// development time.
	AllowFP16 bool
	// IncludeInt8 adds the INT8-quantization extension knob to
	// convolutions and dense layers (not part of the paper's knob space).
	IncludeInt8 bool
	// Filter, when set, further restricts the space to knobs it accepts
	// (the baseline FP32 knob is always kept). Used by ablation studies,
	// e.g. offset-0-only sampling/perforation.
	Filter func(approx.Knob) bool
}

// KnobsFor returns the candidate knob IDs for one op of a program under
// the policy.
func KnobsFor(p Program, op int, pol KnobPolicy) []approx.KnobID {
	ids := approx.KnobsFor(p.OpClass(op), pol.IncludeHardware)
	if pol.IncludeInt8 {
		if cl := p.OpClass(op); cl == approx.OpConv || cl == approx.OpMatMul {
			ids = append(append([]approx.KnobID{}, ids...), approx.KnobInt8)
		}
	}
	out := make([]approx.KnobID, 0, len(ids))
	for _, id := range ids {
		k := approx.MustLookup(id)
		if !pol.AllowFP16 && k.Prec == tensorops.FP16 && k.Kind != approx.KindPromise {
			continue
		}
		if pol.Filter != nil && !k.IsBaseline() && !pol.Filter(k) {
			continue
		}
		out = append(out, id)
	}
	return out
}
