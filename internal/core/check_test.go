package core

import (
	"strings"
	"testing"

	"repro/internal/approx"
	"repro/internal/device"
	"repro/internal/pareto"
	"repro/internal/tensorops"
)

func errsContain(errs []error, substr string) bool {
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return true
		}
	}
	return false
}

func TestCheckKnobRegistryClean(t *testing.T) {
	errs := CheckKnobRegistry(device.NewTX2GPU(), device.NewTX2CPU())
	if len(errs) != 0 {
		t.Fatalf("registry should validate clean, got: %v", errs)
	}
}

func TestCheckKnobsRejectsBadParameters(t *testing.T) {
	cases := []struct {
		name string
		knob approx.Knob
		want string
	}{
		{"stride", approx.Knob{ID: 200, Kind: approx.KindSampling, Stride: 9}, "stride 9"},
		{"offset", approx.Knob{ID: 201, Kind: approx.KindPerforation, Stride: 2, Offset: 5}, "offset 5"},
		{"ratio", approx.Knob{ID: 202, Kind: approx.KindReduceSampling, RatioNum: 3, RatioDen: 2}, "proper fraction"},
		{"level", approx.Knob{ID: 203, Kind: approx.KindPromise, Level: 9}, "voltage level 9"},
		{"kind", approx.Knob{ID: 204, Kind: approx.Kind(99)}, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := CheckKnobs([]approx.Knob{tc.knob}, nil)
			if !errsContain(errs, tc.want) {
				t.Fatalf("crafted knob not rejected (want %q): %v", tc.want, errs)
			}
		})
	}
}

func TestCheckKnobsRejectsDuplicates(t *testing.T) {
	k := approx.MustLookup(approx.KnobFP32)
	errs := CheckKnobs([]approx.Knob{k, k}, nil)
	if !errsContain(errs, "duplicate") {
		t.Fatalf("duplicate knob id not rejected: %v", errs)
	}
}

func TestCheckKnobsDeviceSupport(t *testing.T) {
	fp16 := approx.MustLookup(approx.KnobFP16)
	// The TX2 CPU has no FP16 pipeline; alone it cannot run the knob.
	errs := CheckKnobs([]approx.Knob{fp16}, []*device.Device{device.NewTX2CPU()})
	if !errsContain(errs, "no device") {
		t.Fatalf("unsupported FP16 knob not rejected on CPU-only fleet: %v", errs)
	}
	// Adding the GPU makes it supported.
	errs = CheckKnobs([]approx.Knob{fp16}, []*device.Device{device.NewTX2CPU(), device.NewTX2GPU()})
	if len(errs) != 0 {
		t.Fatalf("FP16 knob should be supported with a GPU present: %v", errs)
	}
}

func TestCheckKnobsIncompleteSet(t *testing.T) {
	// A crafted "registry" whose sampling knob carries an impossible
	// ratio: Factors() divides by RatioNum, so the performance factor is
	// not finite — the completeness check must catch it.
	bad := approx.Knob{ID: 300, Kind: approx.KindReduceSampling, Prec: tensorops.FP32, RatioNum: 0, RatioDen: 2}
	errs := CheckKnobs([]approx.Knob{bad}, nil)
	if len(errs) == 0 {
		t.Fatal("knob with zero sampling numerator validated clean")
	}
}

func TestCheckCurve(t *testing.T) {
	mk := func(qos, perf float64) pareto.Point {
		return pareto.Point{QoS: qos, Perf: perf, Config: approx.Config{1: approx.KnobFP16}}
	}

	t.Run("clean", func(t *testing.T) {
		c := &pareto.Curve{Program: "p", Points: []pareto.Point{mk(90, 1.0), mk(85, 1.5), mk(80, 2.0)}}
		if errs := CheckCurve(c, true); len(errs) != 0 {
			t.Fatalf("clean curve rejected: %v", errs)
		}
	})
	t.Run("empty", func(t *testing.T) {
		c := &pareto.Curve{Program: "p"}
		if errs := CheckCurve(c, false); !errsContain(errs, "no points") {
			t.Fatalf("empty curve not rejected: %v", errs)
		}
	})
	t.Run("unsorted", func(t *testing.T) {
		c := &pareto.Curve{Program: "p", Points: []pareto.Point{mk(85, 2.0), mk(90, 1.0)}}
		if errs := CheckCurve(c, false); !errsContain(errs, "not sorted") {
			t.Fatalf("unsorted curve not rejected: %v", errs)
		}
	})
	t.Run("unknown knob", func(t *testing.T) {
		c := &pareto.Curve{Program: "p", Points: []pareto.Point{
			{QoS: 90, Perf: 1, Config: approx.Config{0: approx.KnobID(999)}},
		}}
		if errs := CheckCurve(c, false); !errsContain(errs, "unregistered knob") {
			t.Fatalf("unknown knob in config not rejected: %v", errs)
		}
	})
	t.Run("dominated strict", func(t *testing.T) {
		// (80, 1.0) is strictly dominated by (90, 1.5).
		c := &pareto.Curve{Program: "p", Points: []pareto.Point{mk(80, 1.0), mk(90, 1.5)}}
		if errs := CheckCurve(c, true); !errsContain(errs, "dominated") {
			t.Fatalf("dominated point not rejected in strict mode: %v", errs)
		}
	})
	t.Run("dominated relaxed", func(t *testing.T) {
		// Relaxed mode keeps predicted-dominated points (dev curves).
		c := &pareto.Curve{Program: "p", Points: []pareto.Point{mk(80, 1.0), mk(90, 1.5)}}
		if errs := CheckCurve(c, false); len(errs) != 0 {
			t.Fatalf("relaxed mode should accept dominated points: %v", errs)
		}
	})
}
