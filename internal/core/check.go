package core

import (
	"fmt"
	"math"

	"repro/internal/approx"
	"repro/internal/device"
	"repro/internal/pareto"
	"repro/internal/promise"
)

// This file is the domain-level static checker behind `approxlint -ir`:
// where the go/ast analyzers validate the source, these functions validate
// the system's data — the knob registry, the per-class knob sets, and
// shipped tradeoff curves — so an incomplete error model or a malformed
// curve is caught at program load rather than mid-tuning.

// CheckKnobRegistry validates the full knob registry against the given
// devices: every registered knob must have well-formed parameters, a
// usable error model, positive finite performance factors, and at least
// one device able to execute it; and every knob id handed out by the
// per-class knob sets must resolve in the registry. A nil/empty device
// list checks everything but device support.
func CheckKnobRegistry(devs ...*device.Device) []error {
	errs := CheckKnobs(approx.All(), devs)

	// Per-class knob-set completeness: KnobsFor must only hand out ids the
	// registry can resolve, and every class must include the baseline.
	for _, class := range []approx.OpClass{approx.OpOther, approx.OpConv, approx.OpMatMul, approx.OpReduce} {
		for _, hw := range []bool{false, true} {
			ids := approx.KnobsFor(class, hw)
			hasBaseline := false
			for _, id := range ids {
				if _, ok := approx.Lookup(id); !ok {
					errs = append(errs, fmt.Errorf("core: KnobsFor(%s, hw=%v) lists unregistered knob id %d", class, hw, id))
				}
				if id == approx.KnobFP32 {
					hasBaseline = true
				}
			}
			if !hasBaseline {
				errs = append(errs, fmt.Errorf("core: KnobsFor(%s, hw=%v) omits the FP32 baseline", class, hw))
			}
		}
	}
	return errs
}

// CheckKnobs validates a set of knob values (registered or not — the knobs
// are checked by value, so tests can inject crafted incomplete sets).
func CheckKnobs(knobs []approx.Knob, devs []*device.Device) []error {
	var errs []error
	seen := make(map[approx.KnobID]bool)
	for _, k := range knobs {
		if seen[k.ID] {
			errs = append(errs, fmt.Errorf("core: duplicate knob id %d", k.ID))
			continue
		}
		seen[k.ID] = true
		errs = append(errs, checkKnob(k, devs)...)
	}
	return errs
}

func checkKnob(k approx.Knob, devs []*device.Device) []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("core: knob %d (%s): "+format, append([]any{int(k.ID), k.Kind}, args...)...))
	}

	// Parameter well-formedness per kind.
	switch k.Kind {
	case approx.KindBaseline, approx.KindFP16, approx.KindInt8:
		// No parameters.
	case approx.KindSampling, approx.KindPerforation:
		if k.Stride < 2 || k.Stride > 4 {
			report("stride %d outside 2..4", k.Stride)
		}
		if k.Offset < 0 || k.Offset >= k.Stride {
			report("offset %d outside 0..%d", k.Offset, k.Stride-1)
		}
	case approx.KindReduceSampling:
		if k.RatioDen <= 0 || k.RatioNum <= 0 || k.RatioNum >= k.RatioDen {
			report("sampling ratio %d/%d is not a proper fraction", k.RatioNum, k.RatioDen)
		}
	case approx.KindPromise:
		if k.Level < 1 || k.Level > promise.Levels {
			report("voltage level %d outside 1..%d", k.Level, promise.Levels)
		} else {
			// Error-model completeness: a PROMISE level with no error
			// figure would make the predictor silently treat it as exact.
			if s := promise.ErrorSigma(k.Level); !(s > 0) || math.IsInf(s, 0) {
				report("error model gives sigma %v at level P%d", s, k.Level)
			}
			if g := promise.EnergyReduction(k.Level); !(g > 0) {
				report("energy model gives factor %v at level P%d", g, k.Level)
			}
		}
	default:
		report("unknown kind")
		return errs // Factors() on an unknown kind is meaningless
	}

	// Performance-factor completeness: Rc and Rm must be positive and
	// finite or Eq. 3 divides by zero.
	rc, rm := k.Factors()
	if !(rc > 0) || math.IsInf(rc, 0) || !(rm > 0) || math.IsInf(rm, 0) {
		report("cost factors Rc=%v Rm=%v are not positive finite", rc, rm)
	}

	// Device support: a knob no device can run is dead weight in every
	// search space that includes it.
	if len(devs) > 0 {
		supported := false
		for _, d := range devs {
			if d.Supports(k) {
				supported = true
			}
		}
		if !supported {
			report("no device in %s supports it", deviceNames(devs))
		}
	}
	return errs
}

func deviceNames(devs []*device.Device) string {
	s := "["
	for i, d := range devs {
		if i > 0 {
			s += " "
		}
		s += d.Name
	}
	return s + "]"
}

// CheckCurve validates a tradeoff curve: points sorted by increasing Perf,
// finite QoS/Perf values, and configurations resolving to registered
// knobs. In strict mode it additionally rejects strictly dominated points
// — the invariant of install-time-refined curves PS(S*). Development-time
// curves are checked relaxed: PSε deliberately retains predicted-dominated
// points because a dominated prediction may win once measured on the
// device (§2.2).
func CheckCurve(c *pareto.Curve, strict bool) []error {
	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("core: curve %q: "+format, append([]any{c.Program}, args...)...))
	}
	if len(c.Points) == 0 {
		report("has no points")
		return errs
	}
	for i, p := range c.Points {
		if math.IsNaN(p.QoS) || math.IsInf(p.QoS, 0) || math.IsNaN(p.Perf) || math.IsInf(p.Perf, 0) {
			report("point %d has non-finite QoS/Perf (%v, %v)", i, p.QoS, p.Perf)
		}
		if i > 0 && p.Perf < c.Points[i-1].Perf {
			report("points not sorted by Perf at index %d (%v after %v)", i, p.Perf, c.Points[i-1].Perf)
		}
		for op, id := range p.Config {
			if _, ok := approx.Lookup(id); !ok {
				report("point %d assigns unregistered knob %d to op %d", i, id, op)
			}
		}
	}
	if strict {
		for i, p := range c.Points {
			for j, q := range c.Points {
				if i != j && pareto.StrictlyDominated(p, q) {
					report("point %d (QoS %.4g, Perf %.4g) is strictly dominated by point %d (QoS %.4g, Perf %.4g)",
						i, p.QoS, p.Perf, j, q.QoS, q.Perf)
				}
			}
		}
	}
	return errs
}
