package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/approx"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/predictor"
	"repro/internal/tensor"
)

// Objective selects what install-time tuning optimizes on the device
// (§3.1: "tuning other goals such as energy savings by providing a
// corresponding prediction model").
type Objective int

const (
	// MinimizeTime reports Perf as a wall-clock speedup over the baseline.
	MinimizeTime Objective = iota
	// MinimizeEnergy reports Perf as an energy-reduction factor.
	MinimizeEnergy
)

func (o Objective) String() string {
	if o == MinimizeEnergy {
		return "energy"
	}
	return "time"
}

// Sharder is implemented by programs whose calibration inputs can be
// partitioned across simulated edge devices for distributed install-time
// tuning.
type Sharder interface {
	// NumCalib returns the number of calibration inputs.
	NumCalib() int
	// Shard returns a Program whose calibration set is inputs [lo, hi).
	Shard(lo, hi int) (Program, error)
}

// InstallOptions configures the install-time phase.
type InstallOptions struct {
	Options
	// Device is the edge compute unit performance/energy model.
	Device *device.Device
	// Objective selects time vs energy optimization.
	Objective Objective
	// NEdge is the number of edge devices participating in distributed
	// tuning (the paper emulates 100).
	NEdge int
	// LeaseTTL is how long an edge may stay silent before the network
	// coordinator (internal/distrib) declares it dead and reassigns its
	// shard/slice to a live edge (default 30s). The in-process simulated
	// fleet ignores it.
	LeaseTTL time.Duration
	// RequestTimeout bounds each edge HTTP request (default 10s).
	RequestTimeout time.Duration
	// MaxRetries is the per-request retry budget of the edge client
	// (default 4).
	MaxRetries int
	// RetryBase is the first retry backoff delay; it doubles per retry
	// with seeded jitter (default 50ms).
	RetryBase time.Duration
}

// Norm returns o with every unset field replaced by its documented
// default — the normalization InstallTune applies internally, exported
// for transports (internal/distrib) that drive SearchShortlist directly.
func (o InstallOptions) Norm() InstallOptions { return o.norm() }

func (o InstallOptions) norm() InstallOptions {
	o.Options = o.Options.norm()
	if o.NEdge == 0 {
		o.NEdge = 4
	}
	if o.LeaseTTL == 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.RetryBase == 0 {
		o.RetryBase = 50 * time.Millisecond
	}
	return o
}

// InstallStats extends tuning stats with the distributed-phase timings of
// §7.4 (edge profile collection vs server autotuning).
type InstallStats struct {
	Stats
	EdgeProfileTime time.Duration // wall-clock of the parallel edge phase
	ServerTuneTime  time.Duration
	ValidatePerEdge int
}

// InstallResult is the outcome of install-time tuning.
type InstallResult struct {
	Curve *pareto.Curve
	Stats InstallStats
}

// MeasurePerf returns the device-measured Perf of cfg relative to the
// exact baseline under the chosen objective (exported for the network
// transport and the bench harness).
func MeasurePerf(p Program, dev *device.Device, obj Objective, cfg approx.Config) float64 {
	return measurePerf(p, dev, obj, cfg)
}

// measurePerf returns the device-measured Perf of cfg relative to the
// exact baseline under the chosen objective.
func measurePerf(p Program, dev *device.Device, obj Objective, cfg approx.Config) float64 {
	costs := p.Costs()
	if obj == MinimizeEnergy {
		return dev.Energy(costs, nil) / dev.Energy(costs, cfg)
	}
	return dev.Time(costs, nil) / dev.Time(costs, cfg)
}

// RefineCurve is the software-only install-time path (§4): it re-measures
// every configuration of the development-time curve on the target device
// — both real performance and real QoS — filters the ones that miss the
// QoS threshold or that the device cannot execute (e.g. FP16 knobs on the
// TX2's CPU), and returns the refined Pareto curve PS(S*).
func RefineCurve(p Program, devCurve *pareto.Curve, o InstallOptions) (*InstallResult, error) {
	o = o.norm()
	if o.Device == nil {
		return nil, fmt.Errorf("core: install-time tuning requires a device model")
	}
	root := obs.Start("phase:install").
		With("program", p.Name()).With("mode", "refine").
		With("device", o.Device.Name).With("objective", o.Objective.String())
	defer root.End()
	watch := NewStopwatch()
	rng := tensor.NewRNG(o.Seed + 100)
	var pts []pareto.Point
	var st InstallStats
	rsp := root.Child("refine").With("curve_points", len(devCurve.Points))
	// Split an RNG only for device-supported points, in curve order — the
	// exact draw sequence of the sequential loop — then re-measure them
	// concurrently.
	var keep []int
	var cfgs []approx.Config
	var rngs []*tensor.RNG
	for i, pt := range devCurve.Points {
		if !deviceSupports(o.Device, pt.Config) {
			continue
		}
		keep = append(keep, i)
		cfgs = append(cfgs, pt.Config)
		rngs = append(rngs, rng.Split(int64(i)))
	}
	qos := evalScores(p, cfgs, rngs, rsp)
	for j, i := range keep {
		pt := devCurve.Points[i]
		st.RawConfigs++
		if qos[j] <= o.QoSMin {
			continue
		}
		perf := measurePerf(p, o.Device, o.Objective, pt.Config)
		pts = append(pts, pareto.Point{QoS: qos[j], Perf: perf, Config: pt.Config})
	}
	st.Validated = len(pts)
	rsp.With("validated", st.Validated).End()
	st.Total = watch.Lap()
	curve := pareto.NewCurve(p.Name(), devCurve.BaselineQoS, pts)
	curve.BaselineTime = o.Device.Time(p.Costs(), nil)
	return &InstallResult{Curve: curve, Stats: st}, nil
}

// DeviceSupports reports whether a device can execute every knob of a
// configuration (exported for the network transport).
func DeviceSupports(dev *device.Device, cfg approx.Config) bool {
	return deviceSupports(dev, cfg)
}

func deviceSupports(dev *device.Device, cfg approx.Config) bool {
	for _, kid := range cfg {
		if !dev.SupportsKnob(kid) {
			return false
		}
	}
	return true
}

// InstallTune is the hardware-knob install-time path (§4): distributed
// predictive tuning. The edge devices (goroutine-simulated) collect QoS
// profiles for hardware-specific knobs on disjoint calibration shards; a
// central server merges the profiles with the development-time software
// profiles and runs a fresh predictive autotuning over the combined knob
// space; the shortlist is scattered back to the edge devices for
// validation and performance/energy measurement; and the server computes
// the final curve PS(S*₁ ∪ … ∪ S*ₙ).
func InstallTune(p Program, devProfiles *predictor.Profiles, o InstallOptions) (*InstallResult, error) {
	o = o.norm()
	if o.Device == nil {
		return nil, fmt.Errorf("core: install-time tuning requires a device model")
	}
	sharder, canShard := p.(Sharder)
	if o.NEdge > 1 && !canShard {
		return nil, fmt.Errorf("core: program %q cannot shard calibration inputs for %d edge devices", p.Name(), o.NEdge)
	}
	root := obs.Start("phase:install").
		With("program", p.Name()).With("mode", "distributed").
		With("device", o.Device.Name).With("objective", o.Objective.String()).With("edges", o.NEdge)
	defer root.End()
	watch := NewStopwatch()
	var st InstallStats

	// Phase 1: distributed hardware-knob profile collection.
	hwKnobs := func(op int) []approx.KnobID {
		all := KnobsFor(p, op, KnobPolicy{IncludeHardware: true, AllowFP16: o.Policy.AllowFP16})
		var hw []approx.KnobID
		for _, id := range all {
			if !approx.MustLookup(id).HardwareIndependent() {
				hw = append(hw, id)
			}
		}
		return hw
	}
	esp := root.Child("edge-profile")
	var hwProfiles *predictor.Profiles
	if o.NEdge <= 1 {
		hwProfiles = CollectProfilesSpan(p, nil, hwKnobs, tensor.NewRNG(o.Seed+200), esp)
	} else {
		n := sharder.NumCalib()
		shards := make([]*predictor.Profiles, o.NEdge)
		errs := make([]error, o.NEdge)
		var wg sync.WaitGroup
		for e := 0; e < o.NEdge; e++ {
			lo := e * n / o.NEdge
			hi := (e + 1) * n / o.NEdge
			wg.Add(1)
			go func(e, lo, hi int) {
				defer wg.Done()
				ssp := esp.Child("edge-shard").With("edge", e).With("calib", hi-lo)
				defer ssp.End()
				sp, err := sharder.Shard(lo, hi)
				if err != nil {
					errs[e] = err
					return
				}
				shards[e] = CollectProfilesSpan(sp, nil, hwKnobs, tensor.NewRNG(o.Seed+200+int64(e)), ssp)
			}(e, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				esp.End()
				return nil, err
			}
		}
		hwProfiles = predictor.Merge(shards)
	}
	esp.End()
	st.EdgeProfileTime = watch.Lap()

	// Phase 2: the server merges software and hardware profiles and runs
	// predictive tuning over the combined space (lines 18–30 of
	// Algorithm 1 with hardware knobs included). Validation inside
	// PredictiveTune is skipped here — it happens distributed below — so
	// we run the search manually via PredictiveTune with the merged
	// profiles and harvest its pre-validation shortlist by setting
	// MaxConfigs as the scatter width.
	combined := combineProfiles(devProfiles, hwProfiles)
	tsp := root.Child("server-tune")
	shortlist, searchStats, err := predictiveSearchSpan(p, combined, o, tsp)
	tsp.With("shortlist", len(shortlist)).End()
	if err != nil {
		return nil, err
	}
	st.Stats = searchStats
	st.ServerTuneTime = watch.Lap()

	// Phase 3: scatter validation across edge devices. Each edge measures
	// real QoS on its shard and device perf/energy for an equal fraction
	// of the shortlist, returning its local Pareto set.
	nEdge := o.NEdge
	if nEdge < 1 {
		nEdge = 1
	}
	vsp := root.Child("edge-validate").With("shortlist", len(shortlist))
	edgeSets := make([][]pareto.Point, nEdge)
	var wg sync.WaitGroup
	errs := make([]error, nEdge)
	for e := 0; e < nEdge; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			edgeSpan := vsp.Child("edge").With("edge", e)
			defer edgeSpan.End()
			var local Program = p
			if canShard && nEdge > 1 {
				n := sharder.NumCalib()
				sp, err := sharder.Shard(e*n/nEdge, (e+1)*n/nEdge)
				if err != nil {
					errs[e] = err
					return
				}
				local = sp
			}
			rng := tensor.NewRNG(o.Seed + 300 + int64(e))
			for i := e; i < len(shortlist); i += nEdge {
				pt := shortlist[i]
				if !deviceSupports(o.Device, pt.Config) {
					continue
				}
				out := runTraced(local, pt.Config, Calib, rng.Split(int64(i)), edgeSpan)
				realQoS := local.Score(Calib, out)
				if realQoS <= o.QoSMin {
					continue
				}
				perf := measurePerf(p, o.Device, o.Objective, pt.Config)
				edgeSets[e] = append(edgeSets[e], pareto.Point{QoS: realQoS, Perf: perf, Config: pt.Config})
			}
			edgeSets[e] = pareto.Set(edgeSets[e])
		}(e)
	}
	wg.Wait()
	vsp.End()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	st.ValidatePerEdge = (len(shortlist) + nEdge - 1) / nEdge

	// Phase 4: the server unions the per-edge Pareto sets and computes the
	// final curve.
	var union []pareto.Point
	for _, s := range edgeSets {
		union = append(union, s...)
	}
	sort.Slice(union, func(i, j int) bool { return union[i].Perf < union[j].Perf })
	st.Validated = len(union)
	st.ValidateTime = watch.Lap()
	st.Total = watch.Total()

	curve := pareto.NewCurve(p.Name(), combined.BaseQoS, union)
	curve.BaselineTime = o.Device.Time(p.Costs(), nil)
	return &InstallResult{Curve: curve, Stats: st.Stats.withInstall(st)}, nil
}

// withInstall keeps the embedded Stats consistent; InstallStats embeds
// Stats by value so the helper just returns the updated embedded copy.
func (s Stats) withInstall(ist InstallStats) InstallStats {
	ist.Stats = s
	ist.Stats.Validated = ist.Validated
	return ist
}

// CombineProfiles merges the development-time (software-knob) profiles
// with the install-time hardware-knob profiles into one table (exported
// for the network transport).
func CombineProfiles(sw, hw *predictor.Profiles) *predictor.Profiles {
	return combineProfiles(sw, hw)
}

// combineProfiles merges the development-time (software-knob) profiles
// with the install-time hardware-knob profiles into one table.
func combineProfiles(sw, hw *predictor.Profiles) *predictor.Profiles {
	out := predictor.NewProfiles(sw.BaseQoS, sw.BaseOut)
	for k, v := range sw.DeltaQ {
		out.DeltaQ[k] = v
	}
	for k, v := range sw.DeltaT {
		out.DeltaT[k] = v
	}
	for k, v := range hw.DeltaQ {
		out.DeltaQ[k] = v
	}
	for k, v := range hw.DeltaT {
		// Hardware ΔT is usable only when shapes line up with the
		// software baseline (full-set concatenation).
		if out.BaseOut != nil && v.Shape().Equal(out.BaseOut.Shape()) {
			out.DeltaT[k] = v
		}
	}
	return out
}

// SearchShortlist runs steps 2–4 of Algorithm 1 (predictor calibration,
// model-driven search, ε1 shortlist) against pre-merged profiles with
// hardware knobs included, returning the shortlist for distributed
// validation. It is the server-side compute step of the distributed
// install-time protocol (§4), exposed for network transports
// (internal/distrib).
func SearchShortlist(p Program, profiles *predictor.Profiles, o InstallOptions) ([]pareto.Point, Stats, error) {
	return predictiveSearchSpan(p, profiles, o, nil)
}

// predictiveSearchSpan runs steps 2–4 of Algorithm 1 (calibration, search,
// ε1 shortlist) against pre-merged profiles, returning the shortlist for
// distributed validation. A live parent span gets calibrate/search
// children.
func predictiveSearchSpan(p Program, profiles *predictor.Profiles, o InstallOptions, parent *obs.Span) ([]pareto.Point, Stats, error) {
	var st Stats
	watch := NewStopwatch()
	if o.Model == predictor.Pi1 && !profiles.SupportsPi1() {
		return nil, st, fmt.Errorf("core: Π1 unavailable for %q at install time", p.Name())
	}
	scoreFn := func(out *tensor.Tensor) float64 { return p.Score(Calib, out) }
	var qp *predictor.QoSPredictor
	if o.Model == predictor.Pi1 {
		qp = predictor.NewQoSPredictor(predictor.Pi1, profiles, scoreFn)
	} else {
		qp = predictor.NewQoSPredictor(predictor.Pi2, profiles, nil)
	}
	pol := KnobPolicy{IncludeHardware: true, AllowFP16: o.Policy.AllowFP16}
	prob := problemFor(p, pol)
	csp := parent.Child("calibrate")
	calibRng := tensor.NewRNG(o.Seed + 400)
	calCfgs := make([]approx.Config, o.NCalibrate)
	calRngs := make([]*tensor.RNG, o.NCalibrate)
	for i := range calCfgs {
		// Config draw and Split advance the parent RNG; keep the sequential
		// loop's exact interleaving before fanning the runs out.
		calCfgs[i] = randomConfig(prob, calibRng)
		calRngs[i] = calibRng.Split(int64(i))
	}
	calQoS := evalScores(p, calCfgs, calRngs, csp)
	samples := make([]predictor.Sample, 0, o.NCalibrate)
	for i, cfg := range calCfgs {
		samples = append(samples, predictor.Sample{Cfg: cfg, QoS: calQoS[i]})
	}
	st.Alpha = qp.Calibrate(samples)
	csp.With("samples", len(samples)).With("alpha", st.Alpha).End()
	st.CalibrateTime = watch.Lap()

	// Objective-aware performance model: for energy tuning the prediction
	// uses the device energy model (the "corresponding prediction model"
	// of §3.1); for time it uses the hardware-agnostic Eq. 3 ranking.
	pp := predictor.NewPerfPredictor(p.Costs())
	perfOf := func(cfg approx.Config) float64 {
		if o.Objective == MinimizeEnergy {
			return measurePerf(p, o.Device, MinimizeEnergy, cfg)
		}
		return pp.Predict(cfg)
	}

	ssp := parent.Child("search")
	tuner := newSearchTuner(prob, o.Options)
	seen := make(map[string]bool)
	nOps := maxOp(p) + 1
	baseCfg := baselineConfig(p)
	tuner.Prime(baseCfg, feedback(profiles.BaseQoS, perfOf(baseCfg)))
	candidates := []pareto.Point{{QoS: profiles.BaseQoS, Perf: perfOf(baseCfg), Config: baseCfg}}
	seen[baseCfg.Key(nOps)] = true
	for !tuner.Done() {
		cfg := tuner.Next()
		predQoS := qp.Predict(cfg)
		perf := perfOf(cfg)
		tuner.Report(cfg, feedback(predQoS, perf))
		st.RawConfigs++
		if predQoS > o.QoSMin {
			key := cfg.Key(nOps)
			if !seen[key] {
				seen[key] = true
				candidates = append(candidates, pareto.Point{QoS: predQoS, Perf: perf, Config: cfg.Clone()})
			}
		}
	}
	st.Iterations = tuner.Iterations()
	st.Candidates = len(candidates)
	ssp.With("iterations", st.Iterations).With("candidates", st.Candidates).End()
	st.SearchTime = watch.Lap()

	eps1 := pareto.EpsilonForLimit(candidates, o.MaxConfigs)
	shortlist := pareto.Trim(pareto.RelaxedSet(candidates, eps1), o.MaxConfigs)
	shortlist = ensureBaseline(shortlist, baseCfg, profiles.BaseQoS, nOps)
	return shortlist, st, nil
}

// HardwareKnobsFor returns the hardware-specific knob candidates
// (PROMISE levels) for one op of a program — the knob set edge devices
// profile during distributed install-time tuning.
func HardwareKnobsFor(p Program, op int, allowFP16 bool) []approx.KnobID {
	all := KnobsFor(p, op, KnobPolicy{IncludeHardware: true, AllowFP16: allowFP16})
	var hw []approx.KnobID
	for _, id := range all {
		if !approx.MustLookup(id).HardwareIndependent() {
			hw = append(hw, id)
		}
	}
	return hw
}
