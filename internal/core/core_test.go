package core

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/approx"
	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/pareto"
	"repro/internal/predictor"
	"repro/internal/qos"
	"repro/internal/tensorops"
)

// buildTestProgram constructs a small LeNet benchmark program with
// calibration/test split and shard support.
func buildTestProgram(t testing.TB) (*GraphProgram, *models.Benchmark) {
	t.Helper()
	b := models.MustBuild("lenet", models.Scale{Images: 24, Width: 0.25, ImageNetSize: 32, Seed: 11})
	calib, test := b.Dataset.Split()
	gp, err := NewGraphProgram(b.Model.Graph, calib.Images, test.Images,
		qos.Accuracy{Labels: calib.Labels}, qos.Accuracy{Labels: test.Labels})
	if err != nil {
		t.Fatalf("NewGraphProgram: %v", err)
	}
	gp.CalibMetricFor = func(lo, hi int) qos.Metric {
		return qos.Accuracy{Labels: calib.Labels[lo:hi]}
	}
	return gp, b
}

// fastOpts keeps tuning runs quick in tests.
func fastOpts(qosMin float64, model predictor.Model) Options {
	return Options{
		QoSMin:     qosMin,
		Model:      model,
		NCalibrate: 8,
		MaxIters:   300,
		StallLimit: 120,
		MaxConfigs: 20,
		Policy:     KnobPolicy{AllowFP16: true},
		Seed:       5,
	}
}

func TestCollectProfiles(t *testing.T) {
	gp, _ := buildTestProgram(t)
	profiles := CollectProfiles(gp, nil, func(op int) []approx.KnobID {
		return KnobsFor(gp, op, KnobPolicy{AllowFP16: true})
	}, nil)
	if profiles.BaseQoS <= 0 {
		t.Fatalf("baseline QoS = %v", profiles.BaseQoS)
	}
	if !profiles.SupportsPi1() {
		t.Error("CNN profiles should support Π1")
	}
	// Every non-baseline (op,knob) pair must be profiled.
	want := 0
	for _, op := range gp.Ops() {
		want += len(KnobsFor(gp, op, KnobPolicy{AllowFP16: true})) - 1 // minus FP32
	}
	if len(profiles.DeltaQ) != want {
		t.Errorf("profiled %d pairs, want %d", len(profiles.DeltaQ), want)
	}
	// ΔQ entries should be ≤ 0 on average (approximations rarely help).
	var sum float64
	for _, dq := range profiles.DeltaQ {
		sum += dq
	}
	if sum > 0 {
		t.Errorf("mean ΔQ positive (%v) — approximations should hurt QoS on average", sum)
	}
}

func TestSuffixProfileMatchesFullRun(t *testing.T) {
	gp, _ := buildTestProgram(t)
	op := gp.Ops()[0]
	knob := approx.SamplingKnob(2, 0, tensorops.FP32)
	fast := gp.RunSuffix(op, knob, Calib, nil)
	slow := gp.Run(approx.Config{op: knob}, Calib, nil)
	if gp.Score(Calib, fast) != gp.Score(Calib, slow) {
		t.Fatal("suffix execution diverges from full execution")
	}
}

func TestPredictiveTuneEndToEnd(t *testing.T) {
	gp, b := buildTestProgram(t)
	qosMin := b.BaselineAcc - 3 // ΔQoS 3%
	for _, model := range []predictor.Model{predictor.Pi1, predictor.Pi2} {
		res, err := PredictiveTune(gp, fastOpts(qosMin, model))
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		if res.Curve.Len() == 0 {
			t.Fatalf("%v: empty curve", model)
		}
		if res.Curve.Len() > 20 {
			t.Errorf("%v: curve has %d points, cap is 20", model, res.Curve.Len())
		}
		// Every shipped point passed real QoS validation on calibration.
		for _, pt := range res.Curve.Points {
			if pt.QoS <= qosMin {
				t.Errorf("%v: shipped point below threshold: %v", model, pt.QoS)
			}
			if pt.Perf <= 0 {
				t.Errorf("%v: non-positive Perf %v", model, pt.Perf)
			}
		}
		if res.Stats.Iterations == 0 || res.Stats.Alpha <= 0 {
			t.Errorf("%v: stats incomplete: %+v", model, res.Stats)
		}
		// Some point should beat the baseline's performance.
		if best, ok := res.Curve.Best(qosMin); !ok || best.Perf <= 1.0 {
			t.Errorf("%v: no speedup found (best %+v)", model, best)
		}
	}
}

func TestEmpiricalTuneEndToEnd(t *testing.T) {
	gp, b := buildTestProgram(t)
	qosMin := b.BaselineAcc - 3
	o := fastOpts(qosMin, 0)
	o.MaxIters = 150
	res, err := EmpiricalTune(gp, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.Len() == 0 {
		t.Fatal("empirical tuning found nothing")
	}
	for _, pt := range res.Curve.Points {
		if pt.QoS <= qosMin {
			t.Errorf("point below threshold: %v", pt.QoS)
		}
	}
}

func TestPredictiveFasterThanEmpirical(t *testing.T) {
	// The headline claim (Table 4): predictive tuning runs the binary only
	// for profiles + validation, so at equal iteration counts it must be
	// substantially faster than empirical tuning.
	gp, b := buildTestProgram(t)
	qosMin := b.BaselineAcc - 3
	o := fastOpts(qosMin, predictor.Pi2)
	o.MaxIters, o.StallLimit = 400, 400
	pred, err := PredictiveTune(gp, o)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := EmpiricalTune(gp, o)
	if err != nil {
		t.Fatal(err)
	}
	if emp.Stats.Total < pred.Stats.Total {
		t.Errorf("empirical (%v) should be slower than predictive (%v)", emp.Stats.Total, pred.Stats.Total)
	}
}

func TestRefineCurveSoftwareOnly(t *testing.T) {
	gp, b := buildTestProgram(t)
	qosMin := b.BaselineAcc - 3
	res, err := PredictiveTune(gp, fastOpts(qosMin, predictor.Pi2))
	if err != nil {
		t.Fatal(err)
	}
	gpu := device.NewTX2GPU()
	ref, err := RefineCurve(gp, res.Curve, InstallOptions{
		Options: fastOpts(qosMin, predictor.Pi2),
		Device:  gpu,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Curve.Len() == 0 {
		t.Fatal("refined curve empty")
	}
	if ref.Curve.BaselineTime <= 0 {
		t.Error("refined curve lacks baseline time")
	}
	// Refined Perf values are device speedups; all positive, frontier
	// sorted.
	for i, pt := range ref.Curve.Points {
		if pt.Perf <= 0 {
			t.Errorf("point %d Perf %v", i, pt.Perf)
		}
	}
}

func TestRefineCurveCPUDropsFP16(t *testing.T) {
	gp, b := buildTestProgram(t)
	qosMin := b.BaselineAcc - 3
	res, err := PredictiveTune(gp, fastOpts(qosMin, predictor.Pi2))
	if err != nil {
		t.Fatal(err)
	}
	cpu := device.NewTX2CPU()
	ref, err := RefineCurve(gp, res.Curve, InstallOptions{Options: fastOpts(qosMin, predictor.Pi2), Device: cpu})
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range ref.Curve.Points {
		for _, kid := range pt.Config {
			if !cpu.SupportsKnob(kid) {
				t.Fatalf("CPU curve contains unsupported knob %d", kid)
			}
		}
	}
}

func TestInstallTuneDistributed(t *testing.T) {
	gp, b := buildTestProgram(t)
	qosMin := b.BaselineAcc - 3
	dev, err := PredictiveTune(gp, fastOpts(qosMin, predictor.Pi2))
	if err != nil {
		t.Fatal(err)
	}
	gpu := device.NewTX2GPU()
	res, err := InstallTune(gp, dev.Profiles, InstallOptions{
		Options:   fastOpts(qosMin, predictor.Pi2),
		Device:    gpu,
		Objective: MinimizeEnergy,
		NEdge:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.Len() == 0 {
		t.Fatal("install-time curve empty")
	}
	// Energy objective: expect energy reductions > 1 for approximations,
	// and at least one PROMISE knob should appear somewhere in the curve
	// (the accelerator is the point of the experiment).
	foundPromise := false
	for _, pt := range res.Curve.Points {
		for _, kid := range pt.Config {
			if approx.MustLookup(kid).Kind == approx.KindPromise {
				foundPromise = true
			}
		}
	}
	if !foundPromise {
		t.Log("note: no PROMISE knob in final curve (possible but unusual)")
	}
	if res.Stats.EdgeProfileTime <= 0 || res.Stats.ServerTuneTime <= 0 {
		t.Errorf("distributed timings missing: %+v", res.Stats)
	}
}

func TestInstallTuneRequiresDevice(t *testing.T) {
	gp, _ := buildTestProgram(t)
	if _, err := InstallTune(gp, predictor.NewProfiles(90, nil), InstallOptions{}); err == nil {
		t.Fatal("missing device must error")
	}
	if _, err := RefineCurve(gp, &pareto.Curve{}, InstallOptions{}); err == nil {
		t.Fatal("missing device must error")
	}
}

func TestShardProgram(t *testing.T) {
	gp, _ := buildTestProgram(t)
	n := gp.NumCalib()
	sp, err := gp.Shard(0, n/2)
	if err != nil {
		t.Fatal(err)
	}
	out := sp.Run(nil, Calib, nil)
	if out.Dim(0) != n/2 {
		t.Fatalf("shard output batch %d, want %d", out.Dim(0), n/2)
	}
	score := sp.Score(Calib, out)
	if score < 0 || score > 100 {
		t.Fatalf("shard QoS %v", score)
	}
	if _, err := gp.Shard(5, 2); err == nil {
		t.Error("reversed shard bounds must error")
	}
}

func TestRuntimePolicy2MixMatchesPaperExample(t *testing.T) {
	// §5: PerfT = 1.3 with neighbors 1.2 and 1.5 → probabilities 2/3, 1/3.
	curve := pareto.NewCurve("x", 90, []pareto.Point{
		{QoS: 90, Perf: 1.0, Config: approx.Config{}},
		{QoS: 89, Perf: 1.2, Config: approx.Config{0: 1}},
		{QoS: 88, Perf: 1.5, Config: approx.Config{0: 10}},
	})
	rt, err := NewRuntimeTuner(curve, PolicyAverage, 1.0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	below, above, p1, p2 := rt.MixProbabilities(1.3)
	if below.Perf != 1.2 || above.Perf != 1.5 {
		t.Fatalf("bracket = %v..%v", below.Perf, above.Perf)
	}
	if math.Abs(p1-2.0/3) > 1e-9 || math.Abs(p2-1.0/3) > 1e-9 {
		t.Fatalf("mix = %v,%v want 2/3,1/3", p1, p2)
	}
	// Expected mixture hits the target: p1·1.2 + p2·1.5 = 1.3.
	if got := p1*below.Perf + p2*above.Perf; math.Abs(got-1.3) > 1e-9 {
		t.Fatalf("mixture performance = %v", got)
	}
}

func TestRuntimeTunerRespondsToSlowdown(t *testing.T) {
	curve := pareto.NewCurve("x", 90, []pareto.Point{
		{QoS: 90, Perf: 1.0, Config: approx.Config{}},
		{QoS: 88.5, Perf: 1.4, Config: approx.Config{0: 1}},
		{QoS: 87, Perf: 1.9, Config: approx.Config{0: 10}},
	})
	rt, err := NewRuntimeTuner(curve, PolicyEnforce, 0.1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rt.CurrentPoint().Perf != 1.0 {
		t.Fatalf("initial point should be the exact one, got %v", rt.CurrentPoint().Perf)
	}
	// System slows down 1.5×: invocations take 0.15 s under the baseline.
	rt.RecordInvocation(0.15)
	rt.RecordInvocation(0.15)
	if rt.CurrentPoint().Perf < 1.5 {
		t.Errorf("tuner should escalate to ≥1.5 speedup, got %v", rt.CurrentPoint().Perf)
	}
	// System recovers: with the 1.9 config, invocations now take
	// 0.1/1.9 s — window average drops and the tuner should relax.
	fast := 0.1 / rt.CurrentPoint().Perf
	rt.RecordInvocation(fast)
	rt.RecordInvocation(fast)
	if rt.CurrentPoint().Perf > 1.1 {
		t.Errorf("tuner should relax after recovery, still at %v", rt.CurrentPoint().Perf)
	}
	if rt.Switches() < 2 {
		t.Errorf("expected at least 2 switches, got %d", rt.Switches())
	}
}

func TestRuntimeTunerEnforceUnreachableTarget(t *testing.T) {
	curve := pareto.NewCurve("x", 90, []pareto.Point{
		{QoS: 90, Perf: 1.0, Config: approx.Config{}},
		{QoS: 88, Perf: 1.5, Config: approx.Config{0: 1}},
	})
	rt, err := NewRuntimeTuner(curve, PolicyEnforce, 0.1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	rt.RecordInvocation(1.0) // 10× slowdown: nothing reaches it
	if rt.CurrentPoint().Perf != 1.5 {
		t.Errorf("should degrade to the fastest available point, got %v", rt.CurrentPoint().Perf)
	}
}

// TestRuntimeTunerConcurrentUse exercises the documented concurrency
// contract under the race detector: a monitor goroutine feeding
// RecordInvocation while worker goroutines read Current/CurrentPoint/
// Switches and one closes the tuner at the end.
func TestRuntimeTunerConcurrentUse(t *testing.T) {
	curve := pareto.NewCurve("x", 90, []pareto.Point{
		{QoS: 90, Perf: 1.0, Config: approx.Config{}},
		{QoS: 88.5, Perf: 1.4, Config: approx.Config{0: 1}},
		{QoS: 87, Perf: 1.9, Config: approx.Config{0: 10}},
	})
	rt, err := NewRuntimeTuner(curve, PolicyAverage, 0.1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			// Alternate slow and fast invocations so switches happen.
			if i%2 == 0 {
				rt.RecordInvocation(0.15)
			} else {
				rt.RecordInvocation(0.05)
			}
		}
	}()
	for r := 0; r < 2; r++ {
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				_ = rt.Current()
				if pt := rt.CurrentPoint(); pt.Perf < 1.0 || pt.Perf > 1.9 {
					t.Errorf("current point off the curve: %v", pt.Perf)
					return
				}
				_ = rt.Switches()
			}
		}()
	}
	wg.Wait()
	rt.Close()
}

func TestRuntimeTunerValidation(t *testing.T) {
	if _, err := NewRuntimeTuner(&pareto.Curve{}, PolicyEnforce, 1, 1, 1); err == nil {
		t.Error("empty curve must error")
	}
	c := pareto.NewCurve("x", 90, []pareto.Point{{QoS: 90, Perf: 1}})
	if _, err := NewRuntimeTuner(c, PolicyEnforce, 0, 1, 1); err == nil {
		t.Error("zero target must error")
	}
	if _, err := NewRuntimeTuner(c, PolicyEnforce, 1, 0, 1); err == nil {
		t.Error("zero window must error")
	}
}

func TestKnobPolicyFiltersFP16(t *testing.T) {
	gp, _ := buildTestProgram(t)
	convOp := gp.Ops()[0]
	withFP16 := KnobsFor(gp, convOp, KnobPolicy{AllowFP16: true})
	fp32Only := KnobsFor(gp, convOp, KnobPolicy{AllowFP16: false})
	if len(fp32Only) >= len(withFP16) {
		t.Errorf("FP32-only set (%d) should be smaller than full set (%d)", len(fp32Only), len(withFP16))
	}
	for _, id := range fp32Only {
		k := approx.MustLookup(id)
		if k.Prec == tensorops.FP16 {
			t.Errorf("FP16 knob %s leaked into FP32-only policy", k.Name())
		}
	}
	hw := KnobsFor(gp, convOp, KnobPolicy{IncludeHardware: true, AllowFP16: true})
	if len(hw) != 63 {
		t.Errorf("conv knobs with hardware = %d, want 63", len(hw))
	}
}

func TestPi1RejectedForVariableShapes(t *testing.T) {
	gp, b := buildTestProgram(t)
	vp := &variableShapeProgram{gp}
	_, err := PredictiveTune(vp, fastOpts(b.BaselineAcc-3, predictor.Pi1))
	if err == nil {
		t.Fatal("Π1 on variable-shape program must error (§8)")
	}
}

// variableShapeProgram wraps a program reporting variable output shapes.
type variableShapeProgram struct{ *GraphProgram }

func (v *variableShapeProgram) FixedOutputShape() bool { return false }

func TestPowerGovernorRespectsCap(t *testing.T) {
	curve := pareto.NewCurve("x", 90, []pareto.Point{
		{QoS: 90, Perf: 1.0, Config: approx.Config{}},
		{QoS: 88, Perf: 1.6, Config: approx.Config{1: approx.KnobFP16}},
		{QoS: 86, Perf: 2.4, Config: approx.Config{1: approx.SamplingKnob(2, 0, tensorops.FP16)}},
	})
	gpu := device.NewTX2GPU()
	costs := []graph.NodeCost{{ID: 1, Nc: 2e8, Nm: 4e6}}
	gpu.SetFrequencyMHz(device.Freqs[0])
	target := gpu.Time(costs, nil)
	rt, err := NewRuntimeTuner(curve, PolicyEnforce, target, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	gov, err := NewPowerGovernor(gpu, rt, costs, 9.0, device.Freqs)
	if err != nil {
		t.Fatal(err)
	}
	var lastRep StepReport
	for i := 0; i < 10; i++ {
		lastRep = gov.Step()
		if lastRep.SysW > 9.0+1e-9 {
			t.Fatalf("step %d: system power %v exceeds the 9 W cap", i, lastRep.SysW)
		}
	}
	// The cap forces a lower frequency; the tuner should have escalated to
	// a faster configuration to compensate.
	if lastRep.FreqMHz >= device.Freqs[0] {
		t.Error("cap of 9 W should have forced a frequency below maximum")
	}
	if lastRep.Point.Perf <= 1.0 {
		t.Errorf("runtime tuner should compensate with approximation, still at %vx", lastRep.Point.Perf)
	}
	// Raising the cap back returns to full frequency.
	gov.SetCap(100)
	rep := gov.Step()
	if rep.FreqMHz != device.Freqs[0] {
		t.Errorf("generous cap should allow max frequency, got %v", rep.FreqMHz)
	}
}

func TestPowerGovernorValidation(t *testing.T) {
	gpu := device.NewTX2GPU()
	curve := pareto.NewCurve("x", 90, []pareto.Point{{QoS: 90, Perf: 1, Config: approx.Config{}}})
	rt, _ := NewRuntimeTuner(curve, PolicyEnforce, 1, 1, 1)
	if _, err := NewPowerGovernor(nil, rt, nil, 5, device.Freqs); err == nil {
		t.Error("nil device must be rejected")
	}
	if _, err := NewPowerGovernor(gpu, rt, nil, -1, device.Freqs); err == nil {
		t.Error("negative cap must be rejected")
	}
	if _, err := NewPowerGovernor(gpu, rt, nil, 5, nil); err == nil {
		t.Error("empty ladder must be rejected")
	}
	// OverCap is reported when even the floor exceeds an absurd cap.
	gov, err := NewPowerGovernor(gpu, rt, []graph.NodeCost{{ID: 0, Nc: 1e6, Nm: 1e4}}, 0.5, device.Freqs)
	_ = err
	if gov == nil {
		t.Fatal("governor should build")
	}
	rep := gov.Step()
	if !rep.OverCap {
		t.Error("0.5 W cap is unreachable; OverCap should be true")
	}
}

func TestInt8ExtensionKnob(t *testing.T) {
	gp, b := buildTestProgram(t)
	convOp := gp.Ops()[0]
	// The extension knob is opt-in: absent by default, present with the
	// policy flag, and only on conv/matmul classes.
	def := KnobsFor(gp, convOp, KnobPolicy{AllowFP16: true})
	ext := KnobsFor(gp, convOp, KnobPolicy{AllowFP16: true, IncludeInt8: true})
	if len(ext) != len(def)+1 {
		t.Fatalf("IncludeInt8 should add exactly one knob: %d vs %d", len(ext), len(def))
	}
	found := false
	for _, id := range ext {
		if id == approx.KnobInt8 {
			found = true
		}
	}
	if !found {
		t.Fatal("INT8 knob missing from extended set")
	}
	// Pool ops never get it.
	for _, op := range gp.Ops() {
		if gp.OpClass(op) == approx.OpReduce {
			for _, id := range KnobsFor(gp, op, KnobPolicy{AllowFP16: true, IncludeInt8: true}) {
				if id == approx.KnobInt8 {
					t.Fatal("INT8 knob leaked onto a reduction op")
				}
			}
		}
	}
	// End-to-end: tuning with the extension enabled produces a valid curve
	// whose configs execute.
	o := fastOpts(b.BaselineAcc-10, predictor.Pi2)
	o.Policy.IncludeInt8 = true
	res, err := PredictiveTune(gp, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.Len() == 0 {
		t.Fatal("empty curve with INT8 enabled")
	}
	for _, pt := range res.Curve.Points {
		if err := gp.Graph.ValidateConfig(pt.Config); err != nil {
			t.Fatalf("invalid shipped config: %v", err)
		}
	}
	// Direct execution under the INT8 knob works and perturbs the output.
	out := gp.Run(approx.Config{convOp: approx.KnobInt8}, Calib, nil)
	base := gp.BaselineOut(Calib)
	if out.Shape().Equal(base.Shape()) == false {
		t.Fatal("INT8 execution changed output shape")
	}
}

// TestEmpiricalTuneWorkerInvariant pins the determinism contract of the
// parallel tuning loop: the curve is a pure function of (seed, EvalBatch).
// Candidate RNGs are split sequentially before the batch is evaluated and
// feedback is reported in index order, so running the same options under a
// different worker count must reproduce the frontier bit for bit.
func TestEmpiricalTuneWorkerInvariant(t *testing.T) {
	gp, b := buildTestProgram(t)
	qosMin := b.BaselineAcc - 3
	o := fastOpts(qosMin, 0)
	o.MaxIters = 80

	run := func() *pareto.Curve {
		res, err := EmpiricalTune(gp, o)
		if err != nil {
			t.Fatal(err)
		}
		return res.Curve
	}
	base := run()

	prev := runtime.GOMAXPROCS(4) // force the multi-worker dispatch path
	wide := run()
	runtime.GOMAXPROCS(prev)

	same := run() // and plain repeatability under identical settings

	nOps := len(gp.Ops())
	for name, got := range map[string]*pareto.Curve{"GOMAXPROCS=4": wide, "repeat": same} {
		if got.Len() != base.Len() {
			t.Fatalf("%s: curve length %d, want %d", name, got.Len(), base.Len())
		}
		for i, pt := range got.Points {
			ref := base.Points[i]
			if pt.QoS != ref.QoS || pt.Perf != ref.Perf || !pt.Config.Equal(ref.Config, nOps) {
				t.Fatalf("%s: point %d diverged: %+v vs %+v", name, i, pt, ref)
			}
		}
	}
}
