package core

import (
	"time"

	"repro/internal/approx"
	"repro/internal/obs"
	"repro/internal/predictor"
	"repro/internal/tensor"
)

// mProfileEntries counts (op, knob) profile measurements across all
// profile-collection runs.
var mProfileEntries = obs.NewCounter("core.profile_entries")

// CollectProfiles runs the profile-collection phase of §3.2: for each
// (op, knob) pair in the program's knob space it executes the program on
// the calibration inputs with only that operator approximated, and records
// the end-to-end QoS change ΔQ and (when the program has fixed-shape
// outputs) the raw-output change ΔT.
//
// ops may restrict collection to a subset of the program's operations
// (nil means all); knobsOf maps an op to the knob candidates to profile.
// The supplied rng seeds PROMISE noise reproducibly.
func CollectProfiles(p Program, ops []int, knobsOf func(op int) []approx.KnobID, rng *tensor.RNG) *predictor.Profiles {
	return CollectProfilesSpan(p, ops, knobsOf, rng, nil)
}

// CollectProfilesSpan is CollectProfiles with tracing: when parent is a
// live span, each profiled op gets a child span (and the profiling
// executions themselves record graph spans while the tracer's detail
// budget lasts).
func CollectProfilesSpan(p Program, ops []int, knobsOf func(op int) []approx.KnobID, rng *tensor.RNG, parent *obs.Span) *predictor.Profiles {
	if ops == nil {
		ops = p.Ops()
	}
	baseOut := baselineOutput(p, Calib)
	baseQoS := p.Score(Calib, baseOut)
	var baseForPi1 *tensor.Tensor
	if p.FixedOutputShape() {
		baseForPi1 = baseOut
	}
	profiles := predictor.NewProfiles(baseQoS, baseForPi1)

	suffix, fast := p.(SuffixRunner)
	tracedSuffix, fastTraced := p.(TracedSuffixRunner)
	entries := 0
	for _, op := range ops {
		osp := parent.Child("profile-op").With("op", op)
		knobs := knobsOf(op)
		for _, knob := range knobs {
			if knob == approx.KnobFP32 {
				continue // the baseline needs no profile
			}
			var out *tensor.Tensor
			switch {
			case fastTraced && osp != nil:
				out = tracedSuffix.RunSuffixTraced(op, knob, Calib, rng, osp)
			case fast:
				out = suffix.RunSuffix(op, knob, Calib, rng)
			default:
				out = runTraced(p, approx.Config{op: knob}, Calib, rng, osp)
			}
			dq := p.Score(Calib, out) - baseQoS
			var dt *tensor.Tensor
			if baseForPi1 != nil && out.Shape().Equal(baseForPi1.Shape()) {
				dt = tensor.Diff(out, baseForPi1)
			}
			profiles.Add(op, knob, dq, dt)
			entries++
		}
		osp.With("knobs", len(knobs)).End()
	}
	mProfileEntries.Add(int64(entries))
	parent.With("profile_entries", entries)
	return profiles
}

// baselineOutput runs (or fetches the cached) exact execution.
func baselineOutput(p Program, set InputSet) *tensor.Tensor {
	if gp, ok := p.(*GraphProgram); ok {
		return gp.BaselineOut(set)
	}
	return p.Run(nil, set, nil)
}

// runTraced executes the program with a parent span when the program can
// carry one (TracedRunner) and tracing is live; otherwise a plain Run.
func runTraced(p Program, cfg approx.Config, set InputSet, rng *tensor.RNG, sp *obs.Span) *tensor.Tensor {
	if sp != nil {
		if tr, ok := p.(TracedRunner); ok {
			return tr.RunTraced(cfg, set, rng, sp)
		}
	}
	return p.Run(cfg, set, rng)
}

// Stopwatch accumulates phase timings for the Table-4 style reports. It
// reads the obs monotonic clock, so Stats timings and trace span
// durations come from one clock source.
type Stopwatch struct {
	start int64
	last  int64
}

// NewStopwatch starts timing.
func NewStopwatch() *Stopwatch {
	n := obs.Now()
	return &Stopwatch{start: n, last: n}
}

// Lap returns the elapsed time since the previous lap (or the start) and
// restarts the lap clock.
func (s *Stopwatch) Lap() time.Duration {
	n := obs.Now()
	d := time.Duration(n - s.last)
	s.last = n
	return d
}

// Total returns the elapsed time since the stopwatch was created,
// independent of laps.
func (s *Stopwatch) Total() time.Duration { return time.Duration(obs.Now() - s.start) }
