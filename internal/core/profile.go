package core

import (
	"time"

	"repro/internal/approx"
	"repro/internal/predictor"
	"repro/internal/tensor"
)

// CollectProfiles runs the profile-collection phase of §3.2: for each
// (op, knob) pair in the program's knob space it executes the program on
// the calibration inputs with only that operator approximated, and records
// the end-to-end QoS change ΔQ and (when the program has fixed-shape
// outputs) the raw-output change ΔT.
//
// ops may restrict collection to a subset of the program's operations
// (nil means all); knobsOf maps an op to the knob candidates to profile.
// The supplied rng seeds PROMISE noise reproducibly.
func CollectProfiles(p Program, ops []int, knobsOf func(op int) []approx.KnobID, rng *tensor.RNG) *predictor.Profiles {
	if ops == nil {
		ops = p.Ops()
	}
	baseOut := baselineOutput(p, Calib)
	baseQoS := p.Score(Calib, baseOut)
	var baseForPi1 *tensor.Tensor
	if p.FixedOutputShape() {
		baseForPi1 = baseOut
	}
	profiles := predictor.NewProfiles(baseQoS, baseForPi1)

	suffix, fast := p.(SuffixRunner)
	for _, op := range ops {
		for _, knob := range knobsOf(op) {
			if knob == approx.KnobFP32 {
				continue // the baseline needs no profile
			}
			var out *tensor.Tensor
			if fast {
				out = suffix.RunSuffix(op, knob, Calib, rng)
			} else {
				out = p.Run(approx.Config{op: knob}, Calib, rng)
			}
			dq := p.Score(Calib, out) - baseQoS
			var dt *tensor.Tensor
			if baseForPi1 != nil && out.Shape().Equal(baseForPi1.Shape()) {
				dt = tensor.Diff(out, baseForPi1)
			}
			profiles.Add(op, knob, dq, dt)
		}
	}
	return profiles
}

// baselineOutput runs (or fetches the cached) exact execution.
func baselineOutput(p Program, set InputSet) *tensor.Tensor {
	if gp, ok := p.(*GraphProgram); ok {
		return gp.BaselineOut(set)
	}
	return p.Run(nil, set, nil)
}

// Stopwatch accumulates phase timings for the Table-4 style reports.
type Stopwatch struct {
	start time.Time
}

// NewStopwatch starts timing.
func NewStopwatch() *Stopwatch { return &Stopwatch{start: time.Now()} }

// Lap returns the elapsed time and restarts the watch.
func (s *Stopwatch) Lap() time.Duration {
	now := time.Now()
	d := now.Sub(s.start)
	s.start = now
	return d
}
