package tensorops

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestReLU(t *testing.T) {
	x := tensor.FromSlice([]float32{-1, 0, 2, -3.5}, 4)
	y := ReLU(x, FP32)
	want := []float32{0, 0, 2, 0}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("ReLU elem %d = %v, want %v", i, v, want[i])
		}
	}
	if x.Data()[0] != -1 {
		t.Fatal("ReLU mutated its input")
	}
}

func TestClippedReLU(t *testing.T) {
	x := tensor.FromSlice([]float32{-1, 3, 7}, 3)
	y := ClippedReLU(x, 6, FP32)
	want := []float32{0, 3, 6}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("ClippedReLU elem %d = %v, want %v", i, v, want[i])
		}
	}
}

func TestTanh(t *testing.T) {
	x := tensor.FromSlice([]float32{0, 1}, 2)
	y := Tanh(x, FP32)
	if y.Data()[0] != 0 {
		t.Errorf("tanh(0) = %v", y.Data()[0])
	}
	if math.Abs(float64(y.Data()[1])-math.Tanh(1)) > 1e-6 {
		t.Errorf("tanh(1) = %v", y.Data()[1])
	}
}

func TestBiasAdd4D(t *testing.T) {
	x := tensor.New(1, 2, 2, 2)
	b := tensor.FromSlice([]float32{10, 20}, 2)
	y := BiasAdd(x, b, FP32)
	if y.At(0, 0, 1, 1) != 10 || y.At(0, 1, 0, 0) != 20 {
		t.Fatalf("BiasAdd wrong: %v", y.Data())
	}
}

func TestBiasAdd2D(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := tensor.FromSlice([]float32{10, 20}, 2)
	y := BiasAdd(x, b, FP32)
	want := []float32{11, 22, 13, 24}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("BiasAdd2D elem %d = %v, want %v", i, v, want[i])
		}
	}
}

func TestAddResidual(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2}, 2)
	b := tensor.FromSlice([]float32{3, 4}, 2)
	y := Add(a, b, FP32)
	if y.Data()[0] != 4 || y.Data()[1] != 6 {
		t.Fatalf("Add = %v", y.Data())
	}
}

func TestMaxPool(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 1, 4, 4)
	y := MaxPool(x, PoolParams{KH: 2, KW: 2}, FP32)
	want := []float32{6, 8, 14, 16}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("MaxPool elem %d = %v, want %v", i, v, want[i])
		}
	}
}

func TestAvgPool(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	y := AvgPool(x, PoolParams{KH: 2, KW: 2}, FP32)
	if y.Elems() != 1 || y.Data()[0] != 2.5 {
		t.Fatalf("AvgPool = %v", y.Data())
	}
}

func TestAvgPoolPaddingExcludedFromCount(t *testing.T) {
	// With padding, averages are over in-bounds (and sampled) elements only.
	x := tensor.FromSlice([]float32{4}, 1, 1, 1, 1)
	y := AvgPool(x, PoolParams{KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, FP32)
	if y.Data()[0] != 4 {
		t.Fatalf("padded AvgPool = %v, want 4 (average over the single real element)", y.Data()[0])
	}
}

func TestPoolSampledSubset(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 100,
		2, 200,
	}, 1, 1, 2, 2)
	// 50% sampling keeps window elements 0 and 2 ((i*1)%2 < 1 → even i).
	y := MaxPoolSampled(x, PoolParams{KH: 2, KW: 2}, 1, 2, FP32)
	if y.Data()[0] != 2 {
		t.Fatalf("sampled max = %v, want 2 (max over elements {1,2})", y.Data()[0])
	}
	a := AvgPoolSampled(x, PoolParams{KH: 2, KW: 2}, 1, 2, FP32)
	if a.Data()[0] != 1.5 {
		t.Fatalf("sampled avg = %v, want 1.5", a.Data()[0])
	}
}

func TestPoolSampledRatios(t *testing.T) {
	g := tensor.NewRNG(11)
	x := tensor.New(1, 2, 8, 8)
	g.FillNormal(x, 0, 1)
	exact := AvgPool(x, PoolParams{KH: 2, KW: 2}, FP32)
	for _, r := range []struct{ num, den int }{{1, 2}, {2, 5}, {1, 4}} {
		s := AvgPoolSampled(x, PoolParams{KH: 2, KW: 2}, r.num, r.den, FP32)
		if !s.Shape().Equal(exact.Shape()) {
			t.Fatalf("ratio %d/%d changed shape", r.num, r.den)
		}
	}
}

func TestBatchNorm(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	bp := BatchNormParams{
		Gamma: tensor.FromSlice([]float32{2}, 1),
		Beta:  tensor.FromSlice([]float32{1}, 1),
		Mean:  tensor.FromSlice([]float32{2.5}, 1),
		Var:   tensor.FromSlice([]float32{1}, 1),
		Eps:   0,
	}
	y := BatchNorm(x, bp, FP32)
	// y = 2*(x-2.5)/sqrt(1+1e-5) + 1
	want := []float32{-2, 0, 2, 4}
	for i, v := range y.Data() {
		if math.Abs(float64(v-(want[i]+1-1))) > 1e-3 {
			t.Fatalf("BatchNorm elem %d = %v, want ~%v", i, v, want[i])
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	g := tensor.NewRNG(12)
	x := tensor.New(4, 10)
	g.FillNormal(x, 0, 5)
	y := Softmax(x, FP32)
	for r := 0; r < 4; r++ {
		var sum float64
		for _, v := range y.Row(r) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of [0,1]", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
}

func TestSoftmaxPreservesArgmax(t *testing.T) {
	g := tensor.NewRNG(13)
	x := tensor.New(8, 10)
	g.FillNormal(x, 0, 3)
	y := Softmax(x, FP32)
	xa, ya := x.RowArgMax(), y.RowArgMax()
	for i := range xa {
		if xa[i] != ya[i] {
			t.Fatalf("row %d: softmax moved argmax %d -> %d", i, xa[i], ya[i])
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	x := tensor.FromSlice([]float32{1000, 1001, 999}, 1, 3)
	y := Softmax(x, FP32)
	var sum float64
	for _, v := range y.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("softmax overflowed on large logits")
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-5 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestReduceKinds(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	if got := Reduce(x, ReduceSum, 1, 1, FP32).Data()[0]; got != 10 {
		t.Errorf("ReduceSum = %v, want 10", got)
	}
	if got := Reduce(x, ReduceMean, 1, 1, FP32).Data()[0]; got != 2.5 {
		t.Errorf("ReduceMean = %v, want 2.5", got)
	}
	if got := Reduce(x, ReduceMax, 1, 1, FP32).Data()[0]; got != 4 {
		t.Errorf("ReduceMax = %v, want 4", got)
	}
}

func TestReduceSampledSumRescaled(t *testing.T) {
	// Constant input: sampled-and-rescaled sum must equal the exact sum.
	x := tensor.New(1, 1, 4, 4)
	x.Fill(2)
	exact := Reduce(x, ReduceSum, 1, 1, FP32).Data()[0]
	for _, r := range []struct{ num, den int }{{1, 2}, {2, 5}, {1, 4}} {
		got := Reduce(x, ReduceSum, r.num, r.den, FP32).Data()[0]
		if math.Abs(float64(got-exact)) > 1e-4 {
			t.Errorf("ratio %d/%d: sampled sum %v, want %v", r.num, r.den, got, exact)
		}
	}
}

func TestReduceMeanSampledOnConstant(t *testing.T) {
	x := tensor.New(1, 1, 5, 5)
	x.Fill(3)
	for _, r := range []struct{ num, den int }{{1, 2}, {2, 5}, {1, 4}} {
		got := Reduce(x, ReduceMean, r.num, r.den, FP32).Data()[0]
		if got != 3 {
			t.Errorf("ratio %d/%d: sampled mean %v, want 3", r.num, r.den, got)
		}
	}
}

func TestFlatten(t *testing.T) {
	x := tensor.New(2, 3, 4, 4)
	y := Flatten(x)
	if y.Rank() != 2 || y.Dim(0) != 2 || y.Dim(1) != 48 {
		t.Fatalf("Flatten shape = %v", y.Shape())
	}
}

func TestFP16VariantsQuantizeOutput(t *testing.T) {
	g := tensor.NewRNG(14)
	x := tensor.New(1, 2, 4, 4)
	g.FillNormal(x, 0, 1)
	outs := []*tensor.Tensor{
		ReLU(x, FP16),
		Tanh(x, FP16),
		MaxPool(x, PoolParams{KH: 2, KW: 2}, FP16),
		AvgPool(x, PoolParams{KH: 2, KW: 2}, FP16),
		Reduce(x, ReduceMean, 1, 1, FP16),
	}
	for oi, o := range outs {
		for i, v := range o.Data() {
			if tensor.QuantizeFP16(v) != v {
				t.Fatalf("output %d elem %d = %v not half-representable", oi, i, v)
			}
		}
	}
}
