package tensorops

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// ConvParams carries the geometry of a 2-D convolution.
type ConvParams struct {
	StrideH, StrideW int
	PadH, PadW       int
	// Groups > 1 gives grouped convolution; Groups == input channels with
	// one filter per channel is the depthwise convolution MobileNet uses.
	Groups int
}

// Norm returns params with zero-value fields defaulted (stride 1, groups 1).
func (p ConvParams) Norm() ConvParams {
	if p.StrideH == 0 {
		p.StrideH = 1
	}
	if p.StrideW == 0 {
		p.StrideW = 1
	}
	if p.Groups == 0 {
		p.Groups = 1
	}
	return p
}

// Conv2D computes an exact 2-D convolution. x is (N,Ci,H,W), w is
// (Co,Ci/G,Kh,Kw); the result is (N,Co,Ho,Wo). With FP16 precision the
// operands and result pass through half-precision quantization.
func Conv2D(x, w *tensor.Tensor, p ConvParams, prec Precision) *tensor.Tensor {
	return convolve(x, w, p, prec, nil, Epilogue{})
}

// Conv2DFused is Conv2D with the bias/activation/FP16-writeback epilogue
// fused into the GEMM writeback: each output row (one output channel's
// spatial plane) gets bias, activation and quantization applied as it
// completes, instead of three whole-tensor clone-and-sweep passes
// afterwards. Bit-identical to the unfused chain.
func Conv2DFused(x, w *tensor.Tensor, p ConvParams, prec Precision, ep Epilogue) *tensor.Tensor {
	return convolve(x, w, p, prec, nil, ep)
}

// perfSpec describes output-perforation for the perforated-convolution
// approximation: which output rows or columns are skipped.
type perfSpec struct {
	dir    PerfDirection
	stride int // skip 1 of every `stride`
	offset int
}

// convolve is the shared engine: exact convolution over the output elements
// selected by perf (all of them when perf is nil), using an optionally
// pre-sampled weight tensor. ep is fused into the GEMM writeback when
// there is no perforation (interpolation needs the raw conv output);
// perforated callers apply their epilogue afterwards via ApplyEpilogue.
func convolve(x, w *tensor.Tensor, p ConvParams, prec Precision, perf *perfSpec, ep Epilogue) *tensor.Tensor {
	p = p.Norm()
	if x.Rank() != 4 || w.Rank() != 4 {
		panicShape("Conv2D", "need 4-D input and weight, got %v and %v", x.Shape(), w.Shape())
	}
	n, ci, h, wd := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	co, cig, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	g := p.Groups
	if ci%g != 0 || co%g != 0 || cig != ci/g {
		panicShape("Conv2D", "groups=%d incompatible with Ci=%d Co=%d weight Ci/G=%d", g, ci, co, cig)
	}
	if ep.Bias != nil && ep.Bias.Elems() != co {
		panicShape("Conv2D", "bias length %d != output channels %d", ep.Bias.Elems(), co)
	}
	ho := tensor.ConvOutDim(h, kh, p.StrideH, p.PadH)
	wo := tensor.ConvOutDim(wd, kw, p.StrideW, p.PadW)

	xd, wdat := x.Data(), w.Data()
	if prec == FP16 {
		// Quantized operands come from the pack cache for marked tensors
		// (constant weights, calibration inputs — quantized once, reused
		// across thousands of tuning executions) and from pooled scratch
		// otherwise.
		if q, ok := cachedQuantized(x); ok {
			xd = q
		} else {
			xq := quantizedScratch(xd)
			defer tensor.Release(xq)
			xd = xq
		}
		if q, ok := cachedQuantized(w); ok {
			wdat = q
		} else {
			wq := quantizedScratch(wdat)
			defer tensor.Release(wq)
			wdat = wq
		}
	}

	out := tensor.New(n, co, ho, wo)
	od := out.Data()

	cog := co / g // output channels per group
	kvol := cig * kh * kw
	how := ho * wo

	// The fused per-row epilogue (one rowEpi per group — a C row is one
	// output channel, so bias indexes per row within the group's slice).
	var eps []rowEpi
	if perf == nil && (prec == FP16 || !ep.empty()) {
		eps = make([]rowEpi, g)
		for grp := range eps {
			re := rowEpi{perRow: true, act: ep.Act, clip: ep.Clip, quant: prec == FP16}
			if ep.Bias != nil {
				re.bias = ep.Bias.Data()[grp*cog : (grp+1)*cog]
			}
			eps[grp] = re
		}
	}

	// FP16 convolutions over a cacheable input (calibration batches,
	// baseline activations replayed by suffix profiling) additionally
	// memoize the whole prepared B operand — the quantized, packed im2col
	// columns of each (image, group): the steady state skips quantize,
	// im2col and pack entirely. FP16 is where the win concentrates (the
	// quantization pass rides along for free) and caching only the reduced
	// precision keeps the approximate path strictly cheaper than the exact
	// one. Only the blocked GEMM geometry qualifies, and only when the
	// conv's full column working set fits the cache budget (a sweep larger
	// than the LRU would miss on every call while still paying the
	// insert).
	colsCached := prec == FP16 && cog >= gemmMR && how >= gemmNR &&
		defaultPackCache.colsBudgetOK(n, g, kvol*how)
	if colsCached {
		_, _, colsCached = x.CacheKey()
	}

	// im2col per (image, group): cols is (kvol × ho*wo), weights for the
	// group form a (cog × kvol) matrix; their product is the output block.
	// The column matrix comes from the scratch pool — im2col fully
	// overwrites it, so the unspecified-contents contract holds.
	parallel.For(n, func(img int) {
		cols := tensor.Scratch(kvol * how)
		for grp := 0; grp < g; grp++ {
			wblock := wdat[grp*cog*kvol : (grp+1)*cog*kvol]
			oblock := od[(img*co+grp*cog)*how : (img*co+(grp+1)*cog)*how]
			var re *rowEpi
			if eps != nil {
				re = &eps[grp]
			}
			if colsCached {
				geo := colsGeo{img: img, grp: grp, ci: ci, cig: cig, h: h, w: wd, kh: kh, kw: kw, ho: ho, wo: wo, p: p}
				if pre := defaultPackCache.cachedConvCols(x, xd, geo, prec); pre != nil {
					gemmRun(wblock, nil, oblock, cog, kvol, how, false, pre, re)
					continue
				}
			}
			im2col(xd, cols, img, grp, ci, cig, h, wd, kh, kw, ho, wo, p)
			gemmRun(wblock, cols, oblock, cog, kvol, how, false, nil, re)
		}
		tensor.Release(cols)
	})

	if perf != nil {
		interpolatePerforated(out, perf)
	}
	if prec == FP16 && eps == nil {
		out.ToFP16()
	}
	return out
}

// im2col unrolls the input patches of one (image, group) into cols, a
// (cig*kh*kw) × (ho*wo) column matrix. Out-of-bounds (padding) elements
// are zero.
func im2col(xd, cols []float32, img, grp, ci, cig, h, w, kh, kw, ho, wo int, p ConvParams) {
	ow := ho * wo
	for c := 0; c < cig; c++ {
		inC := grp*cig + c
		chanBase := (img*ci + inC) * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				rowBase := ((c*kh+ky)*kw + kx) * ow
				for oy := 0; oy < ho; oy++ {
					iy := oy*p.StrideH - p.PadH + ky
					dst := cols[rowBase+oy*wo : rowBase+(oy+1)*wo]
					if iy < 0 || iy >= h {
						for i := range dst {
							dst[i] = 0
						}
						continue
					}
					srcRow := xd[chanBase+iy*w : chanBase+(iy+1)*w]
					for ox := 0; ox < wo; ox++ {
						ix := ox*p.StrideW - p.PadW + kx
						if ix < 0 || ix >= w {
							dst[ox] = 0
						} else {
							dst[ox] = srcRow[ix]
						}
					}
				}
			}
		}
	}
}

// interpolatePerforated overwrites the perforated output rows/columns with
// the nearest-neighbor average of the computed (kept) elements, exactly the
// semantics of Figurnov et al.'s perforated convolutions: a real
// implementation never computes the skipped positions; computing then
// replacing them yields the identical result tensor.
func interpolatePerforated(out *tensor.Tensor, perf *perfSpec) {
	n, co, ho, wo := out.Dim(0), out.Dim(1), out.Dim(2), out.Dim(3)
	od := out.Data()
	skip := func(i int) bool { return i%perf.stride == perf.offset%perf.stride }

	parallel.For(n*co, func(nc int) {
		base := nc * ho * wo
		if perf.dir == PerfRows {
			for y := 0; y < ho; y++ {
				if !skip(y) {
					continue
				}
				// nearest computed rows above and below
				up, down := -1, -1
				for u := y - 1; u >= 0; u-- {
					if !skip(u) {
						up = u
						break
					}
				}
				for d := y + 1; d < ho; d++ {
					if !skip(d) {
						down = d
						break
					}
				}
				row := od[base+y*wo : base+(y+1)*wo]
				switch {
				case up >= 0 && down >= 0:
					a := od[base+up*wo : base+(up+1)*wo]
					b := od[base+down*wo : base+(down+1)*wo]
					for i := range row {
						row[i] = 0.5 * (a[i] + b[i])
					}
				case up >= 0:
					copy(row, od[base+up*wo:base+(up+1)*wo])
				case down >= 0:
					copy(row, od[base+down*wo:base+(down+1)*wo])
				default:
					for i := range row {
						row[i] = 0
					}
				}
			}
		} else {
			for x := 0; x < wo; x++ {
				if !skip(x) {
					continue
				}
				left, right := -1, -1
				for l := x - 1; l >= 0; l-- {
					if !skip(l) {
						left = l
						break
					}
				}
				for r := x + 1; r < wo; r++ {
					if !skip(r) {
						right = r
						break
					}
				}
				for y := 0; y < ho; y++ {
					idx := base + y*wo + x
					switch {
					case left >= 0 && right >= 0:
						od[idx] = 0.5 * (od[base+y*wo+left] + od[base+y*wo+right])
					case left >= 0:
						od[idx] = od[base+y*wo+left]
					case right >= 0:
						od[idx] = od[base+y*wo+right]
					default:
						od[idx] = 0
					}
				}
			}
		}
	})
}
