package tensorops

import (
	"repro/internal/tensor"
)

// Fused epilogues. A conv/matmul node's bias-add, activation and FP16
// writeback quantization used to run as separate whole-tensor passes
// (three clones and three sweeps per node). The fused path applies them
// to each C row as the GEMM completes it, while the row is still hot in
// cache, with the *identical* per-element operation order as the unfused
// chain: quantize-writeback, add bias, quantize, activate, quantize.
// Each quantization step only runs under FP16, exactly where the old
// chain ran a ToFP16 pass — so fused and unfused results are bit-equal
// (the differential tests pin this).

// ActKind selects the activation applied by an Epilogue.
type ActKind int

const (
	ActNone ActKind = iota
	ActReLU
	ActClippedReLU
	ActTanh
)

// Epilogue describes the per-output-channel bias and activation fused
// into a kernel's writeback. The zero value is the empty epilogue.
type Epilogue struct {
	Bias *tensor.Tensor // optional, length = output channels/features
	Act  ActKind
	Clip float32 // ClippedReLU ceiling
}

func (e Epilogue) empty() bool { return e.Bias == nil && e.Act == ActNone }

// rowEpi is the engine-level epilogue applied to one completed C row.
// perRow selects how bias indexes: by C row (convolution — rows are
// output channels) or by C column (matmul — columns are output
// features). quant adds the FP16 writeback quantization. The fused
// epilogue has assignment semantics, so it is only valid when C was
// zeroed before the GEMM (every conv/matmul output is).
type rowEpi struct {
	bias   []float32
	perRow bool
	act    ActKind
	clip   float32
	quant  bool
}

// apply transforms crow in place; row is the global C row index.
// Nil-receiver safe (no epilogue). The pass order replicates the unfused
// chain exactly: each whole-tensor pass of the old code becomes a
// whole-row pass here, and per-element results are identical.
func (e *rowEpi) apply(crow []float32, row int) {
	if e == nil {
		return
	}
	if e.quant {
		tensor.QuantizeFP16Slice(crow, crow)
	}
	if e.bias != nil {
		if e.perRow {
			bv := e.bias[row]
			for j := range crow {
				//lint:ignore tensoralias crow IS the output row — the fused epilogue transforms the GEMM writeback in place; no input tensor aliases it
				crow[j] += bv
			}
		} else {
			for j := range crow {
				crow[j] += e.bias[j]
			}
		}
		if e.quant {
			tensor.QuantizeFP16Slice(crow, crow)
		}
	}
	if e.act != ActNone {
		switch e.act {
		case ActReLU:
			for j, v := range crow {
				if v < 0 {
					crow[j] = 0
				}
			}
		case ActClippedReLU:
			for j, v := range crow {
				if v < 0 {
					crow[j] = 0
				} else if v > e.clip {
					crow[j] = e.clip
				}
			}
		case ActTanh:
			for j, v := range crow {
				crow[j] = tanh32(v)
			}
		}
		if e.quant {
			tensor.QuantizeFP16Slice(crow, crow)
		}
	}
}

// ApplyEpilogue applies bias + activation (+ FP16 re-quantization after
// each step) to out in place, in a single pass without clones. It serves
// the kernel variants whose epilogue cannot fuse into the GEMM writeback
// (perforated convolution interpolates the raw output first; PROMISE
// perturbs it) and is element-for-element identical to the unfused
// BiasAdd → ToFP16 → Act → ToFP16 chain it replaces. out must already
// carry the kernel's own writeback quantization (convolve's FP16 paths
// guarantee this).
func ApplyEpilogue(out *tensor.Tensor, ep Epilogue, prec Precision) *tensor.Tensor {
	if ep.empty() {
		return out
	}
	quant := prec == FP16
	od := out.Data()
	if ep.Bias == nil {
		epilogueSeg(od, 0, false, ep.Act, ep.Clip, quant)
		return out
	}
	c := ep.Bias.Elems()
	var spatial int
	switch out.Rank() {
	case 4:
		if out.Dim(1) != c {
			panicShape("ApplyEpilogue", "bias length %d != channels %d", c, out.Dim(1))
		}
		spatial = out.Dim(2) * out.Dim(3)
	case 2:
		if out.Dim(1) != c {
			panicShape("ApplyEpilogue", "bias length %d != features %d", c, out.Dim(1))
		}
		spatial = 1
	default:
		panicShape("ApplyEpilogue", "unsupported rank %d", out.Rank())
	}
	n := out.Dim(0)
	bd := ep.Bias.Data()
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * spatial
			epilogueSeg(od[base:base+spatial], bd[ch], true, ep.Act, ep.Clip, quant)
		}
	}
	return out
}

// epilogueSeg runs the per-element chain over one channel segment:
// (+bias, quantize), activation, quantize — each quantization gated on
// FP16 and placed exactly where the unfused chain's ToFP16 passes ran.
func epilogueSeg(seg []float32, bv float32, addBias bool, act ActKind, clip float32, quant bool) {
	for i, v := range seg {
		if addBias {
			v += bv
			if quant {
				v = tensor.QuantizeFP16(v)
			}
		}
		switch act {
		case ActReLU:
			if v < 0 {
				v = 0
			}
		case ActClippedReLU:
			if v < 0 {
				v = 0
			} else if v > clip {
				v = clip
			}
		case ActTanh:
			v = tanh32(v)
		}
		if act != ActNone && quant {
			v = tensor.QuantizeFP16(v)
		}
		//lint:ignore tensoralias seg IS the output segment — the epilogue rewrites the conv/matmul result in place; no input tensor aliases it
		seg[i] = v
	}
}
