//go:build !amd64

package tensorops

// microTile4 falls back to the portable micro-kernel on platforms without
// an assembly implementation.
func microTile4(a0, a1, a2, a3, panel []float32, c0, c1, c2, c3 []float32) {
	microKernel4(a0, a1, a2, a3, panel, c0, c1, c2, c3)
}
