package tensorops

// microKernel4SSE is the SSE2 micro-kernel in gemm_amd64.s. The slices
// behind the pointers must hold at least kc elements (kc*gemmNR for panel)
// and gemmNR elements for the C rows.
//
//go:noescape
func microKernel4SSE(a0, a1, a2, a3, panel, c0, c1, c2, c3 *float32, kc int)

// microTile4 dispatches the 4×4 tile update to the vector kernel. The pure
// Go microKernel4 stays compiled on every platform as the reference the
// portable tests pin against.
func microTile4(a0, a1, a2, a3, panel []float32, c0, c1, c2, c3 []float32) {
	kc := len(a0)
	if kc == 0 {
		return
	}
	microKernel4SSE(&a0[0], &a1[0], &a2[0], &a3[0], &panel[0], &c0[0], &c1[0], &c2[0], &c3[0], kc)
}
