package tensorops

import (
	"testing"

	"repro/internal/tensor"
)

// Kernel micro-benchmarks: the hot paths the simulated-device work rides
// on (exact conv, the approximate variants, GEMM, FP16 quantization).

func benchInput(c, h, w int) (*tensor.Tensor, *tensor.Tensor) {
	g := tensor.NewRNG(1)
	x := tensor.New(4, c, h, w)
	g.FillNormal(x, 0, 1)
	wt := tensor.New(2*c, c, 3, 3)
	g.FillHe(wt, c*9)
	return x, wt
}

func BenchmarkConv2DExact(b *testing.B) {
	x, w := benchInput(8, 32, 32)
	p := ConvParams{PadH: 1, PadW: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, p, FP32)
	}
}

func BenchmarkConv2DFP16(b *testing.B) {
	x, w := benchInput(8, 32, 32)
	p := ConvParams{PadH: 1, PadW: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, p, FP16)
	}
}

func BenchmarkConv2DFilterSampling50(b *testing.B) {
	x, w := benchInput(8, 32, 32)
	p := ConvParams{PadH: 1, PadW: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DFilterSampling(x, w, p, 2, 0, FP32)
	}
}

func BenchmarkConv2DPerforated50(b *testing.B) {
	x, w := benchInput(8, 32, 32)
	p := ConvParams{PadH: 1, PadW: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DPerforated(x, w, p, PerfRows, 2, 0, FP32)
	}
}

func BenchmarkGemm(b *testing.B) {
	g := tensor.NewRNG(2)
	m, k, n := 64, 256, 256
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	c := make([]float32, m*n)
	for i := range a {
		a[i] = float32(g.NormFloat64())
	}
	for i := range bb {
		bb[i] = float32(g.NormFloat64())
	}
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range c {
			c[j] = 0
		}
		Gemm(a, bb, c, m, k, n)
	}
}

func BenchmarkFP16RoundTrip(b *testing.B) {
	g := tensor.NewRNG(3)
	x := tensor.New(1 << 16)
	g.FillNormal(x, 0, 1)
	b.SetBytes(int64(4 * x.Elems()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.ToFP16()
	}
}

func BenchmarkSoftmax(b *testing.B) {
	g := tensor.NewRNG(4)
	x := tensor.New(256, 100)
	g.FillNormal(x, 0, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(x, FP32)
	}
}
