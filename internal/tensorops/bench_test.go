package tensorops

import (
	"testing"

	"repro/internal/tensor"
)

// Kernel micro-benchmarks: the hot paths the simulated-device work rides
// on (exact conv, the approximate variants, GEMM, FP16 quantization).

func benchInput(c, h, w int) (*tensor.Tensor, *tensor.Tensor) {
	return benchInputN(4, c, h, w)
}

func benchInputN(n, c, h, w int) (*tensor.Tensor, *tensor.Tensor) {
	g := tensor.NewRNG(1)
	x := tensor.New(n, c, h, w)
	g.FillNormal(x, 0, 1)
	wt := tensor.New(2*c, c, 3, 3)
	g.FillHe(wt, c*9)
	// The tuning phases run the same long-lived calibration batch and
	// constant weights through every candidate configuration, so the
	// benchmarks model that steady state: both operands participate in the
	// pack-once cache.
	x.MarkCacheable()
	wt.MarkCacheable()
	return x, wt
}

func BenchmarkConv2DExact(b *testing.B) {
	x, w := benchInput(8, 32, 32)
	p := ConvParams{PadH: 1, PadW: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, p, FP32)
	}
}

func BenchmarkConv2DFP16(b *testing.B) {
	x, w := benchInput(8, 32, 32)
	p := ConvParams{PadH: 1, PadW: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, p, FP16)
	}
}

// BenchmarkConv2DExactBatch64 has the shape profile of a calibration run
// (one conv over a whole calibration batch). With the scratch pool the
// allocation count stays flat in batch size; the pre-pool engine allocated
// one im2col column matrix per image.
func BenchmarkConv2DExactBatch64(b *testing.B) {
	x, w := benchInputN(64, 8, 32, 32)
	p := ConvParams{PadH: 1, PadW: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, w, p, FP32)
	}
}

func BenchmarkConv2DFilterSampling50(b *testing.B) {
	x, w := benchInput(8, 32, 32)
	p := ConvParams{PadH: 1, PadW: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DFilterSampling(x, w, p, 2, 0, FP32)
	}
}

func BenchmarkConv2DPerforated50(b *testing.B) {
	x, w := benchInput(8, 32, 32)
	p := ConvParams{PadH: 1, PadW: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2DPerforated(x, w, p, PerfRows, 2, 0, FP32)
	}
}

func benchGemmOperands(m, k, n int) (a, bb, c []float32) {
	g := tensor.NewRNG(2)
	a = make([]float32, m*k)
	bb = make([]float32, k*n)
	c = make([]float32, m*n)
	for i := range a {
		a[i] = float32(g.NormFloat64())
	}
	for i := range bb {
		bb[i] = float32(g.NormFloat64())
	}
	return a, bb, c
}

func BenchmarkGemm(b *testing.B) {
	m, k, n := 256, 256, 256
	a, bb, c := benchGemmOperands(m, k, n)
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range c {
			c[j] = 0
		}
		Gemm(a, bb, c, m, k, n)
	}
}

// BenchmarkGemmReference measures the pre-blocking naive kernel (kept in
// gemm_test.go as the differential reference) on the same shape, so the
// blocked engine's speedup is visible in a single benchmark run.
func BenchmarkGemmReference(b *testing.B) {
	m, k, n := 256, 256, 256
	a, bb, c := benchGemmOperands(m, k, n)
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range c {
			c[j] = 0
		}
		gemmRef(a, bb, c, m, k, n)
	}
}

func BenchmarkConv2DGrouped(b *testing.B) {
	g := tensor.NewRNG(5)
	x := tensor.New(4, 16, 32, 32)
	g.FillNormal(x, 0, 1)
	wt := tensor.New(32, 4, 3, 3)
	g.FillHe(wt, 4*9)
	p := ConvParams{Groups: 4, PadH: 1, PadW: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, wt, p, FP32)
	}
}

func BenchmarkConv2DDepthwise(b *testing.B) {
	g := tensor.NewRNG(6)
	x := tensor.New(4, 32, 32, 32)
	g.FillNormal(x, 0, 1)
	wt := tensor.New(32, 1, 3, 3)
	g.FillHe(wt, 9)
	p := ConvParams{Groups: 32, PadH: 1, PadW: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Conv2D(x, wt, p, FP32)
	}
}

func BenchmarkFP16RoundTrip(b *testing.B) {
	g := tensor.NewRNG(3)
	x := tensor.New(1 << 16)
	g.FillNormal(x, 0, 1)
	b.SetBytes(int64(4 * x.Elems()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.ToFP16()
	}
}

func BenchmarkSoftmax(b *testing.B) {
	g := tensor.NewRNG(4)
	x := tensor.New(256, 100)
	g.FillNormal(x, 0, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(x, FP32)
	}
}
