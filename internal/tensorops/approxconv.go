package tensorops

import "repro/internal/tensor"

// PerfDirection selects whether perforated convolution skips output rows
// or output columns.
type PerfDirection int

const (
	PerfNone PerfDirection = iota
	PerfRows
	PerfCols
)

func (d PerfDirection) String() string {
	switch d {
	case PerfRows:
		return "row"
	case PerfCols:
		return "col"
	default:
		return "none"
	}
}

// Conv2DFilterSampling computes a convolution with the filter-sampling
// approximation (after Li et al.): 1 out of every `stride` filter elements
// is skipped, the same positions across all feature maps, starting at
// `offset`. Valid strides are 2, 3, 4 (50%, 33%, 25% skip rates) with
// offsets 0..stride-1, giving the paper's 9 knobs. The surviving elements
// are rescaled by stride/(stride-1) so the expected output magnitude is
// preserved, mirroring the rescaling used for reduction sampling.
func Conv2DFilterSampling(x, w *tensor.Tensor, p ConvParams, stride, offset int, prec Precision) *tensor.Tensor {
	return Conv2DFilterSamplingFused(x, w, p, stride, offset, prec, Epilogue{})
}

// Conv2DFilterSamplingFused is Conv2DFilterSampling with a fused
// bias/activation epilogue. For weights marked cacheable the sampled
// filter itself is memoized in the pack cache (the zero-and-rescale pass
// used to run on every call), and the cached copy is marked cacheable in
// turn so its FP16 quantization memoizes as well.
func Conv2DFilterSamplingFused(x, w *tensor.Tensor, p ConvParams, stride, offset int, prec Precision, ep Epilogue) *tensor.Tensor {
	if stride < 2 || stride > 4 {
		panicShape("FilterSampling", "stride %d not in {2,3,4}", stride)
	}
	if offset < 0 || offset >= stride {
		panicShape("FilterSampling", "offset %d not in [0,%d)", offset, stride)
	}
	sw := defaultPackCache.cachedSampledFilter(w, stride, offset)
	if sw == nil {
		sw = SampleFilter(w, stride, offset)
	}
	return convolve(x, sw, p, prec, nil, ep)
}

// SampleFilter returns a copy of w with every stride-th element (per output
// filter, flattened over Ci×Kh×Kw, starting at offset) zeroed and the rest
// rescaled by stride/(stride-1). Zeroed weights are skipped by the GEMM
// inner loop, so the functional kernel genuinely performs fewer multiplies.
func SampleFilter(w *tensor.Tensor, stride, offset int) *tensor.Tensor {
	out := w.Clone()
	co := w.Dim(0)
	fvol := w.Elems() / co
	scale := float32(stride) / float32(stride-1)
	od := out.Data()
	for f := 0; f < co; f++ {
		base := f * fvol
		for i := 0; i < fvol; i++ {
			if i%stride == offset {
				od[base+i] = 0
			} else {
				od[base+i] *= scale
			}
		}
	}
	return out
}

// Conv2DPerforated computes a convolution with the perforation
// approximation (after Figurnov et al.): 1 out of every `stride` output
// rows (or columns) is not computed and is instead filled with the
// nearest-neighbor average of computed elements. Valid strides are 2, 3, 4
// with offsets 0..stride-1 and two directions, giving the paper's 18 knobs.
func Conv2DPerforated(x, w *tensor.Tensor, p ConvParams, dir PerfDirection, stride, offset int, prec Precision) *tensor.Tensor {
	if dir != PerfRows && dir != PerfCols {
		panicShape("Perforated", "direction must be rows or cols")
	}
	if stride < 2 || stride > 4 {
		panicShape("Perforated", "stride %d not in {2,3,4}", stride)
	}
	if offset < 0 || offset >= stride {
		panicShape("Perforated", "offset %d not in [0,%d)", offset, stride)
	}
	return convolve(x, w, p, prec, &perfSpec{dir: dir, stride: stride, offset: offset}, Epilogue{})
}
