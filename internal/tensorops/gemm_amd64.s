// SSE2 4×4 GEMM micro-kernel. Each C element accumulates in its own vector
// lane over the full K extent in ascending-l order with separate MULPS and
// ADDPS (no FMA), so every lane performs exactly the float32 operation
// sequence of the scalar reference kernel and the result is bit-identical
// for a zeroed C. SSE2 is in the amd64 baseline (GOAMD64=v1), so this
// needs no runtime feature detection.

#include "textflag.h"

// func microKernel4SSE(a0, a1, a2, a3, panel, c0, c1, c2, c3 *float32, kc int)
//
// Register plan:
//   R8..R11  A row pointers      X0      packed {v0,v1,v2,v3}
//   R12      panel cursor        X1..X3  row-element loads
//   SI       kc                  X4..X7  accumulator rows of the 4×4 tile
//   DX       l                   X8      zero-test scratch
//   AX       zero-test mask      X9      panel row {b0,b1,b2,b3}
//                                X10..X13 broadcast temporaries
//                                X15     constant zero
TEXT ·microKernel4SSE(SB), NOSPLIT, $0-80
	MOVQ a0+0(FP), R8
	MOVQ a1+8(FP), R9
	MOVQ a2+16(FP), R10
	MOVQ a3+24(FP), R11
	MOVQ panel+32(FP), R12
	MOVQ kc+72(FP), SI
	XORPS X4, X4
	XORPS X5, X5
	XORPS X6, X6
	XORPS X7, X7
	XORPS X15, X15
	XORQ  DX, DX
	JMP   cond

loop:
	// Pack the four A column elements into X0 = {v0,v1,v2,v3}. MOVSS from
	// memory zeroes the upper lanes, so the unpacks see no garbage.
	MOVSS (R8)(DX*4), X0
	MOVSS (R9)(DX*4), X1
	MOVSS (R10)(DX*4), X2
	MOVSS (R11)(DX*4), X3
	UNPCKLPS X1, X0
	UNPCKLPS X3, X2
	MOVLHPS X2, X0

	// Panel-level sparsity fast path: if all four lanes are bitwise +0.0
	// (how filter sampling zeroes weights), the column contributes nothing.
	// Integer compare keeps this in SSE2 and sidesteps NaN semantics.
	MOVOU X0, X8
	PCMPEQL X15, X8
	PMOVMSKB X8, AX
	CMPL AX, $0xFFFF
	JEQ  skip

	// C[r][0:4] += v_r * {b0,b1,b2,b3} for r = 0..3.
	MOVUPS (R12), X9
	MOVAPS X0, X10
	SHUFPS $0x00, X10, X10
	MULPS  X9, X10
	ADDPS  X10, X4
	MOVAPS X0, X11
	SHUFPS $0x55, X11, X11
	MULPS  X9, X11
	ADDPS  X11, X5
	MOVAPS X0, X12
	SHUFPS $0xAA, X12, X12
	MULPS  X9, X12
	ADDPS  X12, X6
	MOVAPS X0, X13
	SHUFPS $0xFF, X13, X13
	MULPS  X9, X13
	ADDPS  X13, X7

skip:
	ADDQ $16, R12
	INCQ DX

cond:
	CMPQ DX, SI
	JLT  loop

	// C tile writeback: one unaligned load/add/store per row.
	MOVQ   c0+40(FP), DI
	MOVUPS (DI), X0
	ADDPS  X4, X0
	MOVUPS X0, (DI)
	MOVQ   c1+48(FP), DI
	MOVUPS (DI), X0
	ADDPS  X5, X0
	MOVUPS X0, (DI)
	MOVQ   c2+56(FP), DI
	MOVUPS (DI), X0
	ADDPS  X6, X0
	MOVUPS X0, (DI)
	MOVQ   c3+64(FP), DI
	MOVUPS (DI), X0
	ADDPS  X7, X0
	MOVUPS X0, (DI)
	RET
