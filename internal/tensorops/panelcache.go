package tensorops

import (
	"container/list"
	"sync"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Pack-once operand cache. The tuning phases re-execute the same tensor
// graph thousands of times across candidate configurations, so the
// per-invocation operand transforms — FP16 quantization of constant
// weights and calibration inputs, filter sampling, and packing B into the
// GEMM panel layout — are recomputed from identical bytes on every call.
// The PackCache memoizes those derived operands keyed by (source tensor
// identity, generation, transform kind, precision, geometry/knob
// parameters). Only tensors explicitly marked cacheable (constant weights,
// long-lived calibration inputs, cached baseline activations) participate;
// transient per-execution tensors have no identity and can never pollute
// the cache.
//
// Memory is bounded: entries are evicted least-recently-used once the
// byte budget is exceeded, and a single entry larger than the whole
// budget is simply not cached. Invalidation is explicit per source tensor
// (graph.StandardizeWeights mutates weights in place and must call
// InvalidatePacked); the generation in the key additionally guarantees
// that a stale entry can never be returned even before the invalidation
// sweep runs.
//
// Concurrency: one mutex guards the index and LRU list. Values are
// immutable after insertion and allocated with plain make — never from
// the tensor scratch pool — so a reader holding a borrowed slice is safe
// against concurrent eviction (eviction only drops the cache's
// reference).

// Pack-cache telemetry. The gauge carries the live resident bytes across
// all cache instances (deltas compose), the counters are monotone.
var (
	mPackHits      = obs.NewCounter("tensorops.pack_cache.hits")
	mPackMisses    = obs.NewCounter("tensorops.pack_cache.misses")
	mPackBytes     = obs.NewGauge("tensorops.pack_cache.bytes")
	mPackEvictions = obs.NewCounter("tensorops.pack_cache.evictions")
)

// DefaultPackCacheBytes is the byte budget of the process-wide cache:
// large enough for every weight panel plus the packed calibration-input
// columns of the model-zoo networks, small next to the activations a
// tuning run touches.
const DefaultPackCacheBytes = 128 << 20

// packKind discriminates the transform a cache entry holds.
type packKind uint8

const (
	// packQuant: the source tensor's data quantized through FP16
	// ([]float32 of the same length).
	packQuant packKind = iota
	// packSampled: a filter-sampled copy of a conv weight
	// (*tensor.Tensor), keyed by (stride, offset).
	packSampled
	// packPanels: a prepacked B operand (panels + tail) for the blocked
	// GEMM, keyed by (k, n) and precision.
	packPanels
	// packCols: the packed (and, for FP16, quantized) im2col column
	// matrix of one (image, group) of a convolution, keyed by the conv
	// geometry.
	packCols
)

// packKey identifies one derived operand. The meaning of the geometry
// fields g0..g7 depends on kind; unused fields are zero.
type packKey struct {
	id, gen                        uint64
	kind                           packKind
	prec                           Precision
	g0, g1, g2, g3, g4, g5, g6, g7 int
}

type packEntry struct {
	key   packKey
	val   any
	bytes int64
	elem  *list.Element
}

// PackCache is a bounded, mutex-guarded LRU cache of derived operands.
// The zero value is not usable; construct with NewPackCache.
type PackCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[packKey]*packEntry
	lru      *list.List // front = most recently used; values are *packEntry

	// Local stats mirror the global obs counters so tests on private
	// cache instances can assert behavior without reading process-wide
	// metrics.
	hits, misses, evictions int64
}

// NewPackCache returns an empty cache with the given byte budget.
func NewPackCache(maxBytes int64) *PackCache {
	return &PackCache{
		maxBytes: maxBytes,
		entries:  make(map[packKey]*packEntry),
		lru:      list.New(),
	}
}

// defaultPackCache is the process-wide instance every kernel entry point
// uses.
var defaultPackCache = NewPackCache(DefaultPackCacheBytes)

// get returns the cached value for k, promoting the entry to
// most-recently-used. Every call counts a hit or a miss.
func (c *PackCache) get(k packKey) (any, bool) {
	c.mu.Lock()
	e, ok := c.entries[k]
	if ok {
		c.lru.MoveToFront(e.elem)
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if ok {
		mPackHits.Inc()
		return e.val, true
	}
	mPackMisses.Inc()
	return nil, false
}

// add inserts v under k and returns the canonical value for the key: if a
// concurrent computation already inserted one, the existing value wins so
// byte accounting stays exact (the duplicate is garbage-collected).
// Values larger than the whole budget are returned uncached. Eviction
// runs until the budget holds.
func (c *PackCache) add(k packKey, v any, bytes int64) any {
	if bytes > c.maxBytes {
		return v
	}
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		return e.val
	}
	e := &packEntry{key: k, val: v, bytes: bytes}
	e.elem = c.lru.PushFront(e)
	c.entries[k] = e
	c.bytes += bytes
	delta := bytes
	evicted := 0
	for c.bytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		old := back.Value.(*packEntry)
		c.removeLocked(old)
		delta -= old.bytes
		evicted++
	}
	c.mu.Unlock()
	mPackBytes.Add(float64(delta))
	if evicted > 0 {
		mPackEvictions.Add(int64(evicted))
		c.mu.Lock()
		c.evictions += int64(evicted)
		c.mu.Unlock()
	}
	return v
}

// removeLocked unlinks e from the index and LRU list. Callers hold mu.
func (c *PackCache) removeLocked(e *packEntry) {
	c.lru.Remove(e.elem)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
}

// getOrCompute is the memoization entry point: a hit returns the cached
// value, a miss runs build outside the lock and inserts the result.
// Concurrent misses for the same key may build twice; the transforms are
// pure functions of immutable inputs, so either result is correct and
// insert-if-absent keeps one.
func (c *PackCache) getOrCompute(k packKey, build func() (any, int64)) any {
	if v, ok := c.get(k); ok {
		return v
	}
	v, bytes := build()
	return c.add(k, v, bytes)
}

// Invalidate removes every entry derived from source tensor id (any
// generation, any kind) and returns how many were dropped. It is how
// in-place weight mutation (graph.StandardizeWeights) frees the stale
// panels; correctness does not depend on it — the generation bump already
// makes stale keys unreachable.
func (c *PackCache) Invalidate(id uint64) int {
	c.mu.Lock()
	var freed int64
	dropped := 0
	for e := c.lru.Front(); e != nil; {
		next := e.Next()
		ent := e.Value.(*packEntry)
		if ent.key.id == id {
			c.removeLocked(ent)
			freed += ent.bytes
			dropped++
		}
		e = next
	}
	c.mu.Unlock()
	if freed != 0 {
		mPackBytes.Add(-float64(freed))
	}
	return dropped
}

// Bytes returns the resident payload bytes.
func (c *PackCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of resident entries.
func (c *PackCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cache-local hit/miss/eviction counts.
func (c *PackCache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// InvalidatePacked drops every cached operand derived from t from the
// process-wide cache. Callers that mutate a cacheable tensor in place
// must first call t.InvalidateCache() (correctness), then this (memory).
func InvalidatePacked(t *tensor.Tensor) {
	if id, _, ok := t.CacheKey(); ok {
		defaultPackCache.Invalidate(id)
	}
}

// PackCacheStats exposes the process-wide cache occupancy for CLI
// summaries and tests.
func PackCacheStats() (entries int, bytes int64) {
	return defaultPackCache.Len(), defaultPackCache.Bytes()
}

// --- derived-operand constructors -------------------------------------

// cachedQuantized returns t's data quantized through FP16, memoized in c
// when t is cacheable. ok is false when t has no cache identity; the
// caller should then quantize into pooled scratch as before.
func (c *PackCache) cachedQuantized(t *tensor.Tensor) ([]float32, bool) {
	id, gen, ok := t.CacheKey()
	if !ok {
		return nil, false
	}
	k := packKey{id: id, gen: gen, kind: packQuant, prec: FP16}
	v := c.getOrCompute(k, func() (any, int64) {
		q := make([]float32, t.Elems())
		tensor.QuantizeFP16Slice(q, t.Data())
		return q, int64(4 * len(q))
	})
	return v.([]float32), true
}

func cachedQuantized(t *tensor.Tensor) ([]float32, bool) {
	return defaultPackCache.cachedQuantized(t)
}

// cachedSampledFilter returns the filter-sampled copy of w, memoized when
// w is cacheable. The cached tensor is itself marked cacheable so the
// FP16 quantization of a sampled filter memoizes too. Returns nil when w
// has no cache identity.
func (c *PackCache) cachedSampledFilter(w *tensor.Tensor, stride, offset int) *tensor.Tensor {
	id, gen, ok := w.CacheKey()
	if !ok {
		return nil
	}
	k := packKey{id: id, gen: gen, kind: packSampled, g0: stride, g1: offset}
	v := c.getOrCompute(k, func() (any, int64) {
		sw := SampleFilter(w, stride, offset).MarkCacheable()
		return sw, int64(4 * sw.Elems())
	})
	return v.(*tensor.Tensor)
}

// prepacked is a B operand readied for the blocked GEMM once: the full
// panels in packRange layout plus the tail columns (n mod gemmNR of
// them) stored contiguously column-major, so the tail kernel reads a
// forward stream instead of striding through B. For FP16 the stored
// values are quantized; the GEMM then runs them as-is.
type prepacked struct {
	panels []float32 // np*k*gemmNR, packed[(jp*k+l)*gemmNR+j]
	tail   []float32 // (n-np*gemmNR)*k, tail[(j-jTail)*k+l] = B[l][j]
	np     int
}

// buildPrepacked packs b (k×n row-major) into panels + contiguous tail.
// quantB quantizes every element through FP16 during the copy, exactly
// like the per-call pack pass it replaces.
func buildPrepacked(b []float32, k, n int, quantB bool) *prepacked {
	np := n / gemmNR
	p := &prepacked{np: np}
	if np > 0 {
		p.panels = make([]float32, np*k*gemmNR)
		packRange(0, np, b, p.panels, k, n, quantB)
	}
	jTail := np * gemmNR
	if n > jTail {
		p.tail = make([]float32, (n-jTail)*k)
		for j := jTail; j < n; j++ {
			col := p.tail[(j-jTail)*k : (j-jTail+1)*k]
			for l := 0; l < k; l++ {
				v := b[l*n+j]
				if quantB {
					v = tensor.QuantizeFP16(v)
				}
				col[l] = v
			}
		}
	}
	return p
}

func (p *prepacked) bytes() int64 { return int64(4 * (len(p.panels) + len(p.tail))) }

// cachedPrepackedB returns w's data (k×n) prepacked for the blocked
// GEMM under the given precision, memoized when w is cacheable. Returns
// nil when w has no identity or the shape has no full panel (np == 0) —
// the per-call engine handles those directly.
func (c *PackCache) cachedPrepackedB(w *tensor.Tensor, k, n int, prec Precision) *prepacked {
	if n < gemmNR {
		return nil
	}
	id, gen, ok := w.CacheKey()
	if !ok {
		return nil
	}
	key := packKey{id: id, gen: gen, kind: packPanels, prec: prec, g0: k, g1: n}
	v := c.getOrCompute(key, func() (any, int64) {
		p := buildPrepacked(w.Data(), k, n, prec == FP16)
		return p, p.bytes()
	})
	return v.(*prepacked)
}

// colsGeo is the geometry a packed-cols entry is keyed by, beyond the
// input tensor's identity (which already fixes N, Ci, H, W).
type colsGeo struct {
	img, grp int
	ci, cig  int
	h, w     int
	kh, kw   int
	ho, wo   int
	p        ConvParams
}

// colsBudgetOK reports whether one convolution's whole column working set
// (n images × g groups × colElems floats) fits comfortably in the cache.
// Sequential sweeps over a working set larger than an LRU cache are the
// pathological access pattern — every lookup misses, every miss allocates
// and evicts — so a conv that cannot keep all its columns resident at
// once is better off packing into pooled scratch per call.
func (c *PackCache) colsBudgetOK(n, g, colElems int) bool {
	return 4*int64(n)*int64(g)*int64(colElems) <= c.maxBytes/8
}

// cachedConvCols returns the packed im2col operand of one (image, group)
// of a convolution, memoized when x is cacheable. xd is x's data in the
// precision the GEMM will consume — raw for FP32, quantized through FP16
// for FP16 (the packed values must match the uncached path, which runs
// im2col over exactly that slice). Returns nil when x has no identity;
// callers also gate on the blocked-path geometry (enough output rows and
// columns) and the working-set budget before asking.
func (c *PackCache) cachedConvCols(x *tensor.Tensor, xd []float32, geo colsGeo, prec Precision) *prepacked {
	id, gen, ok := x.CacheKey()
	if !ok {
		return nil
	}
	key := packKey{
		id: id, gen: gen, kind: packCols, prec: prec,
		g0: geo.img*geo.p.Groups + geo.grp,
		g1: geo.kh, g2: geo.kw,
		g3: geo.p.StrideH, g4: geo.p.StrideW,
		g5: geo.p.PadH, g6: geo.p.PadW,
		g7: geo.p.Groups,
	}
	v := c.getOrCompute(key, func() (any, int64) {
		kvol := geo.cig * geo.kh * geo.kw
		how := geo.ho * geo.wo
		cols := tensor.Scratch(kvol * how)
		im2col(xd, cols, geo.img, geo.grp, geo.ci, geo.cig, geo.h, geo.w, geo.kh, geo.kw, geo.ho, geo.wo, geo.p)
		// The stored panels come from plain make (inside buildPrepacked),
		// never from the pool: a pooled payload could be re-issued by
		// Scratch while an evicted entry's borrower still reads it.
		p := buildPrepacked(cols, kvol, how, false)
		tensor.Release(cols)
		return p, p.bytes()
	})
	return v.(*prepacked)
}

// PrepackConvWeight eagerly builds the FP16 quantized copy of a conv
// weight (the operand the FP16 conv path borrows on every call). Returns
// the number of cache entries ensured (0 when w is not cacheable).
func PrepackConvWeight(w *tensor.Tensor) int {
	if _, ok := cachedQuantized(w); !ok {
		return 0
	}
	return 1
}

// PrepackMatMulWeight eagerly builds the packed B panels of a dense
// weight for both precisions. Returns the number of cache entries
// ensured.
func PrepackMatMulWeight(w *tensor.Tensor) int {
	if w.Rank() != 2 {
		return 0
	}
	k, n := w.Dim(0), w.Dim(1)
	count := 0
	if defaultPackCache.cachedPrepackedB(w, k, n, FP32) != nil {
		count++
	}
	if defaultPackCache.cachedPrepackedB(w, k, n, FP16) != nil {
		count++
	}
	return count
}
