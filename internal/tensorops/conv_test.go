package tensorops

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// naiveConv is an independent reference implementation used to validate the
// im2col+GEMM engine.
func naiveConv(x, w *tensor.Tensor, p ConvParams) *tensor.Tensor {
	p = p.Norm()
	n, h, wd := x.Dim(0), x.Dim(2), x.Dim(3)
	co, cig, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	g := p.Groups
	cog := co / g
	ho := tensor.ConvOutDim(h, kh, p.StrideH, p.PadH)
	wo := tensor.ConvOutDim(wd, kw, p.StrideW, p.PadW)
	out := tensor.New(n, co, ho, wo)
	for img := 0; img < n; img++ {
		for oc := 0; oc < co; oc++ {
			grp := oc / cog
			for oy := 0; oy < ho; oy++ {
				for ox := 0; ox < wo; ox++ {
					var acc float64
					for c := 0; c < cig; c++ {
						ic := grp*cig + c
						for ky := 0; ky < kh; ky++ {
							iy := oy*p.StrideH - p.PadH + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ix := ox*p.StrideW - p.PadW + kx
								if ix < 0 || ix >= wd {
									continue
								}
								acc += float64(x.At(img, ic, iy, ix)) * float64(w.At(oc, c, ky, kx))
							}
						}
					}
					out.Set(float32(acc), img, oc, oy, ox)
				}
			}
		}
	}
	return out
}

func randTensor(g *tensor.RNG, dims ...int) *tensor.Tensor {
	t := tensor.New(dims...)
	g.FillNormal(t, 0, 1)
	return t
}

func TestConv2DMatchesNaive(t *testing.T) {
	g := tensor.NewRNG(1)
	cases := []struct {
		xdims, wdims []int
		p            ConvParams
	}{
		{[]int{1, 1, 5, 5}, []int{1, 1, 3, 3}, ConvParams{PadH: 1, PadW: 1}},
		{[]int{2, 3, 8, 8}, []int{4, 3, 3, 3}, ConvParams{PadH: 1, PadW: 1}},
		{[]int{1, 2, 9, 9}, []int{3, 2, 3, 3}, ConvParams{StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}},
		{[]int{1, 3, 7, 7}, []int{5, 3, 1, 1}, ConvParams{}},
		{[]int{1, 4, 6, 6}, []int{4, 1, 3, 3}, ConvParams{PadH: 1, PadW: 1, Groups: 4}}, // depthwise
		{[]int{1, 4, 6, 6}, []int{6, 2, 3, 3}, ConvParams{PadH: 1, PadW: 1, Groups: 2}}, // grouped
		{[]int{1, 1, 11, 7}, []int{2, 1, 5, 3}, ConvParams{StrideH: 2, StrideW: 1, PadH: 2, PadW: 1}},
	}
	for i, c := range cases {
		x := randTensor(g, c.xdims...)
		w := randTensor(g, c.wdims...)
		got := Conv2D(x, w, c.p, FP32)
		want := naiveConv(x, w, c.p)
		if !got.Shape().Equal(want.Shape()) {
			t.Fatalf("case %d: shape %v, want %v", i, got.Shape(), want.Shape())
		}
		if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
			t.Errorf("case %d: max diff %g vs naive", i, d)
		}
	}
}

func TestConv2DShapeMismatchPanics(t *testing.T) {
	g := tensor.NewRNG(2)
	x := randTensor(g, 1, 3, 5, 5)
	w := randTensor(g, 2, 4, 3, 3) // wrong Ci
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on channel mismatch")
		}
	}()
	Conv2D(x, w, ConvParams{}, FP32)
}

func TestConv2DFP16IsQuantized(t *testing.T) {
	g := tensor.NewRNG(3)
	x := randTensor(g, 1, 2, 6, 6)
	w := randTensor(g, 3, 2, 3, 3)
	exact := Conv2D(x, w, ConvParams{PadH: 1, PadW: 1}, FP32)
	half := Conv2D(x, w, ConvParams{PadH: 1, PadW: 1}, FP16)
	// FP16 output must be exactly representable in half precision.
	for i, v := range half.Data() {
		if q := tensor.QuantizeFP16(v); q != v {
			t.Fatalf("elem %d = %v not half-representable", i, v)
		}
	}
	// It should be close to, but generally not identical to, FP32.
	if d := tensor.MaxAbsDiff(exact, half); d == 0 {
		t.Log("note: FP16 conv happened to be exact on this input")
	} else if d > 0.1 {
		t.Errorf("FP16 error too large: %g", d)
	}
}

func TestFilterSamplingDropsAndRescales(t *testing.T) {
	w := tensor.FromSlice([]float32{1, 1, 1, 1, 1, 1, 1, 1}, 2, 1, 2, 2)
	s := SampleFilter(w, 2, 0) // drop even positions, scale odd by 2
	want := []float32{0, 2, 0, 2, 0, 2, 0, 2}
	for i, v := range s.Data() {
		if v != want[i] {
			t.Fatalf("SampleFilter elem %d = %v, want %v", i, v, want[i])
		}
	}
	// original untouched
	if w.Data()[0] != 1 {
		t.Fatal("SampleFilter mutated input weights")
	}
}

// Property: with constant filters and constant input, rescaled filter
// sampling is exact (it preserves the weighted sum).
func TestFilterSamplingExactOnConstants(t *testing.T) {
	x := tensor.New(1, 1, 6, 6)
	x.Fill(1)
	w := tensor.New(1, 1, 3, 3)
	w.Fill(0.5)
	exact := Conv2D(x, w, ConvParams{}, FP32)
	for stride := 2; stride <= 4; stride++ {
		for off := 0; off < stride; off++ {
			// Only offsets that drop exactly floor-or-ceil elements keep the
			// constant-sum property when fvol % stride != 0; allow small slack.
			got := Conv2DFilterSampling(x, w, ConvParams{}, stride, off, FP32)
			rel := tensor.MaxAbsDiff(got, exact) / 4.5
			if rel > 0.35 {
				t.Errorf("stride %d off %d: rel err %g too large", stride, off, rel)
			}
		}
	}
}

func TestFilterSamplingOffsetsDiffer(t *testing.T) {
	g := tensor.NewRNG(4)
	x := randTensor(g, 1, 3, 8, 8)
	w := randTensor(g, 4, 3, 3, 3)
	a := Conv2DFilterSampling(x, w, ConvParams{PadH: 1, PadW: 1}, 2, 0, FP32)
	b := Conv2DFilterSampling(x, w, ConvParams{PadH: 1, PadW: 1}, 2, 1, FP32)
	if tensor.Equal(a, b, 1e-9) {
		t.Error("different sampling offsets should give different outputs")
	}
}

func TestFilterSamplingInvalidKnobPanics(t *testing.T) {
	g := tensor.NewRNG(5)
	x := randTensor(g, 1, 1, 4, 4)
	w := randTensor(g, 1, 1, 3, 3)
	for _, bad := range []struct{ stride, off int }{{1, 0}, {5, 0}, {2, 2}, {3, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("stride=%d off=%d should panic", bad.stride, bad.off)
				}
			}()
			Conv2DFilterSampling(x, w, ConvParams{}, bad.stride, bad.off, FP32)
		}()
	}
}

func TestPerforatedKeptRowsExact(t *testing.T) {
	g := tensor.NewRNG(6)
	x := randTensor(g, 1, 2, 8, 8)
	w := randTensor(g, 3, 2, 3, 3)
	p := ConvParams{PadH: 1, PadW: 1}
	exact := Conv2D(x, w, p, FP32)
	perf := Conv2DPerforated(x, w, p, PerfRows, 2, 0, FP32)
	ho, wo := exact.Dim(2), exact.Dim(3)
	for oc := 0; oc < 3; oc++ {
		for y := 0; y < ho; y++ {
			skipped := y%2 == 0
			for xx := 0; xx < wo; xx++ {
				e, pv := exact.At(0, oc, y, xx), perf.At(0, oc, y, xx)
				if !skipped && math.Abs(float64(e-pv)) > 1e-5 {
					t.Fatalf("kept row %d differs: %v vs %v", y, pv, e)
				}
			}
			if skipped && y > 0 && y < ho-1 {
				// interpolated = average of neighbors
				for xx := 0; xx < wo; xx++ {
					want := 0.5 * (exact.At(0, oc, y-1, xx) + exact.At(0, oc, y+1, xx))
					if math.Abs(float64(perf.At(0, oc, y, xx)-want)) > 1e-5 {
						t.Fatalf("row %d col %d: interpolation %v, want %v", y, xx, perf.At(0, oc, y, xx), want)
					}
				}
			}
		}
	}
}

func TestPerforatedColsSymmetric(t *testing.T) {
	g := tensor.NewRNG(7)
	x := randTensor(g, 1, 1, 8, 8)
	w := randTensor(g, 1, 1, 3, 3)
	p := ConvParams{PadH: 1, PadW: 1}
	exact := Conv2D(x, w, p, FP32)
	perf := Conv2DPerforated(x, w, p, PerfCols, 3, 1, FP32)
	wo := exact.Dim(3)
	for y := 0; y < exact.Dim(2); y++ {
		for xx := 0; xx < wo; xx++ {
			if xx%3 != 1 { // kept column
				if math.Abs(float64(exact.At(0, 0, y, xx)-perf.At(0, 0, y, xx))) > 1e-5 {
					t.Fatalf("kept col %d differs", xx)
				}
			}
		}
	}
}

// Property: perforation preserves output shape for all legal knobs.
func TestPerforationShapePreserved(t *testing.T) {
	g := tensor.NewRNG(8)
	x := randTensor(g, 1, 2, 9, 9)
	w := randTensor(g, 2, 2, 3, 3)
	p := ConvParams{PadH: 1, PadW: 1}
	want := Conv2D(x, w, p, FP32).Shape()
	for _, dir := range []PerfDirection{PerfRows, PerfCols} {
		for stride := 2; stride <= 4; stride++ {
			for off := 0; off < stride; off++ {
				got := Conv2DPerforated(x, w, p, dir, stride, off, FP32)
				if !got.Shape().Equal(want) {
					t.Fatalf("dir=%v stride=%d off=%d: shape %v, want %v", dir, stride, off, got.Shape(), want)
				}
			}
		}
	}
}

// Property: more aggressive perforation (larger fraction skipped) never
// reduces error relative to exact output — on random inputs, on average.
func TestPerforationErrorGrowsWithRate(t *testing.T) {
	g := tensor.NewRNG(9)
	var err2, err4 float64
	for trial := 0; trial < 5; trial++ {
		x := randTensor(g, 1, 2, 12, 12)
		w := randTensor(g, 2, 2, 3, 3)
		p := ConvParams{PadH: 1, PadW: 1}
		exact := Conv2D(x, w, p, FP32)
		perf50 := Conv2DPerforated(x, w, p, PerfRows, 2, 0, FP32) // skip 1/2
		perf25 := Conv2DPerforated(x, w, p, PerfRows, 4, 0, FP32) // skip 1/4
		err2 += tensor.MSE(perf50, exact)
		err4 += tensor.MSE(perf25, exact)
	}
	if err4 >= err2 {
		t.Errorf("25%% perforation error (%g) should be below 50%% perforation error (%g)", err4, err2)
	}
}

func TestGemmAgainstQuick(t *testing.T) {
	// Property: Gemm distributes over addition of A.
	f := func(seed int64) bool {
		g := tensor.NewRNG(seed)
		m, k, n := 3, 4, 5
		a1 := make([]float32, m*k)
		a2 := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a1 {
			a1[i] = float32(g.NormFloat64())
			a2[i] = float32(g.NormFloat64())
		}
		for i := range b {
			b[i] = float32(g.NormFloat64())
		}
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		cs := make([]float32, m*n)
		Gemm(a1, b, c1, m, k, n)
		Gemm(a2, b, c2, m, k, n)
		asum := make([]float32, m*k)
		for i := range asum {
			asum[i] = a1[i] + a2[i]
		}
		Gemm(asum, b, cs, m, k, n)
		for i := range cs {
			if math.Abs(float64(cs[i]-(c1[i]+c2[i]))) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatMul(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	w := tensor.FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	y := MatMul(x, w, FP32)
	if !tensor.Equal(y, x, 1e-9) {
		t.Fatalf("identity MatMul: got %v", y.Data())
	}
	w2 := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y2 := MatMul(x, w2, FP32)
	want := []float32{1*1 + 2*4, 1*2 + 2*5, 1*3 + 2*6, 3*1 + 4*4, 3*2 + 4*5, 3*3 + 4*6}
	for i, v := range y2.Data() {
		if v != want[i] {
			t.Fatalf("MatMul elem %d = %v, want %v", i, v, want[i])
		}
	}
}
