package tensorops

import (
	"math"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// ReLU applies max(0,x) elementwise.
func ReLU(x *tensor.Tensor, prec Precision) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

// ClippedReLU applies min(max(0,x),clip) elementwise (ReLU6 with clip=6,
// used by MobileNet).
func ClippedReLU(x *tensor.Tensor, clip float32, prec Precision) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		} else if v > clip {
			d[i] = clip
		}
	}
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

// Tanh applies tanh elementwise (tanh32 — the float32-targeted kernel
// shared with the fused epilogues).
func Tanh(x *tensor.Tensor, prec Precision) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		d[i] = tanh32(v)
	}
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

// BiasAdd adds a per-channel bias b (length C) to a (N,C,H,W) or (N,C)
// tensor.
func BiasAdd(x, b *tensor.Tensor, prec Precision) *tensor.Tensor {
	out := x.Clone()
	c := b.Elems()
	var spatial int
	switch x.Rank() {
	case 4:
		if x.Dim(1) != c {
			panicShape("BiasAdd", "bias length %d != channels %d", c, x.Dim(1))
		}
		spatial = x.Dim(2) * x.Dim(3)
	case 2:
		if x.Dim(1) != c {
			panicShape("BiasAdd", "bias length %d != features %d", c, x.Dim(1))
		}
		spatial = 1
	default:
		panicShape("BiasAdd", "unsupported rank %d", x.Rank())
	}
	n := x.Dim(0)
	od, bd := out.Data(), b.Data()
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * spatial
			bv := bd[ch]
			seg := od[base : base+spatial]
			for i := range seg {
				seg[i] += bv
			}
		}
	}
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

// Add returns the elementwise sum of two equal-shaped tensors (residual
// connections).
func Add(a, b *tensor.Tensor, prec Precision) *tensor.Tensor {
	out := a.Clone()
	out.Add(b)
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

// PoolParams carries pooling geometry.
type PoolParams struct {
	KH, KW           int
	StrideH, StrideW int
	PadH, PadW       int
}

// Norm defaults strides to the kernel size when zero.
func (p PoolParams) Norm() PoolParams {
	if p.StrideH == 0 {
		p.StrideH = p.KH
	}
	if p.StrideW == 0 {
		p.StrideW = p.KW
	}
	return p
}

// MaxPool computes max pooling over (N,C,H,W).
func MaxPool(x *tensor.Tensor, p PoolParams, prec Precision) *tensor.Tensor {
	return pool(x, p, prec, false, 1)
}

// AvgPool computes average pooling over (N,C,H,W).
func AvgPool(x *tensor.Tensor, p PoolParams, prec Precision) *tensor.Tensor {
	return pool(x, p, prec, true, 1)
}

// MaxPoolSampled and AvgPoolSampled apply the reduction-sampling
// approximation (after Zhu et al.): the reduction uses only a subset of its
// inputs. ratioNum/ratioDen gives the kept fraction — the paper's three
// knobs are 1/2 (50%), 2/5 (40%) and 1/4 (25%). Averages are computed over
// the sampled subset (the "appropriate constant" rescaling); max is taken
// over the subset.
func MaxPoolSampled(x *tensor.Tensor, p PoolParams, ratioNum, ratioDen int, prec Precision) *tensor.Tensor {
	return poolSampled(x, p, prec, false, ratioNum, ratioDen)
}

// AvgPoolSampled — see MaxPoolSampled.
func AvgPoolSampled(x *tensor.Tensor, p PoolParams, ratioNum, ratioDen int, prec Precision) *tensor.Tensor {
	return poolSampled(x, p, prec, true, ratioNum, ratioDen)
}

func pool(x *tensor.Tensor, p PoolParams, prec Precision, avg bool, _ int) *tensor.Tensor {
	return poolSampled(x, p, prec, avg, 1, 1)
}

func poolSampled(x *tensor.Tensor, p PoolParams, prec Precision, avg bool, num, den int) *tensor.Tensor {
	p = p.Norm()
	if x.Rank() != 4 {
		panicShape("Pool", "need 4-D input, got %v", x.Shape())
	}
	if num <= 0 || den <= 0 || num > den {
		panicShape("Pool", "bad sampling ratio %d/%d", num, den)
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	ho := tensor.ConvOutDim(h, p.KH, p.StrideH, p.PadH)
	wo := tensor.ConvOutDim(w, p.KW, p.StrideW, p.PadW)
	xd := x.Data()
	if prec == FP16 {
		q := quantizedScratch(xd)
		defer tensor.Release(q)
		xd = q
	}
	out := tensor.New(n, c, ho, wo)
	od := out.Data()
	keep := func(i int) bool { return (i*num)%den < num }
	parallel.For(n*c, func(nc int) {
		inBase := nc * h * w
		outBase := nc * ho * wo
		for oy := 0; oy < ho; oy++ {
			for ox := 0; ox < wo; ox++ {
				var acc float64
				count := 0
				best := float32(math.Inf(-1))
				idx := 0
				for ky := 0; ky < p.KH; ky++ {
					iy := oy*p.StrideH - p.PadH + ky
					for kx := 0; kx < p.KW; kx++ {
						ix := ox*p.StrideW - p.PadW + kx
						k := idx
						idx++
						if iy < 0 || iy >= h || ix < 0 || ix >= w {
							continue
						}
						if !keep(k) {
							continue
						}
						v := xd[inBase+iy*w+ix]
						if avg {
							acc += float64(v)
							count++
						} else if v > best {
							best = v
						}
					}
				}
				var r float32
				if avg {
					if count > 0 {
						r = float32(acc / float64(count))
					}
				} else {
					if math.IsInf(float64(best), -1) {
						best = 0 // window entirely skipped or padded
					}
					r = best
				}
				od[outBase+oy*wo+ox] = r
			}
		}
	})
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

// BatchNormParams holds per-channel inference-time normalization state.
type BatchNormParams struct {
	Gamma, Beta, Mean, Var *tensor.Tensor
	Eps                    float32
}

// BatchNorm applies inference-mode batch normalization per channel of a
// (N,C,H,W) tensor.
func BatchNorm(x *tensor.Tensor, bp BatchNormParams, prec Precision) *tensor.Tensor {
	if x.Rank() != 4 {
		panicShape("BatchNorm", "need 4-D input, got %v", x.Shape())
	}
	c := x.Dim(1)
	if bp.Gamma.Elems() != c || bp.Beta.Elems() != c || bp.Mean.Elems() != c || bp.Var.Elems() != c {
		panicShape("BatchNorm", "parameter length mismatch for %d channels", c)
	}
	eps := bp.Eps
	//lint:ignore floateq exact zero is the unset-field sentinel
	if eps == 0 {
		eps = 1e-5
	}
	n := x.Dim(0)
	spatial := x.Dim(2) * x.Dim(3)
	out := x.Clone()
	od := out.Data()
	g, b, m, v := bp.Gamma.Data(), bp.Beta.Data(), bp.Mean.Data(), bp.Var.Data()
	scale := make([]float32, c)
	shift := make([]float32, c)
	for ch := 0; ch < c; ch++ {
		s := g[ch] / float32(math.Sqrt(float64(v[ch]+eps)))
		scale[ch] = s
		shift[ch] = b[ch] - s*m[ch]
	}
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			base := (img*c + ch) * spatial
			s, sh := scale[ch], shift[ch]
			seg := od[base : base+spatial]
			for i := range seg {
				seg[i] = seg[i]*s + sh
			}
		}
	}
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

// Softmax applies a numerically-stable softmax over the last dimension of
// an (N,K) tensor. The paper stores the softmax output as the program's
// "raw tensor output" for profile collection.
func Softmax(x *tensor.Tensor, prec Precision) *tensor.Tensor {
	if x.Rank() != 2 {
		panicShape("Softmax", "need 2-D logits, got %v", x.Shape())
	}
	n, k := x.Dim(0), x.Dim(1)
	out := x.Clone()
	od := out.Data()
	for r := 0; r < n; r++ {
		row := od[r*k : (r+1)*k]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - maxv))
			row[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range row {
			row[i] *= inv
		}
	}
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

// ReduceKind selects the reduction operator for Reduce.
type ReduceKind int

const (
	ReduceSum ReduceKind = iota
	ReduceMean
	ReduceMax
)

// Reduce collapses the trailing spatial dimensions of a (N,C,H,W) tensor to
// (N,C) using the given operator. A sampling ratio num/den < 1 applies the
// reduction-sampling approximation; sums are rescaled by den/num and means
// are computed over the sampled subset.
func Reduce(x *tensor.Tensor, kind ReduceKind, num, den int, prec Precision) *tensor.Tensor {
	if x.Rank() != 4 {
		panicShape("Reduce", "need 4-D input, got %v", x.Shape())
	}
	if num <= 0 || den <= 0 || num > den {
		panicShape("Reduce", "bad sampling ratio %d/%d", num, den)
	}
	n, c := x.Dim(0), x.Dim(1)
	spatial := x.Dim(2) * x.Dim(3)
	xd := x.Data()
	if prec == FP16 {
		q := quantizedScratch(xd)
		defer tensor.Release(q)
		xd = q
	}
	out := tensor.New(n, c)
	od := out.Data()
	keep := func(i int) bool { return (i*num)%den < num }
	parallel.For(n*c, func(nc int) {
		seg := xd[nc*spatial : (nc+1)*spatial]
		var acc float64
		count := 0
		best := float32(math.Inf(-1))
		for i, v := range seg {
			if !keep(i) {
				continue
			}
			count++
			acc += float64(v)
			if v > best {
				best = v
			}
		}
		switch kind {
		case ReduceSum:
			// Rescale the sampled sum back to full-population scale.
			od[nc] = float32(acc * float64(spatial) / float64(max(count, 1)))
		case ReduceMean:
			if count > 0 {
				od[nc] = float32(acc / float64(count))
			}
		case ReduceMax:
			if count > 0 {
				od[nc] = best
			}
		}
	})
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

// Flatten reshapes (N,...) to (N,K).
func Flatten(x *tensor.Tensor) *tensor.Tensor {
	n := x.Dim(0)
	return x.Reshape(n, x.Elems()/n)
}
