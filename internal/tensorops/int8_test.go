package tensorops

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestQuantizeInt8Grid(t *testing.T) {
	x := tensor.FromSlice([]float32{-1.27, 0, 0.635, 1.27}, 4)
	q := QuantizeInt8(x)
	want := []float32{-1.27, 0, 0.64, 1.27} // scale = 0.01
	for i, v := range q.Data() {
		if math.Abs(float64(v-want[i])) > 1e-6 {
			t.Errorf("elem %d = %v, want %v", i, v, want[i])
		}
	}
	if x.Data()[2] != 0.635 {
		t.Error("QuantizeInt8 mutated its input")
	}
}

func TestQuantizeInt8Bounds(t *testing.T) {
	g := tensor.NewRNG(1)
	x := tensor.New(1000)
	g.FillNormal(x, 0, 2)
	q := QuantizeInt8(x)
	var maxAbs float64
	for _, v := range x.Data() {
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	step := maxAbs / 127
	for i := range q.Data() {
		if d := math.Abs(float64(q.Data()[i] - x.Data()[i])); d > step/2+1e-9 {
			t.Fatalf("elem %d quantization error %v exceeds half-step %v", i, d, step/2)
		}
	}
}

func TestQuantizeInt8Zero(t *testing.T) {
	z := tensor.New(8)
	q := QuantizeInt8(z)
	for _, v := range q.Data() {
		if v != 0 {
			t.Fatal("zero tensor must quantize to zero")
		}
	}
}

func TestConv2DInt8CloseToExact(t *testing.T) {
	g := tensor.NewRNG(2)
	x := tensor.New(1, 3, 8, 8)
	g.FillNormal(x, 0, 1)
	w := tensor.New(4, 3, 3, 3)
	g.FillHe(w, 27)
	p := ConvParams{PadH: 1, PadW: 1}
	exact := Conv2D(x, w, p, FP32)
	int8out := Conv2DInt8(x, w, p)
	if !int8out.Shape().Equal(exact.Shape()) {
		t.Fatal("shape changed")
	}
	rel := math.Sqrt(tensor.MSE(int8out, exact)) / (exact.L2Norm() / math.Sqrt(float64(exact.Elems())))
	if rel > 0.05 {
		t.Errorf("int8 conv relative error %v too large", rel)
	}
	if rel == 0 {
		t.Error("int8 conv suspiciously exact")
	}
	// INT8 should be coarser than FP16.
	fp16out := Conv2D(x, w, p, FP16)
	if tensor.MSE(int8out, exact) <= tensor.MSE(fp16out, exact) {
		t.Error("int8 error should exceed fp16 error")
	}
}

func TestMatMulInt8(t *testing.T) {
	g := tensor.NewRNG(3)
	x := tensor.New(4, 16)
	g.FillNormal(x, 0, 1)
	w := tensor.New(16, 8)
	g.FillXavier(w, 16, 8)
	exact := MatMul(x, w, FP32)
	q := MatMulInt8(x, w)
	if math.Sqrt(tensor.MSE(q, exact)) > 0.1 {
		t.Errorf("int8 matmul error too large: %v", tensor.MSE(q, exact))
	}
}
