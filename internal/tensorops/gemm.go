// Package tensorops implements the predefined tensor operations of the
// ApproxHPVM-style IR — convolution, matrix multiplication, activations,
// pooling, normalization, softmax and reductions — in exact form and in
// every approximate variant the paper tunes: filter sampling (9 knobs),
// perforated convolution (18 knobs), reduction sampling (3 knobs), and
// IEEE FP16 variants of all of them.
//
// Functional note: in the paper the approximations save time by skipping
// work on real hardware. Here the kernels compute the *semantics* of each
// approximation exactly (skipped outputs really are interpolated, skipped
// filter elements really are dropped with rescaling), while the time and
// energy impact is modeled analytically by internal/device using the same
// compute/memory reduction factors as §3.4 of the paper.
package tensorops

import (
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Precision selects the storage precision of a kernel. FP16 quantizes
// inputs, weights and outputs through IEEE half precision (accumulation
// stays in float32, matching tensor-core style hardware).
type Precision int

const (
	FP32 Precision = iota
	FP16
)

func (p Precision) String() string {
	if p == FP16 {
		return "fp16"
	}
	return "fp32"
}

// GEMM engine geometry. B is packed once per call into row-panels of
// gemmNR contiguous columns; the inner kernel computes a gemmMR×gemmNR
// micro-tile of C with every output element accumulating in a register
// over the full K extent, in ascending-l order. That order is exactly the
// reference triple loop's, so for a zeroed C the blocked kernel is
// bit-identical to the naive kernel (the differential tests pin this).
const (
	gemmMR = 4 // micro-tile rows (rows of A per inner kernel)
	gemmNR = 4 // micro-tile columns (panel width)
)

// Gemm computes C = A·B for row-major A (m×k), B (k×n), C (m×n).
// C must be zeroed by the caller if pure assignment is wanted; Gemm
// accumulates into C.
func Gemm(a, b, c []float32, m, k, n int) {
	gemmEngine(a, b, c, m, k, n, false)
}

// GemmPacked computes C += A·B with B supplied as a tensor (k×n
// row-major): when bt is marked cacheable and the shape fits the blocked
// path, the packed panels come from the process-wide pack cache, so
// repeated calls skip the per-call pack pass entirely. Otherwise it
// falls back to the uncached engine. Bit-identical to Gemm either way.
func GemmPacked(a []float32, bt *tensor.Tensor, c []float32, m, k, n int) {
	if m >= gemmMR {
		if pre := defaultPackCache.cachedPrepackedB(bt, k, n, FP32); pre != nil {
			gemmRun(a, nil, c, m, k, n, false, pre, nil)
			return
		}
	}
	gemmEngine(a, bt.Data(), c, m, k, n, false)
}

// gemmEngine is the per-call kernel entry: pack B (quantizing when
// quantB is set — fusing the former full-tensor quantizedCopy pass into
// the pack step), multiply, no epilogue.
func gemmEngine(a, b, c []float32, m, k, n int, quantB bool) {
	gemmRun(a, b, c, m, k, n, quantB, nil, nil)
}

// gemmRun is the shared blocked kernel. pre, when non-nil, supplies B
// already packed (and quantized) — b may then be nil, and the caller
// must have checked m >= gemmMR, since the small-m saxpy path streams
// raw B. ep, when non-nil, is applied to each C row as it completes;
// that requires a zeroed C (assignment semantics).
func gemmRun(a, b, c []float32, m, k, n int, quantB bool, pre *prepacked, ep *rowEpi) {
	if m <= 0 || n <= 0 || k <= 0 {
		return
	}
	if pre == nil && m < gemmMR {
		// Too few rows to amortize packing (depthwise convolution reaches
		// here with m == 1): stream B rows directly, saxpy style.
		if parallel.Serial() {
			gemmSaxpyRows(0, m, a, b, c, k, n, quantB, ep)
		} else {
			parallel.ForChunked(m, func(lo, hi int) {
				gemmSaxpyRows(lo, hi, a, b, c, k, n, quantB, ep)
			})
		}
		return
	}
	np := n / gemmNR // number of full B panels
	if pre == nil && np == 0 {
		// Too narrow for a panel: plain per-element accumulation.
		if parallel.Serial() {
			gemmTailRows(0, m, a, b, c, k, n, quantB, ep)
		} else {
			parallel.ForChunked(m, func(lo, hi int) {
				gemmTailRows(lo, hi, a, b, c, k, n, quantB, ep)
			})
		}
		return
	}
	var packed, tail []float32
	fresh := pre == nil
	if fresh {
		packed = tensor.Scratch(np * k * gemmNR)
	} else {
		packed, tail = pre.panels, pre.tail
	}
	nBlocks := (m + gemmMR - 1) / gemmMR
	if parallel.Serial() {
		if fresh {
			packRange(0, np, b, packed, k, n, quantB)
		}
		gemmBlockRange(0, nBlocks, a, b, c, packed, tail, m, k, n, np, quantB, ep)
	} else {
		if fresh {
			parallel.ForChunked(np, func(plo, phi int) {
				packRange(plo, phi, b, packed, k, n, quantB)
			})
		}
		parallel.ForChunked(nBlocks, func(blo, bhi int) {
			gemmBlockRange(blo, bhi, a, b, c, packed, tail, m, k, n, np, quantB, ep)
		})
	}
	if fresh {
		tensor.Release(packed)
	}
}

// gemmSaxpyRows runs gemmSaxpyRow over C rows [lo,hi), applying the
// fused epilogue to each completed row.
func gemmSaxpyRows(lo, hi int, a, b, c []float32, k, n int, quantB bool, ep *rowEpi) {
	for i := lo; i < hi; i++ {
		crow := c[i*n : (i+1)*n]
		gemmSaxpyRow(a[i*k:(i+1)*k], b, crow, n, quantB)
		ep.apply(crow, i)
	}
}

// gemmTailRows runs gemmTailRow over whole C rows [lo,hi), applying the
// fused epilogue to each completed row.
func gemmTailRows(lo, hi int, a, b, c []float32, k, n int, quantB bool, ep *rowEpi) {
	for i := lo; i < hi; i++ {
		crow := c[i*n : (i+1)*n]
		gemmTailRow(a[i*k:(i+1)*k], b, crow, n, 0, quantB)
		ep.apply(crow, i)
	}
}

// gemmBlockRange computes the row blocks [blo,bhi) of the blocked kernel:
// full gemmMR-row blocks go through the 4×4 micro-tile, remainder rows
// through the 1×4 edge kernel, and the sub-panel tail columns through the
// strided tail kernel — or, when tail is non-nil (prepacked operand),
// through the contiguous pre-gathered tail columns. The fused epilogue
// runs on each row right after its tail completes, while the row is hot.
func gemmBlockRange(blo, bhi int, a, b, c, packed, tail []float32, m, k, n, np int, quantB bool, ep *rowEpi) {
	jTail := np * gemmNR
	for ib := blo; ib < bhi; ib++ {
		i0 := ib * gemmMR
		rows := m - i0
		if rows > gemmMR {
			rows = gemmMR
		}
		if rows == gemmMR {
			a0 := a[i0*k : (i0+1)*k]
			a1 := a[(i0+1)*k : (i0+2)*k]
			a2 := a[(i0+2)*k : (i0+3)*k]
			a3 := a[(i0+3)*k : (i0+4)*k]
			c0 := c[i0*n : (i0+1)*n]
			c1 := c[(i0+1)*n : (i0+2)*n]
			c2 := c[(i0+2)*n : (i0+3)*n]
			c3 := c[(i0+3)*n : (i0+4)*n]
			for jp := 0; jp < np; jp++ {
				panel := packed[jp*k*gemmNR : (jp+1)*k*gemmNR]
				j0 := jp * gemmNR
				microTile4(a0, a1, a2, a3, panel,
					c0[j0:j0+gemmNR], c1[j0:j0+gemmNR], c2[j0:j0+gemmNR], c3[j0:j0+gemmNR])
			}
		} else {
			for r := 0; r < rows; r++ {
				arow := a[(i0+r)*k : (i0+r+1)*k]
				crow := c[(i0+r)*n : (i0+r+1)*n]
				for jp := 0; jp < np; jp++ {
					j0 := jp * gemmNR
					microKernel1(arow, packed[jp*k*gemmNR:(jp+1)*k*gemmNR], crow[j0:j0+gemmNR])
				}
			}
		}
		for r := 0; r < rows; r++ {
			arow := a[(i0+r)*k : (i0+r+1)*k]
			crow := c[(i0+r)*n : (i0+r+1)*n]
			if tail != nil {
				gemmTailRowPre(arow, tail, crow, n, jTail)
			} else {
				gemmTailRow(arow, b, crow, n, jTail, quantB)
			}
			ep.apply(crow, i0+r)
		}
	}
}

// gemmTailRowPre is gemmTailRow over a prepacked tail: the tail columns
// are stored contiguously column-major (tail[(j-j0)*k+l] = B[l][j],
// already quantized for FP16), so the inner product reads a forward
// stream. Accumulation order (ascending l, zero-skip on A) is identical
// to gemmTailRow's, so the result is bit-equal.
func gemmTailRowPre(arow, tail, crow []float32, n, j0 int) {
	k := len(arow)
	for j := j0; j < n; j++ {
		col := tail[(j-j0)*k : (j-j0+1)*k]
		var s float32
		for l, av := range arow {
			//lint:ignore floateq sparsity fast path: exactly-zero activations contribute nothing
			if av != 0 {
				s += av * col[l]
			}
		}
		crow[j] += s
	}
}

// packRange copies B panels [plo,phi) into the packed layout
// packed[(jp*k+l)*gemmNR+j] = B[l][jp*gemmNR+j]: np contiguous panels of
// gemmNR columns each. The packed layout turns the micro-kernel's B
// accesses into a single forward stream and is read gemmMR rows at a time,
// so each B element is loaded from memory m/gemmMR times instead of m
// times. With quantB the copy quantizes through FP16 in the same pass.
func packRange(plo, phi int, b, packed []float32, k, n int, quantB bool) {
	for jp := plo; jp < phi; jp++ {
		j0 := jp * gemmNR
		dst := packed[jp*k*gemmNR : (jp+1)*k*gemmNR]
		for l := 0; l < k; l++ {
			src := b[l*n+j0 : l*n+j0+gemmNR]
			d := dst[l*gemmNR : l*gemmNR+gemmNR]
			if quantB {
				d[0] = tensor.QuantizeFP16(src[0])
				d[1] = tensor.QuantizeFP16(src[1])
				d[2] = tensor.QuantizeFP16(src[2])
				d[3] = tensor.QuantizeFP16(src[3])
			} else {
				d[0] = src[0]
				d[1] = src[1]
				d[2] = src[2]
				d[3] = src[3]
			}
		}
	}
}

// microKernel4 accumulates the 4×4 micro-tile C[r][j] += Σ_l A[r][l]·P[l][j]
// over the full K extent with all sixteen outputs held in scalar
// accumulators. The a slices are the four A rows (equal length k); panel is
// the packed B panel (k×gemmNR); c0..c3 are the four gemmNR-wide C row
// segments. It is the portable implementation behind microTile4 — on amd64
// the SSE2 kernel in gemm_amd64.s runs instead, computing the same
// operation sequence per output element.
func microKernel4(a0, a1, a2, a3, panel []float32, c0, c1, c2, c3 []float32) {
	kc := len(a0)
	a1 = a1[:kc]
	a2 = a2[:kc]
	a3 = a3[:kc]
	panel = panel[: kc*gemmNR : kc*gemmNR]
	var s00, s01, s02, s03 float32
	var s10, s11, s12, s13 float32
	var s20, s21, s22, s23 float32
	var s30, s31, s32, s33 float32
	for l := 0; l < kc; l++ {
		v0, v1, v2, v3 := a0[l], a1[l], a2[l], a3[l]
		//lint:ignore floateq panel-level sparsity fast path: filter sampling zeroes the same flattened positions in every filter, so whole A columns vanish and contribute nothing
		if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
			continue
		}
		pi := l * gemmNR
		p := panel[pi : pi+gemmNR]
		b0, b1, b2, b3 := p[0], p[1], p[2], p[3]
		s00 += v0 * b0
		s01 += v0 * b1
		s02 += v0 * b2
		s03 += v0 * b3
		s10 += v1 * b0
		s11 += v1 * b1
		s12 += v1 * b2
		s13 += v1 * b3
		s20 += v2 * b0
		s21 += v2 * b1
		s22 += v2 * b2
		s23 += v2 * b3
		s30 += v3 * b0
		s31 += v3 * b1
		s32 += v3 * b2
		s33 += v3 * b3
	}
	c0[0] += s00
	c0[1] += s01
	c0[2] += s02
	c0[3] += s03
	c1[0] += s10
	c1[1] += s11
	c1[2] += s12
	c1[3] += s13
	c2[0] += s20
	c2[1] += s21
	c2[2] += s22
	c2[3] += s23
	c3[0] += s30
	c3[1] += s31
	c3[2] += s32
	c3[3] += s33
}

// microKernel1 is the 1×4 edge kernel for the up-to-three leftover rows of
// an M remainder block, with the per-element zero skip of the original
// kernel (ReLU-sparse activations in MatMul remainders benefit).
func microKernel1(arow, panel []float32, crow []float32) {
	kc := len(arow)
	panel = panel[: kc*gemmNR : kc*gemmNR]
	var s0, s1, s2, s3 float32
	for l := 0; l < kc; l++ {
		v := arow[l]
		//lint:ignore floateq sparsity fast path: exactly-zero activations contribute nothing
		if v == 0 {
			continue
		}
		pi := l * gemmNR
		p := panel[pi : pi+gemmNR]
		s0 += v * p[0]
		s1 += v * p[1]
		s2 += v * p[2]
		s3 += v * p[3]
	}
	crow[0] += s0
	crow[1] += s1
	crow[2] += s2
	crow[3] += s3
}

// gemmTailRow accumulates crow[j] += Σ_l arow[l]·B[l][j] for the unpacked
// tail columns j in [j0,n) — at most gemmNR-1 of them, read with stride n
// straight from B. With quantB each B element is quantized on access,
// which matches the packed path's pack-time quantization bit for bit.
func gemmTailRow(arow, b, crow []float32, n, j0 int, quantB bool) {
	for j := j0; j < n; j++ {
		var s float32
		bi := j
		for _, av := range arow {
			//lint:ignore floateq sparsity fast path: exactly-zero activations contribute nothing
			if av != 0 {
				bv := b[bi]
				if quantB {
					bv = tensor.QuantizeFP16(bv)
				}
				s += av * bv
			}
			bi += n
		}
		crow[j] += s
	}
}

// gemmSaxpyRow computes one C row by streaming whole B rows (the shape of
// the pre-blocking kernel), used when m < gemmMR and packing B would cost
// as much as the multiply itself. Each crow[j] accumulates in ascending-l
// order, so the result is bit-identical to the packed path's. With quantB
// each B element is quantized on access.
func gemmSaxpyRow(arow, b, crow []float32, n int, quantB bool) {
	for l, av := range arow {
		//lint:ignore floateq sparsity fast path: exactly-zero activations contribute nothing
		if av == 0 {
			continue
		}
		brow := b[l*n : (l+1)*n]
		if quantB {
			for j, bv := range brow {
				crow[j] += av * tensor.QuantizeFP16(bv)
			}
		} else {
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MatMul multiplies x (n×k) by the transpose-free weight w (k×m), returning
// an (n×m) tensor. It is the fully-connected / dense operator. With FP16
// precision the operands and result are quantized through half precision:
// the input through a pooled scratch copy (or the pack cache for marked
// tensors), the weight during the GEMM pack step (no separate
// full-tensor pass).
func MatMul(x, w *tensor.Tensor, prec Precision) *tensor.Tensor {
	return MatMulFused(x, w, prec, Epilogue{})
}

// MatMulFused is MatMul with the bias/activation/FP16-writeback epilogue
// applied per C row during the GEMM instead of as separate whole-tensor
// passes, and with w's packed panels served from the pack cache when w
// is marked cacheable. Bit-identical to the unfused chain.
func MatMulFused(x, w *tensor.Tensor, prec Precision, ep Epilogue) *tensor.Tensor {
	n, k := x.Dim(0), x.Elems()/x.Dim(0)
	if w.Rank() != 2 || w.Dim(0) != k {
		panicShape("MatMul", "weight shape %v incompatible with input inner dim %d", w.Shape(), k)
	}
	m := w.Dim(1)
	if ep.Bias != nil && ep.Bias.Elems() != m {
		panicShape("MatMul", "bias length %d != output features %d", ep.Bias.Elems(), m)
	}
	xd := x.Data()
	if prec == FP16 {
		if q, ok := cachedQuantized(x); ok {
			xd = q
		} else {
			xq := quantizedScratch(xd)
			defer tensor.Release(xq)
			xd = xq
		}
	}
	out := tensor.New(n, m)
	var re *rowEpi
	if prec == FP16 || !ep.empty() {
		re = &rowEpi{act: ep.Act, clip: ep.Clip, quant: prec == FP16}
		if ep.Bias != nil {
			re.bias = ep.Bias.Data() // indexed by column: per output feature
		}
	}
	if n >= gemmMR {
		if pre := defaultPackCache.cachedPrepackedB(w, k, m, prec); pre != nil {
			gemmRun(xd, nil, out.Data(), n, k, m, false, pre, re)
			return out
		}
	}
	gemmRun(xd, w.Data(), out.Data(), n, k, m, prec == FP16, nil, re)
	return out
}

// quantizedScratch returns a pooled buffer holding d quantized through
// FP16. The caller must tensor.Release it when the kernel is done.
func quantizedScratch(d []float32) []float32 {
	q := tensor.Scratch(len(d))
	tensor.QuantizeFP16Slice(q, d)
	return q
}

func panicShape(op, format string, args ...any) {
	panic("tensorops: " + op + ": " + sprintf(format, args...))
}
