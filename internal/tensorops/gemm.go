// Package tensorops implements the predefined tensor operations of the
// ApproxHPVM-style IR — convolution, matrix multiplication, activations,
// pooling, normalization, softmax and reductions — in exact form and in
// every approximate variant the paper tunes: filter sampling (9 knobs),
// perforated convolution (18 knobs), reduction sampling (3 knobs), and
// IEEE FP16 variants of all of them.
//
// Functional note: in the paper the approximations save time by skipping
// work on real hardware. Here the kernels compute the *semantics* of each
// approximation exactly (skipped outputs really are interpolated, skipped
// filter elements really are dropped with rescaling), while the time and
// energy impact is modeled analytically by internal/device using the same
// compute/memory reduction factors as §3.4 of the paper.
package tensorops

import (
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Precision selects the storage precision of a kernel. FP16 quantizes
// inputs, weights and outputs through IEEE half precision (accumulation
// stays in float32, matching tensor-core style hardware).
type Precision int

const (
	FP32 Precision = iota
	FP16
)

func (p Precision) String() string {
	if p == FP16 {
		return "fp16"
	}
	return "fp32"
}

// Gemm computes C = A·B for row-major A (m×k), B (k×n), C (m×n).
// C must be zeroed by the caller if pure assignment is wanted; Gemm
// accumulates into C.
func Gemm(a, b, c []float32, m, k, n int) {
	parallel.ForChunked(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*k : (i+1)*k]
			crow := c[i*n : (i+1)*n]
			for l, av := range arow {
				//lint:ignore floateq sparsity fast path: exactly-zero activations contribute nothing
				if av == 0 {
					continue
				}
				brow := b[l*n : (l+1)*n]
				for j, bv := range brow {
					crow[j] += av * bv
				}
			}
		}
	})
}

// MatMul multiplies x (n×k) by the transpose-free weight w (k×m), returning
// an (n×m) tensor. It is the fully-connected / dense operator. With FP16
// precision the operands and result are quantized through half precision.
func MatMul(x, w *tensor.Tensor, prec Precision) *tensor.Tensor {
	n, k := x.Dim(0), x.Elems()/x.Dim(0)
	if w.Rank() != 2 || w.Dim(0) != k {
		panicShape("MatMul", "weight shape %v incompatible with input inner dim %d", w.Shape(), k)
	}
	m := w.Dim(1)
	xd, wd := x.Data(), w.Data()
	if prec == FP16 {
		xd = quantizedCopy(xd)
		wd = quantizedCopy(wd)
	}
	out := tensor.New(n, m)
	Gemm(xd, wd, out.Data(), n, k, m)
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

func quantizedCopy(d []float32) []float32 {
	q := make([]float32, len(d))
	for i, v := range d {
		q[i] = tensor.QuantizeFP16(v)
	}
	return q
}

func panicShape(op, format string, args ...any) {
	panic("tensorops: " + op + ": " + sprintf(format, args...))
}
