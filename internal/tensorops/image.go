package tensorops

import (
	"math"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// The "map"-style tensor operations of the ApproxHPVM op set used by the
// image-processing pipeline (Canny edge detection, §7.6): elementwise
// absolute value, square root and product, plus the two Canny-specific
// stencils — non-maximum suppression along the gradient direction and
// double-threshold hysteresis.

// Abs applies |x| elementwise.
func Abs(x *tensor.Tensor, prec Precision) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = -v
		}
	}
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

// Sqrt applies √max(x,0) elementwise.
func Sqrt(x *tensor.Tensor, prec Precision) *tensor.Tensor {
	out := x.Clone()
	d := out.Data()
	for i, v := range d {
		if v <= 0 {
			d[i] = 0
		} else {
			d[i] = float32(math.Sqrt(float64(v)))
		}
	}
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

// Mul returns the elementwise product of two equal-shaped tensors.
func Mul(a, b *tensor.Tensor, prec Precision) *tensor.Tensor {
	if a.Elems() != b.Elems() {
		panicShape("Mul", "size mismatch %d vs %d", a.Elems(), b.Elems())
	}
	out := a.Clone()
	d, bd := out.Data(), b.Data()
	for i := range d {
		d[i] *= bd[i]
	}
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

// NonMaxSuppress keeps a magnitude pixel only if it is a local maximum
// along its quantized gradient direction (the NMS stage of Canny). mag,
// gx, gy are (N,1,H,W).
func NonMaxSuppress(mag, gx, gy *tensor.Tensor, prec Precision) *tensor.Tensor {
	if mag.Rank() != 4 {
		panicShape("NMS", "need 4-D magnitude, got %v", mag.Shape())
	}
	n, c, h, w := mag.Dim(0), mag.Dim(1), mag.Dim(2), mag.Dim(3)
	out := tensor.New(n, c, h, w)
	md, xd, yd, od := mag.Data(), gx.Data(), gy.Data(), out.Data()
	parallel.For(n*c, func(nc int) {
		base := nc * h * w
		at := func(y, x int) float32 {
			if y < 0 || y >= h || x < 0 || x >= w {
				return 0
			}
			return md[base+y*w+x]
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := base + y*w + x
				m := md[i]
				//lint:ignore floateq exactly-zero magnitude pixels have no gradient to suppress
				if m == 0 {
					continue
				}
				// Quantize the gradient direction to 0°, 45°, 90° or 135°.
				ang := math.Atan2(float64(yd[i]), float64(xd[i])) * 180 / math.Pi
				if ang < 0 {
					ang += 180
				}
				var a, b float32
				switch {
				case ang < 22.5 || ang >= 157.5: // horizontal gradient
					a, b = at(y, x-1), at(y, x+1)
				case ang < 67.5: // 45°
					a, b = at(y-1, x+1), at(y+1, x-1)
				case ang < 112.5: // vertical
					a, b = at(y-1, x), at(y+1, x)
				default: // 135°
					a, b = at(y-1, x-1), at(y+1, x+1)
				}
				if m >= a && m >= b {
					od[i] = m
				}
			}
		}
	})
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}

// Hysteresis applies Canny's double-threshold edge linking in a single
// pass: pixels above hi are strong edges (1); pixels in (lo, hi] become
// edges only if an 8-neighbor is strong.
func Hysteresis(mag *tensor.Tensor, lo, hi float32, prec Precision) *tensor.Tensor {
	if mag.Rank() != 4 {
		panicShape("Hysteresis", "need 4-D magnitude, got %v", mag.Shape())
	}
	n, c, h, w := mag.Dim(0), mag.Dim(1), mag.Dim(2), mag.Dim(3)
	out := tensor.New(n, c, h, w)
	md, od := mag.Data(), out.Data()
	parallel.For(n*c, func(nc int) {
		base := nc * h * w
		strong := func(y, x int) bool {
			if y < 0 || y >= h || x < 0 || x >= w {
				return false
			}
			return md[base+y*w+x] > hi
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := base + y*w + x
				m := md[i]
				switch {
				case m > hi:
					od[i] = 1
				case m > lo:
					//lint:ignore floateq the output is a 0/1 edge mask; zero is the unvisited sentinel
					for dy := -1; dy <= 1 && od[i] == 0; dy++ {
						for dx := -1; dx <= 1; dx++ {
							if (dy != 0 || dx != 0) && strong(y+dy, x+dx) {
								od[i] = 1
								break
							}
						}
					}
				}
			}
		}
	})
	if prec == FP16 {
		out.ToFP16()
	}
	return out
}
