package tensorops

import (
	"math"
	"testing"
)

// ulpDiff32 returns the distance in float32 ulps between a and b (0 when
// bit-equal, including -0 vs +0 treated as 1 apart only if bits differ).
func ulpDiff32(a, b float32) uint32 {
	ia := int32(math.Float32bits(a))
	ib := int32(math.Float32bits(b))
	// Map to a monotone integer line.
	if ia < 0 {
		ia = math.MinInt32 - ia
	}
	if ib < 0 {
		ib = math.MinInt32 - ib
	}
	d := int64(ia) - int64(ib)
	if d < 0 {
		d = -d
	}
	return uint32(d)
}

// TestTanh32MatchesMathTanh sweeps a dense grid of inputs across the full
// useful range and requires tanh32 to be within 1 float32 ulp of
// float32(math.Tanh(x)) — the polynomial's error budget (~2e-4 ulp) only
// permits a 1-ulp difference when the true value straddles a float32
// rounding boundary.
func TestTanh32MatchesMathTanh(t *testing.T) {
	worst := uint32(0)
	var worstX float32
	check := func(x float32) {
		got := tanh32(x)
		want := float32(math.Tanh(float64(x)))
		if d := ulpDiff32(got, want); d > worst {
			worst = d
			worstX = x
		}
	}
	// Dense linear sweep over the active range.
	for i := -200000; i <= 200000; i++ {
		check(float32(i) * 5.2e-5) // covers [-10.4, 10.4]
	}
	// Log-spaced sweep into the denormal/small-input region and out past
	// saturation.
	for e := -40; e <= 6; e++ {
		base := float32(math.Pow(2, float64(e)))
		for m := 0; m < 64; m++ {
			x := base * (1 + float32(m)/64)
			check(x)
			check(-x)
		}
	}
	if worst > 1 {
		t.Fatalf("tanh32(%g) differs from math.Tanh by %d ulps", worstX, worst)
	}
}

func TestTanh32Edges(t *testing.T) {
	if got := tanh32(0); math.Float32bits(got) != 0 {
		t.Fatalf("tanh32(0) = %g (bits %#x), want +0", got, math.Float32bits(got))
	}
	negZero := float32(math.Copysign(0, -1))
	if got := tanh32(negZero); got != 0 {
		t.Fatalf("tanh32(-0) = %g, want 0", got)
	}
	if got := tanh32(float32(math.Inf(1))); got != 1 {
		t.Fatalf("tanh32(+Inf) = %g, want 1", got)
	}
	if got := tanh32(float32(math.Inf(-1))); got != -1 {
		t.Fatalf("tanh32(-Inf) = %g, want -1", got)
	}
	if got := tanh32(float32(math.NaN())); !math.IsNaN(float64(got)) {
		t.Fatalf("tanh32(NaN) = %g, want NaN", got)
	}
	if got := tanh32(10); got != 1 {
		t.Fatalf("tanh32(10) = %g, want saturated 1", got)
	}
	if got := tanh32(-10); got != -1 {
		t.Fatalf("tanh32(-10) = %g, want saturated -1", got)
	}
	// Odd symmetry holds bit-exactly: tanh32 computes on |x|.
	for _, x := range []float32{1e-8, 0.1, 0.5, 1, 2, 5, 8.9} {
		if p, n := tanh32(x), tanh32(-x); p != -n {
			t.Fatalf("tanh32 not odd at %g: %g vs %g", x, p, n)
		}
	}
}
