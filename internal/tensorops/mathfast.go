package tensorops

import "math"

// tanh32 is the activation kernel behind Tanh and the fused epilogues: a
// float32-targeted tanh evaluated in float64. math.Tanh computes a full
// float64-precision result (two assembly exp evaluations plus branchy
// range handling) only for the caller to throw 29 bits away in the
// float32 conversion; profiling the tuning experiments put ~40% of
// end-to-end time inside it. This version computes e^y-1 (y = 2x) with
// one degree-7 polynomial after standard ln2 range reduction and forms
// tanh(x) = (e^2x-1)/(e^2x+1). The polynomial's relative error is
// ~2e-8 — under a fifth of a float32 ulp — so results match
// float32(math.Tanh(x)) to within one ulp everywhere (the differential
// test sweeps the full active range and pins this). Every execution path
// (serial, sharded, fused, unfused, cached) shares this one function, so
// the engine's bit-identity invariants are unaffected.
//
// Exactness at the edges: tanh32(0) == 0 (k=0 reduction is exact at 0),
// tanh32(-x) == -tanh32(x) (computed on |x|), NaN propagates, and
// |2x| >= 18.03 saturates to ±1 — the value float32 rounds
// 1-2e^-18.03 to anyway.
func tanh32(x float32) float32 {
	y := 2 * float64(x)
	neg := false
	if y < 0 {
		y = -y
		neg = true
	}
	if !(y < 18.03) { // saturated, +Inf, or NaN
		if math.IsNaN(y) {
			return x
		}
		if neg {
			return -1
		}
		return 1
	}

	// Range-reduce y = k·ln2 + r with |r| <= ln2/2, splitting ln2 into
	// high/low parts so r stays accurate. y is non-negative here, so the
	// truncating int conversion of y·(1/ln2)+0.5 is exactly
	// round-to-nearest (math.Round costs a libcall-sized detour on this
	// hot path).
	const (
		invLn2 = 1.4426950408889634
		ln2Hi  = 6.93147180369123816490e-01
		ln2Lo  = 1.90821492927058770002e-10
	)
	k := int64(y*invLn2 + 0.5)
	kf := float64(k)
	r := y - kf*ln2Hi - kf*ln2Lo

	// e^r - 1 on [-ln2/2, ln2/2], degree-7 Taylor (remainder r^8/8! —
	// relative error ~2e-8 at the interval edge, under a fifth of a
	// float32 ulp after the final conversion).
	p := r * (1 + r*(1/2.0+r*(1/6.0+r*(1/24.0+r*(1/120.0+r*(1/720.0+r/5040.0))))))

	// e^y - 1 = 2^k·(1+p) - 1 = 2^k·p + (2^k - 1). k is in [0, 26], so
	// 2^k is exact and built directly from the exponent bits.
	em1 := p
	if k != 0 {
		pow2k := math.Float64frombits(uint64(1023+k) << 52)
		em1 = pow2k*p + (pow2k - 1)
	}

	t := em1 / (em1 + 2)
	if neg {
		t = -t
	}
	return float32(t)
}
