package tensorops

import (
	"fmt"
	"testing"

	"repro/internal/tensor"
)

// gemmRef is the pre-blocking reference kernel (the naive triple loop with
// the per-element zero skip) the blocked engine is pinned against. Each
// output element accumulates left-to-right over l, the exact order the
// micro-kernels preserve, so for a zeroed C the blocked kernel must be
// bit-identical.
func gemmRef(a, b, c []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n : (i+1)*n]
		for l, av := range arow {
			//lint:ignore floateq reference kernel mirrors the engine's sparsity skip
			if av == 0 {
				continue
			}
			brow := b[l*n : (l+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

func fillNormal(g *tensor.RNG, d []float32) {
	for i := range d {
		d[i] = float32(g.NormFloat64())
	}
}

// gemmShapes is the differential grid: odd, prime, power-of-two and
// just-past-power-of-two extents exercise every edge path (M remainder
// rows, N tail columns, sub-panel matrices).
var gemmShapes = []int{1, 3, 7, 17, 64, 129}

func TestGemmMatchesReferenceExactly(t *testing.T) {
	g := tensor.NewRNG(11)
	for _, m := range gemmShapes {
		for _, k := range gemmShapes {
			for _, n := range gemmShapes {
				a := make([]float32, m*k)
				b := make([]float32, k*n)
				fillNormal(g, a)
				fillNormal(g, b)
				got := make([]float32, m*n)
				want := make([]float32, m*n)
				Gemm(a, b, got, m, k, n)
				gemmRef(a, b, want, m, k, n)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("m=%d k=%d n=%d: C[%d] = %v, reference %v (must be bit-identical into zeroed C)",
							m, k, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestGemmSparseAMatchesReference(t *testing.T) {
	// Filter-sampling-style sparsity: the same flattened positions zeroed
	// in every row of A, which the panel-level fast path skips whole.
	g := tensor.NewRNG(12)
	for _, stride := range []int{2, 3, 4} {
		m, k, n := 9, 35, 21
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		fillNormal(g, a)
		fillNormal(g, b)
		for i := 0; i < m; i++ {
			for l := 0; l < k; l++ {
				if l%stride == 0 {
					a[i*k+l] = 0
				}
			}
		}
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		Gemm(a, b, got, m, k, n)
		gemmRef(a, b, want, m, k, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("stride=%d: C[%d] = %v, reference %v", stride, i, got[i], want[i])
			}
		}
	}
}

func TestGemmAccumulatesIntoNonZeroC(t *testing.T) {
	// With a pre-filled C the engine computes c + (t0+t1+…) while the
	// reference computes ((c+t0)+t1)+…; equal within rounding tolerance.
	g := tensor.NewRNG(13)
	m, k, n := 17, 29, 23
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	fillNormal(g, a)
	fillNormal(g, b)
	got := make([]float32, m*n)
	want := make([]float32, m*n)
	fillNormal(g, got)
	copy(want, got)
	Gemm(a, b, got, m, k, n)
	gemmRef(a, b, want, m, k, n)
	for i := range want {
		d := float64(got[i]) - float64(want[i])
		if d < 0 {
			d = -d
		}
		if d > 1e-5 {
			t.Fatalf("C[%d] = %v, reference %v (|Δ| %v > 1e-5)", i, got[i], want[i], d)
		}
	}
}

func TestGemmEngineQuantBMatchesQuantizedReference(t *testing.T) {
	// Pack-time FP16 quantization of B must equal the former separate
	// quantizedCopy pass bit for bit, on both the packed panels and the
	// strided tail columns.
	g := tensor.NewRNG(14)
	for _, n := range []int{3, 7, 16, 129} {
		m, k := 13, 37
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		fillNormal(g, a)
		fillNormal(g, b)
		bq := make([]float32, len(b))
		for i, v := range b {
			bq[i] = tensor.QuantizeFP16(v)
		}
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		gemmEngine(a, b, got, m, k, n, true)
		gemmRef(a, bq, want, m, k, n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: C[%d] = %v, reference %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestPortableMicroKernelsMatchReference(t *testing.T) {
	// On amd64 Gemm dispatches to the SSE2 micro-kernel, so the portable
	// Go micro-kernels are exercised directly here: a 4×4 tile via
	// microKernel4 and a 1×4 row via microKernel1 against the reference.
	g := tensor.NewRNG(18)
	k := 33
	a := make([]float32, gemmMR*k)
	b := make([]float32, k*gemmNR)
	fillNormal(g, a)
	fillNormal(g, b)
	for i := 0; i < gemmMR; i++ { // sprinkle zeros to hit the skip paths
		a[i*k+5] = 0
		a[i*k+17] = 0
	}
	packed := make([]float32, k*gemmNR)
	packRange(0, 1, b, packed, k, gemmNR, false)
	want := make([]float32, gemmMR*gemmNR)
	gemmRef(a, b, want, gemmMR, k, gemmNR)

	got := make([]float32, gemmMR*gemmNR)
	microKernel4(a[:k], a[k:2*k], a[2*k:3*k], a[3*k:4*k], packed,
		got[0:4], got[4:8], got[8:12], got[12:16])
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("microKernel4: C[%d] = %v, reference %v", i, got[i], want[i])
		}
	}

	got1 := make([]float32, gemmNR)
	microKernel1(a[:k], packed, got1)
	for i := range got1 {
		if got1[i] != want[i] {
			t.Fatalf("microKernel1: C[%d] = %v, reference %v", i, got1[i], want[i])
		}
	}
}

func TestGemmDegenerateDims(t *testing.T) {
	c := []float32{5}
	Gemm(nil, nil, c, 1, 0, 1) // k=0: C unchanged
	if c[0] != 5 {
		t.Fatalf("k=0 Gemm mutated C: %v", c[0])
	}
	Gemm(nil, nil, nil, 0, 3, 0) // empty: no panic
}

// naiveConv32 is a float32-accumulation direct convolution whose reduction
// order (channel → kernel row → kernel column, ascending) matches the
// im2col+GEMM engine's flattened-l order, making the comparison exact.
func naiveConv32(x, w *tensor.Tensor, p ConvParams) *tensor.Tensor {
	p = p.Norm()
	n, h, wd := x.Dim(0), x.Dim(2), x.Dim(3)
	co, cig, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	g := p.Groups
	cog := co / g
	ho := tensor.ConvOutDim(h, kh, p.StrideH, p.PadH)
	wo := tensor.ConvOutDim(wd, kw, p.StrideW, p.PadW)
	out := tensor.New(n, co, ho, wo)
	for img := 0; img < n; img++ {
		for oc := 0; oc < co; oc++ {
			grp := oc / cog
			for oy := 0; oy < ho; oy++ {
				for ox := 0; ox < wo; ox++ {
					var acc float32
					for c := 0; c < cig; c++ {
						ic := grp*cig + c
						for ky := 0; ky < kh; ky++ {
							iy := oy*p.StrideH - p.PadH + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < kw; kx++ {
								ix := ox*p.StrideW - p.PadW + kx
								if ix < 0 || ix >= wd {
									continue
								}
								acc += x.At(img, ic, iy, ix) * w.At(oc, c, ky, kx)
							}
						}
					}
					out.Set(acc, img, oc, oy, ox)
				}
			}
		}
	}
	return out
}

func TestConvGroupedDepthwiseMatchesFloat32Naive(t *testing.T) {
	g := tensor.NewRNG(15)
	cases := []struct {
		n, ci, h, w int
		co, kh, kw  int
		p           ConvParams
	}{
		{2, 4, 9, 9, 8, 3, 3, ConvParams{Groups: 2, PadH: 1, PadW: 1}},
		{1, 6, 7, 11, 6, 3, 3, ConvParams{Groups: 6, PadH: 1, PadW: 1}},                          // depthwise
		{2, 8, 13, 13, 8, 3, 3, ConvParams{Groups: 8, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}}, // strided depthwise
		{1, 9, 17, 5, 18, 5, 1, ConvParams{Groups: 3, PadH: 2}},
	}
	for ci, tc := range cases {
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			x := randTensor(g, tc.n, tc.ci, tc.h, tc.w)
			w := randTensor(g, tc.co, tc.ci/tc.p.Norm().Groups, tc.kh, tc.kw)
			got := Conv2D(x, w, tc.p, FP32)
			want := naiveConv32(x, w, tc.p)
			if d := tensor.MaxAbsDiff(got, want); d > 1e-5 {
				t.Fatalf("max abs diff %v > 1e-5 vs float32 naive conv", d)
			}
		})
	}
}

func TestConvFP16MatchesQuantizedNaive(t *testing.T) {
	g := tensor.NewRNG(16)
	x := randTensor(g, 2, 3, 9, 9)
	w := randTensor(g, 4, 3, 3, 3)
	p := ConvParams{PadH: 1, PadW: 1}
	got := Conv2D(x, w, p, FP16)
	want := naiveConv32(x.CloneFP16(), w.CloneFP16(), p).ToFP16()
	if d := tensor.MaxAbsDiff(got, want); d > 1e-5 {
		t.Fatalf("FP16 conv max abs diff %v > 1e-5 vs quantized float32 naive conv", d)
	}
}

func TestMatMulFP16MatchesQuantizedReference(t *testing.T) {
	g := tensor.NewRNG(17)
	n, k, m := 5, 19, 11
	x := randTensor(g, n, k)
	w := randTensor(g, k, m)
	got := MatMul(x, w, FP16)
	want := tensor.New(n, m)
	gemmRef(x.CloneFP16().Data(), w.CloneFP16().Data(), want.Data(), n, k, m)
	want.ToFP16()
	if d := tensor.MaxAbsDiff(got, want); d > 1e-5 {
		t.Fatalf("FP16 MatMul max abs diff %v > 1e-5", d)
	}
}
