package tensorops

import (
	"sync"
	"testing"

	"repro/internal/tensor"
)

// TestGemmPackedBitIdentical pins the pack-once contract: a GEMM run
// through cached prepacked panels must be bit-identical to the per-call
// engine, cold and warm, across the full differential grid (remainder
// rows, tail columns, sub-panel shapes).
func TestGemmPackedBitIdentical(t *testing.T) {
	g := tensor.NewRNG(29)
	for _, m := range gemmShapes {
		for _, k := range gemmShapes {
			for _, n := range gemmShapes {
				a := make([]float32, m*k)
				fillNormal(g, a)
				bt := randTensor(g, k, n).MarkCacheable()
				want := make([]float32, m*n)
				Gemm(a, bt.Data(), want, m, k, n)
				for pass := 0; pass < 2; pass++ { // cold (pack) then warm (hit)
					got := make([]float32, m*n)
					GemmPacked(a, bt, got, m, k, n)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("m=%d k=%d n=%d pass=%d: C[%d] = %v, uncached %v",
								m, k, n, pass, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestPackCacheHitsAndInvalidate drives a private cache instance through
// miss → hit → invalidate → miss and checks the byte accounting.
func TestPackCacheHitsAndInvalidate(t *testing.T) {
	c := NewPackCache(1 << 20)
	g := tensor.NewRNG(3)
	w := randTensor(g, 8, 8).MarkCacheable()

	q1, ok := c.cachedQuantized(w)
	if !ok {
		t.Fatal("cacheable tensor rejected")
	}
	q2, _ := c.cachedQuantized(w)
	if &q1[0] != &q2[0] {
		t.Error("second lookup rebuilt instead of hitting")
	}
	if hits, misses, _ := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if c.Bytes() != int64(4*w.Elems()) {
		t.Errorf("bytes = %d, want %d", c.Bytes(), 4*w.Elems())
	}

	id, _, _ := w.CacheKey()
	if dropped := c.Invalidate(id); dropped != 1 {
		t.Errorf("Invalidate dropped %d entries, want 1", dropped)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Errorf("after invalidate: %d entries / %d bytes resident", c.Len(), c.Bytes())
	}

	// A generation bump (in-place mutation) must miss even without an
	// invalidation sweep.
	q3, _ := c.cachedQuantized(w)
	w.Data()[0] += 1
	w.InvalidateCache()
	q4, _ := c.cachedQuantized(w)
	if &q3[0] == &q4[0] {
		t.Error("stale entry returned after generation bump")
	}
}

// TestPackCacheUncacheableTensor: tensors never marked cacheable must not
// enter the cache.
func TestPackCacheUncacheableTensor(t *testing.T) {
	c := NewPackCache(1 << 20)
	g := tensor.NewRNG(5)
	w := randTensor(g, 8, 8)
	if _, ok := c.cachedQuantized(w); ok {
		t.Error("unmarked tensor was cached")
	}
	if c.cachedPrepackedB(w, 8, 8, FP32) != nil {
		t.Error("unmarked tensor produced prepacked panels")
	}
	if c.Len() != 0 {
		t.Errorf("%d entries resident", c.Len())
	}
}

// TestPackCacheEviction inserts under a budget that holds exactly two
// quantized copies and checks LRU order: the least-recently-touched entry
// goes first, and the byte budget always holds.
func TestPackCacheEviction(t *testing.T) {
	g := tensor.NewRNG(7)
	const elems = 64
	c := NewPackCache(2 * 4 * elems) // room for exactly two entries
	ws := make([]*tensor.Tensor, 3)
	for i := range ws {
		ws[i] = randTensor(g, elems).MarkCacheable()
	}
	c.cachedQuantized(ws[0])
	c.cachedQuantized(ws[1])
	c.cachedQuantized(ws[0]) // touch 0 so 1 is LRU
	c.cachedQuantized(ws[2]) // evicts 1
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if c.Bytes() > c.maxBytes {
		t.Fatalf("resident %d bytes over budget %d", c.Bytes(), c.maxBytes)
	}
	hits0, _, _ := c.Stats()
	c.cachedQuantized(ws[0]) // still resident
	c.cachedQuantized(ws[1]) // evicted: must rebuild
	hits1, _, ev := c.Stats()
	if hits1 != hits0+1 {
		t.Errorf("hit accounting off: %d -> %d (want one hit for ws[0], a miss for ws[1])", hits0, hits1)
	}
	if ev != 2 {
		t.Errorf("evictions = %d, want 2 (re-inserting ws[1] evicts again)", ev)
	}

	// An entry larger than the whole budget is returned but never resident.
	big := randTensor(g, 10*elems).MarkCacheable()
	if q, ok := c.cachedQuantized(big); !ok || len(q) != big.Elems() {
		t.Fatal("oversized entry not computed")
	}
	if c.Bytes() > c.maxBytes {
		t.Fatalf("oversized entry resident: %d bytes", c.Bytes())
	}
}

// TestPackCacheConcurrent hammers one cache with concurrent lookups and
// invalidations; run under -race this pins the locking discipline, and the
// returned slices must always hold the current generation's values.
func TestPackCacheConcurrent(t *testing.T) {
	c := NewPackCache(1 << 20)
	g := tensor.NewRNG(13)
	tensors := make([]*tensor.Tensor, 4)
	for i := range tensors {
		tensors[i] = randTensor(g, 32, 32).MarkCacheable()
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 200; iter++ {
				tn := tensors[(w+iter)%len(tensors)]
				switch {
				case w%4 == 3 && iter%17 == 0:
					id, _, _ := tn.CacheKey()
					c.Invalidate(id)
				case w%2 == 0:
					if q, ok := c.cachedQuantized(tn); !ok || len(q) != tn.Elems() {
						t.Error("bad quantized lookup")
						return
					}
				default:
					if p := c.cachedPrepackedB(tn, 32, 32, FP32); p == nil || p.np != 32/gemmNR {
						t.Error("bad prepacked lookup")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	hits, misses, _ := c.Stats()
	if hits+misses == 0 {
		t.Error("no lookups recorded")
	}
}

// fusedCases is the epilogue differential grid shared by the conv and
// matmul fusion tests.
var fusedCases = []struct {
	name string
	ep   Epilogue
}{
	{"none", Epilogue{}},
	{"bias", Epilogue{}}, // Bias filled in by the test
	{"bias+relu", Epilogue{Act: ActReLU}},
	{"bias+relu6", Epilogue{Act: ActClippedReLU, Clip: 6}},
	{"bias+tanh", Epilogue{Act: ActTanh}},
	{"relu", Epilogue{Act: ActReLU}},
}

// unfusedChain applies the pre-fusion operator sequence: the standalone
// BiasAdd / activation passes, each requantizing under FP16 exactly as the
// old graph executor did.
func unfusedChain(out *tensor.Tensor, ep Epilogue, prec Precision) *tensor.Tensor {
	if ep.Bias != nil {
		out = BiasAdd(out, ep.Bias, prec)
	}
	switch ep.Act {
	case ActReLU:
		out = ReLU(out, prec)
	case ActClippedReLU:
		out = ClippedReLU(out, ep.Clip, prec)
	case ActTanh:
		out = Tanh(out, prec)
	}
	return out
}

// TestConv2DFusedMatchesUnfused pins the fused epilogue against the
// separate-pass chain, bit for bit, for cacheable and transient operands
// under both precisions.
func TestConv2DFusedMatchesUnfused(t *testing.T) {
	g := tensor.NewRNG(17)
	p := ConvParams{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	for _, cacheable := range []bool{false, true} {
		x := randTensor(g, 2, 3, 9, 9)
		w := randTensor(g, 8, 3, 3, 3)
		bias := randTensor(g, 8)
		if cacheable {
			x.MarkCacheable()
			w.MarkCacheable()
		}
		for _, prec := range []Precision{FP32, FP16} {
			for _, tc := range fusedCases {
				ep := tc.ep
				if tc.name != "none" && tc.name != "relu" {
					ep.Bias = bias
				}
				want := unfusedChain(Conv2D(x, w, p, prec), ep, prec)
				for pass := 0; pass < 2; pass++ { // cold + warm cache
					got := Conv2DFused(x, w, p, prec, ep)
					wd, gd := want.Data(), got.Data()
					for i := range wd {
						if wd[i] != gd[i] {
							t.Fatalf("cacheable=%v prec=%v %s pass=%d: out[%d] = %v, unfused %v",
								cacheable, prec, tc.name, pass, i, gd[i], wd[i])
						}
					}
				}
			}
		}
	}
}

// TestMatMulFusedMatchesUnfused is the dense-layer analogue.
func TestMatMulFusedMatchesUnfused(t *testing.T) {
	g := tensor.NewRNG(19)
	for _, cacheable := range []bool{false, true} {
		for _, shape := range [][2]int{{5, 7}, {16, 33}} {
			k, m := shape[0], shape[1]
			x := randTensor(g, 6, k)
			w := randTensor(g, k, m)
			bias := randTensor(g, m)
			if cacheable {
				x.MarkCacheable()
				w.MarkCacheable()
			}
			for _, prec := range []Precision{FP32, FP16} {
				for _, tc := range fusedCases {
					ep := tc.ep
					if tc.name != "none" && tc.name != "relu" {
						ep.Bias = bias
					}
					want := unfusedChain(MatMul(x, w, prec), ep, prec)
					for pass := 0; pass < 2; pass++ {
						got := MatMulFused(x, w, prec, ep)
						wd, gd := want.Data(), got.Data()
						for i := range wd {
							if wd[i] != gd[i] {
								t.Fatalf("cacheable=%v k=%d m=%d prec=%v %s pass=%d: out[%d] = %v, unfused %v",
									cacheable, k, m, prec, tc.name, pass, i, gd[i], wd[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestConvColsCacheBitIdentical: a convolution over a cacheable input
// (which memoizes its packed im2col columns) must match the transient
// uncached path bit for bit, cold and warm, both precisions, including
// grouped geometry.
func TestConvColsCacheBitIdentical(t *testing.T) {
	g := tensor.NewRNG(53)
	cases := []ConvParams{
		{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
		{Groups: 2, PadH: 1, PadW: 1},
	}
	for _, p := range cases {
		x := randTensor(g, 2, 4, 9, 9)
		w := randTensor(g, 8, 4/p.Norm().Groups, 3, 3)
		cx := x.Clone().MarkCacheable()
		for _, prec := range []Precision{FP32, FP16} {
			want := Conv2D(x, w, p, prec) // transient input: never cached
			for pass := 0; pass < 2; pass++ {
				got := Conv2D(cx, w, p, prec)
				wd, gd := want.Data(), got.Data()
				for i := range wd {
					if wd[i] != gd[i] {
						t.Fatalf("p=%+v prec=%v pass=%d: out[%d] = %v, uncached %v",
							p, prec, pass, i, gd[i], wd[i])
					}
				}
			}
		}
	}
}

// TestSampledFilterCacheReused: the sampled-filter cache must return the
// same values as a fresh SampleFilter and key distinct knobs separately.
func TestSampledFilterCacheReused(t *testing.T) {
	g := tensor.NewRNG(23)
	w := randTensor(g, 8, 4, 3, 3).MarkCacheable()
	c := NewPackCache(1 << 20)
	for _, knob := range [][2]int{{2, 0}, {2, 1}, {4, 1}} {
		stride, offset := knob[0], knob[1]
		want := SampleFilter(w, stride, offset)
		got := c.cachedSampledFilter(w, stride, offset)
		if got == nil {
			t.Fatalf("stride=%d offset=%d: no cached filter", stride, offset)
		}
		again := c.cachedSampledFilter(w, stride, offset)
		if got != again {
			t.Errorf("stride=%d offset=%d: second lookup rebuilt", stride, offset)
		}
		wd, gd := want.Data(), got.Data()
		for i := range wd {
			if wd[i] != gd[i] {
				t.Fatalf("stride=%d offset=%d: [%d] = %v, want %v", stride, offset, i, gd[i], wd[i])
			}
		}
	}
	if c.Len() != 3 {
		t.Errorf("%d entries, want 3 (one per knob)", c.Len())
	}
}
