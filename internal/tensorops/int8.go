package tensorops

import (
	"math"

	"repro/internal/tensor"
)

// INT8 quantization extension (see approx.KindInt8): symmetric per-tensor
// 8-bit quantization. Operands snap to a 255-level grid scaled to the
// tensor's max magnitude; accumulation stays in float32 and the result is
// returned dequantized, mirroring typical int8 GEMM pipelines with fp32
// requantization.

// QuantizeInt8 snaps every element of a copy of t onto the symmetric
// int8 grid scale·[-127, 127] with scale = maxAbs/127.
func QuantizeInt8(t *tensor.Tensor) *tensor.Tensor {
	out := t.Clone()
	d := out.Data()
	var maxAbs float32
	for _, v := range d {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	//lint:ignore floateq all-zero tensor short-circuit before computing the quantization scale
	if maxAbs == 0 {
		return out
	}
	scale := maxAbs / 127
	for i, v := range d {
		q := math.Round(float64(v / scale))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		d[i] = float32(q) * scale
	}
	return out
}

// Conv2DInt8 computes a convolution with int8-quantized input and weights.
func Conv2DInt8(x, w *tensor.Tensor, p ConvParams) *tensor.Tensor {
	return convolve(QuantizeInt8(x), QuantizeInt8(w), p, FP32, nil, Epilogue{})
}

// MatMulInt8 computes a dense layer with int8-quantized operands.
func MatMulInt8(x, w *tensor.Tensor) *tensor.Tensor {
	return MatMul(QuantizeInt8(x), QuantizeInt8(w), FP32)
}
