// Package poolaudit is a lint fixture: scratch-pool lifecycle. A buffer
// from tensor.Scratch must reach tensor.Release on every path, exactly
// once, and never be touched afterwards; handing the buffer away
// (return, store, capture) transfers the obligation to the new owner.
package poolaudit

import "repro/internal/tensor"

func use(buf []float32) {}

// DeferRelease is the canonical pattern — clean.
func DeferRelease(n int) {
	buf := tensor.Scratch(n)
	defer tensor.Release(buf)
	use(buf)
}

// ReleaseAllPaths releases explicitly on both paths — clean.
func ReleaseAllPaths(n int, early bool) {
	buf := tensor.Scratch(n)
	if early {
		tensor.Release(buf)
		return
	}
	use(buf)
	tensor.Release(buf)
}

// LeakOnEarlyReturn misses Release on the error path — flagged at the
// leaking return, not at the (healthy) main path.
func LeakOnEarlyReturn(n int) bool {
	buf := tensor.Scratch(n)
	if n > 64 {
		return false // want poolaudit
	}
	use(buf)
	tensor.Release(buf)
	return true
}

// LeakNoRelease never releases — flagged where the function falls off
// the end.
func LeakNoRelease(n int) {
	buf := tensor.Scratch(n)
	use(buf) // want poolaudit
}

// DoubleRelease releases twice on the same path.
func DoubleRelease(n int) {
	buf := tensor.Scratch(n)
	use(buf)
	tensor.Release(buf)
	tensor.Release(buf) // want poolaudit
}

// MayDoubleRelease releases conditionally and then unconditionally: on
// the branch-taken path the second Release is a double free.
func MayDoubleRelease(n int, flag bool) {
	buf := tensor.Scratch(n)
	if flag {
		tensor.Release(buf)
	}
	tensor.Release(buf) // want poolaudit
}

// UseAfterRelease reads the buffer after a definite release.
func UseAfterRelease(n int) float32 {
	buf := tensor.Scratch(n)
	tensor.Release(buf)
	x := buf[0] // want poolaudit
	return x
}

// DeferInLoop registers a release of the same live value once per
// iteration: every defer after the first releases an already-covered
// buffer.
func DeferInLoop(n int) {
	buf := tensor.Scratch(n)
	for i := 0; i < 3; i++ {
		defer tensor.Release(buf) // want poolaudit
	}
}

// FreshPerIteration re-acquires and defers each iteration — clean: each
// defer covers that iteration's value.
func FreshPerIteration(rows int) {
	for i := 0; i < rows; i++ {
		buf := tensor.Scratch(rows)
		defer tensor.Release(buf)
		use(buf)
	}
}

// PartialRelease borrows a re-slice and releases through one — both
// recognized as operations on the tracked buffer.
func PartialRelease(n int) {
	buf := tensor.Scratch(n)
	use(buf[:n/2])
	tensor.Release(buf[:n])
}

// ReturnsOwnership hands the buffer to the caller — not this function's
// leak, and callers of this helper own a pooled buffer just as if they
// had called Scratch.
func ReturnsOwnership(n int) []float32 {
	buf := tensor.Scratch(n)
	return buf
}

// CallerAudited acquires from the local pool-returner above and leaks on
// the short-circuit path.
func CallerAudited(n int) int {
	buf := ReturnsOwnership(n)
	if n == 0 {
		return 0 // want poolaudit
	}
	tensor.Release(buf)
	return n
}

type cache struct{ buf []float32 }

// Stored acquires straight into a field — ownership never binds to a
// local, out of scope here.
func Stored(n int, c *cache) {
	c.buf = tensor.Scratch(n)
}

// Captured transfers the buffer into a closure; the closure owns it.
func Captured(n int) func() {
	buf := tensor.Scratch(n)
	return func() { tensor.Release(buf) }
}

// BuildInClosure mirrors the pack-cache miss path: the build closure
// acquires scratch, packs out of it, and releases before returning the
// heap-allocated result — straight-line, clean, and analyzed as its own
// unit.
func BuildInClosure(n int) func() []float32 {
	return func() []float32 {
		cols := tensor.Scratch(n)
		use(cols)
		packed := make([]float32, n)
		copy(packed, cols)
		tensor.Release(cols)
		return packed
	}
}

// BuildInClosureLeak is the same shape with an early return the release
// never covers.
func BuildInClosureLeak(n int) func() []float32 {
	return func() []float32 {
		cols := tensor.Scratch(n)
		if n == 0 {
			return nil // want poolaudit
		}
		use(cols)
		tensor.Release(cols)
		return nil
	}
}

// CacheMissConditional acquires only on the miss path and defers the
// release inside that branch — clean: the obligation exists exactly where
// the defer covers it.
func CacheMissConditional(n int, hit bool) {
	if !hit {
		cols := tensor.Scratch(n)
		defer tensor.Release(cols)
		use(cols)
	}
}

// CachedPayloadNotPooled copies a pooled buffer into a plain allocation
// before the release (the rule cache payloads live by: eviction must
// never race a borrower against pool reuse) — clean.
func CachedPayloadNotPooled(n int) []float32 {
	cols := tensor.Scratch(n)
	use(cols)
	payload := make([]float32, n)
	copy(payload, cols)
	tensor.Release(cols)
	return payload
}
