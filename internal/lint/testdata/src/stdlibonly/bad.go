// Package stdlibonly is a lint fixture: third-party imports are banned.
package stdlibonly

import (
	"fmt"

	_ "github.com/example/fastmath" // want stdlibonly

	_ "repro/internal/tensor"
)

// Use keeps fmt imported.
func Use() { fmt.Println("fixture") }
