// Package lockorder is a lint fixture: module-wide lock-acquisition
// ordering. Opposite acquisition orders of the same mutex pair — direct
// or through a call — form a cycle; re-locking a held mutex is a
// guaranteed self-deadlock.
package lockorder

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

// TransferAB locks A then B. Together with TransferBA below this forms
// an ordering cycle; the report lands on the acquisition completing the
// canonical (smallest-key-first) cycle.
func TransferAB(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want lockorder
	b.n += a.n
	b.mu.Unlock()
}

// TransferBA locks B then A — the reverse order.
func TransferBA(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.n += b.n
	a.mu.Unlock()
}

// Recurse re-locks the mutex it already holds.
func Recurse(a *A) {
	a.mu.Lock()
	a.mu.Lock() // want lockorder
	a.n++
	a.mu.Unlock()
	a.mu.Unlock()
}

type C struct {
	mu sync.Mutex
	n  int
}

type D struct {
	mu sync.Mutex
	n  int
}

func bumpD(d *D) {
	d.mu.Lock()
	d.n++
	d.mu.Unlock()
}

// CallWhileHolding acquires D.mu transitively through bumpD while
// holding C.mu; ReverseDC takes them in the opposite order. The witness
// chain in the diagnostic names the call.
func CallWhileHolding(c *C, d *D) {
	c.mu.Lock()
	bumpD(d) // want lockorder
	c.mu.Unlock()
}

// ReverseDC locks D then C directly.
func ReverseDC(c *C, d *D) {
	d.mu.Lock()
	defer d.mu.Unlock()
	c.mu.Lock()
	c.n += d.n
	c.mu.Unlock()
}

// SameOrderTwice repeats an existing order — consistent, no cycle, no
// report.
func SameOrderTwice(a *A, b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// SequentialNotNested unlocks before the next acquisition — no overlap,
// no ordering constraint.
func SequentialNotNested(a *A, b *B) {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}
