// Package spanfix is a lint fixture: obs span hygiene.
package spanfix

import (
	"context"

	"repro/internal/obs"
)

// Leak starts a span and never ends it — flagged.
func Leak(t *obs.Tracer) {
	sp := t.Start("leak") // want spanend
	_ = sp.AcquireDetail()
}

// Deferred ends the span with defer — clean.
func Deferred(t *obs.Tracer) {
	sp := t.Start("ok")
	defer sp.End()
}

// Bypass ends the span explicitly but an earlier return can skip it —
// flagged at the return.
func Bypass(t *obs.Tracer, fail bool) {
	sp := t.Start("bypass")
	if fail {
		return // want spanend
	}
	sp.End()
}

// Transfer hands ownership to the caller — clean.
func Transfer(t *obs.Tracer) *obs.Span {
	sp := t.Start("transfer")
	return sp
}

// Stored moves the span into a struct; the owner ends it elsewhere — clean.
func Stored(t *obs.Tracer, holder *struct{ S *obs.Span }) {
	sp := t.Start("stored")
	holder.S = sp
}

// Chained ends through a pass-through method chain — clean.
func Chained(t *obs.Tracer) {
	sp := t.Start("chained")
	defer sp.With("k", 1).End()
}

// Closure ends the span inside a deferred closure — clean.
func Closure(t *obs.Tracer) {
	sp := t.Start("closure")
	defer func() {
		sp.End()
	}()
}

// LeakCtx starts a context-scoped span (multi-value assignment) and
// never ends it — flagged.
func LeakCtx(t *obs.Tracer, ctx context.Context) context.Context {
	ctx, sp := t.StartCtx(ctx, "leak-ctx") // want spanend
	sp.AcquireDetail()
	return ctx
}

// DeferredCtx ends the context-scoped span with defer — clean.
func DeferredCtx(t *obs.Tracer, ctx context.Context) {
	_, sp := t.StartCtx(ctx, "ok-ctx")
	defer sp.End()
}

// BypassCtx ends the context-scoped span explicitly but an earlier
// return can skip it — flagged at the return.
func BypassCtx(t *obs.Tracer, ctx context.Context, fail bool) {
	_, sp := t.StartCtx(ctx, "bypass-ctx")
	if fail {
		return // want spanend
	}
	sp.End()
}

// PackageCtx uses the package-level helper — same multi-value shape,
// flagged when leaked.
func PackageCtx(ctx context.Context) context.Context {
	ctx, sp := obs.StartCtx(ctx, "pkg-ctx") // want spanend
	sp.AcquireDetail()
	return ctx
}

// IntoContext stores the span in a context: ownership moves with the
// context (the holder ends it via SpanFromContext) — clean.
func IntoContext(t *obs.Tracer, ctx context.Context) context.Context {
	sp := t.Start("into-ctx")
	return obs.ContextWithSpan(ctx, sp)
}
