// Package detrand is a lint fixture: math/rand outside the RNG wrapper.
package detrand

import (
	"math/rand" // want detrand

	"repro/internal/tensor"
)

// Roll uses the banned package-level global-state functions.
func Roll() int {
	return rand.Intn(6) // want detrand
}

// Seeded is the sanctioned way to draw random values.
func Seeded() float64 {
	return tensor.NewRNG(1).Float64()
}
