// Package floateq is a lint fixture: exact floating-point comparison.
package floateq

// Close compares floats exactly — flagged.
func Close(a, b float64) bool {
	return a == b // want floateq
}

// NotZero compares a float32 against a constant — flagged (one operand is
// a variable).
func NotZero(a float32) bool {
	return a != 0 // want floateq
}

// Suppressed carries a justified ignore directive — not flagged.
func Suppressed(a, b float64) bool {
	//lint:ignore floateq fixture: documented intentional exact comparison
	return a == b
}

// Ints is integer equality — not flagged.
func Ints(a, b int) bool { return a == b }

const eps = 1e-9

// ConstsOnly compares two compile-time constants — exact by definition,
// not flagged.
func ConstsOnly() bool { return eps == 1e-9 }
