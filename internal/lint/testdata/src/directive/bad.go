// Package directive is a lint fixture: malformed and unknown suppression
// directives are themselves findings (checked by explicit expectations in
// the test, since the directive occupies its own comment line).
package directive

//lint:ignore floateq
func missingReason(a, b float64) bool {
	return a == b
}

//lint:ignore nosuchanalyzer the analyzer name is wrong
func unknownAnalyzer() {}
