// Package maporder is a lint fixture: map iteration determinism. Map
// range order must not reach ordered artifacts — appended slices,
// writers, encoders — unless the result is sorted afterwards.
package maporder

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// SortedKeys is the canonical collect-then-sort idiom — clean.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// UnsortedAppend accumulates values in iteration order and never sorts.
func UnsortedAppend(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v) // want maporder
	}
	return vals
}

// DirectEmit serializes pairs straight to the writer in range order.
func DirectEmit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want maporder
	}
}

// BuilderEmit streams keys into a strings.Builder in range order.
func BuilderEmit(sb *strings.Builder, m map[string]float64) {
	for k := range m {
		sb.WriteString(k) // want maporder
	}
}

type pair struct {
	k string
	v int
}

// SortSliceAfter fixes the collected order with sort.Slice — clean.
func SortSliceAfter(m map[string]int) []pair {
	var ps []pair
	for k, v := range m {
		ps = append(ps, pair{k, v})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	return ps
}

// Aggregate folds values commutatively; no order reaches the result —
// clean.
func Aggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// PerIteration builds a fresh slice every iteration: nothing accumulates
// across iterations — clean.
func PerIteration(m map[string][]int, emit func([]int)) {
	for _, vs := range m {
		row := append([]int(nil), vs...)
		emit(row)
	}
}

// NestedOuterLeak appends the outer key from inside an inner loop; the
// outer map's order still leaks.
func NestedOuterLeak(m map[string][]int) []string {
	var out []string
	for k, vs := range m {
		for range vs {
			out = append(out, k) // want maporder
		}
	}
	return out
}
