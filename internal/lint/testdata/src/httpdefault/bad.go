// Package httpdefault is a lint fixture: timeout-less HTTP clients.
package httpdefault

import (
	"net/http"
	"time"
)

// UseDefaultClient issues a request through the shared timeout-less
// client — flagged.
func UseDefaultClient() (*http.Response, error) {
	return http.DefaultClient.Get("http://coordinator/v1/curve") // want httpdefault
}

// PackageHelpers route through DefaultClient — each call flagged.
func PackageHelpers() {
	_, _ = http.Get("http://coordinator/v1/assignments")        // want httpdefault
	_, _ = http.Post("http://coordinator/v1/profiles", "", nil) // want httpdefault
	_, _ = http.PostForm("http://coordinator/v1/register", nil) // want httpdefault
	_, _ = http.Head("http://coordinator/v1/curve")             // want httpdefault
}

// NoTimeout builds a client without a Timeout — flagged.
func NoTimeout() *http.Client {
	return &http.Client{Transport: http.DefaultTransport} // want httpdefault
}

// EmptyClient is the zero client — flagged.
func EmptyClient() *http.Client {
	return &http.Client{} // want httpdefault
}

// WithTimeout sets an explicit deadline — not flagged.
func WithTimeout() *http.Client {
	return &http.Client{Timeout: 10 * time.Second}
}

// Suppressed carries a justified ignore directive — not flagged.
func Suppressed() *http.Client {
	//lint:ignore httpdefault fixture: documented intentional timeout-less client
	return &http.Client{}
}

// ServerNoTimeout builds a listener without any header-read bound — a
// slowloris peer can pin its accept slots — flagged.
func ServerNoTimeout(h http.Handler) *http.Server {
	return &http.Server{Handler: h} // want httpdefault
}

// EmptyServer is the zero server — flagged.
func EmptyServer() *http.Server {
	return &http.Server{} // want httpdefault
}

// ServerWithHeaderTimeout bounds header reads — not flagged.
func ServerWithHeaderTimeout(h http.Handler) *http.Server {
	return &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
}

// ServerWithReadTimeout bounds the whole read, headers included — not
// flagged.
func ServerWithReadTimeout(h http.Handler) *http.Server {
	return &http.Server{Handler: h, ReadTimeout: 10 * time.Second}
}

// SuppressedServer carries a justified ignore directive — not flagged.
func SuppressedServer(h http.Handler) *http.Server {
	//lint:ignore httpdefault fixture: documented intentional unbounded server
	return &http.Server{Handler: h}
}
