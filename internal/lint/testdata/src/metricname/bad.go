// Package metricname is a lint fixture: metric-name discipline.
package metricname

import (
	"fmt"

	"repro/internal/obs"
)

// Good uses dotted snake_case literals — clean.
func Good() {
	obs.NewCounter("tuner.configs_explored").Inc()
	obs.NewQHistogram("tuner.iteration_seconds").Observe(0.1)
	obs.NewHistogram("tuner.step_error", 0.001, 2, 20)
}

// Dynamic builds the name at run time — flagged.
func Dynamic(shard int) {
	obs.NewCounter(fmt.Sprintf("tuner.shard_%d.hits", shard)).Inc() // want metricname
}

// FromVariable defeats grep — flagged.
func FromVariable(name string) {
	obs.NewQHistVec(name) // want metricname
}

// BadCase is not snake_case — flagged.
func BadCase() {
	obs.NewGauge("Tuner.QueueDepth") // want metricname
}

// NoDot lacks a subsystem prefix — flagged.
func NoDot() {
	obs.NewCounterVec("requests") // want metricname
}

// RegistryMethod holds custom registries to the same rule — flagged.
func RegistryMethod(r *obs.Registry) {
	r.QHistogram("latency-seconds") // want metricname
}

// RegistryClean names a registry metric properly — clean.
func RegistryClean(r *obs.Registry) {
	r.Gauge("tuner.queue_depth").Set(1)
}

// Suppressed carries a justified ignore directive — clean.
func Suppressed(shard int) {
	//lint:ignore metricname fixture: documented per-shard debug metric
	obs.NewCounter(fmt.Sprintf("debug.shard_%d", shard)).Inc()
}
