// Package distrib is a lint fixture: context lifecycle discipline on
// the distributed request paths. Cancel functions must run on every
// path, and a function already holding a ctx must not mint a detached
// root context.
package distrib

import (
	"context"
	"errors"
	"time"
)

var errFailed = errors.New("failed")

func work(ctx context.Context) error { return ctx.Err() }

// DeferCancel is the canonical pattern — clean.
func DeferCancel(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return work(ctx)
}

// DiscardedCancel throws the cancel func away: the derived context
// leaks until its parent is cancelled.
func DiscardedCancel(ctx context.Context) error {
	tctx, _ := context.WithTimeout(ctx, time.Second) // want ctxflow
	return work(tctx)
}

// LeakOnEarlyReturn misses cancel on the failure path.
func LeakOnEarlyReturn(ctx context.Context, fail bool) error {
	cctx, cancel := context.WithCancel(ctx)
	if fail {
		return errFailed // want ctxflow
	}
	err := work(cctx)
	cancel()
	return err
}

// DetachedBackground mints a root context inside a function that
// already receives one, detaching this path from the caller's deadline.
func DetachedBackground(ctx context.Context) error {
	dctx, cancel := context.WithTimeout(context.Background(), time.Second) // want ctxflow
	defer cancel()
	return work(dctx)
}

// NilGuard is the canonical defaulting pattern — clean.
func NilGuard(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return work(ctx)
}

// NoCtxParam receives no context: minting a root is its job — clean.
func NoCtxParam() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return work(ctx)
}

// HandedOff transfers the cancel func to a registry; the new owner is
// responsible for calling it — clean here.
func HandedOff(ctx context.Context, reg func(context.CancelFunc)) {
	_, cancel := context.WithCancel(ctx)
	reg(cancel)
}
