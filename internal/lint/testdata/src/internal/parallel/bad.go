// Package parallel is a lint fixture: shared-map lock discipline.
package parallel

import "sync"

// Registry is shared state guarded by a mutex.
type Registry struct {
	mu sync.Mutex
	m  map[string]int
}

// PutLocked writes under the lock and releases it — clean.
func (r *Registry) PutLocked(k string, v int) {
	r.mu.Lock()
	r.m[k] = v
	r.mu.Unlock()
}

// PutDeferred uses the defer idiom — clean.
func (r *Registry) PutDeferred(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[k] = v
}

// PutUnlocked writes a shared map with no lock in scope — flagged.
func (r *Registry) PutUnlocked(k string, v int) {
	r.m[k] = v // want lockguard
}

// DropUnlocked deletes from a shared map with no lock — flagged.
func (r *Registry) DropUnlocked(k string) {
	delete(r.m, k) // want lockguard
}

// Forgot locks but never unlocks — flagged at the Lock.
func (r *Registry) Forgot(k string, v int) {
	r.mu.Lock() // want lockguard
	r.m[k] = v
}

// Local writes a function-local map — clean.
func Local() {
	m := map[string]int{}
	m["a"] = 1
}

// Spawn writes a shared map inside a goroutine; the enclosing scope's
// lock state does not carry across the go boundary — flagged.
func Spawn(r *Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		r.m["x"] = 1 // want lockguard
	}()
}

// Captured writes a map captured from the enclosing function without
// crossing a goroutine boundary — clean (single-goroutine confinement).
func Captured() {
	m := map[string]int{}
	f := func() {
		m["a"] = 1
	}
	f()
}
