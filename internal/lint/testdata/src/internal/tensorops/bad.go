// Package tensorops is a lint fixture: kernel input/output aliasing.
package tensorops

// Scale reads in and writes out — clean.
func Scale(out, in []float32, k float32) {
	for i := range out {
		out[i] = in[i] * k
	}
}

// InPlace writes the same parameter slice it reads — flagged.
func InPlace(buf []float32) {
	for i := range buf {
		buf[i] = buf[i] * 2 // want tensoralias
	}
}

// Accumulate compound-assigns into out (an output buffer) — clean.
func Accumulate(out, in []float32) {
	for i := range in {
		out[i] += in[i]
	}
}

// CopyAlias round-trips through tmp: both parameters are written and read
// — both flagged.
func CopyAlias(buf, tmp []float32) {
	copy(tmp, buf) // want tensoralias
	copy(buf, tmp) // want tensoralias
}

// PackPanels mirrors the GEMM engine's B-packing: reads the b matrix,
// writes the packed panel buffer — distinct parameters, clean.
func PackPanels(b, packed []float32, k, n, nr int) {
	np := n / nr
	for jp := 0; jp < np; jp++ {
		for l := 0; l < k; l++ {
			for j := 0; j < nr; j++ {
				packed[(jp*k+l)*nr+j] = b[l*n+jp*nr+j]
			}
		}
	}
}

// PackInPlace transposes a panel buffer into itself: the packed write
// aliases the unpacked read and clobbers elements it has yet to read —
// flagged.
func PackInPlace(panel []float32, k, nr int) {
	for l := 0; l < k; l++ {
		for j := 0; j < nr; j++ {
			panel[l*nr+j] = panel[j*k+l] // want tensoralias
		}
	}
}

// MicroTile accumulates an A-row × packed-panel product into the C rows:
// compound assignment into the output, plain reads of the inputs — clean.
func MicroTile(arow, panel, crow []float32, nr int) {
	for l, av := range arow {
		for j := 0; j < nr; j++ {
			crow[j] += av * panel[l*nr+j]
		}
	}
}
