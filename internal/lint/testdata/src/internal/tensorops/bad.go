// Package tensorops is a lint fixture: kernel input/output aliasing.
package tensorops

// Scale reads in and writes out — clean.
func Scale(out, in []float32, k float32) {
	for i := range out {
		out[i] = in[i] * k
	}
}

// InPlace writes the same parameter slice it reads — flagged.
func InPlace(buf []float32) {
	for i := range buf {
		buf[i] = buf[i] * 2 // want tensoralias
	}
}

// Accumulate compound-assigns into out (an output buffer) — clean.
func Accumulate(out, in []float32) {
	for i := range in {
		out[i] += in[i]
	}
}

// CopyAlias round-trips through tmp: both parameters are written and read
// — both flagged.
func CopyAlias(buf, tmp []float32) {
	copy(tmp, buf) // want tensoralias
	copy(buf, tmp) // want tensoralias
}
