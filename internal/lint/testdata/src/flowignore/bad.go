// Package flowignore is a lint fixture: //lint:ignore interaction with
// the flow-sensitive analyzers. A reasoned directive on the ACQUIRE line
// suppresses the path-dependent diagnostic even though it is reported at
// the leak site, lines away; a reason-less directive suppresses nothing
// and is itself a finding. Expectations live in TestFlowIgnoreInteraction
// (directive lines cannot carry // want markers — the marker text would
// parse as the directive's reason).
package flowignore

import "repro/internal/tensor"

func use(buf []float32) {}

// SuppressedAtAcquire: leak on the early return, suppressed from the
// acquire site.
func SuppressedAtAcquire(n int) bool {
	//lint:ignore poolaudit arena is torn down wholesale after the batch
	buf := tensor.Scratch(n)
	if n > 64 {
		return false
	}
	use(buf)
	tensor.Release(buf)
	return true
}

// MalformedAtAcquire: the directive has no reason, so the leak below is
// still reported and the directive itself becomes a lintdirective
// finding.
func MalformedAtAcquire(n int) bool {
	//lint:ignore poolaudit
	buf := tensor.Scratch(n)
	if n > 64 {
		return false
	}
	use(buf)
	tensor.Release(buf)
	return true
}
