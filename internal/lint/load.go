package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analysis unit: a directory's files (in-package _test.go
// files included) parsed and type-checked together. External test packages
// (package foo_test) form their own unit.
type Package struct {
	Path      string // import path ("repro/internal/tensor"); "_test" suffix for external test units
	Dir       string
	Name      string // package name from the source
	Fset      *token.FileSet
	Files     []*ast.File
	Filenames []string // parallel to Files
	Types     *types.Package
	Info      *types.Info
	// TypeErrors are soft type-checking errors. The engine analyzes what
	// it can regardless, but cmd/approxlint surfaces them: analyzers
	// cannot be trusted on packages that do not compile.
	TypeErrors []error
}

// Loader parses and type-checks module packages on demand. It doubles as
// the types.Importer for module-internal import paths; stdlib imports are
// delegated to the go/importer source importer (so the engine works with
// nothing but GOROOT sources — no export data, no network, no x/tools).
type Loader struct {
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod
	Fset   *token.FileSet

	std     types.Importer
	pure    map[string]*types.Package // import cache: packages without test files
	loading map[string]bool           // cycle detection
}

// NewLoader locates go.mod at or above dir and prepares a loader.
func NewLoader(dir string) (*Loader, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		Module:  mod,
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pure:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}, nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// dirFor maps an import path inside the module to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.Module {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
}

// pathFor maps a module directory to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.Module, nil
	}
	return l.Module + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer: module paths load (and cache) from
// source without test files; everything else goes to the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path != l.Module && !strings.HasPrefix(path, l.Module+"/") {
		return l.std.Import(path)
	}
	if pkg, ok := l.pure[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, _, err := l.parseDir(l.dirFor(path), false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", path)
	}
	conf := types.Config{Importer: l, IgnoreFuncBodies: true, Error: func(error) {}}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if pkg == nil {
		return nil, err
	}
	l.pure[path] = pkg
	return pkg, nil
}

// parseDir parses the buildable Go files of one directory, optionally
// including _test.go files, split later by package name. testdata and
// hidden directories never reach here (the walker skips them).
func (l *Loader) parseDir(dir string, withTests bool) (files []*ast.File, names []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !withTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect build constraints (//go:build lines and _GOOS/_GOARCH
		// filename suffixes) the way the compiler does, so a package with
		// per-arch implementations type-checks as one coherent unit
		// instead of tripping over "redeclared" symbols.
		if ok, merr := build.Default.MatchFile(dir, name); merr != nil || !ok {
			continue
		}
		full := filepath.Join(dir, name)
		f, perr := parser.ParseFile(l.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, perr
		}
		files = append(files, f)
		names = append(names, full)
	}
	return files, names, nil
}

// LoadDir builds the analysis units of one directory: the primary package
// (with its in-package test files) and, when present, the external _test
// package.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	files, names, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}

	// Split by package name: primary unit vs external test unit.
	var primary, external []int
	primaryName, externalName := "", ""
	for i, f := range files {
		n := f.Name.Name
		if strings.HasSuffix(n, "_test") {
			external = append(external, i)
			externalName = n
		} else {
			primary = append(primary, i)
			primaryName = n
		}
	}

	var out []*Package
	if len(primary) > 0 {
		pkg := l.check(path, primaryName, dir, pick(files, primary), pick(names, primary))
		out = append(out, pkg)
	}
	if len(external) > 0 {
		pkg := l.check(path+"_test", externalName, dir, pick(files, external), pick(names, external))
		out = append(out, pkg)
	}
	return out, nil
}

func pick[T any](s []T, idx []int) []T {
	out := make([]T, 0, len(idx))
	for _, i := range idx {
		out = append(out, s[i])
	}
	return out
}

// check type-checks one analysis unit, collecting soft errors.
func (l *Loader) check(path, name, dir string, files []*ast.File, filenames []string) *Package {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg := &Package{
		Path: path, Dir: dir, Name: name, Fset: l.Fset,
		Files: files, Filenames: filenames, Info: info,
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg
}

// LoadAll walks the module tree and returns every analysis unit, in
// deterministic (path-sorted) order. Directories named testdata, vendor,
// hidden directories and directories without Go files are skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		pkgs, err := l.LoadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
		out = append(out, pkgs...)
	}
	return out, nil
}

// Load is the convenience entry point used by cmd/approxlint: it resolves
// the patterns (the "./..." form loads the whole module; a directory path
// loads that directory) against the module containing dir.
func Load(dir string, patterns []string) ([]*Package, error) {
	l, err := NewLoader(dir)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var out []*Package
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "all" || pat == l.Module+"/...":
			pkgs, err := l.LoadAll()
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				if !seen[p.Path] {
					seen[p.Path] = true
					out = append(out, p)
				}
			}
		default:
			d := pat
			if !filepath.IsAbs(d) {
				d = filepath.Join(dir, pat)
			}
			if fi, err := os.Stat(d); err != nil || !fi.IsDir() {
				return nil, fmt.Errorf("lint: pattern %q is not a directory (only ./... and directory paths are supported)", pat)
			}
			pkgs, err := l.LoadDir(d)
			if err != nil {
				return nil, err
			}
			for _, p := range pkgs {
				if !seen[p.Path] {
					seen[p.Path] = true
					out = append(out, p)
				}
			}
		}
	}
	return out, nil
}
