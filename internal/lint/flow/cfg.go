// Package flow provides the intraprocedural control-flow and dataflow
// machinery behind the flow-sensitive analyzers in internal/lint:
// basic-block construction over Go function bodies and a generic forward
// worklist solver over a caller-supplied join-semilattice.
//
// The package is deliberately stdlib-only (go/ast + go/token), matching
// the rest of the lint engine: no golang.org/x/tools/go/cfg or ssa.
// Construction understands if/for/range/switch/type-switch/select, break/
// continue (labeled and not), goto, fallthrough and return; panic calls
// and the obvious never-returns (os.Exit, log.Fatal*, runtime.Goexit)
// terminate a path. Defer statements stay in their block as ordinary
// nodes (analyses decide what a deferred call means) and are additionally
// collected on the Graph for defer-aware checks.
package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: a maximal sequence of nodes with a single
// entry and straight-line execution, plus its successor edges.
type Block struct {
	Index int    // position in Graph.Blocks; creation (≈ source) order
	Kind  string // construction site label for debugging ("if.then", ...)
	// Nodes holds the block's statements and controlling expressions in
	// execution order. Control statements never appear whole: an if
	// contributes its Init and Cond, a for its Init/Cond/Post, a switch
	// its Init/Tag and per-clause case expressions. The one exception is
	// *ast.RangeStmt, which appears itself as the loop-head node (its
	// Body lives in successor blocks); use Inspect to visit block nodes
	// without descending into a range body twice.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block // synthetic: every return/panic/fallthrough-off-the-end leads here
	Blocks []*Block
	Defers []*ast.DeferStmt // all defer statements, in source order
}

// New builds the CFG of a function body. Nested function literals are
// not descended into — each literal is its own analysis unit with its
// own graph.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*Block{}}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.cur = g.Entry
	b.stmtList(body.List)
	b.jump(g.Exit)
	return g
}

// String renders the graph structure for tests and debugging:
// "0:entry->[2] 1:exit ...".
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "%d:%s(%d)->[", blk.Index, blk.Kind, len(blk.Nodes))
		for i, s := range blk.Succs {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%d", s.Index)
		}
		sb.WriteString("] ")
	}
	return strings.TrimSpace(sb.String())
}

// Reachable reports whether the block can be reached from the entry
// (blocks after a return, or an unused label, cannot).
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// Inspect visits a block node the way flow analyses should see it:
// exactly like ast.Inspect, except that a *ast.RangeStmt node (a loop
// head) contributes only its Key, Value and X — the body belongs to
// successor blocks — and function literals are opaque (each literal is
// a separate analysis unit).
func Inspect(n ast.Node, fn func(ast.Node) bool) {
	if r, ok := n.(*ast.RangeStmt); ok {
		if !fn(r) {
			return
		}
		for _, sub := range []ast.Node{r.Key, r.Value, r.X} {
			if sub != nil && !isNilExpr(sub) {
				Inspect(sub, fn)
			}
		}
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

func isNilExpr(n ast.Node) bool {
	e, ok := n.(ast.Expr)
	return ok && e == nil
}

// target is one enclosing breakable/continuable construct.
type target struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

type builder struct {
	g      *Graph
	cur    *Block
	stack  []target
	labels map[string]*Block // label name -> block the label starts
	fall   *Block            // fallthrough target inside a switch clause
	// pendingLabel carries the label of a LabeledStmt down to the
	// loop/switch it names, so labeled break/continue resolve.
	pendingLabel string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) link(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump links the current block to `to` and starts a fresh (initially
// unreachable) block, used after terminators.
func (b *builder) jump(to *Block) {
	b.link(b.cur, to)
	b.cur = b.newBlock("unreachable")
}

// goTo links the current block to `to` and continues building in it.
func (b *builder) goTo(to *Block) {
	b.link(b.cur, to)
	b.cur = to
}

func (b *builder) add(n ast.Node) {
	if n != nil && !isNilExpr(n) {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb, ok := b.labels[s.Label.Name]
		if !ok {
			lb = b.newBlock("label." + s.Label.Name)
			b.labels[s.Label.Name] = lb
		}
		b.goTo(lb)
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		b.link(b.cur, then)
		var els *Block
		if s.Else != nil {
			els = b.newBlock("if.else")
			b.link(b.cur, els)
		} else {
			b.link(b.cur, done)
		}
		b.cur = then
		b.stmtList(s.Body.List)
		b.link(b.cur, done)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			b.link(b.cur, done)
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			cont = post
		}
		b.goTo(head)
		b.add(s.Cond)
		b.link(head, body)
		if s.Cond != nil {
			b.link(head, done)
		}
		b.stack = append(b.stack, target{label: label, brk: done, cont: cont})
		b.cur = body
		b.stmtList(s.Body.List)
		b.stack = b.stack[:len(b.stack)-1]
		b.link(b.cur, cont)
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.link(b.cur, head)
		}
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		b.goTo(head)
		b.add(s) // the RangeStmt itself is the head node; see Inspect
		b.link(head, body)
		b.link(head, done)
		b.stack = append(b.stack, target{label: label, brk: done, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.stack = b.stack[:len(b.stack)-1]
		b.link(b.cur, head)
		b.cur = done

	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		dispatch := b.cur
		done := b.newBlock("select.done")
		b.stack = append(b.stack, target{label: label, brk: done})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock("select.case")
			b.link(dispatch, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.link(b.cur, done)
		}
		b.stack = b.stack[:len(b.stack)-1]
		if len(s.Body.List) == 0 {
			b.link(dispatch, done)
		}
		b.cur = done

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s.Label, false); t != nil {
				b.jump(t.brk)
			}
		case token.CONTINUE:
			if t := b.findTarget(s.Label, true); t != nil {
				b.jump(t.cont)
			}
		case token.GOTO:
			lb, ok := b.labels[s.Label.Name]
			if !ok {
				lb = b.newBlock("label." + s.Label.Name)
				b.labels[s.Label.Name] = lb
			}
			b.jump(lb)
		case token.FALLTHROUGH:
			if b.fall != nil {
				b.jump(b.fall)
			}
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if callNeverReturns(s.X) {
			b.jump(b.g.Exit)
		}

	default:
		// AssignStmt, GoStmt, IncDecStmt, SendStmt, DeclStmt, EmptyStmt...
		b.add(s)
	}
}

// switchLike builds expression and type switches: a dispatch block
// evaluates Init/Tag, each clause gets its own block, fallthrough chains
// to the next clause, and a missing default adds a dispatch→done edge.
func (b *builder) switchLike(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.stmt(init)
	}
	b.add(tag)
	b.add(assign)
	dispatch := b.cur
	done := b.newBlock("switch.done")

	clauses := body.List
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock("switch.case")
		b.link(dispatch, blocks[i])
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.link(dispatch, done)
	}

	b.stack = append(b.stack, target{label: label, brk: done})
	savedFall := b.fall
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(blocks) {
			b.fall = blocks[i+1]
		} else {
			b.fall = nil
		}
		b.stmtList(cc.Body)
		b.link(b.cur, done)
	}
	b.fall = savedFall
	b.stack = b.stack[:len(b.stack)-1]
	b.cur = done
}

// findTarget resolves a break/continue to its enclosing construct.
func (b *builder) findTarget(label *ast.Ident, needCont bool) *target {
	for i := len(b.stack) - 1; i >= 0; i-- {
		t := &b.stack[i]
		if needCont && t.cont == nil {
			continue
		}
		if label == nil || t.label == label.Name {
			return t
		}
	}
	return nil
}

// callNeverReturns recognizes expression statements that terminate the
// path: panic(...), os.Exit, log.Fatal*, runtime.Goexit. This is a
// syntactic check (no type info reaches the builder); shadowed names are
// a documented unsoundness.
func callNeverReturns(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		}
	}
	return false
}
