package flow

import "go/ast"

// Forward is a forward dataflow problem over a Graph. The fact type F is
// caller-defined; the four functions describe the join-semilattice and
// the transfer function. Join must be monotone and the lattice of finite
// height, or the solver will not terminate.
type Forward[F any] struct {
	// Entry is the boundary fact at function entry.
	Entry F
	// Clone returns an independent copy of a fact (facts may be mutable
	// maps; the solver never aliases a fact it hands to Transfer).
	Clone func(F) F
	// Join merges src into dst, returning the merged fact and whether it
	// changed relative to dst. dst may be mutated and returned.
	Join func(dst, src F) (F, bool)
	// Transfer applies one block node to the fact. It may mutate and
	// return its argument.
	Transfer func(F, ast.Node) F
}

// Solve runs the worklist iteration to a fixpoint and returns the fact
// at the entry of every reachable block. Unreachable blocks have no
// entry in the map. Iteration order is deterministic (block index
// order), so analyses built on top produce identical diagnostics run
// over run.
func (a Forward[F]) Solve(g *Graph) map[*Block]F {
	in := make(map[*Block]F, len(g.Blocks))
	in[g.Entry] = a.Clone(a.Entry)
	for changed := true; changed; {
		changed = false
		for _, blk := range g.Blocks {
			f, ok := in[blk]
			if !ok {
				continue
			}
			out := a.FlowThrough(blk, f)
			for _, s := range blk.Succs {
				cur, ok := in[s]
				if !ok {
					in[s] = a.Clone(out)
					changed = true
					continue
				}
				merged, ch := a.Join(cur, a.Clone(out))
				in[s] = merged
				if ch {
					changed = true
				}
			}
		}
	}
	return in
}

// FlowThrough applies the block's nodes to a copy of the entry fact and
// returns the block's exit fact — used by Solve and by reporting passes
// that re-walk blocks with the solved entry facts.
func (a Forward[F]) FlowThrough(blk *Block, entry F) F {
	out := a.Clone(entry)
	for _, n := range blk.Nodes {
		out = a.Transfer(out, n)
	}
	return out
}
