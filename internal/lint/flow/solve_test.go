package flow

import (
	"go/ast"
	"sort"
	"strings"
	"testing"
)

// callSet is the test lattice: the set of function names called. With a
// union join it computes may-reach; with intersection, must-reach.
type callSet map[string]bool

func cloneSet(f callSet) callSet {
	out := make(callSet, len(f))
	for k := range f {
		out[k] = true
	}
	return out
}

func unionJoin(dst, src callSet) (callSet, bool) {
	changed := false
	for k := range src {
		if !dst[k] {
			dst[k] = true
			changed = true
		}
	}
	return dst, changed
}

func intersectJoin(dst, src callSet) (callSet, bool) {
	changed := false
	for k := range dst {
		if !src[k] {
			delete(dst, k)
			changed = true
		}
	}
	return dst, changed
}

func callTransfer(f callSet, n ast.Node) callSet {
	Inspect(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok {
				f[id.Name] = true
			}
		}
		return true
	})
	return f
}

func names(f callSet) string {
	var out []string
	for k := range f {
		out = append(out, k)
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}

func solveCalls(t *testing.T, src string, join func(dst, src callSet) (callSet, bool)) (callSet, *Graph) {
	t.Helper()
	g := New(parseBody(t, src))
	a := Forward[callSet]{
		Entry:    callSet{},
		Clone:    cloneSet,
		Join:     join,
		Transfer: callTransfer,
	}
	in := a.Solve(g)
	exit, ok := in[g.Exit]
	if !ok {
		t.Fatal("exit has no fact; graph disconnected?")
	}
	return exit, g
}

func TestSolveDiamondMay(t *testing.T) {
	exit, _ := solveCalls(t, `
		if cond() {
			a()
		} else {
			b()
		}
		c()
	`, unionJoin)
	if got := names(exit); got != "a,b,c,cond" {
		t.Errorf("may-reach at exit = %q, want a,b,c,cond", got)
	}
}

func TestSolveDiamondMust(t *testing.T) {
	// Must-analysis: only calls on every path survive the join. The
	// solver can't seed unreached blocks with "everything", so emulate
	// must via the complement check: a() and b() must NOT both be
	// must-reaching. With intersection join starting from empty entry,
	// branch-only calls drop out at the join.
	exit, _ := solveCalls(t, `
		cond()
		if x {
			a()
		} else {
			b()
		}
		c()
	`, intersectJoin)
	// Intersection join over {cond,a} and {cond,b} leaves {cond}; c()
	// runs after the join.
	if got := names(exit); got != "c,cond" {
		t.Errorf("must-reach at exit = %q, want c,cond", got)
	}
}

func TestSolveLoopFixpoint(t *testing.T) {
	exit, g := solveCalls(t, `
		for i := 0; i < 10; i++ {
			work(i)
		}
		done()
	`, unionJoin)
	if got := names(exit); got != "done,work" {
		t.Errorf("may-reach at exit = %q, want done,work", got)
	}
	// The back edge must also propagate work() into the loop head.
	a := Forward[callSet]{Entry: callSet{}, Clone: cloneSet, Join: unionJoin, Transfer: callTransfer}
	in := a.Solve(g)
	for _, b := range g.Blocks {
		if b.Kind == "for.head" {
			if f, ok := in[b]; !ok || !f["work"] {
				t.Errorf("loop head fact %v lacks work() from the back edge", f)
			}
		}
	}
}

func TestSolveEarlyReturn(t *testing.T) {
	// The early return path must reach the exit fact even though the
	// rest of the function continues past it.
	exit, _ := solveCalls(t, `
		if bad() {
			early()
			return
		}
		late()
	`, unionJoin)
	for _, want := range []string{"early", "late", "bad"} {
		if !exit[want] {
			t.Errorf("exit fact %v missing %s", names(exit), want)
		}
	}
	// Under must-semantics neither branch call survives.
	mexit, _ := solveCalls(t, `
		if bad() {
			early()
			return
		}
		late()
	`, intersectJoin)
	if mexit["early"] || mexit["late"] {
		t.Errorf("must-reach at exit wrongly includes a branch-only call: %v", names(mexit))
	}
}

// deferFact counts how many times a DeferStmt node can execute on some
// path (saturating at 2) — the lattice behind the defer-in-loop check.
type deferFact int

func TestSolveDeferInLoop(t *testing.T) {
	run := func(src string) deferFact {
		g := New(parseBody(t, src))
		a := Forward[deferFact]{
			Entry: 0,
			Clone: func(f deferFact) deferFact { return f },
			Join: func(dst, src deferFact) (deferFact, bool) {
				if src > dst {
					return src, true
				}
				return dst, false
			},
			Transfer: func(f deferFact, n ast.Node) deferFact {
				if _, ok := n.(*ast.DeferStmt); ok && f < 2 {
					f++
				}
				return f
			},
		}
		in := a.Solve(g)
		return in[g.Exit]
	}
	if got := run(`
		defer cleanup()
		work()
	`); got != 1 {
		t.Errorf("straight-line defer count = %d, want 1", got)
	}
	if got := run(`
		for i := 0; i < 3; i++ {
			defer cleanup(i)
		}
	`); got != 2 {
		t.Errorf("defer-in-loop count should saturate at 2 via the back edge, got %d", got)
	}
}

// TestSolveDeterminism pins byte-identical facts across repeated runs.
func TestSolveDeterminism(t *testing.T) {
	src := `
		for k := range m {
			if k > 0 {
				a()
			} else {
				b()
			}
		}
		c()
	`
	f1, _ := solveCalls(t, src, unionJoin)
	f2, _ := solveCalls(t, src, unionJoin)
	if names(f1) != names(f2) {
		t.Errorf("nondeterministic solve: %q vs %q", names(f1), names(f2))
	}
}
