package flow

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses `src` as the body of a single function and returns it.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, file)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// succSet renders reachable edges as "kind->kind" pairs for assertions
// that do not depend on block indices.
func succSet(g *Graph) map[string]bool {
	reach := g.Reachable()
	out := map[string]bool{}
	for _, b := range g.Blocks {
		if !reach[b] {
			continue
		}
		for _, s := range b.Succs {
			out[b.Kind+"->"+s.Kind] = true
		}
	}
	return out
}

func wantEdges(t *testing.T, g *Graph, edges ...string) {
	t.Helper()
	got := succSet(g)
	for _, e := range edges {
		if !got[e] {
			t.Errorf("missing edge %s\ngraph: %s", e, g)
		}
	}
}

func TestDiamond(t *testing.T) {
	g := New(parseBody(t, `
		x := 1
		if x > 0 {
			x = 2
		} else {
			x = 3
		}
		_ = x
	`))
	wantEdges(t, g,
		"entry->if.then", "entry->if.else",
		"if.then->if.done", "if.else->if.done", "if.done->exit")
	// Both branches reachable, single join.
	if len(g.Entry.Succs) != 2 {
		t.Errorf("entry should have 2 successors, got %d: %s", len(g.Entry.Succs), g)
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := New(parseBody(t, `
		if cond() {
			work()
		}
		done()
	`))
	wantEdges(t, g, "entry->if.then", "entry->if.done", "if.then->if.done", "if.done->exit")
}

func TestEarlyReturn(t *testing.T) {
	g := New(parseBody(t, `
		if bad() {
			return
		}
		work()
	`))
	wantEdges(t, g, "entry->if.then", "if.then->exit", "if.done->exit")
	// The statement after the return-only branch is still reachable via
	// the fallthrough edge.
	reach := g.Reachable()
	if !reach[g.Exit] {
		t.Fatal("exit unreachable")
	}
	// Exit has (at least) two predecessors: the early return and the end
	// of the function.
	if len(g.Exit.Preds) < 2 {
		t.Errorf("exit should have >=2 preds, got %d: %s", len(g.Exit.Preds), g)
	}
}

func TestForLoop(t *testing.T) {
	g := New(parseBody(t, `
		for i := 0; i < 10; i++ {
			work(i)
		}
		done()
	`))
	wantEdges(t, g,
		"entry->for.head", "for.head->for.body", "for.head->for.done",
		"for.body->for.post", "for.post->for.head", "for.done->exit")
}

func TestForBreakContinue(t *testing.T) {
	g := New(parseBody(t, `
		for i := 0; i < 10; i++ {
			if skip(i) {
				continue
			}
			if stop(i) {
				break
			}
			work(i)
		}
	`))
	wantEdges(t, g,
		"if.then->for.post", // continue
		"if.then->for.done", // break
	)
}

func TestLabeledBreak(t *testing.T) {
	g := New(parseBody(t, `
	outer:
		for {
			for {
				if done() {
					break outer
				}
			}
		}
		after()
	`))
	// break outer jumps past both loops into the outer loop's done block.
	got := succSet(g)
	found := false
	for e := range got {
		if strings.HasPrefix(e, "if.then->for.done") {
			found = true
		}
	}
	if !found {
		t.Errorf("labeled break does not reach outer for.done: %s", g)
	}
}

func TestRangeLoop(t *testing.T) {
	g := New(parseBody(t, `
		for k, v := range m {
			use(k, v)
		}
		done()
	`))
	wantEdges(t, g,
		"entry->range.head", "range.head->range.body",
		"range.head->range.done", "range.body->range.head", "range.done->exit")
	// The RangeStmt itself must be the head node.
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "range.head" {
			head = b
		}
	}
	if head == nil || len(head.Nodes) != 1 {
		t.Fatalf("range head should hold exactly the RangeStmt: %s", g)
	}
	if _, ok := head.Nodes[0].(*ast.RangeStmt); !ok {
		t.Fatalf("range head node is %T, want *ast.RangeStmt", head.Nodes[0])
	}
	// Inspect must not descend into the body (use(k,v) belongs to the
	// body block, not the head node).
	calls := 0
	Inspect(head.Nodes[0], func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			calls++
		}
		return true
	})
	if calls != 0 {
		t.Errorf("Inspect descended into range body: %d calls seen", calls)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := New(parseBody(t, `
		switch x {
		case 1:
			a()
			fallthrough
		case 2:
			b()
		default:
			c()
		}
		done()
	`))
	wantEdges(t, g, "entry->switch.case", "switch.case->switch.case", "switch.case->switch.done", "switch.done->exit")
	// With a default clause there is no dispatch->done edge.
	for _, e := range []string{"entry->switch.done"} {
		if succSet(g)[e] {
			t.Errorf("unexpected edge %s (switch has a default): %s", e, g)
		}
	}
}

func TestSwitchNoDefault(t *testing.T) {
	g := New(parseBody(t, `
		switch x {
		case 1:
			a()
		}
		done()
	`))
	wantEdges(t, g, "entry->switch.done")
}

func TestSelect(t *testing.T) {
	g := New(parseBody(t, `
		select {
		case <-ch:
			a()
		case v := <-ch2:
			use(v)
		}
	`))
	wantEdges(t, g, "entry->select.case", "select.case->select.done", "select.done->exit")
}

func TestGoto(t *testing.T) {
	g := New(parseBody(t, `
		i := 0
	loop:
		i++
		if i < 10 {
			goto loop
		}
	`))
	wantEdges(t, g, "if.then->label.loop", "entry->label.loop")
}

func TestPanicTerminates(t *testing.T) {
	g := New(parseBody(t, `
		if bad() {
			panic("boom")
		}
		work()
	`))
	// The panic path goes straight to exit; work() is only on the clean path.
	wantEdges(t, g, "if.then->exit", "if.done->exit")
}

func TestDeferInLoopCollected(t *testing.T) {
	g := New(parseBody(t, `
		for i := 0; i < 3; i++ {
			defer cleanup(i)
		}
		defer final()
	`))
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
	// The in-loop defer must sit inside the loop body block so a
	// dataflow pass sees it once per iteration via the back edge.
	var bodyHasDefer bool
	for _, b := range g.Blocks {
		if b.Kind == "for.body" {
			for _, n := range b.Nodes {
				if _, ok := n.(*ast.DeferStmt); ok {
					bodyHasDefer = true
				}
			}
		}
	}
	if !bodyHasDefer {
		t.Errorf("in-loop defer not in for.body: %s", g)
	}
}

func TestUnreachableAfterReturn(t *testing.T) {
	g := New(parseBody(t, `
		return
		work()
	`))
	reach := g.Reachable()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "work" && reach[b] {
						t.Errorf("work() after return should be unreachable: %s", g)
					}
				}
			}
		}
	}
}

// TestDeterministicConstruction pins that building the same body twice
// yields the identical structure (the parallel runner depends on it).
func TestDeterministicConstruction(t *testing.T) {
	src := `
		for k := range m {
			if k > 2 {
				break
			}
			switch k {
			case 1:
				a()
			default:
				b()
			}
		}
	`
	g1 := New(parseBody(t, src))
	g2 := New(parseBody(t, src))
	if g1.String() != g2.String() {
		t.Errorf("nondeterministic construction:\n%s\n%s", g1, g2)
	}
}

// Example-style sanity: every block's Succs/Preds are mutually
// consistent.
func TestEdgeConsistency(t *testing.T) {
	g := New(parseBody(t, `
		for i := range xs {
			if i == 0 {
				continue
			}
			work(i)
		}
	`))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				t.Errorf("edge %d->%d missing from preds", b.Index, s.Index)
			}
		}
	}
	_ = fmt.Sprint(g)
}
