package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// metricname: metric-inventory discipline. Every obs metric is addressed
// by its registry name — the Prometheus exposition, the expvar JSON, the
// telemetry summary table and the dashboards scraping them all key on it.
// A name built at run time (fmt.Sprintf, a variable) cannot be found by
// grep, explodes series cardinality, and silently shadows or misses the
// # TYPE metadata the exposition derives from the registry. Names must be
// dotted snake_case string literals ("subsystem.metric_name"); unbounded
// dimensions belong in a Vec label, not the name. The obs package itself
// (which implements the registry and constructs arbitrary names in its
// tests) and _test.go files are exempt.

// MetricName flags obs metric constructors whose name argument is not a
// dotted snake_case string literal.
type MetricName struct{}

func (MetricName) Name() string { return "metricname" }
func (MetricName) Doc() string {
	return "obs metric names must be dotted snake_case string literals (no Sprintf/variables)"
}

// metricObsPkgSuffix scopes the exemption to the registry implementation.
const metricObsPkgSuffix = "internal/obs"

// metricNameRe is the canonical shape: at least one dot, snake_case parts.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)

// metricCtors are the obs package-level constructors whose first argument
// is the registry name.
var metricCtors = map[string]bool{
	"NewCounter": true, "NewGauge": true, "NewHistogram": true,
	"NewCounterVec": true, "NewGaugeVec": true,
	"NewQHistogram": true, "NewQHistVec": true,
}

// metricRegistryMethods are the *obs.Registry methods under the same rule.
var metricRegistryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true,
	"QHistogram": true, "QHistVec": true,
}

func (MetricName) Run(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path, metricObsPkgSuffix) ||
		strings.HasSuffix(pass.Pkg.Path, metricObsPkgSuffix+"_test") {
		return
	}
	obsPath := moduleOf(pass.Pkg.Path) + "/" + metricObsPkgSuffix
	for i, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Filenames[i], "_test.go") {
			continue
		}
		var obsNames []string // local names the file binds the obs package to
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != obsPath {
				continue
			}
			name := "obs"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			obsNames = append(obsNames, name)
		}
		if len(obsNames) == 0 {
			continue
		}
		isObsPkg := func(id *ast.Ident) bool {
			for _, on := range obsNames {
				if id.Name == on && isPackageRef(pass, id) {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fname := sel.Sel.Name
			switch {
			case metricCtors[fname]:
				id, ok := sel.X.(*ast.Ident)
				if !ok || !isObsPkg(id) {
					return true
				}
			case metricRegistryMethods[fname]:
				if !isObsRegistry(pass, sel.X, obsPath) {
					return true
				}
			default:
				return true
			}
			checkMetricName(pass, fname, call.Args[0])
			return true
		})
	}
}

// isObsRegistry reports whether x is (a pointer to) obs.Registry.
func isObsRegistry(pass *Pass, x ast.Expr, obsPath string) bool {
	t := pass.TypeOf(x)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == obsPath && obj.Name() == "Registry"
}

// checkMetricName validates one constructor's name argument.
func checkMetricName(pass *Pass, fname string, arg ast.Expr) {
	lit, ok := arg.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		pass.Reportf(arg.Pos(),
			"%s name must be a string literal so the metric inventory stays greppable; put dynamic dimensions in a Vec label", fname)
		return
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	if !metricNameRe.MatchString(name) {
		pass.Reportf(arg.Pos(),
			"metric name %q is not dotted snake_case (want \"subsystem.metric_name\", e.g. %q)", name, "runtime.drift_alarms")
	}
}
