// Package lint is a stdlib-only static-analysis engine (go/ast, go/parser,
// go/types, go/token — deliberately no golang.org/x/tools dependency) with a
// small pluggable Analyzer interface, position-accurate diagnostics and
// comment-directive suppression.
//
// The engine exists because ApproxTuner's correctness guarantees hinge on
// invariants the Go type system cannot see: tuning must be reproducible
// (seeded RNG only), tensor kernels must not silently mutate their inputs,
// trace spans must be closed on every path, floating-point values must not
// be compared with ==, and shared maps in the concurrent packages must be
// written under a lock. Each of those rules is one Analyzer in this
// package; cmd/approxlint runs the suite over ./... and the Makefile ci
// target gates on it.
//
// A diagnostic can be suppressed with a comment on the flagged line or on
// the line directly above it:
//
//	//lint:ignore <analyzer> <reason>
//
// where <analyzer> is the analyzer name (or "all") and <reason> is a
// mandatory free-text justification. Reason-less directives are themselves
// reported as findings, so every suppression stays documented.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Diagnostic is one finding: a position, the analyzer that produced it and
// a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one static-analysis rule. Implementations receive a fully
// parsed and type-checked package via the Pass and report findings through
// it. Analyzers must be stateless across passes (the runner reuses them
// for every package, and the parallel runner invokes Run concurrently on
// different packages).
type Analyzer interface {
	// Name is the stable identifier used in diagnostics and in
	// //lint:ignore directives (lowercase, no spaces).
	Name() string
	// Doc is a one-line description of the rule.
	Doc() string
	// Run analyzes one package.
	Run(pass *Pass)
}

// ModuleAnalyzer is an Analyzer that needs the whole module at once —
// e.g. lockorder, whose deadlock cycles span functions in different
// packages. The runner calls RunModule exactly once per run, after the
// per-package phase, with one Pass per package in deterministic
// (load-order) sequence; Run is still invoked per package and is
// typically a no-op.
type ModuleAnalyzer interface {
	Analyzer
	RunModule(passes []*Pass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package

	analyzer string
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the static type of an expression (nil when the
// type-checker could not resolve it).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Pkg.Info == nil {
		return nil
	}
	if o := p.Pkg.Info.Defs[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Uses[id]
}

// IgnoredAt reports whether a well-formed //lint:ignore directive
// covering this pass's analyzer sits on pos's line or the line directly
// above. Flow-sensitive analyzers use it to honor a suppression placed
// on the acquisition site (the Scratch/WithCancel line) even though the
// diagnostic itself is reported at the leak point, which may be many
// lines away on another path.
func (p *Pass) IgnoredAt(pos token.Pos) bool {
	f := p.FileOf(pos)
	if f == nil {
		return false
	}
	line := p.Fset.Position(pos).Line
	for _, d := range parseDirectives(p.Fset, f) {
		if d.reason == "" || !d.covers(p.analyzer) {
			continue
		}
		if d.pos.Line == line || d.pos.Line == line-1 {
			return true
		}
	}
	return false
}

// FileOf returns the *ast.File containing pos (nil if none).
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// Filename returns the on-disk name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}

// Runner executes a set of analyzers over loaded packages and applies
// suppression directives.
type Runner struct {
	Analyzers []Analyzer
}

// NewRunner returns a runner with the full project analyzer suite.
func NewRunner() *Runner {
	return &Runner{Analyzers: AllAnalyzers()}
}

// Run analyzes every package serially and returns the surviving
// (unsuppressed) diagnostics sorted by file position. Equivalent to
// RunParallel(pkgs, 1); the output is byte-identical regardless of
// worker count.
func (r *Runner) Run(pkgs []*Package) []Diagnostic {
	return r.RunParallel(pkgs, 1)
}

// RunParallel is Run with the per-package analyzer phase fanned out over
// `workers` goroutines (workers <= 0 means GOMAXPROCS). Each package
// collects into its own slice and results are merged in package order;
// module-wide analyzers then run once, serially; the final sort is total
// (position, analyzer, message), so diagnostics are byte-identical
// across serial and parallel runs.
func (r *Runner) RunParallel(pkgs []*Package, workers int) []Diagnostic {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) && len(pkgs) > 0 {
		workers = len(pkgs)
	}

	perPkg := make([][]Diagnostic, len(pkgs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pkgs) {
					return
				}
				pkg := pkgs[i]
				for _, a := range r.Analyzers {
					pass := &Pass{Fset: pkg.Fset, Pkg: pkg, analyzer: a.Name(), diags: &perPkg[i]}
					a.Run(pass)
				}
			}
		}()
	}
	wg.Wait()

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}

	// Module-wide phase: one call per module analyzer over every package.
	for _, a := range r.Analyzers {
		ma, ok := a.(ModuleAnalyzer)
		if !ok {
			continue
		}
		passes := make([]*Pass, len(pkgs))
		for i, pkg := range pkgs {
			passes[i] = &Pass{Fset: pkg.Fset, Pkg: pkg, analyzer: a.Name(), diags: &diags}
		}
		ma.RunModule(passes)
	}

	diags = applySuppressions(pkgs, diags, r.names())
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

func (r *Runner) names() map[string]bool {
	m := make(map[string]bool, len(r.Analyzers))
	for _, a := range r.Analyzers {
		m[a.Name()] = true
	}
	return m
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers []string // or ["all"]
	reason    string
	used      bool
}

const ignorePrefix = "lint:ignore"

// parseDirectives extracts //lint:ignore directives from a file, keyed by
// the source line they suppress (their own line and the line below).
func parseDirectives(fset *token.FileSet, f *ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			fields := strings.Fields(rest)
			d := &ignoreDirective{pos: fset.Position(c.Pos())}
			if len(fields) > 0 {
				d.analyzers = strings.Split(fields[0], ",")
			}
			if len(fields) > 1 {
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

func (d *ignoreDirective) covers(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer || a == "all" {
			return true
		}
	}
	return false
}

// applySuppressions drops diagnostics covered by a directive on the same
// line or the line directly above, and adds findings for malformed or
// unused directives so suppressions cannot rot silently.
func applySuppressions(pkgs []*Package, diags []Diagnostic, known map[string]bool) []Diagnostic {
	// filename -> line -> directives on that line
	byLine := make(map[string]map[int][]*ignoreDirective)
	var all []*ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range parseDirectives(pkg.Fset, f) {
				m := byLine[d.pos.Filename]
				if m == nil {
					m = make(map[int][]*ignoreDirective)
					byLine[d.pos.Filename] = m
				}
				m[d.pos.Line] = append(m[d.pos.Line], d)
				all = append(all, d)
			}
		}
	}

	var kept []Diagnostic
	for _, diag := range diags {
		suppressed := false
		for _, line := range []int{diag.Pos.Line, diag.Pos.Line - 1} {
			for _, d := range byLine[diag.Pos.Filename][line] {
				if d.covers(diag.Analyzer) && d.reason != "" {
					d.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}

	for _, d := range all {
		switch {
		case len(d.analyzers) == 0 || d.reason == "":
			kept = append(kept, Diagnostic{Pos: d.pos, Analyzer: "lintdirective",
				Message: "malformed directive: want //lint:ignore <analyzer> <reason>"})
		case !d.used:
			for _, a := range d.analyzers {
				if a != "all" && !known[a] {
					kept = append(kept, Diagnostic{Pos: d.pos, Analyzer: "lintdirective",
						Message: fmt.Sprintf("directive names unknown analyzer %q", a)})
				}
			}
		}
	}
	return kept
}
