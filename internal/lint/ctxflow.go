package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ---------------------------------------------------------------------------
// ctxflow: context lifecycle discipline. Two rules.
//
// Rule 1 (everywhere): the CancelFunc returned by context.WithCancel /
// WithTimeout / WithDeadline must be called on every path of the
// function that created it — a missed cancel leaks the derived context's
// timer and goroutine until the parent is cancelled, which for
// long-lived coordinator contexts is effectively forever. Defer-aware
// via the shared resource engine; handing the cancel func to another
// function or storing it transfers ownership. A cancel assigned to the
// blank identifier is flagged outright.
//
// Rule 2 (internal/distrib only): a function that already receives a
// context.Context must not mint a fresh context.Background()/TODO() —
// that detaches the request path from the caller's deadline and
// cancellation, the exact livelock class the chaos suite hunts. The
// canonical nil-guard (`if ctx == nil { ctx = context.Background() }`)
// is recognized and allowed.

// CtxFlow flags uncalled context cancel functions and detached contexts
// in distrib request paths.
type CtxFlow struct{}

func (CtxFlow) Name() string { return "ctxflow" }
func (CtxFlow) Doc() string {
	return "context.CancelFunc must be called on all paths; no fresh Background()/TODO() in distrib functions that receive a ctx"
}

var ctxCancelCtors = map[string]bool{
	"WithCancel": true, "WithTimeout": true, "WithDeadline": true,
	"WithCancelCause": true, "WithTimeoutCause": true, "WithDeadlineCause": true,
}

func (c CtxFlow) Run(pass *Pass) {
	c.checkCancelFuncs(pass)
	c.checkDetachedContexts(pass)
}

// checkCancelFuncs runs the flow-sensitive release-on-all-paths engine
// with cancel-function acquire/release matchers.
func (CtxFlow) checkCancelFuncs(pass *Pass) {
	// Blank-identifier cancels first: `ctx, _ := context.WithTimeout(...)`
	// leaks unconditionally and never reaches the dataflow engine
	// (there is no variable to track).
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 2 || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isCtxCancelCtor(pass, call) {
				return true
			}
			if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
				pass.Reportf(as.Pos(), "cancel function of %s is discarded; the derived context leaks until its parent is cancelled", ctxCtorName(call))
			}
			return true
		})
	}

	spec := resourceSpec{
		noun:        "context cancel function",
		releaseVerb: "cancel()",
		argEscapes:  true, // handing the cancel func off transfers responsibility
		acquire: func(pass *Pass, as *ast.AssignStmt) *types.Var {
			if len(as.Lhs) != 2 || len(as.Rhs) != 1 {
				return nil
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isCtxCancelCtor(pass, call) {
				return nil
			}
			id, ok := as.Lhs[1].(*ast.Ident)
			if !ok || id.Name == "_" {
				return nil
			}
			v, _ := pass.ObjectOf(id).(*types.Var)
			return v
		},
		release: func(pass *Pass, call *ast.CallExpr) *types.Var {
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return nil
			}
			v, ok := pass.ObjectOf(id).(*types.Var)
			if !ok {
				return nil
			}
			return v
		},
	}
	runResourceAnalysis(pass, spec)
}

// isCtxCancelCtor matches context.WithCancel/WithTimeout/WithDeadline
// (and their Cause variants).
func isCtxCancelCtor(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !ctxCancelCtors[sel.Sel.Name] {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.ObjectOf(id).(*types.PkgName)
	return ok && pkg.Imported().Path() == "context"
}

func ctxCtorName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return "context." + sel.Sel.Name
	}
	return "context constructor"
}

// ctxflowPkgSuffixes scopes rule 2 to the distributed protocol.
var ctxflowPkgSuffixes = []string{"internal/distrib"}

// checkDetachedContexts implements rule 2.
func (CtxFlow) checkDetachedContexts(pass *Pass) {
	scoped := false
	for _, s := range ctxflowPkgSuffixes {
		if strings.HasSuffix(strings.TrimSuffix(pass.Pkg.Path, "_test"), s) {
			scoped = true
		}
	}
	if !scoped {
		return
	}
	for i, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Filenames[i], "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParam := contextParam(pass, fd)
			if ctxParam == nil {
				continue
			}
			allowed := nilGuardPositions(pass, fd.Body, ctxParam)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isCtxRoot(pass, call) {
					return true
				}
				if allowed[call.Pos()] {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s inside a function that already receives ctx %q detaches this path from the caller's cancellation; derive from %s instead",
					ctxCtorName(call), ctxParam.Name(), ctxParam.Name())
				return true
			})
		}
	}
}

// contextParam returns the first parameter of type context.Context.
func contextParam(pass *Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil || t.String() != "context.Context" {
			continue
		}
		for _, name := range field.Names {
			if v, ok := pass.ObjectOf(name).(*types.Var); ok {
				return v
			}
		}
	}
	return nil
}

// isCtxRoot matches context.Background() and context.TODO().
func isCtxRoot(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := pass.ObjectOf(id).(*types.PkgName)
	return ok && pkg.Imported().Path() == "context"
}

// nilGuardPositions collects Background()/TODO() calls inside the
// canonical nil-guard `if ctx == nil { ctx = context.Background() }`,
// which re-attaches a defaulted context rather than detaching a real one.
func nilGuardPositions(pass *Pass, body *ast.BlockStmt, ctxParam *types.Var) map[token.Pos]bool {
	allowed := map[token.Pos]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		id, ok := cond.X.(*ast.Ident)
		if !ok || pass.ObjectOf(id) != ctxParam {
			return true
		}
		if nilIdent, ok := cond.Y.(*ast.Ident); !ok || nilIdent.Name != "nil" {
			return true
		}
		ast.Inspect(ifs.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && isCtxRoot(pass, call) {
				allowed[call.Pos()] = true
			}
			return true
		})
		return true
	})
	return allowed
}
