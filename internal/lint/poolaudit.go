package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ---------------------------------------------------------------------------
// poolaudit: scratch-pool lifecycle discipline. internal/tensor's
// Scratch/Release pair hands out pooled float32 buffers on the kernel
// hot paths; a buffer that misses its Release on one path (typically an
// early return in dispatch code) is a silent allocation-rate regression,
// a double Release poisons the arena with an aliased buffer, and a use
// after Release reads memory another goroutine may already have
// overwritten. The analyzer runs the shared flow-sensitive resource
// engine over every function that acquires a buffer — from
// tensor.Scratch directly or from a same-package helper that returns a
// fresh Scratch buffer (e.g. tensorops.quantizedScratch) — and checks
// release-on-all-paths (defer-aware), no-double-release and
// no-use-after-release. Ownership transfers (returning the buffer,
// storing it, capturing it in a closure) exempt the site: the new owner
// is audited where the buffer lands.

// PoolAudit flags tensor scratch buffers that leak, double-release or
// are used after release.
type PoolAudit struct{}

func (PoolAudit) Name() string { return "poolaudit" }
func (PoolAudit) Doc() string {
	return "a tensor.Scratch buffer must reach tensor.Release on every path: no leaks, double releases, or use after release"
}

const tensorPkgSuffix = "internal/tensor"

func (PoolAudit) Run(pass *Pass) {
	returners := poolReturners(pass)
	spec := resourceSpec{
		noun:        "scratch buffer",
		releaseVerb: "tensor.Release",
		argEscapes:  false, // kernels borrow slices synchronously
		acquire: func(pass *Pass, as *ast.AssignStmt) *types.Var {
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return nil
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return nil
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok || !isPoolGet(pass, call, returners) {
				return nil
			}
			v, _ := pass.ObjectOf(id).(*types.Var)
			return v
		},
		release: func(pass *Pass, call *ast.CallExpr) *types.Var {
			if !isTensorFunc(pass, call, "Release") || len(call.Args) != 1 {
				return nil
			}
			base := call.Args[0]
			if sl, ok := base.(*ast.SliceExpr); ok { // Release(buf[:n])
				base = sl.X
			}
			id, ok := base.(*ast.Ident)
			if !ok {
				return nil
			}
			v, _ := pass.ObjectOf(id).(*types.Var)
			return v
		},
	}
	runResourceAnalysis(pass, spec)
}

// isPoolGet reports whether the call produces a fresh pooled buffer:
// tensor.Scratch itself, or a function in this package known to return
// one.
func isPoolGet(pass *Pass, call *ast.CallExpr, returners map[*types.Func]bool) bool {
	if isTensorFunc(pass, call, "Scratch") {
		return true
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if fn, ok := pass.ObjectOf(id).(*types.Func); ok && returners[fn] {
			return true
		}
	}
	return false
}

// isTensorFunc reports whether the call resolves to the named function
// of the internal/tensor package — through a package selector
// (tensor.Scratch) or unqualified inside the tensor package itself.
func isTensorFunc(pass *Pass, call *ast.CallExpr, name string) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name != name {
			return false
		}
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		pkg, ok := pass.ObjectOf(id).(*types.PkgName)
		return ok && strings.HasSuffix(pkg.Imported().Path(), tensorPkgSuffix)
	case *ast.Ident:
		fn, ok := pass.ObjectOf(fun).(*types.Func)
		return ok && fn.Name() == name && fn.Pkg() != nil &&
			strings.HasSuffix(fn.Pkg().Path(), tensorPkgSuffix)
	}
	return false
}

// poolReturners finds package-local functions that acquire a buffer from
// tensor.Scratch and return it — their callers own a pooled buffer just
// as if they had called Scratch directly. One level deep by design
// (chains of wrappers are rare; DESIGN.md §7 records the limit).
func poolReturners(pass *Pass) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Variables assigned from tensor.Scratch in this function.
			scratchVars := map[types.Object]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
					return true
				}
				call, ok := as.Rhs[0].(*ast.CallExpr)
				if !ok || !isTensorFunc(pass, call, "Scratch") {
					return true
				}
				if id, ok := as.Lhs[0].(*ast.Ident); ok {
					if obj := pass.ObjectOf(id); obj != nil {
						scratchVars[obj] = true
					}
				}
				return true
			})
			if len(scratchVars) == 0 {
				continue
			}
			returns := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				r, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range r.Results {
					if id, ok := res.(*ast.Ident); ok && scratchVars[pass.ObjectOf(id)] {
						returns = true
					}
				}
				return true
			})
			if returns {
				if fn, ok := pass.ObjectOf(fd.Name).(*types.Func); ok {
					out[fn] = true
				}
			}
		}
	}
	return out
}
