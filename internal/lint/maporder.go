package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ---------------------------------------------------------------------------
// maporder: determinism discipline for map iteration. Go randomizes map
// range order per iteration, so any value that flows from a map range
// into an ordered artifact — a slice built by append, bytes written to a
// writer or encoder — is nondeterministic unless sorted. In this
// codebase that matters twice over: tradeoff-curve construction and
// telemetry/wire emission must be byte-identical across runs for the
// golden tests and the install-time protocol digests to hold.
//
// Two patterns are flagged inside a `for k, v := range m` over a map:
//
//  1. `s = append(s, ...k/v...)` where s outlives the loop, unless a
//     sort.*/slices.Sort* call mentioning s appears after the range in
//     the same function (the canonical collect-then-sort idiom stays
//     clean);
//  2. writer/encoder sinks whose arguments mention k or v
//     (Write/WriteString/WriteByte/WriteRune/Encode methods and
//     fmt.Fprint*/fmt.Print*), which serialize iteration order directly.
//
// Values laundered through an intermediate variable before the append or
// write are not tracked (one-step dataflow by design; DESIGN.md §7).

// MapOrder flags map iteration order leaking into ordered output.
type MapOrder struct{}

func (MapOrder) Name() string { return "maporder" }
func (MapOrder) Doc() string {
	return "map range order must not flow into appended slices or writers/encoders without sorting"
}

func (mo MapOrder) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				mo.checkFunc(pass, fd.Body)
			}
		}
	}
}

func (mo MapOrder) checkFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		iterVars := rangeIterVars(pass, rng)
		if len(iterVars) == 0 {
			return true // `for range m {}` carries no order information
		}
		mo.checkRange(pass, body, rng, iterVars)
		return true
	})
}

// rangeIterVars returns the key/value loop variables of the range.
func rangeIterVars(pass *Pass, rng *ast.RangeStmt) map[types.Object]bool {
	vars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// sinkMethods serialize their arguments in call order.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// fmtSinks are the fmt functions that emit (Sprintf et al. build values
// and are judged by where the value lands, not here).
var fmtSinks = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func (mo MapOrder) checkRange(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, iterVars map[types.Object]bool) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		// Nested ranges are deliberately descended into: a mention of the
		// outer key inside an inner loop still leaks the outer order.
		switch node := n.(type) {
		case *ast.AssignStmt:
			mo.checkAppend(pass, fnBody, rng, node, iterVars)
		case *ast.CallExpr:
			if name, ok := sinkName(pass, node); ok && mentionsAny(pass, node.Args, iterVars) {
				pass.Reportf(node.Pos(),
					"map iteration order reaches %s; iterate over sorted keys for deterministic output", name)
			}
		}
		return true
	})
}

// checkAppend flags `s = append(s, ...k...)` when s outlives the range
// and is not sorted afterwards.
func (mo MapOrder) checkAppend(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt, iterVars map[types.Object]bool) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 {
			continue
		}
		if !mentionsAny(pass, call.Args[1:], iterVars) {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			continue
		}
		// A slice declared inside the range body is rebuilt every
		// iteration and carries no cross-iteration order.
		if rng.Body.Pos() <= obj.Pos() && obj.Pos() <= rng.Body.End() {
			continue
		}
		if sortedAfter(pass, fnBody, rng.End(), obj) {
			continue
		}
		pass.Reportf(as.Pos(),
			"%q accumulates map range values in nondeterministic order; sort %q after the loop or range over sorted keys", id.Name, id.Name)
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// sortFuncs are the sort/slices package functions accepted as fixing the
// order of a collected slice.
var sortFuncs = map[string]bool{
	"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true,
}

// sortedAfter reports whether a sort.*/slices.* call mentioning obj
// appears after pos inside body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortFuncs[sel.Sel.Name] {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkg, ok := pass.ObjectOf(pkgID).(*types.PkgName)
		if !ok {
			return true
		}
		if p := pkg.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		if mentionsAny(pass, call.Args, map[types.Object]bool{obj: true}) {
			found = true
			return false
		}
		return true
	})
	return found
}

// sinkName classifies a call as an order-serializing sink.
func sinkName(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkg, ok := pass.ObjectOf(id).(*types.PkgName); ok {
			if pkg.Imported().Path() == "fmt" && fmtSinks[sel.Sel.Name] {
				return "fmt." + sel.Sel.Name, true
			}
			return "", false // other package-level calls are not sinks
		}
	}
	if sinkMethods[sel.Sel.Name] {
		return exprString(sel.X) + "." + sel.Sel.Name, true
	}
	return "", false
}

// mentionsAny reports whether any expression's subtree resolves to one
// of the given objects.
func mentionsAny(pass *Pass, exprs []ast.Expr, objs map[types.Object]bool) bool {
	for _, e := range exprs {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && objs[pass.ObjectOf(id)] {
				hit = true
				return false
			}
			return true
		})
		if hit {
			return true
		}
	}
	return false
}
