package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ---------------------------------------------------------------------------
// lockguard: shared-map discipline in the concurrent packages. Go maps are
// not goroutine-safe; internal/parallel fans work out across GOMAXPROCS
// goroutines and internal/distrib serves concurrent HTTP handlers, so in
// those packages every write to a map that outlives the writing function
// (a struct field, a package variable, a captured variable inside a `go`
// closure) must happen after a sync.Mutex/RWMutex Lock in scope. The
// analyzer also flags a Lock with no matching Unlock in the same function
// — the missing-unlock half of the discipline.

// LockGuard flags unguarded shared-map writes and missing unlocks in the
// concurrency packages.
type LockGuard struct{}

func (LockGuard) Name() string { return "lockguard" }
func (LockGuard) Doc() string {
	return "shared-map writes in internal/parallel and internal/distrib need a lock; every Lock needs an Unlock"
}

// lockguardPkgSuffixes scopes the analyzer.
var lockguardPkgSuffixes = []string{"internal/parallel", "internal/distrib"}

func (l LockGuard) Run(pass *Pass) {
	scoped := false
	for _, s := range lockguardPkgSuffixes {
		if strings.HasSuffix(pass.Pkg.Path, s) {
			scoped = true
		}
	}
	if !scoped {
		return
	}
	for i, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Filenames[i], "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				l.checkFunc(pass, fn.Body)
			}
		}
	}
}

// lockScope is one function unit in the nesting chain, with the positions
// of the mutex Lock calls made directly in it.
type lockScope struct {
	body       *ast.BlockStmt
	lockPos    []token.Pos
	goBoundary bool // this scope is the body of a `go` statement target
}

func (l LockGuard) checkFunc(pass *Pass, body *ast.BlockStmt) {
	l.walkScope(pass, []*lockScope{{body: body}})
}

// walkScope analyzes one function unit given its enclosing scope chain
// (outermost first). Nested function literals recurse with an extended
// chain; literals launched via `go` mark a boundary that lock inheritance
// cannot cross.
func (l LockGuard) walkScope(pass *Pass, chain []*lockScope) {
	cur := chain[len(chain)-1]
	unlocks := make(map[string]bool) // receiver chain -> seen Unlock/RUnlock
	locks := make(map[string]token.Pos)
	rlockPos := make(map[string]token.Pos)

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			// Analyzed via the statements that launch it (GoStmt/DeferStmt/
			// calls); find which below. Default: plain nested literal.
			l.walkScope(pass, append(chain, &lockScope{body: node.Body}))
			return false
		case *ast.GoStmt:
			if lit, ok := node.Call.Fun.(*ast.FuncLit); ok {
				l.walkScope(pass, append(chain, &lockScope{body: lit.Body, goBoundary: true}))
				for _, arg := range node.Call.Args {
					ast.Inspect(arg, visit)
				}
				return false
			}
		case *ast.CallExpr:
			// delete(m, k) on a shared map.
			if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "delete" && len(node.Args) == 2 {
				l.checkMapWrite(pass, chain, node.Args[0], node.Pos())
				break
			}
			sel, ok := node.Fun.(*ast.SelectorExpr)
			if !ok {
				break
			}
			if isMutexMethod(pass, sel) {
				recv := exprString(sel.X)
				switch sel.Sel.Name {
				case "Lock":
					cur.lockPos = append(cur.lockPos, node.Pos())
					if _, seen := locks[recv]; !seen {
						locks[recv] = node.Pos()
					}
				case "RLock":
					if _, seen := rlockPos[recv]; !seen {
						rlockPos[recv] = node.Pos()
					}
				case "Unlock", "RUnlock":
					unlocks[recv] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if t := pass.TypeOf(ix.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						l.checkMapWrite(pass, chain, ix.X, ix.Pos())
					}
				}
			}
		}
		return true
	}
	// delete() is also a CallExpr with Ident fun; handled above.
	for _, stmt := range cur.body.List {
		ast.Inspect(stmt, visit)
	}

	for recv, pos := range locks {
		if !unlocks[recv] {
			pass.Reportf(pos, "%s.Lock() has no matching Unlock in this function", recv)
		}
	}
	for recv, pos := range rlockPos {
		if !unlocks[recv] {
			pass.Reportf(pos, "%s.RLock() has no matching RUnlock in this function", recv)
		}
	}
}

// checkMapWrite reports a write to a shared map with no Lock in scope. A
// map is shared when its base is not a variable declared inside the
// current function chain segment (field selectors and captured/global
// variables are shared; locals are not). Lock positions are searched in
// the current scope and enclosing scopes up to the nearest `go` boundary.
func (l LockGuard) checkMapWrite(pass *Pass, chain []*lockScope, base ast.Expr, writePos token.Pos) {
	cur := chain[len(chain)-1]
	if id, ok := base.(*ast.Ident); ok {
		obj := pass.ObjectOf(id)
		if obj == nil {
			return
		}
		// Declared inside the innermost function unit: local, unshared —
		// unless the write happens inside a `go` closure that captured it.
		if cur.body.Pos() <= obj.Pos() && obj.Pos() <= cur.body.End() {
			return
		}
		// Captured from an enclosing unit without crossing a goroutine
		// boundary: still confined to one goroutine.
		for i := len(chain) - 2; i >= 0; i-- {
			if chain[i+1].goBoundary {
				break
			}
			sc := chain[i]
			if sc.body.Pos() <= obj.Pos() && obj.Pos() <= sc.body.End() {
				return
			}
		}
	}
	// Search for a Lock before the write, in this scope or enclosing
	// scopes reachable without crossing a `go` boundary.
	for i := len(chain) - 1; i >= 0; i-- {
		for _, p := range chain[i].lockPos {
			if p < writePos {
				return
			}
		}
		if chain[i].goBoundary {
			break
		}
	}
	pass.Reportf(writePos, "write to shared map %s is not guarded by a mutex Lock in scope", exprString(base))
}

// isMutexMethod reports whether sel is a method call on a
// sync.Mutex/sync.RWMutex (possibly through a pointer or embedded field).
func isMutexMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	s := t.String()
	return strings.HasSuffix(s, "sync.Mutex") || strings.HasSuffix(s, "sync.RWMutex")
}

// exprString renders a selector chain for diagnostics ("c.mu").
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	default:
		return fmt.Sprintf("%T", e)
	}
}
