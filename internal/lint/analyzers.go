package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// AllAnalyzers returns the project analyzer suite in reporting order.
func AllAnalyzers() []Analyzer {
	return []Analyzer{
		StdlibOnly{},
		DetRand{},
		SpanEnd{},
		FloatEq{},
		TensorAlias{},
		LockGuard{},
		HTTPDefault{},
		MetricName{},
		PoolAudit{},
		LockOrder{},
		CtxFlow{},
		MapOrder{},
	}
}

// AnalyzerByName returns the analyzer with the given name (nil if none).
func AnalyzerByName(name string) Analyzer {
	for _, a := range AllAnalyzers() {
		if a.Name() == name {
			return a
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// stdlibonly: the repository builds with the Go standard library alone.
// Any third-party import — anything whose first path element contains a
// dot — breaks the project's no-dependencies constraint (DESIGN.md).

// StdlibOnly flags imports outside the standard library and this module.
type StdlibOnly struct{}

func (StdlibOnly) Name() string { return "stdlibonly" }
func (StdlibOnly) Doc() string {
	return "imports must be standard library or module-internal (no third-party dependencies)"
}

func (StdlibOnly) Run(pass *Pass) {
	module := moduleOf(pass.Pkg.Path)
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == module || strings.HasPrefix(path, module+"/") {
				continue
			}
			first, _, _ := strings.Cut(path, "/")
			if strings.Contains(first, ".") {
				pass.Reportf(imp.Pos(), "import %q is outside the standard library and module %q", path, module)
			}
		}
	}
}

// moduleOf recovers the module path from an analysis-unit path
// ("repro/internal/x" → "repro").
func moduleOf(pkgPath string) string {
	first, _, _ := strings.Cut(pkgPath, "/")
	return strings.TrimSuffix(first, "_test")
}

// ---------------------------------------------------------------------------
// detrand: reproducibility discipline. Every random stream in the system
// must derive from an explicit seed through tensor.RNG; the only file
// allowed to import math/rand is the RNG wrapper itself, and the
// package-level convenience functions (rand.Float64, rand.Intn, ...) —
// which share unseeded (or at best process-global) state — are banned
// everywhere, including inside the wrapper.

// DetRand flags math/rand imports outside the tensor RNG wrapper and any
// use of math/rand's package-level (global-state) functions.
type DetRand struct{}

func (DetRand) Name() string { return "detrand" }
func (DetRand) Doc() string {
	return "math/rand only via the seeded tensor.RNG wrapper; no package-level rand functions"
}

// detrandAllowed are the files permitted to import math/rand.
var detrandAllowed = []string{"internal/tensor/rng.go"}

// randGlobalFuncs are the math/rand package-level functions backed by the
// global source.
var randGlobalFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "Uint32": true, "Uint64": true, "Float32": true,
	"Float64": true, "ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
}

func (DetRand) Run(pass *Pass) {
	for i, f := range pass.Pkg.Files {
		filename := pass.Pkg.Filenames[i]
		var randNames []string // local names the file binds math/rand to
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || (path != "math/rand" && path != "math/rand/v2") {
				continue
			}
			name := "rand"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			randNames = append(randNames, name)
			if !fileAllowed(filename, detrandAllowed) {
				pass.Reportf(imp.Pos(),
					"import %q outside internal/tensor/rng.go breaks seeded-RNG determinism; use *tensor.RNG", path)
			}
		}
		if len(randNames) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !randGlobalFuncs[sel.Sel.Name] {
				return true
			}
			for _, rn := range randNames {
				if id.Name == rn && isPackageRef(pass, id) {
					pass.Reportf(sel.Pos(),
						"rand.%s uses math/rand global state; derive values from a seeded *tensor.RNG", sel.Sel.Name)
				}
			}
			return true
		})
	}
}

// fileAllowed reports whether filename ends with one of the allowed
// slash-separated suffixes.
func fileAllowed(filename string, allowed []string) bool {
	f := strings.ReplaceAll(filename, "\\", "/")
	for _, a := range allowed {
		if strings.HasSuffix(f, a) {
			return true
		}
	}
	return false
}

// isPackageRef reports whether id resolves to a package name (not a local
// variable that happens to be called "rand").
func isPackageRef(pass *Pass, id *ast.Ident) bool {
	obj := pass.ObjectOf(id)
	if obj == nil {
		return true // unresolved: assume package to stay conservative
	}
	_, ok := obj.(*types.PkgName)
	return ok
}
