package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ---------------------------------------------------------------------------
// lockorder: module-wide lock-acquisition ordering. Two goroutines that
// acquire the same pair of mutexes in opposite orders can deadlock; the
// chaos suite can only catch the interleavings it happens to hit, so
// this analyzer proves the absence of ordering cycles statically.
//
// Phase 1 builds a per-function summary — the source-order sequence of
// mutex Lock/RLock/Unlock/RUnlock events (deferred unlocks are replayed
// at function end, where they actually run) and calls to module
// functions. Locks are keyed by declaration site, not instance:
// "pkgpath.TypeName.field" for a mutex field, "pkgpath.var" for a
// package-level mutex. Local mutex variables cannot participate in
// cross-function cycles and are skipped, as are function literals
// (their locks run on their own goroutine's schedule) and _test.go
// files.
//
// Phase 2 closes the call graph: acquires*(f) = locks f takes directly
// or through any (transitively) called module function.
//
// Phase 3 replays each summary with a held-lock set, adding a directed
// edge A→B whenever B is acquired — directly or via a call — while A is
// held. Re-locking the same *instance* while held is reported
// immediately as a guaranteed self-deadlock. Same-key pairs on distinct
// instances are skipped (the key cannot tell `a.mu` from `b.mu`, so an
// edge would be ambiguous; DESIGN.md §7).
//
// Phase 4 finds cycles in the edge graph and reports each one once, at
// the first edge's acquisition site, with the full witness chain —
// which function acquired what while holding what, with file:line for
// every hop — so the diagnostic is actionable without re-running.

// LockOrder reports potential deadlocks: cycles in the module-wide
// lock-acquisition graph and direct self-deadlocks.
type LockOrder struct{}

func (LockOrder) Name() string { return "lockorder" }
func (LockOrder) Doc() string {
	return "mutexes must be acquired in a consistent module-wide order; a cycle in the acquisition graph is a potential deadlock"
}

// Run is a no-op: lockorder only makes sense over the whole module.
func (LockOrder) Run(*Pass) {}

// lockEvent is one entry in a function summary.
type lockEvent struct {
	kind   lockEventKind
	key    string // declaration-site lock key (lock/unlock)
	inst   string // instance expression rendering, e.g. "c.mu" (lock/unlock)
	callee string // types.Func.FullName (call)
	pos    token.Pos
}

type lockEventKind uint8

const (
	evLock lockEventKind = iota
	evUnlock
	evCall
)

// fnSummary is the analyzable abstraction of one function.
type fnSummary struct {
	name   string // types.Func.FullName
	pass   *Pass
	events []lockEvent
}

// lockEdge is one A→B ordering observation with its first witness.
type lockEdge struct {
	from, to string
	fn       string    // function where B was acquired while A held
	pos      token.Pos // acquisition (or call) site
	pass     *Pass
	viaCall  string // callee FullName when the acquisition is transitive
}

func (LockOrder) RunModule(passes []*Pass) {
	// Phase 1: summaries, in deterministic load/source order.
	var order []string
	summaries := map[string]*fnSummary{}
	for _, pass := range passes {
		for i, f := range pass.Pkg.Files {
			if strings.HasSuffix(pass.Pkg.Filenames[i], "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pass.ObjectOf(fd.Name).(*types.Func)
				if !ok {
					continue
				}
				s := summarize(pass, fn.FullName(), fd.Body)
				if s == nil {
					continue
				}
				if _, dup := summaries[s.name]; !dup {
					summaries[s.name] = s
					order = append(order, s.name)
				}
			}
		}
	}

	// Phase 2: transitive acquire sets, fixpoint over the call graph.
	acquires := map[string]map[string]bool{}
	for _, name := range order {
		set := map[string]bool{}
		for _, ev := range summaries[name].events {
			if ev.kind == evLock {
				set[ev.key] = true
			}
		}
		acquires[name] = set
	}
	for changed := true; changed; {
		changed = false
		for _, name := range order {
			set := acquires[name]
			for _, ev := range summaries[name].events {
				if ev.kind != evCall {
					continue
				}
				for k := range acquires[ev.callee] {
					if !set[k] {
						set[k] = true
						changed = true
					}
				}
			}
		}
	}

	// Phase 3: replay each summary, collecting edges and self-deadlocks.
	type heldLock struct{ key, inst string }
	edges := map[string]*lockEdge{} // "from\x00to" -> first witness
	addEdge := func(e *lockEdge) {
		id := e.from + "\x00" + e.to
		if _, dup := edges[id]; !dup {
			edges[id] = e
		}
	}
	for _, name := range order {
		s := summaries[name]
		var held []heldLock
		for _, ev := range s.events {
			switch ev.kind {
			case evLock:
				self := false
				for _, h := range held {
					if h.inst == ev.inst && h.key == ev.key {
						s.pass.Reportf(ev.pos,
							"%s is locked again while already held in %s (guaranteed self-deadlock on a non-reentrant mutex)",
							ev.inst, shortFn(name))
						self = true
						break
					}
				}
				if !self {
					for _, h := range held {
						if h.key != ev.key {
							addEdge(&lockEdge{from: h.key, to: ev.key, fn: name, pos: ev.pos, pass: s.pass})
						}
					}
					held = append(held, heldLock{key: ev.key, inst: ev.inst})
				}
			case evUnlock:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].inst == ev.inst {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case evCall:
				if len(held) == 0 {
					continue
				}
				callee := acquires[ev.callee]
				keys := make([]string, 0, len(callee))
				for k := range callee {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					for _, h := range held {
						if h.key != k {
							addEdge(&lockEdge{from: h.key, to: k, fn: name, pos: ev.pos, pass: s.pass, viaCall: ev.callee})
						}
					}
				}
			}
		}
	}

	reportLockCycles(edges)
}

// summarize walks one function body in source order. Returns nil when
// the function neither locks nor calls (keeps the summary table small).
func summarize(pass *Pass, name string, body *ast.BlockStmt) *fnSummary {
	s := &fnSummary{name: name, pass: pass}
	var deferred []lockEvent
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			return false // separate execution schedule; out of summary
		case *ast.DeferStmt:
			// A deferred unlock runs at function end; replay it there so
			// `mu.Lock(); defer mu.Unlock(); other.Lock()` still records
			// the mu→other edge.
			if sel, ok := node.Call.Fun.(*ast.SelectorExpr); ok && isMutexMethod(pass, sel) {
				switch sel.Sel.Name {
				case "Unlock", "RUnlock":
					if key, inst, ok := lockKey(pass, sel.X); ok {
						deferred = append(deferred, lockEvent{kind: evUnlock, key: key, inst: inst, pos: node.Pos()})
					}
					return false
				}
			}
			return false // other deferred work: schedule unknown, skip
		case *ast.GoStmt:
			return false // new goroutine: its locks are its own sequence
		case *ast.CallExpr:
			if sel, ok := node.Fun.(*ast.SelectorExpr); ok && isMutexMethod(pass, sel) {
				key, inst, ok := lockKey(pass, sel.X)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Lock", "RLock":
					s.events = append(s.events, lockEvent{kind: evLock, key: key, inst: inst, pos: node.Pos()})
				case "Unlock", "RUnlock":
					s.events = append(s.events, lockEvent{kind: evUnlock, key: key, inst: inst, pos: node.Pos()})
				}
				return true
			}
			if callee := calleeFullName(pass, node); callee != "" {
				s.events = append(s.events, lockEvent{kind: evCall, callee: callee, pos: node.Pos()})
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	s.events = append(s.events, deferred...)
	if len(s.events) == 0 {
		return nil
	}
	return s
}

// lockKey derives the declaration-site key and instance rendering of a
// mutex expression. ok is false for local mutex variables (no
// cross-function identity) and unresolvable expressions.
func lockKey(pass *Pass, x ast.Expr) (key, inst string, ok bool) {
	inst = exprString(x)
	switch e := x.(type) {
	case *ast.SelectorExpr:
		// c.mu / s.state.mu: key on the owning named type of the final
		// field selection.
		t := pass.TypeOf(e.X)
		if t == nil {
			return "", "", false
		}
		if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
			t = p.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed {
			return "", "", false
		}
		obj := named.Obj()
		pkgPath := ""
		if obj.Pkg() != nil {
			pkgPath = obj.Pkg().Path()
		}
		return pkgPath + "." + obj.Name() + "." + e.Sel.Name, inst, true
	case *ast.Ident:
		obj := pass.ObjectOf(e)
		if obj == nil || obj.Pkg() == nil {
			return "", "", false
		}
		// Package-level mutex: declared in package scope.
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name(), inst, true
		}
		return "", "", false
	case *ast.ParenExpr:
		return lockKey(pass, e.X)
	}
	return "", "", false
}

// calleeFullName resolves a call to a module function's FullName (empty
// for builtins, stdlib, interface methods outside the module, and
// indirect calls). FullName strings — not object identities — are the
// cross-package currency: the loader type-checks a package once for
// itself and once as a dependency, producing distinct objects.
func calleeFullName(pass *Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	fn, ok := pass.ObjectOf(id).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	if mod := moduleOf(pass.Pkg.Path); fn.Pkg().Path() != mod && !strings.HasPrefix(fn.Pkg().Path(), mod+"/") {
		return ""
	}
	return fn.FullName()
}

// reportLockCycles finds elementary cycles in the edge graph and reports
// each once, with the complete witness chain.
func reportLockCycles(edges map[string]*lockEdge) {
	adj := map[string][]string{}
	byPair := map[string]*lockEdge{}
	for id, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		byPair[id] = e
	}
	var nodes []string
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for n := range adj {
		sort.Strings(adj[n])
	}

	seen := map[string]bool{} // canonical cycle -> reported
	var path []string
	onPath := map[string]int{}
	var dfs func(n string)
	dfs = func(n string) {
		if idx, ok := onPath[n]; ok {
			cycle := append([]string(nil), path[idx:]...)
			emitCycle(cycle, byPair, seen)
			return
		}
		onPath[n] = len(path)
		path = append(path, n)
		for _, m := range adj[n] {
			dfs(m)
		}
		path = path[:len(path)-1]
		delete(onPath, n)
	}
	for _, n := range nodes {
		dfs(n)
	}
}

// emitCycle canonicalizes (rotate so the smallest key leads), dedups and
// reports one cycle through the pass of its first edge.
func emitCycle(cycle []string, edges map[string]*lockEdge, seen map[string]bool) {
	min := 0
	for i := range cycle {
		if cycle[i] < cycle[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
	id := strings.Join(rot, "\x00")
	if seen[id] {
		return
	}
	seen[id] = true

	var first *lockEdge
	var hops []string
	for i := range rot {
		from, to := rot[i], rot[(i+1)%len(rot)]
		e := edges[from+"\x00"+to]
		if e == nil {
			return // not an edge cycle (shouldn't happen); stay silent
		}
		if first == nil {
			first = e
		}
		p := e.pass.Fset.Position(e.pos)
		how := "acquired"
		if e.viaCall != "" {
			how = "acquired via " + shortFn(e.viaCall)
		}
		hops = append(hops, fmt.Sprintf("%s %s while holding %s in %s (%s:%d)",
			shortKey(to), how, shortKey(from), shortFn(e.fn), filepathBase(p.Filename), p.Line))
	}
	var names []string
	for _, k := range rot {
		names = append(names, shortKey(k))
	}
	names = append(names, shortKey(rot[0]))
	first.pass.Reportf(first.pos, "lock-order cycle (potential deadlock): %s; %s",
		strings.Join(names, " → "), strings.Join(hops, "; "))
}

// shortKey trims the directory part of a lock key for display:
// "repro/internal/obs.Registry.mu" → "obs.Registry.mu".
func shortKey(k string) string {
	if i := strings.LastIndex(k, "/"); i >= 0 {
		return k[i+1:]
	}
	return k
}

// shortFn trims package directories from a FullName for display.
func shortFn(name string) string {
	// "(*repro/internal/obs.Registry).export" → "(*obs.Registry).export"
	if i := strings.LastIndex(name, "/"); i >= 0 {
		prefix := ""
		if j := strings.IndexAny(name, "(*"); j == 0 {
			for len(name) > 0 && (name[0] == '(' || name[0] == '*') {
				prefix += string(name[0])
				name = name[1:]
			}
			i = strings.LastIndex(name, "/")
		}
		if i >= 0 {
			name = name[i+1:]
		}
		return prefix + name
	}
	return name
}
