package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ---------------------------------------------------------------------------
// spanend: observability span hygiene. A span returned by Tracer.Start /
// Span.Child (and the obs.Start package helper) must be ended on every
// path of the function that created it — otherwise the span never reaches
// the JSONL export and the trace tree silently loses a subtree. The
// analyzer requires either `defer sp.End()` or an explicit `sp.End()`
// that no return statement can bypass. Ownership transfers — returning
// the span, storing it in a struct field or variable, appending it to a
// collection — exempt the creation site (the owner ends it elsewhere,
// e.g. RuntimeTuner.Close).

// SpanEnd flags obs spans that are started but not ended on all paths.
type SpanEnd struct{}

func (SpanEnd) Name() string { return "spanend" }
func (SpanEnd) Doc() string {
	return "every obs span started must be ended on all paths (defer or explicit)"
}

// spanTypeSuffix matches *repro/internal/obs.Span without hardcoding the
// module name.
const spanTypeSuffix = "internal/obs.Span"

func isSpanType(t string) bool {
	return strings.HasPrefix(t, "*") && strings.HasSuffix(t, spanTypeSuffix)
}

func (s SpanEnd) Run(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		// Analyze each function unit (declaration or literal) separately:
		// the creator of a span is responsible for ending it.
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					s.checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				s.checkFunc(pass, fn.Body)
			}
			return true
		})
	}
}

// spanUse accumulates everything the function does with one span variable.
type spanUse struct {
	assignPos token.Pos
	deferred  bool        // defer sp.End() (directly or via deferred closure)
	endPos    []token.Pos // explicit sp.End() call positions
	exempt    bool        // returned / stored / aliased: ownership moved
}

func (s SpanEnd) checkFunc(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: span-producing assignments directly in this unit (nested
	// literals are their own units).
	uses := make(map[string]*spanUse) // keyed by object position (unique per var)
	varName := make(map[string]string)
	objKey := func(id *ast.Ident) string {
		obj := pass.ObjectOf(id)
		if obj == nil {
			return ""
		}
		return pass.Fset.Position(obj.Pos()).String()
	}
	inspectSkippingFuncLits(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		// SpanFromContext borrows the context's span — retrieval, not
		// creation; whoever put it in the context owns its End.
		if id := chainBaseIdent(call.Fun); id != nil && id.Name == "SpanFromContext" {
			return
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "SpanFromContext" {
			return
		}
		// Any span-typed LHS of a call assignment creates ownership here —
		// including the multi-value forms (ctx, sp := tr.StartCtx(...)),
		// where the call's type is a tuple, so each LHS identifier is
		// typed individually.
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil || obj.Type() == nil || !isSpanType(obj.Type().String()) {
				continue
			}
			key := objKey(id)
			if key == "" {
				continue
			}
			if _, seen := uses[key]; !seen {
				uses[key] = &spanUse{assignPos: as.Pos()}
				varName[key] = id.Name
			}
		}
	})
	if len(uses) == 0 {
		return
	}

	// Pass 2: ends, defers and ownership transfers anywhere in the unit,
	// nested literals included (a deferred closure may end the span; a
	// goroutine handed the span owns it).
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch node := m.(type) {
			case *ast.DeferStmt:
				walk(node.Call, true)
				return false
			case *ast.CallExpr:
				if sel, ok := node.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" && len(node.Args) == 0 {
					// The receiver may be a chain of pass-through span
					// methods: sp.With("k", v).End().
					if id := chainBaseIdent(sel.X); id != nil {
						if u := uses[objKey(id)]; u != nil {
							if inDefer {
								u.deferred = true
							} else {
								u.endPos = append(u.endPos, node.Pos())
							}
							return true
						}
					}
				}
				if sel, ok := node.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "ContextWithSpan" {
					// obs.ContextWithSpan(ctx, sp) stores the span in the
					// context: ownership moves with the context, the holder
					// ends it (typically via SpanFromContext).
					for _, arg := range node.Args {
						if id, ok := arg.(*ast.Ident); ok {
							if u := uses[objKey(id)]; u != nil {
								u.exempt = true
							}
						}
					}
				}
			case *ast.ReturnStmt:
				for _, res := range node.Results {
					if id, ok := res.(*ast.Ident); ok {
						if u := uses[objKey(id)]; u != nil {
							u.exempt = true
						}
					}
				}
			case *ast.AssignStmt:
				// Storing the span somewhere else moves ownership:
				// x.field = sp, m[k] = sp, alias := sp.
				for _, rhs := range node.Rhs {
					if id, ok := rhs.(*ast.Ident); ok {
						if u := uses[objKey(id)]; u != nil && node.Pos() != u.assignPos {
							u.exempt = true
						}
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := node.Value.(*ast.Ident); ok {
					if u := uses[objKey(id)]; u != nil {
						u.exempt = true
					}
				}
			}
			return true
		})
	}
	walk(body, false)

	// Pass 3: returns at this unit's level that could bypass the earliest
	// explicit End.
	var returns []token.Pos
	inspectSkippingFuncLits(body, func(n ast.Node) {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r.Pos())
		}
	})

	for key, u := range uses {
		if u.exempt || u.deferred {
			continue
		}
		name := varName[key]
		if len(u.endPos) == 0 {
			pass.Reportf(u.assignPos, "span %q is started but never ended in this function; add defer %s.End()", name, name)
			continue
		}
		first := u.endPos[0]
		for _, p := range u.endPos {
			if p < first {
				first = p
			}
		}
		for _, r := range returns {
			if r > u.assignPos && r < first {
				pass.Reportf(r, "return may bypass %s.End() (started at %s); end the span with defer",
					name, pass.Fset.Position(u.assignPos))
			}
		}
	}
}

// chainBaseIdent unwraps a method-call chain (sp.With(...).With(...)) to
// its base identifier; nil when the base is not a plain identifier.
func chainBaseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			e = sel.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// inspectSkippingFuncLits walks a function body without descending into
// nested function literals (which are analyzed as their own units).
func inspectSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
