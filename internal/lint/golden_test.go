package lint

import (
	"path/filepath"
	"testing"
)

// TestRepositoryIsLintClean is the golden gate: the committed tree must
// produce zero findings. Any new violation either gets fixed or gets a
// reasoned //lint:ignore — silently accumulating findings is not an
// option because this test (and `make ci`, which runs cmd/approxlint)
// fails on the first one.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("only %d packages loaded from the module; loader is missing the tree", len(pkgs))
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.Path, terr)
		}
	}
	diags := NewRunner().Run(pkgs)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d finding(s); fix them or add a reasoned //lint:ignore", len(diags))
	}
}
