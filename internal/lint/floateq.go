package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ---------------------------------------------------------------------------
// floateq: floating-point == / != comparisons. Approximate kernels,
// QoS scores and tradeoff points are all floating point; comparing them
// with == is almost always a rounding-error bug waiting to happen. Code
// that genuinely needs identity semantics should compare bit patterns
// (math.Float64bits) or carry a //lint:ignore floateq annotation with the
// reason. _test.go files are exempt by design: the project's tests assert
// bit-for-bit reproducibility, where exact comparison is the point.

// FloatEq flags == and != between floating-point operands outside tests.
type FloatEq struct{}

func (FloatEq) Name() string { return "floateq" }
func (FloatEq) Doc() string {
	return "no ==/!= on float32/float64 operands; use an epsilon or compare bits"
}

func (FloatEq) Run(pass *Pass) {
	for i, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Filenames[i], "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			// Both sides compile-time constants: the comparison is exact
			// by definition.
			if isConst(pass, be.X) && isConst(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "%s compares floating-point values exactly; use an epsilon or math.Float64bits", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat:
		return true
	}
	return false
}

func isConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
