package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// httpdefault: network-robustness discipline. http.DefaultClient and the
// package-level convenience helpers (http.Get, http.Post, ...) have no
// timeout, so one unresponsive peer can hang a tuning run forever — the
// exact failure mode the distributed protocol's fault model exists to
// prevent. Production code must build an http.Client with an explicit
// Timeout (or install a per-request context deadline through a client it
// constructed). Test files are exempt: httptest servers are local and
// tests carry their own deadlines.

// HTTPDefault flags use of http.DefaultClient, the package-level request
// helpers, and http.Client literals without a Timeout.
type HTTPDefault struct{}

func (HTTPDefault) Name() string { return "httpdefault" }
func (HTTPDefault) Doc() string {
	return "no http.DefaultClient or timeout-less http.Client outside tests; every client needs an explicit Timeout"
}

// httpHelperFuncs are the net/http package-level functions that issue
// requests through DefaultClient.
var httpHelperFuncs = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
}

func (HTTPDefault) Run(pass *Pass) {
	for i, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Filenames[i], "_test.go") {
			continue
		}
		var httpNames []string // local names the file binds net/http to
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "net/http" {
				continue
			}
			name := "http"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			httpNames = append(httpNames, name)
		}
		if len(httpNames) == 0 {
			continue
		}
		isHTTPPkg := func(id *ast.Ident) bool {
			for _, hn := range httpNames {
				if id.Name == hn && isPackageRef(pass, id) {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.SelectorExpr:
				id, ok := node.X.(*ast.Ident)
				if !ok || !isHTTPPkg(id) {
					return true
				}
				switch {
				case node.Sel.Name == "DefaultClient":
					pass.Reportf(node.Pos(),
						"http.DefaultClient has no timeout; build an http.Client with an explicit Timeout")
				case httpHelperFuncs[node.Sel.Name]:
					pass.Reportf(node.Pos(),
						"http.%s uses DefaultClient (no timeout); issue the request through a client with an explicit Timeout", node.Sel.Name)
				}
			case *ast.CompositeLit:
				sel, ok := node.Type.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Client" {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || !isHTTPPkg(id) {
					return true
				}
				for _, el := range node.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Timeout" {
							return true
						}
					} else {
						// Positional literal: every field (including
						// Timeout) is spelled out explicitly.
						return true
					}
				}
				pass.Reportf(node.Pos(),
					"http.Client literal without a Timeout can hang forever; set an explicit Timeout")
			}
			return true
		})
	}
}
