package lint

import (
	"go/ast"
	"strconv"
	"strings"
)

// ---------------------------------------------------------------------------
// httpdefault: network-robustness discipline. http.DefaultClient and the
// package-level convenience helpers (http.Get, http.Post, ...) have no
// timeout, so one unresponsive peer can hang a tuning run forever — the
// exact failure mode the distributed protocol's fault model exists to
// prevent. Production code must build an http.Client with an explicit
// Timeout (or install a per-request context deadline through a client it
// constructed). The server side has the mirror-image hole: an
// http.Server without a ReadHeaderTimeout lets a slowloris peer hold
// connections open indefinitely by trickling header bytes, pinning
// accept slots until the listener starves. Test files are exempt:
// httptest servers are local and tests carry their own deadlines.

// HTTPDefault flags use of http.DefaultClient, the package-level request
// helpers, http.Client literals without a Timeout, and http.Server
// literals without a ReadHeaderTimeout (or ReadTimeout, which covers
// header reads too).
type HTTPDefault struct{}

func (HTTPDefault) Name() string { return "httpdefault" }
func (HTTPDefault) Doc() string {
	return "no http.DefaultClient, timeout-less http.Client, or http.Server without ReadHeaderTimeout outside tests"
}

// httpHelperFuncs are the net/http package-level functions that issue
// requests through DefaultClient.
var httpHelperFuncs = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
}

func (HTTPDefault) Run(pass *Pass) {
	for i, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Filenames[i], "_test.go") {
			continue
		}
		var httpNames []string // local names the file binds net/http to
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || path != "net/http" {
				continue
			}
			name := "http"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			httpNames = append(httpNames, name)
		}
		if len(httpNames) == 0 {
			continue
		}
		isHTTPPkg := func(id *ast.Ident) bool {
			for _, hn := range httpNames {
				if id.Name == hn && isPackageRef(pass, id) {
					return true
				}
			}
			return false
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.SelectorExpr:
				id, ok := node.X.(*ast.Ident)
				if !ok || !isHTTPPkg(id) {
					return true
				}
				switch {
				case node.Sel.Name == "DefaultClient":
					pass.Reportf(node.Pos(),
						"http.DefaultClient has no timeout; build an http.Client with an explicit Timeout")
				case httpHelperFuncs[node.Sel.Name]:
					pass.Reportf(node.Pos(),
						"http.%s uses DefaultClient (no timeout); issue the request through a client with an explicit Timeout", node.Sel.Name)
				}
			case *ast.CompositeLit:
				sel, ok := node.Type.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Client" && sel.Sel.Name != "Server") {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok || !isHTTPPkg(id) {
					return true
				}
				// The field whose absence leaves the literal unbounded:
				// a Client hangs without Timeout; a Server is slowloris-
				// exposed without ReadHeaderTimeout (ReadTimeout also
				// bounds header reads, so either suffices).
				satisfies := func(name string) bool { return name == "Timeout" }
				if sel.Sel.Name == "Server" {
					satisfies = func(name string) bool {
						return name == "ReadHeaderTimeout" || name == "ReadTimeout"
					}
				}
				for _, el := range node.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok && satisfies(key.Name) {
							return true
						}
					} else {
						// Positional literal: every field (including the
						// timeout) is spelled out explicitly.
						return true
					}
				}
				if sel.Sel.Name == "Server" {
					pass.Reportf(node.Pos(),
						"http.Server literal without a ReadHeaderTimeout is slowloris-exposed; set ReadHeaderTimeout (or ReadTimeout)")
				} else {
					pass.Reportf(node.Pos(),
						"http.Client literal without a Timeout can hang forever; set an explicit Timeout")
				}
			}
			return true
		})
	}
}
