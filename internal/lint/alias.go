package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ---------------------------------------------------------------------------
// tensoralias: kernel input/output aliasing. Approximate tensor kernels
// receive input slices and output slices; a kernel that writes into a
// parameter slice it also reads as an input silently mutates the caller's
// tensor — which corrupts the baseline caches the profiler and the Π1
// predictor reuse across thousands of executions. The analyzer flags any
// function in internal/tensorops whose parameter slice is both indexed as
// an rvalue (or ranged over / used as a copy source) and plainly assigned
// through. Compound assignment (out[i] += v) is treated as accumulation
// into an output buffer, not an input read.

// TensorAlias flags tensorops kernels that write a parameter slice they
// also read.
type TensorAlias struct{}

func (TensorAlias) Name() string { return "tensoralias" }
func (TensorAlias) Doc() string {
	return "tensorops kernels must not write a parameter slice they also read as input"
}

// tensoraliasPkgSuffix scopes the analyzer to the kernel package.
const tensoraliasPkgSuffix = "internal/tensorops"

func (TensorAlias) Run(pass *Pass) {
	if !strings.HasSuffix(pass.Pkg.Path, tensoraliasPkgSuffix) {
		return
	}
	for i, f := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Filenames[i], "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkAliasing(pass, fn)
		}
	}
}

type sliceParamUse struct {
	name     string
	writePos []token.Pos
	readPos  []token.Pos
}

func checkAliasing(pass *Pass, fn *ast.FuncDecl) {
	params := make(map[types.Object]*sliceParamUse)
	for _, field := range fn.Type.Params.List {
		for _, id := range field.Names {
			obj := pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			if _, ok := obj.Type().Underlying().(*types.Slice); ok {
				params[obj] = &sliceParamUse{name: id.Name}
			}
		}
	}
	if len(params) == 0 {
		return
	}
	lookup := func(e ast.Expr) *sliceParamUse {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pass.ObjectOf(id)
		if obj == nil {
			return nil
		}
		return params[obj]
	}

	// Collect write targets first so the read walk can skip them.
	writes := make(map[ast.Node]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if u := lookup(ix.X); u != nil {
					// Compound assignment (+=, *=, ...) counts as a write
					// too; excluding the target from the read walk below
					// treats it as accumulation into an output buffer
					// rather than an input read.
					writes[ix] = true
					u.writePos = append(u.writePos, ix.Pos())
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := node.X.(*ast.IndexExpr); ok {
				if u := lookup(ix.X); u != nil {
					writes[ix] = true
					u.writePos = append(u.writePos, ix.Pos())
				}
			}
		case *ast.CallExpr:
			// copy(p, src) writes p; copy(dst, p) reads p.
			if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "copy" && len(node.Args) == 2 {
				if u := lookup(node.Args[0]); u != nil {
					u.writePos = append(u.writePos, node.Args[0].Pos())
					writes[node.Args[0]] = true
				}
				if u := lookup(node.Args[1]); u != nil {
					u.readPos = append(u.readPos, node.Args[1].Pos())
				}
			}
		}
		return true
	})

	// Read walk: index expressions not recorded as write targets, and
	// range statements over the parameter.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.IndexExpr:
			if writes[node] {
				return true
			}
			if u := lookup(node.X); u != nil {
				u.readPos = append(u.readPos, node.Pos())
			}
		case *ast.RangeStmt:
			if u := lookup(node.X); u != nil && node.Value != nil {
				u.readPos = append(u.readPos, node.X.Pos())
			}
		}
		return true
	})

	for _, u := range params {
		if len(u.writePos) > 0 && len(u.readPos) > 0 {
			pass.Reportf(u.writePos[0],
				"kernel %s writes parameter slice %q which it also reads as input; approximate ops must not mutate inputs",
				fn.Name.Name, u.name)
		}
	}
}
