package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads one testdata/src fixture directory as an analysis unit.
func loadFixture(t *testing.T, rel string) []*Package {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", filepath.FromSlash(rel)))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, []string{dir})
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("load %s: no packages", rel)
	}
	return pkgs
}

var wantRe = regexp.MustCompile(`// want ([a-z]+)`)

// wantMarkers scans the fixture's files for "// want <analyzer>" comments
// and returns the expected findings keyed "file:line:analyzer".
func wantMarkers(t *testing.T, pkgs []*Package) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, name := range pkg.Filenames {
			f, err := os.Open(name)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for line := 1; sc.Scan(); line++ {
				for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
					want[fmt.Sprintf("%s:%d:%s", filepath.Base(name), line, m[1])] = true
				}
			}
			f.Close()
		}
	}
	return want
}

// TestAnalyzersOnFixtures runs the full suite over each fixture package and
// compares the findings against the // want markers: every marker must
// produce a finding, every finding must be marked.
func TestAnalyzersOnFixtures(t *testing.T) {
	fixtures := []string{
		"stdlibonly",
		"detrand",
		"floateq",
		"spanfix",
		"internal/tensorops",
		"internal/parallel",
		"httpdefault",
		"metricname",
		"poolaudit",
		"lockorder",
		"internal/distrib",
		"maporder",
	}
	for _, fx := range fixtures {
		t.Run(strings.ReplaceAll(fx, "/", "_"), func(t *testing.T) {
			pkgs := loadFixture(t, fx)
			want := wantMarkers(t, pkgs)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no // want markers", fx)
			}
			got := make(map[string]bool)
			for _, d := range NewRunner().Run(pkgs) {
				got[fmt.Sprintf("%s:%d:%s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer)] = true
			}
			for k := range want {
				if !got[k] {
					t.Errorf("expected finding %s was not reported", k)
				}
			}
			for k := range got {
				if !want[k] {
					t.Errorf("unexpected finding %s", k)
				}
			}
		})
	}
}

// TestDirectiveFindings checks that malformed and unknown-analyzer ignore
// directives are themselves reported (expectations are explicit because a
// directive occupies its own comment line, leaving no room for a marker).
func TestDirectiveFindings(t *testing.T) {
	pkgs := loadFixture(t, "directive")
	diags := NewRunner().Run(pkgs)

	var sawMalformed, sawUnknown, sawFloatEq bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "lintdirective" && strings.Contains(d.Message, "malformed"):
			sawMalformed = true
		case d.Analyzer == "lintdirective" && strings.Contains(d.Message, "unknown analyzer"):
			sawUnknown = true
		case d.Analyzer == "floateq":
			// The reason-less directive must NOT suppress the comparison.
			sawFloatEq = true
		}
	}
	if !sawMalformed {
		t.Error("reason-less directive was not reported as malformed")
	}
	if !sawUnknown {
		t.Error("directive naming an unknown analyzer was not reported")
	}
	if !sawFloatEq {
		t.Error("float comparison under a malformed directive was wrongly suppressed")
	}
}

// TestFlowIgnoreInteraction pins the flow-analyzer suppression contract:
// a reasoned //lint:ignore on the ACQUIRE line suppresses the
// path-dependent leak diagnostic reported at the (distant) leak site; a
// reason-less directive suppresses nothing and is itself a finding.
func TestFlowIgnoreInteraction(t *testing.T) {
	pkgs := loadFixture(t, "flowignore")
	diags := NewRunner().Run(pkgs)

	var pool, malformed []Diagnostic
	for _, d := range diags {
		switch {
		case d.Analyzer == "poolaudit":
			pool = append(pool, d)
		case d.Analyzer == "lintdirective" && strings.Contains(d.Message, "malformed"):
			malformed = append(malformed, d)
		}
	}
	if len(pool) != 1 {
		t.Fatalf("got %d poolaudit findings, want exactly 1 (the malformed-directive leak): %v", len(pool), pool)
	}
	if len(malformed) != 1 {
		t.Fatalf("got %d malformed-directive findings, want 1: %v", len(malformed), malformed)
	}
	// The surviving leak must be the one under the reason-less directive,
	// i.e. strictly after the malformed directive's own line.
	if pool[0].Pos.Line <= malformed[0].Pos.Line {
		t.Errorf("surviving poolaudit finding at line %d is not below the malformed directive at line %d — the reasoned suppression leaked through",
			pool[0].Pos.Line, malformed[0].Pos.Line)
	}
}

// TestParallelDeterminism pins byte-identical output across serial and
// parallel runs over a multi-package load — the ordering guarantee
// cmd/approxlint -p relies on.
func TestParallelDeterminism(t *testing.T) {
	var pkgs []*Package
	for _, fx := range []string{"poolaudit", "lockorder", "maporder", "internal/distrib", "floateq", "metricname"} {
		pkgs = append(pkgs, loadFixture(t, fx)...)
	}
	render := func(diags []Diagnostic) string {
		var sb strings.Builder
		for _, d := range diags {
			sb.WriteString(d.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	serial := render(NewRunner().RunParallel(pkgs, 1))
	if serial == "" {
		t.Fatal("fixture load produced no diagnostics; determinism check is vacuous")
	}
	for _, workers := range []int{2, 4, 0} {
		if got := render(NewRunner().RunParallel(pkgs, workers)); got != serial {
			t.Errorf("RunParallel(%d) output differs from serial run:\n--- serial ---\n%s--- parallel ---\n%s", workers, serial, got)
		}
	}
}

// TestDiagnosticFormat pins the file:line:col rendering the CI gate and
// editors rely on.
func TestDiagnosticFormat(t *testing.T) {
	pkgs := loadFixture(t, "floateq")
	diags := NewRunner().Run(pkgs)
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	s := diags[0].String()
	re := regexp.MustCompile(`^.+\.go:\d+:\d+: \[[a-z]+\] .+`)
	if !re.MatchString(s) {
		t.Errorf("diagnostic %q does not match file:line:col: [analyzer] message", s)
	}
	if diags[0].Pos.Line == 0 || diags[0].Pos.Column == 0 {
		t.Errorf("diagnostic lacks a real position: %+v", diags[0].Pos)
	}
}

// TestAnalyzerRegistry checks the suite covers the twelve project rules
// and that names resolve.
func TestAnalyzerRegistry(t *testing.T) {
	names := []string{"stdlibonly", "detrand", "spanend", "floateq", "tensoralias", "lockguard", "httpdefault", "metricname",
		"poolaudit", "lockorder", "ctxflow", "maporder"}
	all := AllAnalyzers()
	if len(all) != len(names) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(names))
	}
	for i, n := range names {
		if all[i].Name() != n {
			t.Errorf("analyzer %d is %q, want %q", i, all[i].Name(), n)
		}
		if AnalyzerByName(n) == nil {
			t.Errorf("AnalyzerByName(%q) = nil", n)
		}
		if all[i].Doc() == "" {
			t.Errorf("analyzer %q has no doc", n)
		}
	}
	if AnalyzerByName("nope") != nil {
		t.Error("AnalyzerByName should return nil for unknown names")
	}
}
