package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/flow"
)

// ---------------------------------------------------------------------------
// Shared flow-sensitive resource-lifecycle engine. poolaudit (tensor
// scratch buffers) and ctxflow (context cancel functions) are the same
// analysis with different acquire/release matchers: a variable bound to
// an acquired resource must reach a release on every path to function
// exit (a deferred release covers all paths), must not be released
// twice, and must not be used after a definite release.
//
// The engine is intraprocedural over the flow-package CFG. Ownership
// transfers exempt a variable from tracking: returning it, assigning it
// to anything, capturing it in a function literal, sending it on a
// channel, taking its address, or placing it in a composite literal.
// Known unsoundness is documented in DESIGN.md §7 (bitmask facts merge
// path states, so a defer on one branch covers leaks on another; escape
// analysis is per-variable, not per-value).

// resState is the per-variable dataflow fact, a may-bitmask joined by OR.
type resState uint8

const (
	resLive     resState = 1 << iota // holds an unreleased resource on some path
	resReleased                      // explicitly released on some path
	resDeferred                      // a deferred release is registered on some path
)

// resourceSpec configures the engine for one analyzer.
type resourceSpec struct {
	// what the resource is called in diagnostics ("scratch buffer",
	// "context cancel function").
	noun string
	// acquire inspects an assignment and returns the variable bound to a
	// fresh resource (nil when the statement is not an acquisition).
	acquire func(pass *Pass, as *ast.AssignStmt) *types.Var
	// release inspects a call and returns the tracked variable it
	// releases (nil when the call is not a release).
	release func(pass *Pass, call *ast.CallExpr) *types.Var
	// argEscapes: passing the variable as an ordinary call argument
	// transfers ownership (true for cancel funcs, false for pool buffers
	// — kernels borrow slices synchronously).
	argEscapes bool
	// releaseVerb names the expected call in leak messages ("tensor.Release", "cancel()").
	releaseVerb string
}

// resEngine analyzes the function units of one package against a spec.
type resEngine struct {
	pass *Pass
	spec resourceSpec

	tracked map[*types.Var]token.Pos // var -> acquire position
	escapes map[*types.Var]bool      // ownership left the unit
	seen    map[string]bool          // diagnostic dedup
}

func runResourceAnalysis(pass *Pass, spec resourceSpec) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					(&resEngine{pass: pass, spec: spec}).checkFunc(fn.Body)
				}
			case *ast.FuncLit:
				(&resEngine{pass: pass, spec: spec}).checkFunc(fn.Body)
			}
			return true
		})
	}
}

func (e *resEngine) checkFunc(body *ast.BlockStmt) {
	g := flow.New(body)

	// Phase 1: find acquisitions directly in this unit.
	e.tracked = map[*types.Var]token.Pos{}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			if v := e.spec.acquire(e.pass, as); v != nil {
				if _, dup := e.tracked[v]; !dup {
					e.tracked[v] = as.Pos()
				}
			}
		}
	}
	if len(e.tracked) == 0 {
		return
	}

	// Phase 2: drop variables whose ownership escapes this unit.
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			e.scanEscapes(n)
		}
	}
	for v := range e.tracked {
		if e.escaped(v) {
			delete(e.tracked, v)
		}
	}
	if len(e.tracked) == 0 {
		return
	}

	// Phase 3: solve, then re-walk reachable blocks reporting.
	analysis := flow.Forward[resFact]{
		Entry: resFact{},
		Clone: cloneResFact,
		Join:  joinResFact,
		Transfer: func(f resFact, n ast.Node) resFact {
			return e.transfer(f, n, nil)
		},
	}
	in := analysis.Solve(g)

	e.seen = map[string]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		key := Diagnostic{Pos: e.pass.Fset.Position(pos), Message: format}.String()
		if e.seen[key] {
			return
		}
		e.seen[key] = true
		e.pass.Reportf(pos, format, args...)
	}
	for _, blk := range g.Blocks {
		f, ok := in[blk]
		if !ok {
			continue
		}
		out := cloneResFact(f)
		for _, n := range blk.Nodes {
			out = e.transfer(out, n, report)
		}
		// Leak check on edges into the synthetic exit.
		for _, s := range blk.Succs {
			if s != g.Exit {
				continue
			}
			for v, st := range out {
				if st&resLive == 0 || st&resDeferred != 0 {
					continue
				}
				if e.pass.IgnoredAt(e.tracked[v]) {
					continue
				}
				pos := e.leakPos(blk, v)
				acq := e.pass.Fset.Position(e.tracked[v])
				report(pos, "%s %q (acquired at %s:%d) is not released on this path; call %s on every path or defer it",
					e.spec.noun, v.Name(), filepathBase(acq.Filename), acq.Line, e.spec.releaseVerb)
			}
			break
		}
	}
}

// resFact maps tracked variables to their may-state.
type resFact map[*types.Var]resState

func cloneResFact(f resFact) resFact {
	out := make(resFact, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

func joinResFact(dst, src resFact) (resFact, bool) {
	changed := false
	for k, v := range src {
		if dst[k]|v != dst[k] {
			dst[k] |= v
			changed = true
		}
	}
	return dst, changed
}

// releasesTracked returns the tracked variable the call releases, nil
// when the call is not a release or releases an untracked variable (a
// spec's release matcher may match structurally — e.g. any call through
// a func-typed variable — so the tracked-set filter lives here).
func (e *resEngine) releasesTracked(call *ast.CallExpr) *types.Var {
	v := e.spec.release(e.pass, call)
	if v == nil {
		return nil
	}
	if _, ok := e.tracked[v]; !ok {
		return nil
	}
	return v
}

// transfer applies one block node. With report == nil it is the pure
// dataflow transfer; the reporting pass passes a dedup-ing reporter.
func (e *resEngine) transfer(f resFact, n ast.Node, report func(token.Pos, string, ...any)) resFact {
	// Deferred releases: only the direct `defer release(v)` form counts
	// (a release inside a deferred closure marks v escaped instead).
	if d, ok := n.(*ast.DeferStmt); ok {
		if v := e.releasesTracked(d.Call); v != nil {
			st := f[v]
			if report != nil && st&resDeferred != 0 && !e.pass.IgnoredAt(e.tracked[v]) {
				report(d.Pos(), "release of %q is deferred again while a deferred release is already registered (defer in a loop releases the same %s twice)",
					v.Name(), e.spec.noun)
			}
			f[v] = st | resDeferred
		}
		return f
	}

	flow.Inspect(n, func(m ast.Node) bool {
		switch node := m.(type) {
		case *ast.AssignStmt:
			if v := e.spec.acquire(e.pass, node); v != nil {
				if _, ok := e.tracked[v]; ok {
					st := f[v]
					// A deferred release covers the previous value (the
					// acquire-and-defer-in-a-loop idiom is clean); only a
					// live, undeferred previous value leaks here.
					if report != nil && st&resLive != 0 && st&resDeferred == 0 && !e.pass.IgnoredAt(e.tracked[v]) {
						report(node.Pos(), "%q is re-acquired while still holding an unreleased %s (previous value leaks)",
							v.Name(), e.spec.noun)
					}
					// A fresh resource: prior releases and defers covered
					// the previous value, not this one.
					f[v] = resLive
					return false
				}
			}
		case *ast.CallExpr:
			if v := e.releasesTracked(node); v != nil {
				st := f[v]
				if report != nil && st&resReleased != 0 && !e.pass.IgnoredAt(e.tracked[v]) {
					if st&resLive == 0 {
						report(node.Pos(), "%q is released twice (%s already called on every path reaching here)", v.Name(), e.spec.releaseVerb)
					} else {
						report(node.Pos(), "%q may already be released on some path reaching this %s call", v.Name(), e.spec.releaseVerb)
					}
				}
				f[v] = (st &^ resLive) | resReleased
				return false
			}
		case *ast.Ident:
			if v, ok := e.pass.ObjectOf(node).(*types.Var); ok {
				if _, tracked := e.tracked[v]; tracked {
					st := f[v]
					if report != nil && st&resReleased != 0 && st&resLive == 0 && !e.pass.IgnoredAt(e.tracked[v]) {
						report(node.Pos(), "use of %s %q after release", e.spec.noun, v.Name())
					}
				}
			}
		}
		return true
	})
	return f
}

// scanEscapes marks tracked variables whose ownership leaves this unit.
// Element reads (buf[i]) and synchronous borrows (the variable as a call
// argument when the spec says arguments don't escape) are NOT transfers;
// assigning, returning, sending, capturing in a literal, launching a
// goroutine with it, or deferring a non-release call over it are.
func (e *resEngine) scanEscapes(n ast.Node) {
	flow.Inspect(n, func(m ast.Node) bool {
		switch node := m.(type) {
		case *ast.AssignStmt:
			// The acquire itself is not an escape; any other assignment
			// with the variable's value on the right-hand side moves
			// ownership (aliasing, storing in a field/map/slice element).
			if e.spec.acquire(e.pass, node) != nil {
				return false
			}
			for _, rhs := range node.Rhs {
				e.markEscapesIn(rhs)
			}
			return false
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				e.markEscapesIn(res)
			}
			return false
		case *ast.SendStmt:
			e.markEscapesIn(node.Value)
			return false
		case *ast.FuncLit:
			e.markAllIn(node)
			return false
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				e.markEscapesIn(node.X)
			}
		case *ast.GoStmt:
			// The goroutine runs on its own schedule: captures and bare
			// arguments both escape.
			e.markEscapesIn(node.Call.Fun)
			for _, arg := range node.Call.Args {
				e.markEscapesIn(arg)
			}
			return false
		case *ast.DeferStmt:
			if e.releasesTracked(node.Call) == nil {
				e.markEscapesIn(node.Call.Fun)
				for _, arg := range node.Call.Args {
					e.markEscapesIn(arg)
				}
			}
			return false
		case *ast.CallExpr:
			e.markEscapesIn(node)
			return false
		}
		return true
	})
}

// markEscapesIn marks tracked variables whose VALUE flows out through
// the expression subtree. Occurrences as an index-expression base
// (element read/write), inside len/cap, or as a borrowed call argument
// (when !spec.argEscapes) do not count; everything else does.
func (e *resEngine) markEscapesIn(n ast.Node) {
	if n == nil || isNilExpr(n) {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch node := m.(type) {
		case *ast.CallExpr:
			if e.releasesTracked(node) != nil {
				return false // releasing is not escaping
			}
			if id, ok := node.Fun.(*ast.Ident); ok {
				if b, ok := e.pass.ObjectOf(id).(*types.Builtin); ok {
					switch b.Name() {
					case "len", "cap":
						return false
					case "append":
						// append(s, buf) stores the slice value; walk the
						// arguments in value context (element spreads
						// still hit the Ident case — conservative).
						return true
					default:
						// copy, clear, min, max...: synchronous borrows.
						for _, a := range node.Args {
							e.markBorrowedArg(a)
						}
						return false
					}
				}
			}
			e.markEscapesIn(node.Fun)
			for _, a := range node.Args {
				if e.spec.argEscapes {
					e.markEscapesIn(a)
				} else {
					e.markBorrowedArg(a)
				}
			}
			return false
		case *ast.IndexExpr:
			// buf[i]: an element, not the slice value.
			if id, ok := node.X.(*ast.Ident); ok && e.isTracked(id) {
				e.markEscapesIn(node.Index)
				return false
			}
		case *ast.FuncLit:
			e.markAllIn(node)
			return false
		case *ast.Ident:
			e.mark(node)
		}
		return true
	})
}

// markBorrowedArg walks a call argument under borrow semantics: a bare
// tracked variable (or a re-slice of one) is lent to the callee for the
// duration of the call and stays owned here; anything nested deeper is
// walked with the usual value rules.
func (e *resEngine) markBorrowedArg(a ast.Expr) {
	switch arg := a.(type) {
	case *ast.Ident:
		// Borrowed for the call; still owned here.
	case *ast.SliceExpr:
		e.markEscapesIn(arg.Low)
		e.markEscapesIn(arg.High)
		e.markEscapesIn(arg.Max)
		if _, ok := arg.X.(*ast.Ident); !ok {
			e.markEscapesIn(arg.X)
		}
	default:
		e.markEscapesIn(a)
	}
}

// markAllIn marks every tracked variable mentioned in the subtree — the
// rule for function-literal captures, where even an element read may
// happen after this unit returns.
func (e *resEngine) markAllIn(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			e.mark(id)
		}
		return true
	})
}

func (e *resEngine) isTracked(id *ast.Ident) bool {
	v, ok := e.pass.ObjectOf(id).(*types.Var)
	if !ok {
		return false
	}
	_, tr := e.tracked[v]
	return tr
}

func (e *resEngine) mark(id *ast.Ident) {
	if v, ok := e.pass.ObjectOf(id).(*types.Var); ok {
		if _, tracked := e.tracked[v]; tracked {
			if e.escapes == nil {
				e.escapes = map[*types.Var]bool{}
			}
			e.escapes[v] = true
		}
	}
}

func (e *resEngine) escaped(v *types.Var) bool { return e.escapes[v] }

func isNilExpr(n ast.Node) bool {
	e, ok := n.(ast.Expr)
	return ok && e == nil
}

// leakPos picks the position to report a leak at: the block's return
// statement when it ends in one, otherwise its last node, otherwise the
// acquisition site.
func (e *resEngine) leakPos(blk *flow.Block, v *types.Var) token.Pos {
	for i := len(blk.Nodes) - 1; i >= 0; i-- {
		if r, ok := blk.Nodes[i].(*ast.ReturnStmt); ok {
			return r.Pos()
		}
	}
	if len(blk.Nodes) > 0 {
		return blk.Nodes[len(blk.Nodes)-1].Pos()
	}
	return e.tracked[v]
}

func filepathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			return p[i+1:]
		}
	}
	return p
}
