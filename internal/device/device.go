// Package device models the edge hardware of the paper's evaluation
// (Table 2): an NVIDIA Jetson TX2-class SoC with a GPU and a CPU sharing
// DRAM, plus the PROMISE analog accelerator on chip. The paper measured
// time and energy on real silicon; this reproduction replaces the silicon
// with an analytical roofline-style model driven by the same per-operator
// compute/memory operation counts (Nc, Nm) and per-knob reduction factors
// (Rc, Rm) that the paper's own performance predictor uses (§3.4), so the
// relative ordering of configurations — the thing the tuner consumes — is
// preserved. DVFS (the 12 GPU frequency steps of §6.4) and the GPU/DDR/SYS
// power rails of Fig. 5 are modeled so that the runtime-adaptation
// experiments exercise the identical control path.
package device

import (
	"fmt"
	"math"

	"repro/internal/approx"
	"repro/internal/graph"
	"repro/internal/promise"
	"repro/internal/tensorops"
)

// Unit identifies a compute unit on the SoC.
type Unit int

const (
	GPU Unit = iota
	CPU
)

func (u Unit) String() string {
	if u == CPU {
		return "cpu"
	}
	return "gpu"
}

// Freqs is the GPU DVFS ladder used by the runtime experiments: 12
// frequencies from 1.3 GHz down to 319 MHz (§6.4), in MHz.
var Freqs = []float64{1300, 1224, 1134, 1032, 930, 828, 726, 675, 586, 497, 420, 319}

// Device is a simulated compute unit with a performance and power model.
type Device struct {
	Unit Unit
	Name string

	// Peak throughput at nominal frequency.
	computeOPS float64 // scalar float ops per second
	memOPS     float64 // tensor-element loads/stores per second
	launchOver float64 // fixed per-operator overhead, seconds

	// FP16 support: the TX2's GPU executes half precision at double rate;
	// its ARM CPU has no FP16 pipeline (§7.1), so FP16 knobs are
	// unsupported there and the FP32 tradeoff curve must be used.
	hasFP16 bool

	// Power model (watts).
	unitLeakW  float64 // leakage of this unit
	unitDynW   float64 // dynamic power at nominal frequency, full load
	ddrW       float64 // DRAM rail (frequency held constant, §7.5)
	sysBaseW   float64 // rest-of-board
	promiseOn  bool    // PROMISE present on this SoC
	freqMHz    float64
	nominalMHz float64
}

// NewTX2GPU returns the Jetson TX2 GPU model (256 CUDA cores, 1.12–1.3 GHz).
func NewTX2GPU() *Device {
	return &Device{
		Unit:       GPU,
		Name:       "tegra-tx2-gpu",
		computeOPS: 6.65e11, // ~665 GFLOP/s FP32 peak
		memOPS:     1.5e10,  // ~60 GB/s LPDDR4 over 4-byte elements
		launchOver: 1.5e-6,
		hasFP16:    true,
		unitLeakW:  0.5,
		unitDynW:   6.5,
		ddrW:       1.7,
		sysBaseW:   4.0,
		promiseOn:  true,
		freqMHz:    1300,
		nominalMHz: 1300,
	}
}

// NewTX2CPU returns the TX2 CPU model (6 ARM cores, no FP16 pipeline).
func NewTX2CPU() *Device {
	return &Device{
		Unit:       CPU,
		Name:       "tegra-tx2-cpu",
		computeOPS: 4.8e10, // ~48 GFLOP/s vectorized
		memOPS:     8e9,
		launchOver: 0.5e-6,
		hasFP16:    false,
		unitLeakW:  0.3,
		unitDynW:   3.5,
		ddrW:       1.7,
		sysBaseW:   4.0,
		promiseOn:  true,
		freqMHz:    2000,
		nominalMHz: 2000,
	}
}

// SupportsKnob reports whether the device can execute a knob at all: FP16
// variants require FP16 hardware; PROMISE knobs require the accelerator.
func (d *Device) SupportsKnob(id approx.KnobID) bool {
	return d.Supports(approx.MustLookup(id))
}

// Supports is the value-based form of SupportsKnob, usable on knob values
// under validation that may not be registered.
func (d *Device) Supports(k approx.Knob) bool {
	if k.Kind == approx.KindPromise {
		return d.promiseOn
	}
	if k.Prec == tensorops.FP16 && !d.hasFP16 {
		return false
	}
	return true
}

// SetFrequencyMHz moves the device to the given DVFS step. The frequency
// must be one of Freqs for the GPU; other values are accepted for
// experimentation but must be positive.
func (d *Device) SetFrequencyMHz(f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("device: bad frequency %v", f))
	}
	d.freqMHz = f
}

// FrequencyMHz returns the current DVFS frequency.
func (d *Device) FrequencyMHz() float64 { return d.freqMHz }

// freqScale is the compute-throughput derating at the current frequency.
func (d *Device) freqScale() float64 { return d.freqMHz / d.nominalMHz }

// NodeTime returns the modeled execution time in seconds of one node under
// a knob. Compute throughput scales with DVFS frequency; memory bandwidth
// does not (DDR frequency is held constant, §7.5), which reproduces the
// sub-linear slowdowns of Fig. 6.
func (d *Device) NodeTime(c graph.NodeCost, id approx.KnobID) float64 {
	k := approx.MustLookup(id)
	if k.Kind == approx.KindPromise {
		// Offloaded to the analog accelerator; its latency does not change
		// with the host GPU's DVFS state.
		base := c.Nc/d.computeOPS + c.Nm/d.memOPS + d.launchOver
		return base / promise.ThroughputGain(k.Level)
	}
	rc, rm := approx.CostFactors(id)
	comp := d.computeOPS * d.freqScale()
	if k.Prec == tensorops.FP16 && d.hasFP16 {
		comp *= 2 // double-rate half precision
	}
	if k.Kind == approx.KindInt8 {
		comp *= 2 // packed 8-bit dot products (dp4a-style)
	}
	return c.Nc/rc/comp + c.Nm/rm/d.memOPS + d.launchOver
}

// Time returns the modeled execution time of a whole program (one
// invocation over the batch the costs were computed for) under cfg.
func (d *Device) Time(costs []graph.NodeCost, cfg approx.Config) float64 {
	var t float64
	for _, c := range costs {
		//lint:ignore floateq analytic cost rows are exactly zero for free ops (input, flatten)
		if c.Nc == 0 && c.Nm == 0 {
			continue
		}
		t += d.NodeTime(c, cfg.Knob(c.ID))
	}
	return t
}

// NodeEnergy returns the modeled energy in joules of one node under a
// knob: unit dynamic+leakage power over the op's runtime, plus a per-element
// DRAM access energy for the op's (knob-reduced) memory traffic.
func (d *Device) NodeEnergy(c graph.NodeCost, id approx.KnobID) float64 {
	k := approx.MustLookup(id)
	t := d.NodeTime(c, id)
	if k.Kind == approx.KindPromise {
		// Energy advantage of the analog array over digital execution.
		baseT := c.Nc/d.computeOPS + c.Nm/d.memOPS + d.launchOver
		baseE := (d.unitLeakW+d.unitDynW)*baseT + dramEnergy(c.Nm)
		return baseE / promise.EnergyReduction(k.Level)
	}
	_, rm := approx.CostFactors(id)
	return d.unitPower()*t + dramEnergy(c.Nm/rm)
}

// Energy returns the modeled energy of a whole invocation under cfg,
// including the static board power over the invocation's runtime.
func (d *Device) Energy(costs []graph.NodeCost, cfg approx.Config) float64 {
	var e float64
	for _, c := range costs {
		//lint:ignore floateq analytic cost rows are exactly zero for free ops (input, flatten)
		if c.Nc == 0 && c.Nm == 0 {
			continue
		}
		e += d.NodeEnergy(c, cfg.Knob(c.ID))
	}
	e += (d.ddrW*0.3 + d.sysBaseW) * d.Time(costs, cfg) // static rails
	return e
}

// dramEnergy charges ~20 pJ per 4-byte element moved, a typical LPDDR4
// figure.
func dramEnergy(elems float64) float64 { return 20e-12 * elems }

// unitPower is the unit's power draw while busy at the current frequency.
// Dynamic power scales ≈ f·V² ≈ f^2 over the DVFS range.
func (d *Device) unitPower() float64 {
	s := d.freqScale()
	return d.unitLeakW + d.unitDynW*math.Pow(s, 2.0)
}

// Rails reports the instantaneous busy-state power of the GPU/CPU, DDR and
// whole-system rails at the current frequency — the quantities plotted in
// Fig. 5.
func (d *Device) Rails() (unitW, ddrW, sysW float64) {
	unitW = d.unitPower()
	ddrW = d.ddrW
	sysW = unitW + ddrW + d.sysBaseW
	return
}
