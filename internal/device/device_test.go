package device

import (
	"math"
	"testing"

	"repro/internal/approx"
	"repro/internal/graph"
	"repro/internal/tensorops"
)

func sampleCosts() []graph.NodeCost {
	return []graph.NodeCost{
		{ID: 0},                     // input, free
		{ID: 1, Nc: 2e8, Nm: 4e6},   // conv-like: compute heavy
		{ID: 2, Nc: 1e6, Nm: 2e6},   // pool-like
		{ID: 3, Nc: 2e7, Nm: 1.2e7}, // fc-like
	}
}

func TestBaselineTimePositive(t *testing.T) {
	d := NewTX2GPU()
	tt := d.Time(sampleCosts(), nil)
	if tt <= 0 {
		t.Fatalf("Time = %v", tt)
	}
}

func TestFP16FasterOnGPUNotCPU(t *testing.T) {
	costs := sampleCosts()
	cfg := approx.Config{1: approx.KnobFP16, 2: approx.KnobFP16, 3: approx.KnobFP16}
	gpu := NewTX2GPU()
	if sp := gpu.Time(costs, nil) / gpu.Time(costs, cfg); sp <= 1.2 {
		t.Errorf("GPU FP16 speedup = %.2f, want > 1.2 (paper: ~1.63x)", sp)
	}
	cpu := NewTX2CPU()
	if !cpu.SupportsKnob(approx.KnobFP16) {
		// expected: the ARM CPU has no FP16 pipeline
	} else {
		t.Error("CPU should not support FP16 knobs")
	}
	if !cpu.SupportsKnob(approx.KnobFP32) {
		t.Error("CPU must support the baseline")
	}
	if !gpu.SupportsKnob(approx.KnobFP16) {
		t.Error("GPU must support FP16")
	}
}

func TestPerforationReducesTime(t *testing.T) {
	costs := sampleCosts()
	d := NewTX2GPU()
	base := d.Time(costs, nil)
	perf := approx.Config{1: approx.PerforationKnob(tensorops.PerfRows, 2, 0, tensorops.FP32)}
	tp := d.Time(costs, perf)
	if tp >= base {
		t.Errorf("perforation should cut time: %v -> %v", base, tp)
	}
	// stride 2 (skip half) beats stride 4 (skip quarter)
	perf4 := approx.Config{1: approx.PerforationKnob(tensorops.PerfRows, 4, 0, tensorops.FP32)}
	if d.Time(costs, perf4) <= tp {
		t.Error("lighter perforation should be slower than heavier perforation")
	}
}

func TestPromiseTimeAndEnergy(t *testing.T) {
	costs := sampleCosts()
	d := NewTX2GPU()
	base := d.Time(costs, nil)
	baseE := d.Energy(costs, nil)
	cfg := approx.Config{1: approx.PromiseKnob(1), 3: approx.PromiseKnob(1)}
	if tp := d.Time(costs, cfg); tp >= base {
		t.Errorf("PROMISE offload should speed up: %v -> %v", base, tp)
	}
	ep := d.Energy(costs, cfg)
	if ep >= baseE {
		t.Errorf("PROMISE should cut energy: %v -> %v", baseE, ep)
	}
	// Lower voltage saves more energy.
	e7 := d.Energy(costs, approx.Config{1: approx.PromiseKnob(7), 3: approx.PromiseKnob(7)})
	if ep >= e7 {
		t.Errorf("P1 energy (%v) should be below P7 energy (%v)", ep, e7)
	}
}

func TestDVFSSlowdownSublinear(t *testing.T) {
	costs := sampleCosts()
	d := NewTX2GPU()
	base := d.Time(costs, nil)
	d.SetFrequencyMHz(Freqs[len(Freqs)-1]) // 319 MHz
	slow := d.Time(costs, nil)
	ratio := slow / base
	freqRatio := Freqs[0] / Freqs[len(Freqs)-1] // ~4.08
	if ratio <= 1.3 {
		t.Errorf("319 MHz should slow down >1.3x, got %.2f", ratio)
	}
	if ratio >= freqRatio {
		t.Errorf("slowdown %.2f should be sublinear vs frequency ratio %.2f (memory does not scale)", ratio, freqRatio)
	}
}

func TestDVFSMonotone(t *testing.T) {
	costs := sampleCosts()
	d := NewTX2GPU()
	prev := 0.0
	for _, f := range Freqs {
		d.SetFrequencyMHz(f)
		tt := d.Time(costs, nil)
		if prev != 0 && tt < prev {
			t.Fatalf("time must grow as frequency drops: %v at %v MHz", tt, f)
		}
		prev = tt
	}
}

func TestPowerRailsMatchFig5Shape(t *testing.T) {
	d := NewTX2GPU()
	d.SetFrequencyMHz(1300)
	gHi, ddrHi, sysHi := d.Rails()
	d.SetFrequencyMHz(319)
	gLo, ddrLo, sysLo := d.Rails()
	gpuRatio := gHi / gLo
	sysRatio := sysHi / sysLo
	if gpuRatio < 4 || gpuRatio > 11 {
		t.Errorf("GPU power ratio 1300→319 MHz = %.2f, want ~7 (Fig. 5)", gpuRatio)
	}
	if sysRatio < 1.5 || sysRatio > 2.4 {
		t.Errorf("SYS power ratio = %.2f, want ~1.9 (Fig. 5)", sysRatio)
	}
	if math.Abs(ddrHi-ddrLo) > 0.2 {
		t.Errorf("DDR power should be nearly flat: %v vs %v", ddrHi, ddrLo)
	}
}

func TestEnergyReductionTracksSpeedupLoosely(t *testing.T) {
	costs := sampleCosts()
	d := NewTX2GPU()
	cfg := approx.Config{
		1: approx.SamplingKnob(2, 0, tensorops.FP16),
		3: approx.KnobFP16,
	}
	speedup := d.Time(costs, nil) / d.Time(costs, cfg)
	ered := d.Energy(costs, nil) / d.Energy(costs, cfg)
	if ered <= 1 {
		t.Fatalf("energy reduction %v should exceed 1", ered)
	}
	if ered > speedup*1.5 || ered < speedup/2 {
		t.Errorf("energy reduction %.2f should be of the same order as speedup %.2f", ered, speedup)
	}
}

func TestSetFrequencyValidation(t *testing.T) {
	d := NewTX2GPU()
	defer func() {
		if recover() == nil {
			t.Fatal("negative frequency should panic")
		}
	}()
	d.SetFrequencyMHz(-1)
}

func TestCPUSlowerThanGPU(t *testing.T) {
	costs := sampleCosts()
	g, c := NewTX2GPU(), NewTX2CPU()
	if g.Time(costs, nil) >= c.Time(costs, nil) {
		t.Error("GPU should outrun CPU on tensor workloads")
	}
}

func TestPromiseLatencyIndependentOfDVFS(t *testing.T) {
	costs := sampleCosts()
	d := NewTX2GPU()
	cfg := approx.Config{1: approx.PromiseKnob(4)}
	d.SetFrequencyMHz(1300)
	t1 := d.NodeTime(costs[1], cfg.Knob(1))
	d.SetFrequencyMHz(319)
	t2 := d.NodeTime(costs[1], cfg.Knob(1))
	if t1 != t2 {
		t.Errorf("PROMISE op time should not change with GPU DVFS: %v vs %v", t1, t2)
	}
}
