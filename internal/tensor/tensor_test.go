package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Elems() != 24 {
		t.Fatalf("Elems = %d, want 24", x.Elems())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestFromSliceAndAt(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := x.At(0, 0); got != 1 {
		t.Errorf("At(0,0) = %v, want 1", got)
	}
	if got := x.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %v, want 6", got)
	}
	x.Set(42, 1, 0)
	if got := x.At(1, 0); got != 42 {
		t.Errorf("after Set, At(1,0) = %v, want 42", got)
	}
}

func TestFromSliceSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestScalar(t *testing.T) {
	s := Scalar(3.5)
	if s.Rank() != 0 || s.Elems() != 1 || s.Data()[0] != 3.5 {
		t.Fatalf("Scalar misbehaves: rank=%d elems=%d v=%v", s.Rank(), s.Elems(), s.Data()[0])
	}
}

func TestCloneIndependence(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data()[0] = 99
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Data()[3] = 9
	if x.At(1, 1) != 9 {
		t.Fatal("Reshape should be a view over the same data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic reshaping to wrong size")
		}
	}()
	x.Reshape(3)
}

func TestAddSubScale(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := FromSlice([]float32{10, 20, 30}, 3)
	x.Add(y)
	want := []float32{11, 22, 33}
	for i, v := range x.Data() {
		if v != want[i] {
			t.Fatalf("Add: elem %d = %v, want %v", i, v, want[i])
		}
	}
	x.Sub(y)
	for i, v := range x.Data() {
		if v != float32(i+1) {
			t.Fatalf("Sub: elem %d = %v, want %v", i, v, i+1)
		}
	}
	x.Scale(2)
	for i, v := range x.Data() {
		if v != float32(2*(i+1)) {
			t.Fatalf("Scale: elem %d = %v", i, v)
		}
	}
}

func TestAddScaledMatchesManual(t *testing.T) {
	x := FromSlice([]float32{1, 1, 1}, 3)
	d := FromSlice([]float32{2, 4, 6}, 3)
	x.AddScaled(0.5, d)
	want := []float32{2, 3, 4}
	for i, v := range x.Data() {
		if v != want[i] {
			t.Fatalf("AddScaled: elem %d = %v, want %v", i, v, want[i])
		}
	}
}

func TestDiff(t *testing.T) {
	a := FromSlice([]float32{5, 7}, 2)
	b := FromSlice([]float32{2, 3}, 2)
	d := Diff(a, b)
	if d.Data()[0] != 3 || d.Data()[1] != 4 {
		t.Fatalf("Diff = %v", d.Data())
	}
	// a and b untouched
	if a.Data()[0] != 5 || b.Data()[0] != 2 {
		t.Fatal("Diff mutated its inputs")
	}
}

func TestNormsAndMSE(t *testing.T) {
	x := FromSlice([]float32{3, -4}, 2)
	if got := x.L1Norm(); got != 7 {
		t.Errorf("L1Norm = %v, want 7", got)
	}
	if got := x.L2Norm(); math.Abs(got-5) > 1e-9 {
		t.Errorf("L2Norm = %v, want 5", got)
	}
	y := FromSlice([]float32{0, 0}, 2)
	if got := MSE(x, y); math.Abs(got-12.5) > 1e-9 {
		t.Errorf("MSE = %v, want 12.5", got)
	}
	if got := MaxAbsDiff(x, y); got != 4 {
		t.Errorf("MaxAbsDiff = %v, want 4", got)
	}
}

func TestArgMax(t *testing.T) {
	x := FromSlice([]float32{1, 5, 3, 5}, 4)
	if got := x.ArgMax(); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of ties)", got)
	}
}

func TestRowArgMax(t *testing.T) {
	x := FromSlice([]float32{
		0, 9, 1,
		7, 2, 3,
	}, 2, 3)
	got := x.RowArgMax()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("RowArgMax = %v, want [1 0]", got)
	}
}

func TestEqualToleranceAndShape(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1.0005, 2}, 2)
	if !Equal(a, b, 1e-3) {
		t.Error("tensors should be equal within tolerance")
	}
	if Equal(a, b, 1e-6) {
		t.Error("tensors should differ at tight tolerance")
	}
	c := FromSlice([]float32{1, 2}, 1, 2)
	if Equal(a, c, 1) {
		t.Error("different shapes must not compare equal")
	}
}

func TestShapeOffsetRowMajor(t *testing.T) {
	s := NewShape(2, 3, 4)
	if got := s.Offset(1, 2, 3); got != 23 {
		t.Errorf("Offset(1,2,3) = %d, want 23", got)
	}
	if got := s.Offset(0, 0, 0); got != 0 {
		t.Errorf("Offset(0,0,0) = %d, want 0", got)
	}
}

func TestShapeOffsetBoundsPanics(t *testing.T) {
	s := NewShape(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	s.Offset(2, 0)
}

func TestConvOutDim(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{32, 3, 1, 1, 32},
		{32, 3, 2, 1, 16},
		{28, 5, 1, 0, 24},
		{224, 11, 4, 2, 55},
	}
	for _, c := range cases {
		if got := ConvOutDim(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutDim(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

// Property: shape Offset is a bijection onto [0, Elems).
func TestShapeOffsetBijection(t *testing.T) {
	s := NewShape(3, 4, 5)
	seen := make(map[int]bool)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 5; k++ {
				off := s.Offset(i, j, k)
				if off < 0 || off >= s.Elems() {
					t.Fatalf("offset %d out of range", off)
				}
				if seen[off] {
					t.Fatalf("offset %d hit twice", off)
				}
				seen[off] = true
			}
		}
	}
	if len(seen) != s.Elems() {
		t.Fatalf("covered %d offsets, want %d", len(seen), s.Elems())
	}
}

// --- FP16 properties ---

func TestFP16KnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                 // max half
		{float32(math.Inf(1)), 0x7c00},  // +inf
		{float32(math.Inf(-1)), 0xfc00}, // -inf
		{5.9604645e-8, 0x0001},          // min subnormal half
	}
	for _, c := range cases {
		if got := F32ToF16(c.f); got != c.h {
			t.Errorf("F32ToF16(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
		if back := F16ToF32(c.h); back != c.f {
			t.Errorf("F16ToF32(%#04x) = %v, want %v", c.h, back, c.f)
		}
	}
}

func TestFP16Overflow(t *testing.T) {
	if got := F32ToF16(70000); got != 0x7c00 {
		t.Errorf("70000 should overflow to +inf, got %#04x", got)
	}
	if got := F32ToF16(-70000); got != 0xfc00 {
		t.Errorf("-70000 should overflow to -inf, got %#04x", got)
	}
}

func TestFP16NaN(t *testing.T) {
	h := F32ToF16(float32(math.NaN()))
	if h&0x7c00 != 0x7c00 || h&0x3ff == 0 {
		t.Errorf("NaN not preserved: %#04x", h)
	}
	if !math.IsNaN(float64(F16ToF32(h))) {
		t.Error("round-tripped NaN is not NaN")
	}
}

// Property: quantization is idempotent — a value already representable in
// half precision round-trips exactly.
func TestFP16Idempotent(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) {
			return true
		}
		once := QuantizeFP16(x)
		twice := QuantizeFP16(once)
		return once == twice || (math.IsNaN(float64(once)) && math.IsNaN(float64(twice)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: for normal-range values, relative quantization error is bounded
// by 2^-11 (half precision has 10 mantissa bits + implicit bit, RNE).
func TestFP16RelativeErrorBound(t *testing.T) {
	f := func(x float32) bool {
		ax := math.Abs(float64(x))
		if math.IsNaN(float64(x)) || ax < 6.2e-5 || ax > 65000 {
			return true // skip subnormal/overflow ranges
		}
		q := QuantizeFP16(x)
		rel := math.Abs(float64(q)-float64(x)) / ax
		return rel <= 1.0/2048.0+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// Property: quantization is monotone non-decreasing.
func TestFP16Monotone(t *testing.T) {
	g := NewRNG(7)
	prevIn := float32(math.Inf(-1))
	_ = prevIn
	for i := 0; i < 2000; i++ {
		a := float32(g.NormFloat64() * 100)
		b := float32(g.NormFloat64() * 100)
		if a > b {
			a, b = b, a
		}
		qa, qb := QuantizeFP16(a), QuantizeFP16(b)
		if qa > qb {
			t.Fatalf("monotonicity violated: q(%v)=%v > q(%v)=%v", a, qa, b, qb)
		}
	}
}

func TestToFP16InPlace(t *testing.T) {
	x := FromSlice([]float32{1.0002441, 3}, 2)
	y := x.CloneFP16()
	if x.Data()[0] != 1.0002441 {
		t.Error("CloneFP16 mutated the original")
	}
	if y.Data()[0] == 1.0002441 {
		t.Error("CloneFP16 did not quantize (value has 24-bit mantissa precision)")
	}
	x.ToFP16()
	if x.Data()[0] != y.Data()[0] {
		t.Error("ToFP16 and CloneFP16 disagree")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	g := NewRNG(1)
	c1 := g.Split(1)
	g2 := NewRNG(1)
	c2 := g2.Split(1)
	for i := 0; i < 50; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("Split with same label/seed must be deterministic")
		}
	}
	g3 := NewRNG(1)
	d1, d2 := g3.Split(1), g3.Split(2)
	if d1.Float64() == d2.Float64() {
		t.Log("note: different labels produced same first value (possible but unlikely)")
	}
}

func TestFillHelpers(t *testing.T) {
	g := NewRNG(5)
	x := New(1000)
	g.FillUniform(x, -1, 1)
	for _, v := range x.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("uniform value %v out of range", v)
		}
	}
	y := New(10000)
	g.FillNormal(y, 0, 1)
	var mean float64
	for _, v := range y.Data() {
		mean += float64(v)
	}
	mean /= float64(y.Elems())
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal fill mean = %v, want ~0", mean)
	}
	z := New(64, 32)
	g.FillXavier(z, 32, 64)
	if z.L2Norm() == 0 {
		t.Error("Xavier fill left tensor zero")
	}
	w := New(64, 32)
	g.FillHe(w, 32)
	if w.L2Norm() == 0 {
		t.Error("He fill left tensor zero")
	}
}
