package tensor

import (
	"math"
	"testing"
)

// quantizeRef is the reference round-trip the QuantizeFP16 fast path must
// reproduce bit for bit: the full conversion pair.
func quantizeRef(v float32) float32 { return F16ToF32(F32ToF16(v)) }

// bitsEqual compares two float32 values as bit patterns so that NaN
// payloads and signed zeros are distinguished.
func bitsEqual(a, b float32) bool {
	return math.Float32bits(a) == math.Float32bits(b)
}

// TestQuantizeFP16MatchesReference sweeps the float32 encoding space with
// a prime stride (hitting every exponent, both signs and ~17M mantissa
// patterns) and checks the fast-path QuantizeFP16 against the reference
// conversion pair bit for bit.
func TestQuantizeFP16MatchesReference(t *testing.T) {
	const stride = 251
	for u := uint64(0); u < 1<<32; u += stride {
		v := math.Float32frombits(uint32(u))
		got := QuantizeFP16(v)
		want := quantizeRef(v)
		if !bitsEqual(got, want) {
			t.Fatalf("QuantizeFP16(%x=%v) = %x, reference %x",
				uint32(u), v, math.Float32bits(got), math.Float32bits(want))
		}
	}
}

// TestQuantizeFP16Boundaries exhausts the mantissa space around every
// boundary the fast path branches on: the subnormal/normal edge (biased
// exponent 112/113), the overflow edge (141/142/143), zeros, infinities
// and NaN.
func TestQuantizeFP16Boundaries(t *testing.T) {
	exps := []uint32{0, 1, 102, 103, 112, 113, 114, 140, 141, 142, 143, 254, 255}
	mants := []uint32{
		0, 1, 0xfff, 0x1000, 0x1001, 0x1fff, 0x2000,
		0x7fe000, 0x7fefff, 0x7ff000, 0x7fffff,
	}
	for _, sign := range []uint32{0, 1 << 31} {
		for _, e := range exps {
			for _, m := range mants {
				u := sign | e<<23 | m
				v := math.Float32frombits(u)
				got := QuantizeFP16(v)
				want := quantizeRef(v)
				if !bitsEqual(got, want) {
					t.Fatalf("QuantizeFP16(%#08x=%v) = %#08x, reference %#08x",
						u, v, math.Float32bits(got), math.Float32bits(want))
				}
			}
		}
	}
}

func TestQuantizeFP16SliceMatchesScalar(t *testing.T) {
	g := NewRNG(9)
	src := make([]float32, 1024)
	for i := range src {
		src[i] = float32(g.NormFloat64() * math.Pow(2, float64(i%40-20)))
	}
	src[0] = float32(math.Inf(1))
	src[1] = float32(math.Inf(-1))
	src[2] = float32(math.NaN())
	src[3] = 0
	dst := make([]float32, len(src))
	QuantizeFP16Slice(dst, src)
	for i, v := range src {
		if want := quantizeRef(v); !bitsEqual(dst[i], want) {
			t.Fatalf("elem %d: got %x, want %x", i, math.Float32bits(dst[i]), math.Float32bits(want))
		}
	}
	// In-place aliasing must work: ToFP16 uses dst == src.
	QuantizeFP16Slice(src, src)
	for i := range src {
		if !bitsEqual(src[i], dst[i]) {
			t.Fatalf("in-place elem %d: %x != %x", i, math.Float32bits(src[i]), math.Float32bits(dst[i]))
		}
	}
}

// TestCacheIdentity pins the MarkCacheable/CacheKey/InvalidateCache
// contract: unmarked tensors are never cacheable, marking is idempotent,
// IDs are unique per tensor, and invalidation advances only the
// generation.
func TestCacheIdentity(t *testing.T) {
	a, b := New(4), New(4)
	if _, _, ok := a.CacheKey(); ok {
		t.Fatal("unmarked tensor reports a cache key")
	}
	a.MarkCacheable()
	id1, gen1, ok := a.CacheKey()
	if !ok || id1 == 0 {
		t.Fatalf("marked tensor has key id=%d ok=%v", id1, ok)
	}
	a.MarkCacheable() // idempotent
	if id2, _, _ := a.CacheKey(); id2 != id1 {
		t.Fatalf("re-marking changed id %d -> %d", id1, id2)
	}
	b.MarkCacheable()
	if idB, _, _ := b.CacheKey(); idB == id1 {
		t.Fatal("two tensors share a cache id")
	}
	a.InvalidateCache()
	id3, gen3, _ := a.CacheKey()
	if id3 != id1 || gen3 != gen1+1 {
		t.Fatalf("invalidate: id %d->%d gen %d->%d", id1, id3, gen1, gen3)
	}
	// Clones and reshaped views must not inherit the identity: their data
	// diverges (clone) or aliases without shared generation tracking
	// (view).
	if _, _, ok := a.Clone().CacheKey(); ok {
		t.Fatal("clone inherited cache identity")
	}
	if _, _, ok := a.Reshape(2, 2).CacheKey(); ok {
		t.Fatal("reshape view inherited cache identity")
	}
}
