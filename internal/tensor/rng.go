package tensor

import (
	"math"
	"math/rand"
)

// RNG is the deterministic random source used across the system. Every
// experiment derives its streams from explicit seeds so results reproduce
// bit-for-bit; there is deliberately no time-based seeding anywhere.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a seeded generator.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Split derives an independent child generator; the label keeps streams for
// different purposes (weights, data, noise) decoupled from call order.
func (g *RNG) Split(label int64) *RNG {
	return NewRNG(g.r.Int63() ^ (label * 0x9e3779b97f4a7c))
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// NormFloat64 returns a standard normal value.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// FillUniform fills t with uniform values in [lo,hi).
func (g *RNG) FillUniform(t *Tensor, lo, hi float32) {
	for i := range t.data {
		t.data[i] = lo + float32(g.r.Float64())*(hi-lo)
	}
}

// FillNormal fills t with N(mean, std^2) values.
func (g *RNG) FillNormal(t *Tensor, mean, std float32) {
	for i := range t.data {
		t.data[i] = mean + float32(g.r.NormFloat64())*std
	}
}

// FillXavier fills a weight tensor with Xavier/Glorot-style initialization
// given fan-in and fan-out; this keeps activations well-scaled through deep
// stacks so randomly-initialized networks still produce informative logits.
func (g *RNG) FillXavier(t *Tensor, fanIn, fanOut int) {
	std := float32(math.Sqrt(2.0 / float64(fanIn+fanOut)))
	g.FillNormal(t, 0, std)
}

// FillHe fills a weight tensor with He initialization (good for ReLU nets).
func (g *RNG) FillHe(t *Tensor, fanIn int) {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	g.FillNormal(t, 0, std)
}
