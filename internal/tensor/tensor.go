// Package tensor provides the dense tensor representation used throughout
// the ApproxTuner reproduction: a float32 buffer with an NCHW-style shape,
// plus the shape algebra, elementwise helpers, deterministic random fills,
// and the simulated IEEE FP16 storage precision that the approximation
// kernels build on.
package tensor

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Tensor is a dense row-major float32 tensor. The canonical layout for
// 4-D activations is NCHW (batch, channels, height, width), matching the
// tensor-operation definitions in ApproxHPVM that the paper builds on.
// A Tensor with an empty shape is a scalar holding one element.
type Tensor struct {
	shape Shape
	data  []float32

	// Pack-cache identity. cacheID is 0 for ordinary tensors; a non-zero
	// value is a process-unique handle assigned by MarkCacheable that
	// derived-operand caches (packed GEMM panels, FP16 quantized copies,
	// sampled filters) key on. cacheGen counts in-place mutations: bumping
	// it via InvalidateCache makes every cached derivation of the old
	// contents unreachable. Pointer identity alone would be unsound — a
	// freed tensor's address can be reused — so the ID is handed out from
	// a monotonic counter and never recycled.
	cacheID  uint64
	cacheGen uint64
}

// nextCacheID hands out process-unique tensor cache identities; 0 is the
// "not cacheable" sentinel, so the counter starts at 1.
var nextCacheID atomic.Uint64

// New allocates a zero-filled tensor of the given shape.
func New(dims ...int) *Tensor {
	s := NewShape(dims...)
	return &Tensor{shape: s, data: make([]float32, s.Elems())}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); len(data) must equal the shape's element count.
func FromSlice(data []float32, dims ...int) *Tensor {
	s := NewShape(dims...)
	if len(data) != s.Elems() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)", len(data), s, s.Elems()))
	}
	return &Tensor{shape: s, data: data}
}

// Scalar returns a 0-d tensor holding v.
func Scalar(v float32) *Tensor {
	return &Tensor{shape: NewShape(), data: []float32{v}}
}

// MarkCacheable assigns t a process-unique cache identity (idempotent)
// and returns t. Only marked tensors participate in derived-operand
// caching: constant weights and long-lived calibration inputs should be
// marked; transient per-execution tensors should not, so they can never
// pollute the cache. Safe for concurrent use.
func (t *Tensor) MarkCacheable() *Tensor {
	if atomic.LoadUint64(&t.cacheID) == 0 {
		id := nextCacheID.Add(1)
		atomic.CompareAndSwapUint64(&t.cacheID, 0, id)
	}
	return t
}

// CacheKey returns t's cache identity and generation. ok is false for
// tensors that were never marked cacheable; callers must then skip the
// cache entirely.
func (t *Tensor) CacheKey() (id, gen uint64, ok bool) {
	id = atomic.LoadUint64(&t.cacheID)
	if id == 0 {
		return 0, 0, false
	}
	return id, atomic.LoadUint64(&t.cacheGen), true
}

// InvalidateCache records an in-place mutation of t's contents by
// advancing its cache generation, so every derivation cached under the
// previous generation becomes unreachable. Callers that mutate a marked
// tensor's Data() must call this afterwards (graph.StandardizeWeights
// does). No-op for unmarked tensors.
func (t *Tensor) InvalidateCache() {
	if atomic.LoadUint64(&t.cacheID) != 0 {
		atomic.AddUint64(&t.cacheGen, 1)
	}
}

// Shape returns the tensor's shape. The returned value must not be mutated.
func (t *Tensor) Shape() Shape { return t.shape }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// Elems returns the number of elements.
func (t *Tensor) Elems() int { return len(t.data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape.Dim(i) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return t.shape.Rank() }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.data[t.shape.Offset(idx...)]
}

// Set assigns the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.data[t.shape.Offset(idx...)] = v
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	return &Tensor{shape: t.shape, data: d}
}

// Reshape returns a view of the same data with a new shape of equal size.
func (t *Tensor) Reshape(dims ...int) *Tensor {
	s := NewShape(dims...)
	if s.Elems() != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), s, s.Elems()))
	}
	return &Tensor{shape: s, data: t.data}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero resets every element to zero.
func (t *Tensor) Zero() { t.Fill(0) }

// Add accumulates o into t elementwise. Shapes must have equal element counts.
func (t *Tensor) Add(o *Tensor) {
	if len(o.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: Add size mismatch %d vs %d", len(t.data), len(o.data)))
	}
	for i, v := range o.data {
		t.data[i] += v
	}
}

// Sub subtracts o from t elementwise.
func (t *Tensor) Sub(o *Tensor) {
	if len(o.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: Sub size mismatch %d vs %d", len(t.data), len(o.data)))
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
}

// Scale multiplies every element by k.
func (t *Tensor) Scale(k float32) {
	for i := range t.data {
		t.data[i] *= k
	}
}

// AddScaled accumulates k*o into t elementwise. This is the primitive the
// Π1 predictor uses to sum ΔT error tensors onto the baseline output.
func (t *Tensor) AddScaled(k float32, o *Tensor) {
	if len(o.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: AddScaled size mismatch %d vs %d", len(t.data), len(o.data)))
	}
	for i, v := range o.data {
		t.data[i] += k * v
	}
}

// Diff returns t - o as a fresh tensor with t's shape.
func Diff(t, o *Tensor) *Tensor {
	if len(o.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: Diff size mismatch %d vs %d", len(t.data), len(o.data)))
	}
	d := make([]float32, len(t.data))
	for i := range d {
		d[i] = t.data[i] - o.data[i]
	}
	return &Tensor{shape: t.shape, data: d}
}

// L1Norm returns the sum of absolute values, the filter-importance measure
// used by filter sampling (Li et al.).
func (t *Tensor) L1Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += math.Abs(float64(v))
	}
	return s
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MSE returns the mean squared error between t and o.
func MSE(t, o *Tensor) float64 {
	if len(o.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: MSE size mismatch %d vs %d", len(t.data), len(o.data)))
	}
	if len(t.data) == 0 {
		return 0
	}
	var s float64
	for i := range t.data {
		d := float64(t.data[i]) - float64(o.data[i])
		s += d * d
	}
	return s / float64(len(t.data))
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func MaxAbsDiff(t, o *Tensor) float64 {
	if len(o.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff size mismatch %d vs %d", len(t.data), len(o.data)))
	}
	var m float64
	for i := range t.data {
		d := math.Abs(float64(t.data[i]) - float64(o.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// Equal reports whether the two tensors have identical shapes and all
// elements within tol of each other.
func Equal(a, b *Tensor, tol float64) bool {
	if !a.shape.Equal(b.shape) {
		return false
	}
	for i := range a.data {
		if math.Abs(float64(a.data[i])-float64(b.data[i])) > tol {
			return false
		}
	}
	return true
}

// ArgMax returns the flat index of the largest element. For ties the
// lowest index wins, making classification deterministic.
func (t *Tensor) ArgMax() int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// RowArgMax treats t as an (n, k) matrix and returns the argmax of each row;
// this converts a batched logit tensor into class predictions.
func (t *Tensor) RowArgMax() []int {
	if t.Rank() < 2 {
		return []int{t.ArgMax()}
	}
	n := t.Dim(0)
	k := t.Elems() / n
	out := make([]int, n)
	for r := 0; r < n; r++ {
		row := t.data[r*k : (r+1)*k]
		best, bi := float32(math.Inf(-1)), 0
		for i, v := range row {
			if v > best {
				best, bi = v, i
			}
		}
		out[r] = bi
	}
	return out
}

// Row returns a view (no copy) of row r of an (n, k) tensor.
func (t *Tensor) Row(r int) []float32 {
	n := t.Dim(0)
	k := t.Elems() / n
	_ = n
	return t.data[r*k : (r+1)*k]
}

func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}
