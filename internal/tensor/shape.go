package tensor

import (
	"fmt"
	"strings"
)

// Shape describes the dimensions of a tensor. It is an immutable value;
// functions returning a Shape always return a fresh copy.
type Shape struct {
	dims []int
}

// NewShape builds a shape from dimension sizes. Every dimension must be
// positive; a shape with no dimensions denotes a scalar.
func NewShape(dims ...int) Shape {
	d := make([]int, len(dims))
	for i, v := range dims {
		if v <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d at axis %d", v, i))
		}
		d[i] = v
	}
	return Shape{dims: d}
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s.dims) }

// Dim returns the size of dimension i.
func (s Shape) Dim(i int) int { return s.dims[i] }

// Dims returns a copy of the dimension sizes.
func (s Shape) Dims() []int {
	d := make([]int, len(s.dims))
	copy(d, s.dims)
	return d
}

// Elems returns the total element count (1 for a scalar).
func (s Shape) Elems() int {
	n := 1
	for _, d := range s.dims {
		n *= d
	}
	return n
}

// Offset converts a multi-index to a flat row-major offset.
func (s Shape) Offset(idx ...int) int {
	if len(idx) != len(s.dims) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape rank %d", len(idx), len(s.dims)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= s.dims[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) at axis %d", x, s.dims[i], i))
		}
		off = off*s.dims[i] + x
	}
	return off
}

// Equal reports whether the two shapes have identical dimensions.
func (s Shape) Equal(o Shape) bool {
	if len(s.dims) != len(o.dims) {
		return false
	}
	for i := range s.dims {
		if s.dims[i] != o.dims[i] {
			return false
		}
	}
	return true
}

func (s Shape) String() string {
	parts := make([]string, len(s.dims))
	for i, d := range s.dims {
		parts[i] = fmt.Sprint(d)
	}
	return "(" + strings.Join(parts, "x") + ")"
}

// ConvOutDim returns the output spatial size of a convolution or pooling
// window: floor((in + 2*pad - kernel)/stride) + 1.
func ConvOutDim(in, kernel, stride, pad int) int {
	out := (in+2*pad-kernel)/stride + 1
	if out <= 0 {
		panic(fmt.Sprintf("tensor: conv output dim %d not positive (in=%d kernel=%d stride=%d pad=%d)", out, in, kernel, stride, pad))
	}
	return out
}
