package tensor

import "math"

// IEEE 754 binary16 ("FP16") conversion. The paper's tensor library stores
// operands in half precision when an FP16 knob is selected; on our simulated
// devices the semantic effect is the round-trip float32 -> float16 -> float32
// quantization implemented here, which is hardware-independent exactly as
// §2.3 of the paper requires. Conversion uses round-to-nearest-even and
// handles subnormals, infinities and NaN.

// F32ToF16 converts a float32 to its IEEE binary16 bit pattern.
func F32ToF16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23) & 0xff
	mant := bits & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if mant != 0 {
			// NaN: keep a non-zero mantissa (quiet bit set).
			return sign | 0x7e00
		}
		return sign | 0x7c00
	case exp > 142: // overflow (unbiased exp > 15): round to infinity
		return sign | 0x7c00
	case exp < 103: // underflows to zero even as subnormal (unbiased < -24)
		return sign
	case exp < 113: // subnormal half
		// Shift mantissa (with implicit leading 1) right so the exponent
		// becomes the minimum; round to nearest even.
		mant |= 0x800000
		shift := uint32(126 - exp) // 14..23
		half := uint32(1) << (shift - 1)
		rounded := mant + half
		// Round-to-nearest-even: if we were exactly halfway, clear LSB.
		if mant&((half<<1)-1) == half {
			rounded = mant + half - 1 + (mant>>shift)&1
		}
		return sign | uint16(rounded>>shift)
	default: // normal half
		hExp := uint32(exp - 112) // rebias 127 -> 15
		// Round mantissa from 23 to 10 bits, nearest even.
		rounded := mant + 0xfff + (mant>>13)&1
		if rounded&0x800000 != 0 {
			// Mantissa rounded up past 1.0: bump exponent.
			rounded = 0
			hExp++
			if hExp >= 31 {
				return sign | 0x7c00
			}
		}
		return sign | uint16(hExp<<10) | uint16(rounded>>13)
	}
}

// F16ToF32 converts an IEEE binary16 bit pattern to float32.
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h & 0x3ff)

	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal half: normalize.
		e := uint32(113)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | (e << 23) | (mant << 13))
	case exp == 0x1f:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7f800000)
		}
		return math.Float32frombits(sign | 0x7fc00000 | (mant << 13))
	default:
		return math.Float32frombits(sign | ((exp + 112) << 23) | (mant << 13))
	}
}

// QuantizeFP16 rounds v through half precision. Values whose biased
// float32 exponent lies in [113,141] — normal halves whose mantissa
// rounding cannot overflow past the largest finite half — take a pure
// bit-manipulation fast path: adding 0xfff plus the round-to-even tie bit
// and clearing the low 13 mantissa bits performs exactly the
// round-to-nearest-even of F32ToF16, with a mantissa carry propagating
// into the exponent field precisely when rounding bumps the binade.
// Everything else (zeros, subnormal halves, overflow candidates at
// exponent 142, Inf, NaN) goes through the reference conversion pair, so
// the result is bit-identical to F16ToF32(F32ToF16(v)) for every input
// (fp16_test.go sweeps the encoding space to pin this).
func QuantizeFP16(v float32) float32 {
	bits := math.Float32bits(v)
	if e := (bits >> 23) & 0xff; e-113 < 29 {
		r := bits + 0xfff + ((bits >> 13) & 1)
		return math.Float32frombits(r &^ 0x1fff)
	}
	return F16ToF32(F32ToF16(v))
}

// QuantizeFP16Slice quantizes src through half precision into dst
// (dst and src may be the same slice). It is the bulk entry point the
// kernel paths use; len(dst) must be at least len(src).
func QuantizeFP16Slice(dst, src []float32) {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = QuantizeFP16(v)
	}
}

// ToFP16 quantizes every element of t through half precision in place and
// returns t. Approximate kernels call this on inputs, weights and outputs
// when an FP16 knob variant is active.
func (t *Tensor) ToFP16() *Tensor {
	QuantizeFP16Slice(t.data, t.data)
	return t
}

// CloneFP16 returns a copy of t with every element quantized to FP16.
func (t *Tensor) CloneFP16() *Tensor {
	c := t.Clone()
	return c.ToFP16()
}
