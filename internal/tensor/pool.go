package tensor

import (
	"math/bits"
	"sync"

	"repro/internal/obs"
)

// Scratch-buffer pool. The functional-emulation hot paths (im2col column
// matrices, FP16 quantized operand copies, packed GEMM panels) need large
// short-lived float32 buffers once per (image, group) — allocating them
// fresh dominates allocation volume and GC pressure across the thousands
// of program executions a tuning run performs. The pool hands out
// power-of-two-capacity buffers from per-size-class sync.Pool arenas.
//
// Contract: Scratch returns a buffer of exactly the requested length whose
// contents are UNSPECIFIED — callers must fully overwrite it before
// reading. Release returns a buffer to its class; the caller must not
// retain any reference afterwards. Both are goroutine-safe.

// Pool telemetry: hits (buffer served from an arena), misses (fresh
// allocation), and the bytes of allocation the hits avoided.
var (
	mPoolHits       = obs.NewCounter("tensor.pool_hits")
	mPoolMisses     = obs.NewCounter("tensor.pool_misses")
	mPoolBytesSaved = obs.NewCounter("tensor.pool_bytes_saved")
)

const (
	// minPoolClass: buffers below 2^6 elements are cheaper to allocate
	// than to round-trip through a pool.
	minPoolClass = 6
	// maxPoolClass: 2^24 floats (64 MiB) caps what an arena may retain.
	maxPoolClass = 24
)

var scratchArenas [maxPoolClass + 1]sync.Pool

// headerPool recycles the *[]float32 headers the arenas store, so a
// Scratch/Release round-trip is allocation-free in steady state (boxing a
// fresh header on every Release would put one heap object per pooled
// buffer back on the GC).
var headerPool = sync.Pool{New: func() any { return new([]float32) }}

// poolClass returns the arena index for a requested length: the smallest c
// with 1<<c >= n, clamped into [minPoolClass, maxPoolClass]; -1 when the
// request is outside pooling range and should use a plain allocation.
func poolClass(n int) int {
	if n <= 0 {
		return -1
	}
	c := bits.Len(uint(n - 1))
	if c < minPoolClass {
		c = minPoolClass
	}
	if c > maxPoolClass {
		return -1
	}
	return c
}

// Scratch returns a length-n float32 buffer with unspecified contents,
// drawn from the pool when possible.
func Scratch(n int) []float32 {
	c := poolClass(n)
	if c < 0 {
		if n <= 0 {
			return nil
		}
		mPoolMisses.Inc()
		return make([]float32, n)
	}
	if v := scratchArenas[c].Get(); v != nil {
		h := v.(*[]float32)
		buf := *h
		*h = nil // don't pin the buffer from the header pool
		headerPool.Put(h)
		mPoolHits.Inc()
		mPoolBytesSaved.Add(int64(4 * n))
		return buf[:n]
	}
	mPoolMisses.Inc()
	return make([]float32, n, 1<<c)
}

// Release returns a buffer obtained from Scratch to its arena. Buffers
// outside the pooled capacity range (including nil) are dropped for the
// garbage collector.
func Release(buf []float32) {
	c := cap(buf)
	if c < 1<<minPoolClass || c > 1<<maxPoolClass || c&(c-1) != 0 {
		return
	}
	h := headerPool.Get().(*[]float32)
	*h = buf[:c]
	scratchArenas[bits.Len(uint(c-1))].Put(h)
}
