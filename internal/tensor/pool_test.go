package tensor

import "testing"

func TestScratchLengthAndClass(t *testing.T) {
	for _, n := range []int{1, 7, 63, 64, 65, 1000, 4096, 100000} {
		buf := Scratch(n)
		if len(buf) != n {
			t.Fatalf("Scratch(%d) has len %d", n, len(buf))
		}
		if c := cap(buf); c&(c-1) != 0 {
			t.Fatalf("Scratch(%d) cap %d not a power of two", n, c)
		}
		Release(buf)
	}
	if Scratch(0) != nil || Scratch(-3) != nil {
		t.Fatal("non-positive Scratch must return nil")
	}
}

func TestScratchReusesReleasedBuffer(t *testing.T) {
	// Same size class round-trip: the released buffer must come back.
	// sync.Pool may drop entries under GC pressure, so retry a few times
	// rather than asserting on a single round-trip.
	reused := false
	for try := 0; try < 10 && !reused; try++ {
		a := Scratch(1 << 10)
		a[0] = 42
		p := &a[0]
		Release(a)
		b := Scratch(1 << 10)
		if &b[0] == p {
			reused = true
		}
		Release(b)
	}
	if !reused {
		t.Error("pool never reused a released buffer")
	}
}

func TestReleaseForeignBufferIsDropped(t *testing.T) {
	// Odd-capacity buffers (not from Scratch) must not poison the arenas.
	Release(make([]float32, 100, 100))
	buf := Scratch(100)
	if c := cap(buf); c&(c-1) != 0 {
		t.Fatalf("arena returned non-power-of-two cap %d", c)
	}
	Release(buf)
	Release(nil)
}

func TestPoolClassBounds(t *testing.T) {
	if c := poolClass(1 << 30); c != -1 {
		t.Fatalf("oversized request got class %d, want -1", c)
	}
	if c := poolClass(1); c != minPoolClass {
		t.Fatalf("tiny request got class %d, want %d", c, minPoolClass)
	}
	if c := poolClass(1 << maxPoolClass); c != maxPoolClass {
		t.Fatalf("max request got class %d, want %d", c, maxPoolClass)
	}
}
