package models

import (
	"math"
	"testing"

	"repro/internal/approx"
	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/qos"
	"repro/internal/tensorops"
)

// Small scale for tests: few images, narrow nets.
var testScale = Scale{Images: 16, Width: 0.125, ImageNetSize: 32, Seed: 3}

func TestLayerCountsMatchTable1(t *testing.T) {
	// Table 1 layer counts are structural; verify each builder reproduces
	// its row exactly.
	for _, name := range Names() {
		want, _ := TableLayers(name)
		b := MustBuild(name, testScale)
		if got := b.Model.Graph.LayerCount(); got != want {
			t.Errorf("%s: layer count %d, want %d (Table 1)", name, got, want)
		}
	}
}

func TestConvCountsForCharacterization(t *testing.T) {
	// §7.2 references 21 convolutions in ResNet-18 and 53 in ResNet-50.
	cases := map[string]int{"resnet18": 21, "resnet50": 53, "mobilenet": 27}
	for name, want := range cases {
		b := MustBuild(name, testScale)
		convs := 0
		for _, n := range b.Model.Graph.Nodes {
			if n.Kind == graph.OpConv {
				convs++
			}
		}
		if convs != want {
			t.Errorf("%s: %d convolutions, want %d", name, convs, want)
		}
	}
}

func TestPlantedBaselineAccuracy(t *testing.T) {
	b := MustBuild("lenet", testScale)
	m := qos.Accuracy{Labels: b.Dataset.Labels}
	out := b.Model.Graph.Execute(b.Dataset.Images, nil, graph.ExecOptions{})
	acc := m.Score(out)
	if math.Abs(acc-b.BaselineAcc) > 1e-9 {
		t.Errorf("measured baseline accuracy %v != planted %v", acc, b.BaselineAcc)
	}
	// Planted accuracy should approximate the Table-1 target given the
	// small N (quantized to 1/N).
	if math.Abs(b.BaselineAcc-98.70) > 100.0/float64(b.Dataset.N()) {
		t.Errorf("planted accuracy %v too far from target 98.70", b.BaselineAcc)
	}
}

func TestPredictionsAreDiverse(t *testing.T) {
	// A degenerate network that always predicts one class would make the
	// accuracy metric useless; check the baseline predictions vary.
	for _, name := range []string{"alexnet", "resnet18"} {
		b := MustBuild(name, testScale)
		out := b.Model.Graph.Execute(b.Dataset.Images, nil, graph.ExecOptions{})
		classes := map[int]bool{}
		for _, p := range out.RowArgMax() {
			classes[p] = true
		}
		if len(classes) < 2 {
			t.Errorf("%s: baseline predicts only %d distinct classes", name, len(classes))
		}
	}
}

func TestApproximationDegradesAccuracyGradually(t *testing.T) {
	// The planted-label protocol must make accuracy respond to
	// approximation error: aggressive perforation everywhere should lose
	// more accuracy than FP16 everywhere.
	b := MustBuild("alexnet", Scale{Images: 32, Width: 0.25, ImageNetSize: 32, Seed: 5})
	m := qos.Accuracy{Labels: b.Dataset.Labels}
	exec := func(cfg approx.Config) float64 {
		return m.Score(b.Model.Graph.Execute(b.Dataset.Images, cfg, graph.ExecOptions{}))
	}
	base := exec(nil)

	fp16 := approx.Config{}
	heavy := approx.Config{}
	for _, op := range b.Model.Graph.ApproxOps() {
		fp16[op] = approx.KnobFP16
		switch b.Model.Graph.Nodes[op].Kind.Class() {
		case approx.OpConv:
			heavy[op] = approx.PerforationKnob(tensorops.PerfRows, 2, 0, tensorops.FP32)
		case approx.OpReduce:
			heavy[op] = approx.ReduceSamplingKnob(2, tensorops.FP32)
		default:
			heavy[op] = approx.KnobFP16
		}
	}
	accFP16 := exec(fp16)
	accHeavy := exec(heavy)
	if math.Abs(accFP16-base) > 7 {
		t.Errorf("FP16 should barely move accuracy: base %v, fp16 %v", base, accFP16)
	}
	if accHeavy > accFP16 {
		t.Errorf("heavy approximation (%v) should not beat FP16 (%v)", accHeavy, accFP16)
	}
	if accHeavy >= base {
		t.Errorf("heavy approximation should lose accuracy: base %v, heavy %v", base, accHeavy)
	}
}

func TestBuildUnknownBenchmark(t *testing.T) {
	if _, err := Build("nope", testScale); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := MustBuild("lenet", testScale)
	b := MustBuild("lenet", testScale)
	if a.BaselineAcc != b.BaselineAcc {
		t.Fatal("same scale must give same planted accuracy")
	}
	for i := range a.Dataset.Labels {
		if a.Dataset.Labels[i] != b.Dataset.Labels[i] {
			t.Fatal("labels differ across identical builds")
		}
	}
}

func TestSearchSpaceOrdering(t *testing.T) {
	// Deeper networks must have (astronomically) larger search spaces,
	// reproducing the ordering of Table 1.
	sizeOf := func(name string) float64 {
		b := MustBuild(name, testScale)
		return approx.SearchSpaceSize(b.Model.Graph.OpClasses(), false)
	}
	lenet := sizeOf("lenet")
	alexnet := sizeOf("alexnet")
	resnet18 := sizeOf("resnet18")
	if !(lenet < alexnet && alexnet < resnet18) {
		t.Errorf("search spaces should grow with depth: %g, %g, %g", lenet, alexnet, resnet18)
	}
	if lenet < 1e2 || lenet > 1e7 {
		t.Errorf("lenet search space %g outside sanity range", lenet)
	}
}

func TestPruneZeroesWeights(t *testing.T) {
	b := MustBuild("lenet", testScale)
	got := Prune(b.Model, 0.5)
	if got < 0.45 || got > 0.60 {
		t.Errorf("pruned fraction %v, want ~0.5", got)
	}
	// Network still runs and produces finite outputs.
	out := b.Model.Graph.Execute(b.Dataset.Images, nil, graph.ExecOptions{})
	for _, v := range out.Data() {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("pruned network produced non-finite output")
		}
	}
}

func TestPruneBadFractionPanics(t *testing.T) {
	b := MustBuild("lenet", testScale)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Prune(b.Model, 1.5)
}

func TestModelInputShape(t *testing.T) {
	b := MustBuild("alexnet", testScale)
	s := b.Model.InputShape(7)
	if s.Dim(0) != 7 || s.Dim(1) != 3 || s.Dim(2) != 32 || s.Dim(3) != 32 {
		t.Fatalf("InputShape = %v", s)
	}
}

func TestAllBenchmarksExecute(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, name := range Names() {
		b := MustBuild(name, testScale)
		ds := b.Dataset.Slice(0, 4)
		out := b.Model.Graph.Execute(ds.Images, nil, graph.ExecOptions{})
		if out.Dim(0) != 4 || out.Dim(1) != b.Model.Classes {
			t.Errorf("%s: output shape %v, want (4x%d)", name, out.Shape(), b.Model.Classes)
		}
		for _, v := range out.Data() {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Errorf("%s: non-finite output", name)
				break
			}
		}
	}
}

func TestDatasetSplitKeepsLabels(t *testing.T) {
	b := MustBuild("lenet", testScale)
	calib, test := b.Dataset.Split()
	if calib.Labels == nil || test.Labels == nil {
		t.Fatal("split lost labels")
	}
	if len(calib.Labels) != calib.N() || len(test.Labels) != test.N() {
		t.Fatal("label lengths wrong after split")
	}
	_ = datasets.Dataset{}
}
