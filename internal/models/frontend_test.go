package models

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

const lenetSpec = `{
  "name": "lenet_json",
  "input": {"channels": 1, "height": 28, "width": 28},
  "classes": 10,
  "seed": 5,
  "width_mult": 0.25,
  "layers": [
    {"type": "conv", "filters": 32, "kernel": 5, "pad": 2, "activation": "tanh"},
    {"type": "maxpool", "kernel": 2},
    {"type": "conv", "filters": 64, "kernel": 5, "pad": 2, "activation": "tanh"},
    {"type": "maxpool", "kernel": 2},
    {"type": "dense", "units": 256, "activation": "tanh"},
    {"type": "dense", "units": 10},
    {"type": "softmax"}
  ]
}`

func TestFromJSONLeNet(t *testing.T) {
	m, err := FromJSON([]byte(lenetSpec))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Graph.LayerCount(); got != 4 {
		t.Errorf("layers = %d, want 4", got)
	}
	// The compiled model must run and produce valid probabilities.
	g := tensor.NewRNG(1)
	in := tensor.New(2, 1, 28, 28)
	g.FillUniform(in, 0, 1)
	out := m.Graph.Execute(in, nil, graph.ExecOptions{})
	if out.Dim(0) != 2 || out.Dim(1) != 10 {
		t.Fatalf("output shape %v", out.Shape())
	}
	for r := 0; r < 2; r++ {
		var sum float64
		for _, v := range out.Row(r) {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
}

func TestFromJSONEquivalentToBuilder(t *testing.T) {
	// The JSON path and the direct builder must produce identical graphs
	// (same seed, same structure ⇒ same weights ⇒ same outputs).
	m1, err := FromJSON([]byte(lenetSpec))
	if err != nil {
		t.Fatal(err)
	}
	m2 := LeNet(5, 0.25)
	g := tensor.NewRNG(2)
	in := tensor.New(2, 1, 28, 28)
	g.FillUniform(in, 0, 1)
	o1 := m1.Graph.Execute(in, nil, graph.ExecOptions{})
	o2 := m2.Graph.Execute(in, nil, graph.ExecOptions{})
	if !tensor.Equal(o1, o2, 1e-6) {
		t.Fatal("JSON-compiled LeNet diverges from the builder's LeNet")
	}
}

func TestFromJSONResidual(t *testing.T) {
	spec := `{
	  "name": "resnetish",
	  "input": {"channels": 3, "height": 16, "width": 16},
	  "classes": 10,
	  "seed": 3,
	  "width_mult": 0.25,
	  "layers": [
	    {"type": "conv", "filters": 16, "kernel": 3, "pad": 1, "activation": "relu"},
	    {"type": "residual", "layers": [
	      {"type": "conv", "filters": 16, "kernel": 3, "pad": 1, "activation": "relu"},
	      {"type": "conv", "filters": 16, "kernel": 3, "pad": 1}
	    ]},
	    {"type": "residual", "layers": [
	      {"type": "conv", "filters": 32, "kernel": 3, "stride": 2, "pad": 1, "activation": "relu"},
	      {"type": "conv", "filters": 32, "kernel": 3, "pad": 1}
	    ]},
	    {"type": "global_avg_pool"},
	    {"type": "dense", "units": 10},
	    {"type": "softmax"}
	  ]
	}`
	m, err := FromJSON([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	// First block: identity shortcut (no projection conv); second block:
	// 1×1 projection. Count convs: 1 + 2 + (2+1) = 6, plus 1 dense.
	convs := 0
	for _, n := range m.Graph.Nodes {
		if n.Kind == graph.OpConv {
			convs++
		}
	}
	if convs != 6 {
		t.Errorf("convs = %d, want 6 (projection only on the strided block)", convs)
	}
	in := tensor.New(1, 3, 16, 16)
	tensor.NewRNG(4).FillUniform(in, 0, 1)
	out := m.Graph.Execute(in, nil, graph.ExecOptions{})
	if out.Dim(1) != 10 {
		t.Fatalf("output shape %v", out.Shape())
	}
}

func TestFromJSONDepthwise(t *testing.T) {
	spec := `{
	  "name": "mobile_ish",
	  "input": {"channels": 3, "height": 8, "width": 8},
	  "classes": 10,
	  "seed": 6,
	  "layers": [
	    {"type": "conv", "filters": 8, "kernel": 3, "pad": 1, "activation": "relu6"},
	    {"type": "conv", "filters": 8, "kernel": 3, "pad": 1, "groups": 8, "activation": "relu6"},
	    {"type": "global_avg_pool"},
	    {"type": "dense", "units": 10},
	    {"type": "softmax"}
	  ]
	}`
	m, err := FromJSON([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	// The depthwise conv must have Groups == its input channel count.
	var dw *graph.Node
	for _, n := range m.Graph.Nodes {
		if n.Kind == graph.OpConv && n.Conv.Groups > 1 {
			dw = n
		}
	}
	if dw == nil {
		t.Fatal("no depthwise conv in compiled graph")
	}
	if dw.Weight.Dim(1) != 1 {
		t.Errorf("depthwise weight Ci/G = %d, want 1", dw.Weight.Dim(1))
	}
}

func TestFromJSONErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want string
	}{
		{"garbage", "not json", "bad model spec"},
		{"no name", `{"input":{"channels":1,"height":4,"width":4},"classes":2,"layers":[{"type":"softmax"}]}`, "needs a name"},
		{"bad input", `{"name":"x","classes":2,"layers":[{"type":"softmax"}]}`, "bad input shape"},
		{"no classes", `{"name":"x","input":{"channels":1,"height":4,"width":4},"layers":[{"type":"softmax"}]}`, "classes"},
		{"no layers", `{"name":"x","input":{"channels":1,"height":4,"width":4},"classes":2}`, "no layers"},
		{"bad type", `{"name":"x","input":{"channels":1,"height":4,"width":4},"classes":2,"layers":[{"type":"wat"}]}`, "unknown layer type"},
		{"bad act", `{"name":"x","input":{"channels":1,"height":4,"width":4},"classes":2,"layers":[{"type":"conv","filters":4,"kernel":3,"activation":"swish"}]}`, "unknown activation"},
		{"conv no kernel", `{"name":"x","input":{"channels":1,"height":4,"width":4},"classes":2,"layers":[{"type":"conv","filters":4}]}`, "positive filters and kernel"},
		{"empty residual", `{"name":"x","input":{"channels":1,"height":4,"width":4},"classes":2,"layers":[{"type":"residual"}]}`, "nested layers"},
	}
	for _, c := range cases {
		_, err := FromJSON([]byte(c.spec))
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestFromJSONDeterministic(t *testing.T) {
	m1, err := FromJSON([]byte(lenetSpec))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := FromJSON([]byte(lenetSpec))
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(1, 1, 28, 28)
	tensor.NewRNG(9).FillUniform(in, 0, 1)
	o1 := m1.Graph.Execute(in, nil, graph.ExecOptions{})
	o2 := m2.Graph.Execute(in, nil, graph.ExecOptions{})
	if !tensor.Equal(o1, o2, 0) {
		t.Fatal("same spec must compile to identical models")
	}
}
