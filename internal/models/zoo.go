package models

import (
	"fmt"
	"sort"

	"repro/internal/datasets"
)

// Benchmark is one row of the paper's Table 1: a model, its dataset (with
// planted labels), and the FP32 baseline accuracy.
type Benchmark struct {
	Name        string
	Model       *Model
	Dataset     *datasets.Dataset
	BaselineAcc float64 // planted Table-1 accuracy, percent
}

// Scale controls the size of a built benchmark. The zero value is
// replaced by DefaultScale.
type Scale struct {
	Images       int     // dataset size (split 50/50 into calibration/test)
	Width        float64 // channel-width multiplier
	ImageNetSize int     // input resolution for the ImageNet benchmarks
	Seed         int64
}

// DefaultScale is sized for a single-core host: small calibration sets and
// quarter-width channels (see DESIGN.md §1). The paper used 10K images and
// full-width networks.
var DefaultScale = Scale{Images: 64, Width: 0.25, ImageNetSize: 64, Seed: 1}

func (s Scale) norm() Scale {
	if s.Images == 0 {
		s.Images = DefaultScale.Images
	}
	//lint:ignore floateq exact zero is the unset-field sentinel
	if s.Width == 0 {
		s.Width = DefaultScale.Width
	}
	if s.ImageNetSize == 0 {
		s.ImageNetSize = DefaultScale.ImageNetSize
	}
	if s.Seed == 0 {
		s.Seed = DefaultScale.Seed
	}
	return s
}

// benchSpec wires a Table-1 row to its builders.
type benchSpec struct {
	name      string
	targetAcc float64 // Table 1 baseline accuracy
	layers    int     // Table 1 layer count (checked by tests)
	build     func(s Scale) (*Model, *datasets.Dataset)
}

// imagenetClasses is the class count of the mini-ImageNet stand-in (the
// paper sampled 200 ILSVRC classes; we use 50 at reduced resolution).
const imagenetClasses = 50

var zoo = []benchSpec{
	{"lenet", 98.70, 4, func(s Scale) (*Model, *datasets.Dataset) {
		return LeNet(s.Seed, s.Width), datasets.MNISTLike(s.Images, s.Seed+1000)
	}},
	{"alexnet", 79.16, 6, func(s Scale) (*Model, *datasets.Dataset) {
		return AlexNetCIFAR(s.Seed, s.Width), datasets.CIFARLike(s.Images, 10, s.Seed+1001)
	}},
	{"alexnet2", 85.09, 7, func(s Scale) (*Model, *datasets.Dataset) {
		return AlexNet2(s.Seed, s.Width), datasets.CIFARLike(s.Images, 10, s.Seed+1002)
	}},
	{"alexnet_imagenet", 55.86, 8, func(s Scale) (*Model, *datasets.Dataset) {
		return AlexNetImageNet(s.Seed, s.Width, s.ImageNetSize, imagenetClasses),
			datasets.MiniImageNet(s.Images, s.ImageNetSize, imagenetClasses, s.Seed+1003)
	}},
	{"vgg16_10", 89.41, 15, func(s Scale) (*Model, *datasets.Dataset) {
		return VGG16("vgg16_10", s.Seed, s.Width, 32, 10), datasets.CIFARLike(s.Images, 10, s.Seed+1004)
	}},
	{"vgg16_100", 66.50, 15, func(s Scale) (*Model, *datasets.Dataset) {
		return VGG16("vgg16_100", s.Seed, s.Width, 32, 100), datasets.CIFARLike(s.Images, 100, s.Seed+1005)
	}},
	{"vgg16_imagenet", 72.88, 15, func(s Scale) (*Model, *datasets.Dataset) {
		return VGG16("vgg16_imagenet", s.Seed, s.Width, s.ImageNetSize, imagenetClasses),
			datasets.MiniImageNet(s.Images, s.ImageNetSize, imagenetClasses, s.Seed+1006)
	}},
	{"resnet18", 89.44, 22, func(s Scale) (*Model, *datasets.Dataset) {
		return ResNet18(s.Seed, s.Width), datasets.CIFARLike(s.Images, 10, s.Seed+1007)
	}},
	{"resnet50", 74.16, 54, func(s Scale) (*Model, *datasets.Dataset) {
		return ResNet50(s.Seed, s.Width, s.ImageNetSize, imagenetClasses),
			datasets.MiniImageNet(s.Images, s.ImageNetSize, imagenetClasses, s.Seed+1008)
	}},
	{"mobilenet", 83.69, 28, func(s Scale) (*Model, *datasets.Dataset) {
		return MobileNet(s.Seed, s.Width), datasets.CIFARLike(s.Images, 10, s.Seed+1009)
	}},
}

// Names lists the benchmark names in Table-1 order.
func Names() []string {
	out := make([]string, len(zoo))
	for i, s := range zoo {
		out[i] = s.name
	}
	return out
}

// TableLayers returns the Table-1 layer count for a benchmark name.
func TableLayers(name string) (int, bool) {
	for _, s := range zoo {
		if s.name == name {
			return s.layers, true
		}
	}
	return 0, false
}

// Build constructs a benchmark by name at the given scale, planting labels
// to pin the baseline accuracy.
func Build(name string, s Scale) (*Benchmark, error) {
	s = s.norm()
	for _, spec := range zoo {
		if spec.name != name {
			continue
		}
		m, ds := spec.build(s)
		acc := PlantLabels(m, ds, spec.targetAcc, 32, s.Seed+2000)
		return &Benchmark{Name: name, Model: m, Dataset: ds, BaselineAcc: acc}, nil
	}
	known := Names()
	sort.Strings(known)
	return nil, fmt.Errorf("models: unknown benchmark %q (known: %v)", name, known)
}

// MustBuild is Build that panics on error.
func MustBuild(name string, s Scale) *Benchmark {
	b, err := Build(name, s)
	if err != nil {
		panic(err)
	}
	return b
}
