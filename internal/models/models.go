// Package models builds the ten CNN benchmarks of the paper's Table 1 as
// ApproxHPVM-style dataflow graphs, with layer/op counts faithful to the
// paper (e.g. ResNet-18 → 22 tensor operations with 21 convolutions,
// ResNet-50 → 54, MobileNet → 28). Channel widths and the ImageNet input
// resolution are scaled down by a width multiplier so profile collection
// and tuning complete on a single-core host; layer structure — which
// drives search-space sizes and the per-layer knob characterization — is
// unchanged (DESIGN.md §1).
//
// Weights are deterministic synthetic (He/Xavier initialized from a fixed
// seed). Gold labels are planted from each network's own FP32 baseline
// output with a controlled fraction flipped, which pins baseline accuracy
// to the Table 1 value by construction while leaving approximation-induced
// accuracy degradation to emerge from real execution of the real
// approximate kernels.
package models

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/datasets"
	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/tensorops"
)

// Model couples a graph with its input geometry.
type Model struct {
	Graph   *graph.Graph
	C, H, W int // per-image input shape
	Classes int
}

// InputShape returns the (N,C,H,W) shape for a batch of n images.
func (m *Model) InputShape(n int) tensor.Shape {
	return tensor.NewShape(n, m.C, m.H, m.W)
}

// builder accumulates a CNN under construction.
type builder struct {
	g         *graph.Graph
	rng       *tensor.RNG
	last      int
	c, h, w   int // current activation geometry
	width     float64
	convCount int
}

func newBuilder(name string, rng *tensor.RNG, c, h, w int, width float64) *builder {
	return &builder{g: graph.New(name), rng: rng, last: 0, c: c, h: h, w: w, width: width}
}

// ch scales a nominal channel count by the width multiplier (min 4).
func (b *builder) ch(n int) int {
	s := int(math.Round(float64(n) * b.width))
	if s < 4 {
		s = 4
	}
	return s
}

// conv appends conv(+bias+ReLU) with `out` already-scaled output channels.
func (b *builder) conv(out, k, stride, pad int, act graph.Activation) int {
	return b.convFrom(b.last, out, k, stride, pad, act, 1)
}

// convFrom appends a convolution reading from src. The builder's current
// geometry (b.c/b.h/b.w) must describe src; residual-branch callers reset
// it before taking a side path.
func (b *builder) convFrom(src, out, k, stride, pad int, act graph.Activation, groups int) int {
	cin := b.c
	w := tensor.New(out, cin/groups, k, k)
	b.rng.FillHe(w, cin/groups*k*k)
	// Trained convolution filters are spatially smooth, which is exactly
	// the redundancy filter sampling and perforation exploit; i.i.d.
	// random filters have none, and a single sampled operator would
	// destroy the network. Low-pass filtering the synthetic weights
	// restores trained-like robustness (the subsequent standardization
	// pass rescales the magnitudes).
	smoothFilters(w)
	bias := tensor.New(out)
	b.rng.FillNormal(bias, 0, 0.05)
	b.convCount++
	id := b.g.ConvAct(src, w, bias, tensorops.ConvParams{StrideH: stride, StrideW: stride, PadH: pad, PadW: pad, Groups: groups},
		act, 6, fmt.Sprintf("conv%d", b.convCount))
	b.last = id
	b.c = out
	b.h = tensor.ConvOutDim(b.h, k, stride, pad)
	b.w = tensor.ConvOutDim(b.w, k, stride, pad)
	return id
}

// smoothFilters low-pass filters each (kh,kw) plane of a weight tensor
// with a separable [1 2 1]/4 kernel (replicated borders) and mildly
// correlates adjacent input channels, mimicking the spatial smoothness and
// channel redundancy of trained filters.
func smoothFilters(w *tensor.Tensor) {
	co, ci, kh, kw := w.Dim(0), w.Dim(1), w.Dim(2), w.Dim(3)
	d := w.Data()
	if kh >= 3 || kw >= 3 {
		tmp := make([]float32, kh*kw)
		blur1 := func(a, b, c float32) float32 { return 0.25*a + 0.5*b + 0.25*c }
		for fp := 0; fp < 2*co*ci; fp++ { // two smoothing passes per plane
			f := fp % (co * ci)
			plane := d[f*kh*kw : (f+1)*kh*kw]
			// horizontal pass
			for y := 0; y < kh; y++ {
				for x := 0; x < kw; x++ {
					l, r := x-1, x+1
					if l < 0 {
						l = 0
					}
					if r >= kw {
						r = kw - 1
					}
					tmp[y*kw+x] = blur1(plane[y*kw+l], plane[y*kw+x], plane[y*kw+r])
				}
			}
			// vertical pass
			for y := 0; y < kh; y++ {
				u, dn := y-1, y+1
				if u < 0 {
					u = 0
				}
				if dn >= kh {
					dn = kh - 1
				}
				for x := 0; x < kw; x++ {
					plane[y*kw+x] = blur1(tmp[u*kw+x], tmp[y*kw+x], tmp[dn*kw+x])
				}
			}
		}
	}
	// Mild channel correlation: average each input-channel slice with its
	// neighbor, per output filter.
	if ci >= 2 {
		plane := kh * kw
		for f := 0; f < co; f++ {
			base := f * ci * plane
			for c := ci - 1; c > 0; c-- {
				cur := d[base+c*plane : base+(c+1)*plane]
				prev := d[base+(c-1)*plane : base+c*plane]
				for i := range cur {
					cur[i] = 0.75*cur[i] + 0.25*prev[i]
				}
			}
		}
	}
}

func (b *builder) maxPool(k, stride int) int {
	id := b.g.MaxPool(b.last, tensorops.PoolParams{KH: k, KW: k, StrideH: stride, StrideW: stride})
	b.last = id
	b.h = tensor.ConvOutDim(b.h, k, stride, 0)
	b.w = tensor.ConvOutDim(b.w, k, stride, 0)
	return id
}

func (b *builder) avgPool(k, stride int) int {
	id := b.g.AvgPool(b.last, tensorops.PoolParams{KH: k, KW: k, StrideH: stride, StrideW: stride})
	b.last = id
	b.h = tensor.ConvOutDim(b.h, k, stride, 0)
	b.w = tensor.ConvOutDim(b.w, k, stride, 0)
	return id
}

func (b *builder) globalAvgPool() int {
	id := b.g.GlobalAvgPool(b.last)
	b.last = id
	b.h, b.w = 1, 1
	return id
}

// fc appends flatten (if needed) + dense(+bias) with optional activation.
func (b *builder) fc(out int, act graph.Activation) int {
	in := b.c * b.h * b.w
	fl := b.g.Flatten(b.last)
	w := tensor.New(in, out)
	b.rng.FillXavier(w, in, out)
	bias := tensor.New(out)
	b.rng.FillNormal(bias, 0, 0.05)
	id := b.g.MatMulAct(fl, w, bias, act, 6, fmt.Sprintf("fc%d", out))
	b.last = id
	b.c, b.h, b.w = out, 1, 1
	return id
}

func (b *builder) softmax() {
	b.last = b.g.Softmax(b.last)
}

func (b *builder) finish(c, h, w, classes int) *Model {
	if err := b.g.Validate(); err != nil {
		panic("models: " + err.Error())
	}
	// Fold probe-batch normalization statistics into the weights (the
	// inference-time equivalent of trained batch norm); without this, deep
	// randomly-initialized stacks produce degenerate logits.
	probe := datasets.Generate(datasets.Spec{Name: "probe", N: 8, C: c, H: h, W: w, Classes: 1, Seed: 424242})
	b.g.StandardizeWeights(probe.Images)
	return &Model{Graph: b.g, C: c, H: h, W: w, Classes: classes}
}

// LeNet builds the 4-layer LeNet-5 variant (2 conv + 2 fc) for 28×28
// grayscale input.
func LeNet(seed int64, width float64) *Model {
	rng := tensor.NewRNG(seed)
	b := newBuilder("lenet", rng, 1, 28, 28, width)
	b.conv(b.ch(32), 5, 1, 2, graph.ActTanh)
	b.maxPool(2, 2)
	b.conv(b.ch(64), 5, 1, 2, graph.ActTanh)
	b.maxPool(2, 2)
	b.fc(b.ch(256), graph.ActTanh)
	b.fc(10, graph.ActNone)
	b.softmax()
	return b.finish(1, 28, 28, 10)
}

// AlexNetCIFAR builds the 6-layer AlexNet (5 conv + 1 fc) for 32×32 RGB.
func AlexNetCIFAR(seed int64, width float64) *Model {
	rng := tensor.NewRNG(seed)
	b := newBuilder("alexnet", rng, 3, 32, 32, width)
	b.conv(b.ch(64), 11, 1, 5, graph.ActTanh)
	b.maxPool(2, 2)
	b.conv(b.ch(192), 5, 1, 2, graph.ActTanh)
	b.maxPool(2, 2)
	b.conv(b.ch(384), 3, 1, 1, graph.ActTanh)
	b.conv(b.ch(256), 3, 1, 1, graph.ActTanh)
	b.conv(b.ch(256), 3, 1, 1, graph.ActTanh)
	b.maxPool(2, 2)
	b.fc(10, graph.ActNone)
	b.softmax()
	return b.finish(3, 32, 32, 10)
}

// AlexNet2 builds the 7-layer AlexNet2 (6 conv + 1 fc) for 32×32 RGB.
func AlexNet2(seed int64, width float64) *Model {
	rng := tensor.NewRNG(seed)
	b := newBuilder("alexnet2", rng, 3, 32, 32, width)
	b.conv(b.ch(32), 3, 1, 1, graph.ActTanh)
	b.conv(b.ch(32), 3, 1, 1, graph.ActTanh)
	b.maxPool(2, 2)
	b.conv(b.ch(64), 3, 1, 1, graph.ActTanh)
	b.conv(b.ch(64), 3, 1, 1, graph.ActTanh)
	b.maxPool(2, 2)
	b.conv(b.ch(128), 3, 1, 1, graph.ActTanh)
	b.conv(b.ch(128), 3, 1, 1, graph.ActTanh)
	b.maxPool(2, 2)
	b.fc(10, graph.ActNone)
	b.softmax()
	return b.finish(3, 32, 32, 10)
}

// AlexNetImageNet builds the 8-layer AlexNet (5 conv + 3 fc) for the
// mini-ImageNet input (64×64 RGB by default).
func AlexNetImageNet(seed int64, width float64, size, classes int) *Model {
	rng := tensor.NewRNG(seed)
	b := newBuilder("alexnet_imagenet", rng, 3, size, size, width)
	b.conv(b.ch(64), 7, 2, 3, graph.ActReLU)
	b.maxPool(2, 2)
	b.conv(b.ch(192), 5, 1, 2, graph.ActReLU)
	b.maxPool(2, 2)
	b.conv(b.ch(384), 3, 1, 1, graph.ActReLU)
	b.conv(b.ch(256), 3, 1, 1, graph.ActReLU)
	b.conv(b.ch(256), 3, 1, 1, graph.ActReLU)
	b.maxPool(2, 2)
	b.fc(b.ch(1024), graph.ActReLU)
	b.fc(b.ch(1024), graph.ActReLU)
	b.fc(classes, graph.ActNone)
	b.softmax()
	return b.finish(3, size, size, classes)
}

// VGG16 builds the 15-layer VGG-16 (13 conv + 2 fc) for the given input
// size and class count (CIFAR-10, CIFAR-100 or mini-ImageNet).
func VGG16(name string, seed int64, width float64, size, classes int) *Model {
	rng := tensor.NewRNG(seed)
	b := newBuilder(name, rng, 3, size, size, width)
	stage := func(n, reps int) {
		for i := 0; i < reps; i++ {
			b.conv(b.ch(n), 3, 1, 1, graph.ActReLU)
		}
		b.maxPool(2, 2)
	}
	stage(64, 2)
	stage(128, 2)
	stage(256, 3)
	stage(512, 3)
	if size >= 64 {
		stage(512, 3)
	} else {
		// 32×32 input: keep 13 convs but stop pooling at 2×2.
		for i := 0; i < 3; i++ {
			b.conv(b.ch(512), 3, 1, 1, graph.ActReLU)
		}
	}
	b.fc(b.ch(512), graph.ActReLU)
	b.fc(classes, graph.ActNone)
	b.softmax()
	return b.finish(3, size, size, classes)
}

// ResNet18 builds the 22-op ResNet-18 for 32×32 RGB: conv1 + 4 stages of
// 2 basic blocks (16 convs) + 4 projection shortcuts = 21 convolutions,
// plus the final dense layer.
func ResNet18(seed int64, width float64) *Model {
	rng := tensor.NewRNG(seed)
	b := newBuilder("resnet18", rng, 3, 32, 32, width)
	b.conv(b.ch(64), 3, 1, 1, graph.ActReLU)

	basicBlock := func(out, stride int, project bool) {
		inID, inC, inH, inW := b.last, b.c, b.h, b.w
		b.conv(out, 3, stride, 1, graph.ActReLU)
		mainID := b.conv(out, 3, 1, 1, graph.ActNone)
		short := inID
		if project {
			// 1×1 projection on the shortcut path.
			b.last, b.c, b.h, b.w = inID, inC, inH, inW
			short = b.conv(out, 1, stride, 0, graph.ActNone)
		}
		b.last = b.g.Add(mainID, short)
		b.last = b.g.ReLU(b.last)
		b.c = out
	}
	stages := []struct {
		ch, stride int
	}{{64, 1}, {128, 2}, {256, 2}, {512, 2}}
	for _, s := range stages {
		out := b.ch(s.ch)
		basicBlock(out, s.stride, true) // every stage starts with a projection
		basicBlock(out, 1, false)
	}
	b.globalAvgPool()
	b.fc(10, graph.ActNone)
	b.softmax()
	return b.finish(3, 32, 32, 10)
}

// ResNet50 builds the 54-op ResNet-50 for mini-ImageNet input: conv1 + 16
// bottleneck blocks of 3 convs + 4 projections = 53 convolutions, plus the
// final dense layer.
func ResNet50(seed int64, width float64, size, classes int) *Model {
	rng := tensor.NewRNG(seed)
	b := newBuilder("resnet50", rng, 3, size, size, width)
	b.conv(b.ch(64), 7, 2, 3, graph.ActReLU)
	b.maxPool(2, 2)

	bottleneck := func(mid, out, stride int, project bool) {
		inID, inC, inH, inW := b.last, b.c, b.h, b.w
		b.conv(mid, 1, 1, 0, graph.ActReLU)
		b.conv(mid, 3, stride, 1, graph.ActReLU)
		mainID := b.conv(out, 1, 1, 0, graph.ActNone)
		short := inID
		if project {
			b.last, b.c, b.h, b.w = inID, inC, inH, inW
			short = b.conv(out, 1, stride, 0, graph.ActNone)
		}
		b.last = b.g.Add(mainID, short)
		b.last = b.g.ReLU(b.last)
		b.c = out
	}
	stages := []struct {
		mid, reps, stride int
	}{{64, 3, 1}, {128, 4, 2}, {256, 6, 2}, {512, 3, 2}}
	for _, s := range stages {
		mid := b.ch(s.mid)
		out := b.ch(s.mid * 4)
		bottleneck(mid, out, s.stride, true)
		for i := 1; i < s.reps; i++ {
			bottleneck(mid, out, 1, false)
		}
	}
	b.globalAvgPool()
	b.fc(classes, graph.ActNone)
	b.softmax()
	return b.finish(3, size, size, classes)
}

// MobileNet builds the 28-op MobileNet for 32×32 RGB: conv1 + 13
// depthwise-separable pairs (26 convs) = 27 convolutions + 1 dense.
func MobileNet(seed int64, width float64) *Model {
	rng := tensor.NewRNG(seed)
	b := newBuilder("mobilenet", rng, 3, 32, 32, width)
	b.conv(b.ch(32), 3, 1, 1, graph.ActClippedReLU)
	dwSep := func(out, stride int) {
		// depthwise 3×3 (groups = channels), then pointwise 1×1
		b.convFrom(b.last, b.c, 3, stride, 1, graph.ActClippedReLU, b.c)
		b.conv(out, 1, 1, 0, graph.ActClippedReLU)
	}
	plan := []struct {
		ch, stride int
	}{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
	}
	for _, p := range plan {
		dwSep(b.ch(p.ch), p.stride)
	}
	b.globalAvgPool()
	b.fc(10, graph.ActNone)
	b.softmax()
	return b.finish(3, 32, 32, 10)
}

// PlantLabels assigns gold labels derived from the model's FP32 baseline
// predictions, flipping a deterministic fraction so the baseline accuracy
// equals targetAcc (percent). The flips are placed on the images with the
// smallest top-2 prediction margin: a trained network is wrong precisely
// on its hard, low-confidence examples, so the surviving "correct" set is
// high-margin and — like a trained model's — robust to the moderate
// output perturbations approximations introduce. It runs the baseline in
// batches of batchSize, sets ds.Labels, and returns the exact resulting
// baseline accuracy.
func PlantLabels(m *Model, ds *datasets.Dataset, targetAcc float64, batchSize int, seed int64) float64 {
	n := ds.N()
	if batchSize <= 0 || batchSize > n {
		batchSize = n
	}
	preds := make([]int, 0, n)
	margins := make([]float64, 0, n)
	for lo := 0; lo < n; lo += batchSize {
		hi := lo + batchSize
		if hi > n {
			hi = n
		}
		out := m.Graph.Execute(ds.Slice(lo, hi).Images, nil, graph.ExecOptions{})
		preds = append(preds, out.RowArgMax()...)
		for r := 0; r < hi-lo; r++ {
			margins = append(margins, top2Margin(out.Row(r)))
		}
	}
	labels := make([]int, n)
	copy(labels, preds)
	// Flip lowest-margin images, stratified over the calibration/test
	// halves so both halves end up at the target accuracy (Split cuts the
	// dataset in the middle).
	flips := int(math.Round((1 - targetAcc/100) * float64(n)))
	rng := tensor.NewRNG(seed)
	half := n / 2
	flipLowMargin := func(lo, hi, k int) {
		order := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			order = append(order, i)
		}
		sort.SliceStable(order, func(a, b int) bool { return margins[order[a]] < margins[order[b]] })
		for i := 0; i < k && i < len(order); i++ {
			idx := order[i]
			// move to a different class deterministically
			labels[idx] = (preds[idx] + 1 + rng.Intn(ds.Classes-1)) % ds.Classes
		}
	}
	firstHalf := flips / 2
	flipLowMargin(0, half, firstHalf)
	flipLowMargin(half, n, flips-firstHalf)
	ds.Labels = labels
	return 100 * float64(n-flips) / float64(n)
}

// top2Margin returns the gap between the largest and second-largest value
// of a probability row.
func top2Margin(row []float32) float64 {
	best, second := float32(math.Inf(-1)), float32(math.Inf(-1))
	for _, v := range row {
		if v > best {
			second = best
			best = v
		} else if v > second {
			second = v
		}
	}
	return float64(best - second)
}

// Prune zeroes the smallest-magnitude fraction of each convolution's
// weights in place (magnitude pruning per layer), the model-compression
// baseline of the paper's §8 study. It returns the overall fraction of
// conv weights now zero.
func Prune(m *Model, fraction float64) float64 {
	if fraction < 0 || fraction >= 1 {
		panic(fmt.Sprintf("models: bad prune fraction %v", fraction))
	}
	var total, zeroed int
	for _, n := range m.Graph.Nodes {
		if n.Kind != graph.OpConv {
			continue
		}
		d := n.Weight.Data()
		total += len(d)
		k := int(float64(len(d)) * fraction)
		if k == 0 {
			continue
		}
		// threshold = k-th smallest |w|
		mags := make([]float64, len(d))
		for i, v := range d {
			mags[i] = math.Abs(float64(v))
		}
		thr := quickselect(mags, k)
		for i, v := range d {
			if math.Abs(float64(v)) <= thr && zeroedCount(d, i) {
				d[i] = 0
				zeroed++
			}
		}
		// Weights changed in place: drop any cached packed/quantized copies.
		n.InvalidateWeight()
	}
	if total == 0 {
		return 0
	}
	return float64(zeroed) / float64(total)
}

// zeroedCount is a helper that always returns true; it exists to keep the
// pruning loop readable while counting in one place.
func zeroedCount([]float32, int) bool { return true }

// quickselect returns the k-th smallest value (0-based k-1 semantics: the
// largest of the k smallest).
func quickselect(v []float64, k int) float64 {
	if k <= 0 {
		return -1
	}
	if k >= len(v) {
		k = len(v)
	}
	lo, hi := 0, len(v)-1
	target := k - 1
	for lo < hi {
		p := partition(v, lo, hi)
		switch {
		case p == target:
			return v[p]
		case p < target:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
	return v[target]
}

func partition(v []float64, lo, hi int) int {
	pivot := v[(lo+hi)/2]
	v[(lo+hi)/2], v[hi] = v[hi], v[(lo+hi)/2]
	i := lo
	for j := lo; j < hi; j++ {
		if v[j] < pivot {
			v[i], v[j] = v[j], v[i]
			i++
		}
	}
	v[i], v[hi] = v[hi], v[i]
	return i
}
