package models

import (
	"encoding/json"
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// The JSON frontend: the paper ingests CNNs written in Keras or PyTorch;
// this reproduction accepts an equivalent declarative JSON description
// and compiles it to the dataflow-graph IR with synthetic (seeded,
// smoothed, standardized) weights. Example:
//
//	{
//	  "name": "mynet",
//	  "input": {"channels": 3, "height": 32, "width": 32},
//	  "classes": 10,
//	  "seed": 7,
//	  "layers": [
//	    {"type": "conv", "filters": 32, "kernel": 3, "pad": 1, "activation": "relu"},
//	    {"type": "maxpool", "kernel": 2},
//	    {"type": "residual", "stride": 2, "filters": 64,
//	     "layers": [
//	       {"type": "conv", "filters": 64, "kernel": 3, "stride": 2, "pad": 1, "activation": "relu"},
//	       {"type": "conv", "filters": 64, "kernel": 3, "pad": 1}
//	     ]},
//	    {"type": "global_avg_pool"},
//	    {"type": "dense", "units": 10},
//	    {"type": "softmax"}
//	  ]
//	}

// ModelSpec is the top-level JSON model description.
type ModelSpec struct {
	Name    string    `json:"name"`
	Input   InputSpec `json:"input"`
	Classes int       `json:"classes"`
	Seed    int64     `json:"seed"`
	// WidthMult scales every filter/unit count (default 1).
	WidthMult float64     `json:"width_mult"`
	Layers    []LayerSpec `json:"layers"`
}

// InputSpec describes the per-image input shape.
type InputSpec struct {
	Channels int `json:"channels"`
	Height   int `json:"height"`
	Width    int `json:"width"`
}

// LayerSpec is one layer. Which fields apply depends on Type:
// conv (filters, kernel, stride, pad, groups, activation),
// dense (units, activation), maxpool/avgpool (kernel, stride),
// global_avg_pool, flatten, softmax,
// residual (layers — the main branch; stride/filters size the projection
// shortcut when the branch changes geometry).
type LayerSpec struct {
	Type       string      `json:"type"`
	Filters    int         `json:"filters,omitempty"`
	Units      int         `json:"units,omitempty"`
	Kernel     int         `json:"kernel,omitempty"`
	Stride     int         `json:"stride,omitempty"`
	Pad        int         `json:"pad,omitempty"`
	Groups     int         `json:"groups,omitempty"`
	Activation string      `json:"activation,omitempty"`
	Layers     []LayerSpec `json:"layers,omitempty"`
}

func parseActivation(s string) (graph.Activation, error) {
	switch s {
	case "", "none":
		return graph.ActNone, nil
	case "relu":
		return graph.ActReLU, nil
	case "relu6", "clipped_relu":
		return graph.ActClippedReLU, nil
	case "tanh":
		return graph.ActTanh, nil
	default:
		return graph.ActNone, fmt.Errorf("models: unknown activation %q", s)
	}
}

// FromJSON compiles a JSON model description into a Model with synthetic
// weights, ready for tuning.
func FromJSON(data []byte) (*Model, error) {
	var spec ModelSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("models: bad model spec: %w", err)
	}
	return FromSpec(spec)
}

// FromSpec compiles a parsed model description.
func FromSpec(spec ModelSpec) (*Model, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("models: spec needs a name")
	}
	in := spec.Input
	if in.Channels <= 0 || in.Height <= 0 || in.Width <= 0 {
		return nil, fmt.Errorf("models: bad input shape %+v", in)
	}
	if spec.Classes <= 0 {
		return nil, fmt.Errorf("models: classes must be positive")
	}
	if len(spec.Layers) == 0 {
		return nil, fmt.Errorf("models: spec has no layers")
	}
	width := spec.WidthMult
	//lint:ignore floateq exact zero is the unset-field sentinel
	if width == 0 {
		width = 1
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	b := newBuilder(spec.Name, tensor.NewRNG(seed), in.Channels, in.Height, in.Width, width)
	if err := buildLayers(b, spec.Layers); err != nil {
		return nil, err
	}
	return b.finish(in.Channels, in.Height, in.Width, spec.Classes), nil
}

func buildLayers(b *builder, layers []LayerSpec) error {
	for i, l := range layers {
		if err := buildLayer(b, l); err != nil {
			return fmt.Errorf("layer %d (%s): %w", i, l.Type, err)
		}
	}
	return nil
}

func buildLayer(b *builder, l LayerSpec) error {
	switch l.Type {
	case "conv":
		if l.Filters <= 0 || l.Kernel <= 0 {
			return fmt.Errorf("conv needs positive filters and kernel")
		}
		act, err := parseActivation(l.Activation)
		if err != nil {
			return err
		}
		stride := l.Stride
		if stride == 0 {
			stride = 1
		}
		groups := l.Groups
		if groups == 0 {
			groups = 1
		}
		out := b.ch(l.Filters)
		if groups > 1 {
			// Grouped/depthwise convolutions need channel counts divisible
			// by the group count; depthwise uses groups == input channels.
			if l.Groups == l.Filters {
				groups = b.c // depthwise after width scaling
				out = b.c
			} else if b.c%groups != 0 {
				return fmt.Errorf("groups %d do not divide input channels %d", groups, b.c)
			}
		}
		b.convFrom(b.last, out, l.Kernel, stride, l.Pad, act, groups)
	case "dense":
		if l.Units <= 0 {
			return fmt.Errorf("dense needs positive units")
		}
		act, err := parseActivation(l.Activation)
		if err != nil {
			return err
		}
		units := l.Units
		if l.Units > 16 { // class heads stay unscaled
			units = b.ch(l.Units)
		}
		b.fc(units, act)
	case "maxpool", "avgpool":
		if l.Kernel <= 0 {
			return fmt.Errorf("%s needs a positive kernel", l.Type)
		}
		stride := l.Stride
		if stride == 0 {
			stride = l.Kernel
		}
		if l.Type == "maxpool" {
			b.maxPool(l.Kernel, stride)
		} else {
			b.avgPool(l.Kernel, stride)
		}
	case "global_avg_pool":
		b.globalAvgPool()
	case "flatten":
		b.last = b.g.Flatten(b.last)
		b.c, b.h, b.w = b.c*b.h*b.w, 1, 1
	case "softmax":
		b.softmax()
	case "residual":
		if len(l.Layers) == 0 {
			return fmt.Errorf("residual needs nested layers")
		}
		inID, inC, inH, inW := b.last, b.c, b.h, b.w
		if err := buildLayers(b, l.Layers); err != nil {
			return err
		}
		mainID, outC, outH, outW := b.last, b.c, b.h, b.w
		short := inID
		if inC != outC || inH != outH || inW != outW {
			// 1×1 projection shortcut matching the branch's geometry.
			strideH := inH / outH
			if strideH < 1 {
				return fmt.Errorf("residual branch enlarges spatial dims")
			}
			b.last, b.c, b.h, b.w = inID, inC, inH, inW
			short = b.convFrom(inID, outC, 1, strideH, 0, graph.ActNone, 1)
			if b.h != outH || b.w != outW {
				return fmt.Errorf("projection mismatch: %dx%d vs %dx%d", b.h, b.w, outH, outW)
			}
		}
		b.last = b.g.Add(mainID, short)
		b.last = b.g.ReLU(b.last)
		b.c, b.h, b.w = outC, outH, outW
	default:
		return fmt.Errorf("unknown layer type %q", l.Type)
	}
	return nil
}
