// Package promise is a functional simulator of the PROMISE programmable
// analog in-memory compute accelerator (Srivastava et al., ISCA 2018) as
// used by the paper: convolutions and matrix multiplications can be
// offloaded to it, and its analog voltage swing introduces normally
// distributed errors in the output values. Seven voltage levels P1–P7 are
// exposed as knobs, in increasing order of voltage (energy) and decreasing
// error; no level is exact.
//
// The paper itself evaluated PROMISE through a functional simulator plus a
// validated timing/energy model (§6.3) — this package plays exactly that
// role. The error magnitudes and the energy/throughput advantages
// (3.4–5.5× less energy, 1.4–3.4× higher throughput than a digital
// accelerator) follow the figures cited in §2.3.
package promise

import (
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Noise-injection telemetry: how often the functional simulator perturbs
// an operator output, at which voltage level, over how many elements, and
// the distribution of injected absolute σ values (log-scale buckets).
var (
	mPerturbs  = obs.NewCounter("promise.perturbations")
	mElems     = obs.NewCounter("promise.elements_perturbed")
	hSigma     = obs.NewHistogram("promise.sigma_abs", 1e-6, 10, 12)
	byLevelVec = obs.NewCounterVec("promise.perturbations_by_level")
	// levelCounters caches the per-level counters for the hot path.
	levelCounters [Levels + 1]*obs.Counter
)

func init() {
	for lvl := 1; lvl <= Levels; lvl++ {
		levelCounters[lvl] = byLevelVec.With(fmt.Sprintf("P%d", lvl))
	}
}

// Levels is the number of voltage levels (P1..P7).
const Levels = 7

// relError is the relative output error σ at each level, as a fraction of
// the output's RMS value. P1 (lowest voltage) is noisiest. The geometric
// ladder spans roughly a 8× error range, which reproduces the qualitative
// behaviour in the paper: low levels are only usable by error-tolerant
// operators, high levels are near-free.
var relError = [Levels + 1]float64{
	0,     // unused (levels are 1-based)
	0.24,  // P1
	0.17,  // P2
	0.12,  // P3
	0.085, // P4
	0.06,  // P5
	0.042, // P6
	0.03,  // P7
}

// energyReduction is the energy advantage over the digital FP32 baseline
// execution of the same operator, per level. Lower voltage saves more
// energy: P1 ≈ 5.5×, P7 ≈ 3.4× (§2.3).
var energyReduction = [Levels + 1]float64{0, 5.5, 5.15, 4.8, 4.45, 4.1, 3.75, 3.4}

// throughputGain is the speedup over the digital baseline; to first order
// the analog array's latency does not depend on the voltage swing, so a
// single mid-range constant from the cited 1.4–3.4× span is used.
const throughputGain = 2.4

// ErrorSigma returns the relative error σ for a voltage level (1..7).
func ErrorSigma(level int) float64 {
	checkLevel(level)
	return relError[level]
}

// EnergyReduction returns the energy advantage factor over digital FP32
// execution for a voltage level.
func EnergyReduction(level int) float64 {
	checkLevel(level)
	return energyReduction[level]
}

// ThroughputGain returns the speedup factor over digital FP32 execution.
func ThroughputGain(level int) float64 {
	checkLevel(level)
	return throughputGain
}

func checkLevel(level int) {
	if level < 1 || level > Levels {
		panic(fmt.Sprintf("promise: voltage level %d not in 1..%d", level, Levels))
	}
}

// Perturb simulates executing an operator on PROMISE at the given voltage
// level: it adds N(0, σ·RMS(out)) noise to every element of out in place.
// The exact digital result must already be in out (the functional
// simulator computes exactly, then injects the analog error). The supplied
// RNG makes the injected noise reproducible.
func Perturb(out *tensor.Tensor, level int, rng *tensor.RNG) {
	checkLevel(level)
	d := out.Data()
	if len(d) == 0 {
		return
	}
	var sum float64
	for _, v := range d {
		sum += float64(v) * float64(v)
	}
	rms := math.Sqrt(sum / float64(len(d)))
	//lint:ignore floateq guards division by an exactly-zero RMS (all-zero output tensor)
	if rms == 0 {
		rms = 1e-6
	}
	sigma := relError[level] * rms
	for i := range d {
		d[i] += float32(rng.NormFloat64() * sigma)
	}
	mPerturbs.Inc()
	mElems.Add(int64(len(d)))
	levelCounters[level].Inc()
	hSigma.Observe(sigma)
}

// Banks and BankKB describe the accelerator's memory organization
// (Table 2 of the paper: 256 banks × 16 KB at 1 GHz). They bound the
// operator sizes that fit on the accelerator in a single pass; larger
// operators are tiled, which the timing model folds into throughputGain.
const (
	Banks       = 256
	BankKB      = 16
	FrequencyHz = 1_000_000_000
)

// FitsWeights reports whether an operator with the given weight-element
// count fits in PROMISE's on-chip banks in one pass (2 bytes per element,
// as the array computes on 8–16 bit operands).
func FitsWeights(weightElems int) bool {
	return weightElems*2 <= Banks*BankKB*1024
}
