package promise

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestErrorDecreasesWithVoltage(t *testing.T) {
	for l := 1; l < Levels; l++ {
		if ErrorSigma(l) <= ErrorSigma(l+1) {
			t.Errorf("σ(P%d)=%v should exceed σ(P%d)=%v", l, ErrorSigma(l), l+1, ErrorSigma(l+1))
		}
	}
	if ErrorSigma(Levels) <= 0 {
		t.Error("no PROMISE mode is exact (§2.3); σ(P7) must be > 0")
	}
}

func TestEnergyLadderMatchesCitedRange(t *testing.T) {
	if got := EnergyReduction(1); got != 5.5 {
		t.Errorf("P1 energy reduction = %v, want 5.5", got)
	}
	if got := EnergyReduction(7); got != 3.4 {
		t.Errorf("P7 energy reduction = %v, want 3.4", got)
	}
	for l := 1; l < Levels; l++ {
		if EnergyReduction(l) <= EnergyReduction(l+1) {
			t.Errorf("energy reduction must decrease with voltage: P%d vs P%d", l, l+1)
		}
	}
}

func TestThroughputGainInCitedRange(t *testing.T) {
	for l := 1; l <= Levels; l++ {
		g := ThroughputGain(l)
		if g < 1.4 || g > 3.4 {
			t.Errorf("P%d throughput gain %v outside cited 1.4–3.4×", l, g)
		}
	}
}

func TestLevelRangePanics(t *testing.T) {
	for _, bad := range []int{0, 8, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("level %d should panic", bad)
				}
			}()
			ErrorSigma(bad)
		}()
	}
}

func TestPerturbStatistics(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.New(100000)
	x.Fill(1) // RMS = 1
	y := x.Clone()
	Perturb(y, 4, rng)
	var sum, sq float64
	for i, v := range y.Data() {
		d := float64(v) - 1
		sum += d
		sq += d * d
		_ = i
	}
	n := float64(y.Elems())
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	want := ErrorSigma(4)
	if math.Abs(mean) > 0.005 {
		t.Errorf("noise mean = %v, want ~0", mean)
	}
	if math.Abs(std-want)/want > 0.05 {
		t.Errorf("noise std = %v, want ~%v", std, want)
	}
}

func TestPerturbScalesWithOutputMagnitude(t *testing.T) {
	rng := tensor.NewRNG(2)
	small := tensor.New(10000)
	small.Fill(0.1)
	big := tensor.New(10000)
	big.Fill(10)
	s1, s2 := small.Clone(), big.Clone()
	Perturb(s1, 3, rng)
	Perturb(s2, 3, rng)
	errSmall := tensor.MSE(s1, small)
	errBig := tensor.MSE(s2, big)
	if errBig < errSmall*100 {
		t.Errorf("error should scale with RMS: small %g, big %g", errSmall, errBig)
	}
}

func TestPerturbDeterministic(t *testing.T) {
	a := tensor.New(100)
	a.Fill(2)
	b := a.Clone()
	Perturb(a, 1, tensor.NewRNG(7))
	Perturb(b, 1, tensor.NewRNG(7))
	if !tensor.Equal(a, b, 0) {
		t.Fatal("same seed must give identical noise")
	}
}

func TestPerturbZeroTensorDoesNotNaN(t *testing.T) {
	z := tensor.New(16)
	Perturb(z, 1, tensor.NewRNG(3))
	for _, v := range z.Data() {
		if math.IsNaN(float64(v)) {
			t.Fatal("NaN injected on zero tensor")
		}
	}
}

func TestFitsWeights(t *testing.T) {
	if !FitsWeights(1000) {
		t.Error("small operator should fit")
	}
	if FitsWeights(Banks * BankKB * 1024) { // 2 bytes/elem → this is 2× capacity
		t.Error("oversized operator should not fit")
	}
}
