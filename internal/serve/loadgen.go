package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// LoadConfig drives a load-generation run against a serving endpoint.
type LoadConfig struct {
	// URL is the server base URL, e.g. "http://127.0.0.1:8080". Required.
	URL string
	// OpenLoop selects the arrival model: false (closed loop) keeps
	// Concurrency workers each waiting for their previous response —
	// throughput adapts to the server; true (open loop) fires requests
	// at Poisson arrivals of rate RPS regardless of completions — the
	// arrival process does not slow down when the server does, which is
	// what exposes queue buildup and backpressure.
	OpenLoop bool
	// Concurrency is the closed-loop worker count (default 4).
	Concurrency int
	// RPS is the open-loop Poisson arrival rate (default 100).
	RPS float64
	// Requests is the total request budget (default 100).
	Requests int
	// ItemsPerRequest sizes each request's batch axis (default 1).
	ItemsPerRequest int
	// Seed drives input synthesis and the arrival process. Two runs
	// with the same seed issue identical request sequences.
	Seed int64
	// SLO is the attainment threshold; zero fetches the server's own
	// SLO from /v1/spec.
	SLO time.Duration
	// Timeout bounds each HTTP call (default 30s).
	Timeout time.Duration
	// SlowestK is how many of the slowest OK requests to report trace
	// IDs for (default 3). Trace IDs come from the traceparent response
	// header, so the report links directly into /debug/flight and the
	// server's kept tail samples; requests answered without a
	// traceparent header (tracing disabled) are skipped.
	SlowestK int
}

func (lc LoadConfig) withDefaults() LoadConfig {
	if lc.Concurrency <= 0 {
		lc.Concurrency = 4
	}
	if lc.RPS <= 0 {
		lc.RPS = 100
	}
	if lc.Requests <= 0 {
		lc.Requests = 100
	}
	if lc.ItemsPerRequest <= 0 {
		lc.ItemsPerRequest = 1
	}
	if lc.Timeout <= 0 {
		lc.Timeout = 30 * time.Second
	}
	if lc.SlowestK <= 0 {
		lc.SlowestK = 3
	}
	return lc
}

// TraceRef points a report line at one traced request: the trace ID the
// server answered with (traceparent response header), the HTTP status,
// and the client-observed latency.
type TraceRef struct {
	TraceID   string  `json:"trace_id"`
	Status    int     `json:"status"`
	LatencyMs float64 `json:"latency_ms"`
}

// LoadReport summarizes a load-generation run.
type LoadReport struct {
	Mode     string `json:"mode"`
	Sent     int    `json:"sent"`
	OK       int    `json:"ok"`
	Rejected int    `json:"rejected"` // 429/503 backpressure answers
	Expired  int    `json:"expired"`  // 504 deadline expiries
	Failed   int    `json:"failed"`   // transport errors and 5xx

	DurationSec   float64 `json:"duration_sec"`
	ThroughputRPS float64 `json:"throughput_rps"`

	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`

	// SLOAttainment is the fraction of accepted (OK) requests answered
	// within the SLO; SLOMs echoes the threshold used.
	SLOAttainment float64 `json:"slo_attainment"`
	SLOMs         float64 `json:"slo_ms"`

	// ConfigSwitches/Batches/CurveSwaps snapshot the server's control
	// loop after the run (from /statz), so a report shows how hard the
	// tuner worked to deliver the attainment above.
	ConfigSwitches int   `json:"config_switches"`
	CurveSwaps     int   `json:"curve_swaps"`
	Batches        int64 `json:"batches"`

	// SlowestTraces are the SlowestK slowest OK requests that carried a
	// traceparent response header, slowest first; FailedTraces are all
	// non-OK responses that carried one. Both let an operator jump from
	// the loadgen summary straight to /debug/flight or the server's kept
	// tail samples.
	SlowestTraces []TraceRef `json:"slowest_traces,omitempty"`
	FailedTraces  []TraceRef `json:"failed_traces,omitempty"`
}

// String renders the report for terminal output.
func (r *LoadReport) String() string {
	s := fmt.Sprintf(
		"%s loop: %d sent, %d ok, %d rejected, %d expired, %d failed in %.2fs (%.1f req/s)\n"+
			"latency: p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n"+
			"SLO %.1fms attainment: %.1f%% of accepted; server: %d switches, %d curve swaps, %d batches",
		r.Mode, r.Sent, r.OK, r.Rejected, r.Expired, r.Failed, r.DurationSec, r.ThroughputRPS,
		r.P50Ms, r.P95Ms, r.P99Ms, r.MaxMs,
		r.SLOMs, 100*r.SLOAttainment, r.ConfigSwitches, r.CurveSwaps, r.Batches)
	for _, tr := range r.SlowestTraces {
		s += fmt.Sprintf("\nslow  trace %s: %.2fms (HTTP %d)", tr.TraceID, tr.LatencyMs, tr.Status)
	}
	for _, tr := range r.FailedTraces {
		s += fmt.Sprintf("\nfailed trace %s: HTTP %d after %.2fms", tr.TraceID, tr.Status, tr.LatencyMs)
	}
	return s
}

// RunLoad executes a load-generation run. It fetches /v1/spec for the
// input shape (and the SLO unless overridden), synthesizes seeded
// inputs, fires Requests requests under the configured arrival model,
// and reports latency quantiles and SLO attainment.
func RunLoad(ctx context.Context, lc LoadConfig) (*LoadReport, error) {
	lc = lc.withDefaults()
	if lc.URL == "" {
		return nil, fmt.Errorf("loadgen: missing server URL")
	}
	client := &http.Client{Timeout: lc.Timeout}
	spec, err := fetchSpec(ctx, client, lc.URL)
	if err != nil {
		return nil, err
	}
	slo := lc.SLO
	if slo <= 0 {
		slo = time.Duration(spec.SLOMs * float64(time.Millisecond))
	}

	// Pre-synthesize a small pool of request bodies: deterministic from
	// the seed, cycled by request index so the server sees varied but
	// reproducible inputs.
	rng := tensor.NewRNG(lc.Seed)
	bodies := make([][]byte, 8)
	for i := range bodies {
		dims := append([]int{lc.ItemsPerRequest}, spec.ItemDims...)
		t := tensor.New(dims...)
		rng.FillNormal(t, 0, 1)
		b, err := json.Marshal(InferRequest{Input: TensorJSON{Dims: dims, Data: t.Data()}})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	rep := &LoadReport{Mode: "closed", SLOMs: slo.Seconds() * 1e3}
	var (
		mu        sync.Mutex
		latencies []float64 // milliseconds, OK requests only
		withinSLO int
		okTraces  []TraceRef // OK responses that carried a traceparent header
	)
	record := func(status int, d time.Duration, tid string, err error) {
		mu.Lock()
		defer mu.Unlock()
		rep.Sent++
		ref := TraceRef{TraceID: tid, Status: status, LatencyMs: d.Seconds() * 1e3}
		switch {
		case err != nil:
			rep.Failed++
		case status == http.StatusOK:
			rep.OK++
			latencies = append(latencies, d.Seconds()*1e3)
			if d <= slo {
				withinSLO++
			}
			if tid != "" {
				okTraces = append(okTraces, ref)
			}
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			rep.Rejected++
			if tid != "" {
				rep.FailedTraces = append(rep.FailedTraces, ref)
			}
		case status == http.StatusGatewayTimeout:
			rep.Expired++
			if tid != "" {
				rep.FailedTraces = append(rep.FailedTraces, ref)
			}
		default:
			rep.Failed++
			if tid != "" {
				rep.FailedTraces = append(rep.FailedTraces, ref)
			}
		}
	}
	fire := func(i int) {
		status, d, tid, err := postInfer(ctx, client, lc.URL, bodies[i%len(bodies)])
		record(status, d, tid, err)
	}

	start := time.Now()
	if lc.OpenLoop {
		rep.Mode = "open"
		// Poisson arrivals: exponential inter-arrival gaps at rate RPS,
		// each request fired asynchronously so a slow server cannot
		// throttle the arrival process.
		var wg sync.WaitGroup
		arrival := tensor.NewRNG(lc.Seed + 1)
	openLoop:
		for i := 0; i < lc.Requests; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				fire(i)
			}(i)
			gap := -math.Log(1-arrival.Float64()) / lc.RPS
			select {
			case <-time.After(time.Duration(gap * float64(time.Second))):
			case <-ctx.Done():
				break openLoop
			}
		}
		wg.Wait()
	} else {
		var wg sync.WaitGroup
		next := make(chan int, lc.Requests)
		for i := 0; i < lc.Requests; i++ {
			next <- i
		}
		close(next)
		for w := 0; w < lc.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if ctx.Err() != nil {
						return
					}
					fire(i)
				}
			}()
		}
		wg.Wait()
	}
	rep.DurationSec = time.Since(start).Seconds()
	if rep.DurationSec > 0 {
		rep.ThroughputRPS = float64(rep.Sent) / rep.DurationSec
	}

	sort.Float64s(latencies)
	rep.P50Ms = quantileMs(latencies, 0.50)
	rep.P95Ms = quantileMs(latencies, 0.95)
	rep.P99Ms = quantileMs(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.MaxMs = latencies[n-1]
		rep.SLOAttainment = float64(withinSLO) / float64(n)
	}
	// Slowest-first among traced OK requests; non-OK traces stay in
	// arrival order (they are usually few and each one matters).
	sort.SliceStable(okTraces, func(i, j int) bool { return okTraces[i].LatencyMs > okTraces[j].LatencyMs })
	if len(okTraces) > lc.SlowestK {
		okTraces = okTraces[:lc.SlowestK]
	}
	rep.SlowestTraces = okTraces
	if st, err := fetchStatz(ctx, client, lc.URL); err == nil {
		rep.ConfigSwitches = st.Switches
		rep.CurveSwaps = st.CurveSwaps
		rep.Batches = st.Batches
	}
	return rep, nil
}

// TraceIDs collects the distinct trace IDs a report refers to, slowest
// OK traces first, then failures.
func (r *LoadReport) TraceIDs() []string {
	seen := make(map[string]bool)
	var out []string
	for _, refs := range [][]TraceRef{r.SlowestTraces, r.FailedTraces} {
		for _, ref := range refs {
			if ref.TraceID != "" && !seen[ref.TraceID] {
				seen[ref.TraceID] = true
				out = append(out, ref.TraceID)
			}
		}
	}
	return out
}

// VerifyFlight fetches the server's /debug/flight dump and asserts that
// (a) an event named wantEvent is present, and (b) when tids is
// non-empty, at least one span entry belongs to one of those traces.
// It is the assertion half of `make trace-smoke`: loadgen injects load,
// the server latches drift and dumps, and this proves the dump actually
// links back to a request the client saw.
func VerifyFlight(ctx context.Context, client *http.Client, base, wantEvent string, tids []string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/debug/flight", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: flight fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: flight fetch: HTTP %d", resp.StatusCode)
	}
	want := make(map[string]bool, len(tids))
	for _, t := range tids {
		want[t] = true
	}
	var (
		haveEvent bool
		haveTrace bool
		entries   int
	)
	dec := json.NewDecoder(resp.Body)
	for {
		var e obs.FlightEntry
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				break
			}
			return fmt.Errorf("loadgen: flight dump parse: %w", err)
		}
		entries++
		if e.Kind == "event" && e.Name == wantEvent {
			haveEvent = true
		}
		if e.Kind == "span" && want[e.TraceID.String()] {
			haveTrace = true
		}
	}
	if !haveEvent {
		return fmt.Errorf("loadgen: flight dump (%d entries) missing event %q", entries, wantEvent)
	}
	if len(tids) > 0 && !haveTrace {
		return fmt.Errorf("loadgen: flight dump (%d entries) has no span from traces %v", entries, tids)
	}
	return nil
}

func quantileMs(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

func fetchSpec(ctx context.Context, client *http.Client, base string) (*SpecResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/spec", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("loadgen: spec fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: spec fetch: HTTP %d", resp.StatusCode)
	}
	var spec SpecResponse
	if err := json.NewDecoder(resp.Body).Decode(&spec); err != nil {
		return nil, err
	}
	return &spec, nil
}

func fetchStatz(ctx context.Context, client *http.Client, base string) (*StatzBody, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/statz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st StatzBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// postInfer fires one inference request and returns the status, the
// client-observed latency, and the trace ID from the traceparent
// response header ("" when the server answered without one).
func postInfer(ctx context.Context, client *http.Client, base string, body []byte) (int, time.Duration, string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/infer", bytes.NewReader(body))
	if err != nil {
		return 0, 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	d := time.Since(start)
	if err != nil {
		return 0, d, "", err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	tid := ""
	if sc := obs.Extract(resp.Header); sc.Valid() {
		tid = sc.TraceID.String()
	}
	return resp.StatusCode, d, tid, nil
}
