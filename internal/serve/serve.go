// Package serve is the adaptive inference serving layer: it runs a
// tensor dataflow graph behind an HTTP API and a dynamic micro-batching
// queue, and drives the runtime tuner from measured batch latencies so
// the service holds a per-request latency SLO by trading approximation
// for speed (the paper's §5 run-time phase, deployed online).
//
// Request path: POST /v1/infer → bounded admission queue (backpressure
// with 429 + Retry-After when full) → micro-batcher coalesces queued
// requests into one batch (graph.ConcatBatch) → a single approximate
// graph execution under the configuration the tuner currently selects →
// graph.SplitBatch fans results back out to the waiting handlers. Every
// batch execution feeds one measured latency back to the tuner
// (RecordInvocationAt with the curve index acquired before the run, so
// samples are always attributed to the configuration that produced
// them); once per control window the tuner re-selects from the tradeoff
// curve. Drift detection surfaces through /healthz (503 once
// RecalibrationNeeded latches) and the serve.recalibration_needed
// gauge; POST /v1/curve hot-swaps a freshly calibrated curve without a
// restart.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pareto"
	"repro/internal/tensor"
)

// Defaults for optional Config fields.
const (
	DefaultWindow       = 8
	DefaultMaxBatch     = 8
	DefaultMaxQueue     = 64
	DefaultLinger       = 2 * time.Millisecond
	DefaultDrainTimeout = 10 * time.Second
	// readHeaderTimeout bounds header reads on the listener so a
	// slowloris peer cannot pin accept slots (same rationale as
	// obs.ServeMetrics).
	readHeaderTimeout = 5 * time.Second
	// maxBodyBytes bounds an inference request body.
	maxBodyBytes = 64 << 20
)

// Config assembles a Server.
type Config struct {
	// Graph is the compiled model to serve. Required.
	Graph *graph.Graph
	// Curve is the shipped QoS/performance tradeoff curve the tuner
	// selects from. Required; every point's configuration is validated
	// against the graph.
	Curve *pareto.Curve
	// ItemDims is the per-item input shape (without the batch axis),
	// e.g. [1, 28, 28]. Required: admission validates request tensors
	// against it so the batcher only ever coalesces compatible shapes.
	ItemDims []int

	// Policy selects the §5 re-selection policy (default PolicyEnforce).
	Policy core.Policy
	// SLO is the per-request end-to-end latency objective (queue wait +
	// execution). Required.
	SLO time.Duration
	// ExecBudget is the per-batch execution-time target handed to the
	// tuner (its targetTime). Zero defaults to SLO/2, leaving headroom
	// for queueing; approxserve can instead calibrate it from measured
	// baseline executions.
	ExecBudget time.Duration
	// Window is the tuner's control window in batch executions
	// (default DefaultWindow).
	Window int
	// Hysteresis overrides the tuner's re-selection deadband: 0 keeps
	// core.DefaultHysteresis, negative disables the band entirely.
	Hysteresis float64

	// MaxBatch caps the items coalesced into one execution (default
	// DefaultMaxBatch). A single request may carry at most MaxBatch
	// items.
	MaxBatch int
	// MaxQueue bounds the admission queue in requests (default
	// DefaultMaxQueue); a full queue answers 429 + Retry-After.
	MaxQueue int
	// Linger is how long the batcher waits for more requests after the
	// first of a batch arrives (default DefaultLinger).
	Linger time.Duration
	// MaxWait caps how long an accepted request may wait end-to-end
	// before the batcher expires it (default 4×SLO). Requests may
	// tighten it per-call via deadline_ms.
	MaxWait time.Duration

	// Seed drives the tuner's and the executor's deterministic RNG.
	Seed int64

	// Tracer, when set, records request-scoped spans for the serving
	// path: a serve:request root per request (continuing an inbound
	// traceparent when present and echoing the identity in the response
	// header), a serve:admit child, and per-batch serve:batch /
	// serve:execute / serve:tuner spans linking every member request's
	// trace. Nil disables request tracing; the disabled path stays
	// allocation-free.
	Tracer *obs.Tracer
	// Sampler receives the tail-sampling decision for every finished
	// request trace. Register it as a sink on Tracer so it sees the span
	// records it buffers. Nil disables sampling.
	Sampler *obs.TailSampler
	// SlowQuantile is the running quantile of serve.request_seconds
	// above which a finished request is judged slow for the sampler
	// (default 0.9).
	SlowQuantile float64
	// FlightLog, when set, receives one automatic flight-recorder JSONL
	// dump on the first drift latch and one on the first non-draining
	// /healthz 503 (re-armed by a curve swap). The dumps come from
	// different goroutines (batcher and HTTP handlers) but the server
	// serializes them, so a plain *os.File works.
	FlightLog io.Writer

	// SlowdownFactor > 1 stretches every batch's wall time by that
	// factor once SlowdownAfter batches have run — the injected-slowdown
	// hook trace-smoke uses to provoke a real drift latch end to end.
	SlowdownFactor float64
	// SlowdownAfter is the batch count after which SlowdownFactor
	// applies.
	SlowdownAfter int
	// MeasureExec, when set, replaces the wall clock as the batch
	// latency source fed to the tuner: it receives the executed
	// configuration and item count and returns seconds. Tests and
	// simulations use it to make the control loop's input — and hence
	// its switch trace — fully deterministic.
	MeasureExec func(cfg approx.Config, items int) float64
	// DrainTimeout bounds Close's graceful drain (default
	// DefaultDrainTimeout).
	DrainTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = DefaultMaxQueue
	}
	if c.Linger <= 0 {
		c.Linger = DefaultLinger
	}
	if c.ExecBudget <= 0 {
		c.ExecBudget = c.SLO / 2
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 4 * c.SLO
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.SlowQuantile <= 0 || c.SlowQuantile >= 1 {
		c.SlowQuantile = 0.9
	}
	return c
}

// Server is one serving instance: an admission queue, a micro-batcher
// goroutine, and the runtime tuner controlling the approximation level.
type Server struct {
	cfg   Config
	tuner *core.RuntimeTuner
	rng   *tensor.RNG

	queue    chan *pending
	loopDone chan struct{}
	// held is a request the batcher pulled but deferred to the next
	// batch (it would overflow MaxBatch). Loop-goroutine private.
	held *pending

	mu       sync.Mutex
	draining bool
	enqWG    sync.WaitGroup // admissions racing Shutdown's queue close
	trace    []int          // curve index executed per batch, bounded

	ln   net.Listener
	hsrv *http.Server

	// slowNs is the live "slow request" threshold for tail sampling,
	// re-derived from the request-latency quantile after each batch.
	slowNs atomic.Int64
	// flightMu serializes the automatic FlightLog dumps: the drift latch
	// (batcher goroutine) and the /healthz 503 transition (handler
	// goroutine) can fire concurrently, and FlightLog is typically a
	// plain *os.File whose JSONL lines must not interleave.
	flightMu sync.Mutex
	// driftLatched / healthDumped gate the one-shot automatic flight
	// dumps (re-armed by a curve swap).
	driftLatched atomic.Bool
	healthDumped atomic.Bool

	stats stats
}

// New validates the configuration, builds the tuner and starts the
// batcher. The server accepts work immediately through Handler; Start
// additionally binds a listener.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Graph == nil {
		return nil, fmt.Errorf("serve: nil graph")
	}
	if cfg.Curve == nil || cfg.Curve.Len() == 0 {
		return nil, fmt.Errorf("serve: empty tradeoff curve")
	}
	if len(cfg.ItemDims) == 0 {
		return nil, fmt.Errorf("serve: missing per-item input dims")
	}
	if cfg.SLO <= 0 {
		return nil, fmt.Errorf("serve: missing latency SLO")
	}
	for i, pt := range cfg.Curve.Points {
		if err := cfg.Graph.ValidateConfig(pt.Config); err != nil {
			return nil, fmt.Errorf("serve: curve point %d: %w", i, err)
		}
	}
	rt, err := core.NewRuntimeTuner(cfg.Curve, cfg.Policy, cfg.ExecBudget.Seconds(), cfg.Window, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Hysteresis > 0 {
		rt.SetHysteresis(cfg.Hysteresis)
	} else if cfg.Hysteresis < 0 {
		rt.SetHysteresis(0)
	}
	s := &Server{
		cfg:      cfg,
		tuner:    rt,
		rng:      tensor.NewRNG(cfg.Seed + 1),
		queue:    make(chan *pending, cfg.MaxQueue),
		loopDone: make(chan struct{}),
	}
	// Pre-pack weight panels once so the first request doesn't pay the
	// packing cost inside its latency budget.
	cfg.Graph.PrepackWeights()
	go s.loop()
	return s, nil
}

// Tuner exposes the runtime controller (switch traces, health
// snapshots, hysteresis adjustment).
func (s *Server) Tuner() *core.RuntimeTuner { return s.tuner }

// BatchTrace returns the curve index executed by each batch so far,
// oldest first (bounded like the tuner's switch trace). Two runs with
// the same seed, request sequence and MeasureExec hook produce
// identical traces regardless of GOMAXPROCS.
func (s *Server) BatchTrace() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.trace...)
}

// Start binds addr and serves the HTTP API until Close. It returns once
// the listener is bound; use Addr for the chosen port with ":0".
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.hsrv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: readHeaderTimeout}
	hsrv := s.hsrv
	s.mu.Unlock()
	go func() {
		_ = hsrv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound listen address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains gracefully: new admissions are refused with 503,
// every queued request is executed (or expired against its deadline),
// and the batcher exits. It then closes the HTTP server, waiting for
// in-flight handlers, and the tuner. Returns ctx.Err() if the drain
// outlives the context.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	hsrv := s.hsrv
	s.mu.Unlock()
	if first {
		// All admissions observe draining before enqWG.Wait returns, so
		// nothing can slip into the queue after it is closed.
		s.enqWG.Wait()
		close(s.queue)
	}
	select {
	case <-s.loopDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	if hsrv != nil {
		if err := hsrv.Shutdown(ctx); err != nil {
			return err
		}
	}
	s.tuner.Close()
	return nil
}

// Close drains with the configured DrainTimeout and then force-closes
// whatever remains.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	err := s.Shutdown(ctx)
	s.mu.Lock()
	hsrv := s.hsrv
	s.mu.Unlock()
	if hsrv != nil {
		_ = hsrv.Close()
	}
	return err
}

// TensorJSON is the wire form of a dense float32 tensor.
type TensorJSON struct {
	Dims []int     `json:"dims"`
	Data []float32 `json:"data"`
}

// InferRequest is the POST /v1/infer body. DeadlineMs optionally
// tightens the request's end-to-end deadline below the server's
// MaxWait; the deadline propagates by context into the batcher, which
// expires late requests instead of executing them.
type InferRequest struct {
	Input      TensorJSON `json:"input"`
	DeadlineMs float64    `json:"deadline_ms,omitempty"`
}

// InferResponse is the POST /v1/infer reply: the output tensor plus the
// approximation configuration that produced it and the request's
// queue/execution breakdown.
type InferResponse struct {
	Output      TensorJSON `json:"output"`
	Config      string     `json:"config"`
	ConfigIndex int        `json:"config_index"`
	BatchItems  int        `json:"batch_items"`
	QueueMs     float64    `json:"queue_ms"`
	ExecMs      float64    `json:"exec_ms"`
}

// SpecResponse describes the serving endpoint (GET /v1/spec).
type SpecResponse struct {
	Program  string  `json:"program"`
	ItemDims []int   `json:"item_dims"`
	SLOMs    float64 `json:"slo_ms"`
	MaxBatch int     `json:"max_batch"`
	MaxQueue int     `json:"max_queue"`
	Policy   string  `json:"policy"`
	Points   int     `json:"points"`
}

// Handler returns the serving API:
//
//	POST /v1/infer     — run inference (micro-batched, SLO-controlled)
//	GET  /v1/spec      — serving contract (shapes, SLO, queue limits)
//	POST /v1/curve     — hot-swap a freshly calibrated tradeoff curve
//	GET  /healthz      — liveness; 503 while draining or once drift latches
//	GET  /statz        — control-loop and queue state snapshot (JSON)
//	GET  /metrics      — process metrics (JSON or Prometheus text)
//	GET  /debug/flight — flight-recorder dump (JSONL, recent spans+events)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/infer", timed("/v1/infer", http.HandlerFunc(s.handleInfer)))
	mux.Handle("GET /v1/spec", timed("/v1/spec", http.HandlerFunc(s.handleSpec)))
	mux.Handle("POST /v1/curve", timed("/v1/curve", http.HandlerFunc(s.handleCurve)))
	mux.Handle("GET /healthz", timed("/healthz", http.HandlerFunc(s.handleHealthz)))
	mux.Handle("GET /statz", timed("/statz", http.HandlerFunc(s.handleStatz)))
	mux.Handle("GET /metrics", timed("/metrics", obs.MetricsHandler(nil)))
	mux.Handle("GET /debug/flight", timed("/debug/flight", obs.Flight().Handler()))
	return mux
}

// timed wraps a route with the per-endpoint latency histogram, labeled
// by the route pattern (never the raw URL, which is unbounded).
func timed(route string, next http.Handler) http.Handler {
	h := qEndpoint.With(route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		h.Observe(time.Since(start).Seconds())
	})
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	mRequests.Inc()
	gInFlight.Add(1)
	defer gInFlight.Add(-1)

	start := time.Now()
	//lint:ignore spanend finishRequest ends the request span once latency and status are known
	sp := s.startRequestSpan(w, r)
	var sw0, al0 int
	if sp != nil {
		// Baseline tuner-event counters: a switch or drift alarm landing
		// while this request is in flight makes its trace "eventful".
		sw0, al0 = s.tuner.Switches(), s.tuner.DriftAlarms()
	}
	status := s.serveInfer(w, r, sp)
	s.finishRequest(sp, time.Since(start), status, sw0, al0)
}

// startRequestSpan opens the per-request root span when request tracing
// is enabled, continuing an inbound traceparent when one arrived, and
// echoes the request's identity in the response header so clients can
// report trace IDs. Returns nil — without touching the header or
// allocating — when tracing is disabled.
func (s *Server) startRequestSpan(w http.ResponseWriter, r *http.Request) *obs.Span {
	tr := s.cfg.Tracer
	if tr == nil {
		return nil
	}
	sp := tr.StartRemote(obs.Extract(r.Header), "serve:request")
	w.Header().Set(obs.TraceparentHeader, obs.FormatTraceparent(sp.Context()))
	return sp
}

// finishRequest ends the request's root span and makes the tail-sampling
// decision now that latency, status and tuner-event overlap are known.
// The latency histogram is fed here: with a trace-linked exemplar when
// the trace was kept, plain otherwise — so every exposed exemplar
// references a retrievable trace.
func (s *Server) finishRequest(sp *obs.Span, total time.Duration, status int, sw0, al0 int) {
	sec := total.Seconds()
	if sp == nil {
		if status == http.StatusOK {
			qRequest.Observe(sec)
		}
		return
	}
	sp.With("status", status)
	sp.End()
	tid := sp.TraceID()
	thr := s.slowNs.Load()
	v := obs.Verdict{
		Slow:     thr > 0 && total.Nanoseconds() >= thr,
		Errored:  status == http.StatusTooManyRequests || status >= http.StatusInternalServerError,
		Eventful: s.tuner.Switches() != sw0 || s.tuner.DriftAlarms() != al0,
	}
	kept := false
	if s.cfg.Sampler != nil {
		kept, _ = s.cfg.Sampler.Finish(tid, v)
	}
	if status != http.StatusOK {
		return
	}
	if kept {
		qRequest.ObserveExemplar(sec, tid)
	} else {
		qRequest.Observe(sec)
	}
}

// serveInfer is the request body of POST /v1/infer: admit, wait for the
// batcher's answer, reply. It returns the HTTP status it wrote.
func (s *Server) serveInfer(w http.ResponseWriter, r *http.Request, sp *obs.Span) int {
	p, cancel, status := s.admit(w, r, sp)
	if p == nil {
		return status
	}
	defer cancel()

	// The batcher owns the request now and answers exactly once —
	// including expiry against the context deadline.
	res := <-p.res
	if res.err != nil {
		if p.ctx.Err() != nil {
			s.stats.expired.Add(1)
			mExpired.Inc()
			obs.Flight().Event("serve.deadline_expired", "", sp.TraceID())
			httpError(w, http.StatusGatewayTimeout, "deadline exceeded before execution")
			return http.StatusGatewayTimeout
		}
		s.stats.failed.Add(1)
		mFailed.Inc()
		httpError(w, http.StatusInternalServerError, res.err.Error())
		return http.StatusInternalServerError
	}
	total := time.Since(p.enq)
	if total > s.cfg.SLO {
		s.stats.sloMisses.Add(1)
		mSLOMiss.Inc()
	}
	sp.With("config", res.cfgLabel).With("batch_items", res.batchItems)
	s.stats.served.Add(1)
	writeJSON(w, http.StatusOK, InferResponse{
		Output:      TensorJSON{Dims: res.out.Shape().Dims(), Data: res.out.Data()},
		Config:      res.cfgLabel,
		ConfigIndex: res.cfgIdx,
		BatchItems:  res.batchItems,
		QueueMs:     res.queueWait.Seconds() * 1e3,
		ExecMs:      res.exec.Seconds() * 1e3,
	})
	return http.StatusOK
}

// admit parses, validates and enqueues one request under a serve:admit
// child span. On rejection it answers the request itself and returns a
// nil pending with the status written; on success the batcher owns the
// returned pending and the caller must invoke the cancel func.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, sp *obs.Span) (*pending, context.CancelFunc, int) {
	asp := sp.Child("serve:admit")
	defer asp.End()

	var req InferRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err == nil {
		err = json.Unmarshal(body, &req)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return nil, nil, http.StatusBadRequest
	}
	in, items, err := s.admitTensor(req.Input)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return nil, nil, http.StatusBadRequest
	}
	if items > s.cfg.MaxBatch {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request carries %d items, server max_batch is %d", items, s.cfg.MaxBatch))
		return nil, nil, http.StatusRequestEntityTooLarge
	}
	asp.With("items", items)

	wait := s.cfg.MaxWait
	if req.DeadlineMs > 0 {
		if d := time.Duration(req.DeadlineMs * float64(time.Millisecond)); d < wait {
			wait = d
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	p := &pending{in: in, items: items, ctx: ctx, enq: time.Now(), res: make(chan result, 1), sc: sp.Context()}
	switch s.enqueue(p) {
	case admitOK:
		return p, cancel, http.StatusOK
	case admitDraining:
		cancel()
		s.stats.rejected.Add(1)
		mRejectedDrain.Inc()
		obs.Flight().Event("serve.reject_draining", "", sp.TraceID())
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return nil, nil, http.StatusServiceUnavailable
	default: // admitFull
		cancel()
		s.stats.rejected.Add(1)
		mRejectedFull.Inc()
		obs.Flight().Event("serve.reject_full", "", sp.TraceID())
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "admission queue full")
		return nil, nil, http.StatusTooManyRequests
	}
}

// admitTensor validates a request tensor against the serving item shape
// and normalizes it to an explicit batch axis.
func (s *Server) admitTensor(tj TensorJSON) (*tensor.Tensor, int, error) {
	item := s.cfg.ItemDims
	var dims []int
	switch {
	case len(tj.Dims) == len(item) && sameInts(tj.Dims, item):
		dims = append([]int{1}, item...)
	case len(tj.Dims) == len(item)+1 && tj.Dims[0] >= 1 && sameInts(tj.Dims[1:], item):
		dims = append([]int(nil), tj.Dims...)
	default:
		return nil, 0, fmt.Errorf("input dims %v do not match item shape %v (with optional leading batch axis)", tj.Dims, item)
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	if len(tj.Data) != n {
		return nil, 0, fmt.Errorf("input carries %d values, dims %v need %d", len(tj.Data), tj.Dims, n)
	}
	return tensor.FromSlice(append([]float32(nil), tj.Data...), dims...), dims[0], nil
}

func (s *Server) handleSpec(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, SpecResponse{
		Program:  s.cfg.Curve.Program,
		ItemDims: s.cfg.ItemDims,
		SLOMs:    s.cfg.SLO.Seconds() * 1e3,
		MaxBatch: s.cfg.MaxBatch,
		MaxQueue: s.cfg.MaxQueue,
		Policy:   s.cfg.Policy.String(),
		Points:   s.cfg.Curve.Len(),
	})
}

// handleCurve installs a freshly calibrated tradeoff curve — the online
// answer to a latched drift alarm: recalibrate offline, POST the new
// curve, and the tuner resumes with reset health state and a released
// recalibration latch, without dropping a request.
func (s *Server) handleCurve(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	curve, err := pareto.UnmarshalCurve(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad curve: %v", err))
		return
	}
	for i, pt := range curve.Points {
		if err := s.cfg.Graph.ValidateConfig(pt.Config); err != nil {
			httpError(w, http.StatusUnprocessableEntity, fmt.Sprintf("curve point %d: %v", i, err))
			return
		}
	}
	if err := s.tuner.SwapCurve(curve); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	gRecalNeeded.Set(0)
	// A fresh curve releases the latch, so re-arm the one-shot automatic
	// flight dumps for the next drift episode.
	s.driftLatched.Store(false)
	s.healthDumped.Store(false)
	writeJSON(w, http.StatusOK, map[string]any{"swapped": true, "points": curve.Len()})
}

// healthzBody is the GET /healthz reply.
type healthzBody struct {
	Status              string              `json:"status"`
	Draining            bool                `json:"draining"`
	RecalibrationNeeded bool                `json:"recalibration_needed"`
	Drifting            []core.ConfigHealth `json:"drifting,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	h := s.tuner.Health()
	body := healthzBody{Status: "ok", Draining: draining, RecalibrationNeeded: h.RecalibrationNeeded}
	code := http.StatusOK
	switch {
	case draining:
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	case h.RecalibrationNeeded:
		body.Status = "recalibration_needed"
		body.Drifting = h.Drifting()
		code = http.StatusServiceUnavailable
	}
	if h.RecalibrationNeeded {
		gRecalNeeded.Set(1)
	} else {
		gRecalNeeded.Set(0)
	}
	// First transition into an unhealthy probe (drift, not drain): leave
	// a flight dump behind while the evidence is still in the ring.
	if code == http.StatusServiceUnavailable && !draining && s.healthDumped.CompareAndSwap(false, true) {
		obs.Flight().Event("serve.healthz_503", body.Status, obs.TraceID{})
		s.dumpFlight()
	}
	writeJSON(w, code, body)
}

// dumpFlight writes one flight-recorder dump to the configured
// FlightLog, serialized against concurrent automatic dumps from other
// goroutines. No-op without a FlightLog.
func (s *Server) dumpFlight() {
	if s.cfg.FlightLog == nil {
		return
	}
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	_ = obs.Flight().Dump(s.cfg.FlightLog)
}

// StatzBody is the GET /statz reply: queue, counters, the active
// operating point, tuner health and the recent switch history.
type StatzBody struct {
	Program    string  `json:"program"`
	Policy     string  `json:"policy"`
	SLOMs      float64 `json:"slo_ms"`
	ExecBudget float64 `json:"exec_budget_ms"`
	Window     int     `json:"window"`
	MaxBatch   int     `json:"max_batch"`

	QueueDepth int  `json:"queue_depth"`
	QueueCap   int  `json:"queue_cap"`
	Draining   bool `json:"draining"`

	Requests  int64 `json:"requests"`
	Served    int64 `json:"served"`
	Rejected  int64 `json:"rejected"`
	Expired   int64 `json:"expired"`
	Failed    int64 `json:"failed"`
	SLOMisses int64 `json:"slo_misses"`
	Batches   int64 `json:"batches"`

	CurrentIndex  int     `json:"current_index"`
	CurrentPerf   float64 `json:"current_perf"`
	CurrentQoS    float64 `json:"current_qos"`
	CurrentConfig string  `json:"current_config"`

	Switches    int                `json:"switches"`
	CurveSwaps  int                `json:"curve_swaps"`
	SwitchTrace []core.SwitchEvent `json:"switch_trace"`
	Health      core.RuntimeHealth `json:"health"`

	// Sampler is the tail-sampler state (nil when tracing is disabled).
	Sampler *SamplerStats `json:"sampler,omitempty"`
}

// SamplerStats summarizes the tail sampler for /statz.
type SamplerStats struct {
	Seen    int64 `json:"seen"`    // finished traces decided
	Kept    int64 `json:"kept"`    // traces retained
	Evicted int64 `json:"evicted"` // undecided traces evicted under memory pressure
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// Stats snapshots the serving state (the /statz body).
func (s *Server) Stats() StatzBody {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	pt, idx := s.tuner.Acquire()
	trace := s.tuner.SwitchTrace()
	if len(trace) > 32 {
		trace = trace[len(trace)-32:]
	}
	var samp *SamplerStats
	if s.cfg.Sampler != nil {
		seen, kept, evicted := s.cfg.Sampler.Stats()
		samp = &SamplerStats{Seen: seen, Kept: kept, Evicted: evicted}
	}
	return StatzBody{
		Program:       s.cfg.Curve.Program,
		Policy:        s.cfg.Policy.String(),
		SLOMs:         s.cfg.SLO.Seconds() * 1e3,
		ExecBudget:    s.cfg.ExecBudget.Seconds() * 1e3,
		Window:        s.cfg.Window,
		MaxBatch:      s.cfg.MaxBatch,
		QueueDepth:    len(s.queue),
		QueueCap:      s.cfg.MaxQueue,
		Draining:      draining,
		Requests:      s.stats.requests.Load(),
		Served:        s.stats.served.Load(),
		Rejected:      s.stats.rejected.Load(),
		Expired:       s.stats.expired.Load(),
		Failed:        s.stats.failed.Load(),
		SLOMisses:     s.stats.sloMisses.Load(),
		Batches:       s.stats.batches.Load(),
		CurrentIndex:  idx,
		CurrentPerf:   pt.Perf,
		CurrentQoS:    pt.QoS,
		CurrentConfig: configLabel(pt.Config),
		Switches:      s.tuner.Switches(),
		CurveSwaps:    s.tuner.CurveSwaps(),
		SwitchTrace:   trace,
		Health:        s.tuner.Health(),
		Sampler:       samp,
	}
}

func configLabel(cfg approx.Config) string {
	return cfg.FormatGroupCounts()
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
