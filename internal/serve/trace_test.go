package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/approx"
	"repro/internal/obs"
)

// traceScenario boots a traced server with a real injected slowdown
// (SlowdownFactor stretches batch wall time after SlowdownAfter
// batches) and drives a seeded closed loop. It returns the server, the
// sampler, the flight-dump buffer, and the load report.
func traceScenario(t *testing.T) (*Server, *obs.TailSampler, *bytes.Buffer, *LoadReport) {
	t.Helper()
	gr := testNet(9)
	sampler := obs.NewTailSampler(obs.TailSamplerOptions{Seed: 17, Floor: -1})
	tracer := obs.NewTracer(obs.TracerOptions{
		KeepInMemory: 4096,
		IDSeed:       17,
		Sinks:        []obs.SpanSink{sampler},
	})
	flight := &bytes.Buffer{}

	// The tuner sees the same modeled ×2 slowdown as the determinism
	// scenario (so config switches deterministically precede the drift
	// latch), while SlowdownFactor stretches real wall time so "slow"
	// keeps reflect genuine request latency.
	curve := testCurve(gr)
	nOps := len(gr.Nodes)
	perfOf := perfByKey(curve, nOps)
	const budget = 5 * time.Millisecond
	var batches atomic.Int64
	measure := func(cfg approx.Config, items int) float64 {
		n := batches.Add(1)
		factor := 1.0
		if n > 12 {
			factor = 2.0
		}
		return factor * budget.Seconds() / perfOf[cfg.Key(nOps)]
	}

	cfg := testConfig(gr)
	cfg.Curve = curve
	cfg.SLO = 4 * budget
	cfg.ExecBudget = budget
	cfg.Window = 3
	cfg.MaxBatch = 1
	cfg.Seed = 21
	cfg.MeasureExec = measure
	cfg.Tracer = tracer
	cfg.Sampler = sampler
	cfg.FlightLog = flight
	cfg.SlowdownFactor = 3
	cfg.SlowdownAfter = 12
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		s.Close()
		t.Fatal(err)
	}

	rep, err := RunLoad(context.Background(), LoadConfig{
		URL:         "http://" + s.Addr(),
		Concurrency: 1,
		Requests:    48,
		Seed:        5,
		SlowestK:    3,
	})
	if err != nil {
		s.Close()
		t.Fatal(err)
	}
	if rep.OK != 48 {
		s.Close()
		t.Fatalf("closed loop: %d ok of 48 (%d rejected, %d expired, %d failed)",
			rep.OK, rep.Rejected, rep.Expired, rep.Failed)
	}
	return s, sampler, flight, rep
}

// TestServeTraceAcceptance is the end-to-end demo pinned by the issue:
// a seeded run with an injected ×3 slowdown must produce (a) a kept
// tail-sampled trace crossing admission → batch → execute → tuner,
// (b) a flight dump carrying drift and config-switch events, and (c) an
// OpenMetrics exposition whose serve-latency bucket exemplar points at a
// kept trace (the classic text format stays exemplar-free).
func TestServeTraceAcceptance(t *testing.T) {
	s, sampler, flight, rep := traceScenario(t)
	defer s.Close()

	// (a) At least one kept trace holds the full request path. The batch
	// span ends before the member fan-out, so the linked subtree must be
	// visible to the member's completion-time decision.
	kept := sampler.Kept()
	if len(kept) == 0 {
		t.Fatal("tail sampler kept no traces despite slowdown + tuner churn")
	}
	wantSpans := []string{"serve:request", "serve:admit", "serve:batch", "serve:execute", "serve:tuner"}
	keptIDs := make(map[string]bool, len(kept))
	fullPath := false
	for _, kt := range kept {
		keptIDs[kt.TraceID.String()] = true
		names := make(map[string]bool, len(kt.Spans))
		for _, sp := range kt.Spans {
			names[sp.Name] = true
		}
		all := true
		for _, w := range wantSpans {
			if !names[w] {
				all = false
				break
			}
		}
		if all {
			fullPath = true
		}
	}
	if !fullPath {
		t.Errorf("no kept trace contains all of %v; kept: %+v", wantSpans, kept)
	}

	// Batch traces are dropped from the sampler right after their linked
	// fan-out, so once every request's verdict is in, the pending map
	// must drain to empty — nothing may sit pinned until eviction. The
	// last finishRequest can lag the last HTTP response by a beat, so
	// poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for sampler.PendingCount() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := sampler.PendingCount(); n != 0 {
		t.Errorf("tail sampler still holds %d pending traces after all requests finished; batch traces leak", n)
	}
	if _, _, evicted := sampler.Stats(); evicted != 0 {
		t.Errorf("tail sampler evicted %d undecided traces in a run far below MaxPending", evicted)
	}

	// (b) The drift latch dumped the flight ring at alarm time; the dump
	// holds the alarm and the latch marker (the first config switch lands
	// after the latch in this scenario, so it is asserted on the live ring
	// below).
	dump := flight.String()
	if dump == "" {
		t.Fatal("drift latch produced no flight dump")
	}
	for _, want := range []string{"serve.drift_latch", "runtime.drift_alarm"} {
		if !strings.Contains(dump, want) {
			t.Errorf("flight dump missing %q event:\n%s", want, dump)
		}
	}

	// The live /debug/flight ring must verify end-of-run: drift and
	// config-switch events plus at least one span from a trace the client
	// saw in a traceparent response header.
	client := &http.Client{Timeout: 10 * time.Second}
	tids := rep.TraceIDs()
	if len(tids) == 0 {
		t.Fatal("load report carries no trace IDs; traceparent response header missing")
	}
	for _, event := range []string{"runtime.drift_alarm", "runtime.config_switch"} {
		if err := VerifyFlight(context.Background(), client, "http://"+s.Addr(), event, tids); err != nil {
			t.Errorf("flight verification: %v", err)
		}
	}

	// (c) Exemplars: every exemplar on the request-latency histogram must
	// reference a kept (retrievable) trace, and the OpenMetrics exposition
	// must carry at least one on a serve_request_seconds bucket line. The
	// classic text format has no exemplar grammar, so it must stay clean.
	snap := qRequest.Snapshot()
	var promTID string
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if ex, ok := snap.ExemplarNear(q); ok {
			if !keptIDs[ex.TraceID.String()] {
				t.Errorf("exemplar near q=%v references unkept trace %s", q, ex.TraceID)
			}
			promTID = ex.TraceID.String()
		}
	}
	if promTID == "" {
		t.Fatal("no exemplar near any rendered quantile; exposition would carry none")
	}
	var buf bytes.Buffer
	if err := obs.Default.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "serve_request_seconds_bucket{") &&
			strings.Contains(line, `trace_id="`+promTID+`"`) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("openmetrics exposition has no serve_request_seconds bucket exemplar for kept trace %s", promTID)
	}
	var classic bytes.Buffer
	if err := obs.Default.WritePrometheus(&classic); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(classic.String(), "# {") {
		t.Error("classic prometheus exposition carries exemplar syntax; 0.0.4 scrapers would reject it")
	}

	// The loadgen report's slowest-trace section must point at server-side
	// traces (non-empty hex IDs the server minted).
	if len(rep.SlowestTraces) == 0 {
		t.Error("load report has no slowest traces despite tracing enabled")
	}
	for _, ref := range rep.SlowestTraces {
		if len(ref.TraceID) != 32 {
			t.Errorf("slowest trace carries malformed trace ID %q", ref.TraceID)
		}
	}
}

// TestServeDisabledTracingZeroAlloc pins the disabled-tracing hot path
// at zero allocations: with no Tracer configured, the per-request span
// bracket must cost one nil check and nothing else.
func TestServeDisabledTracingZeroAlloc(t *testing.T) {
	gr := testNet(9)
	s, err := New(testConfig(gr))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	w := httptest.NewRecorder()
	r := httptest.NewRequest(http.MethodPost, "/v1/infer", nil)
	if n := testing.AllocsPerRun(1000, func() {
		//lint:ignore spanend finishRequest ends the span
		sp := s.startRequestSpan(w, r)
		s.finishRequest(sp, 3*time.Millisecond, http.StatusOK, 0, 0)
	}); n != 0 {
		t.Errorf("disabled-tracing request bracket allocates %.1f times per op, want 0", n)
	}
}

// TestServeTraceparentPropagation checks that an inbound W3C
// traceparent header continues the caller's trace: the response header
// echoes the same trace ID with a server-minted span ID.
func TestServeTraceparentPropagation(t *testing.T) {
	gr := testNet(9)
	sampler := obs.NewTailSampler(obs.TailSamplerOptions{Seed: 1, Floor: 1})
	cfg := testConfig(gr)
	cfg.Tracer = obs.NewTracer(obs.TracerOptions{IDSeed: 1, Sinks: []obs.SpanSink{sampler}})
	cfg.Sampler = sampler
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const parent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(inferBody(t, 1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, parent)
	resp, err := (&http.Client{Timeout: 30 * time.Second}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer: HTTP %d", resp.StatusCode)
	}
	sc := obs.Extract(resp.Header)
	if !sc.Valid() {
		t.Fatalf("response traceparent %q invalid", resp.Header.Get(obs.TraceparentHeader))
	}
	if got := sc.TraceID.String(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace ID not propagated: got %s", got)
	}
	if sc.SpanID.String() == "b7ad6b7169203331" {
		t.Error("server echoed the caller's span ID instead of minting its own")
	}

	// Floor=1 keeps everything: the continued trace must be retrievable.
	found := false
	for _, kt := range sampler.Kept() {
		if kt.TraceID.String() == "0af7651916cd43dd8448eb211c80319c" {
			found = true
		}
	}
	if !found {
		t.Error("continued trace not kept despite Floor=1")
	}
}

// BenchmarkServeTracingOverhead measures the per-request cost of the
// tracing bracket itself — span start, header injection, end, sampling
// decision — against the disabled baseline benchmarked by the nil-check
// sub-benchmark.
func BenchmarkServeTracingOverhead(b *testing.B) {
	run := func(b *testing.B, traced bool) {
		gr := testNet(9)
		cfg := testConfig(gr)
		if traced {
			sampler := obs.NewTailSampler(obs.TailSamplerOptions{Seed: 7, Floor: -1})
			cfg.Tracer = obs.NewTracer(obs.TracerOptions{IDSeed: 7, Sinks: []obs.SpanSink{sampler}})
			cfg.Sampler = sampler
		}
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, "/v1/infer", nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			//lint:ignore spanend finishRequest ends the span
			sp := s.startRequestSpan(w, r)
			s.finishRequest(sp, 3*time.Millisecond, http.StatusOK, 0, 0)
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}
