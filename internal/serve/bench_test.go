package serve

import (
	"context"
	"testing"
	"time"
)

// BenchmarkServeLoadgen measures the end-to-end serving path — HTTP,
// admission, micro-batching, approximate execution, tuner feedback —
// with a seeded closed-loop load generator. ns/op is the per-request
// wall time at concurrency 4; the reported extra metrics track tail
// latency and batching effectiveness.
func BenchmarkServeLoadgen(b *testing.B) {
	gr := testNet(31)
	cfg := Config{
		Graph:    gr,
		Curve:    testCurve(gr),
		ItemDims: testItemDims,
		SLO:      100 * time.Millisecond,
		Linger:   200 * time.Microsecond,
		MaxQueue: 256,
		Seed:     31,
	}
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if err := s.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	rep, err := RunLoad(context.Background(), LoadConfig{
		URL:         "http://" + s.Addr(),
		Concurrency: 4,
		Requests:    b.N,
		Seed:        3,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.Failed > 0 {
		b.Fatalf("%d failed requests", rep.Failed)
	}
	b.ReportMetric(rep.P99Ms, "p99-ms")
	b.ReportMetric(rep.SLOAttainment*100, "slo-%")
	if rep.Sent > 0 {
		st := s.Stats()
		if st.Batches > 0 {
			b.ReportMetric(float64(st.Served)/float64(st.Batches), "req/batch")
		}
	}
}
