package serve

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
)

// runSeededScenario boots a server with a deterministic MeasureExec
// model (×2 slowdown injected mid-run), drives a seeded single-client
// closed loop, and returns the per-batch configuration trace and the
// tuner's switch trace.
func runSeededScenario(t *testing.T) ([]int, []core.SwitchEvent) {
	t.Helper()
	gr := testNet(9)
	curve := testCurve(gr)
	nOps := len(gr.Nodes)
	perfOf := perfByKey(curve, nOps)
	const budget = 5 * time.Millisecond
	var batches atomic.Int64
	measure := func(cfg approx.Config, items int) float64 {
		n := batches.Add(1)
		factor := 1.0
		if n > 12 {
			factor = 2.0
		}
		return factor * budget.Seconds() / perfOf[cfg.Key(nOps)]
	}

	cfg := testConfig(gr)
	cfg.Curve = curve
	cfg.SLO = 4 * budget
	cfg.ExecBudget = budget
	cfg.Window = 3
	cfg.MaxBatch = 1
	cfg.Seed = 21
	cfg.MeasureExec = measure
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	rep, err := RunLoad(context.Background(), LoadConfig{
		URL:         "http://" + s.Addr(),
		Concurrency: 1,
		Requests:    36,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 36 {
		t.Fatalf("closed loop: %d ok of 36", rep.OK)
	}
	return s.BatchTrace(), s.Tuner().SwitchTrace()
}

// TestServeDeterministicTraceAcrossGOMAXPROCS pins the end-to-end
// determinism contract: a seeded closed-loop run — same seeds, same
// request sequence, same modeled latencies — produces an identical
// per-batch configuration trace and switch trace whether the process
// runs on one core or many. A sequential client serializes batches, and
// every control-loop input is derived from seeds rather than the wall
// clock, so scheduling cannot perturb the controller's decisions.
func TestServeDeterministicTraceAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	runtime.GOMAXPROCS(1)
	trace1, switches1 := runSeededScenario(t)
	runtime.GOMAXPROCS(8)
	trace8, switches8 := runSeededScenario(t)

	if len(trace1) != len(trace8) {
		t.Fatalf("trace lengths differ: %d vs %d", len(trace1), len(trace8))
	}
	for i := range trace1 {
		if trace1[i] != trace8[i] {
			t.Fatalf("batch %d executed config %d at GOMAXPROCS=1 but %d at 8\nfull traces:\n1: %v\n8: %v",
				i, trace1[i], trace8[i], trace1, trace8)
		}
	}
	if len(switches1) != len(switches8) {
		t.Fatalf("switch traces differ in length: %d vs %d", len(switches1), len(switches8))
	}
	for i := range switches1 {
		if switches1[i] != switches8[i] {
			t.Fatalf("switch %d differs: %+v vs %+v", i, switches1[i], switches8[i])
		}
	}
	if len(switches1) == 0 {
		t.Error("scenario produced no switches; the determinism check is vacuous")
	}
}
