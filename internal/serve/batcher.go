package serve

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/approx"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Serving telemetry. Queue and latency state lands on /metrics (JSON or
// Prometheus text); per-server counts live in Server.stats for /statz.
var (
	mRequests      = obs.NewCounter("serve.requests")
	mRejectedFull  = obs.NewCounter("serve.rejected_full")
	mRejectedDrain = obs.NewCounter("serve.rejected_draining")
	mExpired       = obs.NewCounter("serve.deadline_expired")
	mFailed        = obs.NewCounter("serve.failures")
	mBatches       = obs.NewCounter("serve.batches")
	mSLOMiss       = obs.NewCounter("serve.slo_misses")

	gQueueDepth  = obs.NewGauge("serve.queue_depth")
	gInFlight    = obs.NewGauge("serve.in_flight")
	gRecalNeeded = obs.NewGauge("serve.recalibration_needed")

	qRequest    = obs.NewQHistogram("serve.request_seconds")
	qQueueWait  = obs.NewQHistogram("serve.queue_wait_seconds")
	qExec       = obs.NewQHistogram("serve.exec_seconds")
	qBatchItems = obs.NewQHistogram("serve.batch_items")
	qEndpoint   = obs.NewQHistVec("serve.http_seconds")
	qConfigExec = obs.NewQHistVec("serve.config_exec_seconds")
)

// stats is the per-server request accounting behind /statz.
type stats struct {
	requests  atomic.Int64
	served    atomic.Int64
	rejected  atomic.Int64
	expired   atomic.Int64
	failed    atomic.Int64
	sloMisses atomic.Int64
	batches   atomic.Int64
}

// pending is one admitted inference request waiting for its batch.
type pending struct {
	in    *tensor.Tensor
	items int
	ctx   context.Context
	enq   time.Time
	res   chan result // buffered(1); the batcher sends exactly once
	// sc is the request span's identity (zero when tracing is off); the
	// batch span links each member's trace through it.
	sc obs.SpanContext
}

// result is the batcher's answer to one pending request.
type result struct {
	out        *tensor.Tensor
	cfgIdx     int
	cfgLabel   string
	batchItems int
	queueWait  time.Duration
	exec       time.Duration
	err        error
}

type admitState int

const (
	admitOK admitState = iota
	admitFull
	admitDraining
)

// enqueue admits a request into the bounded queue without blocking.
// The enqWG bracket makes Shutdown's close(queue) safe: the drain flag
// is checked under the same lock that Shutdown sets it under, so once
// enqWG.Wait returns no admission can touch the channel.
func (s *Server) enqueue(p *pending) admitState {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return admitDraining
	}
	s.enqWG.Add(1)
	s.mu.Unlock()
	defer s.enqWG.Done()
	select {
	case s.queue <- p:
		gQueueDepth.Set(float64(len(s.queue)))
		return admitOK
	default:
		return admitFull
	}
}

// loop is the micro-batcher: it blocks for the first request of a
// batch, lingers briefly to coalesce followers, and executes the batch
// under the tuner's current configuration. It exits when Shutdown
// closes the queue, after executing everything already admitted —
// including a request held over from a batch it would have overflowed.
func (s *Server) loop() {
	defer close(s.loopDone)
	for {
		first := s.held
		s.held = nil
		if first == nil {
			var ok bool
			first, ok = <-s.queue
			if !ok {
				return
			}
		}
		batch := s.collect(first)
		gQueueDepth.Set(float64(len(s.queue)))
		s.runBatch(batch)
	}
}

// collect gathers requests for one batch: up to MaxBatch items, waiting
// at most Linger after the first arrival. During drain the closed queue
// yields immediately, so the tail flushes without lingering.
func (s *Server) collect(first *pending) []*pending {
	reqs := []*pending{first}
	items := first.items
	if items >= s.cfg.MaxBatch {
		return reqs
	}
	timer := time.NewTimer(s.cfg.Linger)
	defer timer.Stop()
	for items < s.cfg.MaxBatch {
		select {
		case p, ok := <-s.queue:
			if !ok {
				return reqs
			}
			if items+p.items > s.cfg.MaxBatch {
				// Would overflow the batch: hold it as the seed of the
				// next one. The hold slot belongs to the loop goroutine,
				// so an admitted request survives even if the queue is
				// closed for drain before the next iteration.
				s.held = p
				return reqs
			}
			reqs = append(reqs, p)
			items += p.items
		case <-timer.C:
			return reqs
		}
	}
	return reqs
}

// runBatch executes one coalesced batch under the configuration the
// tuner currently selects and answers every request in it exactly once.
// The fan-out happens after executeBatch has ended the batch span, so a
// member's completion-time sampling decision always sees the full batch
// subtree in its buffered trace.
func (s *Server) runBatch(reqs []*pending) {
	start := time.Now()
	// Expire requests whose deadline passed while queued: executing
	// them wastes batch capacity on an answer nobody is waiting for.
	live := reqs[:0]
	for _, p := range reqs {
		if p.ctx.Err() != nil {
			p.res <- result{err: p.ctx.Err()}
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	parts, shared, err := s.executeBatch(live, start)
	if err != nil {
		s.fail(live, err)
		return
	}
	for i, p := range live {
		wait := start.Sub(p.enq)
		qQueueWait.Observe(wait.Seconds())
		res := shared
		res.out = parts[i]
		res.queueWait = wait
		p.res <- res
	}
}

// executeBatch runs one coalesced batch and returns the per-request
// output parts plus the shared result fields. When tracing is enabled
// it wraps the work in a serve:batch span that links every member
// request's trace, with serve:execute and serve:tuner children.
func (s *Server) executeBatch(live []*pending, start time.Time) ([]*tensor.Tensor, result, error) {
	var bsp *obs.Span
	if tr := s.cfg.Tracer; tr != nil {
		bsp = tr.Start("serve:batch")
		for _, p := range live {
			bsp.Link(p.sc.TraceID)
		}
	}
	// Runs after bsp.End() (LIFO): by then the sampler's linked fan-out
	// has copied the batch subtree into every member trace, and the
	// batch's own trace — which nothing ever calls Finish on — must not
	// pin a pending slot until eviction pressure reclaims it.
	defer func() {
		if bsp != nil && s.cfg.Sampler != nil {
			s.cfg.Sampler.Drop(bsp.TraceID())
		}
	}()
	defer bsp.End()

	pt, idx := s.tuner.Acquire()
	inputs := make([]*tensor.Tensor, len(live))
	items := 0
	for i, p := range live {
		inputs[i] = p.in
		items += p.items
	}
	batch, sizes, err := graph.ConcatBatch(inputs)
	if err != nil {
		return nil, result{}, err
	}
	esp := bsp.Child("serve:execute")
	out, err := s.execute(batch, pt.Config, esp)
	esp.End()
	if err != nil {
		return nil, result{}, err
	}
	if f := s.cfg.SlowdownFactor; f > 1 && s.stats.batches.Load() >= int64(s.cfg.SlowdownAfter) {
		// Injected slowdown (smoke/chaos hook): stretch the batch's wall
		// time so request latency and the drift detector both see a
		// genuinely slower machine.
		time.Sleep(time.Duration(float64(time.Since(start)) * (f - 1)))
	}
	wall := time.Since(start)
	// One batch execution is one tuner invocation: the measured latency
	// is attributed to the curve index acquired above, so a sample can
	// never be credited to a configuration that did not produce it —
	// even if the controller switches while this batch is in flight.
	exec := wall.Seconds()
	if s.cfg.MeasureExec != nil {
		exec = s.cfg.MeasureExec(pt.Config, items)
	}
	// The tuner's budget is calibrated for a full batch, but execution
	// cost is roughly linear in items: feed it the full-batch-equivalent
	// time so a half-empty batch on an idle server doesn't read as a 2x
	// "fast drift" (latching a spurious recalibration alarm), and a real
	// slowdown shows the same ratio at any occupancy. At full batches
	// the factor is 1, so the loaded-system control signal is unchanged.
	normExec := exec * float64(s.cfg.MaxBatch) / float64(items)
	tsp := bsp.Child("serve:tuner")
	s.tuner.RecordInvocationAt(idx, normExec)
	recal := s.tuner.RecalibrationNeeded()
	tsp.End()

	parts, err := graph.SplitBatch(out, sizes)
	if err != nil {
		return nil, result{}, err
	}

	label := configLabel(pt.Config)
	bsp.With("config", label).With("items", items)
	s.stats.batches.Add(1)
	mBatches.Inc()
	qExec.Observe(exec)
	qBatchItems.Observe(float64(items))
	qConfigExec.With(label).Observe(exec)
	if recal {
		gRecalNeeded.Set(1)
		// First drift latch: leave an automatic flight dump behind while
		// the spans and events that led up to it are still in the ring.
		if s.driftLatched.CompareAndSwap(false, true) {
			obs.Flight().Event("serve.drift_latch", label, obs.TraceID{})
			s.dumpFlight()
		}
	}
	s.mu.Lock()
	s.trace = append(s.trace, idx)
	if len(s.trace) > maxBatchTrace {
		s.trace = s.trace[len(s.trace)-maxBatchTrace:]
	}
	s.mu.Unlock()
	s.refreshSlowThreshold()

	return parts, result{
		cfgIdx:     idx,
		cfgLabel:   label,
		batchItems: items,
		exec:       wall,
	}, nil
}

// slowMinSamples is how many request-latency observations must exist
// before the slow-trace threshold is trusted (the quantile of a handful
// of samples is noise).
const slowMinSamples = 20

// refreshSlowThreshold re-derives the tail sampler's "slow" cutoff from
// the live request-latency quantile. Skipped when tracing is off
// (nothing consumes it) and while samples are few.
func (s *Server) refreshSlowThreshold() {
	if s.cfg.Tracer == nil {
		return
	}
	snap := qRequest.Snapshot()
	if snap.Count() < slowMinSamples {
		return
	}
	s.slowNs.Store(int64(snap.Quantile(s.cfg.SlowQuantile) * 1e9))
}

// maxBatchTrace bounds the retained per-batch configuration trace.
const maxBatchTrace = 65536

// execute runs the graph, converting an executor panic (malformed
// input, knob misuse) into an error so one poisoned request cannot take
// down the batcher. sp, when non-nil, traces the execution (per-node
// children subject to the tracer's detail budget).
func (s *Server) execute(batch *tensor.Tensor, cfg approx.Config, sp *obs.Span) (out *tensor.Tensor, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: execution failed: %v", r)
		}
	}()
	return s.cfg.Graph.Execute(batch, cfg, graph.ExecOptions{RNG: s.rng, Trace: sp}), nil
}

func (s *Server) fail(reqs []*pending, err error) {
	for _, p := range reqs {
		p.res <- result{err: err}
	}
}
