package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/approx"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pareto"
	"repro/internal/tensor"
	"repro/internal/tensorops"
)

// testNet builds a small conv net over 1×8×8 inputs (10-class head).
func testNet(seed int64) *graph.Graph {
	rng := tensor.NewRNG(seed)
	gr := graph.New("serve-test")
	w1 := tensor.New(4, 1, 3, 3)
	rng.FillHe(w1, 9)
	b1 := tensor.New(4)
	rng.FillNormal(b1, 0, 0.1)
	c1 := gr.ConvAct(gr.InputID(), w1, b1, tensorops.ConvParams{PadH: 1, PadW: 1}, graph.ActReLU, 0, "conv1")
	p1 := gr.MaxPool(c1, tensorops.PoolParams{KH: 2, KW: 2})
	w2 := tensor.New(8, 4, 3, 3)
	rng.FillHe(w2, 36)
	c2 := gr.ConvAct(p1, w2, nil, tensorops.ConvParams{PadH: 1, PadW: 1}, graph.ActReLU, 0, "conv2")
	p2 := gr.MaxPool(c2, tensorops.PoolParams{KH: 2, KW: 2})
	fl := gr.Flatten(p2)
	wf := tensor.New(8*2*2, 10)
	rng.FillXavier(wf, 32, 10)
	fc := gr.MatMul(fl, wf, nil, "fc")
	gr.Softmax(fc)
	return gr
}

var testItemDims = []int{1, 8, 8}

// testCurve is a 4-rung ladder over testNet's approximable ops (two
// convs and the head): exact, FP16, FP16+stride-2 sampling, and
// FP16+stride-4 sampling on the convs.
func testCurve(gr *graph.Graph) *pareto.Curve {
	ops := gr.ApproxOps()
	fp16 := approx.Config{}
	samp2 := approx.Config{}
	samp4 := approx.Config{}
	classes := gr.OpClasses()
	for i, op := range ops {
		fp16[op] = approx.KnobFP16
		samp2[op] = approx.KnobFP16
		samp4[op] = approx.KnobFP16
		if classes[i] == approx.OpConv {
			samp2[op] = approx.SamplingKnob(2, 0, tensorops.FP16)
			samp4[op] = approx.SamplingKnob(4, 0, tensorops.FP16)
		}
	}
	return pareto.NewCurve("serve-test", 90, []pareto.Point{
		{QoS: 90, Perf: 1, Config: nil},
		{QoS: 89, Perf: 1.5, Config: fp16},
		{QoS: 88, Perf: 2.25, Config: samp2},
		{QoS: 86.5, Perf: 3.2, Config: samp4},
	})
}

func testConfig(gr *graph.Graph) Config {
	return Config{
		Graph:    gr,
		Curve:    testCurve(gr),
		ItemDims: testItemDims,
		Policy:   core.PolicyEnforce,
		SLO:      250 * time.Millisecond,
	}
}

func inferBody(t *testing.T, items int, deadlineMs float64) []byte {
	t.Helper()
	dims := append([]int{items}, testItemDims...)
	in := tensor.New(dims...)
	tensor.NewRNG(42).FillNormal(in, 0, 1)
	b, err := json.Marshal(InferRequest{Input: TensorJSON{Dims: dims, Data: in.Data()}, DeadlineMs: deadlineMs})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postJSON(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func TestServeBasicInfer(t *testing.T) {
	gr := testNet(1)
	s, err := New(testConfig(gr))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := postJSON(t, ts.URL+"/v1/infer", inferBody(t, 2, 0))
	if code != http.StatusOK {
		t.Fatalf("infer: HTTP %d: %s", code, body)
	}
	var resp InferResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Output.Dims) != 2 || resp.Output.Dims[0] != 2 || resp.Output.Dims[1] != 10 {
		t.Errorf("output dims = %v, want [2 10]", resp.Output.Dims)
	}
	if resp.BatchItems < 2 {
		t.Errorf("batch items = %d, want >= 2", resp.BatchItems)
	}
	// The reply must be bit-identical to executing the same input alone
	// under the same configuration (the ConcatBatch/SplitBatch
	// invariant, end to end through HTTP).
	dims := append([]int{2}, testItemDims...)
	in := tensor.New(dims...)
	tensor.NewRNG(42).FillNormal(in, 0, 1)
	pt, _ := s.Tuner().Acquire()
	want := gr.Execute(in, pt.Config, graph.ExecOptions{})
	for i, v := range want.Data() {
		if resp.Output.Data[i] != v {
			t.Fatalf("output[%d] = %v, want %v (served output differs from direct execution)", i, resp.Output.Data[i], v)
		}
	}

	// Malformed shapes and oversized requests are rejected up front.
	if code, _ := postJSON(t, ts.URL+"/v1/infer", []byte(`{"input":{"dims":[3,3],"data":[1,2,3,4,5,6,7,8,9]}}`)); code != http.StatusBadRequest {
		t.Errorf("bad dims: HTTP %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/infer", inferBody(t, DefaultMaxBatch+1, 0)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized request: HTTP %d, want 413", code)
	}

	// Spec describes the serving contract.
	specResp, err := http.Get(ts.URL + "/v1/spec")
	if err != nil {
		t.Fatal(err)
	}
	defer specResp.Body.Close()
	var spec SpecResponse
	if err := json.NewDecoder(specResp.Body).Decode(&spec); err != nil {
		t.Fatal(err)
	}
	if spec.Program != "serve-test" || !sameInts(spec.ItemDims, testItemDims) || spec.Points != 4 {
		t.Errorf("spec = %+v", spec)
	}
}

// TestServeBackpressureAndDrain pins the admission contract: a full
// queue answers 429 + Retry-After without dropping admitted work, and
// drain refuses new work with 503 while finishing everything admitted.
// The server is built without its batcher so the queue state is
// deterministic, then the batcher is released.
func TestServeBackpressureAndDrain(t *testing.T) {
	gr := testNet(2)
	cfg := testConfig(gr).withDefaults()
	cfg.MaxQueue = 2
	s := &Server{
		cfg:      cfg,
		rng:      tensor.NewRNG(3),
		queue:    make(chan *pending, cfg.MaxQueue),
		loopDone: make(chan struct{}),
	}
	rt, err := core.NewRuntimeTuner(cfg.Curve, cfg.Policy, cfg.ExecBudget.Seconds(), cfg.Window, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	s.tuner = rt
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two requests fill the queue (no batcher is draining it yet).
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = postJSON(t, ts.URL+"/v1/infer", inferBody(t, 1, 0))
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	// The third is refused with backpressure.
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(inferBody(t, 1, 0)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}

	// Release the batcher: the admitted requests complete.
	go s.loop()
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("queued request %d: HTTP %d, want 200", i, c)
		}
	}

	// Drain: new work refused with 503, shutdown returns cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	code, _ := postJSON(t, ts.URL+"/v1/infer", inferBody(t, 1, 0))
	if code != http.StatusServiceUnavailable {
		t.Errorf("draining admission: HTTP %d, want 503", code)
	}
	code, _ = getJSON(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: HTTP %d, want 503", code)
	}
	st := s.Stats()
	if st.Served != 2 || st.Rejected < 2 {
		t.Errorf("accounting after drain: served=%d rejected=%d, want 2 served and >=2 rejected", st.Served, st.Rejected)
	}
}

// TestServeDeadlineExpiry pins deadline propagation: a request whose
// deadline_ms passes while it is still queued is expired by the batcher
// (504) instead of executed.
func TestServeDeadlineExpiry(t *testing.T) {
	gr := testNet(3)
	cfg := testConfig(gr).withDefaults()
	s := &Server{
		cfg:      cfg,
		rng:      tensor.NewRNG(4),
		queue:    make(chan *pending, cfg.MaxQueue),
		loopDone: make(chan struct{}),
	}
	rt, err := core.NewRuntimeTuner(cfg.Curve, cfg.Policy, cfg.ExecBudget.Seconds(), cfg.Window, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	s.tuner = rt
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		code, _ := postJSON(t, ts.URL+"/v1/infer", inferBody(t, 1, 30))
		done <- code
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Let the 30ms deadline lapse with no batcher running, then release.
	time.Sleep(60 * time.Millisecond)
	go s.loop()
	if code := <-done; code != http.StatusGatewayTimeout {
		t.Fatalf("expired request: HTTP %d, want 504", code)
	}
	if got := s.Stats().Expired; got != 1 {
		t.Errorf("expired count = %d, want 1", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// perfByKey maps each curve configuration to its Perf for MeasureExec
// hooks that model execution time from the curve's own promises.
func perfByKey(c *pareto.Curve, nOps int) map[string]float64 {
	m := make(map[string]float64)
	for _, pt := range c.Points {
		m[pt.Config.Key(nOps)] = pt.Perf
	}
	return m
}

// TestServeSLOControlLoopRecovery is the tentpole acceptance scenario:
// a seeded closed-loop run with a mid-run ×2 injected slowdown. The
// tuner must move to a faster configuration within two control windows
// of the step, without per-invocation thrash, and the sustained ×2
// drift must latch the recalibration alarm and surface on /healthz —
// until a hot-swapped curve clears it.
func TestServeSLOControlLoopRecovery(t *testing.T) {
	gr := testNet(5)
	curve := testCurve(gr)
	nOps := len(gr.Nodes)
	perfOf := perfByKey(curve, nOps)
	const (
		window   = 4
		budget   = 10 * time.Millisecond
		slowAt   = 20 // batch count where the ×2 slowdown begins
		requests = 60
	)
	var batches atomic.Int64
	measure := func(cfg approx.Config, items int) float64 {
		n := batches.Add(1)
		factor := 1.0
		if n > slowAt {
			factor = 2.0
		}
		return factor * budget.Seconds() / perfOf[cfg.Key(nOps)]
	}

	cfg := testConfig(gr)
	cfg.Curve = curve
	cfg.SLO = 4 * budget
	cfg.ExecBudget = budget
	cfg.Window = window
	cfg.MaxBatch = 1
	cfg.Seed = 11
	cfg.MeasureExec = measure
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	rep, err := RunLoad(context.Background(), LoadConfig{
		URL: base, Concurrency: 1, Requests: requests, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != requests {
		t.Fatalf("closed loop: %d ok of %d (%d rejected, %d expired, %d failed)",
			rep.OK, requests, rep.Rejected, rep.Expired, rep.Failed)
	}

	trace := s.BatchTrace()
	if len(trace) != requests {
		t.Fatalf("batch trace has %d entries, want %d (closed loop, one item per batch)", len(trace), requests)
	}
	// Before the slowdown the tuner holds the exact point; after it, it
	// must move to a faster configuration within two windows.
	firstSwitch := -1
	for i, idx := range trace {
		if idx != trace[0] {
			firstSwitch = i
			break
		}
	}
	if firstSwitch < 0 {
		t.Fatal("injected slowdown never moved the operating point")
	}
	if firstSwitch < slowAt {
		t.Errorf("switched at batch %d, before the slowdown at %d", firstSwitch, slowAt)
	}
	if firstSwitch > slowAt+2*window {
		t.Errorf("switched at batch %d; SLO recovery took more than 2 windows after batch %d", firstSwitch, slowAt)
	}
	// After the switch the modeled execution is back inside the budget,
	// so the controller must settle: total switches stay far below the
	// number of overloaded batches (the pre-fix loop re-picked every
	// invocation).
	if sw := s.Tuner().Switches(); sw > (requests/window)+1 {
		t.Errorf("switches = %d over %d windows; control loop is thrashing", sw, requests/window)
	}
	// The sustained ×2 ratio must latch drift and surface on /healthz.
	if !s.Tuner().RecalibrationNeeded() {
		t.Fatal("sustained 2x slowdown did not latch the recalibration signal")
	}
	code, body := getJSON(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz under drift: HTTP %d (%s), want 503", code, body)
	}
	var hz healthzBody
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if !hz.RecalibrationNeeded || hz.Status != "recalibration_needed" {
		t.Errorf("healthz body = %+v, want recalibration_needed", hz)
	}

	// Hot-swapping a recalibrated curve releases the latch.
	swapped := testCurve(gr)
	swapped.Program = "serve-test-v2"
	data, err := swapped.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	code, body = postJSON(t, base+"/v1/curve", data)
	if code != http.StatusOK {
		t.Fatalf("curve swap: HTTP %d: %s", code, body)
	}
	code, _ = getJSON(t, base+"/healthz")
	if code != http.StatusOK {
		t.Errorf("healthz after curve swap: HTTP %d, want 200", code)
	}
	if s.Tuner().CurveSwaps() != 1 {
		t.Errorf("curve swaps = %d, want 1", s.Tuner().CurveSwaps())
	}
}

func getJSON(t *testing.T, url string) (int, []byte) {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// TestServeConcurrentRace exercises the full serve path under the race
// detector: concurrent clients (mixed item counts), live curve swaps,
// health and stats polls, and a drain racing in-flight requests. Every
// response must be one of the contract's statuses and the accounting
// must balance.
func TestServeConcurrentRace(t *testing.T) {
	gr := testNet(6)
	cfg := testConfig(gr)
	cfg.ExecBudget = 500 * time.Microsecond // tight budget: the tuner moves under load
	cfg.Policy = core.PolicyAverage
	cfg.Window = 2
	cfg.MaxQueue = 16
	cfg.Seed = 13
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	const clients = 8
	const perClient = 16
	var wg sync.WaitGroup
	var bad atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 10 * time.Second}
			items := 1 + c%3
			body := inferBodyFor(items)
			for i := 0; i < perClient; i++ {
				resp, err := client.Post(base+"/v1/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					continue // transport errors can happen once drain closes the listener
				}
				switch resp.StatusCode {
				case http.StatusOK, http.StatusTooManyRequests,
					http.StatusServiceUnavailable, http.StatusGatewayTimeout:
				default:
					bad.Add(1)
				}
				resp.Body.Close()
			}
		}(c)
	}
	// Concurrent control-plane traffic: curve swaps and polls.
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 10 * time.Second}
		swapped := testCurve(gr)
		data, _ := swapped.Marshal()
		for i := 0; i < 4; i++ {
			resp, err := client.Post(base+"/v1/curve", "application/json", bytes.NewReader(data))
			if err == nil {
				resp.Body.Close()
			}
			for _, path := range []string{"/healthz", "/statz", "/metrics"} {
				if r, err := client.Get(base + path); err == nil {
					r.Body.Close()
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	// Drain while traffic is still in flight.
	time.Sleep(15 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Errorf("drain under load: %v", err)
	}
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Errorf("%d responses outside the serving contract", n)
	}
	st := s.Stats()
	if st.Served+st.Rejected+st.Expired+st.Failed > st.Requests {
		t.Errorf("accounting: served %d + rejected %d + expired %d + failed %d > requests %d",
			st.Served, st.Rejected, st.Expired, st.Failed, st.Requests)
	}
	if st.Served > 0 && st.Batches == 0 {
		t.Error("served requests but recorded no batches")
	}
}

func inferBodyFor(items int) []byte {
	dims := append([]int{items}, testItemDims...)
	in := tensor.New(dims...)
	tensor.NewRNG(int64(items)).FillNormal(in, 0, 1)
	b, err := json.Marshal(InferRequest{Input: TensorJSON{Dims: dims, Data: in.Data()}})
	if err != nil {
		panic(err)
	}
	return b
}

// TestServeMicroBatchCoalescing pins that concurrent requests actually
// share a batch: with a generous linger and a paused batcher, several
// single-item requests land in one execution.
func TestServeMicroBatchCoalescing(t *testing.T) {
	gr := testNet(7)
	cfg := testConfig(gr).withDefaults()
	cfg.Linger = 100 * time.Millisecond
	cfg.MaxBatch = 8
	s := &Server{
		cfg:      cfg,
		rng:      tensor.NewRNG(8),
		queue:    make(chan *pending, cfg.MaxQueue),
		loopDone: make(chan struct{}),
	}
	rt, err := core.NewRuntimeTuner(cfg.Curve, cfg.Policy, cfg.ExecBudget.Seconds(), cfg.Window, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	s.tuner = rt
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 3
	var wg sync.WaitGroup
	batchItems := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := postJSON(t, ts.URL+"/v1/infer", inferBody(t, 1, 0))
			if code != http.StatusOK {
				t.Errorf("request %d: HTTP %d", i, code)
				return
			}
			var resp InferResponse
			if json.Unmarshal(body, &resp) == nil {
				batchItems[i] = resp.BatchItems
			}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) < n {
		if time.Now().After(deadline) {
			t.Fatal("requests never queued")
		}
		time.Sleep(time.Millisecond)
	}
	go s.loop()
	wg.Wait()
	for i, b := range batchItems {
		if b != n {
			t.Errorf("request %d executed in a batch of %d items, want %d (coalescing broken)", i, b, n)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
