// Package autotuner is the off-the-shelf search engine Algorithm 1 plugs
// into — the stand-in for OpenTuner (§6.4). Like OpenTuner it runs an
// ensemble of search techniques (random search, greedy mutation, a
// coordinate hill climber, an evolutionary mutator, and simulated
// annealing) under a multi-armed-bandit meta-technique that allocates
// proposals to whichever technique has recently produced improvements.
// Convergence follows the paper's protocol: tuning stops after a fixed
// stall window with no improvement, or at the iteration cap.
package autotuner

import (
	"math"

	"repro/internal/approx"
	"repro/internal/tensor"
)

// Problem defines a discrete configuration space: the approximable ops and
// the knob candidates for each.
type Problem struct {
	Ops   []int
	Knobs map[int][]approx.KnobID
}

// valid panics on malformed problems.
func (p Problem) valid() {
	if len(p.Ops) == 0 {
		panic("autotuner: no ops to tune")
	}
	for _, op := range p.Ops {
		if len(p.Knobs[op]) == 0 {
			panic("autotuner: op has no candidate knobs")
		}
	}
}

// Feedback is the evaluation of a proposed configuration. QoS and Perf
// follow the paper's conventions (higher better; Perf is a speedup).
type Feedback struct {
	QoS  float64
	Perf float64
}

// Options tunes the search.
type Options struct {
	MaxIters   int     // hard iteration cap (paper: 30K)
	StallLimit int     // stop after this many non-improving iterations (paper: 1K)
	QoSMin     float64 // the QoS constraint the fitness penalizes against
	Seed       int64
	// QoSPenalty scales how hard sub-threshold QoS hurts fitness. The
	// default of 10 makes even small threshold violations cost more than
	// any realistic speedup, steering the search back into feasibility
	// (final filtering happens at QoS validation regardless).
	QoSPenalty float64
	// Techniques restricts the ensemble to the named techniques ("random",
	// "greedy-mutate", "hill-climb", "evolution", "anneal"); empty means
	// the full ensemble. Used by the ensemble-vs-single ablation.
	Techniques []string
}

func (o Options) norm() Options {
	if o.MaxIters == 0 {
		o.MaxIters = 30000
	}
	if o.StallLimit == 0 {
		o.StallLimit = 1000
	}
	//lint:ignore floateq exact zero is the unset-option sentinel
	if o.QoSPenalty == 0 {
		o.QoSPenalty = 10.0
	}
	return o
}

// Tuner drives the search. Usage: for !t.Done() { c := t.Next();
// t.Report(c, fb) }.
type Tuner struct {
	prob Problem
	opts Options
	rng  *tensor.RNG

	iter       int
	sinceBest  int
	best       approx.Config
	bestFit    float64
	elites     []scored // archive of top configurations
	techniques []technique
	bandit     *bandit
	lastTech   int
	// pendingTechs parallels the configs of the last NextBatch call: which
	// technique proposed each entry, consumed in order by ReportBatch.
	pendingTechs []int
}

type scored struct {
	cfg approx.Config
	fit float64
}

// New creates a tuner for the problem.
func New(p Problem, o Options) *Tuner {
	p.valid()
	o = o.norm()
	t := &Tuner{
		prob:    p,
		opts:    o,
		rng:     tensor.NewRNG(o.Seed),
		bestFit: math.Inf(-1),
	}
	all := []technique{
		&randomSearch{},
		&greedyMutate{},
		&hillClimb{},
		&evolution{},
		&annealer{temp: 1.0},
	}
	if len(o.Techniques) == 0 {
		t.techniques = all
	} else {
		want := make(map[string]bool, len(o.Techniques))
		for _, n := range o.Techniques {
			want[n] = true
		}
		for _, tech := range all {
			if want[tech.name()] {
				t.techniques = append(t.techniques, tech)
			}
		}
		if len(t.techniques) == 0 {
			panic("autotuner: no known technique selected")
		}
	}
	t.bandit = newBandit(len(t.techniques))
	return t
}

// Prime injects an externally evaluated configuration (typically the
// exact baseline, which is always feasible) as the search's starting
// point, without counting an iteration or crediting any technique.
func (t *Tuner) Prime(cfg approx.Config, fb Feedback) {
	fit := t.fitness(fb)
	if fit > t.bestFit {
		t.bestFit = fit
		t.best = cfg.Clone()
	}
	t.addElite(cfg, fit)
}

// Iterations returns how many proposals have been evaluated.
func (t *Tuner) Iterations() int { return t.iter }

// Done reports whether the search has converged or hit the cap.
func (t *Tuner) Done() bool {
	return t.iter >= t.opts.MaxIters || (t.iter > 0 && t.sinceBest >= t.opts.StallLimit)
}

// Best returns the best configuration found so far and its fitness.
func (t *Tuner) Best() (approx.Config, float64) { return t.best, t.bestFit }

// Next proposes the next configuration to evaluate.
func (t *Tuner) Next() approx.Config {
	cfg, tech := t.propose()
	t.lastTech = tech
	return cfg
}

// propose draws one configuration from the bandit-selected technique.
func (t *Tuner) propose() (approx.Config, int) {
	tech := t.bandit.pick(t.rng)
	mProposals.With(t.techniques[tech].name()).Inc()
	return t.techniques[tech].propose(t), tech
}

// NextBatch proposes up to k configurations for concurrent evaluation,
// clamped so the search never overshoots MaxIters. All k are drawn before
// any of their feedback exists — a batch trades per-proposal adaptivity for
// evaluation parallelism, and its composition depends only on the tuner
// state at the call, never on evaluation order or worker count.
// NextBatch(1) followed by ReportBatch is identical to Next+Report.
func (t *Tuner) NextBatch(k int) []approx.Config {
	if rem := t.opts.MaxIters - t.iter; k > rem {
		k = rem
	}
	if k < 1 {
		k = 1
	}
	cfgs := make([]approx.Config, 0, k)
	t.pendingTechs = t.pendingTechs[:0]
	for i := 0; i < k; i++ {
		cfg, tech := t.propose()
		cfgs = append(cfgs, cfg)
		t.pendingTechs = append(t.pendingTechs, tech)
	}
	return cfgs
}

// ReportBatch feeds back the evaluations of the configurations returned by
// the previous NextBatch call, in index order. Callers evaluating the batch
// concurrently must collect results by index before reporting, which keeps
// best/elite selection and technique credit deterministic regardless of
// evaluation interleaving.
func (t *Tuner) ReportBatch(cfgs []approx.Config, fbs []Feedback) {
	if len(cfgs) != len(fbs) || len(cfgs) > len(t.pendingTechs) {
		panic("autotuner: ReportBatch arity mismatch with NextBatch")
	}
	for i, cfg := range cfgs {
		t.reportWith(t.pendingTechs[i], cfg, fbs[i])
	}
	t.pendingTechs = t.pendingTechs[:0]
}

// Report feeds back the evaluation of the configuration returned by the
// previous Next call (§3.1: "setConfigFitness").
func (t *Tuner) Report(cfg approx.Config, fb Feedback) {
	t.reportWith(t.lastTech, cfg, fb)
}

func (t *Tuner) reportWith(tech int, cfg approx.Config, fb Feedback) {
	t.iter++
	fit := t.fitness(fb)
	improved := fit > t.bestFit
	mIters.Inc()
	if improved {
		t.bestFit = fit
		t.best = cfg.Clone()
		t.sinceBest = 0
		mAccepts.Inc()
		gBestFit.Set(fit)
	} else {
		t.sinceBest++
		mRejects.Inc()
	}
	t.bandit.report(tech, improved)
	t.techniques[tech].feedback(t, cfg, fit, improved)
	t.addElite(cfg, fit)
}

// fitness maximizes Perf subject to the QoS constraint, with a linear
// penalty for shortfall so the search can climb back into feasibility.
func (t *Tuner) fitness(fb Feedback) float64 {
	fit := fb.Perf
	if fb.QoS < t.opts.QoSMin {
		fit -= (t.opts.QoSMin - fb.QoS) * t.opts.QoSPenalty
	}
	return fit
}

const eliteCap = 16

func (t *Tuner) addElite(cfg approx.Config, fit float64) {
	t.elites = append(t.elites, scored{cfg.Clone(), fit})
	// keep the top eliteCap by fitness (insertion into a small slice)
	for i := len(t.elites) - 1; i > 0 && t.elites[i].fit > t.elites[i-1].fit; i-- {
		t.elites[i], t.elites[i-1] = t.elites[i-1], t.elites[i]
	}
	if len(t.elites) > eliteCap {
		t.elites = t.elites[:eliteCap]
	}
}

// randomConfig draws a uniform configuration.
func (t *Tuner) randomConfig() approx.Config {
	cfg := make(approx.Config, len(t.prob.Ops))
	for _, op := range t.prob.Ops {
		ks := t.prob.Knobs[op]
		cfg[op] = ks[t.rng.Intn(len(ks))]
	}
	return cfg
}

// mutate returns a copy of cfg with n random ops reassigned.
func (t *Tuner) mutate(cfg approx.Config, n int) approx.Config {
	out := cfg.Clone()
	for i := 0; i < n; i++ {
		op := t.prob.Ops[t.rng.Intn(len(t.prob.Ops))]
		ks := t.prob.Knobs[op]
		out[op] = ks[t.rng.Intn(len(ks))]
	}
	return out
}

// seedConfig returns the best config, or a random one before any feedback.
func (t *Tuner) seedConfig() approx.Config {
	if t.best == nil {
		return t.randomConfig()
	}
	return t.best.Clone()
}
