package autotuner

import "repro/internal/obs"

// Search telemetry (the per-iteration counters behind Table 4 and §7.3):
// iterations evaluated, accepts (new best fitness) vs rejects, and
// proposals attributed to each ensemble technique.
var (
	mIters     = obs.NewCounter("autotuner.iterations")
	mAccepts   = obs.NewCounter("autotuner.accepts")
	mRejects   = obs.NewCounter("autotuner.rejects")
	mProposals = obs.NewCounterVec("autotuner.proposals_by_technique")
	gBestFit   = obs.NewGauge("autotuner.best_fitness")
)
