package autotuner

import (
	"math"

	"repro/internal/approx"
	"repro/internal/tensor"
)

// technique is one member of the search ensemble. propose generates a
// candidate; feedback lets stateful techniques (hill climbing, annealing)
// update their internal position.
type technique interface {
	name() string
	propose(t *Tuner) approx.Config
	feedback(t *Tuner, cfg approx.Config, fit float64, improved bool)
}

// randomSearch draws uniformly from the space; it provides global
// exploration and is the baseline technique of the OpenTuner ensemble.
type randomSearch struct{}

func (randomSearch) name() string                                  { return "random" }
func (randomSearch) propose(t *Tuner) approx.Config                { return t.randomConfig() }
func (randomSearch) feedback(*Tuner, approx.Config, float64, bool) {}

// greedyMutate perturbs the best configuration in 1–3 positions — the
// evolutionary-mutation workhorse.
type greedyMutate struct{}

func (greedyMutate) name() string { return "greedy-mutate" }
func (g greedyMutate) propose(t *Tuner) approx.Config {
	return t.mutate(t.seedConfig(), 1+t.rng.Intn(3))
}
func (greedyMutate) feedback(*Tuner, approx.Config, float64, bool) {}

// hillClimb is a coordinate-descent climber in the spirit of the Torczon
// hill climbers OpenTuner ships: it sweeps over ops, trying each knob for
// the current coordinate before moving to the next.
type hillClimb struct {
	opIdx   int
	knobIdx int
}

func (hillClimb) name() string { return "hill-climb" }
func (h *hillClimb) propose(t *Tuner) approx.Config {
	cfg := t.seedConfig()
	op := t.prob.Ops[h.opIdx%len(t.prob.Ops)]
	ks := t.prob.Knobs[op]
	cfg[op] = ks[h.knobIdx%len(ks)]
	return cfg
}
func (h *hillClimb) feedback(t *Tuner, _ approx.Config, _ float64, improved bool) {
	op := t.prob.Ops[h.opIdx%len(t.prob.Ops)]
	h.knobIdx++
	if improved || h.knobIdx >= len(t.prob.Knobs[op]) {
		h.knobIdx = 0
		h.opIdx++
	}
}

// evolution recombines two elite configurations (uniform crossover) and
// lightly mutates the child.
type evolution struct{}

func (evolution) name() string { return "evolution" }
func (evolution) propose(t *Tuner) approx.Config {
	if len(t.elites) < 2 {
		return t.randomConfig()
	}
	a := t.elites[t.rng.Intn(len(t.elites))].cfg
	b := t.elites[t.rng.Intn(len(t.elites))].cfg
	child := make(approx.Config, len(t.prob.Ops))
	for _, op := range t.prob.Ops {
		if t.rng.Float64() < 0.5 {
			child[op] = a.Knob(op)
		} else {
			child[op] = b.Knob(op)
		}
	}
	if t.rng.Float64() < 0.5 {
		child = t.mutate(child, 1)
	}
	return child
}
func (evolution) feedback(*Tuner, approx.Config, float64, bool) {}

// annealer performs simulated annealing around its own current point,
// accepting worse moves with temperature-dependent probability.
type annealer struct {
	cur    approx.Config
	curFit float64
	temp   float64
}

func (annealer) name() string { return "anneal" }
func (a *annealer) propose(t *Tuner) approx.Config {
	if a.cur == nil {
		a.cur = t.randomConfig()
		a.curFit = math.Inf(-1)
	}
	return t.mutate(a.cur, 1+t.rng.Intn(2))
}
func (a *annealer) feedback(t *Tuner, cfg approx.Config, fit float64, _ bool) {
	if fit > a.curFit || t.rng.Float64() < math.Exp((fit-a.curFit)/math.Max(a.temp, 1e-3)) {
		a.cur = cfg.Clone()
		a.curFit = fit
	}
	a.temp *= 0.999
}

// bandit allocates proposals across techniques with a UCB rule over a
// sliding window of improvement outcomes — the AUC-bandit meta-technique
// of OpenTuner, simplified.
type bandit struct {
	wins   []float64
	trials []float64
	total  float64
}

func newBandit(n int) *bandit {
	return &bandit{wins: make([]float64, n), trials: make([]float64, n)}
}

func (b *bandit) pick(rng *tensor.RNG) int {
	best, bestScore := 0, math.Inf(-1)
	for i := range b.trials {
		var score float64
		//lint:ignore floateq the trial counter only ever holds whole increments; exact zero means untried
		if b.trials[i] == 0 {
			score = math.Inf(1) // try everything once
		} else {
			score = b.wins[i]/b.trials[i] + math.Sqrt(2*math.Log(b.total+1)/b.trials[i])
		}
		// random tie-break keeps the ensemble diverse
		score += rng.Float64() * 1e-9
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

func (b *bandit) report(i int, improved bool) {
	const decay = 0.995 // sliding-window effect
	for j := range b.trials {
		b.wins[j] *= decay
		b.trials[j] *= decay
	}
	b.trials[i]++
	b.total++
	if improved {
		b.wins[i]++
	}
}
