package autotuner

import (
	"math"
	"testing"

	"repro/internal/approx"
)

// quadratic test problem: ops 0..n-1, knobs 0..k-1 per op. The hidden
// objective rewards knob values near a target vector, with a QoS that
// degrades as knob indices grow.
func testProblem(n, k int) Problem {
	knobs := make(map[int][]approx.KnobID)
	ops := make([]int, n)
	for i := 0; i < n; i++ {
		ops[i] = i
		ks := make([]approx.KnobID, k)
		for j := 0; j < k; j++ {
			ks[j] = approx.KnobID(j)
		}
		knobs[i] = ks
	}
	return Problem{Ops: ops, Knobs: knobs}
}

// evaluate mimics an accuracy/speedup tradeoff: higher knob index = more
// aggressive approximation = faster but lower QoS, with per-op weights.
func evaluate(p Problem, cfg approx.Config) Feedback {
	var perf, qosLoss float64
	for i, op := range p.Ops {
		v := float64(cfg.Knob(op))
		perf += v * 0.1
		// later ops tolerate approximation better
		weight := 1.0 / float64(i+1)
		qosLoss += v * v * 0.05 * weight
	}
	return Feedback{QoS: 90 - qosLoss, Perf: 1 + perf}
}

func TestTunerFindsGoodConfigs(t *testing.T) {
	p := testProblem(6, 8)
	tuner := New(p, Options{MaxIters: 3000, StallLimit: 800, QoSMin: 89, Seed: 1})
	for !tuner.Done() {
		cfg := tuner.Next()
		tuner.Report(cfg, evaluate(p, cfg))
	}
	best, fit := tuner.Best()
	if best == nil {
		t.Fatal("no best config")
	}
	fb := evaluate(p, best)
	if fb.QoS < 89 {
		t.Errorf("best config violates QoS: %v", fb.QoS)
	}
	if fb.Perf < 1.5 {
		t.Errorf("best Perf %v too low — search failed to exploit tolerant ops", fb.Perf)
	}
	if fit <= 0 {
		t.Errorf("fitness %v", fit)
	}
	// The search should discover that later ops tolerate higher knobs.
	if best.Knob(5) <= best.Knob(0) {
		t.Logf("note: knob ordering not strict (op0=%d op5=%d)", best.Knob(0), best.Knob(5))
	}
}

func TestTunerDeterministic(t *testing.T) {
	p := testProblem(4, 5)
	run := func() (approx.Config, float64) {
		tuner := New(p, Options{MaxIters: 500, StallLimit: 200, QoSMin: 88, Seed: 7})
		for !tuner.Done() {
			cfg := tuner.Next()
			tuner.Report(cfg, evaluate(p, cfg))
		}
		return tuner.Best()
	}
	c1, f1 := run()
	c2, f2 := run()
	if f1 != f2 || !c1.Equal(c2, 4) {
		t.Fatal("same seed must reproduce the same search")
	}
}

func TestTunerConvergesBeforeCap(t *testing.T) {
	p := testProblem(2, 2) // tiny space: must stall quickly
	tuner := New(p, Options{MaxIters: 10000, StallLimit: 50, QoSMin: 80, Seed: 2})
	for !tuner.Done() {
		cfg := tuner.Next()
		tuner.Report(cfg, evaluate(p, cfg))
	}
	if tuner.Iterations() >= 10000 {
		t.Error("tiny space should converge long before the cap")
	}
}

func TestTunerRespectsIterationCap(t *testing.T) {
	p := testProblem(8, 10)
	tuner := New(p, Options{MaxIters: 100, StallLimit: 100000, QoSMin: 80, Seed: 3})
	n := 0
	for !tuner.Done() {
		cfg := tuner.Next()
		tuner.Report(cfg, evaluate(p, cfg))
		n++
	}
	if n != 100 {
		t.Errorf("ran %d iters, want exactly 100", n)
	}
}

func TestFitnessPenalizesQoSViolation(t *testing.T) {
	p := testProblem(1, 2)
	tuner := New(p, Options{QoSMin: 90, QoSPenalty: 2, Seed: 4})
	ok := tuner.fitness(Feedback{QoS: 91, Perf: 1.5})
	bad := tuner.fitness(Feedback{QoS: 88, Perf: 1.5})
	if ok != 1.5 {
		t.Errorf("feasible fitness = %v, want 1.5", ok)
	}
	if math.Abs(bad-(1.5-4)) > 1e-9 {
		t.Errorf("infeasible fitness = %v, want -2.5", bad)
	}
}

func TestProposalsAlwaysValid(t *testing.T) {
	p := testProblem(5, 3)
	valid := make(map[int]map[approx.KnobID]bool)
	for _, op := range p.Ops {
		valid[op] = map[approx.KnobID]bool{}
		for _, k := range p.Knobs[op] {
			valid[op][k] = true
		}
	}
	tuner := New(p, Options{MaxIters: 500, StallLimit: 500, QoSMin: 85, Seed: 5})
	for !tuner.Done() {
		cfg := tuner.Next()
		for _, op := range p.Ops {
			if !valid[op][cfg.Knob(op)] {
				t.Fatalf("op %d assigned invalid knob %d", op, cfg.Knob(op))
			}
		}
		tuner.Report(cfg, evaluate(p, cfg))
	}
}

func TestBanditTriesAllTechniques(t *testing.T) {
	b := newBandit(5)
	rng := newTestRNG()
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		k := b.pick(rng)
		seen[k] = true
		b.report(k, i%7 == 0)
	}
	if len(seen) != 5 {
		t.Errorf("bandit visited %d techniques, want all 5", len(seen))
	}
}

func TestBanditFavorsWinner(t *testing.T) {
	b := newBandit(2)
	rng := newTestRNG()
	// technique 0 always improves, technique 1 never does
	for i := 0; i < 400; i++ {
		k := b.pick(rng)
		b.report(k, k == 0)
	}
	if b.trials[0] <= b.trials[1] {
		t.Errorf("bandit should favor the improving technique: %v vs %v", b.trials[0], b.trials[1])
	}
}

func TestEmptyProblemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Problem{}, Options{})
}

// TestBatchOfOneMatchesSequential pins the batched API's base case: a
// NextBatch(1)+ReportBatch trajectory must be indistinguishable from the
// classic Next+Report loop under the same seed — same proposals, same best.
func TestBatchOfOneMatchesSequential(t *testing.T) {
	p := testProblem(4, 5)
	seq := New(p, Options{MaxIters: 400, StallLimit: 150, QoSMin: 88, Seed: 21})
	bat := New(p, Options{MaxIters: 400, StallLimit: 150, QoSMin: 88, Seed: 21})
	for step := 0; !seq.Done(); step++ {
		if bat.Done() {
			t.Fatalf("batched tuner converged early at step %d", step)
		}
		sc := seq.Next()
		bc := bat.NextBatch(1)
		if len(bc) != 1 || !sc.Equal(bc[0], 4) {
			t.Fatalf("step %d: proposals diverge: %v vs %v", step, sc, bc)
		}
		fb := evaluate(p, sc)
		seq.Report(sc, fb)
		bat.ReportBatch(bc, []Feedback{fb})
	}
	if !bat.Done() {
		t.Fatal("batched tuner did not converge with the sequential one")
	}
	c1, f1 := seq.Best()
	c2, f2 := bat.Best()
	if f1 != f2 || !c1.Equal(c2, 4) {
		t.Fatalf("best diverged: %v (fit %v) vs %v (fit %v)", c1, f1, c2, f2)
	}
}

// TestBatchedTuningDeterministic: a batch-k loop reaches the same result on
// every run with the same seed — the batch composition depends only on tuner
// state at the NextBatch call, never on evaluation interleaving.
func TestBatchedTuningDeterministic(t *testing.T) {
	p := testProblem(4, 5)
	run := func() (approx.Config, float64, int) {
		tuner := New(p, Options{MaxIters: 500, StallLimit: 200, QoSMin: 88, Seed: 9})
		for !tuner.Done() {
			cfgs := tuner.NextBatch(8)
			fbs := make([]Feedback, len(cfgs))
			for i, cfg := range cfgs {
				fbs[i] = evaluate(p, cfg)
			}
			tuner.ReportBatch(cfgs, fbs)
		}
		cfg, fit := tuner.Best()
		return cfg, fit, tuner.Iterations()
	}
	c1, f1, n1 := run()
	c2, f2, n2 := run()
	if f1 != f2 || n1 != n2 || !c1.Equal(c2, 4) {
		t.Fatalf("batched runs diverged: fit %v/%v iters %d/%d", f1, f2, n1, n2)
	}
}

// TestNextBatchClampsAtMaxIters: the final batch shrinks so the search never
// evaluates past the iteration cap.
func TestNextBatchClampsAtMaxIters(t *testing.T) {
	p := testProblem(2, 3)
	tuner := New(p, Options{MaxIters: 10, StallLimit: 100, Seed: 3})
	report := func(cfgs []approx.Config) {
		fbs := make([]Feedback, len(cfgs))
		for i, cfg := range cfgs {
			fbs[i] = evaluate(p, cfg)
		}
		tuner.ReportBatch(cfgs, fbs)
	}
	first := tuner.NextBatch(8)
	if len(first) != 8 {
		t.Fatalf("first batch: %d proposals, want 8", len(first))
	}
	report(first)
	second := tuner.NextBatch(8)
	if len(second) != 2 {
		t.Fatalf("final batch: %d proposals, want 2 (clamped to MaxIters)", len(second))
	}
	report(second)
	if tuner.Iterations() != 10 {
		t.Fatalf("iterations %d, want exactly MaxIters", tuner.Iterations())
	}
	if !tuner.Done() {
		t.Fatal("tuner not done at the cap")
	}
}

// TestReportBatchArityPanics: feedback must match the preceding NextBatch.
func TestReportBatchArityPanics(t *testing.T) {
	p := testProblem(2, 3)
	tuner := New(p, Options{MaxIters: 10, Seed: 3})
	cfgs := tuner.NextBatch(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	tuner.ReportBatch(cfgs, make([]Feedback, 2))
}
