package autotuner

import "repro/internal/tensor"

func newTestRNG() *tensor.RNG { return tensor.NewRNG(99) }
