package predictor

import "repro/internal/obs"

// Predictor telemetry (§3.3, Fig. 8): how often each error-composition
// model is evaluated, the fitted α per calibration, and the distribution
// of post-calibration absolute prediction errors on the calibration
// samples (log-scale buckets from 0.001 to ~65 QoS units).
var (
	mPi1Evals = obs.NewCounter("predictor.pi1_evals")
	mPi2Evals = obs.NewCounter("predictor.pi2_evals")
	mCalibs   = obs.NewCounter("predictor.calibrations")
	gAlpha    = obs.NewGauge("predictor.alpha")
	hCalibErr = obs.NewHistogram("predictor.calibration_abs_error", 0.001, 2, 16)
)

// observeCalibration records the fitted α and the per-sample absolute
// prediction error of the freshly calibrated model.
func (q *QoSPredictor) observeCalibration(samples []Sample) {
	mCalibs.Inc()
	gAlpha.Set(q.Alpha)
	for _, s := range samples {
		err := q.Predict(s.Cfg) - s.QoS
		if err < 0 {
			err = -err
		}
		hCalibErr.Observe(err)
	}
}
