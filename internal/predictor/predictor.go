// Package predictor implements the paper's predictive
// approximation-tuning machinery (§3.2–3.4): the per-(op, knob) QoS
// profiles, the two error-composition models Π1 (tensor-level: sum the ΔT
// raw-output error tensors onto the baseline output, then apply the QoS
// function) and Π2 (scalar-level: sum the ΔQ end-to-end QoS losses), the
// single-coefficient α regression that adapts each model to a program's
// error propagation, and the hardware-agnostic performance prediction
// model of Eq. 3.
package predictor

import (
	"fmt"
	"math"

	"repro/internal/approx"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Key identifies one profile entry.
type Key struct {
	Op   int
	Knob approx.KnobID
}

// Profiles holds the one-time error profiles of §3.2: for every (op, knob)
// pair, the end-to-end QoS change ΔQ and (optionally, for Π1) the change
// ΔT in the program's raw tensor output, both measured on the calibration
// inputs with only that single operator approximated.
type Profiles struct {
	BaseQoS float64        // QoS_base: exact-execution QoS on calibration inputs
	BaseOut *tensor.Tensor // T_base: exact raw output (nil when Π1 unsupported)
	DeltaQ  map[Key]float64
	DeltaT  map[Key]*tensor.Tensor
}

// NewProfiles returns empty tables.
func NewProfiles(baseQoS float64, baseOut *tensor.Tensor) *Profiles {
	return &Profiles{
		BaseQoS: baseQoS,
		BaseOut: baseOut,
		DeltaQ:  make(map[Key]float64),
		DeltaT:  make(map[Key]*tensor.Tensor),
	}
}

// Add records a profile entry. deltaT may be nil for Π2-only programs.
func (p *Profiles) Add(op int, knob approx.KnobID, deltaQ float64, deltaT *tensor.Tensor) {
	k := Key{op, knob}
	p.DeltaQ[k] = deltaQ
	if deltaT != nil {
		p.DeltaT[k] = deltaT
	}
}

// SupportsPi1 reports whether tensor-level profiles exist (Π1 requires
// fixed-shape raw outputs, §8).
func (p *Profiles) SupportsPi1() bool { return p.BaseOut != nil && len(p.DeltaT) > 0 }

// Merge combines profiles collected on different calibration shards
// (distributed install-time tuning, §4): ΔQ values are averaged ("taking
// the mean of ΔQ") and, when every shard carries tensor-level profiles,
// the ΔT tensors and baseline outputs are concatenated along the batch
// dimension ("concatenating the ΔT together") — reassembling full-set
// tensors when the shards partition the calibration inputs in order.
func Merge(shards []*Profiles) *Profiles {
	if len(shards) == 0 {
		panic("predictor: no shards to merge")
	}
	out := NewProfiles(0, nil)
	var baseQoS float64
	for _, s := range shards {
		baseQoS += s.BaseQoS
	}
	out.BaseQoS = baseQoS / float64(len(shards))
	counts := make(map[Key]int)
	for _, s := range shards {
		for k, dq := range s.DeltaQ {
			out.DeltaQ[k] += dq
			counts[k]++
		}
	}
	for k := range out.DeltaQ {
		out.DeltaQ[k] /= float64(counts[k])
	}

	// Tensor-level merge: concatenate per-shard ΔT (and base outputs) by
	// rows when all shards provide them for the same keys.
	if allHaveTensors(shards) {
		bases := make([]*tensor.Tensor, len(shards))
		for i, s := range shards {
			bases[i] = s.BaseOut
		}
		out.BaseOut = concatRows(bases)
		for k := range shards[0].DeltaT {
			parts := make([]*tensor.Tensor, 0, len(shards))
			ok := true
			for _, s := range shards {
				dt, have := s.DeltaT[k]
				if !have {
					ok = false
					break
				}
				parts = append(parts, dt)
			}
			if ok {
				out.DeltaT[k] = concatRows(parts)
			}
		}
	}
	return out
}

func allHaveTensors(shards []*Profiles) bool {
	for _, s := range shards {
		if s.BaseOut == nil || len(s.DeltaT) == 0 {
			return false
		}
	}
	return true
}

// concatRows stacks (n_i, K) tensors into a (Σn_i, K) tensor.
func concatRows(parts []*tensor.Tensor) *tensor.Tensor {
	totalRows, k := 0, parts[0].Dim(parts[0].Rank()-1)
	for _, p := range parts {
		totalRows += p.Elems() / k
	}
	data := make([]float32, 0, totalRows*k)
	for _, p := range parts {
		data = append(data, p.Data()...)
	}
	return tensor.FromSlice(data, totalRows, k)
}

// Model selects an error-composition model.
type Model int

const (
	Pi1 Model = iota + 1
	Pi2
)

func (m Model) String() string {
	if m == Pi1 {
		return "Π1"
	}
	return "Π2"
}

// QoSPredictor predicts end-to-end QoS for arbitrary configurations from
// the profiles. The scoreFn is the program's QoS function applied to a raw
// output tensor (needed by Π1 only).
type QoSPredictor struct {
	Model    Model
	Profiles *Profiles
	Alpha    float64
	ScoreFn  func(out *tensor.Tensor) float64
}

// NewQoSPredictor builds a predictor with α = 1 (uncalibrated).
func NewQoSPredictor(m Model, p *Profiles, scoreFn func(*tensor.Tensor) float64) *QoSPredictor {
	if m == Pi1 && !p.SupportsPi1() {
		panic("predictor: Π1 requires tensor-level profiles")
	}
	if m == Pi1 && scoreFn == nil {
		panic("predictor: Π1 requires a QoS score function")
	}
	return &QoSPredictor{Model: m, Profiles: p, Alpha: 1, ScoreFn: scoreFn}
}

// Predict estimates the end-to-end QoS of a configuration.
func (q *QoSPredictor) Predict(cfg approx.Config) float64 {
	switch q.Model {
	case Pi1:
		mPi1Evals.Inc()
		return q.predict1(cfg, q.Alpha)
	case Pi2:
		mPi2Evals.Inc()
		return q.predict2(cfg, q.Alpha)
	default:
		panic(fmt.Sprintf("predictor: unknown model %d", q.Model))
	}
}

// predict1 implements Π1(config) = QoS(T_base + α·Σ ΔT(op, knob)).
func (q *QoSPredictor) predict1(cfg approx.Config, alpha float64) float64 {
	sum := q.Profiles.BaseOut.Clone()
	for op, knob := range cfg {
		if knob == approx.KnobFP32 {
			continue
		}
		dt, ok := q.Profiles.DeltaT[Key{op, knob}]
		if !ok {
			continue // unprofiled pair contributes no predicted error
		}
		sum.AddScaled(float32(alpha), dt)
	}
	return q.ScoreFn(sum)
}

// predict2 implements Π2(config) = QoS_base + α·Σ ΔQ(op, knob).
func (q *QoSPredictor) predict2(cfg approx.Config, alpha float64) float64 {
	s := q.Profiles.BaseQoS
	for op, knob := range cfg {
		if knob == approx.KnobFP32 {
			continue
		}
		s += alpha * q.Profiles.DeltaQ[Key{op, knob}]
	}
	return s
}

// Sample couples a configuration with its empirically measured QoS, for α
// calibration.
type Sample struct {
	Cfg approx.Config
	QoS float64
}

// Calibrate fits α to the measured samples (§3.3 "Predictor Calibration
// using Regression"). For Π2 the model is linear in α and closed-form
// least squares applies; for Π1 the QoS function makes it nonlinear, so a
// golden-section-style grid refinement over α ∈ [0, 4] minimizes the
// squared error. Returns the fitted α (also stored on the predictor).
func (q *QoSPredictor) Calibrate(samples []Sample) float64 {
	if len(samples) == 0 {
		return q.Alpha
	}
	switch q.Model {
	case Pi2:
		// real - base ≈ α · S where S = Σ ΔQ: α* = Σ S·y / Σ S².
		var num, den float64
		for _, s := range samples {
			sum := q.predict2(s.Cfg, 1) - q.Profiles.BaseQoS
			y := s.QoS - q.Profiles.BaseQoS
			num += sum * y
			den += sum * sum
		}
		if den > 1e-12 {
			q.Alpha = num / den
		}
		if q.Alpha <= 0 {
			q.Alpha = 1 // degenerate fit; fall back to the raw model
		}
	case Pi1:
		bestA, bestErr := 1.0, math.Inf(1)
		lo, hi := 0.0, 4.0
		for pass := 0; pass < 3; pass++ {
			const steps = 9
			for i := 0; i <= steps; i++ {
				a := lo + (hi-lo)*float64(i)/steps
				var sse float64
				for _, s := range samples {
					d := q.predict1(s.Cfg, a) - s.QoS
					sse += d * d
				}
				if sse < bestErr {
					bestErr, bestA = sse, a
				}
			}
			span := (hi - lo) / steps
			lo, hi = math.Max(0, bestA-span), bestA+span
		}
		q.Alpha = bestA
	}
	q.observeCalibration(samples)
	return q.Alpha
}

// PerfPredictor is the hardware-agnostic performance model of §3.4:
// CostTotal(config) = Σ_(op,knob) Nm(op)/Rm(knob) + Nc(op)/Rc(knob).
// It reports predicted Perf as the speedup of a configuration's cost over
// the baseline cost, which ranks configurations correctly even though it
// is not a wall-clock estimate.
//
// Nm here counts the memory *operations the kernel performs* — roughly
// one operand load per compute operation in a MAC-style kernel — rather
// than unique DRAM traffic (which is what the device timing model uses).
// This matches §3.4's worked example, where halving the loads via FP16
// meaningfully reduces the operator's cost: with unique-traffic counts the
// memory term of a convolution would be negligible next to Nc and the
// model would (wrongly) predict FP16 to be free of benefit.
type PerfPredictor struct {
	costs    []graph.NodeCost
	baseline float64
}

// memOps converts a node's cost entry to the kernel memory-operation
// count used by this model.
func memOps(c graph.NodeCost) float64 {
	if c.Nc > c.Nm {
		return c.Nc // MAC-style kernel: ~1 load per compute op
	}
	return c.Nm
}

// NewPerfPredictor builds the model from the program's baseline op counts.
func NewPerfPredictor(costs []graph.NodeCost) *PerfPredictor {
	var base float64
	for _, c := range costs {
		base += c.Nc + memOps(c)
	}
	if base <= 0 {
		panic("predictor: program has zero cost")
	}
	return &PerfPredictor{costs: costs, baseline: base}
}

// Cost returns CostTotal(config) in abstract operation units.
func (p *PerfPredictor) Cost(cfg approx.Config) float64 {
	var total float64
	for _, c := range p.costs {
		//lint:ignore floateq analytic cost rows are exactly zero for free ops (input, flatten)
		if c.Nc == 0 && c.Nm == 0 {
			continue
		}
		rc, rm := approx.CostFactors(cfg.Knob(c.ID))
		total += c.Nc/rc + memOps(c)/rm
	}
	return total
}

// Predict returns the predicted speedup of cfg over the baseline.
func (p *PerfPredictor) Predict(cfg approx.Config) float64 {
	return p.baseline / p.Cost(cfg)
}
