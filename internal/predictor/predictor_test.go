package predictor

import (
	"math"
	"testing"

	"repro/internal/approx"
	"repro/internal/graph"
	"repro/internal/tensor"
)

func mkProfiles() *Profiles {
	base := tensor.FromSlice([]float32{0.7, 0.2, 0.1}, 1, 3)
	p := NewProfiles(90, base)
	// op 0, knob 1: small error; op 1, knob 10: bigger error.
	p.Add(0, 1, -0.5, tensor.FromSlice([]float32{-0.01, 0.01, 0}, 1, 3))
	p.Add(1, 10, -2.0, tensor.FromSlice([]float32{-0.2, 0.15, 0.05}, 1, 3))
	return p
}

// scoreTop0 scores an output by the probability mass on class 0 ×100.
func scoreTop0(out *tensor.Tensor) float64 { return float64(out.Data()[0]) * 100 }

func TestPi2Prediction(t *testing.T) {
	p := mkProfiles()
	q := NewQoSPredictor(Pi2, p, nil)
	if got := q.Predict(approx.Config{}); got != 90 {
		t.Errorf("baseline prediction = %v, want 90", got)
	}
	if got := q.Predict(approx.Config{0: 1}); got != 89.5 {
		t.Errorf("single-knob prediction = %v, want 89.5", got)
	}
	// Composition: losses sum.
	if got := q.Predict(approx.Config{0: 1, 1: 10}); got != 87.5 {
		t.Errorf("composed prediction = %v, want 87.5", got)
	}
}

func TestPi1Prediction(t *testing.T) {
	p := mkProfiles()
	q := NewQoSPredictor(Pi1, p, scoreTop0)
	base := q.Predict(approx.Config{})
	if math.Abs(base-70) > 1e-4 {
		t.Errorf("baseline = %v, want 70", base)
	}
	// With both knobs the class-0 mass drops by 0.21.
	got := q.Predict(approx.Config{0: 1, 1: 10})
	if math.Abs(got-49) > 1e-3 {
		t.Errorf("composed Π1 = %v, want 49", got)
	}
}

func TestPi1DoesNotMutateBase(t *testing.T) {
	p := mkProfiles()
	q := NewQoSPredictor(Pi1, p, scoreTop0)
	before := p.BaseOut.Clone()
	q.Predict(approx.Config{0: 1, 1: 10})
	if !tensor.Equal(p.BaseOut, before, 0) {
		t.Fatal("Π1 mutated the baseline output profile")
	}
}

func TestPi1RequiresTensorProfiles(t *testing.T) {
	p := NewProfiles(90, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Π1 without tensor profiles should panic")
		}
	}()
	NewQoSPredictor(Pi1, p, scoreTop0)
}

func TestFP32KnobContributesNothing(t *testing.T) {
	p := mkProfiles()
	q := NewQoSPredictor(Pi2, p, nil)
	if q.Predict(approx.Config{0: approx.KnobFP32, 1: approx.KnobFP32}) != 90 {
		t.Error("baseline knobs must not change the prediction")
	}
}

func TestCalibratePi2ClosedForm(t *testing.T) {
	p := mkProfiles()
	q := NewQoSPredictor(Pi2, p, nil)
	// Ground truth: losses actually compose at 1.5× the profiled sum.
	samples := []Sample{
		{approx.Config{0: 1}, 90 - 0.75},
		{approx.Config{1: 10}, 90 - 3.0},
		{approx.Config{0: 1, 1: 10}, 90 - 3.75},
	}
	alpha := q.Calibrate(samples)
	if math.Abs(alpha-1.5) > 1e-6 {
		t.Errorf("α = %v, want 1.5", alpha)
	}
	got := q.Predict(approx.Config{0: 1, 1: 10})
	if math.Abs(got-86.25) > 1e-6 {
		t.Errorf("calibrated prediction = %v, want 86.25", got)
	}
}

func TestCalibratePi2DegenerateFallsBack(t *testing.T) {
	p := mkProfiles()
	q := NewQoSPredictor(Pi2, p, nil)
	// Samples that would fit a negative α: fall back to 1.
	samples := []Sample{{approx.Config{0: 1}, 95}}
	if alpha := q.Calibrate(samples); alpha != 1 {
		t.Errorf("degenerate calibration should fall back to α=1, got %v", alpha)
	}
}

func TestCalibratePi1GridSearch(t *testing.T) {
	p := mkProfiles()
	q := NewQoSPredictor(Pi1, p, scoreTop0)
	// True behaviour: errors compose at α = 0.5.
	samples := []Sample{
		{approx.Config{0: 1}, q.predict1(approx.Config{0: 1}, 0.5)},
		{approx.Config{1: 10}, q.predict1(approx.Config{1: 10}, 0.5)},
		{approx.Config{0: 1, 1: 10}, q.predict1(approx.Config{0: 1, 1: 10}, 0.5)},
	}
	alpha := q.Calibrate(samples)
	if math.Abs(alpha-0.5) > 0.05 {
		t.Errorf("Π1 α = %v, want ≈0.5", alpha)
	}
}

func TestCalibrateEmptySamples(t *testing.T) {
	q := NewQoSPredictor(Pi2, mkProfiles(), nil)
	if a := q.Calibrate(nil); a != 1 {
		t.Errorf("empty calibration should keep α=1, got %v", a)
	}
}

func TestMergeShards(t *testing.T) {
	a := NewProfiles(90, nil)
	a.Add(0, 1, -1.0, nil)
	b := NewProfiles(92, nil)
	b.Add(0, 1, -2.0, nil)
	b.Add(1, 10, -3.0, nil)
	m := Merge([]*Profiles{a, b})
	if m.BaseQoS != 91 {
		t.Errorf("merged base = %v, want 91", m.BaseQoS)
	}
	if got := m.DeltaQ[Key{0, 1}]; got != -1.5 {
		t.Errorf("merged ΔQ = %v, want -1.5 (mean)", got)
	}
	if got := m.DeltaQ[Key{1, 10}]; got != -3.0 {
		t.Errorf("singleton ΔQ = %v, want -3.0", got)
	}
}

func TestPerfPredictorEq3(t *testing.T) {
	costs := []graph.NodeCost{
		{ID: 0},
		{ID: 1, Nc: 1000, Nm: 100},
		{ID: 2, Nc: 500, Nm: 50},
	}
	pp := NewPerfPredictor(costs)
	if got := pp.Predict(approx.Config{}); got != 1 {
		t.Errorf("baseline speedup = %v, want 1", got)
	}
	// MAC kernels count ~1 memory op per compute op, so op 1's memory
	// term is 1000, op 2's is 500. FP16 on op 1 (Rc=1, Rm=2):
	// cost = (1000 + 500) + (500 + 500) = 2500 of baseline 3000.
	cfg := approx.Config{1: approx.KnobFP16}
	if got := pp.Cost(cfg); got != 2500 {
		t.Errorf("cost = %v, want 2500", got)
	}
	if got := pp.Predict(cfg); math.Abs(got-3000.0/2500) > 1e-9 {
		t.Errorf("speedup = %v", got)
	}
}

func TestPerfPredictorRanksBySavings(t *testing.T) {
	costs := []graph.NodeCost{{ID: 1, Nc: 1e6, Nm: 1e4}}
	pp := NewPerfPredictor(costs)
	light := pp.Predict(approx.Config{1: approx.SamplingKnob(4, 0, 0)}) // skip 1/4
	heavy := pp.Predict(approx.Config{1: approx.SamplingKnob(2, 0, 0)}) // skip 1/2
	if heavy <= light {
		t.Errorf("heavier sampling must predict faster: %v vs %v", heavy, light)
	}
}

func TestPerfPredictorZeroCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewPerfPredictor([]graph.NodeCost{{ID: 0}})
}
