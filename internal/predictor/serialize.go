package predictor

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/approx"
	"repro/internal/tensor"
)

// Wire serialization for profiles: the distributed install-time protocol
// (§4) ships per-shard profiles from edge devices to the server. ΔQ
// entries are plain JSON; ΔT tensors are base64-encoded little-endian
// float32 rows to keep payloads compact.

type profilesJSON struct {
	BaseQoS float64     `json:"base_qos"`
	BaseOut *tensorJSON `json:"base_out,omitempty"`
	DeltaQ  []entryQ    `json:"delta_q"`
	DeltaT  []entryT    `json:"delta_t,omitempty"`
}

type entryQ struct {
	Op   int           `json:"op"`
	Knob approx.KnobID `json:"knob"`
	DQ   float64       `json:"dq"`
}

type entryT struct {
	Op   int           `json:"op"`
	Knob approx.KnobID `json:"knob"`
	T    tensorJSON    `json:"t"`
}

type tensorJSON struct {
	Dims []int  `json:"dims"`
	Data string `json:"data"` // base64 LE float32
}

func encodeTensor(t *tensor.Tensor) tensorJSON {
	buf := make([]byte, 4*t.Elems())
	for i, v := range t.Data() {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return tensorJSON{Dims: t.Shape().Dims(), Data: base64.StdEncoding.EncodeToString(buf)}
}

func decodeTensor(tj tensorJSON) (*tensor.Tensor, error) {
	buf, err := base64.StdEncoding.DecodeString(tj.Data)
	if err != nil {
		return nil, fmt.Errorf("predictor: bad tensor payload: %w", err)
	}
	if len(buf)%4 != 0 {
		return nil, fmt.Errorf("predictor: tensor payload length %d not a multiple of 4", len(buf))
	}
	data := make([]float32, len(buf)/4)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
	elems := 1
	for _, d := range tj.Dims {
		if d <= 0 {
			return nil, fmt.Errorf("predictor: bad tensor dim %d", d)
		}
		elems *= d
	}
	if elems != len(data) {
		return nil, fmt.Errorf("predictor: tensor dims %v do not match %d elements", tj.Dims, len(data))
	}
	return tensor.FromSlice(data, tj.Dims...), nil
}

// Marshal serializes the profiles for network transport.
func (p *Profiles) Marshal() ([]byte, error) {
	out := profilesJSON{BaseQoS: p.BaseQoS}
	if p.BaseOut != nil {
		tj := encodeTensor(p.BaseOut)
		out.BaseOut = &tj
	}
	for k, dq := range p.DeltaQ {
		out.DeltaQ = append(out.DeltaQ, entryQ{Op: k.Op, Knob: k.Knob, DQ: dq})
	}
	for k, t := range p.DeltaT {
		out.DeltaT = append(out.DeltaT, entryT{Op: k.Op, Knob: k.Knob, T: encodeTensor(t)})
	}
	return json.Marshal(out)
}

// UnmarshalProfiles restores serialized profiles, validating knob IDs.
func UnmarshalProfiles(data []byte) (*Profiles, error) {
	var in profilesJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("predictor: bad profiles: %w", err)
	}
	var baseOut *tensor.Tensor
	if in.BaseOut != nil {
		t, err := decodeTensor(*in.BaseOut)
		if err != nil {
			return nil, err
		}
		baseOut = t
	}
	p := NewProfiles(in.BaseQoS, baseOut)
	for _, e := range in.DeltaQ {
		if _, ok := approx.Lookup(e.Knob); !ok {
			return nil, fmt.Errorf("predictor: unknown knob %d in profiles", e.Knob)
		}
		p.DeltaQ[Key{e.Op, e.Knob}] = e.DQ
	}
	for _, e := range in.DeltaT {
		if _, ok := approx.Lookup(e.Knob); !ok {
			return nil, fmt.Errorf("predictor: unknown knob %d in profiles", e.Knob)
		}
		t, err := decodeTensor(e.T)
		if err != nil {
			return nil, err
		}
		p.DeltaT[Key{e.Op, e.Knob}] = t
	}
	return p, nil
}
